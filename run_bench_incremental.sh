#!/bin/sh
# Incremental bench snapshot: machine-readable trajectories.
#
# Emits one JSON object per scheme x machine (JSON Lines) via
# `bench/main.exe --json`, running each machine separately so partial
# completion still leaves a valid bench_output.json prefix.  Each
# object carries per-workload cycles / memory accesses / barriers plus
# the geomean-vs-Base summary (see DESIGN.md, "Observability").
set -e
OUT=${1:-bench_output.json}
: > "$OUT"
for m in harpertown nehalem dunnington; do
  ./_build/default/bench/main.exe --quick --json "$m" >> "$OUT" \
    || echo "{\"machine\":\"$m\",\"error\":\"bench failed\"}" >> "$OUT"
done
