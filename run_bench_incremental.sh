#!/bin/sh
# Incremental bench snapshot: machine-readable trajectories.
#
# Emits one JSON object per scheme x machine (JSON Lines) via
# `bench/main.exe --json`, running each machine separately so partial
# completion still leaves a valid bench_output.json prefix.  Each
# object carries per-workload cycles / memory accesses / barriers plus
# the geomean-vs-Base summary (see DESIGN.md, "Observability"), and
# each machine's sweep is followed by a {"machine",...,"sweep_seconds"}
# wall-clock record so trajectory diffs surface perf regressions too.
#
# Honors $CTAM_JOBS (see lib/util/parallel.ml); pass --jobs through
# explicitly with e.g. `CTAM_JOBS=4 ./run_bench_incremental.sh`.
set -e
OUT=${1:-bench_output.json}

# Gate the sweep on mapping legality: every workload x machine x scheme
# must pass the end-to-end checker (coverage, codegen, dependences,
# races, topology) before its numbers are worth collecting.  See
# `ctamap check --help` and DESIGN.md, "Verification".
for m in harpertown nehalem dunnington; do
  for w in applu galgel equake cg sp bodytrack facesim freqmine \
           namd povray mesa h264; do
    ./_build/default/bin/ctamap.exe check "$w" -m "$m" --scale 64 \
      --all-schemes > /dev/null || {
      echo "mapping verification failed: $w on $m" >&2
      exit 1
    }
  done
done

: > "$OUT"
for m in harpertown nehalem dunnington; do
  t0=$(date +%s.%N)
  ./_build/default/bench/main.exe --quick --json "$m" >> "$OUT" \
    || echo "{\"machine\":\"$m\",\"error\":\"bench failed\"}" >> "$OUT"
  t1=$(date +%s.%N)
  awk -v m="$m" -v a="$t0" -v b="$t1" \
    'BEGIN { printf "{\"machine\":\"%s\",\"sweep_seconds\":%.3f}\n", m, b - a }' \
    >> "$OUT"
  # Archive one timeline trace per machine alongside the trajectories
  # (sp under the topology-aware scheme; load in ui.perfetto.dev).
  ./_build/default/bin/ctamap.exe trace sp -m "$m" --scale 64 -s topology \
    -o "trace_$m.json" --window 2048 > /dev/null \
    || echo "trace archive failed: $m" >&2
  # Archive the winning mapping parameters per machine (coordinate
  # descent from the default; the persistent cache makes re-runs after
  # unrelated edits free).  Feed back with `ctamap run --params`.
  ./_build/default/bin/ctamap.exe tune sp -m "$m" --scale 64 \
    --strategy descent --cache .ctam-tune-cache \
    --save-params "params_$m.json" --json "tune_$m.json" > /dev/null \
    || echo "tune archive failed: $m" >&2
  # Archive a self-telemetry snapshot per machine: phase timings, engine
  # aggregates, GC totals (see DESIGN.md, "Telemetry").  One profiled
  # run per machine keeps the snapshot cheap but representative.
  ./_build/default/bin/ctamap.exe run sp -m "$m" --scale 64 -s topology \
    --metrics-out "metrics_$m.json" > /dev/null \
    || echo "metrics archive failed: $m" >&2
done

# Scale-sweep trajectory: exact vs streamed vs set-sampled simulation
# of the quick subset (experiment="scale_sweep" rows — per-kernel
# sampled cycle error and effective speedup).  Lets trajectory diffs
# catch regressions in the sampled estimator and the generator paths,
# not just in the mapped cycle counts.
t0=$(date +%s.%N)
./_build/default/bench/main.exe scale-sweep --quick --json >> "$OUT" \
  || echo '{"experiment":"scale_sweep","error":"sweep failed"}' >> "$OUT"
t1=$(date +%s.%N)
awk -v a="$t0" -v b="$t1" \
  'BEGIN { printf "{\"experiment\":\"scale_sweep\",\"sweep_seconds\":%.3f}\n", b - a }' \
  >> "$OUT"

# Policy-sweep trajectory: the replacement-policy differential sweep
# (experiment="policy_sweep" rows — L1 hit rate / memory rate per
# policy x pattern x footprint).  The sweep exits non-zero when a
# policy breaks a trend invariant or LRU-as-policy diverges from the
# seed reference engine, so the archive doubles as a certification.
t0=$(date +%s.%N)
./_build/default/bench/main.exe policy-sweep --quick --json >> "$OUT" \
  || echo '{"experiment":"policy_sweep","error":"sweep failed"}' >> "$OUT"
t1=$(date +%s.%N)
awk -v a="$t0" -v b="$t1" \
  'BEGIN { printf "{\"experiment\":\"policy_sweep\",\"sweep_seconds\":%.3f}\n", b - a }' \
  >> "$OUT"

# Serve-sweep trajectory: throughput and latency tail of the mapping
# daemon, cold (full pipeline per request) vs warm (plan-cache hits) —
# experiment="serve_sweep" rows with req/s and p50/p90/p99, plus the
# warm/cold throughput ratio on the warm row.  Catches regressions in
# the serving path and the plan cache, not just the mapper.
t0=$(date +%s.%N)
./_build/default/bench/main.exe serve-sweep --quick --json --jobs 4 >> "$OUT" \
  || echo '{"experiment":"serve_sweep","error":"sweep failed"}' >> "$OUT"
t1=$(date +%s.%N)
awk -v a="$t0" -v b="$t1" \
  'BEGIN { printf "{\"experiment\":\"serve_sweep\",\"sweep_seconds\":%.3f}\n", b - a }' \
  >> "$OUT"

# Archive the daemon's own observability per machine: a short served
# burst (cache miss + hit) with the audit journal on, keeping the
# journal (serve_journal_$m.jsonl — replayable with
# `journal_replay replay`) and a Prometheus scrape of the daemon's
# registry (serve_metrics_$m.prom) alongside the other per-machine
# artifacts.  See DESIGN.md, "Service observability".
for m in harpertown nehalem dunnington; do
  sock="/tmp/ctam-bench-serve-$$.sock"
  ./_build/default/bin/ctamap.exe serve --socket "$sock" --workers 2 \
    --journal "serve_journal_$m.jsonl" --slow-ms 0 \
    2> /dev/null &
  serve_pid=$!
  i=0
  while [ ! -S "$sock" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then break; fi
    sleep 0.1
  done
  if [ -S "$sock" ]; then
    ./_build/default/bin/ctamap.exe client --socket "$sock" \
      --op run sp -m "$m" --scale 64 -s topology > /dev/null \
      || echo "serve journal archive failed: $m" >&2
    ./_build/default/bin/ctamap.exe client --socket "$sock" \
      --op run sp -m "$m" --scale 64 -s topology > /dev/null 2>&1 || true
    ./_build/default/bin/ctamap.exe client --socket "$sock" \
      --op metrics --format prometheus > "serve_metrics_$m.prom" \
      || echo "serve metrics archive failed: $m" >&2
    ./_build/default/bin/ctamap.exe client --socket "$sock" \
      --op shutdown > /dev/null 2>&1 || true
  else
    echo "serve observability archive failed: $m (daemon never bound)" >&2
  fi
  wait "$serve_pid" 2> /dev/null || true
done
