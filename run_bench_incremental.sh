#!/bin/sh
# Incremental fallback: run each experiment separately so partial
# completion still leaves a valid bench_output.txt.
set -e
OUT=${1:-bench_output.txt}
: > "$OUT"
for e in table1 depstats table2 fig2 fig15 fig16 depmode dynamic fig13 fig14 fig17 fig18 fig19 alphabeta overhead fig20; do
  echo "" >> "$OUT"
  echo "###### $e ######" >> "$OUT"
  ./_build/default/bench/main.exe --quick "$e" >> "$OUT" 2>&1 || echo "($e failed)" >> "$OUT"
done
