let version = "1.6.0"
let report_version = 1
let telemetry_version = 1
