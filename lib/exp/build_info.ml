let version = "1.4.0"
let report_version = 1
