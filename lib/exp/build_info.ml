let version = "1.5.0"
let report_version = 1
