open Ctam_arch
open Ctam_ir
open Ctam_cachesim
open Ctam_core
module J = Ctam_util.Json

type profile = {
  compiled : Mapping.compiled;
  stats : Stats.t;
  counters : Probe_sinks.Counters.t;
  reuse : Probe_sinks.Reuse_split.t;
  timeline : Timeline.t option;
  legend : (int * (string * int)) list;
  sim_seconds : float;
  verify : Ctam_verify.Verify.report option;
  report : J.t;
}

let topology_json (topo : Topology.t) =
  J.Obj
    [
      ("name", J.String topo.Topology.name);
      ("clock_ghz", J.Float topo.Topology.clock_ghz);
      ("mem_latency", J.Int topo.Topology.mem_latency);
      ("num_cores", J.Int topo.Topology.num_cores);
      ( "caches",
        J.List
          (List.map
             (fun (p : Topology.cache_params) ->
               J.Obj
                 [
                   ("name", J.String p.cache_name);
                   ("level", J.Int p.level);
                   ("size_bytes", J.Int p.size_bytes);
                   ("assoc", J.Int p.assoc);
                   ("line", J.Int p.line);
                   ("latency", J.Int p.latency);
                 ])
             (Topology.caches topo)) );
    ]

let histogram_json (h : Reuse.histogram) =
  let buckets = ref [] in
  Array.iteri
    (fun i c ->
      if c > 0 then
        let lo = if i = 0 then 0 else 1 lsl (i - 1) in
        let hi = if i = 0 then 1 else 1 lsl i in
        buckets :=
          J.Obj [ ("lo", J.Int lo); ("hi", J.Int hi); ("count", J.Int c) ]
          :: !buckets)
    h.Reuse.buckets;
  J.Obj
    [
      ("total", J.Int h.Reuse.total);
      ("cold", J.Int h.Reuse.cold);
      ("buckets", J.List (List.rev !buckets));
    ]

let scheme_json = function
  | Mapping.Base -> J.String "base"
  | Mapping.Base_plus -> J.String "base+"
  | Mapping.Local -> J.String "local"
  | Mapping.Topology_aware -> J.String "topology-aware"
  | Mapping.Combined -> J.String "combined"

let params_json (p : Mapping.params) =
  J.Obj
    [
      ("block_size", J.Int p.block_size);
      ("auto_block", J.Bool p.auto_block);
      ("balance_threshold", J.Float p.balance_threshold);
      ("alpha", J.Float p.alpha);
      ("beta", J.Float p.beta);
      ("max_groups", J.Int p.max_groups);
      ( "tile_edge",
        match p.tile_edge with None -> J.Null | Some e -> J.Int e );
      ( "dependence_mode",
        J.String
          (match p.dependence_mode with
          | Distribute.Synchronize -> "synchronize"
          | Distribute.Cluster -> "cluster") );
    ]

let nest_json (i : Mapping.nest_info) =
  J.Obj
    [
      ("name", J.String i.nest_name);
      ("groups", J.Int i.num_groups);
      ("rounds", J.Int i.num_rounds);
      ("dep_edges", J.Int i.dep_edges);
      ("block_size", J.Int i.used_block_size);
    ]

let per_core_json counters topo =
  let levels = Probe_sinks.Counters.levels counters in
  J.List
    (List.init topo.Topology.num_cores (fun core ->
         J.Obj
           [
             ("core", J.Int core);
             ("accesses", J.Int (Probe_sinks.Counters.accesses counters ~core));
             ("writes", J.Int (Probe_sinks.Counters.writes counters ~core));
             ("mem", J.Int (Probe_sinks.Counters.mem counters ~core));
             ( "levels",
               J.List
                 (List.map
                    (fun level ->
                      let hits =
                        Probe_sinks.Counters.hits counters ~core ~level
                      in
                      let misses =
                        Probe_sinks.Counters.misses counters ~core ~level
                      in
                      let total = hits + misses in
                      J.Obj
                        [
                          ("level", J.Int level);
                          ("hits", J.Int hits);
                          ("misses", J.Int misses);
                          ( "miss_rate",
                            J.Float
                              (if total = 0 then 0.
                               else float_of_int misses /. float_of_int total)
                          );
                          ( "evictions",
                            J.Int
                              (Probe_sinks.Counters.evictions counters ~core
                                 ~level) );
                        ])
                    levels) );
           ]))

let groups_json counters legend =
  let levels = Probe_sinks.Counters.levels counters in
  J.List
    (List.map
       (fun (seg, (g : Probe_sinks.Counters.group_stat)) ->
         let nest, group =
           match List.assoc_opt seg legend with
           | Some ng -> ng
           | None -> ("?", seg)
         in
         J.Obj
           [
             ("segment", J.Int seg);
             ("nest", J.String nest);
             ("group", J.Int group);
             ("accesses", J.Int g.g_accesses);
             ( "misses",
               J.List
                 (List.mapi
                    (fun i level ->
                      J.Obj
                        [
                          ("level", J.Int level);
                          ("misses", J.Int g.g_misses.(i));
                        ])
                    levels) );
             ("mem", J.Int g.g_mem);
           ])
       (Probe_sinks.Counters.group_stats counters))

let conflicts_json reuse =
  J.List
    (List.map
       (fun (level, per_set) ->
         let sets = Array.length per_set in
         let total = Array.fold_left ( + ) 0 per_set in
         let maxm = Array.fold_left max 0 per_set in
         let hot =
           per_set
           |> Array.mapi (fun s m -> (s, m))
           |> Array.to_list
           |> List.filter (fun (_, m) -> m > 0)
           |> List.sort (fun (_, a) (_, b) -> compare b a)
           |> (fun l -> List.filteri (fun i _ -> i < 8) l)
           |> List.map (fun (s, m) ->
                  J.Obj [ ("set", J.Int s); ("misses", J.Int m) ])
         in
         J.Obj
           [
             ("level", J.Int level);
             ("sets", J.Int sets);
             ("misses", J.Int total);
             ("max_set_misses", J.Int maxm);
             ( "mean_set_misses",
               J.Float
                 (if sets = 0 then 0. else float_of_int total /. float_of_int sets)
             );
             ("hot_sets", J.List hot);
           ])
       (Probe_sinks.Reuse_split.conflicts reuse))

let profile ?(params = Mapping.default_params) ?config ?timeline_window
    ?(frontend_timings = []) ?(check = false) ?(stream = false)
    ?(sample_sets = 1) ?(memo = false) scheme ~machine program =
  let now = Unix.gettimeofday in
  (* GC image before any pipeline work, so the report's [telemetry]
     member charges compile + probe setup + simulation to this run. *)
  let gc0 = Gc.quick_stat () in
  let t_all0 = now () in
  let compiled =
    Mapping.compile ~params ~clock:now ~stream scheme ~machine program
  in
  let verify =
    if check then Some (Ctam_verify.Verify.check compiled) else None
  in
  let segments, legend = Mapping.segments compiled in
  let counters = Probe_sinks.Counters.create ~segments machine in
  let reuse = Probe_sinks.Reuse_split.create machine in
  let timeline =
    match timeline_window with
    | None -> None
    | Some window -> Some (Timeline.create ~window ~segments machine)
  in
  let probe =
    Probe.seq
      ([
         Probe_sinks.Counters.probe counters;
         Probe_sinks.Reuse_split.probe reuse;
       ]
      @
      match timeline with
      | None -> []
      | Some tl -> [ Timeline.probe tl ])
  in
  let t0 = now () in
  (* Profiling always attaches probes, and the engine's phase memo is
     inert on an observed run (replay cannot reproduce the event
     stream), so a [memo] profile records a table but never hits it —
     memo speedups only materialize in unobserved runs (tune sweeps).
     The member is still threaded so reports document the request. *)
  let sim_memo = if memo then Some (Memo.create ()) else None in
  (* [Profile.phase] also charges the GC words the simulation
     allocates to ctam_phase_{minor,major}_words_total{phase=simulate}
     (and is just [f ()] when telemetry is disabled). *)
  let stats =
    Ctam_telemetry.Profile.phase "simulate" (fun () ->
        Mapping.simulate ?config ~probe
          ?sample_sets:(if sample_sets > 1 then Some sample_sets else None)
          ?memo:sim_memo compiled)
  in
  let sim_seconds = now () -. t0 in
  if Ctam_telemetry.Metrics.enabled () then
    List.iter
      (fun (k, v) -> Ctam_telemetry.Profile.record_phase ("frontend." ^ k) v)
      frontend_timings;
  let wall_seconds = now () -. t_all0 in
  let gc1 = Gc.quick_stat () in
  let telemetry_json =
    J.Obj
      [
        ("telemetry_version", J.Int Build_info.telemetry_version);
        ("wall_seconds", J.Float wall_seconds);
        ("gc", Ctam_telemetry.Profile.gc_delta_json gc0 gc1);
      ]
  in
  let timings =
    frontend_timings @ compiled.Mapping.timings @ [ ("simulate", sim_seconds) ]
  in
  let report =
    J.Obj
      ([
        ("ctam_report_version", J.Int Build_info.report_version);
        ("version", J.String Build_info.version);
        ("program", J.String program.Program.name);
        ("scheme", scheme_json scheme);
        ("machine", topology_json machine);
        ("params", params_json params);
        ("nests", J.List (List.map nest_json compiled.Mapping.infos));
        ( "timings_seconds",
          J.Obj (List.map (fun (k, v) -> (k, J.Float v)) timings) );
        ("stats", Stats.to_json stats);
        (* How the simulation ran.  Sampled per-level probe counters
           (per_core, groups, conflicts) describe only the simulated
           1/sample_sets of the line population; [stats] is
           extrapolated. *)
        ( "simulation",
          J.Obj
            [
              ("stream", J.Bool stream);
              ("sample_sets", J.Int sample_sets);
              ("memo", J.Bool memo);
              ( "memo_hits",
                match sim_memo with
                | None -> J.Null
                | Some m -> J.Int (Memo.hits m) );
              ( "memo_misses",
                match sim_memo with
                | None -> J.Null
                | Some m -> J.Int (Memo.misses m) );
            ] );
        ("per_core", per_core_json counters machine);
        ("groups", groups_json counters legend);
        ( "reuse",
          J.Obj
            [
              ("total", J.Int (Probe_sinks.Reuse_split.total reuse));
              ("cold", J.Int (Probe_sinks.Reuse_split.cold reuse));
              ( "vertical",
                histogram_json (Probe_sinks.Reuse_split.vertical reuse) );
              ( "horizontal",
                histogram_json (Probe_sinks.Reuse_split.horizontal reuse) );
              ( "cross_socket",
                histogram_json (Probe_sinks.Reuse_split.cross reuse) );
            ] );
        ("conflicts", conflicts_json reuse);
        ( "barriers",
          J.Obj
            [
              ("count", J.Int (Probe_sinks.Counters.barriers counters));
              ( "invalidations",
                J.Int (Probe_sinks.Counters.invalidations_total counters) );
            ] );
        ("telemetry", telemetry_json);
      ]
      @ (match timeline with
        | None -> []
        | Some tl -> [ ("timeline", Trace_export.series_json tl) ])
      @
      match verify with
      | None -> []
      | Some r -> [ ("verify", Ctam_verify.Verify.to_json r) ])
  in
  {
    compiled;
    stats;
    counters;
    reuse;
    timeline;
    legend;
    sim_seconds;
    verify;
    report;
  }

let write_file path json =
  let oc = open_out path in
  output_string oc (J.to_string json);
  output_char oc '\n';
  close_out oc

let bench_sweep ?jobs ~quick ~machine () =
  let workloads = Ctam_workloads.Suite.all in
  let program k =
    if quick then Ctam_workloads.Kernel.small_program k
    else Ctam_workloads.Kernel.program k
  in
  (* Fan the scheme x workload grid out over domains: every task
     compiles and simulates with its own Hierarchy, so tasks share
     nothing mutable.  The JSON is assembled below from the collected
     stats in input order, so the output is byte-identical to a serial
     run (asserted by test_exp). *)
  let tasks =
    List.concat_map
      (fun scheme ->
        List.map (fun (k : Ctam_workloads.Kernel.t) -> (scheme, k)) workloads)
      Mapping.all_schemes
  in
  let results = Hashtbl.create 64 in
  List.iter2
    (fun (scheme, (k : Ctam_workloads.Kernel.t)) stats ->
      Hashtbl.replace results (scheme, k.name) stats)
    tasks
    (Ctam_util.Parallel.map ?domains:jobs
       (fun (scheme, k) -> Mapping.run scheme ~machine (program k))
       tasks);
  let base = Hashtbl.create 16 in
  List.map
    (fun scheme ->
      let rows =
        List.map
          (fun (k : Ctam_workloads.Kernel.t) ->
            let stats : Stats.t = Hashtbl.find results (scheme, k.name) in
            if scheme = Mapping.Base then
              Hashtbl.replace base k.name stats.Stats.cycles;
            let vs_base =
              match Hashtbl.find_opt base k.name with
              | Some b when b > 0 ->
                  Some (float_of_int stats.Stats.cycles /. float_of_int b)
              | _ -> None
            in
            ( vs_base,
              J.Obj
                ([
                   ("name", J.String k.name);
                   ("cycles", J.Int stats.Stats.cycles);
                   ("mem_accesses", J.Int stats.Stats.mem_accesses);
                   ("total_accesses", J.Int stats.Stats.total_accesses);
                   ("barriers", J.Int stats.Stats.barriers);
                 ]
                @
                match vs_base with
                | Some r -> [ ("vs_base", J.Float r) ]
                | None -> []) ))
          workloads
      in
      let ratios = List.filter_map fst rows in
      J.Obj
        ([
           ("version", J.String Build_info.version);
           ("machine", J.String machine.Topology.name);
           ("scheme", scheme_json scheme);
           ("quick", J.Bool quick);
           ("workloads", J.List (List.map snd rows));
         ]
        @
        if ratios = [] then []
        else [ ("geomean_vs_base", J.Float (Report.geomean ratios)) ]))
    Mapping.all_schemes
