let geomean = function
  | [] -> invalid_arg "Report.geomean: empty"
  | vs ->
      List.iter (fun v -> if v <= 0. then invalid_arg "Report.geomean: <= 0") vs;
      exp (List.fold_left (fun acc v -> acc +. log v) 0. vs
           /. float_of_int (List.length vs))

(* The geomean row summarises each numeric column over its positive
   cells; zero/absent/non-numeric cells are skipped rather than
   poisoning the column (the old behaviour dashed the whole column; a
   naive geomean over them would be nan/0).  A "*" marks columns where
   cells were skipped; [table] footnotes it.  A column with no usable
   cell at all still gets a dash. *)
let geomean_row ~label ncols rows =
  label
  :: List.init (ncols - 1) (fun c ->
         let cells = List.map (fun row -> List.nth row (c + 1)) rows in
         let values =
           List.filter (fun v -> v > 0.) (List.filter_map float_of_string_opt cells)
         in
         if values = [] then "-"
         else
           let star =
             if List.length values < List.length cells then "*" else ""
           in
           Printf.sprintf "%.3f%s" (geomean values) star)

let table ?geomean:glabel ~header rows =
  let ncols = List.length header in
  List.iter
    (fun row ->
      if List.length row <> ncols then invalid_arg "Report.table: ragged row")
    rows;
  let rows, starred =
    match glabel with
    | Some label when rows <> [] && ncols > 1 ->
        let grow = geomean_row ~label ncols rows in
        let starred =
          List.exists
            (fun cell ->
              String.length cell > 0 && cell.[String.length cell - 1] = '*')
            grow
        in
        (rows @ [ grow ], starred)
    | _ -> (rows, false)
  in
  let all = header :: rows in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth widths c in
           if c = 0 then Printf.sprintf "%-*s" w cell
           else Printf.sprintf "%*s" w cell)
         row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)
  ^ "\n"
  ^ if starred then "* geomean skips zero/absent cells\n" else ""

let normalized ~base values =
  if base <= 0. then invalid_arg "Report.normalized: base";
  List.map (fun v -> v /. base) values

let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v

let mean = function
  | [] -> invalid_arg "Report.mean: empty"
  | vs -> List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs)

let improvement_pct ~base ~opt = 100. *. (base -. opt) /. base

let section title =
  Printf.sprintf "\n%s\n%s\n" title (String.make (String.length title) '=')
