module J = Ctam_util.Json

type metric = {
  m_name : string;
  m_a : float;
  m_b : float;
  m_higher_is_worse : bool;
}

type record = {
  r_key : string * string * string;  (* workload, machine, scheme *)
  r_version : string option;
  r_metrics : metric list;
}

(* --- loading ---------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* A report file is either one JSON value (ctamap run/trace output) or
   JSONL, one object per line (the bench harness). *)
let load_file path =
  let s = read_file path in
  match J.parse s with
  | Ok v -> Ok [ v ]
  | Error whole_err -> (
      let lines =
        List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' s)
      in
      let parsed = List.map J.parse lines in
      if lines <> [] && List.for_all (function Ok _ -> true | _ -> false) parsed
      then Ok (List.filter_map (function Ok v -> Some v | _ -> None) parsed)
      else Error (Printf.sprintf "%s: %s" path whole_err))

(* --- record extraction ------------------------------------------------ *)

let str_member name j =
  match J.member name j with Some (J.String s) -> Some s | _ -> None

let num_member name j =
  match J.member name j with
  | Some (J.Int _ | J.Float _) -> Some (J.to_float (J.member_exn name j))
  | _ -> None

let version_of j = str_member "version" j

let metric ?(higher_is_worse = true) name v =
  { m_name = name; m_a = v; m_b = nan; m_higher_is_worse = higher_is_worse }

(* A half-record: metrics carry their own value in [m_a]; pairing fills
   [m_b] from the other side. *)
let of_run_report j =
  let scheme =
    match J.member "scheme" j with Some (J.String s) -> s | _ -> "?"
  in
  let machine =
    match J.member "machine" j with
    | Some m -> ( match str_member "name" m with Some n -> n | None -> "?")
    | None -> "?"
  in
  let workload = match str_member "program" j with Some p -> p | None -> "?" in
  let stats = J.member "stats" j in
  let stat name =
    match stats with Some s -> num_member name s | None -> None
  in
  let base =
    List.filter_map
      (fun n -> Option.map (metric n) (stat n))
      [ "cycles"; "mem_accesses"; "barriers" ]
  in
  let levels =
    match stats with
    | Some s -> (
        match J.member "per_level" s with
        | Some (J.List ls) ->
            List.filter_map
              (fun lj ->
                match (J.member "level" lj, num_member "miss_rate" lj) with
                | Some (J.Int l), Some mr ->
                    Some (metric (Printf.sprintf "L%d_miss_rate" l) mr)
                | _ -> None)
              ls
        | _ -> [])
    | None -> []
  in
  (* Self-telemetry (PR 6): compare the tool's own cost, not just the
     simulated machine's.  Wall-clock and allocation are noisy between
     runs, so they ride the same --threshold gate as everything else. *)
  let telemetry =
    match J.member "telemetry" j with
    | None -> []
    | Some t ->
        (match num_member "wall_seconds" t with
        | Some w -> [ metric "wall_seconds" w ]
        | None -> [])
        @ (match J.member "gc" t with
          | None -> []
          | Some gc ->
              List.filter_map
                (fun n -> Option.map (metric ("gc_" ^ n)) (num_member n gc))
                [
                  "minor_words";
                  "major_words";
                  "promoted_words";
                  "minor_collections";
                  "major_collections";
                ])
  in
  {
    r_key = (workload, machine, scheme);
    r_version = version_of j;
    r_metrics = base @ levels @ telemetry;
  }

let of_sweep_object j =
  let machine = match str_member "machine" j with Some m -> m | None -> "?" in
  let scheme = match str_member "scheme" j with Some s -> s | None -> "?" in
  let version = version_of j in
  let per_workload =
    match J.member "workloads" j with
    | Some (J.List ws) ->
        List.map
          (fun w ->
            let name =
              match str_member "name" w with Some n -> n | None -> "?"
            in
            let ms =
              List.filter_map
                (fun n -> Option.map (metric n) (num_member n w))
                [ "cycles"; "mem_accesses"; "barriers"; "vs_base" ]
            in
            { r_key = (name, machine, scheme); r_version = version; r_metrics = ms })
          ws
    | _ -> []
  in
  let summary =
    match num_member "geomean_vs_base" j with
    | Some g ->
        [
          {
            r_key = ("geomean", machine, scheme);
            r_version = version;
            r_metrics = [ metric "geomean_vs_base" g ];
          };
        ]
    | None -> []
  in
  (* Harness-level telemetry appended by bench/main.ml to each sweep
     row (absent from Run_report.bench_sweep itself, which must stay
     byte-deterministic).  Utilization is higher-is-better. *)
  let harness =
    let ms =
      List.filter_map
        (fun n -> Option.map (metric n) (num_member n j))
        [ "wall_seconds"; "major_words" ]
      @ List.filter_map Fun.id
          [
            Option.map
              (metric ~higher_is_worse:false "pool_utilization")
              (num_member "pool_utilization" j);
          ]
    in
    if ms = [] then []
    else
      [ { r_key = ("harness", machine, scheme); r_version = version; r_metrics = ms } ]
  in
  per_workload @ summary @ harness

let of_tune_report j =
  let workload = match str_member "program" j with Some p -> p | None -> "?" in
  let machine = match str_member "machine" j with Some m -> m | None -> "?" in
  let strategy =
    match str_member "strategy" j with Some s -> s | None -> "?"
  in
  let best_stat name =
    match J.member "best" j with
    | Some b -> (
        match J.member "outcome" b with
        | Some o -> num_member name o
        | None -> None)
    | None -> None
  in
  let ms =
    List.filter_map Fun.id
      [
        Option.map (metric "best_cycles") (best_stat "cycles");
        Option.map (metric "best_mem_accesses") (best_stat "mem_accesses");
        Option.map
          (metric "tuned_vs_default")
          (num_member "tuned_vs_default" j);
      ]
  in
  {
    r_key = (workload, machine, "tune:" ^ strategy);
    r_version = version_of j;
    r_metrics = ms;
  }

let records_of values =
  List.concat_map
    (fun j ->
      match j with
      | J.Obj _ when J.member "ctam_report_version" j <> None ->
          [ of_run_report j ]
      | J.Obj _ when J.member "ctam_tune_version" j <> None ->
          [ of_tune_report j ]
      | J.Obj _ when J.member "workloads" j <> None -> of_sweep_object j
      | _ -> [])
    values

(* --- diffing ---------------------------------------------------------- *)

type cell = {
  c_key : string * string * string;
  c_metric : string;
  c_a : float;
  c_b : float;
  c_pct : float;          (* signed percent change, b vs a *)
  c_regression : bool;
}

let default_threshold = 2.0

let pct_change a b =
  if a = 0. then if b = 0. then 0. else infinity
  else (b -. a) /. Float.abs a *. 100.

let diff_records ?(threshold = default_threshold) ra rb =
  let tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace tbl r.r_key r) ra;
  let cells = ref [] in
  let missing = ref [] in
  List.iter
    (fun rb ->
      match Hashtbl.find_opt tbl rb.r_key with
      | None -> missing := rb.r_key :: !missing
      | Some ra ->
          List.iter
            (fun mb ->
              match
                List.find_opt (fun ma -> ma.m_name = mb.m_name) ra.r_metrics
              with
              | None -> ()
              | Some ma ->
                  let pct = pct_change ma.m_a mb.m_a in
                  cells :=
                    {
                      c_key = rb.r_key;
                      c_metric = mb.m_name;
                      c_a = ma.m_a;
                      c_b = mb.m_a;
                      c_pct = pct;
                      c_regression =
                        mb.m_higher_is_worse && pct > threshold;
                    }
                    :: !cells)
            rb.r_metrics)
    rb;
  (List.rev !cells, List.rev !missing)

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4f" v

let fmt_pct p =
  if Float.is_nan p then "n/a"
  else if p = infinity then "+inf"
  else Printf.sprintf "%+.2f%%" p

let render ?(threshold = default_threshold) ~path_a ~path_b a_values b_values =
  let ra = records_of a_values and rb = records_of b_values in
  let cells, missing = diff_records ~threshold ra rb in
  let buf = Buffer.create 4096 in
  let version_of_records rs =
    List.fold_left
      (fun acc r -> match r.r_version with Some v -> Some v | None -> acc)
      None rs
  in
  let va = version_of_records ra and vb = version_of_records rb in
  Buffer.add_string buf
    (Printf.sprintf "diff %s (A) vs %s (B), threshold %.1f%%\n" path_a path_b
       threshold);
  (match (va, vb) with
  | Some a, Some b when a <> b ->
      Buffer.add_string buf
        (Printf.sprintf "note: different tool versions (A: %s, B: %s)\n" a b)
  | _ -> ());
  if ra = [] then Buffer.add_string buf "warning: no records recognised in A\n";
  if rb = [] then Buffer.add_string buf "warning: no records recognised in B\n";
  let changed =
    List.filter (fun c -> c.c_a <> c.c_b || c.c_regression) cells
  in
  let rows =
    List.map
      (fun c ->
        let w, m, s = c.c_key in
        [
          Printf.sprintf "%s/%s/%s %s" w m s c.c_metric;
          fmt_value c.c_a;
          fmt_value c.c_b;
          fmt_pct c.c_pct ^ (if c.c_regression then " !" else "");
        ])
      changed
  in
  if cells = [] then
    Buffer.add_string buf "no comparable records (keys never matched)\n"
  else if rows = [] then
    Buffer.add_string buf
      (Printf.sprintf "%d metrics compared, all identical\n" (List.length cells))
  else begin
    Buffer.add_string buf
      (Report.table ~header:[ "metric"; "A"; "B"; "delta" ] rows);
    Buffer.add_string buf
      (Printf.sprintf "%d metrics compared, %d changed\n" (List.length cells)
         (List.length rows))
  end;
  List.iter
    (fun (w, m, s) ->
      Buffer.add_string buf
        (Printf.sprintf "only in B (ignored): %s/%s/%s\n" w m s))
    missing;
  let regressions = List.filter (fun c -> c.c_regression) cells in
  (match regressions with
  | [] -> ()
  | rs ->
      Buffer.add_string buf
        (Printf.sprintf "REGRESSIONS (> %.1f%% worse): %d\n" threshold
           (List.length rs)));
  (Buffer.contents buf, List.length regressions)

let diff_files ?threshold path_a path_b =
  match (load_file path_a, load_file path_b) with
  | Error e, _ | _, Error e -> Error e
  | Ok a, Ok b -> Ok (render ?threshold ~path_a ~path_b a b)
