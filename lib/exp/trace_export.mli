(** Chrome trace-event / Perfetto export of a {!Ctam_cachesim.Timeline}.

    [trace_json] renders the timeline as a trace-event JSON object
    loadable by [chrome://tracing] and [ui.perfetto.dev]:

    - process 0 ("simulated machine"): one thread per core carrying
      [ph:"X"] duration spans per executed iteration-group segment
      (args: segment, phase, accesses, misses, mem) plus [ph:"C"]
      counter samples ("core<c> L<l>": hits/misses per window); a
      "sync" thread with phase spans, barrier instants and the
      machine-wide "reuse split" counter; a "coherence" thread with
      write-invalidation instants;
    - process 1 ("ctamap compiler"): back-to-back wall-clock spans,
      one per compile phase ([Mapping.compile ?clock] timings).

    Simulated cycles map 1:1 to trace microseconds; compiler spans use
    real wall microseconds.  Events are sorted by (pid, tid, ts) with
    insertion order as the tie-break, so per-track timestamps are
    non-decreasing (asserted by [tools/trace_check]) and the output is
    deterministic. *)

val trace_json :
  ?compile_timings:(string * float) list ->
  program:string ->
  machine:string ->
  scheme:string ->
  legend:(int * (string * int)) list ->
  Ctam_cachesim.Timeline.t ->
  Ctam_util.Json.t

(** Windowed time-series image for embedding in a run report:
    window/num_windows, the machine-wide reuse split arrays, and per
    core accesses, busy, occupancy (busy / window, may exceed 1) and
    per-level hits / misses / miss-rate arrays. *)
val series_json : Ctam_cachesim.Timeline.t -> Ctam_util.Json.t
