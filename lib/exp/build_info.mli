(** Single source of truth for the tool version.

    Surfaced by [ctamap --version] and stamped as the ["version"]
    member of every JSON artefact (run reports, bench-sweep lines,
    check reports, traces) so [ctamap report diff] can warn when
    comparing artefacts from different builds. *)

val version : string

(** Schema version of the run-report JSON ([ctam_report_version]). *)
val report_version : int

(** Schema version of the run-report [telemetry] member and the
    [--metrics-out] snapshot ([ctam_metrics_version]). *)
val telemetry_version : int
