open Ctam_arch
open Ctam_ir
open Ctam_cachesim
open Ctam_core
open Ctam_workloads

(* The simulator runs the paper's machines at 1/16 capacity with
   proportionally sized working sets (see DESIGN.md): the data-size to
   cache-size ratios, which drive all the effects, are preserved.
   Quick mode halves the linear workload size (data / 4) and scales the
   machine by a further 4x, keeping the same ratios at a quarter of the
   simulation cost. *)
let machine_scale ~quick ~scale =
  (* [scale] (bench --scale / scale-sweep) overrides the quick/full
     capacity divisor wholesale. *)
  match scale with Some s -> s | None -> if quick then 64 else 16

let dunnington ~quick ~scale =
  Machines.dunnington ~scale:(machine_scale ~quick ~scale) ()

let commercial ~quick ~scale =
  Machines.commercial ~scale:(machine_scale ~quick ~scale) ()

(* Quick mode also trims the suite to six kernels spanning the access
   classes (stencil, transpose, shared vector, strided dependence,
   dependence relaxation, scanline). *)
let apps ~quick =
  if quick then
    [ Suite.galgel; Suite.equake; Suite.cg; Suite.sp; Suite.facesim;
      Suite.povray ]
  else Suite.all

let program_of ~quick k =
  if quick then Kernel.program ~size:(max 32 (k.Kernel.default_size / 2)) k
  else Kernel.program k

(* Debug hook: with CTAM_CHECK set (to anything but "" or "0") every
   mapping the experiment drivers compile is run through the
   {!Ctam_verify} legality checker first, and a violation aborts the
   experiment with the full diagnostic.  Off by default — the checker
   re-enumerates every iteration point, roughly doubling compile
   time. *)
let verify_enabled =
  match Sys.getenv_opt "CTAM_CHECK" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let run_stats ?params ?map_topo scheme ~machine prog =
  if verify_enabled then begin
    let c = Mapping.compile ?params ?map_topo scheme ~machine prog in
    let r = Ctam_verify.Verify.check c in
    if not (Ctam_verify.Verify.ok r) then
      failwith
        (Fmt.str "CTAM_CHECK %s / %s / %s:@.%a" prog.Program.name
           machine.Topology.name (Mapping.scheme_name scheme)
           Ctam_verify.Verify.pp_report r);
    Mapping.simulate c
  end
  else Mapping.run ?params ?map_topo scheme ~machine prog

let cycles ?params ?map_topo scheme ~machine prog =
  (run_stats ?params ?map_topo scheme ~machine prog).Stats.cycles

(* ------------------------------------------------------------------ *)

let table1 () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Report.section "Table 1: machine parameters");
  List.iter
    (fun topo ->
      Buffer.add_string buf (Fmt.str "%a@." Topology.pp topo))
    (Machines.commercial ());
  Buffer.add_string buf
    (Fmt.str "(experiments use the same topologies at 1/%d capacity)@."
       (machine_scale ~quick:false ~scale:None));
  Buffer.contents buf

let table2 ?(quick = false) ?scale () =
  let machine = dunnington ~quick ~scale in
  let rows =
    List.map
      (fun k ->
        let prog = program_of ~quick k in
        let stats = Mapping.simulate_serial ~machine prog in
        [
          k.Kernel.name;
          k.Kernel.origin;
          (match k.Kernel.kind with
          | Kernel.Parallel_bench -> "parallel"
          | Kernel.Sequential_app -> "sequential");
          Printf.sprintf "%.1f KB" (float_of_int (Program.data_bytes prog) /. 1024.);
          string_of_int stats.Stats.cycles;
        ])
      (apps ~quick)
  in
  Report.section "Table 2: applications (single-core Dunnington cycles)"
  ^ Report.table
      ~header:[ "application"; "suite"; "kind"; "data"; "1-core cycles" ]
      rows

let fig2 ?(quick = false) ?scale () =
  let prog = program_of ~quick Suite.galgel in
  let machines = commercial ~quick ~scale in
  let versions =
    List.map
      (fun m -> (m, Mapping.compile Mapping.Combined ~machine:m prog))
      machines
  in
  let rows =
    List.map
      (fun target ->
        let cycles_for (src, compiled) =
          let c =
            if src.Topology.name = target.Topology.name then compiled
            else Mapping.port compiled ~machine:target
          in
          float_of_int (Mapping.simulate c).Stats.cycles
        in
        let raw = List.map cycles_for versions in
        let best = List.fold_left min infinity raw in
        target.Topology.name
        :: List.map (fun v -> Report.f2 (v /. best)) raw)
      machines
  in
  Report.section
    "Figure 2: galgel versions (columns) executed on machines (rows), \
     normalized to the best version per machine"
  ^ Report.table
      ~header:
        ("executed on"
        :: List.map (fun m -> m.Topology.name ^ " version") machines)
      rows

let fig13 ?(quick = false) ?scale () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Report.section
       "Figure 13: normalized execution cycles (Base / Base+ / TopologyAware)");
  let schemes = [ Mapping.Base; Mapping.Base_plus; Mapping.Topology_aware ] in
  let miss_reductions = ref [] in
  List.iter
    (fun machine ->
      let rows = ref [] in
      let norm_sums = List.map (fun s -> (s, ref 0.)) schemes in
      List.iter
        (fun k ->
          let prog = program_of ~quick k in
          let stats = List.map (fun s -> run_stats s ~machine prog) schemes in
          let base = float_of_int (List.hd stats).Stats.cycles in
          let normalized =
            List.map (fun st -> float_of_int st.Stats.cycles /. base) stats
          in
          List.iter2 (fun (_, acc) v -> acc := !acc +. log v) norm_sums
            normalized;
          (if machine.Topology.name = "Dunnington" then
             let b = List.hd stats and t = List.nth stats 2 in
             miss_reductions :=
               ( Stats.misses_at b 1,
                 Stats.misses_at t 1,
                 Stats.misses_at b 2,
                 Stats.misses_at t 2,
                 Stats.misses_at b 3,
                 Stats.misses_at t 3 )
               :: !miss_reductions);
          rows := (k.Kernel.name :: List.map Report.f2 normalized) :: !rows)
        (apps ~quick);
      let geo =
        List.map
          (fun (_, acc) ->
            Report.f2 (exp (!acc /. float_of_int (List.length (apps ~quick)))))
          norm_sums
      in
      Buffer.add_string buf
        (Report.section machine.Topology.name
        ^ Report.table
            ~header:[ "application"; "Base"; "Base+"; "TopologyAware" ]
            (List.rev !rows @ [ "geomean" :: geo ])))
    (commercial ~quick ~scale);
  (* Miss reductions on Dunnington (text of §4.2). *)
  let sum f = List.fold_left (fun a x -> a + f x) 0 !miss_reductions in
  let red fb ft =
    let b = sum fb and t = sum ft in
    if b = 0 then 0. else 100. *. float_of_int (b - t) /. float_of_int b
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\nDunnington miss reductions of TopologyAware over Base: L1 %.0f%%, \
        L2 %.0f%%, L3 %.0f%%\n"
       (red (fun (b, _, _, _, _, _) -> b) (fun (_, t, _, _, _, _) -> t))
       (red (fun (_, _, b, _, _, _) -> b) (fun (_, _, _, t, _, _) -> t))
       (red (fun (_, _, _, _, b, _) -> b) (fun (_, _, _, _, _, t) -> t)));
  Buffer.contents buf

let fig14 ?(quick = false) ?scale () =
  let machines = commercial ~quick ~scale in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Report.section
       "Figure 14: cross-machine versions, normalized to the native version");
  List.iter
    (fun target ->
      let others =
        List.filter
          (fun m -> m.Topology.name <> target.Topology.name)
          machines
      in
      let rows =
        List.map
          (fun k ->
            let prog = program_of ~quick k in
            let native =
              float_of_int
                (cycles Mapping.Topology_aware ~machine:target prog)
            in
            k.Kernel.name
            :: List.map
                 (fun src ->
                   let compiled =
                     Mapping.compile Mapping.Topology_aware ~machine:src prog
                   in
                   let ported = Mapping.port compiled ~machine:target in
                   Report.f2
                     (float_of_int (Mapping.simulate ported).Stats.cycles
                     /. native))
                 others)
          (apps ~quick)
      in
      Buffer.add_string buf
        (Report.section ("Execution on " ^ target.Topology.name)
        ^ Report.table
            ~header:
              ("application"
              :: List.map (fun m -> m.Topology.name ^ " version") others)
            rows))
    machines;
  Buffer.contents buf

let fig15 ?(quick = false) ?scale () =
  let machine = dunnington ~quick ~scale in
  let schemes =
    [ Mapping.Base; Mapping.Topology_aware; Mapping.Local; Mapping.Combined ]
  in
  let rows =
    List.map
      (fun k ->
        let prog = program_of ~quick k in
        let cycles = List.map (fun s -> cycles s ~machine prog) schemes in
        let base = float_of_int (List.hd cycles) in
        k.Kernel.name
        :: List.map (fun c -> Report.f2 (float_of_int c /. base))
             (List.tl cycles))
      (apps ~quick)
  in
  Report.section
    "Figure 15: local scheduling in isolation and combined (Dunnington, \
     normalized to Base)"
  ^ Report.table
      ~header:[ "application"; "TopologyAware"; "Local"; "Combined" ]
      rows

let fig16 ?(quick = false) ?scale () =
  let machine = dunnington ~quick ~scale in
  let sizes = [ 256; 512; 1024; 2048; 4096; 8192 ] in
  let rows =
    List.map
      (fun k ->
        let prog = program_of ~quick k in
        let base = float_of_int (cycles Mapping.Base ~machine prog) in
        k.Kernel.name
        :: List.map
             (fun bs ->
               let params = { Mapping.default_params with block_size = bs } in
               Report.f2
                 (float_of_int
                    (cycles ~params Mapping.Topology_aware ~machine prog)
                 /. base))
             sizes)
      (apps ~quick)
  in
  Report.section
    "Figure 16: data-block-size sensitivity (TopologyAware on Dunnington, \
     normalized to Base)"
  ^ Report.table
      ~header:("application" :: List.map (fun b -> Printf.sprintf "%dB" b) sizes)
      rows

let fig17 ?(quick = false) ?scale () =
  let counts = [ 12; 18; 24 ] in
  let rows =
    List.map
      (fun k ->
        let prog = program_of ~quick k in
        k.Kernel.name
        :: List.concat_map
             (fun n ->
               let machine =
                 Machines.dunnington_scaled_cores
                   ~scale:(machine_scale ~quick ~scale) ~num_cores:n ()
               in
               let base = float_of_int (cycles Mapping.Base ~machine prog) in
               [
                 Report.f2
                   (float_of_int (cycles Mapping.Base_plus ~machine prog)
                   /. base);
                 Report.f2
                   (float_of_int
                      (cycles Mapping.Topology_aware ~machine prog)
                   /. base);
               ])
             counts)
      (apps ~quick)
  in
  Report.section
    "Figure 17: core-count scaling (normalized to Base at each count)"
  ^ Report.table
      ~header:
        ("application"
        :: List.concat_map
             (fun n ->
               [ Printf.sprintf "B+/%dc" n; Printf.sprintf "TA/%dc" n ])
             counts)
      rows

let fig18 ?(quick = false) ?scale () =
  let machines =
    [
      ("Default", dunnington ~quick ~scale);
      ("Arch-I", Machines.arch_i ~scale:(machine_scale ~quick ~scale) ());
      ("Arch-II", Machines.arch_ii ~scale:(machine_scale ~quick ~scale) ());
    ]
  in
  let rows =
    List.map
      (fun k ->
        let prog = program_of ~quick k in
        k.Kernel.name
        :: List.map
             (fun (_, machine) ->
               let base = float_of_int (cycles Mapping.Base ~machine prog) in
               Report.f2
                 (float_of_int (cycles Mapping.Topology_aware ~machine prog)
                 /. base))
             machines)
      (apps ~quick)
  in
  Report.section
    "Figure 18: deeper on-chip hierarchies (TopologyAware normalized to \
     Base per machine)"
  ^ Report.table
      ~header:("application" :: List.map fst machines)
      rows

let fig19 ?(quick = false) ?scale () =
  let machine = Machines.halve_caches (dunnington ~quick ~scale) in
  let rows =
    List.map
      (fun k ->
        let prog = program_of ~quick k in
        let base = float_of_int (cycles Mapping.Base ~machine prog) in
        [
          k.Kernel.name;
          Report.f2
            (float_of_int (cycles Mapping.Base_plus ~machine prog) /. base);
          Report.f2
            (float_of_int (cycles Mapping.Topology_aware ~machine prog)
            /. base);
        ])
      (apps ~quick)
  in
  Report.section
    "Figure 19: halved cache capacities (Dunnington/2, normalized to Base)"
  ^ Report.table ~header:[ "application"; "Base+"; "TopologyAware" ] rows

let fig20 ?(quick = true) ?scale () =
  (* The optimal search simulates many candidate mappings: always use
     the quick configuration here; like the paper's ILP (23-hour runs),
     this is the most expensive experiment. *)
  ignore quick;
  let quick = true in
  let machine = Machines.arch_i ~scale:(machine_scale ~quick ~scale) () in
  let l12 = Topology.truncate_levels 2 machine in
  let l123 = Topology.truncate_levels 3 machine in
  let rows =
    List.map
      (fun k ->
        let prog = program_of ~quick k in
        let base = float_of_int (cycles Mapping.Base ~machine prog) in
        let with_map_topo mt =
          float_of_int
            (cycles ~map_topo:mt Mapping.Topology_aware ~machine prog)
          /. base
        in
        let opt =
          (Optimal.search ~budget:60 ~machine prog).Optimal.stats.Stats.cycles
        in
        [
          k.Kernel.name;
          Report.f2 (with_map_topo l12);
          Report.f2 (with_map_topo l123);
          Report.f2 (with_map_topo machine);
          Report.f2 (float_of_int opt /. base);
        ])
      (apps ~quick)
  in
  Report.section
    "Figure 20: level-subset mappings and optimal search (Arch-I, \
     normalized to Base; reduced instances)"
  ^ Report.table
      ~header:[ "application"; "L1+L2"; "L1+L2+L3"; "L1..L4"; "Optimal" ]
      rows

let alphabeta ?(quick = false) ?scale () =
  let machine = dunnington ~quick ~scale in
  let points = [ (0.0, 1.0); (0.25, 0.75); (0.5, 0.5); (0.75, 0.25); (1.0, 0.0) ] in
  let rows =
    List.map
      (fun k ->
        let prog = program_of ~quick k in
        let base = float_of_int (cycles Mapping.Base ~machine prog) in
        k.Kernel.name
        :: List.map
             (fun (alpha, beta) ->
               let params = { Mapping.default_params with alpha; beta } in
               Report.f2
                 (float_of_int (cycles ~params Mapping.Combined ~machine prog)
                 /. base))
             points)
      (apps ~quick)
  in
  Report.section
    "alpha/beta sensitivity of the combined scheme (Dunnington, normalized \
     to Base)"
  ^ Report.table
      ~header:
        ("application"
        :: List.map (fun (a, b) -> Printf.sprintf "a=%.2f b=%.2f" a b) points)
      rows

let overhead ?(quick = false) ?scale () =
  let machine = dunnington ~quick ~scale in
  let rows =
    List.map
      (fun k ->
        let prog = program_of ~quick k in
        let time f =
          let t0 = Sys.time () in
          ignore (f ());
          Sys.time () -. t0
        in
        let t_base =
          time (fun () -> Mapping.compile Mapping.Base ~machine prog)
        in
        let t_topo =
          time (fun () -> Mapping.compile Mapping.Topology_aware ~machine prog)
        in
        [
          k.Kernel.name;
          Printf.sprintf "%.2fs" t_base;
          Printf.sprintf "%.2fs" t_topo;
          Printf.sprintf "+%.0f%%"
            (100. *. (t_topo -. t_base) /. Float.max 1e-6 t_base);
        ])
      (apps ~quick)
  in
  Report.section
    "Compilation overhead of the topology-aware mapping (cf. paper's \
     +65..94% over parallelization alone)"
  ^ Report.table
      ~header:[ "application"; "parallelize only"; "topology-aware"; "overhead" ]
      rows

let dep_stats ?(quick = false) ?scale:_ () =
  let deps, total =
    List.fold_left
      (fun (d, t) k ->
        let p = program_of ~quick k in
        let nests = Program.parallel_nests p in
        ( d
          + List.length
              (List.filter Ctam_deps.Dep_test.nest_may_carry_deps nests),
          t + List.length nests ))
      (0, 0) (apps ~quick)
  in
  Report.section "Dependence statistics (cf. paper: ~14% of parallel loops)"
  ^ Printf.sprintf
      "%d of %d parallel loops carry loop-carried dependences (%.0f%%)\n" deps
      total
      (100. *. float_of_int deps /. float_of_int total)

let dynamic ?(quick = false) ?scale () =
  let machine = dunnington ~quick ~scale in
  let rows =
    List.map
      (fun k ->
        let prog = program_of ~quick k in
        let base = float_of_int (cycles Mapping.Base ~machine prog) in
        [
          k.Kernel.name;
          Report.f2
            (float_of_int (cycles Mapping.Topology_aware ~machine prog)
            /. base);
          Report.f2
            (float_of_int
               (Dynamic_sched.run ~machine prog).Ctam_cachesim.Stats.cycles
            /. base);
        ])
      (apps ~quick)
  in
  Report.section
    "Dynamic scheduling comparison (paper section 5: dynamic distribution \
     did not generate good results; normalized to Base)"
  ^ Report.table ~header:[ "application"; "TopologyAware"; "Dynamic" ] rows

let depmode ?(quick = false) ?scale () =
  (* §3.5.2's two options on the dependence-carrying kernels:
     clustering dependent groups (option 1, no synchronization) vs
     distributing + synchronizing (option 2, the default).  The paper
     expects option 1 to lose parallelism when dependences are many. *)
  let machine = dunnington ~quick ~scale in
  let rows =
    List.map
      (fun k ->
        let prog = program_of ~quick k in
        let base = float_of_int (cycles Mapping.Base ~machine prog) in
        let with_mode m =
          let params = { Mapping.default_params with dependence_mode = m } in
          float_of_int (cycles ~params Mapping.Topology_aware ~machine prog)
          /. base
        in
        [
          k.Kernel.name;
          Report.f2 (with_mode Distribute.Synchronize);
          Report.f2 (with_mode Distribute.Cluster);
        ])
      [ Suite.sp; Suite.facesim ]
  in
  Report.section
    "Dependence handling options of section 3.5.2 (normalized to Base)"
  ^ Report.table
      ~header:[ "application"; "synchronize (opt 2)"; "cluster (opt 1)" ]
      rows

let registry =
  [
    ("table1", fun ?(quick = false) ?scale () -> ignore quick; ignore scale; table1 ());
    ("table2", fun ?quick ?scale () -> table2 ?quick ?scale ());
    ("fig2", fun ?quick ?scale () -> fig2 ?quick ?scale ());
    ("fig13", fun ?quick ?scale () -> fig13 ?quick ?scale ());
    ("fig14", fun ?quick ?scale () -> fig14 ?quick ?scale ());
    ("fig15", fun ?quick ?scale () -> fig15 ?quick ?scale ());
    ("fig16", fun ?quick ?scale () -> fig16 ?quick ?scale ());
    ("fig17", fun ?quick ?scale () -> fig17 ?quick ?scale ());
    ("fig18", fun ?quick ?scale () -> fig18 ?quick ?scale ());
    ("fig19", fun ?quick ?scale () -> fig19 ?quick ?scale ());
    ("fig20", fun ?quick ?scale () -> fig20 ?quick ?scale ());
    ("alphabeta", fun ?quick ?scale () -> alphabeta ?quick ?scale ());
    ("overhead", fun ?quick ?scale () -> overhead ?quick ?scale ());
    ("depstats", fun ?quick ?scale () -> dep_stats ?quick ?scale ());
    ("dynamic", fun ?quick ?scale () -> dynamic ?quick ?scale ());
    ("depmode", fun ?quick ?scale () -> depmode ?quick ?scale ());
  ]

let names = List.map fst registry

let by_name name =
  match List.assoc_opt (String.lowercase_ascii name) registry with
  | Some f -> f
  | None -> raise Not_found

let all ?(quick = false) ?scale ?jobs () =
  (* Experiments are independent (each builds its own machines and
     hierarchies); run them across domains and emit in registry
     order.  Only the wall-clock columns of [overhead] are
     load-sensitive; every simulated number is deterministic. *)
  Ctam_util.Parallel.map ?domains:jobs
    (fun (name, f) -> (name, f ?quick:(Some quick) ?scale ()))
    registry
