open Ctam_cachesim
module J = Ctam_util.Json

(* One simulated cycle is rendered as one trace microsecond (ts/dur are
   microseconds in the Chrome trace-event format); the compiler track
   converts wall seconds to microseconds, so both tracks use real trace
   units even though their time bases are unrelated. *)

type ev = {
  e_pid : int;
  e_tid : int;
  e_ts : int;
  e_order : int;  (* insertion rank: stable tie-break for equal ts *)
  e_json : J.t;
}

let pid_sim = 0
let pid_compiler = 1

let mk_ev ~pid ~tid ~ts ~order fields =
  {
    e_pid = pid;
    e_tid = tid;
    e_ts = ts;
    e_order = order;
    e_json =
      J.Obj (("pid", J.Int pid) :: ("tid", J.Int tid) :: ("ts", J.Int ts) :: fields);
  }

let meta ~pid ~tid ~order name value =
  mk_ev ~pid ~tid ~ts:0 ~order
    [
      ("ph", J.String "M");
      ("name", J.String name);
      ("args", J.Obj [ ("name", J.String value) ]);
    ]

let span_name legend seg =
  if seg < 0 then "untagged"
  else
    match List.assoc_opt seg legend with
    | Some (nest, group) -> Printf.sprintf "%s:g%d" nest group
    | None -> Printf.sprintf "seg%d" seg

let trace_events ?(compile_timings = []) ~legend tl =
  let ncores = Timeline.num_cores tl in
  let tid_sync = ncores in
  let tid_coherence = ncores + 1 in
  let order = ref 0 in
  let evs = ref [] in
  let push e = incr order; evs := e :: !evs in
  let add ~pid ~tid ~ts fields = push (mk_ev ~pid ~tid ~ts ~order:!order fields) in
  (* metadata: names for both processes and every thread *)
  push (meta ~pid:pid_sim ~tid:0 ~order:!order "process_name" "simulated machine");
  push
    (meta ~pid:pid_compiler ~tid:0 ~order:!order "process_name" "ctamap compiler");
  for c = 0 to ncores - 1 do
    push
      (meta ~pid:pid_sim ~tid:c ~order:!order "thread_name"
         (Printf.sprintf "core %d" c))
  done;
  push (meta ~pid:pid_sim ~tid:tid_sync ~order:!order "thread_name" "sync");
  push
    (meta ~pid:pid_sim ~tid:tid_coherence ~order:!order "thread_name" "coherence");
  push (meta ~pid:pid_compiler ~tid:0 ~order:!order "thread_name" "compile phases");
  (* per-core iteration-group spans *)
  List.iter
    (fun (sp : Timeline.span) ->
      add ~pid:pid_sim ~tid:sp.sp_core ~ts:sp.sp_start
        [
          ("ph", J.String "X");
          ("dur", J.Int (max 0 (sp.sp_end - sp.sp_start)));
          ("name", J.String (span_name legend sp.sp_segment));
          ("cat", J.String "group");
          ( "args",
            J.Obj
              [
                ("segment", J.Int sp.sp_segment);
                ("phase", J.Int sp.sp_phase);
                ("accesses", J.Int sp.sp_accesses);
                ("misses", J.Int sp.sp_misses);
                ("mem", J.Int sp.sp_mem);
              ] );
        ])
    (Timeline.spans tl);
  (* phases as spans on the sync track, barriers as instants *)
  List.iter
    (fun (m : Timeline.phase_mark) ->
      add ~pid:pid_sim ~tid:tid_sync ~ts:m.ph_start
        [
          ("ph", J.String "X");
          ("dur", J.Int (max 0 (m.ph_end - m.ph_start)));
          ("name", J.String (Printf.sprintf "phase %d" m.ph_index));
          ("cat", J.String "phase");
          ("args", J.Obj [ ("phase", J.Int m.ph_index) ]);
        ])
    (Timeline.phases tl);
  List.iter
    (fun (b : Timeline.barrier) ->
      add ~pid:pid_sim ~tid:tid_sync ~ts:b.b_enter
        [
          ("ph", J.String "i");
          ("s", J.String "p");
          ("name", J.String (Printf.sprintf "barrier %d" b.b_phase));
          ("cat", J.String "barrier");
          ( "args",
            J.Obj
              [
                ("phase", J.Int b.b_phase);
                ("enter", J.Int b.b_enter);
                ("exit", J.Int b.b_exit);
                ("cost", J.Int (b.b_exit - b.b_enter));
              ] );
        ])
    (Timeline.barriers tl);
  (* write-invalidations on a dedicated coherence track *)
  List.iter
    (fun (i : Timeline.invalidation) ->
      add ~pid:pid_sim ~tid:tid_coherence ~ts:i.i_cycles
        [
          ("ph", J.String "i");
          ("s", J.String "t");
          ("name", J.String "invalidate");
          ("cat", J.String "coherence");
          ( "args",
            J.Obj
              [
                ("writer", J.Int i.i_core);
                ("level", J.Int i.i_level);
                ("line", J.Int i.i_line);
              ] );
        ])
    (Timeline.invalidations tl);
  (* counter tracks: per-core per-level hits/misses, sampled per window *)
  let w = Timeline.window tl in
  let nw = Timeline.num_windows tl in
  for c = 0 to ncores - 1 do
    List.iter
      (fun level ->
        let hits = Timeline.hits_series tl ~core:c ~level in
        let misses = Timeline.misses_series tl ~core:c ~level in
        for k = 0 to nw - 1 do
          add ~pid:pid_sim ~tid:c ~ts:(k * w)
            [
              ("ph", J.String "C");
              ("name", J.String (Printf.sprintf "core%d L%d" c level));
              ( "args",
                J.Obj
                  [ ("hits", J.Int hits.(k)); ("misses", J.Int misses.(k)) ] );
            ]
        done)
      (Timeline.levels tl)
  done;
  (* machine-wide reuse split counter on the sync track *)
  let v, h, x, cold = Timeline.reuse_series tl in
  for k = 0 to nw - 1 do
    add ~pid:pid_sim ~tid:tid_sync ~ts:(k * w)
      [
        ("ph", J.String "C");
        ("name", J.String "reuse split");
        ( "args",
          J.Obj
            [
              ("vertical", J.Int v.(k));
              ("horizontal", J.Int h.(k));
              ("cross_socket", J.Int x.(k));
              ("cold", J.Int cold.(k));
            ] );
      ]
  done;
  (* compile phases: back-to-back wall-clock spans on their own process *)
  let ts = ref 0 in
  List.iter
    (fun (phase, seconds) ->
      let dur = max 1 (int_of_float (seconds *. 1e6)) in
      add ~pid:pid_compiler ~tid:0 ~ts:!ts
        [
          ("ph", J.String "X");
          ("dur", J.Int dur);
          ("name", J.String phase);
          ("cat", J.String "compile");
          ("args", J.Obj [ ("seconds", J.Float seconds) ]);
        ];
      ts := !ts + dur)
    compile_timings;
  (* The trace_check tool asserts non-decreasing ts per (pid, tid);
     sort each track by ts, breaking ties by insertion rank so output
     is deterministic. *)
  let sorted =
    List.stable_sort
      (fun a b ->
        if a.e_pid <> b.e_pid then compare a.e_pid b.e_pid
        else if a.e_tid <> b.e_tid then compare a.e_tid b.e_tid
        else if a.e_ts <> b.e_ts then compare a.e_ts b.e_ts
        else compare a.e_order b.e_order)
      (List.rev !evs)
  in
  List.map (fun e -> e.e_json) sorted

let trace_json ?compile_timings ~program ~machine ~scheme ~legend tl =
  J.Obj
    [
      ("traceEvents", J.List (trace_events ?compile_timings ~legend tl));
      ("displayTimeUnit", J.String "ms");
      ("version", J.String Build_info.version);
      ("program", J.String program);
      ("machine", J.String machine);
      ("scheme", J.String scheme);
      ("window", J.Int (Timeline.window tl));
      ("cycles", J.Int (Timeline.max_cycles tl));
      ( "dropped_invalidations",
        J.Int (Timeline.dropped_invalidations tl) );
    ]

let int_series a = J.List (Array.to_list (Array.map (fun v -> J.Int v) a))

let series_json tl =
  let w = Timeline.window tl in
  let nw = Timeline.num_windows tl in
  let ncores = Timeline.num_cores tl in
  let v, h, x, cold = Timeline.reuse_series tl in
  J.Obj
    [
      ("window", J.Int w);
      ("num_windows", J.Int nw);
      ( "reuse",
        J.Obj
          [
            ("vertical", int_series v);
            ("horizontal", int_series h);
            ("cross_socket", int_series x);
            ("cold", int_series cold);
          ] );
      ( "cores",
        J.List
          (List.init ncores (fun c ->
               let busy = Timeline.busy_series tl ~core:c in
               J.Obj
                 [
                   ("core", J.Int c);
                   ("accesses", int_series (Timeline.accesses_series tl ~core:c));
                   ("busy", int_series busy);
                   (* busy cycles / window width; can exceed 1 because an
                      access's full cost lands in its issue window *)
                   ( "occupancy",
                     J.List
                       (List.init nw (fun k ->
                            J.Float (float_of_int busy.(k) /. float_of_int w)))
                   );
                   ( "levels",
                     J.List
                       (List.map
                          (fun level ->
                            let hits = Timeline.hits_series tl ~core:c ~level in
                            let misses =
                              Timeline.misses_series tl ~core:c ~level
                            in
                            J.Obj
                              [
                                ("level", J.Int level);
                                ("hits", int_series hits);
                                ("misses", int_series misses);
                                ( "miss_rate",
                                  J.List
                                    (List.init nw (fun k ->
                                         let t = hits.(k) + misses.(k) in
                                         J.Float
                                           (if t = 0 then 0.
                                            else
                                              float_of_int misses.(k)
                                              /. float_of_int t))) );
                              ])
                          (Timeline.levels tl)) );
                 ])) );
    ]
