(** Align and diff two run-report / bench-sweep JSON artefacts.

    Both sides may be a single JSON value ([ctamap run --json] /
    [--profile] output) or JSONL with one object per line (the bench
    harness).  Records are keyed by (workload, machine, scheme):

    - a run report ([ctam_report_version] present) contributes cycles,
      mem_accesses, barriers and per-level miss rates from its
      ["stats"];
    - a bench-sweep object (["workloads"] present) contributes
      cycles / mem_accesses / barriers / vs_base per workload plus a
      ("geomean", machine, scheme) record for [geomean_vs_base];
    - a tune report ([ctam_tune_version] present, [ctamap tune --json])
      contributes best_cycles / best_mem_accesses / tuned_vs_default
      under the scheme key ["tune:"<strategy>], so tuning outcomes can
      be tracked across commits like any other benchmark.

    Matching keys are compared metric by metric; a {e regression} is a
    metric increase of more than [threshold] percent (all extracted
    metrics are higher-is-worse).  Keys present on one side only are
    listed but never flagged.  A tool-version mismatch between the two
    sides is noted in the header. *)

(** Percent threshold above which an increase counts as a regression
    (2.0). *)
val default_threshold : float

(** [load_file path] parses the file as one JSON value, falling back to
    JSONL. *)
val load_file : string -> (Ctam_util.Json.t list, string) result

(** [render ?threshold ~path_a ~path_b a b] is the rendered diff
    (table of changed metrics, regressions flagged with ["!"], summary
    lines) and the number of regressions. *)
val render :
  ?threshold:float ->
  path_a:string ->
  path_b:string ->
  Ctam_util.Json.t list ->
  Ctam_util.Json.t list ->
  string * int

(** [diff_files ?threshold a b] loads both paths and renders; [Error]
    only on unreadable/malformed input. *)
val diff_files :
  ?threshold:float -> string -> string -> (string * int, string) result
