(** Structured JSON run reports — the machine-readable face of the
    observability layer.

    [profile] compiles and simulates a program with the full probe
    stack attached (counter matrices with per-group attribution, and
    the horizontal/vertical reuse split) and assembles everything —
    topology, scheme, params, per-nest mapping info, compile-phase
    timings, aggregate stats, per-core × per-level counters, per-group
    miss attribution, reuse and set-conflict histograms — into one JSON
    object ([ctam_report_version] 1).  [ctamap run --json/--profile]
    and the bench harness are thin wrappers over this module. *)

open Ctam_arch
open Ctam_ir
open Ctam_cachesim
open Ctam_core

(** Everything one observed run produced.  [report] is the JSON
    rendering of the other fields. *)
type profile = {
  compiled : Mapping.compiled;
  stats : Stats.t;
  counters : Probe_sinks.Counters.t;
  reuse : Probe_sinks.Reuse_split.t;
  timeline : Timeline.t option;
      (** attached when [profile ?timeline_window] was given *)
  legend : (int * (string * int)) list;
      (** segment id -> (nest name, group id) *)
  sim_seconds : float;
  verify : Ctam_verify.Verify.report option;
      (** legality-checker result when [profile ~check:true] *)
  report : Ctam_util.Json.t;
}

(** [profile ?params ?config ?frontend_timings ?check scheme ~machine
    program] compiles (timing each compile phase with a wall clock),
    attaches the counter and reuse sinks, simulates, and builds the
    report.  [frontend_timings] lets the caller prepend e.g.
    [("parse", s); ("lower", s)] measured while loading the source.
    [check] (default false) additionally runs the {!Ctam_verify}
    legality checker on the compiled mapping; the result lands in
    [verify] and as a ["verify"] member of the JSON report.
    [timeline_window] additionally attaches a {!Timeline} sink with
    that window width and embeds its windowed series as a ["timeline"]
    member ({!Trace_export.series_json}).

    [stream] compiles generator-backed phases; [sample_sets] runs a
    set-sampled hierarchy (the report's ["stats"] member is
    extrapolated, but sampled per-level probe members describe only
    the simulated subset); [memo] attaches a phase-memo table.  The
    three land in the report's ["simulation"] member.  Note the
    profiler always attaches probes, which makes the memo inert (zero
    hits) — memo wins show up in unobserved runs such as tune
    sweeps. *)
val profile :
  ?params:Mapping.params ->
  ?config:Engine.config ->
  ?timeline_window:int ->
  ?frontend_timings:(string * float) list ->
  ?check:bool ->
  ?stream:bool ->
  ?sample_sets:int ->
  ?memo:bool ->
  Mapping.scheme ->
  machine:Topology.t ->
  Program.t ->
  profile

(** JSON image of a topology (name, clock, memory latency, caches). *)
val topology_json : Topology.t -> Ctam_util.Json.t

(** JSON image of a reuse histogram: total/cold plus the non-empty
    buckets as [{lo, hi, count}] (hi exclusive). *)
val histogram_json : Reuse.histogram -> Ctam_util.Json.t

(** [write_file path json] writes the pretty-printed JSON plus a
    trailing newline. *)
val write_file : string -> Ctam_util.Json.t -> unit

(** One bench-trajectory object per scheme for [machine]: every suite
    workload's cycles / memory accesses / per-level stats under that
    scheme, with cycles normalized to the Base scheme of the same
    machine, and a geomean summary.  [quick] uses quarter-size
    workloads.  The objects are emitted by [bench/main.exe --json] one
    per line, so trajectories diff cleanly across PRs.

    [jobs] fans the scheme x workload grid out over that many domains
    ({!Ctam_util.Parallel.map}; default
    [Parallel.default_domains ()]).  Each task builds its own
    hierarchy, and the objects are assembled from the collected stats
    in input order, so the result is byte-identical to [~jobs:1]. *)
val bench_sweep :
  ?jobs:int -> quick:bool -> machine:Topology.t -> unit -> Ctam_util.Json.t list
