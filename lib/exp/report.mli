(** ASCII tables and normalized bar series for experiment output. *)

(** A table: column headers and string rows, left-aligned first column,
    right-aligned others.  With [?geomean:label] a trailing summary row
    is appended holding the geometric mean of each column's positive
    numeric cells; zero/absent/non-numeric cells are skipped (never a
    nan), a "*" suffix marks columns with skipped cells (footnoted
    below the table) and a column with no usable cell gets "-".  No row
    is added when [rows] is empty. *)
val table :
  ?geomean:string -> header:string list -> string list list -> string

(** [normalized ~base values] divides every value by [base].
    @raise Invalid_argument if [base <= 0]. *)
val normalized : base:float -> float list -> float list

val f2 : float -> string
val f3 : float -> string

(** Geometric mean (the usual summary for normalized ratios).
    @raise Invalid_argument on empty or non-positive input. *)
val geomean : float list -> float

(** Arithmetic mean.  @raise Invalid_argument on empty input. *)
val mean : float list -> float

(** [improvement_pct ~base ~opt] is the percentage reduction of [opt]
    relative to [base] (positive = better). *)
val improvement_pct : base:float -> opt:float -> float

(** A titled section with underline, for experiment logs. *)
val section : string -> string
