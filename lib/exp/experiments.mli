(** One reproduction function per table/figure of the paper's
    evaluation (§4), each returning a rendered report.

    All experiments run on the scaled simulator machines (see
    {!Ctam_arch.Machines}); [quick] uses quarter-size workloads, which
    preserves every qualitative shape while keeping run times small.
    [scale] overrides the cache-capacity divisor outright (the quick /
    full defaults are 64 / 16) — the bench harness's [--scale] flag.

    The DESIGN.md per-experiment index maps each function to the
    modules it exercises. *)

(** Machine-parameter table (paper Table 1). *)
val table1 : unit -> string

(** Applications and their single-core Dunnington cycles (Table 2). *)
val table2 : ?quick:bool -> ?scale:int -> unit -> string

(** galgel specialized for each machine, run on every machine,
    normalized to the best version per machine (Figure 2). *)
val fig2 : ?quick:bool -> ?scale:int -> unit -> string

(** Base / Base+ / TopologyAware on the three commercial machines,
    normalized execution cycles + average miss reductions (Figure 13
    and the miss statistics quoted in §4.2). *)
val fig13 : ?quick:bool -> ?scale:int -> unit -> string

(** Cross-machine ports: version built for X executed on Y,
    normalized to Y's native version (Figure 14). *)
val fig14 : ?quick:bool -> ?scale:int -> unit -> string

(** TopologyAware vs Local vs Combined on Dunnington (Figure 15). *)
val fig15 : ?quick:bool -> ?scale:int -> unit -> string

(** Data-block-size sensitivity on Dunnington (Figure 16). *)
val fig16 : ?quick:bool -> ?scale:int -> unit -> string

(** Core-count scaling: 12 / 18 / 24 core Dunnington-style machines
    (Figure 17). *)
val fig17 : ?quick:bool -> ?scale:int -> unit -> string

(** Deeper hierarchies: Dunnington vs Arch-I vs Arch-II (Figure 18). *)
val fig18 : ?quick:bool -> ?scale:int -> unit -> string

(** Halved cache capacities (Figure 19). *)
val fig19 : ?quick:bool -> ?scale:int -> unit -> string

(** Level-subset mappings (L1+L2 / L1+L2+L3 / all levels) and the
    optimal search, on Arch-I (Figure 20). *)
val fig20 : ?quick:bool -> ?scale:int -> unit -> string

(** alpha/beta sensitivity of the combined scheme (§4.2 text). *)
val alphabeta : ?quick:bool -> ?scale:int -> unit -> string

(** Compilation-overhead measurement (§4.1 text: +65..94%). *)
val overhead : ?quick:bool -> ?scale:int -> unit -> string

(** Dependence statistics over the suite (§3.1 text: ~14% of parallel
    loops carry dependences). *)
val dep_stats : ?quick:bool -> ?scale:int -> unit -> string

(** Central-queue dynamic scheduling vs the static topology-aware
    mapping (the paper's §5 remark). *)
val dynamic : ?quick:bool -> ?scale:int -> unit -> string

(** The two dependence-handling options of §3.5.2 side by side. *)
val depmode : ?quick:bool -> ?scale:int -> unit -> string

(** Every experiment, in paper order, as (name, report).  [jobs] runs
    independent experiments across that many domains
    ({!Ctam_util.Parallel.map}; default
    [Parallel.default_domains ()]); the reports come back in registry
    order either way. *)
val all :
  ?quick:bool -> ?scale:int -> ?jobs:int -> unit -> (string * string) list

(** Look up one experiment runner by name ("fig13", "table2", ...).
    @raise Not_found for unknown names. *)
val by_name : string -> ?quick:bool -> ?scale:int -> unit -> string

val names : string list
