open Ctam_poly
open Ctam_ir

let aff d terms k =
  let coeffs = Array.make d 0 in
  List.iter (fun (c, j) -> coeffs.(j) <- coeffs.(j) + c) terms;
  Affine.make coeffs k

let v d j = Affine.var d j
let c d k = Affine.const d k

let read name subs =
  Reference.make ~array_name:name ~subs:(Array.of_list subs)
    ~kind:Reference.Read

let write name subs =
  Reference.make ~array_name:name ~subs:(Array.of_list subs)
    ~kind:Reference.Write

let assign lhs rhs_reads =
  let rhs =
    match rhs_reads with
    | [] -> Expr.const 1.0
    | r :: rest ->
        List.fold_left (fun acc r -> Expr.add acc (Expr.load r)) (Expr.load r)
          rest
  in
  Stmt.assign lhs rhs

let darr name dims =
  Array_decl.make ~name ~dims:(Array.of_list dims) ~elem_size:8

let nest ~name ~vars ~ranges ?(guards = []) ?(parallel = true) body =
  let domain = Domain.add_guards guards (Domain.box (Array.of_list ranges)) in
  Nest.make ~name ~index_names:(Array.of_list vars) ~domain ~body ~parallel

let program name arrays nests = Program.make ~name ~arrays ~nests
