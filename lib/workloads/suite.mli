(** The twelve-application suite of the paper (Table 2).

    Parallel benchmarks: applu, galgel, equake (SpecOMP); cg, sp (NAS);
    bodytrack, facesim, freqmine (Parsec).  Sequential applications:
    namd, povray (Spec2006); mesa, H.264 (local).  Two kernels (sp and
    facesim) carry loop-carried dependences, matching the paper's
    observation that a minority (~14%) of parallel loops do. *)

val applu : Kernel.t
val galgel : Kernel.t
val equake : Kernel.t
val cg : Kernel.t
val sp : Kernel.t
val bodytrack : Kernel.t
val facesim : Kernel.t
val freqmine : Kernel.t
val namd : Kernel.t
val povray : Kernel.t
val mesa : Kernel.t
val h264 : Kernel.t

(** All twelve, in the paper's Table 2 order. *)
val all : Kernel.t list

(** Find by name (case-insensitive).  @raise Not_found. *)
val by_name : string -> Kernel.t
