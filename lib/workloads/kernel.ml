open Ctam_ir

type kind = Parallel_bench | Sequential_app

type t = {
  name : string;
  origin : string;
  description : string;
  kind : kind;
  default_size : int;
  build : int -> Program.t;
}

let program ?size k =
  let size = Option.value size ~default:k.default_size in
  k.build size

let small_program k = k.build (max 32 (k.default_size / 4))
