(** Workload kernels: the synthetic stand-ins for the paper's twelve
    applications (Table 2).

    Each kernel reproduces the access-pattern *class* of its namesake
    (stencil, transposed sweep, shared-vector reduction, strided
    gather, wavefront with loop-carried dependences, ...) at a size
    parameterizable for the scaled simulator machines. *)

open Ctam_ir

type kind =
  | Parallel_bench   (** came parallel (SpecOMP / NAS / Parsec) *)
  | Sequential_app   (** sequential; parallelism extracted first *)

type t = {
  name : string;
  origin : string;       (** suite the namesake app comes from *)
  description : string;  (** the access-pattern class modelled *)
  kind : kind;
  default_size : int;    (** linear size parameter *)
  build : int -> Program.t;
}

(** [program ?size k] instantiates the kernel ([size] defaults to
    [k.default_size]). *)
val program : ?size:int -> t -> Program.t

(** A reduced instance (quarter linear size, floored at 32) for
    expensive studies such as the optimal-mapping search. *)
val small_program : t -> Program.t
