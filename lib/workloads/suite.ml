open Builder

(* Every kernel writes one array per statement and reads a handful of
   references; the mapper only sees the reference sets, so the
   commutative sum bodies built by [Builder.assign] lose nothing. *)

(* -- applu: 3D SSOR-like 7-point stencil (SpecOMP) ------------------- *)
let applu_build s =
  let d = 3 in
  let n = s + 2 in
  let i = v d 0 and j = v d 1 and k = v d 2 in
  let p e delta = Ctam_poly.Affine.add_const delta e in
  program "applu"
    [ darr "A" [ n; n; n ]; darr "B" [ n; n; n ] ]
    [
      nest ~name:"ssor" ~vars:[ "i"; "j"; "k" ]
        ~ranges:[ (1, s); (1, s); (1, s) ]
        [
          assign
            (write "B" [ i; j; k ])
            [
              read "A" [ i; j; k ];
              read "A" [ p i (-1); j; k ];
              read "A" [ p i 1; j; k ];
              read "A" [ i; p j (-1); k ];
              read "A" [ i; p j 1; k ];
            ];
        ];
    ]

let applu =
  {
    Kernel.name = "applu";
    origin = "SpecOMP";
    description = "3D 7-point SSOR sweep over two fields";
    kind = Kernel.Parallel_bench;
    default_size = 50;
    build = applu_build;
  }

(* -- galgel: 2D 5-point stencil (SpecOMP fluid dynamics) ------------- *)
let galgel_build s =
  let d = 2 in
  let n = s + 2 in
  let i = v d 0 and j = v d 1 in
  let p e delta = Ctam_poly.Affine.add_const delta e in
  program "galgel"
    [ darr "U" [ n; n ]; darr "V" [ n; n ] ]
    [
      nest ~name:"oscill" ~vars:[ "i"; "j" ]
        ~ranges:[ (1, s); (1, s) ]
        [
          assign
            (write "V" [ i; j ])
            [
              read "U" [ i; j ];
              read "U" [ p i (-1); j ];
              read "U" [ p i 1; j ];
              read "U" [ i; p j (-1) ];
              read "U" [ i; p j 1 ];
            ];
        ];
    ]

let galgel =
  {
    Kernel.name = "galgel";
    origin = "SpecOMP";
    description = "2D 5-point oscillatory-instability stencil";
    kind = Kernel.Parallel_bench;
    default_size = 384;
    build = galgel_build;
  }

(* -- equake: transposed sweep (SpecOMP earthquake) ------------------- *)
let equake_build s =
  let d = 2 in
  let n = s + 2 in
  let i = v d 0 and j = v d 1 in
  let p e delta = Ctam_poly.Affine.add_const delta e in
  program "equake"
    [ darr "E" [ n; n ]; darr "K" [ n; n ]; darr "M" [ n; n ] ]
    [
      nest ~name:"quake" ~vars:[ "i"; "j" ]
        ~ranges:[ (0, s - 1); (0, s - 1) ]
        [
          assign
            (write "E" [ i; j ])
            [ read "K" [ j; i ]; read "K" [ p j 1; i ]; read "M" [ i; j ] ];
        ];
    ]

let equake =
  {
    Kernel.name = "equake";
    origin = "SpecOMP";
    description = "row sweep reading a transposed stiffness field";
    kind = Kernel.Parallel_bench;
    default_size = 360;
    build = equake_build;
  }

(* -- cg: shared-vector mat-vec (NAS) --------------------------------- *)
let cg_build s =
  let d = 2 in
  (* Few long rows over a shared vector far larger than any single
     shared-cache slice: the default row-major chunking makes every
     core stream all of [p], while a topology-aware column partition
     gives affine cores a resident slice. *)
  let rows = 4 and cols = s * 128 in
  let i = v d 0 and j = v d 1 in
  program "cg"
    [ darr "A" [ rows; cols ]; darr "p" [ cols ]; darr "q" [ rows; cols ] ]
    [
      nest ~name:"matvec" ~vars:[ "i"; "j" ]
        ~ranges:[ (0, rows - 1); (0, cols - 1) ]
        [
          assign
            (write "q" [ i; j ])
            [ read "A" [ i; j ]; read "p" [ j ] ];
        ];
    ]

let cg =
  {
    Kernel.name = "cg";
    origin = "NAS";
    description = "mat-vec with a globally shared vector";
    kind = Kernel.Parallel_bench;
    default_size = 256;
    build = cg_build;
  }

(* -- sp: the paper's Figure 5 loop (NAS); carries dependences -------- *)
let sp_build s =
  let d = 1 in
  (* m = 12k data blocks of k elements each, as in the worked example. *)
  let k = s in
  let m = 12 * k in
  let j = v d 0 in
  let a coeff const = aff d [ (coeff, 0) ] const in
  program "sp"
    [ darr "B" [ m + (2 * k) + 2 ]; darr "W" [ m + (2 * k) + 2 ] ]
    [
      nest ~name:"penta" ~vars:[ "j" ]
        ~ranges:[ (2 * k, m - (2 * k)) ]
        [
          assign
            (write "B" [ j ])
            [
              read "B" [ j ];
              read "B" [ a 1 (2 * k) ];
              read "B" [ a 1 (-2 * k) ];
              read "W" [ j ];
            ];
        ];
    ]

let sp =
  {
    Kernel.name = "sp";
    origin = "NAS";
    description = "1D penta-diagonal update (Figure 5); loop-carried deps";
    kind = Kernel.Parallel_bench;
    default_size = 8192;
    build = sp_build;
  }

(* -- bodytrack: particle x feature streaming (Parsec) ---------------- *)
let bodytrack_build s =
  let d = 2 in
  let particles = 16 and feats = s * 16 in
  let i = v d 0 and j = v d 1 in
  program "bodytrack"
    [
      darr "Wt" [ particles; feats ];
      darr "P" [ particles; feats ];
      darr "T" [ feats ];
    ]
    [
      nest ~name:"likelihood" ~vars:[ "i"; "j" ]
        ~ranges:[ (0, particles - 1); (0, feats - 1) ]
        [
          assign
            (write "Wt" [ i; j ])
            [ read "Wt" [ i; j ]; read "P" [ i; j ]; read "T" [ j ] ];
        ];
    ]

let bodytrack =
  {
    Kernel.name = "bodytrack";
    origin = "Parsec";
    description = "particle-filter weights with a shared template row";
    kind = Kernel.Parallel_bench;
    default_size = 512;
    build = bodytrack_build;
  }

(* -- facesim: coarse-stride relaxation (Parsec); carries deps -------- *)
let facesim_build s =
  let d = 2 in
  (* Relaxation with a coarse-grid coupling at stride g = s/4: rows in
     the same residue band are independent (wide parallelism), while
     bands form dependence chains of length 4 that exercise the
    dependence-aware scheduler without serializing the machine. *)
  let g = max 1 (s / 4) in
  let n = s + g + 2 in
  let i = v d 0 and j = v d 1 in
  let p e delta = Ctam_poly.Affine.add_const delta e in
  program "facesim"
    [ darr "U" [ n; n ]; darr "F" [ n; n ] ]
    [
      nest ~name:"relax" ~vars:[ "i"; "j" ]
        ~ranges:[ (g, g + s - 1); (1, s) ]
        [
          assign
            (write "U" [ i; j ])
            [
              read "U" [ i; j ];
              read "U" [ p i (-g); j ];
              read "F" [ i; j ];
            ];
        ];
    ]

let facesim =
  {
    Kernel.name = "facesim";
    origin = "Parsec";
    description = "coarse-stride relaxation; loop-carried deps";
    kind = Kernel.Parallel_bench;
    default_size = 360;
    build = facesim_build;
  }

(* -- freqmine: strided gather (Parsec) ------------------------------- *)
let freqmine_build s =
  let d = 2 in
  let rows = s / 4 and cols = s * 2 in
  let i = v d 0 and j = v d 1 in
  let two_i delta = aff d [ (2, 0) ] delta in
  program "freqmine"
    [ darr "C" [ rows; cols ]; darr "D" [ 2 * rows; cols ] ]
    [
      nest ~name:"mine" ~vars:[ "i"; "j" ]
        ~ranges:[ (0, rows - 1); (0, cols - 1) ]
        [
          assign
            (write "C" [ i; j ])
            [ read "C" [ i; j ]; read "D" [ two_i 0; j ]; read "D" [ two_i 1; j ] ];
        ];
    ]

let freqmine =
  {
    Kernel.name = "freqmine";
    origin = "Parsec";
    description = "2:1 strided row gather (FP-tree projection)";
    kind = Kernel.Parallel_bench;
    default_size = 256;
    build = freqmine_build;
  }

(* -- namd: 1D neighbour forces (Spec2006, sequential) ---------------- *)
let namd_build s =
  let d = 1 in
  let n = s + 2 in
  let i = v d 0 in
  let p delta = aff d [ (1, 0) ] delta in
  program "namd"
    [ darr "F" [ n ]; darr "X" [ n ] ]
    [
      nest ~name:"forces" ~vars:[ "i" ]
        ~ranges:[ (1, s) ]
        [
          assign
            (write "F" [ i ])
            [ read "F" [ i ]; read "X" [ p (-1) ]; read "X" [ p 0 ]; read "X" [ p 1 ] ];
        ];
    ]

let namd =
  {
    Kernel.name = "namd";
    origin = "Spec2006";
    description = "1D neighbour-list force accumulation";
    kind = Kernel.Sequential_app;
    default_size = 131072;
    build = namd_build;
  }

(* -- povray: scanline sweep with shared scene (Spec2006, sequential) - *)
let povray_build s =
  let d = 2 in
  let rows = 8 and cols = s * 32 in
  let i = v d 0 and j = v d 1 in
  let p e delta = Ctam_poly.Affine.add_const delta e in
  program "povray"
    [ darr "Img" [ rows; cols ]; darr "Scene" [ cols + 1 ] ]
    [
      nest ~name:"render" ~vars:[ "i"; "j" ]
        ~ranges:[ (0, rows - 1); (0, cols - 1) ]
        [
          assign
            (write "Img" [ i; j ])
            [ read "Img" [ i; j ]; read "Scene" [ j ]; read "Scene" [ p j 1 ] ];
        ];
    ]

let povray =
  {
    Kernel.name = "povray";
    origin = "Spec2006";
    description = "scanline rendering against a shared scene vector";
    kind = Kernel.Sequential_app;
    default_size = 512;
    build = povray_build;
  }

(* -- mesa: transpose (local, sequential) ----------------------------- *)
let mesa_build s =
  let d = 2 in
  let n = s + 2 in
  let i = v d 0 and j = v d 1 in
  let p e delta = Ctam_poly.Affine.add_const delta e in
  program "mesa"
    [ darr "OutA" [ n; n ]; darr "InA" [ n; n ] ]
    [
      nest ~name:"transpose" ~vars:[ "i"; "j" ]
        ~ranges:[ (0, s - 1); (0, s - 1) ]
        [
          assign
            (write "OutA" [ i; j ])
            [ read "InA" [ j; i ]; read "InA" [ p j 1; i ] ];
        ];
    ]

let mesa =
  {
    Kernel.name = "mesa";
    origin = "local";
    description = "texture transpose (column reads, row writes)";
    kind = Kernel.Sequential_app;
    default_size = 360;
    build = mesa_build;
  }

(* -- h264: motion-estimation window (local, sequential) -------------- *)
let h264_build s =
  let d = 2 in
  let n = s + 2 in
  let i = v d 0 and j = v d 1 in
  let p e delta = Ctam_poly.Affine.add_const delta e in
  program "h264"
    [ darr "S" [ n; n ]; darr "R" [ n; n ]; darr "Cf" [ n; n ] ]
    [
      nest ~name:"sad" ~vars:[ "i"; "j" ]
        ~ranges:[ (1, s); (1, s) ]
        [
          assign
            (write "S" [ i; j ])
            [
              read "R" [ i; j ];
              read "R" [ p i 1; j ];
              read "Cf" [ i; p j 1 ];
              read "Cf" [ i; p j (-1) ];
            ];
        ];
    ]

let h264 =
  {
    Kernel.name = "h264";
    origin = "local";
    description = "block-matching SAD over reference and current frames";
    kind = Kernel.Sequential_app;
    default_size = 352;
    build = h264_build;
  }

let all =
  [
    applu; galgel; equake; cg; sp; bodytrack; facesim; freqmine; namd; povray;
    mesa; h264;
  ]

let by_name name =
  let name = String.lowercase_ascii name in
  List.find (fun k -> String.lowercase_ascii k.Kernel.name = name) all
