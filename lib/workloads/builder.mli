(** Concise IR construction helpers for the workload kernels. *)

open Ctam_poly
open Ctam_ir

(** [aff d terms k] is [sum (c * i_j) + k] for [(c, j)] in [terms]. *)
val aff : int -> (int * int) list -> int -> Affine.t

(** [v d j] is index variable [j]; [c d k] a constant. *)
val v : int -> int -> Affine.t

val c : int -> int -> Affine.t

(** [read name subs] / [write name subs] build references. *)
val read : string -> Affine.t list -> Reference.t

val write : string -> Affine.t list -> Reference.t

(** [assign lhs rhs_reads] is [lhs = sum of reads] (the canonical
    commutative body: reference sets are all the mapper sees). *)
val assign : Reference.t -> Reference.t list -> Stmt.t

(** [darr name dims] declares an array of doubles. *)
val darr : string -> int list -> Array_decl.t

(** [nest ~name ~vars ~ranges ?guards ?parallel body] builds a nest
    over the rectangular (or affine-bounded) ranges. *)
val nest :
  name:string ->
  vars:string list ->
  ranges:(int * int) list ->
  ?guards:Constrnt.t list ->
  ?parallel:bool ->
  Stmt.t list ->
  Nest.t

val program : string -> Array_decl.t list -> Nest.t list -> Program.t
