(* Structured audit journal of the mapping daemon: an append-only
   JSONL file with exactly one record per request — identity, content
   key, cache outcome, per-span timings, byte counts, status, plus the
   request and response documents themselves so a journal can be
   re-issued verbatim against a live daemon (tools/journal_replay) and
   the answers diffed for postmortems and regression replay.

   Writes are serialised by a mutex and flushed per record, so a crash
   loses at most the record being written and concurrent workers never
   interleave lines.  Rotation is by size: when a record would push the
   file past [max_bytes] the current file is renamed to [path ^ ".1"]
   (replacing any previous rotation) and a fresh file is started — the
   operator always has between one and two size-bounded files. *)

module J = Ctam_util.Json
module Tel = Ctam_telemetry

(* Version of the record schema below; bump on incompatible change. *)
let version = 1

let default_max_bytes = 64 * 1024 * 1024

let tel_records =
  Tel.Metrics.Counter.v ~help:"Audit journal records written"
    "ctam_serve_journal_records_total"

let tel_bytes =
  Tel.Metrics.Counter.v ~help:"Audit journal bytes written"
    "ctam_serve_journal_bytes_total"

let tel_rotations =
  Tel.Metrics.Counter.v ~help:"Audit journal size rotations"
    "ctam_serve_journal_rotations_total"

let tel_failures =
  Tel.Metrics.Counter.v ~help:"Audit journal write failures"
    "ctam_serve_journal_write_failures_total"

type t = {
  path : string;
  max_bytes : int;
  lock : Mutex.t;
  mutable oc : out_channel option;
  mutable bytes : int;  (** size of the current file *)
  mutable records : int;  (** records written since [create] *)
  mutable rotations : int;
  mutable failures : int;
}

let create ?(max_bytes = default_max_bytes) path =
  if max_bytes < 1 then invalid_arg "Journal.create: max_bytes";
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  {
    path;
    max_bytes;
    lock = Mutex.create ();
    oc = Some oc;
    bytes = out_channel_length oc;
    records = 0;
    rotations = 0;
    failures = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Caller holds the lock. *)
let rotate_locked t =
  (match t.oc with
  | Some oc ->
      close_out_noerr oc;
      t.oc <- None
  | None -> ());
  (try Sys.rename t.path (t.path ^ ".1") with Sys_error _ -> ());
  t.oc <- Some (open_out_gen [ Open_trunc; Open_creat; Open_wronly ] 0o644 t.path);
  t.bytes <- 0;
  t.rotations <- t.rotations + 1;
  Tel.Metrics.Counter.inc0 tel_rotations

(* [record_parts t parts] appends one record line given as pre-minified
   fragments, written piecewise so the line is never materialised as
   one string — a run record embeds the ~tens-of-KB reply payload, and
   concatenating it per request showed up as multi-millisecond GC
   pauses on the warm serving path.  Failures are counted and logged,
   never raised: losing a journal line must not cost the request. *)
let record_parts t parts =
  let len = List.fold_left (fun a s -> a + String.length s) 1 parts in
  locked t (fun () ->
      match
        if t.bytes > 0 && t.bytes + len > t.max_bytes then rotate_locked t;
        match t.oc with
        | None -> ()
        | Some oc ->
            List.iter (output_string oc) parts;
            output_char oc '\n';
            flush oc
      with
      | () ->
          t.bytes <- t.bytes + len;
          t.records <- t.records + 1;
          Tel.Metrics.Counter.inc0 tel_records;
          Tel.Metrics.Counter.inc ~by:len
            (Tel.Metrics.Counter.series tel_bytes [])
      | exception (Sys_error _ as e) ->
          t.failures <- t.failures + 1;
          Tel.Metrics.Counter.inc0 tel_failures;
          Tel.Log.warn ~src:"serve.journal"
            ~fields:[ ("path", J.String t.path) ]
            (fun () -> "journal write failed: " ^ Printexc.to_string e))

let record t json = record_parts t [ J.to_string ~minify:true json ]

let close t =
  locked t (fun () ->
      match t.oc with
      | Some oc ->
          close_out_noerr oc;
          t.oc <- None
      | None -> ())

let records t = locked t (fun () -> t.records)

let stats_json t =
  locked t (fun () ->
      J.Obj
        [
          ("path", J.String t.path);
          ("records", J.Int t.records);
          ("bytes", J.Int t.bytes);
          ("max_bytes", J.Int t.max_bytes);
          ("rotations", J.Int t.rotations);
          ("write_failures", J.Int t.failures);
        ])

(* The one-record-per-request shape (see DESIGN.md, "Service
   observability").  [key] is the FNV-1a hash of the plan-cache key —
   the full key is reproducible from the request, the hash is what
   correlates with the on-disk cache file names. *)
let envelope_members ~(ctx : Reqctx.t) ~key ~bytes_in ~bytes_out ~total_seconds
    ~request =
  [
    ("ctam_journal_version", J.Int version);
    ("ts", J.Float ctx.Reqctx.started);
    ("request_id", J.Int ctx.Reqctx.id);
    ("conn", J.Int ctx.Reqctx.conn);
    ("op", J.String ctx.Reqctx.op);
    ( "key",
      match key with
      | None -> J.Null
      | Some k -> J.String (Ctam_util.Diskstore.hash k) );
    ("cache", J.String (Reqctx.cache_id ctx.Reqctx.cache));
    ("status", J.String ctx.Reqctx.status);
  ]
  @ (match ctx.Reqctx.error_code with
    | None -> []
    | Some code -> [ ("error_code", J.String code) ])
  @ [
      ("total_us", J.Int (int_of_float (Float.round (total_seconds *. 1e6))));
      ("spans_us", Reqctx.spans_us_json ctx);
      ("bytes_in", J.Int bytes_in);
      ("bytes_out", J.Int bytes_out);
      ("request", request);
    ]

let request_json ~ctx ~key ~bytes_in ~bytes_out ~total_seconds ~request
    ~response =
  J.Obj
    (envelope_members ~ctx ~key ~bytes_in ~bytes_out ~total_seconds ~request
    @ [ ("response", response) ])

(* [record_request] splices [response_text] — the already-minified
   wire payload — into the record as fragments instead of
   re-serialising (or even re-concatenating) the response document.
   The response dominates a run record by two orders of magnitude;
   both encoding it a second time and materialising the joined line
   showed up as the journal's warm-path overhead
   (EXPERIMENTS.md, "Journal overhead"). *)
let record_request t ~ctx ~key ~bytes_in ~bytes_out ~total_seconds ~request
    ~response_text =
  let envelope =
    J.to_string ~minify:true
      (J.Obj
         (envelope_members ~ctx ~key ~bytes_in ~bytes_out ~total_seconds
            ~request))
  in
  record_parts t
    [
      String.sub envelope 0 (String.length envelope - 1);
      {|,"response":|};
      response_text;
      "}";
    ]
