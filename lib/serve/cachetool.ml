(* Maintenance tooling for the shared on-disk cache directory: the
   [ctamap cache stats|purge] subcommands and the
   purge-while-daemon-running test drive these.

   The directory holds two entry families behind one Diskstore
   discipline — compiled plans ("ctam-plan-", Plan_cache) and tune
   outcomes ("ctam-tune-", Ctam_tune.Cache).  Purging is safe at any
   time, daemon running or not: entries are immutable and
   content-addressed, so a concurrent reader either wins the race and
   serves the old value one last time, or misses and recomputes — the
   same outcome as a cold cache.  (A running daemon's in-memory tier
   is not touched; only fresh lookups hit the disk.) *)

module J = Ctam_util.Json
module Store = Ctam_util.Diskstore
module Tel = Ctam_telemetry

let tel_purged =
  Tel.Metrics.Counter.v ~labels:[ "prefix" ]
    ~help:"Cache entries removed by ctamap cache purge"
    "ctam_cache_purged_total"

let tel_purged_bytes =
  Tel.Metrics.Counter.v ~labels:[ "prefix" ]
    ~help:"Bytes reclaimed by ctamap cache purge"
    "ctam_cache_purged_bytes_total"

(* The known entry families; [prefixes ?prefix] narrows to one. *)
let all_prefixes = [ Plan_cache.file_prefix; Ctam_tune.Cache.file_prefix ]

let prefixes = function None -> all_prefixes | Some p -> [ p ]

type family = {
  prefix : string;
  entries : int;
  bytes : int;
  oldest : float option;  (** mtime of the oldest entry *)
  newest : float option;
}

let stat_family ~dir prefix =
  let entries, bytes, oldest, newest =
    List.fold_left
      (fun (n, b, oldest, newest) path ->
        match Unix.stat path with
        | exception Unix.Unix_error _ -> (n, b, oldest, newest)
        | st ->
            let keep cmp cur t =
              match cur with
              | None -> Some t
              | Some c -> Some (if cmp t c then t else c)
            in
            ( n + 1,
              b + st.Unix.st_size,
              keep ( < ) oldest st.Unix.st_mtime,
              keep ( > ) newest st.Unix.st_mtime ))
      (0, 0, None, None)
      (Store.scan ~dir ~prefix)
  in
  { prefix; entries; bytes; oldest; newest }

let stats ?prefix ~dir () = List.map (stat_family ~dir) (prefixes prefix)

let stats_json ?prefix ~dir () =
  let now = Unix.gettimeofday () in
  let age = function
    | None -> J.Null
    | Some t -> J.Float (max 0. (now -. t))
  in
  J.Obj
    [
      ("dir", J.String dir);
      ( "families",
        J.List
          (List.map
             (fun f ->
               J.Obj
                 [
                   ("prefix", J.String f.prefix);
                   ("entries", J.Int f.entries);
                   ("bytes", J.Int f.bytes);
                   ("oldest_age_seconds", age f.oldest);
                   ("newest_age_seconds", age f.newest);
                 ])
             (stats ?prefix ~dir ())) );
    ]

type purge_result = {
  p_prefix : string;
  removed : int;
  removed_bytes : int;
  kept : int;  (** survivors: younger than [older_than], or unremovable *)
}

(* [purge ?prefix ?older_than ~dir ()] removes matching entries;
   [older_than] keeps entries younger than that many seconds.  Files
   that vanish mid-purge (another purger, the daemon's own writes
   racing a rename) are counted as kept, not errors. *)
let purge ?prefix ?older_than ~dir () =
  let cutoff =
    Option.map (fun d -> Unix.gettimeofday () -. d) older_than
  in
  List.map
    (fun pfx ->
      let removed = ref 0 and removed_bytes = ref 0 and kept = ref 0 in
      List.iter
        (fun path ->
          match Unix.stat path with
          | exception Unix.Unix_error _ -> incr kept
          | st ->
              let old_enough =
                match cutoff with
                | None -> true
                | Some c -> st.Unix.st_mtime <= c
              in
              if not old_enough then incr kept
              else (
                match Sys.remove path with
                | () ->
                    incr removed;
                    removed_bytes := !removed_bytes + st.Unix.st_size
                | exception Sys_error _ -> incr kept))
        (Store.scan ~dir ~prefix:pfx);
      Tel.Metrics.Counter.inc ~by:!removed
        (Tel.Metrics.Counter.series tel_purged [ pfx ]);
      Tel.Metrics.Counter.inc ~by:!removed_bytes
        (Tel.Metrics.Counter.series tel_purged_bytes [ pfx ]);
      {
        p_prefix = pfx;
        removed = !removed;
        removed_bytes = !removed_bytes;
        kept = !kept;
      })
    (prefixes prefix)

let purge_json ?prefix ?older_than ~dir () =
  J.Obj
    [
      ("dir", J.String dir);
      ( "purged",
        J.List
          (List.map
             (fun r ->
               J.Obj
                 [
                   ("prefix", J.String r.p_prefix);
                   ("removed", J.Int r.removed);
                   ("removed_bytes", J.Int r.removed_bytes);
                   ("kept", J.Int r.kept);
                 ])
             (purge ?prefix ?older_than ~dir ())) );
    ]
