(* The mapping daemon: a Unix-domain-socket server answering
   length-prefixed JSON requests (Protocol) concurrently from a
   Parallel-backed worker pool, fronted by the compiled-plan cache
   (Plan_cache).

   Robustness contract — the reason this is a daemon and not a script:
   no input may kill it.  A malformed frame, an unparseable request, a
   client that disconnects mid-request, an oversized frame, a corrupt
   on-disk cache entry: each is answered (when the socket still
   works) with a structured error reply and at most costs that one
   connection.  Only an explicit shutdown request or [stop] ends the
   accept loops.

   Concurrency shape: [serve] runs [workers] accept loops as one
   [Parallel.map] over [workers] never-returning tasks — each domain
   pulls exactly one task, giving a fixed-size pool with the same
   domain machinery every other parallel path in ctamap uses.  Workers
   poll the listening socket with a short [select] timeout and check
   the stop flag in between, and blocked reads use a receive timeout
   plus the protocol's [on_idle] hook, so shutdown never needs to
   interrupt anything mid-frame. *)

module J = Ctam_util.Json
module Tel = Ctam_telemetry
module Parallel = Ctam_util.Parallel

let tel_requests =
  Tel.Metrics.Counter.v
    ~labels:[ "op"; "outcome" ]
    ~help:"Service requests by operation and outcome"
    "ctam_serve_requests_total"

let tel_connections =
  Tel.Metrics.Counter.v ~help:"Connections accepted"
    "ctam_serve_connections_total"

(* Request service-time histograms (ctam_serve_request_seconds /
   ctam_serve_span_seconds) live in Reqctx, labelled by op and cache
   outcome / span. *)

let count_request op outcome =
  Tel.Metrics.Counter.inc (Tel.Metrics.Counter.series tel_requests [ op; outcome ])

type config = {
  socket : string;
  workers : int;
  max_frame : int;  (** refuse request frames larger than this *)
  default_timeout_ms : int option;
      (** applied when the request carries no [timeout_ms] *)
  cache_dir : string option;
  cache_entries : int;
  cache_bytes : int;
  journal_path : string option;
      (** append-only JSONL audit journal (--journal) *)
  journal_max_bytes : int;  (** size-rotation bound for the journal *)
  slow_ms : float;  (** slowlog threshold (--slow-ms) *)
  slowlog_entries : int;  (** slowlog ring capacity *)
}

let default_config =
  {
    socket = "ctamap.sock";
    workers = 2;
    max_frame = Protocol.default_max_frame;
    default_timeout_ms = None;
    cache_dir = None;
    cache_entries = Plan_cache.default_max_entries;
    cache_bytes = Plan_cache.default_max_bytes;
    journal_path = None;
    journal_max_bytes = Journal.default_max_bytes;
    slow_ms = Slowlog.default_threshold_ms;
    slowlog_entries = Slowlog.default_capacity;
  }

type counters = {
  mutable served : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable cached : int;
}

type t = {
  config : config;
  cache : Plan_cache.t;
  journal : Journal.t option;
  slowlog : Slowlog.t;
  listen_fd : Unix.file_descr;
  started : float;  (** wall clock at [create] (stats uptime) *)
  stop : bool Atomic.t;
  c : counters;
  lock : Mutex.t;  (** counters + zombie list *)
  mutable zombies : (bool Atomic.t * unit Domain.t) list;
      (** timed-out request domains still running; reaped when done *)
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- lifecycle -------------------------------------------------------- *)

let create config =
  (* A dead client mid-reply must be an EPIPE error on the write, not
     a fatal signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink config.socket with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX config.socket);
     Unix.listen fd 64;
     (* Non-blocking: every worker selects on this fd, so one arriving
        connection can wake several of them.  With a blocking fd the
        losers of that accept race would block inside [accept] — deaf
        to the stop flag — and shutdown would hang; non-blocking turns
        the lost race into an EAGAIN and another trip round the
        select loop. *)
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let cache =
    Plan_cache.create ?dir:config.cache_dir ~max_entries:config.cache_entries
      ~max_bytes:config.cache_bytes ()
  in
  let journal =
    Option.map
      (Journal.create ~max_bytes:config.journal_max_bytes)
      config.journal_path
  in
  let slowlog =
    Slowlog.create ~threshold_ms:config.slow_ms
      ~capacity:config.slowlog_entries ()
  in
  {
    config;
    cache;
    journal;
    slowlog;
    listen_fd = fd;
    started = Unix.gettimeofday ();
    stop = Atomic.make false;
    c = { served = 0; errors = 0; timeouts = 0; cached = 0 };
    lock = Mutex.create ();
    zombies = [];
  }

let stop t = Atomic.set t.stop true

let reap t ~wait =
  let ready, running =
    locked t (fun () ->
        let ready, running =
          List.partition (fun (done_, _) -> wait || Atomic.get done_) t.zombies
        in
        t.zombies <- running;
        (ready, running))
  in
  ignore running;
  List.iter (fun (_, d) -> Domain.join d) ready

(* --- per-request execution ------------------------------------------- *)

let internal_error e =
  "request failed: " ^ Printexc.to_string e

(* Run [f] with a deadline.  The work runs in its own domain; the
   waiter polls its result slot and gives up at the deadline, parking
   the still-running domain on the zombie list (the computation is
   abandoned, not cancelled — OCaml domains cannot be killed safely —
   and its domain is joined once it finishes).  Requests without a
   timeout run inline on the worker. *)
let with_deadline t timeout_ms f =
  match timeout_ms with
  | None -> ( try Ok (f ()) with e -> Error (`Internal (internal_error e)))
  | Some ms ->
      let slot = Atomic.make None in
      let done_ = Atomic.make false in
      let d =
        Domain.spawn (fun () ->
            let r =
              try Ok (f ()) with e -> Error (`Internal (internal_error e))
            in
            Atomic.set slot (Some r);
            Atomic.set done_ true)
      in
      let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
      let rec wait () =
        match Atomic.get slot with
        | Some r ->
            Domain.join d;
            r
        | None ->
            if Unix.gettimeofday () >= deadline then begin
              locked t (fun () -> t.zombies <- (done_, d) :: t.zombies);
              Error (`Timeout ms)
            end
            else begin
              Unix.sleepf 0.002;
              wait ()
            end
      in
      wait ()

let stats_json t =
  let served, errors, timeouts, cached =
    locked t (fun () -> (t.c.served, t.c.errors, t.c.timeouts, t.c.cached))
  in
  J.Obj
    [
      ("version", J.String Ctam_exp.Build_info.version);
      ("workers", J.Int t.config.workers);
      ("uptime_seconds", J.Float (Unix.gettimeofday () -. t.started));
      ("served", J.Int served);
      ("errors", J.Int errors);
      ("timeouts", J.Int timeouts);
      ("cached", J.Int cached);
      ("cache", Plan_cache.stats_json t.cache);
      ( "journal",
        match t.journal with
        | None -> J.Null
        | Some jn -> Journal.stats_json jn );
      ( "slowlog",
        J.Obj
          [
            ("threshold_ms", J.Float (Slowlog.threshold_ms t.slowlog));
            ("recorded", J.Int (Slowlog.recorded t.slowlog));
          ] );
    ]

(* The [metrics] op: a telemetry snapshot in either the structured
   JSON shape ([--metrics-out]) or the Prometheus 0.0.4 text format,
   scraped live from the daemon's registry. *)
let metrics_json = function
  | `Json ->
      Tel.Profile.snapshot_json ~version:Ctam_exp.Build_info.version
        ~telemetry_version:Ctam_exp.Build_info.telemetry_version ()
  | `Prometheus -> J.String (Tel.Prometheus.render ())

let metrics_format j =
  match j with
  | J.Obj _ -> (
      match J.member "format" j with
      | None -> Ok `Json
      | Some (J.String ("json" | "snapshot")) -> Ok `Json
      | Some (J.String ("prometheus" | "prom" | "text")) -> Ok `Prometheus
      | Some _ ->
          Error "\"format\" must be \"json\" or \"prometheus\""
      )
  | _ -> Ok `Json

let slowlog_limit j =
  match j with
  | J.Obj _ -> (
      match J.member "limit" j with
      | None -> Ok None
      | Some (J.Int n) when n >= 0 -> Ok (Some n)
      | Some _ -> Error "\"limit\" must be a non-negative integer")
  | _ -> Ok None

(* Shared cached-compute tail of every plan-carrying op (map / run /
   tune / check / trace): plan-cache lookup, deadline-guarded
   execution, store.  [compute] returns the result JSON plus its
   execution spans. *)
let run_cached t (ctx : Reqctx.t) ~finish ~id ~request_id ~opname ~key ~nocache
    ~timeout_ms compute =
  let cached_value =
    if nocache then begin
      ctx.Reqctx.cache <- Reqctx.Bypass;
      None
    end
    else
      match
        Reqctx.span ctx "cache_lookup" (fun () -> Plan_cache.lookup t.cache key)
      with
      | Plan_cache.Memory v ->
          ctx.Reqctx.cache <- Reqctx.Memory;
          Some v
      | Plan_cache.Disk v ->
          ctx.Reqctx.cache <- Reqctx.Disk;
          Some v
      | Plan_cache.Absent ->
          ctx.Reqctx.cache <- Reqctx.Miss;
          None
  in
  match cached_value with
  | Some v ->
      ( finish ~op:opname ~outcome:"cached"
          (Protocol.ok_response ~id ~request_id ~cached:true v),
        false,
        Some key )
  | None -> (
      let timeout_ms =
        match timeout_ms with
        | Some _ as ms -> ms
        | None -> t.config.default_timeout_ms
      in
      match
        with_deadline t timeout_ms (fun () ->
            (* The deadline path runs on a fresh domain whose
               log-context stack starts empty — re-establish the
               request identity there. *)
            Reqctx.with_logging ctx compute)
      with
      | Ok (v, spans) ->
          Reqctx.add_spans ctx spans;
          if not nocache then Plan_cache.add t.cache key v;
          ( finish ~op:opname ~outcome:"ok"
              (Protocol.ok_response ~id ~request_id v),
            false,
            Some key )
      | Error (`Timeout ms) ->
          Reqctx.error ctx "timeout";
          ( finish ~op:opname ~outcome:"timeout"
              (Protocol.error_response ~id ~request_id ~code:"timeout"
                 (Printf.sprintf "request exceeded %d ms" ms)),
            false,
            Some key )
      | Error (`Internal msg) ->
          Reqctx.error ctx "internal";
          ( finish ~op:opname ~outcome:"error"
              (Protocol.error_response ~id ~request_id ~code:"internal" msg),
            false,
            Some key ))

let name_desc_json entries =
  J.List
    (List.map
       (fun (name, desc) ->
         J.Obj [ ("name", J.String name); ("description", J.String desc) ])
       entries)

(* The [version] op: feature detection for clients — build version,
   available ops, replacement policies and trace notations, so a
   client can probe before submitting a [trace] op or a policy spec. *)
let version_json =
  J.Obj
    [
      ("version", J.String Ctam_exp.Build_info.version);
      ( "ops",
        J.List
          (List.map
             (fun s -> J.String s)
             [
               "ping"; "stats"; "metrics"; "slowlog"; "version"; "map"; "run";
               "tune"; "check"; "trace"; "shutdown";
             ]) );
      ("policies", name_desc_json Ctam_arch.Policy.all);
      ("trace_formats", name_desc_json Ctam_tracein.Ingest.trace_formats);
    ]

(* Answer one parsed request object under [ctx]; returns the reply,
   whether the daemon should begin shutting down, and the plan-cache
   key (for the journal) when the operation has one.  Every reply
   carries the daemon-minted [request_id], and [ctx] leaves with op /
   cache outcome / status / error code / execution spans filled in. *)
let handle t (ctx : Reqctx.t) j =
  let request_id = ctx.Reqctx.id in
  let id = match j with J.Obj _ -> Option.value ~default:J.Null (J.member "id" j) | _ -> J.Null in
  let op =
    match j with
    | J.Obj _ -> (
        match J.member "op" j with Some (J.String s) -> Some s | _ -> None)
    | _ -> None
  in
  let finish ~op ~outcome reply =
    ctx.Reqctx.op <- op;
    count_request op outcome;
    locked t (fun () ->
        t.c.served <- t.c.served + 1;
        match outcome with
        | "error" | "timeout" ->
            t.c.errors <- t.c.errors + 1;
            if outcome = "timeout" then t.c.timeouts <- t.c.timeouts + 1
        | "cached" -> t.c.cached <- t.c.cached + 1
        | _ -> ());
    reply
  in
  let bad_request ~op msg =
    Reqctx.error ctx "bad_request";
    ( finish ~op ~outcome:"error"
        (Protocol.error_response ~id ~request_id ~code:"bad_request" msg),
      false,
      None )
  in
  match op with
  | None ->
      Reqctx.error ctx "bad_request";
      ( finish ~op:"?" ~outcome:"error"
          (Protocol.error_response ~id ~request_id ~code:"bad_request"
             "request must be an object with a string \"op\" member"),
        false,
        None )
  | Some "ping" ->
      ( finish ~op:"ping" ~outcome:"ok"
          (Protocol.ok_response ~id ~request_id
             (J.Obj [ ("pong", J.Bool true) ])),
        false,
        None )
  | Some "stats" ->
      ( finish ~op:"stats" ~outcome:"ok"
          (Protocol.ok_response ~id ~request_id (stats_json t)),
        false,
        None )
  | Some "metrics" -> (
      match metrics_format j with
      | Error msg -> bad_request ~op:"metrics" msg
      | Ok format ->
          ( finish ~op:"metrics" ~outcome:"ok"
              (Protocol.ok_response ~id ~request_id (metrics_json format)),
            false,
            None ))
  | Some "slowlog" -> (
      match slowlog_limit j with
      | Error msg -> bad_request ~op:"slowlog" msg
      | Ok limit ->
          ( finish ~op:"slowlog" ~outcome:"ok"
              (Protocol.ok_response ~id ~request_id
                 (Slowlog.to_json ?limit t.slowlog)),
            false,
            None ))
  | Some "version" ->
      ( finish ~op:"version" ~outcome:"ok"
          (Protocol.ok_response ~id ~request_id version_json),
        false,
        None )
  | Some "trace" -> (
      match Request.parse_trace j with
      | Error msg -> bad_request ~op:"trace" msg
      | Ok tr ->
          ctx.Reqctx.op <- "trace";
          run_cached t ctx ~finish ~id ~request_id ~opname:"trace"
            ~key:(Request.trace_key tr) ~nocache:tr.Request.t_nocache
            ~timeout_ms:tr.Request.t_timeout_ms (fun () ->
              Request.execute_trace tr))
  | Some "shutdown" ->
      Atomic.set t.stop true;
      ( finish ~op:"shutdown" ~outcome:"ok"
          (Protocol.ok_response ~id ~request_id
             (J.Obj [ ("stopping", J.Bool true) ])),
        true,
        None )
  | Some opname -> (
      match Request.parse j with
      | Error msg -> bad_request ~op:opname msg
      | Ok r ->
          let opname = Request.op_id r.Request.op in
          ctx.Reqctx.op <- opname;
          run_cached t ctx ~finish ~id ~request_id ~opname
            ~key:(Request.key r) ~nocache:r.Request.nocache
            ~timeout_ms:r.Request.timeout_ms (fun () ->
              Request.execute ?cache_dir:t.config.cache_dir r))

(* --- connection and accept loops -------------------------------------- *)

(* Replies are best-effort: when the client vanished mid-reply the
   write raises (EPIPE) and only this connection ends.  Returns the
   payload bytes written (0 on failure) so the journal can record
   [bytes_out]. *)
let try_write fd payload =
  match Protocol.write_frame fd payload with
  | () -> Some (String.length payload)
  | exception Unix.Unix_error (_, _, _) -> None

(* Seal one finished request: write the reply inside an [encode] span,
   publish the context's metric samples, and feed the journal and the
   slowlog.  The encoded payload is reused as the journal record's
   response member — a run reply is tens of kilobytes and encoding it
   twice per request would dominate the journal's cost.  Returns the
   write result. *)
let complete t (ctx : Reqctx.t) fd ~key ~bytes_in ~request reply =
  let wrote =
    Reqctx.span ctx "encode" (fun () ->
        let payload = J.to_string ~minify:true reply in
        (try_write fd payload, payload))
  in
  let wrote, payload = wrote in
  let total_seconds = Reqctx.finish ctx in
  (match t.journal with
  | None -> ()
  | Some jn ->
      Journal.record_request jn ~ctx ~key ~bytes_in
        ~bytes_out:(Option.value ~default:0 wrote)
        ~total_seconds ~request ~response_text:payload);
  Slowlog.note t.slowlog ctx ~total_seconds;
  wrote

let serve_connection t fd =
  Tel.Metrics.Counter.inc0 tel_connections;
  let conn = Reqctx.mint_conn () in
  (* The listening fd is non-blocking; the conversation must not be. *)
  (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
  (* Bounded reads so an idle connection re-checks the stop flag. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.2
   with Unix.Unix_error _ -> ());
  let on_idle () = if Atomic.get t.stop then `Stop else `Continue in
  let rec loop () =
    match Protocol.read_frame ~max_bytes:t.config.max_frame ~on_idle fd with
    | Error Protocol.Closed | Error Protocol.Stopped -> ()
    | Error (Protocol.Oversized { length; in_sync }) ->
        (* The frame never materialised, but the refusal is still a
           served (and journaled) request with its own id. *)
        let ctx = Reqctx.create ~conn () in
        ctx.Reqctx.op <- "?";
        Reqctx.error ctx "oversized_frame";
        count_request "?" "error";
        locked t (fun () ->
            t.c.served <- t.c.served + 1;
            t.c.errors <- t.c.errors + 1);
        let sent =
          Reqctx.with_logging ctx (fun () ->
              Tel.Log.warn ~src:"serve" (fun () ->
                  Printf.sprintf "refusing oversized frame (%d bytes)" length);
              complete t ctx fd ~key:None ~bytes_in:length ~request:J.Null
                (Protocol.error_response ~request_id:ctx.Reqctx.id
                   ~code:"oversized_frame"
                   (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit"
                      length t.config.max_frame)))
        in
        (* A drained frame leaves the stream framed; an undrainable
           length means the peer never spoke the protocol. *)
        if sent <> None && in_sync then loop ()
    | Ok payload -> (
        let ctx = Reqctx.create ~conn () in
        let bytes_in = String.length payload in
        match Reqctx.span ctx "decode" (fun () -> J.parse payload) with
        | Error e ->
            ctx.Reqctx.op <- "?";
            Reqctx.error ctx "malformed_json";
            count_request "?" "error";
            locked t (fun () ->
                t.c.served <- t.c.served + 1;
                t.c.errors <- t.c.errors + 1);
            let sent =
              Reqctx.with_logging ctx (fun () ->
                  complete t ctx fd ~key:None ~bytes_in ~request:J.Null
                    (Protocol.error_response ~request_id:ctx.Reqctx.id
                       ~code:"malformed_json"
                       ("request is not valid JSON: " ^ e)))
            in
            if sent <> None then loop ()
        | Ok j ->
            let reply, stopping, key =
              Reqctx.with_logging ctx (fun () -> handle t ctx j)
            in
            let sent =
              Reqctx.with_logging ctx (fun () ->
                  complete t ctx fd ~key ~bytes_in ~request:j reply)
            in
            if sent <> None && not stopping then loop ())
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ -> serve_connection t fd
          | exception
              Unix.Unix_error
                ( ( Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN
                  | Unix.EWOULDBLOCK ),
                  _,
                  _ ) ->
              ()
          | exception Unix.Unix_error (_, _, _) -> Atomic.set t.stop true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> Atomic.set t.stop true);
      loop ()
    end
  in
  loop ()

(* [serve t] blocks until a shutdown request or [stop t], then joins
   every worker and outstanding timed-out request and removes the
   socket.  Abandoned (timed-out) computations are waited for here —
   they cannot be cancelled, only disowned from their reply. *)
let serve t =
  let w = max 1 t.config.workers in
  Tel.Log.info ~src:"serve"
    ~fields:
      ([
         ("socket", J.String t.config.socket);
         ("workers", J.Int w);
         ("max_frame", J.Int t.config.max_frame);
         ("cache_entries", J.Int t.config.cache_entries);
         ("cache_bytes", J.Int t.config.cache_bytes);
         ( "cache_dir",
           match t.config.cache_dir with
           | None -> J.Null
           | Some d -> J.String d );
         ( "timeout_ms",
           match t.config.default_timeout_ms with
           | None -> J.Null
           | Some ms -> J.Int ms );
         ("slow_ms", J.Float t.config.slow_ms);
         ("slowlog_entries", J.Int t.config.slowlog_entries);
       ]
      @
      match t.config.journal_path with
      | None -> []
      | Some p ->
          [
            ("journal", J.String p);
            ("journal_max_bytes", J.Int t.config.journal_max_bytes);
          ])
    (fun () -> "mapping daemon listening");
  Parallel.iter ~domains:w (fun _ -> accept_loop t) (List.init w Fun.id);
  reap t ~wait:true;
  Option.iter Journal.close t.journal;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.config.socket with Unix.Unix_error _ -> ());
  Tel.Log.info ~src:"serve"
    ~fields:[ ("served", J.Int t.c.served); ("errors", J.Int t.c.errors) ]
    (fun () -> "mapping daemon stopped")
