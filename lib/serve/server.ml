(* The mapping daemon: a Unix-domain-socket server answering
   length-prefixed JSON requests (Protocol) concurrently from a
   Parallel-backed worker pool, fronted by the compiled-plan cache
   (Plan_cache).

   Robustness contract — the reason this is a daemon and not a script:
   no input may kill it.  A malformed frame, an unparseable request, a
   client that disconnects mid-request, an oversized frame, a corrupt
   on-disk cache entry: each is answered (when the socket still
   works) with a structured error reply and at most costs that one
   connection.  Only an explicit shutdown request or [stop] ends the
   accept loops.

   Concurrency shape: [serve] runs [workers] accept loops as one
   [Parallel.map] over [workers] never-returning tasks — each domain
   pulls exactly one task, giving a fixed-size pool with the same
   domain machinery every other parallel path in ctamap uses.  Workers
   poll the listening socket with a short [select] timeout and check
   the stop flag in between, and blocked reads use a receive timeout
   plus the protocol's [on_idle] hook, so shutdown never needs to
   interrupt anything mid-frame. *)

module J = Ctam_util.Json
module Tel = Ctam_telemetry
module Parallel = Ctam_util.Parallel

let tel_requests =
  Tel.Metrics.Counter.v
    ~labels:[ "op"; "outcome" ]
    ~help:"Service requests by operation and outcome"
    "ctam_serve_requests_total"

let tel_connections =
  Tel.Metrics.Counter.v ~help:"Connections accepted"
    "ctam_serve_connections_total"

let tel_seconds =
  Tel.Metrics.Histogram.v ~labels:[ "op" ]
    ~help:"Request service time in seconds" "ctam_serve_request_seconds"

let count_request op outcome =
  Tel.Metrics.Counter.inc (Tel.Metrics.Counter.series tel_requests [ op; outcome ])

type config = {
  socket : string;
  workers : int;
  max_frame : int;  (** refuse request frames larger than this *)
  default_timeout_ms : int option;
      (** applied when the request carries no [timeout_ms] *)
  cache_dir : string option;
  cache_entries : int;
  cache_bytes : int;
}

let default_config =
  {
    socket = "ctamap.sock";
    workers = 2;
    max_frame = Protocol.default_max_frame;
    default_timeout_ms = None;
    cache_dir = None;
    cache_entries = Plan_cache.default_max_entries;
    cache_bytes = Plan_cache.default_max_bytes;
  }

type counters = {
  mutable served : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable cached : int;
}

type t = {
  config : config;
  cache : Plan_cache.t;
  listen_fd : Unix.file_descr;
  stop : bool Atomic.t;
  c : counters;
  lock : Mutex.t;  (** counters + zombie list *)
  mutable zombies : (bool Atomic.t * unit Domain.t) list;
      (** timed-out request domains still running; reaped when done *)
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* --- lifecycle -------------------------------------------------------- *)

let create config =
  (* A dead client mid-reply must be an EPIPE error on the write, not
     a fatal signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink config.socket with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX config.socket);
     Unix.listen fd 64;
     (* Non-blocking: every worker selects on this fd, so one arriving
        connection can wake several of them.  With a blocking fd the
        losers of that accept race would block inside [accept] — deaf
        to the stop flag — and shutdown would hang; non-blocking turns
        the lost race into an EAGAIN and another trip round the
        select loop. *)
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let cache =
    Plan_cache.create ?dir:config.cache_dir ~max_entries:config.cache_entries
      ~max_bytes:config.cache_bytes ()
  in
  {
    config;
    cache;
    listen_fd = fd;
    stop = Atomic.make false;
    c = { served = 0; errors = 0; timeouts = 0; cached = 0 };
    lock = Mutex.create ();
    zombies = [];
  }

let stop t = Atomic.set t.stop true

let reap t ~wait =
  let ready, running =
    locked t (fun () ->
        let ready, running =
          List.partition (fun (done_, _) -> wait || Atomic.get done_) t.zombies
        in
        t.zombies <- running;
        (ready, running))
  in
  ignore running;
  List.iter (fun (_, d) -> Domain.join d) ready

(* --- per-request execution ------------------------------------------- *)

let internal_error e =
  "request failed: " ^ Printexc.to_string e

(* Run [f] with a deadline.  The work runs in its own domain; the
   waiter polls its result slot and gives up at the deadline, parking
   the still-running domain on the zombie list (the computation is
   abandoned, not cancelled — OCaml domains cannot be killed safely —
   and its domain is joined once it finishes).  Requests without a
   timeout run inline on the worker. *)
let with_deadline t timeout_ms f =
  match timeout_ms with
  | None -> ( try Ok (f ()) with e -> Error (`Internal (internal_error e)))
  | Some ms ->
      let slot = Atomic.make None in
      let done_ = Atomic.make false in
      let d =
        Domain.spawn (fun () ->
            let r =
              try Ok (f ()) with e -> Error (`Internal (internal_error e))
            in
            Atomic.set slot (Some r);
            Atomic.set done_ true)
      in
      let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
      let rec wait () =
        match Atomic.get slot with
        | Some r ->
            Domain.join d;
            r
        | None ->
            if Unix.gettimeofday () >= deadline then begin
              locked t (fun () -> t.zombies <- (done_, d) :: t.zombies);
              Error (`Timeout ms)
            end
            else begin
              Unix.sleepf 0.002;
              wait ()
            end
      in
      wait ()

let stats_json t =
  let served, errors, timeouts, cached =
    locked t (fun () -> (t.c.served, t.c.errors, t.c.timeouts, t.c.cached))
  in
  J.Obj
    [
      ("version", J.String Ctam_exp.Build_info.version);
      ("workers", J.Int t.config.workers);
      ("served", J.Int served);
      ("errors", J.Int errors);
      ("timeouts", J.Int timeouts);
      ("cached", J.Int cached);
      ("cache", Plan_cache.stats_json t.cache);
    ]

(* Answer one parsed request object; returns the reply and whether the
   daemon should begin shutting down. *)
let handle t j =
  let id = match j with J.Obj _ -> Option.value ~default:J.Null (J.member "id" j) | _ -> J.Null in
  let op =
    match j with
    | J.Obj _ -> (
        match J.member "op" j with Some (J.String s) -> Some s | _ -> None)
    | _ -> None
  in
  let finish ~op ~outcome reply =
    count_request op outcome;
    locked t (fun () ->
        t.c.served <- t.c.served + 1;
        match outcome with
        | "error" | "timeout" ->
            t.c.errors <- t.c.errors + 1;
            if outcome = "timeout" then t.c.timeouts <- t.c.timeouts + 1
        | "cached" -> t.c.cached <- t.c.cached + 1
        | _ -> ());
    reply
  in
  match op with
  | None ->
      ( finish ~op:"?" ~outcome:"error"
          (Protocol.error_response ~id ~code:"bad_request"
             "request must be an object with a string \"op\" member"),
        false )
  | Some "ping" -> (finish ~op:"ping" ~outcome:"ok" (Protocol.ok_response ~id (J.Obj [ ("pong", J.Bool true) ])), false)
  | Some "stats" ->
      (finish ~op:"stats" ~outcome:"ok" (Protocol.ok_response ~id (stats_json t)), false)
  | Some "shutdown" ->
      Atomic.set t.stop true;
      ( finish ~op:"shutdown" ~outcome:"ok"
          (Protocol.ok_response ~id (J.Obj [ ("stopping", J.Bool true) ])),
        true )
  | Some opname -> (
      match Request.parse j with
      | Error msg ->
          ( finish ~op:opname ~outcome:"error"
              (Protocol.error_response ~id ~code:"bad_request" msg),
            false )
      | Ok r -> (
          let opname = Request.op_id r.Request.op in
          let t0 = Unix.gettimeofday () in
          let observe () =
            Tel.Metrics.Histogram.observe
              (Tel.Metrics.Histogram.series tel_seconds [ opname ])
              (Unix.gettimeofday () -. t0)
          in
          let key = Request.key r in
          let cached_value =
            if r.Request.nocache then None else Plan_cache.find t.cache key
          in
          match cached_value with
          | Some v ->
              observe ();
              ( finish ~op:opname ~outcome:"cached"
                  (Protocol.ok_response ~id ~cached:true v),
                false )
          | None -> (
              let timeout_ms =
                match r.Request.timeout_ms with
                | Some _ as ms -> ms
                | None -> t.config.default_timeout_ms
              in
              match
                with_deadline t timeout_ms (fun () ->
                    Request.execute ?cache_dir:t.config.cache_dir r)
              with
              | Ok v ->
                  if not r.Request.nocache then Plan_cache.add t.cache key v;
                  observe ();
                  (finish ~op:opname ~outcome:"ok" (Protocol.ok_response ~id v), false)
              | Error (`Timeout ms) ->
                  observe ();
                  ( finish ~op:opname ~outcome:"timeout"
                      (Protocol.error_response ~id ~code:"timeout"
                         (Printf.sprintf "request exceeded %d ms" ms)),
                    false )
              | Error (`Internal msg) ->
                  observe ();
                  ( finish ~op:opname ~outcome:"error"
                      (Protocol.error_response ~id ~code:"internal" msg),
                    false ))))

(* --- connection and accept loops -------------------------------------- *)

(* Replies are best-effort: when the client vanished mid-reply the
   write raises (EPIPE) and only this connection ends. *)
let try_write fd reply =
  match Protocol.write_json fd reply with
  | () -> true
  | exception Unix.Unix_error (_, _, _) -> false

let serve_connection t fd =
  Tel.Metrics.Counter.inc0 tel_connections;
  (* The listening fd is non-blocking; the conversation must not be. *)
  (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
  (* Bounded reads so an idle connection re-checks the stop flag. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.2
   with Unix.Unix_error _ -> ());
  let on_idle () = if Atomic.get t.stop then `Stop else `Continue in
  let rec loop () =
    match Protocol.read_frame ~max_bytes:t.config.max_frame ~on_idle fd with
    | Error Protocol.Closed | Error Protocol.Stopped -> ()
    | Error (Protocol.Oversized { length; in_sync }) ->
        count_request "?" "error";
        locked t (fun () ->
            t.c.served <- t.c.served + 1;
            t.c.errors <- t.c.errors + 1);
        let sent =
          try_write fd
            (Protocol.error_response ~code:"oversized_frame"
               (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit"
                  length t.config.max_frame))
        in
        (* A drained frame leaves the stream framed; an undrainable
           length means the peer never spoke the protocol. *)
        if sent && in_sync then loop ()
    | Ok payload -> (
        match J.parse payload with
        | Error e ->
            count_request "?" "error";
            locked t (fun () ->
                t.c.served <- t.c.served + 1;
                t.c.errors <- t.c.errors + 1);
            if
              try_write fd
                (Protocol.error_response ~code:"malformed_json"
                   ("request is not valid JSON: " ^ e))
            then loop ()
        | Ok j ->
            let reply, stopping = handle t j in
            let sent = try_write fd reply in
            if sent && not stopping then loop ())
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ -> serve_connection t fd
          | exception
              Unix.Unix_error
                ( ( Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN
                  | Unix.EWOULDBLOCK ),
                  _,
                  _ ) ->
              ()
          | exception Unix.Unix_error (_, _, _) -> Atomic.set t.stop true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> Atomic.set t.stop true);
      loop ()
    end
  in
  loop ()

(* [serve t] blocks until a shutdown request or [stop t], then joins
   every worker and outstanding timed-out request and removes the
   socket.  Abandoned (timed-out) computations are waited for here —
   they cannot be cancelled, only disowned from their reply. *)
let serve t =
  let w = max 1 t.config.workers in
  Parallel.iter ~domains:w (fun _ -> accept_loop t) (List.init w Fun.id);
  reap t ~wait:true;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  try Unix.unlink t.config.socket with Unix.Unix_error _ -> ()
