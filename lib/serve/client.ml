(* Client side of the mapping service: connect, exchange one frame per
   request, and a load-generator mode that measures the daemon's
   throughput and latency tail (the measurement half of the
   serve-sweep benchmark). *)

module J = Ctam_util.Json
module Parallel = Ctam_util.Parallel

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

(* One request/reply exchange on an open connection.  Totals every
   failure into [Error _]: a vanished daemon is a result, not an
   exception, so the load generator can keep counting. *)
let request fd j =
  match
    Protocol.write_json fd j;
    Protocol.read_frame fd
  with
  | Ok payload -> (
      match J.parse payload with
      | Ok reply -> Ok reply
      | Error e -> Error ("reply is not valid JSON: " ^ e))
  | Error Protocol.Closed -> Error "connection closed by server"
  | Error Protocol.Stopped -> Error "read interrupted"
  | Error (Protocol.Oversized { length; _ }) ->
      Error (Printf.sprintf "oversized reply (%d bytes)" length)
  | exception Unix.Unix_error (err, _, _) ->
      Error ("socket error: " ^ Unix.error_message err)

let one_shot ~socket j =
  match connect socket with
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket
           (Unix.error_message err))
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> request fd j)

(* --- load generator --------------------------------------------------- *)

type load_stats = {
  requests : int;
  ok : int;
  cached : int;  (** subset of [ok] answered from the plan cache *)
  errors : int;
  wall_seconds : float;
  rps : float;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

let quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

(* [load ~socket ~concurrency ~total reqs] sends [total] requests
   round-robin over the [reqs] templates from [concurrency] worker
   domains, each on its own connection (so concurrency here is real
   socket-level concurrency, not pipelining).  Latencies are
   per-request wall clock including the round trip. *)
let load ~socket ~concurrency ~total reqs =
  if reqs = [] then invalid_arg "Client.load: no request templates";
  if concurrency < 1 then invalid_arg "Client.load: concurrency";
  let templates = Array.of_list reqs in
  let share w =
    (* first workers absorb the remainder *)
    (total / concurrency) + if w < total mod concurrency then 1 else 0
  in
  let t0 = Unix.gettimeofday () in
  let per_worker =
    Parallel.map ~domains:concurrency
      (fun w ->
        let n = share w in
        if n = 0 then ([||], 0, 0)
        else
          let lat = Array.make n 0. in
          let ok = ref 0 and cached = ref 0 in
          let fd = connect socket in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              for i = 0 to n - 1 do
                let j = templates.((w + (i * concurrency)) mod Array.length templates) in
                let s0 = Unix.gettimeofday () in
                (match request fd j with
                | Ok reply when Protocol.response_ok reply ->
                    incr ok;
                    if Protocol.response_cached reply then incr cached
                | Ok _ | Error _ -> ());
                lat.(i) <- Unix.gettimeofday () -. s0
              done;
              (lat, !ok, !cached)))
      (List.init concurrency Fun.id)
  in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let lats = Array.concat (List.map (fun (l, _, _) -> l) per_worker) in
  let ok = List.fold_left (fun a (_, o, _) -> a + o) 0 per_worker in
  let cached = List.fold_left (fun a (_, _, c) -> a + c) 0 per_worker in
  let requests = Array.length lats in
  Array.sort compare lats;
  let sum = Array.fold_left ( +. ) 0. lats in
  let ms x = 1000. *. x in
  {
    requests;
    ok;
    cached;
    errors = requests - ok;
    wall_seconds;
    rps = (if wall_seconds > 0. then float_of_int requests /. wall_seconds else 0.);
    mean_ms = (if requests = 0 then 0. else ms (sum /. float_of_int requests));
    p50_ms = ms (quantile lats 0.50);
    p90_ms = ms (quantile lats 0.90);
    p99_ms = ms (quantile lats 0.99);
    max_ms = (if requests = 0 then 0. else ms lats.(requests - 1));
  }

let load_stats_json s =
  J.Obj
    [
      ("requests", J.Int s.requests);
      ("ok", J.Int s.ok);
      ("cached", J.Int s.cached);
      ("errors", J.Int s.errors);
      ("wall_seconds", J.Float s.wall_seconds);
      ("rps", J.Float s.rps);
      ("mean_ms", J.Float s.mean_ms);
      ("p50_ms", J.Float s.p50_ms);
      ("p90_ms", J.Float s.p90_ms);
      ("p99_ms", J.Float s.p99_ms);
      ("max_ms", J.Float s.max_ms);
    ]

let render_load_stats s =
  Printf.sprintf
    "%d requests (%d ok, %d cached, %d errors) in %.3f s\n\
     %.1f req/s | latency ms: mean %.2f  p50 %.2f  p90 %.2f  p99 %.2f  max %.2f"
    s.requests s.ok s.cached s.errors s.wall_seconds s.rps s.mean_ms s.p50_ms
    s.p90_ms s.p99_ms s.max_ms
