(* Request context of the mapping daemon: one value minted per decoded
   frame and threaded through dispatch, the plan cache and the logger,
   so every log line, metric sample, journal record and error reply
   can be tied back to one request.

   The id is monotonic across the whole daemon (a single atomic),
   [conn] identifies the client connection it arrived on, and [spans]
   accumulates the named per-request phase timings (decode /
   cache_lookup / compile / simulate / encode ...) that [finish]
   publishes as ctam_serve_* histograms labelled by op and cache
   outcome. *)

module J = Ctam_util.Json
module Tel = Ctam_telemetry

let tel_span_seconds =
  Tel.Metrics.Histogram.v
    ~labels:[ "op"; "span" ]
    ~help:"Per-request phase timings inside the daemon, in seconds"
    "ctam_serve_span_seconds"

let tel_request_seconds =
  Tel.Metrics.Histogram.v
    ~labels:[ "op"; "cache" ]
    ~help:"Request service time in seconds by operation and cache outcome"
    "ctam_serve_request_seconds"

(* Cache outcomes a request can end with.  [`None_] is for ops that
   never consult the plan cache (ping/stats/metrics/...). *)
type cache_outcome = Memory | Disk | Miss | Bypass | None_

let cache_id = function
  | Memory -> "memory"
  | Disk -> "disk"
  | Miss -> "miss"
  | Bypass -> "bypass"
  | None_ -> "none"

type t = {
  id : int;
  conn : int;
  started : float;  (** wall clock at frame decode *)
  mutable op : string;
  mutable cache : cache_outcome;
  mutable status : string;  (** "ok" | "error" | "timeout" *)
  mutable error_code : string option;
  mutable spans : (string * float) list;  (** reverse completion order *)
}

let next_id = Atomic.make 0
let next_conn = Atomic.make 0

let mint_conn () = Atomic.fetch_and_add next_conn 1

let create ~conn () =
  {
    id = Atomic.fetch_and_add next_id 1;
    conn;
    started = Unix.gettimeofday ();
    op = "?";
    cache = None_;
    status = "ok";
    error_code = None;
    spans = [];
  }

let add_span ctx name seconds = ctx.spans <- (name, seconds) :: ctx.spans

let add_spans ctx spans =
  List.iter (fun (name, seconds) -> add_span ctx name seconds) spans

let span ctx name f =
  let t0 = Unix.gettimeofday () in
  let record () = add_span ctx name (Unix.gettimeofday () -. t0) in
  match f () with
  | r ->
      record ();
      r
  | exception e ->
      record ();
      raise e

let spans ctx = List.rev ctx.spans

let log_fields ctx =
  [ ("request_id", J.Int ctx.id); ("conn", J.Int ctx.conn) ]

(* Run [f] with this request's identity on every log line it emits
   (on the calling domain — deadline domains re-enter the scope
   themselves). *)
let with_logging ctx f = Tel.Log.with_context (log_fields ctx) f

let error ctx code =
  ctx.status <- (if code = "timeout" then "timeout" else "error");
  ctx.error_code <- Some code

(* Publish the request's metric samples and return its total wall
   time.  Called exactly once, after the reply was written (or the
   write failed). *)
let finish ctx =
  let total = Unix.gettimeofday () -. ctx.started in
  if Tel.Metrics.enabled () then begin
    let cache = cache_id ctx.cache in
    Tel.Metrics.Histogram.observe
      (Tel.Metrics.Histogram.series tel_request_seconds [ ctx.op; cache ])
      total;
    List.iter
      (fun (name, seconds) ->
        Tel.Metrics.Histogram.observe
          (Tel.Metrics.Histogram.series tel_span_seconds [ ctx.op; name ])
          seconds)
      ctx.spans
  end;
  total

let spans_us_json ctx =
  J.Obj
    (List.map
       (fun (name, seconds) ->
         (name, J.Int (int_of_float (Float.round (seconds *. 1e6)))))
       (spans ctx))
