(* Wire protocol of the mapping service: length-prefixed JSON frames
   over a Unix-domain stream socket.

   A frame is a 4-byte big-endian payload length followed by exactly
   that many bytes of UTF-8 JSON (one request or one response).  The
   prefix makes framing independent of the payload (no sentinel
   scanning, binary-safe) and lets the receiver reject an oversized
   request *before* buffering it — an essential property for a daemon
   that must survive hostile input.

   Error discipline: this module never lets a socket problem escape as
   an uncaught exception on the read side — every failure mode is a
   constructor the server can answer with a structured error reply.
   Writes raise [Unix.Unix_error] (e.g. [EPIPE] when the client
   vanished mid-reply); the connection loop catches those and drops
   only that connection. *)

module J = Ctam_util.Json

let default_max_frame = 16 * 1024 * 1024

(* Declared lengths up to this are drained (read and discarded) so the
   stream stays framed after an oversized request is refused; beyond
   it the length is treated as garbage — a client that never spoke the
   protocol — and the connection cannot be resynchronized. *)
let drain_ceiling = 64 * 1024 * 1024

type read_error =
  | Closed  (** peer closed (or truncated a frame) *)
  | Stopped  (** the [on_idle] callback asked to abandon the wait *)
  | Oversized of { length : int; in_sync : bool }
      (** declared length exceeds the limit; [in_sync] says whether the
          body was drained so the connection can keep serving *)

(* [read_n fd n ~on_idle] reads exactly [n] bytes.  A receive timeout
   on [fd] (EAGAIN) invokes [on_idle]: [`Continue] retries the read
   (mid-frame retries are safe — nothing is discarded), [`Stop]
   abandons the connection.  This is how server workers blocked on an
   idle client notice a daemon shutdown without losing frame sync. *)
let read_n fd n ~on_idle =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Ok buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> Error Closed
      | k -> go (off + k)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
          match on_idle () with `Continue -> go off | `Stop -> Error Stopped)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> Error Closed
  in
  go 0

let drain fd length ~on_idle =
  let chunk = Bytes.create 65536 in
  let rec go left =
    if left <= 0 then true
    else
      match Unix.read fd chunk 0 (min left (Bytes.length chunk)) with
      | 0 -> false
      | k -> go (left - k)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
          match on_idle () with `Continue -> go left | `Stop -> false)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go left
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go length

let read_frame ?(max_bytes = default_max_frame) ?(on_idle = fun () -> `Continue)
    fd =
  match read_n fd 4 ~on_idle with
  | Error e -> Error e
  | Ok hdr ->
      let b i = Char.code (Bytes.get hdr i) in
      let length = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if length > max_bytes then
        if length <= drain_ceiling && drain fd length ~on_idle then
          Error (Oversized { length; in_sync = true })
        else Error (Oversized { length; in_sync = false })
      else (
        match read_n fd length ~on_idle with
        | Ok payload -> Ok (Bytes.unsafe_to_string payload)
        | Error e -> Error e)

let write_frame fd payload =
  let n = String.length payload in
  if n > 0xFFFFFFFF then invalid_arg "Protocol.write_frame: frame too large";
  let msg = Bytes.create (4 + n) in
  Bytes.set msg 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set msg 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set msg 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set msg 3 (Char.chr (n land 0xFF));
  Bytes.blit_string payload 0 msg 4 n;
  let total = 4 + n in
  let rec go off =
    if off < total then
      match Unix.write fd msg off (total - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let write_json fd j = write_frame fd (J.to_string ~minify:true j)

(* --- response shapes -------------------------------------------------- *)

(* [request_id] is the daemon-minted monotonic id (distinct from the
   client-chosen [id] echo): present on every reply of an observable
   daemon so a client error message can be correlated with the
   daemon's log lines, journal record and slowlog entry. *)

let request_id_members = function
  | None -> []
  | Some rid -> [ ("request_id", J.Int rid) ]

let ok_response ?(id = J.Null) ?request_id ?(cached = false) result =
  J.Obj
    ([ ("id", id) ]
    @ request_id_members request_id
    @ [ ("ok", J.Bool true); ("cached", J.Bool cached); ("result", result) ])

let error_response ?(id = J.Null) ?request_id ~code message =
  J.Obj
    ([ ("id", id) ]
    @ request_id_members request_id
    @ [
        ("ok", J.Bool false);
        ( "error",
          J.Obj [ ("code", J.String code); ("message", J.String message) ] );
      ])

(* Total accessors mirroring the server's view of a reply: never raise,
   even on replies that are not objects at all. *)

let mem name = function J.Obj _ as j -> J.member name j | _ -> None

let response_ok j = match mem "ok" j with Some (J.Bool b) -> b | _ -> false

let response_cached j =
  match mem "cached" j with Some (J.Bool b) -> b | _ -> false

let response_result j = mem "result" j

let response_request_id j =
  match mem "request_id" j with Some (J.Int i) -> Some i | _ -> None

let response_error j =
  match mem "error" j with
  | Some (J.Obj _ as e) ->
      let get name =
        match J.member name e with Some (J.String s) -> s | _ -> ""
      in
      Some (get "code", get "message")
  | _ -> None
