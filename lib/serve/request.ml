(* Compute requests of the mapping service: parsing the JSON request
   shape into the pipeline's own types, deriving the plan-cache key,
   and executing the operation.

   Parsing is total — every malformed request becomes [Error _] for
   the server to answer with a structured [bad_request] reply; nothing
   in here may raise on hostile input.  Execution reuses the same
   entry points the one-shot CLI uses ([Mapping.compile],
   [Run_report.profile], [Search.run], [Verify.check]), so a served
   answer is byte-identical to the corresponding [ctamap] invocation
   modulo the volatile report members (wall-clock timings, telemetry
   snapshot). *)

open Ctam_arch
open Ctam_ir
open Ctam_core
module J = Ctam_util.Json
module Space = Ctam_tune.Space
module Search = Ctam_tune.Search

type op = Map | Run | Tune | Check

let op_id = function
  | Map -> "map"
  | Run -> "run"
  | Tune -> "tune"
  | Check -> "check"

let op_of_id = function
  | "map" -> Some Map
  | "run" -> Some Run
  | "tune" -> Some Tune
  | "check" -> Some Check
  | _ -> None

type t = {
  id : J.t;  (** echoed verbatim in the reply *)
  op : op;
  program_name : string;
  program : Program.t;
  machine : Topology.t;
  point : Space.point;  (** canonicalized: scheme + α/β/balance/tile *)
  base_params : Mapping.params;
  stream : bool;
  sample_sets : int;
  check : bool;  (** run: attach the legality report; tune: verify winner *)
  strategy : Search.strategy;  (** tune only *)
  budget : int option;  (** tune only *)
  nocache : bool;  (** bypass the plan cache (lookup and store) *)
  timeout_ms : int option;
  trace : bool;  (** run: embed Chrome-trace JSON in the response *)
  trace_window : int option;  (** timeline window width for [trace] *)
}

(* --- parsing ---------------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let mem name = function J.Obj _ as j -> J.member name j | _ -> None

let str_field j name =
  match mem name j with
  | None -> None
  | Some (J.String s) -> Some s
  | Some _ -> bad "member %S must be a string" name

let int_field j name =
  match mem name j with
  | None -> None
  | Some (J.Int i) -> Some i
  | Some _ -> bad "member %S must be an integer" name

let num_field j name =
  match mem name j with
  | None -> None
  | Some (J.Int i) -> Some (float_of_int i)
  | Some (J.Float f) -> Some f
  | Some _ -> bad "member %S must be a number" name

let bool_field j name =
  match mem name j with
  | None -> None
  | Some (J.Bool b) -> Some b
  | Some _ -> bad "member %S must be a boolean" name

let parse_program j =
  match (str_field j "program", str_field j "source") with
  | Some _, Some _ -> bad "give either \"program\" or \"source\", not both"
  | None, None -> bad "missing \"program\" (builtin name) or \"source\" (DSL)"
  | Some name, None -> (
      match Ctam_workloads.Suite.by_name name with
      | k ->
          let size = int_field j "size" in
          (k.Ctam_workloads.Kernel.name, Ctam_workloads.Kernel.program ?size k)
      | exception Not_found -> bad "unknown builtin program %S" name)
  | None, Some src -> (
      match Ctam_frontend.Lower.compile src with
      | p -> (p.Program.name, p)
      | exception e -> bad "source does not compile: %s" (Printexc.to_string e))

let parse_machine j =
  match (str_field j "machine", str_field j "topology") with
  | Some _, Some _ -> bad "give either \"machine\" or \"topology\", not both"
  | None, None -> bad "missing \"machine\" (preset name) or \"topology\" (text)"
  | Some name, None -> (
      let scale = int_field j "scale" in
      match Ctam_arch.Machines.by_name ?scale name with
      | m -> m
      | exception Not_found -> bad "unknown machine %S" name)
  | None, Some text -> (
      if int_field j "scale" <> None then
        bad "\"scale\" applies only to machine presets";
      match Ctam_arch.Topo_parse.parse text with
      | m -> m
      | exception Ctam_arch.Topo_parse.Error msg -> bad "bad topology: %s" msg)

(* The point comes either whole (["params"], the [--params] file
   schema) or knob by knob; either way it is canonicalized so requests
   that compile to the same mapping share a cache key. *)
let parse_point j =
  let scheme =
    match str_field j "scheme" with
    | None -> None
    | Some id -> (
        match Space.scheme_of_id id with
        | Ok s -> Some s
        | Error e -> bad "%s" e)
  in
  let base =
    match mem "params" j with
    | None -> Space.default_point ?scheme ()
    | Some pj -> (
        match Space.of_json pj with
        | Ok p -> (
            match scheme with
            | None -> p
            | Some s -> { p with Space.scheme = s })
        | Error e -> bad "bad \"params\": %s" e)
  in
  let p =
    {
      base with
      Space.alpha = Option.value ~default:base.Space.alpha (num_field j "alpha");
      beta = Option.value ~default:base.Space.beta (num_field j "beta");
      balance =
        Option.value ~default:base.Space.balance (num_field j "balance");
      tile_edge =
        (match int_field j "tile_edge" with
        | Some e -> Some e
        | None -> base.Space.tile_edge);
    }
  in
  Space.canonical p

let parse_base_params j =
  let p = Mapping.default_params in
  let p =
    match int_field j "block" with
    | None -> p
    | Some b -> { p with Mapping.block_size = b; auto_block = false }
  in
  match Mapping.validate_params p with
  | Ok () -> p
  | Error e -> bad "bad parameters: %s" e

let parse j =
  match
    let op =
      match str_field j "op" with
      | None -> bad "missing \"op\""
      | Some id -> (
          match op_of_id id with
          | Some op -> op
          | None -> bad "unknown op %S" id)
    in
    let program_name, program = parse_program j in
    let machine = parse_machine j in
    (* The policy spec is folded into the machine itself, so the
       plan-cache key (whose topology fragments carry non-default
       policies) can never serve a plan across policy changes. *)
    let machine =
      match str_field j "policy" with
      | None -> machine
      | Some spec -> (
          match Policy.parse_spec spec with
          | Ok bindings -> Topology.with_policy_spec bindings machine
          | Error e -> bad "bad \"policy\": %s" e)
    in
    let point = parse_point j in
    let base_params = parse_base_params j in
    let sample_sets =
      match int_field j "sample_sets" with
      | None -> 1
      | Some n when n >= 1 -> n
      | Some n -> bad "\"sample_sets\" must be >= 1 (got %d)" n
    in
    let timeout_ms =
      match int_field j "timeout_ms" with
      | None -> None
      | Some ms when ms >= 1 -> Some ms
      | Some ms -> bad "\"timeout_ms\" must be >= 1 (got %d)" ms
    in
    let strategy =
      match str_field j "strategy" with
      | None -> Search.default_settings.Search.strategy
      | Some id -> (
          match Search.strategy_of_id id with
          | Ok s -> s
          | Error e -> bad "%s" e)
    in
    let trace = Option.value ~default:false (bool_field j "trace") in
    let trace_window =
      match int_field j "trace_window" with
      | None -> None
      | Some w when w >= 1 -> Some w
      | Some w -> bad "\"trace_window\" must be >= 1 (got %d)" w
    in
    if trace && op <> Run then bad "\"trace\" applies only to op \"run\"";
    if trace_window <> None && not trace then
      bad "\"trace_window\" requires \"trace\": true";
    {
      id = Option.value ~default:J.Null (mem "id" j);
      op;
      program_name;
      program;
      machine;
      point;
      base_params;
      stream = Option.value ~default:false (bool_field j "stream");
      sample_sets;
      check = Option.value ~default:false (bool_field j "check");
      strategy;
      budget = int_field j "budget";
      nocache = Option.value ~default:false (bool_field j "nocache");
      timeout_ms;
      trace;
      trace_window;
    }
  with
  | r -> Ok r
  | exception Bad msg -> Error msg

(* --- plan-cache key --------------------------------------------------- *)

(* Same content-hash discipline as the tune cache
   (Ctam_tune.Cache.key), over the request shape instead of a space
   point alone: operation, execution mode, the canonical point, and
   the shared environment fragments (tool version, base params,
   per-core topology paths, canonical program source). *)
let key r =
  String.concat "\n"
    ([ "ctam-plan-key v1"; "op=" ^ op_id r.op ]
    @ (if r.stream then [ "stream=1" ] else [])
    @ (if r.sample_sets > 1 then
         [ Printf.sprintf "sample=%d" r.sample_sets ]
       else [])
    @ (if r.check then [ "check=1" ] else [])
    @ (if r.trace then [ "trace=1" ] else [])
    @ (match r.trace_window with
      | Some w when r.trace -> [ Printf.sprintf "trace_window=%d" w ]
      | _ -> [])
    @ (match r.op with
      | Tune ->
          [
            "strategy=" ^ Search.strategy_id r.strategy;
            ("budget="
            ^ match r.budget with None -> "none" | Some b -> string_of_int b);
          ]
      | Map | Run | Check -> [])
    @ [ Space.key_fragment r.point ]
    @ Ctam_tune.Cache.context_fragments ~version:Ctam_exp.Build_info.version
        ~base_params:r.base_params ~machine:r.machine r.program)

(* --- the trace op (simtrace over the wire) ----------------------------- *)

module Ingest = Ctam_tracein.Ingest
module TraceReader = Ctam_tracein.Reader

type trace_req = {
  t_id : J.t;
  t_machine : Topology.t;
  t_opts : Ingest.options;
  t_text : string;
  t_sample_sets : int;
  t_nocache : bool;
  t_timeout_ms : int option;
}

let parse_trace j =
  match
    let text =
      match str_field j "trace_text" with
      | Some s -> s
      | None -> bad "missing \"trace_text\" (inline trace contents)"
    in
    let machine = parse_machine j in
    let machine =
      match str_field j "policy" with
      | None -> machine
      | Some spec -> (
          match Policy.parse_spec spec with
          | Ok bindings -> Topology.with_policy_spec bindings machine
          | Error e -> bad "bad \"policy\": %s" e)
    in
    let cores =
      match int_field j "cores" with
      | None -> 1
      | Some c when c >= 1 -> c
      | Some c -> bad "\"cores\" must be >= 1 (got %d)" c
    in
    let interleave =
      match str_field j "interleave" with
      | None | Some "round-robin" | Some "rr" -> Ingest.Round_robin
      | Some "tagged" -> Ingest.Tagged
      | Some s -> bad "unknown interleave %S (round-robin or tagged)" s
    in
    let pos_field name =
      match int_field j name with
      | None -> None
      | Some v when v >= 1 -> Some v
      | Some v -> bad "%S must be >= 1 (got %d)" name v
    in
    let opts =
      {
        Ingest.cores;
        interleave;
        instr = Option.value ~default:false (bool_field j "instr");
        lossy = Option.value ~default:false (bool_field j "lossy");
        fold_bits = pos_field "fold_bits";
        rebase = Option.value ~default:false (bool_field j "rebase");
        split = pos_field "split";
      }
    in
    let sample_sets =
      match int_field j "sample_sets" with
      | None -> 1
      | Some n when n >= 1 -> n
      | Some n -> bad "\"sample_sets\" must be >= 1 (got %d)" n
    in
    let timeout_ms =
      match int_field j "timeout_ms" with
      | None -> None
      | Some ms when ms >= 1 -> Some ms
      | Some ms -> bad "\"timeout_ms\" must be >= 1 (got %d)" ms
    in
    (* Parsing stays total: strict-mode trace errors (with their line
       positions) surface here as [bad_request], not as [internal]
       failures mid-execution. *)
    (match Ingest.scan opts (TraceReader.Text text) with
    | _ -> ()
    | exception Ingest.Error msg -> bad "bad trace: %s" msg);
    {
      t_id = Option.value ~default:J.Null (mem "id" j);
      t_machine = machine;
      t_opts = opts;
      t_text = text;
      t_sample_sets = sample_sets;
      t_nocache = Option.value ~default:false (bool_field j "nocache");
      t_timeout_ms = timeout_ms;
    }
  with
  | r -> Ok r
  | exception Bad msg -> Error msg

(* Same content-hash discipline as [key]: every behavioral input —
   including the trace text itself and the (policy-aware) topology
   fragments — is part of the key. *)
let trace_key tr =
  let o = tr.t_opts in
  String.concat "\n"
    [
      "ctam-trace-key v1";
      "version=" ^ Ctam_exp.Build_info.version;
      Printf.sprintf "cores=%d interleave=%s instr=%b lossy=%b fold=%s \
                      rebase=%b split=%s sample=%d"
        o.Ingest.cores
        (Ingest.interleave_to_string o.Ingest.interleave)
        o.Ingest.instr o.Ingest.lossy
        (match o.Ingest.fold_bits with
        | None -> "none"
        | Some b -> string_of_int b)
        o.Ingest.rebase
        (match o.Ingest.split with
        | None -> "none"
        | Some s -> string_of_int s)
        tr.t_sample_sets;
      Ctam_tune.Cache.topology_fragment tr.t_machine;
      tr.t_text;
    ]

let execute_trace tr =
  let t0 = Unix.gettimeofday () in
  let stats, sc =
    Ingest.run ~sample_sets:tr.t_sample_sets ~machine:tr.t_machine tr.t_opts
      (TraceReader.Text tr.t_text)
  in
  let report = Ingest.report_json ~machine:tr.t_machine tr.t_opts sc stats in
  (report, [ ("simulate", Unix.gettimeofday () -. t0) ])

(* --- execution -------------------------------------------------------- *)

let nest_json (i : Mapping.nest_info) =
  J.Obj
    [
      ("name", J.String i.Mapping.nest_name);
      ("groups", J.Int i.Mapping.num_groups);
      ("rounds", J.Int i.Mapping.num_rounds);
      ("dep_edges", J.Int i.Mapping.dep_edges);
      ("block_size", J.Int i.Mapping.used_block_size);
    ]

(* The map op answers with the mapping's structure only (groups,
   rounds, dependence edges per nest) — no wall-clock members, so the
   response is fully deterministic and caches byte-exactly. *)
let map_summary r (compiled : Mapping.compiled) =
  J.Obj
    [
      ("ctam_map_version", J.Int 1);
      ("version", J.String Ctam_exp.Build_info.version);
      ("program", J.String r.program_name);
      ("scheme", J.String (Space.scheme_id r.point.Space.scheme));
      ("machine", J.String r.machine.Topology.name);
      ("cores", J.Int r.machine.Topology.num_cores);
      ("params", Space.to_json r.point);
      ("nests", J.List (List.map nest_json compiled.Mapping.infos));
    ]

(* Append a member to an object result (total: non-objects pass
   through untouched). *)
let with_member name v = function
  | J.Obj ms -> J.Obj (ms @ [ (name, v) ])
  | j -> j

let timed spans name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  spans := (name, Unix.gettimeofday () -. t0) :: !spans;
  r

(* [execute ?cache_dir r] runs the operation and returns the result
   JSON together with the named phase timings the request context
   publishes as spans (compile / simulate / verify / search, in
   completion order).  [cache_dir] is handed to tune searches as their
   own persistent evaluation cache (distinct file prefix, same
   directory).  May raise — the server maps exceptions to structured
   [internal] errors. *)
let execute ?cache_dir r =
  let params = Space.params_of ~base:r.base_params r.point in
  let scheme = r.point.Space.scheme in
  let spans = ref [] in
  let result =
    match r.op with
    | Map ->
        let compiled =
          timed spans "compile" (fun () ->
              Mapping.compile ~params ~stream:r.stream scheme
                ~machine:r.machine r.program)
        in
        map_summary r compiled
    | Run ->
        let timeline_window =
          if r.trace then
            Some
              (Option.value
                 ~default:Ctam_cachesim.Timeline.default_window
                 r.trace_window)
          else None
        in
        let p =
          Ctam_exp.Run_report.profile ~params ?timeline_window ~check:r.check
            ~stream:r.stream ~sample_sets:r.sample_sets scheme
            ~machine:r.machine r.program
        in
        let compile_seconds =
          List.fold_left
            (fun a (_, s) -> a +. s)
            0.
            p.Ctam_exp.Run_report.compiled.Mapping.timings
        in
        spans :=
          [
            ("simulate", p.Ctam_exp.Run_report.sim_seconds);
            ("compile", compile_seconds);
          ];
        let report = p.Ctam_exp.Run_report.report in
        (* trace: embed the Chrome trace-event JSON (PR-4 exporter)
           right in the reply, so a client can stream one slow request
           straight into chrome://tracing. *)
        if r.trace then
          match p.Ctam_exp.Run_report.timeline with
          | Some tl ->
              let tj =
                Ctam_exp.Trace_export.trace_json
                  ~compile_timings:
                    p.Ctam_exp.Run_report.compiled.Mapping.timings
                  ~program:r.program_name
                  ~machine:r.machine.Topology.name
                  ~scheme:(Space.scheme_id r.point.Space.scheme)
                  ~legend:p.Ctam_exp.Run_report.legend tl
              in
              with_member "trace" tj report
          | None -> report
        else report
    | Check ->
        let compiled =
          timed spans "compile" (fun () ->
              Mapping.compile ~params ~stream:r.stream scheme
                ~machine:r.machine r.program)
        in
        timed spans "verify" (fun () ->
            Ctam_verify.Verify.to_json (Ctam_verify.Verify.check compiled))
    | Tune ->
        let settings =
          {
            Search.default_settings with
            Search.strategy = r.strategy;
            budget = r.budget;
            cache_dir;
            (* One evaluation at a time: the daemon's parallelism budget
               belongs to the worker pool, not to a single request. *)
            jobs = Some 1;
            base_params = r.base_params;
            verify = r.check;
            stream = r.stream;
            sample_sets = r.sample_sets;
          }
        in
        let result =
          timed spans "search" (fun () ->
              Search.run settings ~machine:r.machine
                ~program_name:r.program_name r.program)
        in
        Search.to_json result
  in
  (result, List.rev !spans)
