(* The general compiled-plan cache fronting the mapping service:
   Tune.Cache's content-hash discipline generalized from tune outcomes
   to any JSON-valued result (compiled-plan summaries, run reports,
   verification reports, whole tune reports), with an in-memory LRU
   tier over the shared atomic on-disk tier (Ctam_util.Diskstore).

   The memory tier is bounded both in entries and in bytes (the size
   of an entry is its minified serialization, i.e. roughly what it
   costs to hold and to send); inserting past either bound evicts from
   the cold end.  A disk hit is promoted into memory, so a restarted
   daemon re-warms its working set on first touch.

   All operations take the cache mutex: the server's worker domains
   share one instance.  The on-disk tier needs no lock — Diskstore
   writes are atomic (temp + rename) and concurrent readers see either
   the old or the new entry, never a torn one. *)

module J = Ctam_util.Json
module Store = Ctam_util.Diskstore
module Tel = Ctam_telemetry

let file_prefix = "ctam-plan-"

let tel_lookups =
  Tel.Metrics.Counter.v
    ~labels:[ "tier"; "result" ]
    ~help:"Plan cache lookups by tier and outcome"
    "ctam_serve_cache_lookups_total"

let tel_evictions =
  Tel.Metrics.Counter.v ~labels:[ "reason" ]
    ~help:"Plan cache LRU evictions by bound" "ctam_serve_cache_evictions_total"

let tel_stores =
  Tel.Metrics.Counter.v ~help:"Plan cache entries written to disk"
    "ctam_serve_cache_stores_total"

let tel_store_failures =
  Tel.Metrics.Counter.v ~help:"Plan cache disk writes that failed"
    "ctam_serve_cache_store_failures_total"

let tel_entries =
  Tel.Metrics.Gauge.v ~help:"Plan cache resident entries"
    "ctam_serve_cache_entries"

let tel_bytes =
  Tel.Metrics.Gauge.v ~help:"Plan cache resident bytes"
    "ctam_serve_cache_bytes"

let count tier result =
  Tel.Metrics.Counter.inc (Tel.Metrics.Counter.series tel_lookups [ tier; result ])

(* Doubly-linked LRU node; [node.key] doubles as the hashtable key. *)
type node = {
  key : string;
  value : J.t;
  bytes : int;
  mutable prev : node option;  (** towards hot end *)
  mutable next : node option;  (** towards cold end *)
}

type counters = {
  mutable mem_hits : int;
  mutable mem_misses : int;
  mutable disk_hits : int;
  mutable disk_misses : int;
  mutable disk_corrupt : int;
  mutable evicted_entries : int;
  mutable evicted_bytes : int;
  mutable stores : int;
  mutable store_failures : int;
}

type t = {
  dir : string option;
  max_entries : int;
  max_bytes : int;
  table : (string, node) Hashtbl.t;
  mutable hot : node option;
  mutable cold : node option;
  mutable entries : int;
  mutable bytes : int;
  c : counters;
  lock : Mutex.t;
}

let default_max_entries = 512
let default_max_bytes = 64 * 1024 * 1024

let create ?dir ?(max_entries = default_max_entries)
    ?(max_bytes = default_max_bytes) () =
  if max_entries < 1 then invalid_arg "Plan_cache.create: max_entries";
  if max_bytes < 1 then invalid_arg "Plan_cache.create: max_bytes";
  {
    dir;
    max_entries;
    max_bytes;
    table = Hashtbl.create 64;
    hot = None;
    cold = None;
    entries = 0;
    bytes = 0;
    c =
      {
        mem_hits = 0;
        mem_misses = 0;
        disk_hits = 0;
        disk_misses = 0;
        disk_corrupt = 0;
        evicted_entries = 0;
        evicted_bytes = 0;
        stores = 0;
        store_failures = 0;
      };
    lock = Mutex.create ();
  }

let dir t = t.dir

(* --- intrusive list plumbing (caller holds the lock) ------------------ *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.hot <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.cold <- n.prev);
  n.prev <- None;
  n.next <- None

let push_hot t n =
  n.prev <- None;
  n.next <- t.hot;
  (match t.hot with Some h -> h.prev <- Some n | None -> t.cold <- Some n);
  t.hot <- Some n

let set_gauges t =
  Tel.Metrics.Gauge.set0 tel_entries (float_of_int t.entries);
  Tel.Metrics.Gauge.set0 tel_bytes (float_of_int t.bytes)

let evict_one t reason =
  match t.cold with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      t.entries <- t.entries - 1;
      t.bytes <- t.bytes - n.bytes;
      t.c.evicted_entries <- t.c.evicted_entries + 1;
      t.c.evicted_bytes <- t.c.evicted_bytes + n.bytes;
      Tel.Metrics.Counter.inc
        (Tel.Metrics.Counter.series tel_evictions [ reason ])

(* Insert (or refresh) [key] in the memory tier and trim to bounds. *)
let insert_locked t key value =
  (match Hashtbl.find_opt t.table key with
  | Some old ->
      unlink t old;
      Hashtbl.remove t.table key;
      t.entries <- t.entries - 1;
      t.bytes <- t.bytes - old.bytes
  | None -> ());
  let bytes = String.length (J.to_string ~minify:true value) in
  let n = { key; value; bytes; prev = None; next = None } in
  push_hot t n;
  Hashtbl.replace t.table key n;
  t.entries <- t.entries + 1;
  t.bytes <- t.bytes + bytes;
  while t.entries > t.max_entries do
    evict_one t "entries"
  done;
  (* Never evict the entry just inserted, even if it alone exceeds the
     byte bound — a cache that cannot hold its largest value would
     re-miss it forever. *)
  while t.bytes > t.max_bytes && t.entries > 1 do
    evict_one t "bytes"
  done;
  set_gauges t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Which tier answered — the journal's and the span metrics' "cache
   outcome" dimension. *)
type lookup_result = Memory of J.t | Disk of J.t | Absent

let lookup t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
          unlink t n;
          push_hot t n;
          t.c.mem_hits <- t.c.mem_hits + 1;
          count "memory" "hit";
          Memory n.value
      | None -> (
          t.c.mem_misses <- t.c.mem_misses + 1;
          count "memory" "miss";
          match t.dir with
          | None -> Absent
          | Some dir -> (
              match
                Store.read ~dir ~prefix:file_prefix ~value_member:"value" key
              with
              | Store.Hit v ->
                  t.c.disk_hits <- t.c.disk_hits + 1;
                  count "disk" "hit";
                  insert_locked t key v;
                  Disk v
              | Store.Miss ->
                  t.c.disk_misses <- t.c.disk_misses + 1;
                  count "disk" "miss";
                  Absent
              | Store.Corrupt what ->
                  t.c.disk_corrupt <- t.c.disk_corrupt + 1;
                  count "disk" "corrupt";
                  Tel.Log.warn ~src:"serve.cache"
                    ~fields:
                      [
                        ( "path",
                          J.String
                            (Store.entry_path ~dir ~prefix:file_prefix key) );
                      ]
                    (fun () ->
                      "corrupt plan-cache entry (" ^ what
                      ^ "); will recompute");
                  Absent
              | Store.Collision ->
                  count "disk" "collision";
                  Absent)))

let find t key =
  match lookup t key with Memory v | Disk v -> Some v | Absent -> None

let add t key value =
  locked t (fun () ->
      insert_locked t key value;
      match t.dir with
      | None -> ()
      | Some dir -> (
          match
            Store.write ~dir ~prefix:file_prefix ~value_member:"value" key value
          with
          | Ok _ ->
              t.c.stores <- t.c.stores + 1;
              Tel.Metrics.Counter.inc0 tel_stores
          | Error what ->
              t.c.store_failures <- t.c.store_failures + 1;
              Tel.Metrics.Counter.inc0 tel_store_failures;
              Tel.Log.warn ~src:"serve.cache"
                ~fields:[ ("dir", J.String dir) ]
                (fun () -> "plan-cache store failed (" ^ what ^ ")")))

let stats_json t =
  locked t (fun () ->
      J.Obj
        [
          ("entries", J.Int t.entries);
          ("bytes", J.Int t.bytes);
          ("max_entries", J.Int t.max_entries);
          ("max_bytes", J.Int t.max_bytes);
          ("memory_hits", J.Int t.c.mem_hits);
          ("memory_misses", J.Int t.c.mem_misses);
          ("disk_hits", J.Int t.c.disk_hits);
          ("disk_misses", J.Int t.c.disk_misses);
          ("disk_corrupt", J.Int t.c.disk_corrupt);
          ("evicted_entries", J.Int t.c.evicted_entries);
          ("evicted_bytes", J.Int t.c.evicted_bytes);
          ("stores", J.Int t.c.stores);
          ("store_failures", J.Int t.c.store_failures);
          ("persistent", J.Bool (t.dir <> None));
        ])

(* Exposed for the LRU unit tests: hot-to-cold key order. *)
let keys_hot_to_cold t =
  locked t (fun () ->
      let rec go acc = function
        | None -> List.rev acc
        | Some n -> go (n.key :: acc) n.next
      in
      go [] t.hot)

let resident_bytes t = locked t (fun () -> t.bytes)
let resident_entries t = locked t (fun () -> t.entries)
