(* Slow-request ring buffer: the daemon keeps the last [capacity]
   requests whose total service time met the [--slow-ms] threshold,
   queryable live over the wire ({"op":"slowlog"}) — the "which
   requests were slow, and why" half of the observability story, with
   per-span timings telling the why.

   Mutex-protected; recording is O(1) into a circular array and a
   query snapshots newest-first.  Entries are plain JSON so the op
   handler returns them verbatim. *)

module J = Ctam_util.Json

type t = {
  threshold_ms : float;
  capacity : int;
  ring : J.t option array;
  mutable next : int;  (** slot the next entry lands in *)
  mutable recorded : int;  (** total entries ever recorded *)
  lock : Mutex.t;
}

let default_threshold_ms = 100.
let default_capacity = 64

let create ?(threshold_ms = default_threshold_ms)
    ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Slowlog.create: capacity";
  if threshold_ms < 0. then invalid_arg "Slowlog.create: threshold_ms";
  {
    threshold_ms;
    capacity;
    ring = Array.make capacity None;
    next = 0;
    recorded = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let threshold_ms t = t.threshold_ms

(* [note t ctx ~total_seconds] records the finished request when it
   crossed the threshold. *)
let note t (ctx : Reqctx.t) ~total_seconds =
  let ms = total_seconds *. 1000. in
  if ms >= t.threshold_ms then
    let entry =
      J.Obj
        ([
           ("ts", J.Float ctx.Reqctx.started);
           ("request_id", J.Int ctx.Reqctx.id);
           ("conn", J.Int ctx.Reqctx.conn);
           ("op", J.String ctx.Reqctx.op);
           ("ms", J.Float ms);
           ("cache", J.String (Reqctx.cache_id ctx.Reqctx.cache));
           ("status", J.String ctx.Reqctx.status);
         ]
        @ (match ctx.Reqctx.error_code with
          | None -> []
          | Some code -> [ ("error_code", J.String code) ])
        @ [ ("spans_us", Reqctx.spans_us_json ctx) ])
    in
    locked t (fun () ->
        t.ring.(t.next) <- Some entry;
        t.next <- (t.next + 1) mod t.capacity;
        t.recorded <- t.recorded + 1)

(* Newest-first, at most [limit] (default: everything retained). *)
let entries ?limit t =
  locked t (fun () ->
      let out = ref [] in
      for i = 0 to t.capacity - 1 do
        (* walk backwards from the most recent slot *)
        let slot = (t.next - 1 - i + (2 * t.capacity)) mod t.capacity in
        match t.ring.(slot) with
        | Some e -> out := e :: !out
        | None -> ()
      done;
      let newest_first = List.rev !out in
      match limit with
      | None -> newest_first
      | Some n -> List.filteri (fun i _ -> i < max 0 n) newest_first)

let length t =
  locked t (fun () ->
      Array.fold_left
        (fun a -> function Some _ -> a + 1 | None -> a)
        0 t.ring)

let recorded t = locked t (fun () -> t.recorded)

let to_json ?limit t =
  J.Obj
    [
      ("threshold_ms", J.Float t.threshold_ms);
      ("capacity", J.Int t.capacity);
      ("recorded", J.Int (recorded t));
      ("entries", J.List (entries ?limit t));
    ]
