(** Building the iteration-group dependence graph of a grouping.

    If the conservative nest-level tests prove the nest fully parallel,
    the graph is empty; otherwise dependences are found exactly by
    enumerating the accesses of the nest in sequential order. *)

open Ctam_blocks

(** [compute grouping] returns the group DG (edge [a -> b] iff some
    iteration of group [b] depends on an iteration of group [a], i.e.
    they touch a common element, at least one access is a write, and
    [a]'s access comes first in sequential order). *)
val compute : Tags.grouping -> Dep_graph.t

(** [merge_cycles grouping dg] merges every dependence cycle into a
    single group (paper §3.5.2), returning the condensed group array
    (ids renumbered densely) and the acyclic DG over them.  Groups stay
    ordered by their first iteration. *)
val merge_cycles :
  Tags.grouping -> Dep_graph.t -> Iter_group.t array * Dep_graph.t

(** Fraction of parallel-loop groups with any dependence (diagnostic;
    the paper reports 14% of parallel loops carry dependences). *)
val dependent_fraction : Dep_graph.t -> float
