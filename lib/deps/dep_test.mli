(** Loop-carried data-dependence tests on affine references.

    Conservative tests (GCD and Banerjee-style bound tests) answer
    "definitely independent" or "maybe dependent"; an exact
    enumeration-based test decides small domains precisely.  The
    distribution scheme only needs a nest-level verdict (fully parallel
    or not); the scheduler additionally needs the group-level graph
    (see {!Group_deps}). *)

open Ctam_poly
open Ctam_ir

type verdict = Independent | MaybeDependent

(** [pair_test dom r1 r2] tests whether two references to the same
    array can touch the same element from two *different* iterations of
    [dom].  Returns [Independent] when provably impossible.  References
    to different arrays are trivially [Independent]. *)
val pair_test : Domain.t -> Reference.t -> Reference.t -> verdict

(** GCD test on one subscript dimension pair: can
    [f(I) = g(I')] have integer solutions at all? *)
val gcd_test : Affine.t -> Affine.t -> verdict

(** Banerjee-style bound test: evaluates min/max of [f(I) - g(I')] over
    the domain's bounding box; [Independent] if 0 is excluded in some
    dimension. *)
val banerjee_test : Domain.t -> Affine.t -> Affine.t -> verdict

(** Omega-style leveled emptiness test: encodes both iteration copies,
    the subscript equalities and a lexicographic-difference level into
    linear systems and proves emptiness by Fourier-Motzkin
    ({!Ctam_poly.Fm}).  [Independent] is exact (no integer solution);
    [MaybeDependent] is conservative. *)
val omega_pair_test : Domain.t -> Reference.t -> Reference.t -> verdict

(** Conservative nest-level verdict: [false] means provably no
    loop-carried dependence (safe to run fully parallel). *)
val nest_may_carry_deps : Nest.t -> bool

(** Exact nest-level verdict by enumeration — O(accesses).
    Use for tests and small nests. *)
val nest_carries_deps_exact : Nest.t -> Layout.t -> bool
