type t = {
  n : int;
  succs : (int, unit) Hashtbl.t array;
  preds : (int, unit) Hashtbl.t array;
}

let create n =
  {
    n;
    succs = Array.init n (fun _ -> Hashtbl.create 4);
    preds = Array.init n (fun _ -> Hashtbl.create 4);
  }

let num_nodes t = t.n

let add_edge t a b =
  if a < 0 || a >= t.n || b < 0 || b >= t.n then
    invalid_arg "Dep_graph.add_edge";
  Hashtbl.replace t.succs.(a) b ();
  Hashtbl.replace t.preds.(b) a ()

let of_edges n es =
  let t = create n in
  List.iter (fun (a, b) -> add_edge t a b) es;
  t

let has_edge t a b = Hashtbl.mem t.succs.(a) b
let keys h = Hashtbl.fold (fun k () acc -> k :: acc) h []
let preds t v = List.sort compare (keys t.preds.(v))
let succs t v = List.sort compare (keys t.succs.(v))

let num_edges t =
  Array.fold_left (fun acc h -> acc + Hashtbl.length h) 0 t.succs

let is_empty t = num_edges t = 0

let edges t =
  let acc = ref [] in
  Array.iteri
    (fun a h -> Hashtbl.iter (fun b () -> acc := (a, b) :: !acc) h)
    t.succs;
  List.sort compare !acc

(* Iterative Tarjan SCC (explicit stack to survive big graphs). *)
let scc t =
  let n = t.n in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let comp = Array.make n (-1) in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succs t v);
    if lowlink.(v) = index.(v) then begin
      let rec pop () =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp.(w) <- !next_comp;
            if w <> v then pop ()
        | [] -> assert false
      in
      pop ();
      incr next_comp
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (comp, !next_comp)

let condense t =
  let comp, k = scc t in
  let dag = create k in
  List.iter
    (fun (a, b) ->
      if comp.(a) <> comp.(b) then add_edge dag comp.(a) comp.(b))
    (edges t);
  (comp, dag)

let topo_order t =
  let indeg = Array.make t.n 0 in
  List.iter (fun (_, b) -> indeg.(b) <- indeg.(b) + 1) (edges t);
  let queue = Queue.create () in
  for v = 0 to t.n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr seen;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      (succs t v)
  done;
  if !seen <> t.n then invalid_arg "Dep_graph.topo_order: graph has a cycle";
  List.rev !order

let pp ppf t =
  Fmt.pf ppf "dep_graph(%d nodes, %d edges)" t.n (num_edges t)
