open Ctam_poly
open Ctam_ir
open Ctam_blocks

let compute (grouping : Tags.grouping) =
  let nest = grouping.Tags.nest in
  let n = Array.length grouping.Tags.groups in
  let dg = Dep_graph.create n in
  if not (Dep_test.nest_may_carry_deps nest) then dg
  else begin
    let layout = Block_map.layout grouping.Tags.block_map in
    let enc = grouping.Tags.encoder in
    (* iteration key -> group id *)
    let group_of = Hashtbl.create 1024 in
    Array.iter
      (fun g ->
        Array.iter
          (fun key -> Hashtbl.replace group_of key g.Iter_group.id)
          (Iterset.keys g.Iter_group.iters))
      grouping.Tags.groups;
    let refs = Array.of_list (Nest.refs nest) in
    (* addr -> accesses seen so far as (group, is_write), deduplicated *)
    let table : (int, (int * bool) list ref) Hashtbl.t =
      Hashtbl.create 4096
    in
    Domain.iter
      (fun iv ->
        let key = Iterset.encode enc iv in
        let g = Hashtbl.find group_of key in
        Array.iter
          (fun r ->
            let addr = Layout.ref_addr layout r iv in
            let w = Reference.is_write r in
            let cell =
              match Hashtbl.find_opt table addr with
              | Some c -> c
              | None ->
                  let c = ref [] in
                  Hashtbl.add table addr c;
                  c
            in
            if not (List.mem (g, w) !cell) then begin
              List.iter
                (fun (g', w') ->
                  if g' <> g && (w || w') then Dep_graph.add_edge dg g' g)
                !cell;
              cell := (g, w) :: !cell
            end)
          refs)
      nest.Nest.domain;
    dg
  end

let min_key iters =
  let ks = Iterset.keys iters in
  if Array.length ks = 0 then max_int else ks.(0)

let merge_cycles (grouping : Tags.grouping) dg =
  let comp, cond_dag = Dep_graph.condense dg in
  let k = Dep_graph.num_nodes cond_dag in
  let groups = grouping.Tags.groups in
  (* Union members of each component. *)
  let members = Array.make k [] in
  Array.iteri (fun gi g -> members.(comp.(gi)) <- g :: members.(comp.(gi))) groups;
  let merged =
    Array.map
      (fun gs ->
        match gs with
        | [] -> assert false
        | g0 :: rest ->
            List.fold_left
              (fun acc g ->
                {
                  acc with
                  Iter_group.tag = Bitset.union acc.Iter_group.tag g.Iter_group.tag;
                  iters = Iterset.union acc.Iter_group.iters g.Iter_group.iters;
                })
              g0 rest)
      members
  in
  (* Renumber components by their first iteration so group order stays
     deterministic and sequential-ish. *)
  let order = Array.init k Fun.id in
  Array.sort
    (fun a b ->
      compare (min_key merged.(a).Iter_group.iters)
        (min_key merged.(b).Iter_group.iters))
    order;
  let new_id = Array.make k 0 in
  Array.iteri (fun pos old -> new_id.(old) <- pos) order;
  let final =
    Array.init k (fun pos ->
        { (merged.(order.(pos))) with Iter_group.id = pos })
  in
  let dag = Dep_graph.create k in
  List.iter
    (fun (a, b) -> Dep_graph.add_edge dag new_id.(a) new_id.(b))
    (Dep_graph.edges cond_dag);
  (final, dag)

let dependent_fraction dg =
  let n = Dep_graph.num_nodes dg in
  if n = 0 then 0.
  else begin
    let dep = ref 0 in
    for v = 0 to n - 1 do
      if Dep_graph.preds dg v <> [] || Dep_graph.succs dg v <> [] then incr dep
    done;
    float_of_int !dep /. float_of_int n
  end
