open Ctam_poly
open Ctam_ir

type verdict = Independent | MaybeDependent

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* f(I) = g(I') over disjoint variable vectors has an integer solution
   iff gcd of all coefficients divides the constant difference. *)
let gcd_test f g =
  let coeffs =
    Array.to_list (Array.init (Affine.depth f) (Affine.coeff f))
    @ Array.to_list (Array.init (Affine.depth g) (Affine.coeff g))
  in
  let d = List.fold_left (fun acc c -> gcd acc (abs c)) 0 coeffs in
  let diff = (Affine.eval g (Array.make (Affine.depth g) 0))
             - (Affine.eval f (Array.make (Affine.depth f) 0)) in
  if d = 0 then if diff = 0 then MaybeDependent else Independent
  else if diff mod d = 0 then MaybeDependent
  else Independent

(* Conservative per-dimension [lo, hi] box of a domain, by interval
   evaluation of the affine bounds outermost-first. *)
let bounding_box dom =
  let d = Domain.depth dom in
  let lo = Array.make d 0 and hi = Array.make d 0 in
  let bounds = Domain.bounds dom in
  (* min/max of an affine expr when var j ranges over [lo.(j), hi.(j)]
     (only dims < upto are meaningful). *)
  let eval_min e upto =
    let acc = ref (Affine.eval e (Array.make d 0)) in
    for j = 0 to upto - 1 do
      let c = Affine.coeff e j in
      acc := !acc + (if c > 0 then c * lo.(j) else c * hi.(j))
    done;
    !acc
  in
  let eval_max e upto =
    let acc = ref (Affine.eval e (Array.make d 0)) in
    for j = 0 to upto - 1 do
      let c = Affine.coeff e j in
      acc := !acc + (if c > 0 then c * hi.(j) else c * lo.(j))
    done;
    !acc
  in
  Array.iteri
    (fun j (l, h) ->
      lo.(j) <- eval_min l j;
      hi.(j) <- eval_max h j)
    bounds;
  (lo, hi)

let affine_range (lo, hi) e =
  let d = Affine.depth e in
  let zero = Array.make d 0 in
  let mn = ref (Affine.eval e zero) and mx = ref (Affine.eval e zero) in
  for j = 0 to d - 1 do
    let c = Affine.coeff e j in
    if c > 0 then begin
      mn := !mn + (c * lo.(j));
      mx := !mx + (c * hi.(j))
    end
    else if c < 0 then begin
      mn := !mn + (c * hi.(j));
      mx := !mx + (c * lo.(j))
    end
  done;
  (!mn, !mx)

let banerjee_test dom f g =
  let box = bounding_box dom in
  let fmin, fmax = affine_range box f in
  let gmin, gmax = affine_range box g in
  (* f(I) - g(I') ranges over [fmin - gmax, fmax - gmin]. *)
  if fmin - gmax > 0 || fmax - gmin < 0 then Independent else MaybeDependent

(* Is the subscript map injective by the simple structural rule: every
   loop variable with a nonzero coefficient appears in exactly one
   subscript dimension, and within that dimension it is the only
   variable or combines with others injectively (we only accept the
   single-variable-per-dimension case). *)
let injective_map subs =
  let d = Affine.depth subs.(0) in
  let used = Array.make d false in
  let ok = ref true in
  Array.iter
    (fun s ->
      let vars =
        List.filter (fun j -> Affine.coeff s j <> 0) (List.init d Fun.id)
      in
      match vars with
      | [] -> ()
      | [ j ] ->
          if used.(j) then ok := false
          else if abs (Affine.coeff s j) <> 1 then
            (* strided but still injective in this dim *)
            used.(j) <- true
          else used.(j) <- true
      | _ :: _ :: _ -> ok := false)
    subs;
  (* Every variable that influences the address must be covered. *)
  !ok

(* Omega-style exact-direction test: encode both iteration copies I
   and I' as one linear system (bounds + guards for each copy,
   subscript equalities, and a lexicographic-difference constraint at
   one level), and let Fourier-Motzkin prove emptiness.  A dependence
   between *different* iterations exists only if one of the 2*d leveled
   systems is feasible. *)
let omega_pair_test dom r1 r2 =
  let d = Domain.depth dom in
  let total = 2 * d in
  let row_of ~offset e =
    let coeffs = Array.make total 0 in
    for j = 0 to d - 1 do
      coeffs.(offset + j) <- Affine.coeff e j
    done;
    (coeffs, Affine.eval e (Array.make d 0))
  in
  let add_domain sys ~offset =
    let sys = ref sys in
    Array.iteri
      (fun j (lo, hi) ->
        (* x_j - lo >= 0 *)
        let lo_coeffs, lo_k = row_of ~offset lo in
        let c1 = Array.copy lo_coeffs in
        Array.iteri (fun i c -> c1.(i) <- -c) lo_coeffs;
        c1.(offset + j) <- c1.(offset + j) + 1;
        sys := Fm.add_ge !sys c1 (-lo_k);
        (* hi - x_j >= 0 *)
        let hi_coeffs, hi_k = row_of ~offset hi in
        let c2 = Array.copy hi_coeffs in
        c2.(offset + j) <- c2.(offset + j) - 1;
        sys := Fm.add_ge !sys c2 hi_k)
      (Domain.bounds dom);
    List.fold_left
      (fun sys g ->
        match g with
        | Constrnt.Ge e ->
            let coeffs, k = row_of ~offset e in
            Fm.add_ge sys coeffs k
        | Constrnt.Eq e ->
            let coeffs, k = row_of ~offset e in
            Fm.add_eq sys coeffs k)
      !sys (Domain.guards dom)
  in
  let base =
    let sys = Fm.make ~num_vars:total in
    let sys = add_domain sys ~offset:0 in
    let sys = add_domain sys ~offset:d in
    (* Subscript equalities f_k(I) = g_k(I'). *)
    let subs1 = r1.Reference.subs and subs2 = r2.Reference.subs in
    let sys = ref sys in
    Array.iteri
      (fun k s1 ->
        let c1, k1 = row_of ~offset:0 s1 in
        let c2, k2 = row_of ~offset:d subs2.(k) in
        let coeffs = Array.init total (fun i -> c1.(i) - c2.(i)) in
        sys := Fm.add_eq !sys coeffs (k1 - k2))
      subs1;
    !sys
  in
  (* Leveled lexicographic difference: prefix equal, strict at level l,
     in either direction. *)
  let feasible_at level sign =
    let sys = ref base in
    for j = 0 to level - 1 do
      let coeffs =
        Array.init total (fun i ->
            (if i = j then 1 else 0) - if i = d + j then 1 else 0)
      in
      sys := Fm.add_eq !sys coeffs 0
    done;
    (* sign = +1: I_l + 1 <= I'_l, i.e. I'_l - I_l - 1 >= 0. *)
    let coeffs = Array.make total 0 in
    coeffs.(level) <- -sign;
    coeffs.(d + level) <- sign;
    sys := Fm.add_ge !sys coeffs (-1);
    match Fm.feasibility !sys with
    | Fm.Unsat -> false
    | Fm.Sat -> true
    | Fm.MaybeSat ->
        (* Elimination hit the growth cap: nothing proven, so answer
           "maybe dependent" — conservative, matching the old capped
           behaviour, but no longer silent. *)
        Ctam_telemetry.Log.debug ~src:"dep_test" (fun () ->
            Printf.sprintf "FM cap exceeded at level %d; assuming dependence"
              level);
        true
  in
  let any =
    List.exists
      (fun l -> feasible_at l 1 || feasible_at l (-1))
      (List.init d Fun.id)
  in
  if any then MaybeDependent else Independent

let pair_test dom r1 r2 =
  if r1.Reference.array_name <> r2.Reference.array_name then Independent
  else begin
    let subs1 = r1.Reference.subs and subs2 = r2.Reference.subs in
    let dims = Array.length subs1 in
    let any_independent = ref false in
    for k = 0 to dims - 1 do
      if gcd_test subs1.(k) subs2.(k) = Independent then
        any_independent := true;
      if banerjee_test dom subs1.(k) subs2.(k) = Independent then
        any_independent := true
    done;
    if !any_independent then Independent
    else if
      Array.for_all2 Affine.equal subs1 subs2 && injective_map subs1
      (* identical injective subscripts: only I = I' collides, which is
         not a loop-carried dependence *)
    then Independent
    else
      (* Sharpest (still conservative) decision: the leveled
         Fourier-Motzkin emptiness test. *)
      omega_pair_test dom r1 r2
  end

let nest_may_carry_deps nest =
  let refs = Nest.refs nest in
  let writes = List.filter Reference.is_write refs in
  List.exists
    (fun w ->
      List.exists
        (fun r -> pair_test nest.Nest.domain w r = MaybeDependent)
        refs)
    writes

let nest_carries_deps_exact nest layout =
  let refs = Array.of_list (Nest.refs nest) in
  let enc = Iterset.encoder_of_domain nest.Nest.domain in
  (* addr -> (first iteration key, any write seen) *)
  let table : (int, int * bool) Hashtbl.t = Hashtbl.create 4096 in
  let found = ref false in
  (try
     Domain.iter
       (fun iv ->
         let key = Iterset.encode enc iv in
         Array.iter
           (fun r ->
             let addr = Layout.ref_addr layout r iv in
             let w = Reference.is_write r in
             match Hashtbl.find_opt table addr with
             | None -> Hashtbl.replace table addr (key, w)
             | Some (k0, w0) ->
                 if k0 <> key && (w || w0) then begin
                   found := true;
                   raise Exit
                 end
                 else if w && not w0 then Hashtbl.replace table addr (k0, true))
           refs)
       nest.Nest.domain
   with Exit -> ());
  !found
