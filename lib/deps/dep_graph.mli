(** Iteration-group dependence graphs (the paper's DG, §3.5.2).

    Nodes are iteration-group ids [0..n-1]; an edge [(a, b)] means
    group [b] depends on group [a] (so [a] must execute no later than
    the round in which [b] runs). *)

type t

val create : int -> t
val of_edges : int -> (int * int) list -> t
val num_nodes : t -> int
val add_edge : t -> int -> int -> unit
val has_edge : t -> int -> int -> bool

(** Groups that [v] depends on. *)
val preds : t -> int -> int list

(** Groups that depend on [v]. *)
val succs : t -> int -> int list

val num_edges : t -> int
val is_empty : t -> bool
val edges : t -> (int * int) list

(** Strongly connected components (Tarjan).  Returns [comp] mapping
    each node to a component id in [0..k-1], and [k].  Component ids
    are in reverse topological order of the condensation (a component
    never depends on a higher-numbered one). *)
val scc : t -> int array * int

(** [condense t] merges every cycle: returns [(comp, dag)] where [dag]
    is the acyclic graph over component ids (no self-edges). *)
val condense : t -> int array * t

(** Topological order of an acyclic graph.
    @raise Invalid_argument if the graph has a cycle. *)
val topo_order : t -> int list

val pp : t Fmt.t
