(** Line-oriented trace input.

    A {!source} can be reopened any number of times — the trace
    cursors in {!Ingest} rewind by reopening — and gzip-compressed
    files are detected by their magic bytes (not the extension) and
    decompressed through the system [gzip], so callers never care
    whether a trace is compressed. *)

type source =
  | File of string  (** path to a plain or gzip-compressed trace *)
  | Text of string  (** in-memory trace (the daemon's [trace] op) *)

type chan

(** Open a fresh read handle on the source.
    @raise Sys_error when a [File] does not exist. *)
val open_source : source -> chan

(** Next line without its terminator ([\r\n] is handled); [None] at end
    of input. *)
val next_line : chan -> string option

val close : chan -> unit

(** [fold src ~init ~f] folds [f acc lnum line] over all lines
    (1-based line numbers), opening and closing its own handle. *)
val fold : source -> init:'a -> f:('a -> int -> string -> 'a) -> 'a
