(** Turning external access traces into engine streams.

    A trace is read in two passes: a counting pass ({!scan}) sizes the
    per-core streams (the {!Ctam_cachesim.Engine.cursor} contract
    needs exact lengths) and finds the address range for rebasing; the
    cursors then stream the accesses through a fixed-size chunk
    buffer, so a multi-gigabyte trace never materializes.  Every
    per-core cursor reads the whole input and keeps only its own
    accesses — memory-bounded, and the engine may interleave pulls
    across cores in any order. *)

exception Error of string
(** Malformed input (with a line position) or invalid options. *)

type interleave =
  | Round_robin
      (** deal records across the [cores] in arrival order; core tags
          are ignored *)
  | Tagged
      (** each record goes to its [CORE:] tag (untagged records to
          core 0); strict mode rejects out-of-range tags and
          per-core backwards [@TIME] stamps *)

val interleave_to_string : interleave -> string

type options = {
  cores : int;  (** number of per-core streams to produce *)
  instr : bool;  (** include [I] instruction fetches (default: drop) *)
  lossy : bool;
      (** count malformed lines instead of failing (strict default) *)
  fold_bits : int option;
      (** fold addresses into a [2^bits]-byte window (after rebasing) *)
  rebase : bool;  (** subtract the smallest address in the trace *)
  split : int option;
      (** emit one access per [split]-byte line an access's
          [addr, addr+size) span touches (default: base address only) *)
  interleave : interleave;
}

(** One core, strict, no instruction fetches, no address transforms,
    round-robin. *)
val default : options

type scan = {
  scanned_lines : int;  (** input lines read (including noise) *)
  records : int;  (** well-formed records *)
  malformed : int;  (** lines dropped in lossy mode *)
  per_core : int array;  (** encoded accesses each core will stream *)
  min_addr : int;  (** smallest raw byte address (0 on an empty trace) *)
  max_addr : int;  (** largest raw byte address (-1 on an empty trace) *)
}

(** The counting pass.  @raise Error in strict mode on malformed
    lines, and on invalid options in every mode. *)
val scan : options -> Reader.source -> scan

(** Per-core generator-backed streams.  Pass [?scan] to reuse a
    counting pass; otherwise one is run.  The cursors support the
    engine's [skip_to_sample] fast path, so set-sampled runs compose.
    Strict-mode parse errors surface as [Error] from inside the
    engine's pulls. *)
val streams :
  ?scan:scan -> options -> Reader.source -> Ctam_cachesim.Engine.stream array

(** Materialized per-core encoded access arrays. *)
val load : ?scan:scan -> options -> Reader.source -> int array array

(** [run ~machine opts src] replays the trace on a fresh hierarchy of
    [machine] as one phase, idle machine cores running empty streams.
    [sample_sets] is passed through to {!Ctam_cachesim.Hierarchy.create}.
    @raise Error when the trace uses more cores than the machine has. *)
val run :
  ?config:Ctam_cachesim.Engine.config ->
  ?sample_sets:int ->
  machine:Ctam_arch.Topology.t ->
  options ->
  Reader.source ->
  Ctam_cachesim.Stats.t * scan

(** The [ctam-simtrace-v1] report: trace metadata, per-level
    replacement policies, and the run statistics. *)
val report_json :
  machine:Ctam_arch.Topology.t ->
  options ->
  scan ->
  Ctam_cachesim.Stats.t ->
  Ctam_util.Json.t

(** Supported trace notations, [(name, description)] — surfaced by
    [ctamap --help] and the daemon's [version] op. *)
val trace_formats : (string * string) list
