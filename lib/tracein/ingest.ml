module Engine = Ctam_cachesim.Engine
module Hierarchy = Ctam_cachesim.Hierarchy
module Stats = Ctam_cachesim.Stats
module Topology = Ctam_arch.Topology
module Policy = Ctam_arch.Policy
module Json = Ctam_util.Json

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type interleave = Round_robin | Tagged

let interleave_to_string = function
  | Round_robin -> "round-robin"
  | Tagged -> "tagged"

type options = {
  cores : int;
  instr : bool;
  lossy : bool;
  fold_bits : int option;
  rebase : bool;
  split : int option;
  interleave : interleave;
}

let default =
  {
    cores = 1;
    instr = false;
    lossy = false;
    fold_bits = None;
    rebase = false;
    split = None;
    interleave = Round_robin;
  }

let validate opts =
  if opts.cores < 1 then fail "cores must be >= 1 (got %d)" opts.cores;
  (match opts.fold_bits with
  | Some b when b < 1 || b > 60 -> fail "fold bits must be in 1..60 (got %d)" b
  | _ -> ());
  match opts.split with
  | Some l when l < 1 -> fail "split granularity must be >= 1 (got %d)" l
  | _ -> ()

(* Shared per-pass parse state: the counting pass and every per-core
   cursor each run their own copy over the whole input, so round-robin
   dealing and lossy counting come out identical in both. *)
type line_state = {
  mutable rr : int;
  mutable lines : int;
  mutable records : int;
  mutable malformed : int;
  last_time : int array;  (* per core; -1 = none seen *)
}

let fresh_state opts =
  {
    rr = 0;
    lines = 0;
    records = 0;
    malformed = 0;
    last_time = Array.make opts.cores (-1);
  }

(* One line -> the core it lands on plus its (addr, write) accesses,
   in issue order; [None] for noise, dropped instruction fetches, and
   (lossy mode) malformed lines. *)
let process opts st ~check_times lnum line : (int * (int * bool) list) option =
  st.lines <- st.lines + 1;
  match Lackey.parse_line line with
  | Error msg ->
      if opts.lossy then begin
        st.malformed <- st.malformed + 1;
        None
      end
      else fail "line %d: %s" lnum msg
  | Ok None -> None
  | Ok (Some r) ->
      st.records <- st.records + 1;
      if r.kind = Lackey.Instr && not opts.instr then None
      else begin
        let core =
          match opts.interleave with
          | Round_robin ->
              let c = st.rr mod opts.cores in
              st.rr <- st.rr + 1;
              c
          | Tagged -> (
              match r.core with
              | None -> 0
              | Some c when c < opts.cores -> c
              | Some c ->
                  if opts.lossy then -1
                  else
                    fail "line %d: core tag %d out of range (cores = %d)" lnum
                      c opts.cores)
        in
        if core < 0 then begin
          st.malformed <- st.malformed + 1;
          None
        end
        else begin
          (if check_times && opts.interleave = Tagged then
             match r.time with
             | Some t ->
                 if t < st.last_time.(core) && not opts.lossy then
                   fail "line %d: timestamp %d goes backwards for core %d" lnum
                     t core;
                 st.last_time.(core) <- max t st.last_time.(core)
             | None -> ());
          let base =
            match r.kind with
            | Lackey.Instr | Lackey.Load -> [ (r.addr, false) ]
            | Lackey.Store -> [ (r.addr, true) ]
            | Lackey.Modify -> [ (r.addr, false); (r.addr, true) ]
          in
          let accesses =
            match opts.split with
            | None -> base
            | Some l ->
                (* One access per cache line the [addr, addr+size)
                   span touches. *)
                List.concat_map
                  (fun (a, w) ->
                    let first = a / l and last = (a + r.size - 1) / l in
                    List.init
                      (last - first + 1)
                      (fun i -> ((if i = 0 then a else (first + i) * l), w)))
                  base
          in
          Some (core, accesses)
        end
      end

type scan = {
  scanned_lines : int;
  records : int;
  malformed : int;
  per_core : int array;
  min_addr : int;
  max_addr : int;  (* -1 when the trace has no accesses *)
}

let scan opts src =
  validate opts;
  let st = fresh_state opts in
  let per_core = Array.make opts.cores 0 in
  let min_a = ref max_int and max_a = ref (-1) in
  Reader.fold src ~init:() ~f:(fun () lnum line ->
      match process opts st ~check_times:true lnum line with
      | None -> ()
      | Some (core, accs) ->
          per_core.(core) <- per_core.(core) + List.length accs;
          List.iter
            (fun (a, _) ->
              if a < !min_a then min_a := a;
              if a > !max_a then max_a := a)
            accs);
  {
    scanned_lines = st.lines;
    records = st.records;
    malformed = st.malformed;
    per_core;
    min_addr = (if !min_a = max_int then 0 else !min_a);
    max_addr = !max_a;
  }

(* --- per-core cursors -------------------------------------------------- *)

let chunk_size = 4096

type cursor_state = {
  mutable chan : Reader.chan option;
  mutable lnum : int;
  mutable st : line_state;
  buf : int array;
  mutable len : int;
  mutable pos : int;
  (* Accesses of the line that overflowed the chunk, issue order. *)
  mutable spill : int list;
  mutable eof : bool;
}

let make_cursor opts src ~core ~length ~base ~mask : Engine.cursor =
  let cs =
    {
      chan = None;
      lnum = 0;
      st = fresh_state opts;
      buf = Array.make chunk_size 0;
      len = 0;
      pos = 0;
      spill = [];
      eof = false;
    }
  in
  let encode (addr, write) = Engine.encode_access ~addr:((addr - base) land mask) ~write in
  let push e =
    if cs.len < chunk_size then begin
      cs.buf.(cs.len) <- e;
      cs.len <- cs.len + 1
    end
    else cs.spill <- e :: cs.spill
  in
  let close_chan () =
    match cs.chan with
    | Some c ->
        Reader.close c;
        cs.chan <- None
    | None -> ()
  in
  (* Refill the chunk buffer; false at end of stream. *)
  let refill () =
    if cs.eof && cs.spill = [] then false
    else begin
      cs.len <- 0;
      cs.pos <- 0;
      List.iter push (List.rev cs.spill);
      cs.spill <- [];
      if not cs.eof then begin
        let chan =
          match cs.chan with
          | Some c -> c
          | None ->
              let c = Reader.open_source src in
              cs.chan <- Some c;
              c
        in
        let continue = ref true in
        while !continue && cs.len < chunk_size do
          match Reader.next_line chan with
          | None ->
              cs.eof <- true;
              close_chan ();
              continue := false
          | Some line -> (
              cs.lnum <- cs.lnum + 1;
              match process opts cs.st ~check_times:false cs.lnum line with
              | None -> ()
              | Some (c, accs) ->
                  if c = core then List.iter (fun a -> push (encode a)) accs)
        done
      end;
      cs.len > 0
    end
  in
  let rec pull () =
    if cs.pos < cs.len then begin
      let e = cs.buf.(cs.pos) in
      cs.pos <- cs.pos + 1;
      e
    end
    else if refill () then pull ()
    else fail "trace cursor pulled past end of stream (core %d)" core
  in
  let reset () =
    close_chan ();
    cs.lnum <- 0;
    cs.st <- fresh_state opts;
    cs.len <- 0;
    cs.pos <- 0;
    cs.spill <- [];
    cs.eof <- false
  in
  let skip_to_sample ~shift ~mask:smask ~skipped =
    let rec go () =
      let i = ref cs.pos in
      while !i < cs.len && (cs.buf.(!i) lsr shift) land smask <> 0 do
        incr i
      done;
      skipped := !skipped + (!i - cs.pos);
      if !i < cs.len then begin
        cs.pos <- !i + 1;
        cs.buf.(!i)
      end
      else begin
        cs.pos <- cs.len;
        if refill () then go () else -1
      end
    in
    go ()
  in
  { Engine.length; pull; reset; skip_to_sample = Some skip_to_sample }

let streams ?scan:sc opts src =
  validate opts;
  let sc = match sc with Some s -> s | None -> scan opts src in
  let base = if opts.rebase then sc.min_addr else 0 in
  let mask =
    match opts.fold_bits with Some b -> (1 lsl b) - 1 | None -> max_int
  in
  Array.init opts.cores (fun core ->
      Engine.Gen
        (make_cursor opts src ~core ~length:sc.per_core.(core) ~base ~mask))

let load ?scan opts src = Array.map Engine.force_stream (streams ?scan opts src)

(* --- running a trace on a machine -------------------------------------- *)

let run ?(config = Engine.default_config) ?(sample_sets = 1) ~machine opts src
    =
  validate opts;
  let n = machine.Topology.num_cores in
  if opts.cores > n then
    fail "trace interleaved over %d cores but machine %s has only %d"
      opts.cores machine.Topology.name n;
  let sc = scan opts src in
  let strs = streams ~scan:sc opts src in
  (* Idle cores of the machine run empty streams. *)
  let padded =
    Array.init n (fun i ->
        if i < Array.length strs then strs.(i) else Engine.dense [||])
  in
  let h = Hierarchy.create ~sample_sets machine in
  let stats = Engine.run_streams ~config h [ padded ] in
  (stats, sc)

let report_json ~machine opts sc stats =
  let opt_int = function Some v -> Json.Int v | None -> Json.Null in
  Json.Obj
    [
      ("schema", Json.String "ctam-simtrace-v1");
      ("machine", Json.String machine.Topology.name);
      ("cores", Json.Int opts.cores);
      ("interleave", Json.String (interleave_to_string opts.interleave));
      ("instr", Json.Bool opts.instr);
      ("lossy", Json.Bool opts.lossy);
      ("fold_bits", opt_int opts.fold_bits);
      ("rebase", Json.Bool opts.rebase);
      ("split", opt_int opts.split);
      ( "policies",
        Json.List
          (List.map
             (fun (p : Topology.cache_params) ->
               Json.Obj
                 [
                   ("cache", Json.String p.cache_name);
                   ("level", Json.Int p.level);
                   ("policy", Json.String (Policy.to_string p.policy));
                 ])
             (Topology.caches machine)) );
      ( "trace",
        Json.Obj
          [
            ("lines", Json.Int sc.scanned_lines);
            ("records", Json.Int sc.records);
            ("malformed", Json.Int sc.malformed);
            ("min_addr", Json.Int sc.min_addr);
            ("max_addr", Json.Int sc.max_addr);
            ( "per_core",
              Json.List
                (Array.to_list (Array.map (fun n -> Json.Int n) sc.per_core))
            );
          ] );
      ("stats", Stats.to_json stats);
    ]

let trace_formats =
  [
    ("lackey", "Valgrind Lackey: I/L/S/M ADDR,SIZE (bare hex or 0x)");
    ("bare", "R 0xADDR / W 0xADDR one access per line");
    ("tags", "optional CORE: prefix and @TIME suffix on any record");
  ]
