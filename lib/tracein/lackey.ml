type kind = Instr | Load | Store | Modify

type record = {
  kind : kind;
  addr : int;
  size : int;
  core : int option;
  time : int option;
}

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* Real Lackey output interleaves the trace with Valgrind's own
   chatter ([==pid==] and [--pid--] lines); those and [#] comments are
   noise in every mode, not malformed records. *)
let is_noise line =
  String.length line = 0
  || line.[0] = '#'
  || (String.length line >= 2 && line.[0] = '=' && line.[1] = '=')
  || (String.length line >= 2 && line.[0] = '-' && line.[1] = '-')

(* Lackey prints bare hex; the R/W form conventionally carries 0x. *)
let hex_addr s =
  let body =
    if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      String.sub s 2 (String.length s - 2)
    else s
  in
  if body = "" then None
  else
    match int_of_string_opt ("0x" ^ body) with
    | Some v when v >= 0 -> Some v
    | _ -> None

let kind_of_token = function
  | "I" -> Instr
  | "L" | "R" -> Load
  | "S" | "W" -> Store
  | "M" -> Modify
  | t -> bad "unknown record kind '%s'" t

let split_tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_line line : (record option, string) result =
  let line = String.trim line in
  if is_noise line then Ok None
  else
    try
      let toks = split_tokens line in
      (* Optional multi-core tag: a leading "N:". *)
      let core, toks =
        match toks with
        | t :: rest when String.length t >= 2 && t.[String.length t - 1] = ':'
          -> (
            match int_of_string_opt (String.sub t 0 (String.length t - 1)) with
            | Some c when c >= 0 -> (Some c, rest)
            | _ -> (None, toks))
        | _ -> (None, toks)
      in
      (* Optional trailing timestamp: "@T". *)
      let time, toks =
        match List.rev toks with
        | t :: rest when String.length t >= 1 && t.[0] = '@' -> (
            match int_of_string_opt (String.sub t 1 (String.length t - 1)) with
            | Some v when v >= 0 -> (Some v, List.rev rest)
            | _ -> bad "bad timestamp '%s'" t)
        | _ -> (None, toks)
      in
      match toks with
      | [ k; operand ] ->
          let kind = kind_of_token k in
          let addr_s, size =
            match String.index_opt operand ',' with
            | None -> (operand, 1)
            | Some i ->
                let a = String.sub operand 0 i in
                let s =
                  String.sub operand (i + 1) (String.length operand - i - 1)
                in
                (match int_of_string_opt s with
                | Some v when v > 0 -> (a, v)
                | _ -> bad "bad access size '%s'" s)
          in
          let addr =
            match hex_addr addr_s with
            | Some a -> a
            | None -> bad "bad address '%s'" addr_s
          in
          Ok (Some { kind; addr; size; core; time })
      | [ k ] ->
          (* Raise the kind error first so "Z" reports the kind, not a
             missing operand. *)
          ignore (kind_of_token k);
          bad "missing address after '%s'" k
      | [] -> bad "empty record"
      | _ -> bad "malformed record '%s'" line
    with Bad msg -> Error msg
