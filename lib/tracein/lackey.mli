(** Parser for Valgrind-Lackey text traces.

    One record per line:
    {v [CORE:] K ADDR[,SIZE] [@TIME] v}
    where [K] is [I] (instruction fetch), [L] (load), [S] (store) or
    [M] (modify = load + store) in the Lackey dialect, or the bare
    [R]/[W] read/write form.  [ADDR] is hexadecimal with or without a
    [0x] prefix (Lackey prints bare hex); [SIZE] defaults to 1.

    The optional [CORE:] prefix and [@TIME] suffix are this project's
    multi-core extension, consumed by {!Ingest}'s tagged interleaving.

    Blank lines, [#] comments, and Valgrind's own [==pid==]/[--pid--]
    chatter parse as [Ok None] — they are noise, not malformed
    records, in strict mode too. *)

type kind = Instr | Load | Store | Modify

type record = {
  kind : kind;
  addr : int;
  size : int;  (** bytes touched, starting at [addr] *)
  core : int option;  (** [CORE:] tag, when present *)
  time : int option;  (** [@TIME] tag, when present *)
}

(** [Ok None] for noise lines, [Error msg] for malformed records (the
    caller attaches the line number). *)
val parse_line : string -> (record option, string) result
