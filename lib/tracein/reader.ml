type source = File of string | Text of string

type backend =
  | Chan of in_channel
  | Proc of in_channel
  | Str of { text : string; mutable pos : int }

type chan = { backend : backend }

(* Gzip files announce themselves with a two-byte magic; sniffing it
   beats trusting the extension, and decompressing through the system
   [gzip] keeps the library dependency-free. *)
let is_gzip path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        let a = input_char ic in
        let b = input_char ic in
        Char.code a = 0x1f && Char.code b = 0x8b
      with End_of_file -> false)

let open_source = function
  | Text text -> { backend = Str { text; pos = 0 } }
  | File path ->
      if not (Sys.file_exists path) then
        raise (Sys_error (path ^ ": no such file"));
      if is_gzip path then
        { backend =
            Proc
              (Unix.open_process_in
                 (Printf.sprintf "gzip -dc %s" (Filename.quote path))) }
      else { backend = Chan (open_in path) }

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let next_line t =
  match t.backend with
  | Chan ic | Proc ic -> (
      match input_line ic with
      | line -> Some (strip_cr line)
      | exception End_of_file -> None)
  | Str s ->
      if s.pos >= String.length s.text then None
      else
        let nl =
          match String.index_from_opt s.text s.pos '\n' with
          | Some i -> i
          | None -> String.length s.text
        in
        let line = String.sub s.text s.pos (nl - s.pos) in
        s.pos <- nl + 1;
        Some (strip_cr line)

let close t =
  match t.backend with
  | Chan ic -> close_in_noerr ic
  | Proc ic -> ignore (Unix.close_process_in ic)
  | Str _ -> ()

let fold src ~init ~f =
  let ch = open_source src in
  Fun.protect
    ~finally:(fun () -> close ch)
    (fun () ->
      let rec go acc lnum =
        match next_line ch with
        | None -> acc
        | Some line -> go (f acc lnum line) (lnum + 1)
      in
      go init 1)
