(* Each constraint is (coeffs, k) meaning sum coeffs.(i)*x_i + k >= 0. *)
type t = { num_vars : int; rows : (int array * int) list }

let make ~num_vars =
  if num_vars < 0 then invalid_arg "Fm.make";
  { num_vars; rows = [] }

let num_vars t = t.num_vars
let num_constraints t = List.length t.rows

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Divide a row by the gcd of its coefficients (keeping the constant's
   floor: for c.x + k >= 0 with gcd g of the c_i, the tightest sound
   form is c/g . x + floor(k/g) >= 0). *)
let normalize (coeffs, k) =
  let g = Array.fold_left (fun acc c -> gcd acc c) 0 coeffs in
  if g <= 1 then (coeffs, k)
  else
    ( Array.map (fun c -> c / g) coeffs,
      (* floor division also for negative constants *)
      if k >= 0 then k / g else -(((-k) + g - 1) / g) )

let add_ge t coeffs k =
  if Array.length coeffs <> t.num_vars then invalid_arg "Fm.add_ge: arity";
  { t with rows = normalize (Array.copy coeffs, k) :: t.rows }

let add_le t coeffs k = add_ge t (Array.map (fun c -> -c) coeffs) (-k)

let add_eq t coeffs k = add_le (add_ge t coeffs k) coeffs k

let is_ground (coeffs, _) = Array.for_all (fun c -> c = 0) coeffs

let eliminate t j =
  if j < 0 || j >= t.num_vars then invalid_arg "Fm.eliminate";
  let pos, neg, rest =
    List.fold_left
      (fun (pos, neg, rest) ((coeffs, _) as row) ->
        let c = coeffs.(j) in
        if c > 0 then (row :: pos, neg, rest)
        else if c < 0 then (pos, row :: neg, rest)
        else (pos, neg, row :: rest))
      ([], [], []) t.rows
  in
  (* For a.x_j + P >= 0 (a > 0) and -b.x_j + N >= 0 (b > 0):
     x_j >= -P/a and x_j <= N/b, so b.P + a.N >= 0. *)
  let combined =
    List.concat_map
      (fun (pc, pk) ->
        let a = pc.(j) in
        List.map
          (fun (nc, nk) ->
            let b = -nc.(j) in
            let coeffs =
              Array.init t.num_vars (fun i ->
                  if i = j then 0 else (b * pc.(i)) + (a * nc.(i)))
            in
            normalize (coeffs, (b * pk) + (a * nk)))
          neg)
      pos
  in
  { t with rows = combined @ rest }

type status = Sat | Unsat | MaybeSat

let feasibility t =
  (* FM can square the constraint count per elimination; past this cap
     we stop and report the approximation instead of silently claiming
     feasibility (still sound for independence: only [Unsat] proves
     anything). *)
  let cap = 5000 in
  let rec go t j =
    (* Early exit on an unsatisfiable ground row. *)
    if List.exists (fun ((_, k) as row) -> is_ground row && k < 0) t.rows then
      Unsat
    else if j >= t.num_vars then Sat
    else if num_constraints t > cap then MaybeSat
    else go (eliminate t j) (j + 1)
  in
  go t 0

let rational_feasible t = feasibility t <> Unsat

let sat t x =
  if Array.length x <> t.num_vars then invalid_arg "Fm.sat: arity";
  List.for_all
    (fun (coeffs, k) ->
      let acc = ref k in
      Array.iteri (fun i c -> acc := !acc + (c * x.(i))) coeffs;
      !acc >= 0)
    t.rows

let pp ppf t =
  Fmt.pf ppf "@[<v>system over %d vars:@," t.num_vars;
  List.iter
    (fun (coeffs, k) ->
      Array.iteri
        (fun i c -> if c <> 0 then Fmt.pf ppf "%+d*x%d " c i)
        coeffs;
      Fmt.pf ppf "%+d >= 0@," k)
    t.rows;
  Fmt.pf ppf "@]"
