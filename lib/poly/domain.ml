type t = {
  bounds : (Affine.t * Affine.t) array;
  guards : Constrnt.t list;
}

let check_bounds bounds =
  let d = Array.length bounds in
  Array.iteri
    (fun j (lo, hi) ->
      if Affine.depth lo <> d || Affine.depth hi <> d then
        invalid_arg "Domain.make: bound depth mismatch";
      for k = j to d - 1 do
        if Affine.coeff lo k <> 0 || Affine.coeff hi k <> 0 then
          invalid_arg "Domain.make: bound refers to inner dimension"
      done)
    bounds

let make ~bounds ~guards =
  check_bounds bounds;
  List.iter
    (fun g ->
      if Constrnt.depth g <> Array.length bounds then
        invalid_arg "Domain.make: guard depth mismatch")
    guards;
  { bounds = Array.copy bounds; guards }

let box ranges =
  let d = Array.length ranges in
  let bounds =
    Array.map (fun (lo, hi) -> (Affine.const d lo, Affine.const d hi)) ranges
  in
  { bounds; guards = [] }

let depth t = Array.length t.bounds
let bounds t = Array.copy t.bounds
let guards t = t.guards

let mem t iv =
  let d = depth t in
  Array.length iv = d
  && (let ok = ref true in
      (try
         for j = 0 to d - 1 do
           let lo, hi = t.bounds.(j) in
           (* Bounds only involve dims < j, so full-vector eval is safe. *)
           if iv.(j) < Affine.eval lo iv || iv.(j) > Affine.eval hi iv then begin
             ok := false;
             raise Exit
           end
         done
       with Exit -> ());
      !ok)
  && Constrnt.sat_all t.guards iv

let iter f t =
  let d = depth t in
  let iv = Array.make d 0 in
  let rec go j =
    if j = d then begin
      if Constrnt.sat_all t.guards iv then f iv
    end
    else begin
      let lo, hi = t.bounds.(j) in
      let lo = Affine.eval lo iv and hi = Affine.eval hi iv in
      for v = lo to hi do
        iv.(j) <- v;
        go (j + 1)
      done
    end
  in
  if d = 0 then (if Constrnt.sat_all t.guards iv then f iv) else go 0

let fold f init t =
  let acc = ref init in
  iter (fun iv -> acc := f !acc iv) t;
  !acc

(* Restartable lazy enumeration with the exact visit order of [iter]:
   a backtracking odometer.  [seed j] fills dims [j..d-1] with their
   lower bounds (backtracking when a range is empty under the current
   prefix); [bump j] advances the deepest dimension that still has
   room and reseeds below it.  Upper bounds are cached per prefix,
   mirroring the for-loop's one-time evaluation. *)
type gen = { next : unit -> int array option; restart : unit -> unit }

let to_gen t =
  let d = depth t in
  let iv = Array.make d 0 in
  let his = Array.make d 0 in
  let started = ref false in
  let finished = ref false in
  let rec seed j =
    if j = d then true
    else begin
      let lo, hi = t.bounds.(j) in
      let lo = Affine.eval lo iv and hi = Affine.eval hi iv in
      his.(j) <- hi;
      if lo > hi then bump (j - 1)
      else begin
        iv.(j) <- lo;
        seed (j + 1)
      end
    end
  and bump j =
    if j < 0 then false
    else if iv.(j) < his.(j) then begin
      iv.(j) <- iv.(j) + 1;
      seed (j + 1)
    end
    else bump (j - 1)
  in
  let rec next () =
    if !finished then None
    else begin
      let ok =
        if not !started then begin
          started := true;
          if d = 0 then true else seed 0
        end
        else if d = 0 then false
        else bump (d - 1)
      in
      if not ok then begin
        finished := true;
        None
      end
      else if Constrnt.sat_all t.guards iv then Some iv
      else next ()
    end
  in
  let restart () =
    started := false;
    finished := false
  in
  { next; restart }

let to_list t = List.rev (fold (fun acc iv -> Array.copy iv :: acc) [] t)
let cardinal t = fold (fun n _ -> n + 1) 0 t
let is_empty t = try iter (fun _ -> raise Exit) t; true with Exit -> false
let add_guards cs t = { t with guards = cs @ t.guards }

let pp ?names ppf t =
  let name j =
    match names with
    | Some ns when j < Array.length ns -> ns.(j)
    | _ -> Printf.sprintf "i%d" j
  in
  Fmt.pf ppf "{ ";
  Array.iteri
    (fun j (lo, hi) ->
      if j > 0 then Fmt.pf ppf "; ";
      Fmt.pf ppf "%a <= %s <= %a" (Affine.pp ?names) lo (name j)
        (Affine.pp ?names) hi)
    t.bounds;
  List.iter (fun g -> Fmt.pf ppf "; %a" (Constrnt.pp ?names) g) t.guards;
  Fmt.pf ppf " }"
