(** Affine constraints: the atoms of iteration-space descriptions.

    A constraint is either [e >= 0] or [e = 0] for an affine [e].
    Conjunctions of these describe the (convex) polyhedral sets the
    paper's framework manipulates. *)

type t =
  | Ge of Affine.t  (** [e >= 0] *)
  | Eq of Affine.t  (** [e = 0] *)

(** [ge e] is the constraint [e >= 0]. *)
val ge : Affine.t -> t

(** [eq e] is the constraint [e = 0]. *)
val eq : Affine.t -> t

(** [le a b] is [a <= b], i.e. [b - a >= 0]. *)
val le : Affine.t -> Affine.t -> t

(** [lt a b] is [a < b] over the integers, i.e. [b - a - 1 >= 0]. *)
val lt : Affine.t -> Affine.t -> t

(** [between lo x hi] is the pair of constraints [lo <= x] and [x <= hi]. *)
val between : Affine.t -> Affine.t -> Affine.t -> t list

(** [sat c iv] tests whether the iteration vector satisfies the constraint. *)
val sat : t -> int array -> bool

(** [sat_all cs iv] tests a conjunction of constraints. *)
val sat_all : t list -> int array -> bool

val depth : t -> int
val equal : t -> t -> bool
val pp : ?names:string array -> t Fmt.t
