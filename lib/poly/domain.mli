(** Iteration domains: bounded affine loop nests with guards.

    A domain of depth [d] is described by, for each dimension [j], a
    lower and an upper affine bound that may refer only to outer
    dimensions [0..j-1], plus an optional conjunction of extra guard
    constraints over all [d] dimensions.  This is exactly the class of
    iteration spaces produced by the paper's loop nests (rectangular or
    triangular bounds, unit stride), and is rich enough to represent
    the Omega-style sets used for iteration groups. *)

type t

(** [make ~bounds ~guards] builds a domain.  [bounds.(j) = (lo, hi)]
    where both are affine over the full depth but must have zero
    coefficients on dimensions [>= j].
    @raise Invalid_argument on malformed bounds. *)
val make : bounds:(Affine.t * Affine.t) array -> guards:Constrnt.t list -> t

(** [box ranges] builds a rectangular domain from constant ranges
    [(lo, hi)] inclusive. *)
val box : (int * int) array -> t

val depth : t -> int
val bounds : t -> (Affine.t * Affine.t) array
val guards : t -> Constrnt.t list

(** [mem d iv] tests membership of an iteration vector. *)
val mem : t -> int array -> bool

(** [iter f d] calls [f] on every point of [d] in lexicographic order.
    The array passed to [f] is a scratch buffer: copy it if you keep it. *)
val iter : (int array -> unit) -> t -> unit

val fold : ('a -> int array -> 'a) -> 'a -> t -> 'a

type gen = {
  next : unit -> int array option;
  restart : unit -> unit;
}
(** A restartable lazy point stream.  The array returned by [next] is
    an internal buffer valid only until the following [next] call —
    copy it to retain it. *)

(** [to_gen t] yields exactly {!iter}'s sequence (lexicographic order,
    guard-filtered), one point per [next] call, allocating nothing per
    point. *)
val to_gen : t -> gen

(** All points, each a fresh array, in lexicographic order. *)
val to_list : t -> int array list

(** Number of points (by enumeration of the box, filtered by guards). *)
val cardinal : t -> int

(** True iff the domain contains no point. *)
val is_empty : t -> bool

(** [add_guards cs d] conjoins extra constraints. *)
val add_guards : Constrnt.t list -> t -> t

val pp : ?names:string array -> t Fmt.t
