(** Code generation for explicit iteration sets.

    Stand-in for the Omega library's [codegen] utility: given the set
    of iterations in an iteration group, produce a compact union of
    rectangular boxes and emit a C-like loop nest that enumerates
    exactly those iterations in lexicographic order. *)

type box = (int * int) array
(** Per-dimension inclusive [lo, hi] ranges. *)

type t = { depth : int; boxes : box list }

(** [decompose s] covers [s] by disjoint boxes using a greedy maximal-
    box extraction.  The boxes partition [s]: their disjoint union
    enumerates exactly the points of [s]. *)
val decompose : Iterset.t -> t

(** Total number of points covered. *)
val cardinal : t -> int

(** [enumerate t] lists the covered points, lexicographically per box,
    boxes in extraction order. *)
val enumerate : t -> int array list

type gen = {
  next : unit -> int array option;
  restart : unit -> unit;
}
(** A restartable lazy point stream.  The array returned by [next] is
    an internal buffer valid only until the following [next] call —
    copy it to retain it. *)

(** [to_gen t] enumerates the covered points in GLOBAL lexicographic
    order (a k-way merge over per-box odometers — per-box order, as
    {!enumerate} uses, is not globally lex), one point per [next]
    call, allocating nothing per point. *)
val to_gen : t -> gen

(** Eager list of {!to_gen}'s sequence (copies). *)
val enumerate_lex : t -> int array list

(** Emit a C-like loop nest ([for (i0 = lo; i0 <= hi; i0++) ...]) with
    one nest per box and a [body] statement string at the innermost
    level. *)
val emit : ?names:string array -> body:string -> t -> string

val pp : t Fmt.t
