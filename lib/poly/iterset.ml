type encoder = {
  los : int array;
  extents : int array;
  strides : int array;
}

let encoder_of_box los his =
  let d = Array.length los in
  if Array.length his <> d then invalid_arg "Iterset.encoder_of_box";
  let extents =
    Array.init d (fun j ->
        let e = his.(j) - los.(j) + 1 in
        if e <= 0 then invalid_arg "Iterset.encoder_of_box: empty range";
        e)
  in
  (* Row-major: last dimension varies fastest so that key order is
     lexicographic order of the vectors. *)
  let strides = Array.make d 1 in
  for j = d - 2 downto 0 do
    strides.(j) <- strides.(j + 1) * extents.(j + 1);
    if strides.(j) > max_int / (extents.(j) + 1) then
      invalid_arg "Iterset.encoder_of_box: overflow"
  done;
  { los = Array.copy los; extents; strides }

let encoder_of_domain dom =
  let d = Domain.depth dom in
  if d = 0 then encoder_of_box [||] [||]
  else begin
    let los = Array.make d max_int and his = Array.make d min_int in
    Domain.iter
      (fun iv ->
        for j = 0 to d - 1 do
          if iv.(j) < los.(j) then los.(j) <- iv.(j);
          if iv.(j) > his.(j) then his.(j) <- iv.(j)
        done)
      dom;
    if los.(0) = max_int then
      (* Empty domain: give a 1-point box so the encoder is usable. *)
      encoder_of_box (Array.make d 0) (Array.make d 0)
    else encoder_of_box los his
  end

let encode enc iv =
  let d = Array.length enc.los in
  if Array.length iv <> d then invalid_arg "Iterset.encode: dimension";
  let k = ref 0 in
  for j = 0 to d - 1 do
    let v = iv.(j) - enc.los.(j) in
    if v < 0 || v >= enc.extents.(j) then
      invalid_arg "Iterset.encode: out of box";
    k := !k + (v * enc.strides.(j))
  done;
  !k

let decode enc k =
  let d = Array.length enc.los in
  let iv = Array.make d 0 in
  let k = ref k in
  for j = 0 to d - 1 do
    iv.(j) <- (!k / enc.strides.(j)) + enc.los.(j);
    k := !k mod enc.strides.(j)
  done;
  iv

type t = { enc : encoder; keys : int array (* sorted, distinct *) }

let empty enc = { enc; keys = [||] }

let dedup_sorted a =
  let n = Array.length a in
  if n = 0 then a
  else begin
    let out = Array.make n a.(0) in
    let m = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> out.(!m - 1) then begin
        out.(!m) <- a.(i);
        incr m
      end
    done;
    Array.sub out 0 !m
  end

let of_list enc l =
  let keys = Array.of_list (List.map (encode enc) l) in
  Array.sort compare keys;
  { enc; keys = dedup_sorted keys }

let of_domain enc dom =
  let acc = ref [] in
  Domain.iter (fun iv -> acc := encode enc iv :: !acc) dom;
  let keys = Array.of_list !acc in
  Array.sort compare keys;
  { enc; keys = dedup_sorted keys }

let encoder t = t.enc
let cardinal t = Array.length t.keys
let is_empty t = Array.length t.keys = 0

let mem_key t k =
  let lo = ref 0 and hi = ref (Array.length t.keys - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = t.keys.(mid) in
    if v = k then found := true
    else if v < k then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let mem t iv = try mem_key t (encode t.enc iv) with Invalid_argument _ -> false

let add t iv =
  let k = encode t.enc iv in
  if mem_key t k then t
  else begin
    let keys = Array.append t.keys [| k |] in
    Array.sort compare keys;
    { t with keys }
  end

let merge_keys f a b =
  (* Linear merge applying [f inA inB] to decide membership. *)
  let na = Array.length a and nb = Array.length b in
  let buf = Array.make (na + nb) 0 in
  let m = ref 0 and i = ref 0 and j = ref 0 in
  let push k = buf.(!m) <- k; incr m in
  while !i < na || !j < nb do
    if !j >= nb || (!i < na && a.(!i) < b.(!j)) then begin
      if f true false then push a.(!i);
      incr i
    end
    else if !i >= na || b.(!j) < a.(!i) then begin
      if f false true then push b.(!j);
      incr j
    end
    else begin
      if f true true then push a.(!i);
      incr i;
      incr j
    end
  done;
  Array.sub buf 0 !m

let union a b = { a with keys = merge_keys (fun _ _ -> true) a.keys b.keys }
let inter a b = { a with keys = merge_keys ( && ) a.keys b.keys }
let diff a b = { a with keys = merge_keys (fun x y -> x && not y) a.keys b.keys }
let equal a b = a.keys = b.keys
let subset a b = Array.for_all (fun k -> mem_key b k) a.keys
let iter f t = Array.iter (fun k -> f (decode t.enc k)) t.keys

let fold f init t =
  let acc = ref init in
  iter (fun iv -> acc := f !acc iv) t;
  !acc

let to_list t = List.rev (fold (fun acc iv -> iv :: acc) [] t)

let split_at n t =
  let n = max 0 (min n (Array.length t.keys)) in
  ( { t with keys = Array.sub t.keys 0 n },
    { t with keys = Array.sub t.keys n (Array.length t.keys - n) } )

let min_key t = if Array.length t.keys = 0 then max_int else t.keys.(0)
let keys t = Array.copy t.keys

let of_keys enc keys =
  let keys = Array.copy keys in
  Array.sort compare keys;
  { enc; keys = dedup_sorted keys }

let pp ppf t =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any "; ") (array ~sep:(any ",") int))
    (List.filteri (fun i _ -> i < 16) (to_list t));
  if cardinal t > 16 then Fmt.pf ppf "... (%d points)" (cardinal t)
