(** Explicit finite sets of iteration vectors.

    Iteration groups (the unit of distribution in the paper) are
    arbitrary finite subsets of an iteration domain; this module stores
    them compactly by encoding each vector into a single integer key
    relative to a bounding box.  All binary operations require both
    sets to share the same encoder (i.e. come from the same domain
    bounding box). *)

type encoder

(** [encoder_of_box los his] builds an encoder for vectors with
    [los.(j) <= iv.(j) <= his.(j)].
    @raise Invalid_argument on empty ranges or overflow. *)
val encoder_of_box : int array -> int array -> encoder

(** Encoder covering every point of a domain (its outer bounding box). *)
val encoder_of_domain : Domain.t -> encoder

val encode : encoder -> int array -> int
val decode : encoder -> int -> int array

type t

val empty : encoder -> t
val of_list : encoder -> int array list -> t

(** [of_domain enc d] collects all points of [d]. *)
val of_domain : encoder -> Domain.t -> t

val encoder : t -> encoder
val cardinal : t -> int
val is_empty : t -> bool
val mem : t -> int array -> bool
val add : t -> int array -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool

(** Iterate in lexicographic order; the array is fresh per call. *)
val iter : (int array -> unit) -> t -> unit

val fold : ('a -> int array -> 'a) -> 'a -> t -> 'a
val to_list : t -> int array list

(** [split_at n s] returns the first [n] points (lexicographically)
    and the rest. *)
val split_at : int -> t -> t * t

(** Smallest (lexicographically first) key; [max_int] when empty. *)
val min_key : t -> int

(** Raw sorted keys (for fast hashing / grouping). *)
val keys : t -> int array

val of_keys : encoder -> int array -> t
val pp : t Fmt.t
