(** Affine integer expressions over a vector of loop-index variables.

    An affine expression over a nest of depth [d] has the form
    [c0*i0 + c1*i1 + ... + c(d-1)*i(d-1) + k].  These are the building
    blocks of iteration spaces, array subscript functions and loop
    bounds — the fragment the paper manipulates with the Omega library. *)

type t = private {
  coeffs : int array;  (** one coefficient per nest variable *)
  const : int;
}

(** [make coeffs const] builds an affine expression; the array is copied. *)
val make : int array -> int -> t

(** [const d k] is the constant expression [k] over a depth-[d] nest. *)
val const : int -> int -> t

(** [var d j] is the expression [i_j] over a depth-[d] nest.
    @raise Invalid_argument if [j] is out of range. *)
val var : int -> int -> t

(** Number of nest variables the expression ranges over. *)
val depth : t -> int

(** [eval e iv] evaluates [e] at iteration vector [iv].
    @raise Invalid_argument if the dimensions disagree. *)
val eval : t -> int array -> int

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

(** [scale k e] multiplies every coefficient and the constant by [k]. *)
val scale : int -> t -> t

(** [add_const k e] is [e + k]. *)
val add_const : int -> t -> t

(** True iff all variable coefficients are zero. *)
val is_const : t -> bool

(** [coeff e j] is the coefficient of variable [j]. *)
val coeff : t -> int -> int

(** [extend d' e] reinterprets [e] over a deeper nest of depth [d'],
    padding new inner coefficients with zero.
    @raise Invalid_argument if [d' < depth e]. *)
val extend : int -> t -> t

(** Structural equality. *)
val equal : t -> t -> bool

val compare : t -> t -> int
val hash : t -> int

(** Pretty-print as e.g. [2*i0 - i2 + 3], using [names] when given. *)
val pp : ?names:string array -> t Fmt.t

val to_string : ?names:string array -> t -> string
