type box = (int * int) array
type t = { depth : int; boxes : box list }

(* Greedy maximal-box extraction: repeatedly take the lexicographically
   smallest remaining point, grow a box around it innermost-dimension
   first (so rows of the iteration space coalesce), remove it, repeat.
   Boxes are disjoint by construction and cover the whole set. *)
let decompose s =
  let enc = Iterset.encoder s in
  let keys = Iterset.keys s in
  let d = match Array.length keys with
    | 0 -> 0
    | _ -> Array.length (Iterset.decode enc keys.(0))
  in
  if Array.length keys = 0 then { depth = d; boxes = [] }
  else begin
    let remaining = Hashtbl.create (Array.length keys) in
    Array.iter (fun k -> Hashtbl.replace remaining k ()) keys;
    let box_full box =
      (* All points of [box] still remaining? *)
      let iv = Array.map fst box in
      let rec go j =
        if j = d then Hashtbl.mem remaining (Iterset.encode enc iv)
        else begin
          let lo, hi = box.(j) in
          let ok = ref true in
          let v = ref lo in
          while !ok && !v <= hi do
            iv.(j) <- !v;
            ok := go (j + 1);
            incr v
          done;
          !ok
        end
      in
      try go 0 with Invalid_argument _ -> false
    in
    let remove_box box =
      let iv = Array.map fst box in
      let rec go j =
        if j = d then Hashtbl.remove remaining (Iterset.encode enc iv)
        else
          let lo, hi = box.(j) in
          for v = lo to hi do
            iv.(j) <- v;
            go (j + 1)
          done
      in
      go 0
    in
    let boxes = ref [] in
    Array.iter
      (fun k ->
        if Hashtbl.mem remaining k then begin
          let p = Iterset.decode enc k in
          let box = Array.map (fun v -> (v, v)) p in
          (* Grow innermost dimension first: contiguous runs coalesce. *)
          for j = d - 1 downto 0 do
            let keep_growing = ref true in
            while !keep_growing do
              let lo, hi = box.(j) in
              box.(j) <- (lo, hi + 1);
              let probe = Array.copy box in
              probe.(j) <- (hi + 1, hi + 1);
              if box_full probe then ()
              else begin
                box.(j) <- (lo, hi);
                keep_growing := false
              end
            done
          done;
          remove_box box;
          boxes := box :: !boxes
        end)
      keys;
    { depth = d; boxes = List.rev !boxes }
  end

let box_cardinal b =
  Array.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1 b

let cardinal t = List.fold_left (fun acc b -> acc + box_cardinal b) 0 t.boxes

let enumerate t =
  let pts = ref [] in
  List.iter
    (fun box ->
      let d = Array.length box in
      let iv = Array.map fst box in
      let rec go j =
        if j = d then pts := Array.copy iv :: !pts
        else
          let lo, hi = box.(j) in
          for v = lo to hi do
            iv.(j) <- v;
            go (j + 1)
          done
      in
      go 0)
    t.boxes;
  List.rev !pts

let emit ?names ~body t =
  let name j =
    match names with
    | Some ns when j < Array.length ns -> ns.(j)
    | _ -> Printf.sprintf "i%d" j
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun box ->
      (* Loops carry explicit braces so the emitted text is valid C
         even when a singleton dimension (an assignment statement)
         appears below a loop dimension. *)
      let opened = ref [] in
      Array.iteri
        (fun j (lo, hi) ->
          Buffer.add_string buf (String.make (2 * j) ' ');
          if lo = hi then
            Buffer.add_string buf (Printf.sprintf "%s = %d;\n" (name j) lo)
          else begin
            Buffer.add_string buf
              (Printf.sprintf "for (%s = %d; %s <= %d; %s++) {\n" (name j) lo
                 (name j) hi (name j));
            opened := j :: !opened
          end)
        box;
      Buffer.add_string buf (String.make (2 * Array.length box) ' ');
      Buffer.add_string buf body;
      Buffer.add_char buf '\n';
      List.iter
        (fun j ->
          Buffer.add_string buf (String.make (2 * j) ' ');
          Buffer.add_string buf "}\n")
        !opened)
    t.boxes;
  Buffer.contents buf

let pp ppf t =
  Fmt.pf ppf "codegen(depth=%d, %d boxes, %d points)" t.depth
    (List.length t.boxes) (cardinal t)
