type box = (int * int) array
type t = { depth : int; boxes : box list }

(* Greedy maximal-box extraction: repeatedly take the lexicographically
   smallest remaining point, grow a box around it innermost-dimension
   first (so rows of the iteration space coalesce), remove it, repeat.
   Boxes are disjoint by construction and cover the whole set. *)
let decompose s =
  let enc = Iterset.encoder s in
  let keys = Iterset.keys s in
  let d = match Array.length keys with
    | 0 -> 0
    | _ -> Array.length (Iterset.decode enc keys.(0))
  in
  if Array.length keys = 0 then { depth = d; boxes = [] }
  else begin
    let remaining = Hashtbl.create (Array.length keys) in
    Array.iter (fun k -> Hashtbl.replace remaining k ()) keys;
    let box_full box =
      (* All points of [box] still remaining? *)
      let iv = Array.map fst box in
      let rec go j =
        if j = d then Hashtbl.mem remaining (Iterset.encode enc iv)
        else begin
          let lo, hi = box.(j) in
          let ok = ref true in
          let v = ref lo in
          while !ok && !v <= hi do
            iv.(j) <- !v;
            ok := go (j + 1);
            incr v
          done;
          !ok
        end
      in
      try go 0 with Invalid_argument _ -> false
    in
    let remove_box box =
      let iv = Array.map fst box in
      let rec go j =
        if j = d then Hashtbl.remove remaining (Iterset.encode enc iv)
        else
          let lo, hi = box.(j) in
          for v = lo to hi do
            iv.(j) <- v;
            go (j + 1)
          done
      in
      go 0
    in
    let boxes = ref [] in
    Array.iter
      (fun k ->
        if Hashtbl.mem remaining k then begin
          let p = Iterset.decode enc k in
          let box = Array.map (fun v -> (v, v)) p in
          (* Grow innermost dimension first: contiguous runs coalesce. *)
          for j = d - 1 downto 0 do
            let keep_growing = ref true in
            while !keep_growing do
              let lo, hi = box.(j) in
              box.(j) <- (lo, hi + 1);
              let probe = Array.copy box in
              probe.(j) <- (hi + 1, hi + 1);
              if box_full probe then ()
              else begin
                box.(j) <- (lo, hi);
                keep_growing := false
              end
            done
          done;
          remove_box box;
          boxes := box :: !boxes
        end)
      keys;
    { depth = d; boxes = List.rev !boxes }
  end

let box_cardinal b =
  Array.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1 b

let cardinal t = List.fold_left (fun acc b -> acc + box_cardinal b) 0 t.boxes

let enumerate t =
  let pts = ref [] in
  List.iter
    (fun box ->
      let d = Array.length box in
      let iv = Array.map fst box in
      let rec go j =
        if j = d then pts := Array.copy iv :: !pts
        else
          let lo, hi = box.(j) in
          for v = lo to hi do
            iv.(j) <- v;
            go (j + 1)
          done
      in
      go 0)
    t.boxes;
  List.rev !pts

(* Restartable lazy enumeration in GLOBAL lexicographic order.  The
   greedy decomposition emits boxes in the order their lex-smallest
   points were extracted, but a later box can interleave points between
   those of an earlier one (grow-innermost-first can leave an L-shaped
   remainder), so per-box enumeration is not globally lex.  A k-way
   merge over per-box odometers is: each box yields its points in lex
   order, and the boxes are disjoint, so the minimum over the box
   heads is the global next point. *)
type gen = { next : unit -> int array option; restart : unit -> unit }

let to_gen t =
  let boxes = Array.of_list t.boxes in
  let nb = Array.length boxes in
  let d = t.depth in
  let cur = Array.map (fun b -> Array.map fst b) boxes in
  let active = Array.make nb true in
  (* Lazy advance: [next] hands out box [!last]'s own buffer, so that
     box's odometer only ticks at the start of the following call —
     the returned array stays valid until then (callers consume or
     copy it before pulling again). *)
  let last = ref (-1) in
  let restart () =
    for b = 0 to nb - 1 do
      Array.iteri (fun j (lo, _) -> cur.(b).(j) <- lo) boxes.(b);
      active.(b) <- box_cardinal boxes.(b) > 0
    done;
    last := -1
  in
  restart ();
  let advance b =
    let box = boxes.(b) in
    let iv = cur.(b) in
    let rec go j =
      if j < 0 then active.(b) <- false
      else
        let lo, hi = box.(j) in
        if iv.(j) < hi then iv.(j) <- iv.(j) + 1
        else begin
          iv.(j) <- lo;
          go (j - 1)
        end
    in
    go (d - 1)
  in
  let lex_less a b =
    let rec go j =
      if j >= d then false
      else if a.(j) < b.(j) then true
      else if a.(j) > b.(j) then false
      else go (j + 1)
    in
    go 0
  in
  let next () =
    if !last >= 0 then begin
      advance !last;
      last := -1
    end;
    let best = ref (-1) in
    for b = 0 to nb - 1 do
      if active.(b) && (!best < 0 || lex_less cur.(b) cur.(!best)) then
        best := b
    done;
    if !best < 0 then None
    else begin
      last := !best;
      Some cur.(!best)
    end
  in
  { next; restart }

let enumerate_lex t =
  let g = to_gen t in
  let rec go acc =
    match g.next () with
    | None -> List.rev acc
    | Some p -> go (Array.copy p :: acc)
  in
  go []

let emit ?names ~body t =
  let name j =
    match names with
    | Some ns when j < Array.length ns -> ns.(j)
    | _ -> Printf.sprintf "i%d" j
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun box ->
      (* Loops carry explicit braces so the emitted text is valid C
         even when a singleton dimension (an assignment statement)
         appears below a loop dimension. *)
      let opened = ref [] in
      Array.iteri
        (fun j (lo, hi) ->
          Buffer.add_string buf (String.make (2 * j) ' ');
          if lo = hi then
            Buffer.add_string buf (Printf.sprintf "%s = %d;\n" (name j) lo)
          else begin
            Buffer.add_string buf
              (Printf.sprintf "for (%s = %d; %s <= %d; %s++) {\n" (name j) lo
                 (name j) hi (name j));
            opened := j :: !opened
          end)
        box;
      Buffer.add_string buf (String.make (2 * Array.length box) ' ');
      Buffer.add_string buf body;
      Buffer.add_char buf '\n';
      List.iter
        (fun j ->
          Buffer.add_string buf (String.make (2 * j) ' ');
          Buffer.add_string buf "}\n")
        !opened)
    t.boxes;
  Buffer.contents buf

let pp ppf t =
  Fmt.pf ppf "codegen(depth=%d, %d boxes, %d points)" t.depth
    (List.length t.boxes) (cardinal t)
