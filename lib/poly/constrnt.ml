type t = Ge of Affine.t | Eq of Affine.t

let ge e = Ge e
let eq e = Eq e
let le a b = Ge (Affine.sub b a)
let lt a b = Ge (Affine.add_const (-1) (Affine.sub b a))
let between lo x hi = [ le lo x; le x hi ]

let sat c iv =
  match c with
  | Ge e -> Affine.eval e iv >= 0
  | Eq e -> Affine.eval e iv = 0

let sat_all cs iv = List.for_all (fun c -> sat c iv) cs
let depth = function Ge e | Eq e -> Affine.depth e

let equal a b =
  match (a, b) with
  | Ge x, Ge y | Eq x, Eq y -> Affine.equal x y
  | Ge _, Eq _ | Eq _, Ge _ -> false

let pp ?names ppf = function
  | Ge e -> Fmt.pf ppf "%a >= 0" (Affine.pp ?names) e
  | Eq e -> Fmt.pf ppf "%a = 0" (Affine.pp ?names) e
