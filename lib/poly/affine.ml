type t = { coeffs : int array; const : int }

let make coeffs const = { coeffs = Array.copy coeffs; const }
let const d k = { coeffs = Array.make d 0; const = k }

let var d j =
  if j < 0 || j >= d then invalid_arg "Affine.var: index out of range";
  let coeffs = Array.make d 0 in
  coeffs.(j) <- 1;
  { coeffs; const = 0 }

let depth e = Array.length e.coeffs

let eval e iv =
  let d = depth e in
  if Array.length iv <> d then invalid_arg "Affine.eval: dimension mismatch";
  let acc = ref e.const in
  for j = 0 to d - 1 do
    acc := !acc + (e.coeffs.(j) * iv.(j))
  done;
  !acc

let map2_coeffs f a b =
  let d = depth a in
  if depth b <> d then invalid_arg "Affine: dimension mismatch";
  { coeffs = Array.init d (fun j -> f a.coeffs.(j) b.coeffs.(j));
    const = f a.const b.const }

let add a b = map2_coeffs ( + ) a b
let sub a b = map2_coeffs ( - ) a b
let neg a = { coeffs = Array.map (fun c -> -c) a.coeffs; const = -a.const }
let scale k a = { coeffs = Array.map (fun c -> k * c) a.coeffs; const = k * a.const }
let add_const k a = { a with const = a.const + k }
let is_const a = Array.for_all (fun c -> c = 0) a.coeffs
let coeff a j = a.coeffs.(j)

let extend d' a =
  let d = depth a in
  if d' < d then invalid_arg "Affine.extend: cannot shrink";
  { coeffs = Array.init d' (fun j -> if j < d then a.coeffs.(j) else 0);
    const = a.const }

let equal a b = a.const = b.const && a.coeffs = b.coeffs
let compare a b = Stdlib.compare (a.const, a.coeffs) (b.const, b.coeffs)
let hash a = Hashtbl.hash (a.const, a.coeffs)

let pp ?names ppf a =
  let name j =
    match names with
    | Some ns when j < Array.length ns -> ns.(j)
    | _ -> Printf.sprintf "i%d" j
  in
  let first = ref true in
  let emit_term c j =
    if c <> 0 then begin
      if !first then begin
        if c = -1 then Fmt.string ppf "-"
        else if c <> 1 then Fmt.pf ppf "%d*" c
      end
      else if c > 0 then begin
        Fmt.string ppf " + ";
        if c <> 1 then Fmt.pf ppf "%d*" c
      end
      else begin
        Fmt.string ppf " - ";
        if c <> -1 then Fmt.pf ppf "%d*" (-c)
      end;
      Fmt.string ppf (name j);
      first := false
    end
  in
  Array.iteri (fun j c -> emit_term c j) a.coeffs;
  if !first then Fmt.int ppf a.const
  else if a.const > 0 then Fmt.pf ppf " + %d" a.const
  else if a.const < 0 then Fmt.pf ppf " - %d" (-a.const)

let to_string ?names a = Fmt.str "%a" (pp ?names) a
