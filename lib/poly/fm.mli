(** Fourier–Motzkin elimination over linear integer constraint systems.

    The decision core of the Omega-style dependence test: a system of
    linear inequalities [sum c_i * x_i + k >= 0] (equalities are two
    inequalities) is tested for *rational* feasibility by eliminating
    variables one at a time.  Rational infeasibility soundly proves
    that no integer point exists either — exactly the direction a
    dependence test needs ("definitely independent").  Coefficients
    are reduced by their gcd at every step to control growth. *)

type t

(** [make ~num_vars] is the unconstrained system. *)
val make : num_vars:int -> t

val num_vars : t -> int
val num_constraints : t -> int

(** [add_ge t coeffs k] conjoins [sum coeffs.(i) * x_i + k >= 0].
    @raise Invalid_argument on length mismatch. *)
val add_ge : t -> int array -> int -> t

(** [add_eq t coeffs k] conjoins [sum coeffs.(i) * x_i + k = 0]. *)
val add_eq : t -> int array -> int -> t

(** [add_le t coeffs k] conjoins [sum coeffs.(i) * x_i + k <= 0]. *)
val add_le : t -> int array -> int -> t

(** [eliminate t j] projects out variable [j] (its column becomes 0 in
    every remaining constraint). *)
val eliminate : t -> int -> t

(** Outcome of the elimination: [Sat] — rationally feasible (an integer
    point may still not exist); [Unsat] — proven empty (no rational,
    hence no integer, solution); [MaybeSat] — the constraint count
    exceeded the internal growth cap before elimination finished, so
    nothing was proven and callers must answer conservatively. *)
type status = Sat | Unsat | MaybeSat

(** [feasibility t] eliminates every variable and checks the resulting
    ground constraints, reporting whether the answer is exact. *)
val feasibility : t -> status

(** [rational_feasible t] is [feasibility t <> Unsat]: [false] is a
    proof that the system has no rational (hence no integer) solution;
    [true] may be the capped conservative answer. *)
val rational_feasible : t -> bool

(** [sat t x] tests a concrete integer point (for tests). *)
val sat : t -> int array -> bool

val pp : t Fmt.t
