module J = Ctam_util.Json

type level = Error | Warn | Info | Debug

let level_name = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "error" | "err" -> Ok (Some Error)
  | "warn" | "warning" -> Ok (Some Warn)
  | "info" -> Ok (Some Info)
  | "debug" -> Ok (Some Debug)
  | "off" | "quiet" | "none" -> Ok None
  | other ->
      Error
        (Printf.sprintf
           "unknown log level '%s' (error|warn|info|debug|off)" other)

let env_var = "CTAM_LOG"
let format_env_var = "CTAM_LOG_FORMAT"

(* [state] is only mutated from configuration calls (CLI startup,
   tests); emission reads it without locking and serialises the actual
   sink call with [emit_lock]. *)

let cur_level =
  ref
    (match Sys.getenv_opt env_var with
    | Some s -> ( match level_of_string s with Ok l -> l | Error _ -> Some Warn)
    | None -> Some Warn)

let cur_format =
  ref
    (match Option.map String.lowercase_ascii (Sys.getenv_opt format_env_var) with
    | Some "json" -> `Json
    | _ -> `Human)

let sink = ref prerr_endline
let emit_lock = Mutex.create ()

(* Ambient per-domain context: fields appended to every line emitted
   while a [with_context] scope is active on this domain.  The daemon
   uses it to stamp request_id/conn onto log lines produced deep in
   the pipeline (cache corruption warnings, FM-cap notes) without
   threading a context argument through every layer. *)
let context_key : (string * J.t) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let context () = Domain.DLS.get context_key

let with_context fields f =
  let saved = Domain.DLS.get context_key in
  Domain.DLS.set context_key (saved @ fields);
  Fun.protect ~finally:(fun () -> Domain.DLS.set context_key saved) f

let set_level l = cur_level := l
let current_level () = !cur_level

let set_level_of_string s =
  match level_of_string s with
  | Ok l ->
      set_level l;
      Ok ()
  | Error e -> Error e

let set_format f = cur_format := f
let set_sink f = sink := f

let enabled l =
  match !cur_level with None -> false | Some max -> severity l <= severity max

let render_human ~ts ~level ~src ~fields text =
  let b = Buffer.create 128 in
  let tm = Unix.gmtime ts in
  Buffer.add_string b
    (Printf.sprintf "[%02d:%02d:%06.3f] %-5s" tm.Unix.tm_hour tm.Unix.tm_min
       (float_of_int tm.Unix.tm_sec +. (ts -. Float.of_int (int_of_float ts)))
       (level_name level));
  (match src with
  | Some s ->
      Buffer.add_char b ' ';
      Buffer.add_string b s;
      Buffer.add_char b ':'
  | None -> ());
  Buffer.add_char b ' ';
  Buffer.add_string b text;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b ' ';
      Buffer.add_string b k;
      Buffer.add_char b '=';
      Buffer.add_string b (J.to_string ~minify:true v))
    fields;
  Buffer.contents b

let render_json ~ts ~level ~src ~fields text =
  J.to_string ~minify:true
    (J.Obj
       ([ ("ts", J.Float ts); ("level", J.String (level_name level)) ]
       @ (match src with Some s -> [ ("src", J.String s) ] | None -> [])
       @ [ ("msg", J.String text) ]
       @ fields))

let format_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "json" -> Ok `Json
  | "human" | "text" -> Ok `Human
  | other ->
      Error (Printf.sprintf "unknown log format '%s' (human|json)" other)

let set_format_of_string s =
  match format_of_string s with
  | Ok f ->
      set_format f;
      Ok ()
  | Error e -> Error e

let msg level ?src ?(fields = []) k =
  if enabled level then begin
    let text = k () in
    let fields = Domain.DLS.get context_key @ fields in
    let ts = Unix.gettimeofday () in
    let line =
      match !cur_format with
      | `Human -> render_human ~ts ~level ~src ~fields text
      | `Json -> render_json ~ts ~level ~src ~fields text
    in
    Mutex.lock emit_lock;
    (try !sink line with e -> Mutex.unlock emit_lock; raise e);
    Mutex.unlock emit_lock
  end

let err ?src ?fields k = msg Error ?src ?fields k
let warn ?src ?fields k = msg Warn ?src ?fields k
let info ?src ?fields k = msg Info ?src ?fields k
let debug ?src ?fields k = msg Debug ?src ?fields k

let span ?(level = Debug) ?src name f =
  let t0 = Unix.gettimeofday () in
  match f () with
  | r ->
      let dt = Unix.gettimeofday () -. t0 in
      Profile.record_phase name dt;
      msg level ?src ~fields:[ ("seconds", J.Float dt) ] (fun () -> name);
      r
  | exception e ->
      let dt = Unix.gettimeofday () -. t0 in
      msg Error ?src
        ~fields:
          [ ("seconds", J.Float dt); ("exn", J.String (Printexc.to_string e)) ]
        (fun () -> name ^ " raised");
      raise e
