(** Glue between the runtime's instrumentation hooks and the metrics
    registry.

    {!install} plugs a {!Ctam_util.Parallel.monitor} into the domain
    pool so every [Parallel.map] records tasks-per-domain, busy and
    idle (queue-wait) seconds, and pool utilization:

    - [ctam_parallel_maps_total], [ctam_parallel_tasks_total]
    - [ctam_parallel_busy_seconds_total] /
      [ctam_parallel_capacity_seconds_total] (gauge sums; capacity =
      wall-clock × domains, so busy/capacity is the cumulative pool
      utilization and capacity − busy the queue-wait/idle time)
    - [ctam_parallel_pool_utilization] (gauge, last map)
    - [ctam_parallel_domain_tasks] (histogram of tasks each domain ran
      in one map — skew shows up as spread)

    Entry points ([bin/ctamap.ml], [bench/main.ml]) call {!install}
    once at startup; libraries never install hooks behind the caller's
    back. *)

val install : unit -> unit
(** Idempotent. *)

val uninstall : unit -> unit
(** Remove the monitor (tests). *)

val pool_totals : unit -> float * float
(** [(busy_seconds, capacity_seconds)] accumulated so far — sample
    before/after a region to compute that region's utilization. *)

val pool_utilization : unit -> float
(** Cumulative busy/capacity, 0. before any monitored map. *)
