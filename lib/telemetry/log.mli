(** Structured, leveled logging for ctamap itself.

    Replaces the ad-hoc [Printf.eprintf] / [Logs] paths: every message
    carries a level, a source tag and optional structured fields, and
    renders either human-readably or as JSON lines (one RFC 8259 object
    per line via {!Ctam_util.Json}), so warnings are both
    level-filterable and machine-parseable.

    Messages are thunks ([unit -> string]) so a filtered-out call
    costs one branch and never formats:

    {[
      Log.debug ~src:"dep_test" (fun () ->
          Printf.sprintf "FM cap exceeded at level %d" level)
    ]}

    Emission is serialised by a mutex, so domains can log
    concurrently without interleaving lines. *)

type level = Error | Warn | Info | Debug

val level_name : level -> string

val level_of_string : string -> (level option, string) result
(** Accepts [error]/[warn]/[warning]/[info]/[debug] plus [off]/[quiet]
    ([Ok None] = logging disabled). *)

(** {1 Configuration} *)

val env_var : string
(** ["CTAM_LOG"]: initial level (default [warn]). *)

val format_env_var : string
(** ["CTAM_LOG_FORMAT"]: [json] or [human] (default). *)

val set_level : level option -> unit
(** [None] disables all output. *)

val current_level : unit -> level option

val set_level_of_string : string -> (unit, string) result
(** [set_level] via {!level_of_string} — the [--log-level] backend. *)

val set_format : [ `Human | `Json ] -> unit

val format_of_string : string -> ([ `Human | `Json ], string) result
(** Accepts [human]/[text]/[json]. *)

val set_format_of_string : string -> (unit, string) result
(** [set_format] via {!format_of_string} — the [--log-format]
    backend. *)

val set_sink : (string -> unit) -> unit
(** Where rendered lines go (default: [prerr_endline]).  Tests install
    a capturing sink. *)

val enabled : level -> bool

(** {1 Ambient context}

    Domain-local fields appended to every line emitted on this domain
    while the scope is active — how the serving daemon stamps
    [request_id] onto log lines produced deep inside the pipeline
    without threading an argument through every layer.  Scopes nest
    (inner fields append after outer ones) and are restored on exit,
    exceptions included.  The context is per-domain: code that spawns
    a domain to do a request's work must re-establish the scope inside
    it. *)

val with_context : (string * Ctam_util.Json.t) list -> (unit -> 'a) -> 'a

val context : unit -> (string * Ctam_util.Json.t) list
(** The fields currently in scope on this domain. *)

(** {1 Emission} *)

val msg :
  level ->
  ?src:string ->
  ?fields:(string * Ctam_util.Json.t) list ->
  (unit -> string) ->
  unit

val err :
  ?src:string ->
  ?fields:(string * Ctam_util.Json.t) list ->
  (unit -> string) ->
  unit

val warn :
  ?src:string ->
  ?fields:(string * Ctam_util.Json.t) list ->
  (unit -> string) ->
  unit

val info :
  ?src:string ->
  ?fields:(string * Ctam_util.Json.t) list ->
  (unit -> string) ->
  unit

val debug :
  ?src:string ->
  ?fields:(string * Ctam_util.Json.t) list ->
  (unit -> string) ->
  unit

val span : ?level:level -> ?src:string -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], logs [name] with a [seconds] field at
    [level] (default [Debug]) when it returns, and records the duration
    into the {!Profile} phase histogram under [name].  Exceptions
    propagate after a log line flagging the failure. *)
