(** Prometheus text exposition format (version 0.0.4) for a
    {!Metrics} registry — what a future [ctamap serve] daemon returns
    from [/metrics], and what [--metrics-prom FILE] writes today.

    Rendering is deterministic (family and series order comes from
    {!Metrics.scrape}) and escapes help text (backslash, newline) and
    label values (backslash, double quote, newline) per the spec.
    Histograms expand into [_bucket{le=...}] series (cumulative,
    ending at the [+Inf] bound), [_sum] and [_count]. *)

val render : ?registry:Metrics.t -> unit -> string

val write : ?registry:Metrics.t -> string -> unit
(** [render] to a file. @raise Sys_error on write failure. *)
