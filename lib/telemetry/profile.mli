(** Self-profiling: wall-clock per pipeline phase and GC pressure,
    recorded into the default {!Metrics} registry and rendered as the
    [--metrics-out] snapshot / run-report [telemetry] member.

    Phases are the frontend → poly → mapping → engine → tune seams:
    ["frontend.parse"], ["mapping.group"], ["simulate"],
    ["tune.search"], … — dot-separated, lowercase.  Each recording
    lands in the [ctam_phase_seconds{phase}] histogram; {!phase} also
    charges the phase's GC allocation counters. *)

val now : unit -> float
(** [Unix.gettimeofday] — the clock every telemetry duration uses. *)

val record_phase : string -> float -> unit
(** [record_phase name seconds] observes one phase duration.  No-op
    when {!Metrics.enabled} is false. *)

val phase : string -> (unit -> 'a) -> 'a
(** [phase name f] runs [f], recording its wall-clock and the
    minor/major words it allocated ([ctam_phase_minor_words_total],
    [ctam_phase_major_words_total]).  Exceptions propagate; the phase
    is still recorded.  When {!Metrics.enabled} is false this is just
    [f ()]. *)

(** {1 Snapshots} *)

val gc_json : unit -> Ctam_util.Json.t
(** Image of [Gc.quick_stat]: minor/major/promoted words, collection
    counts, heap words, compactions. *)

val gc_delta_json : Gc.stat -> Gc.stat -> Ctam_util.Json.t
(** [gc_delta_json before after]: allocation and collection deltas
    (words as floats, counts as ints) plus the final heap size. *)

val snapshot_json :
  ?registry:Metrics.t -> version:string -> telemetry_version:int ->
  unit -> Ctam_util.Json.t
(** The full [--metrics-out] payload:
    [{ctam_metrics_version, version, gc, metrics}].  [version] is the
    tool version string (passed in to keep this library independent of
    {!Ctam_exp.Build_info}). *)

val write_snapshot :
  ?registry:Metrics.t -> version:string -> telemetry_version:int ->
  string -> unit
(** {!snapshot_json} to a file (trailing newline).
    @raise Sys_error on write failure. *)
