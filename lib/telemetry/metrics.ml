module J = Ctam_util.Json

(* Per-domain shards: every labelled series owns one mutable cell per
   domain that ever recorded into it, handed out through Domain.DLS.
   Recording is a plain load + store on the calling domain's own cell
   (no atomics, no lock, no allocation); the shard list itself is only
   touched — under the registry lock — when a domain records into a
   series for the first time.  Scrapes sum the shards; for counters
   that merge is an integer sum, so it is exact and order-independent.
   Reading another domain's cell without synchronisation is safe here:
   word-sized OCaml loads never tear, and every scrape we care about
   happens after the recording domains joined (Parallel.map joins its
   helpers), which gives the scrape a happens-before edge. *)

let env_var = "CTAM_TELEMETRY"

let enabled_flag =
  let initial =
    match Option.map String.lowercase_ascii (Sys.getenv_opt env_var) with
    | Some ("0" | "off" | "false" | "no") -> false
    | _ -> true
  in
  Atomic.make initial

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type labels = (string * string) list

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) array }

type family = {
  f_name : string;
  f_help : string;
  f_kind : string;
  f_series : (labels * value) list;
}

(* --- shard cells ------------------------------------------------------ *)

type ccell = { mutable c_n : int }

(* No separate count cell: a scrape derives the count from the bucket
   sums, so the "+Inf cumulative count equals the series count"
   exposition invariant holds even when the scrape races a record on
   another domain (a separate counter could be read mid-update). *)
type hcell = {
  mutable h_sum : float;
  h_buckets : int array;  (* one per finite bound, plus the overflow *)
}

(* A shard set: the DLS key hands each domain its own cell and links it
   into [cells] (under [lock]) the first time that domain records. *)
type 'cell shards = { key : 'cell Domain.DLS.key; cells : 'cell list ref }

let make_shards ~lock ~fresh =
  let cells = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let c = fresh () in
        Mutex.lock lock;
        cells := c :: !cells;
        Mutex.unlock lock;
        c)
  in
  { key; cells }

(* --- metric internals ------------------------------------------------- *)

type counter_m = {
  c_name : string;
  c_help : string;
  c_label_names : string list;
  c_lock : Mutex.t;
  mutable c_series : (string list * ccell shards) list;
}

type gcell = { mutable g_v : float }

type gauge_m = {
  g_name : string;
  g_help : string;
  g_label_names : string list;
  g_lock : Mutex.t;
  mutable g_series : (string list * gcell) list;
}

type histogram_m = {
  h_name : string;
  h_help : string;
  h_label_names : string list;
  h_bounds : float array;
  h_lock : Mutex.t;
  mutable h_series : (string list * hcell shards) list;
}

type metric = MC of counter_m | MG of gauge_m | MH of histogram_m

let metric_name = function
  | MC c -> c.c_name
  | MG g -> g.g_name
  | MH h -> h.h_name

type t = { lock : Mutex.t; mutable metrics : metric list }

let create () = { lock = Mutex.create (); metrics = [] }
let default = create ()

let register reg ~name ~make ~existing =
  Mutex.lock reg.lock;
  let r =
    match List.find_opt (fun m -> metric_name m = name) reg.metrics with
    | Some m -> existing m
    | None ->
        let m = make () in
        reg.metrics <- m :: reg.metrics;
        existing m
  in
  Mutex.unlock reg.lock;
  r

let check_labels ~what label_names values =
  if List.length label_names <> List.length values then
    invalid_arg
      (Printf.sprintf "%s: expected %d label value(s), got %d" what
         (List.length label_names) (List.length values))

(* --- Counter ---------------------------------------------------------- *)

module Counter = struct
  type metric = counter_m
  type series = ccell shards

  let v ?(registry = default) ?(help = "") ?(labels = []) name =
    register registry ~name
      ~make:(fun () ->
        MC
          {
            c_name = name;
            c_help = help;
            c_label_names = labels;
            c_lock = Mutex.create ();
            c_series = [];
          })
      ~existing:(function
        | MC c -> c
        | m ->
            invalid_arg
              (Printf.sprintf "Metrics.Counter.v: %s already registered as %s"
                 name
                 (match m with MG _ -> "gauge" | _ -> "histogram")))

  let series c values =
    check_labels ~what:("counter " ^ c.c_name) c.c_label_names values;
    let cell () =
      make_shards ~lock:c.c_lock ~fresh:(fun () -> { c_n = 0 })
    in
    Mutex.lock c.c_lock;
    let s =
      match List.assoc_opt values c.c_series with
      | Some s -> s
      | None ->
          let s = cell () in
          c.c_series <- (values, s) :: c.c_series;
          s
    in
    Mutex.unlock c.c_lock;
    s

  let inc ?(by = 1) s =
    if by < 0 then invalid_arg "Metrics.Counter.inc: negative increment";
    if enabled () then begin
      let cell = Domain.DLS.get s.key in
      cell.c_n <- cell.c_n + by
    end

  let inc0 ?by c = inc ?by (series c [])
end

(* --- Gauge ------------------------------------------------------------ *)

module Gauge = struct
  type metric = gauge_m
  type series = gcell

  let v ?(registry = default) ?(help = "") ?(labels = []) name =
    register registry ~name
      ~make:(fun () ->
        MG
          {
            g_name = name;
            g_help = help;
            g_label_names = labels;
            g_lock = Mutex.create ();
            g_series = [];
          })
      ~existing:(function
        | MG g -> g
        | m ->
            invalid_arg
              (Printf.sprintf "Metrics.Gauge.v: %s already registered as %s"
                 name
                 (match m with MC _ -> "counter" | _ -> "histogram")))

  let series g values =
    check_labels ~what:("gauge " ^ g.g_name) g.g_label_names values;
    Mutex.lock g.g_lock;
    let s =
      match List.assoc_opt values g.g_series with
      | Some s -> s
      | None ->
          let s = { g_v = 0. } in
          g.g_series <- (values, s) :: g.g_series;
          s
    in
    Mutex.unlock g.g_lock;
    s

  let set s v = if enabled () then s.g_v <- v
  let add s v = if enabled () then s.g_v <- s.g_v +. v
  let value s = s.g_v
  let set0 g v = set (series g []) v
  let add0 g v = add (series g []) v
  let value0 g = value (series g [])
end

(* --- Histogram -------------------------------------------------------- *)

module Histogram = struct
  type metric = histogram_m
  type series = histogram_m * hcell shards

  (* Powers of 4 from 1 µs: 1e-6 .. ~6.9e4 seconds in 19 bounds. *)
  let default_buckets = Array.init 19 (fun i -> 1e-6 *. (4. ** float_of_int i))

  let v ?(registry = default) ?(help = "") ?(labels = [])
      ?(buckets = default_buckets) name =
    if Array.length buckets = 0 then
      invalid_arg "Metrics.Histogram.v: empty buckets";
    Array.iteri
      (fun i b ->
        if i > 0 && buckets.(i - 1) >= b then
          invalid_arg "Metrics.Histogram.v: buckets not strictly increasing")
      buckets;
    register registry ~name
      ~make:(fun () ->
        MH
          {
            h_name = name;
            h_help = help;
            h_label_names = labels;
            h_bounds = Array.copy buckets;
            h_lock = Mutex.create ();
            h_series = [];
          })
      ~existing:(function
        | MH h -> h
        | m ->
            invalid_arg
              (Printf.sprintf
                 "Metrics.Histogram.v: %s already registered as %s" name
                 (match m with MC _ -> "counter" | _ -> "gauge")))

  let series h values =
    check_labels ~what:("histogram " ^ h.h_name) h.h_label_names values;
    Mutex.lock h.h_lock;
    let s =
      match List.assoc_opt values h.h_series with
      | Some s -> s
      | None ->
          let nb = Array.length h.h_bounds + 1 in
          let s =
            make_shards ~lock:h.h_lock ~fresh:(fun () ->
                { h_sum = 0.; h_buckets = Array.make nb 0 })
          in
          h.h_series <- (values, s) :: h.h_series;
          s
    in
    Mutex.unlock h.h_lock;
    (h, s)

  let observe (h, s) x =
    if enabled () then begin
      let cell = Domain.DLS.get s.key in
      let bounds = h.h_bounds in
      let n = Array.length bounds in
      let i = ref 0 in
      while !i < n && x > bounds.(!i) do
        incr i
      done;
      cell.h_buckets.(!i) <- cell.h_buckets.(!i) + 1;
      cell.h_sum <- cell.h_sum +. x
    end

  let observe0 h x = observe (series h []) x
end

(* --- scrape ----------------------------------------------------------- *)

let label_pairs names values = List.combine names values

let scrape_counter (c : counter_m) =
  Mutex.lock c.c_lock;
  let series =
    List.map
      (fun (values, (s : ccell shards)) ->
        let total = List.fold_left (fun a cell -> a + cell.c_n) 0 !(s.cells) in
        (values, total))
      c.c_series
  in
  Mutex.unlock c.c_lock;
  {
    f_name = c.c_name;
    f_help = c.c_help;
    f_kind = "counter";
    f_series =
      List.map
        (fun (values, n) -> (label_pairs c.c_label_names values, Counter n))
        (List.sort compare series);
  }

let scrape_gauge (g : gauge_m) =
  Mutex.lock g.g_lock;
  let series = List.map (fun (values, s) -> (values, s.g_v)) g.g_series in
  Mutex.unlock g.g_lock;
  {
    f_name = g.g_name;
    f_help = g.g_help;
    f_kind = "gauge";
    f_series =
      List.map
        (fun (values, v) -> (label_pairs g.g_label_names values, Gauge v))
        (List.sort compare series);
  }

let scrape_histogram (h : histogram_m) =
  Mutex.lock h.h_lock;
  let series =
    List.map
      (fun (values, (s : hcell shards)) ->
        let nb = Array.length h.h_bounds + 1 in
        let buckets = Array.make nb 0 in
        let sum = ref 0. in
        List.iter
          (fun cell ->
            sum := !sum +. cell.h_sum;
            Array.iteri
              (fun i n -> buckets.(i) <- buckets.(i) + n)
              cell.h_buckets)
          !(s.cells);
        (* Count derived from the buckets, never a separate cell: keeps
           count == Σ buckets exact under a raced scrape. *)
        let count = Array.fold_left ( + ) 0 buckets in
        (values, (count, !sum, buckets)))
      h.h_series
  in
  Mutex.unlock h.h_lock;
  {
    f_name = h.h_name;
    f_help = h.h_help;
    f_kind = "histogram";
    f_series =
      List.map
        (fun (values, (count, sum, per_bucket)) ->
          (* cumulative counts, with the +inf bound last *)
          let cum = ref 0 in
          let buckets =
            Array.mapi
              (fun i n ->
                cum := !cum + n;
                let bound =
                  if i < Array.length h.h_bounds then h.h_bounds.(i)
                  else infinity
                in
                (bound, !cum))
              per_bucket
          in
          ( label_pairs h.h_label_names values,
            Histogram { count; sum; buckets } ))
        (List.sort (fun (a, _) (b, _) -> compare a b) series);
  }

let scrape reg =
  Mutex.lock reg.lock;
  let metrics = reg.metrics in
  Mutex.unlock reg.lock;
  metrics
  |> List.map (function
       | MC c -> scrape_counter c
       | MG g -> scrape_gauge g
       | MH h -> scrape_histogram h)
  |> List.sort (fun a b -> compare a.f_name b.f_name)

let find families name labels =
  match List.find_opt (fun f -> f.f_name = name) families with
  | None -> None
  | Some f -> List.assoc_opt labels f.f_series

(* --- quantiles -------------------------------------------------------- *)

let quantile v q =
  match v with
  | Histogram { count; buckets; _ } when count > 0 ->
      let q = Float.max 0. (Float.min 1. q) in
      let rank = q *. float_of_int count in
      let rec walk i lower prev_cum =
        if i >= Array.length buckets then None
        else
          let bound, cum = buckets.(i) in
          if float_of_int cum >= rank || i = Array.length buckets - 1 then
            if bound = infinity then
              (* overflow bucket: clamp to the last finite bound *)
              Some lower
            else begin
              let in_bucket = cum - prev_cum in
              if in_bucket = 0 then Some bound
              else
                let frac =
                  (rank -. float_of_int prev_cum) /. float_of_int in_bucket
                in
                Some (lower +. ((bound -. lower) *. Float.max 0. frac))
            end
          else walk (i + 1) bound cum
      in
      walk 0 0. 0
  | _ -> None

(* --- JSON ------------------------------------------------------------- *)

let labels_json labels =
  J.Obj (List.map (fun (k, v) -> (k, J.String v)) labels)

let value_members = function
  | Counter n -> [ ("value", J.Int n) ]
  | Gauge v -> [ ("value", J.Float v) ]
  | Histogram { count; sum; buckets } ->
      [
        ("count", J.Int count);
        ("sum", J.Float sum);
        ( "buckets",
          J.List
            (Array.to_list buckets
            |> List.map (fun (bound, cum) ->
                   J.Obj
                     [
                       ( "le",
                         if bound = infinity then J.String "+Inf"
                         else J.Float bound );
                       ("count", J.Int cum);
                     ])) );
      ]

let to_json reg =
  J.List
    (List.map
       (fun f ->
         J.Obj
           [
             ("name", J.String f.f_name);
             ("kind", J.String f.f_kind);
             ("help", J.String f.f_help);
             ( "series",
               J.List
                 (List.map
                    (fun (labels, v) ->
                      J.Obj
                        (("labels", labels_json labels) :: value_members v))
                    f.f_series) );
           ])
       (scrape reg))
