module Parallel = Ctam_util.Parallel

let maps_total =
  Metrics.Counter.v ~help:"Parallel.map invocations that ran multi-domain"
    "ctam_parallel_maps_total"

let tasks_total =
  Metrics.Counter.v ~help:"Tasks executed by the domain pool"
    "ctam_parallel_tasks_total"

let busy_seconds =
  Metrics.Gauge.v ~help:"Seconds domains spent running tasks (sum)"
    "ctam_parallel_busy_seconds_total"

let capacity_seconds =
  Metrics.Gauge.v
    ~help:"Pool capacity: wall-clock x domains, summed over maps"
    "ctam_parallel_capacity_seconds_total"

let utilization =
  Metrics.Gauge.v ~help:"busy/capacity of the most recent Parallel.map"
    "ctam_parallel_pool_utilization"

let domain_tasks =
  Metrics.Histogram.v
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. |]
    ~help:"Tasks one domain ran during one Parallel.map"
    "ctam_parallel_domain_tasks"

let record ~domains ~tasks ~wall_seconds ~busy_per_domain ~tasks_per_domain =
  Metrics.Counter.inc0 maps_total;
  Metrics.Counter.inc0 ~by:tasks tasks_total;
  let busy = Array.fold_left ( +. ) 0. busy_per_domain in
  let capacity = wall_seconds *. float_of_int domains in
  Metrics.Gauge.add0 busy_seconds busy;
  Metrics.Gauge.add0 capacity_seconds capacity;
  if capacity > 0. then Metrics.Gauge.set0 utilization (busy /. capacity);
  let dt = Metrics.Histogram.series domain_tasks [] in
  Array.iter
    (fun n -> Metrics.Histogram.observe dt (float_of_int n))
    tasks_per_domain

let monitor = { Parallel.now = Unix.gettimeofday; record }

let install () = Parallel.set_monitor (Some monitor)
let uninstall () = Parallel.set_monitor None

let pool_totals () =
  (Metrics.Gauge.value0 busy_seconds, Metrics.Gauge.value0 capacity_seconds)

let pool_utilization () =
  let busy, cap = pool_totals () in
  if cap > 0. then busy /. cap else 0.
