let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let labels_fragment labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

let render ?(registry = Metrics.default) () =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s;
                                   Buffer.add_char b '\n') fmt in
  List.iter
    (fun (f : Metrics.family) ->
      if f.Metrics.f_help <> "" then
        line "# HELP %s %s" f.f_name (escape_help f.f_help);
      line "# TYPE %s %s" f.f_name f.f_kind;
      List.iter
        (fun (labels, v) ->
          match v with
          | Metrics.Counter n -> line "%s%s %d" f.f_name (labels_fragment labels) n
          | Metrics.Gauge g ->
              line "%s%s %s" f.f_name (labels_fragment labels) (float_repr g)
          | Metrics.Histogram { count; sum; buckets } ->
              Array.iter
                (fun (bound, cum) ->
                  line "%s_bucket%s %d" f.f_name
                    (labels_fragment (labels @ [ ("le", float_repr bound) ]))
                    cum)
                buckets;
              line "%s_sum%s %s" f.f_name (labels_fragment labels)
                (float_repr sum);
              line "%s_count%s %d" f.f_name (labels_fragment labels) count)
        f.f_series)
    (Metrics.scrape registry);
  Buffer.contents b

let write ?registry path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (render ?registry ()))
