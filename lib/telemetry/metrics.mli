(** A dependency-free metrics registry: labelled counters, gauges and
    histograms for observing ctamap itself (not the simulated machine —
    that is {!Ctam_cachesim.Probe}'s job).

    Design constraints, in order:

    {ol
    {- {b recording must be contention-free} — [Parallel.map] workers
       record from their own domains, so counter and histogram series
       keep one cell per domain (via [Domain.DLS]) and only merge the
       shards when scraped.  Incrementing is a domain-local load and
       store: no atomics, no locks, no allocation;}
    {- {b scrapes are deterministic} — families sort by metric name,
       series by label values, and counter merges are integer sums, so
       two scrapes of the same state render byte-identically;}
    {- {b recording can be disabled globally} — {!set_enabled} [false]
       (or [CTAM_TELEMETRY=0] in the environment) turns every record
       operation into a cheap flag test, and instrumented hot paths are
       expected to skip even their clock reads when disabled.}}

    Registration (creating a metric or resolving a labelled series) may
    take a lock and allocate; call sites resolve series once and keep
    the handle. *)

type t
(** A registry: a mutable set of metric families. *)

val create : unit -> t

val default : t
(** The process-wide registry all convenience constructors default
    to. *)

(** {1 Global enable switch} *)

val env_var : string
(** ["CTAM_TELEMETRY"]: set to [0]/[off]/[false] to start disabled. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Flips the global recording switch ({!enabled} starts [true] unless
    {!env_var} says otherwise).  When disabled, [inc]/[set]/[observe]
    are no-ops, so a scrape sees exactly the state from when recording
    was last enabled. *)

(** {1 Scrape model}

    What a registry looks like from the outside: a sorted list of
    families, each with sorted labelled series. *)

type labels = (string * string) list

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : float;
      buckets : (float * int) array;
          (** (upper bound, cumulative count); the final bound is
              [infinity] and its count equals [count]. *)
    }

type family = {
  f_name : string;
  f_help : string;
  f_kind : string;  (** "counter" | "gauge" | "histogram" *)
  f_series : (labels * value) list;
}

val scrape : t -> family list
(** Merged snapshot, deterministically ordered (families by name,
    series by label values). *)

val to_json : t -> Ctam_util.Json.t
(** [{"metrics": [{name, kind, help, series: [{labels, ...value}]}]}]'s
    inner list — one object per family; see {!Profile.snapshot_json}
    for the full [--metrics-out] payload. *)

val quantile : value -> float -> float option
(** [quantile (Histogram _) q] estimates the [q]-quantile (0..1) by
    linear interpolation inside the covering bucket; [None] on empty
    histograms or non-histogram values.  Estimates in the overflow
    bucket clamp to the last finite bound. *)

val find : family list -> string -> labels -> value option
(** Lookup helper for tests and tools: the series of family [name]
    with exactly [labels]. *)

(** {1 Counters} — monotone integer sums. *)

module Counter : sig
  type metric
  type series

  val v :
    ?registry:t -> ?help:string -> ?labels:string list -> string -> metric
  (** [v name] registers (or returns the already-registered) counter
      family.  [labels] are the label {e names}; a family with no
      label names has a single anonymous series. *)

  val series : metric -> string list -> series
  (** Resolve the series for these label {e values} (memoized).
      @raise Invalid_argument on label-count mismatch. *)

  val inc : ?by:int -> series -> unit
  (** Add [by] (default 1, must be [>= 0]) to this domain's shard. *)

  val inc0 : ?by:int -> metric -> unit
  (** {!inc} on the anonymous series of a label-less family. *)
end

(** {1 Gauges} — last-written floats (set from one domain at a time;
    the merge is "latest write wins"). *)

module Gauge : sig
  type metric
  type series

  val v :
    ?registry:t -> ?help:string -> ?labels:string list -> string -> metric

  val series : metric -> string list -> series
  val set : series -> float -> unit
  val add : series -> float -> unit
  val value : series -> float
  val set0 : metric -> float -> unit
  val add0 : metric -> float -> unit
  val value0 : metric -> float
end

(** {1 Histograms} — bucketed float observations. *)

module Histogram : sig
  type metric
  type series

  val default_buckets : float array
  (** Fixed log-scale bounds (powers of 4 from 1 µs), sized for
      wall-clock seconds: 1e-6, 4e-6, …, ~6.9e4.  An implicit
      [+inf] overflow bucket always follows the last bound. *)

  val v :
    ?registry:t ->
    ?help:string ->
    ?labels:string list ->
    ?buckets:float array ->
    string ->
    metric
  (** @raise Invalid_argument if [buckets] is empty or not strictly
      increasing. *)

  val series : metric -> string list -> series
  val observe : series -> float -> unit
  val observe0 : metric -> float -> unit
end
