module J = Ctam_util.Json

let now = Unix.gettimeofday

let phase_seconds =
  Metrics.Histogram.v ~labels:[ "phase" ]
    ~help:"Wall-clock seconds per compiler/simulator pipeline phase"
    "ctam_phase_seconds"

let phase_minor_words =
  Metrics.Counter.v ~labels:[ "phase" ]
    ~help:"Minor-heap words allocated inside each phase"
    "ctam_phase_minor_words_total"

let phase_major_words =
  Metrics.Counter.v ~labels:[ "phase" ]
    ~help:"Major-heap words allocated inside each phase"
    "ctam_phase_major_words_total"

let record_phase name seconds =
  if Metrics.enabled () then
    Metrics.Histogram.observe
      (Metrics.Histogram.series phase_seconds [ name ])
      seconds

let phase name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let g0 = Gc.quick_stat () in
    let t0 = now () in
    let record () =
      let dt = now () -. t0 in
      let g1 = Gc.quick_stat () in
      Metrics.Histogram.observe
        (Metrics.Histogram.series phase_seconds [ name ])
        dt;
      let words c0 c1 = max 0 (int_of_float (c1 -. c0)) in
      Metrics.Counter.inc
        ~by:(words g0.Gc.minor_words g1.Gc.minor_words)
        (Metrics.Counter.series phase_minor_words [ name ]);
      Metrics.Counter.inc
        ~by:(words g0.Gc.major_words g1.Gc.major_words)
        (Metrics.Counter.series phase_major_words [ name ])
    in
    match f () with
    | r ->
        record ();
        r
    | exception e ->
        record ();
        raise e
  end

let gc_json () =
  let s = Gc.quick_stat () in
  J.Obj
    [
      ("minor_words", J.Float s.Gc.minor_words);
      ("major_words", J.Float s.Gc.major_words);
      ("promoted_words", J.Float s.Gc.promoted_words);
      ("minor_collections", J.Int s.Gc.minor_collections);
      ("major_collections", J.Int s.Gc.major_collections);
      ("heap_words", J.Int s.Gc.heap_words);
      ("compactions", J.Int s.Gc.compactions);
    ]

let gc_delta_json (a : Gc.stat) (b : Gc.stat) =
  J.Obj
    [
      ("minor_words", J.Float (b.Gc.minor_words -. a.Gc.minor_words));
      ("major_words", J.Float (b.Gc.major_words -. a.Gc.major_words));
      ("promoted_words", J.Float (b.Gc.promoted_words -. a.Gc.promoted_words));
      ( "minor_collections",
        J.Int (b.Gc.minor_collections - a.Gc.minor_collections) );
      ( "major_collections",
        J.Int (b.Gc.major_collections - a.Gc.major_collections) );
      ("heap_words", J.Int b.Gc.heap_words);
    ]

let snapshot_json ?(registry = Metrics.default) ~version ~telemetry_version ()
    =
  J.Obj
    [
      ("ctam_metrics_version", J.Int telemetry_version);
      ("version", J.String version);
      ("gc", gc_json ());
      ("metrics", Metrics.to_json registry);
    ]

let write_snapshot ?registry ~version ~telemetry_version path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (J.to_string (snapshot_json ?registry ~version ~telemetry_version ()));
      output_char oc '\n')
