(** The paper's comparison points (§4.1).

    - [Base]: the original parallel code — iterations split into
      contiguous equal chunks (lexicographic order), each core runs its
      chunk in program order.
    - [Base+]: the same chunks, but each core's iterations are
      reordered by locality-driven loop permutation plus iteration-
      space tiling — the state-of-the-art intra-core locality scheme.
    - [Local]: the same (default) distribution as Base, but the
      iteration groups of each chunk are scheduled with the Figure 7
      algorithm — isolating the benefit of local reorganization.

    Base, Base+ and Topology-Aware execute the same iteration sets in
    parallel; only partitioning and order differ (as in the paper). *)

open Ctam_poly
open Ctam_arch
open Ctam_ir
open Ctam_blocks

(** Contiguous equal partition of a nest's iterations over [n] cores,
    in lexicographic order. *)
val block_partition : n:int -> Nest.t -> int array list array

(** Same partition expressed as itersets (for group intersection). *)
val block_partition_sets : n:int -> Iter_group.t array -> Iterset.t array

(** Restrict groups to the default per-core chunks: each core receives
    the nonempty intersections of every group with its chunk (split
    parts keep their origin id, so the dependence graph still applies).
    This is the input Local feeds to the scheduler. *)
val default_assignment :
  topo:Topology.t -> Iter_group.t array -> Iter_group.t list array
