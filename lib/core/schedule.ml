open Ctam_arch
open Ctam_blocks
open Ctam_deps

type t = {
  rounds : Iter_group.t list array list;
  num_cores : int;
}

let default_alpha = 0.5
let default_beta = 0.5

(* Pending groups live in a fixed array (assignment order) with
   tombstones: picking a group clears one flag instead of rebuilding a
   list, and [first] skips the dead prefix.  Scans still visit the
   array in assignment order, so score ties resolve exactly as the
   seed's list traversal did. *)
type core_state = {
  groups : Iter_group.t array;          (* assignment order, fixed *)
  alive : bool array;                   (* still pending? *)
  mutable first : int;                  (* lowest possibly-alive index *)
  mutable live : int;                   (* number of alive entries *)
  mutable last : Iter_group.t option;   (* last group ever scheduled here *)
  mutable iters : int;                  (* total iterations scheduled *)
}

let run ?(alpha = default_alpha) ?(beta = default_beta) ?quantum topo
    assignment dg =
  let n = topo.Topology.num_cores in
  if Array.length assignment <> n then invalid_arg "Schedule.run: assignment";
  let total_iters =
    Array.fold_left
      (fun acc gs ->
        List.fold_left (fun acc g -> acc + Iter_group.size g) acc gs)
      0 assignment
  in
  (* Rounds advance in fixed-size work quanta so the horizontal
     (cross-core) affinity term tracks concurrent progress; ~32 rounds
     keeps barrier overhead negligible while preserving alignment. *)
  let quantum =
    match quantum with
    | Some q ->
        if q < 1 then invalid_arg "Schedule.run: quantum";
        q
    | None -> max 1 (total_iters / (max 1 n) / 32)
  in
  (* Sharing domains at the first shared cache level; cores outside any
     shared cache form singleton domains. *)
  let domains =
    match Topology.first_shared_level topo with
    | Some l ->
        let doms = Topology.sharing_domains topo l in
        let covered = List.concat doms in
        doms
        @ (List.init n Fun.id
          |> List.filter (fun c -> not (List.mem c covered))
          |> List.map (fun c -> [ c ]))
    | None -> List.init n (fun c -> [ c ])
  in
  let states =
    Array.map
      (fun groups ->
        let arr = Array.of_list groups in
        {
          groups = arr;
          alive = Array.make (Array.length arr) true;
          first = 0;
          live = Array.length arr;
          last = None;
          iters = 0;
        })
      assignment
  in
  (* Origin-granularity dependence tracking: a group unit is legal when
     every predecessor origin is fully scheduled in earlier rounds. *)
  let norigins = Dep_graph.num_nodes dg in
  let origin_total = Array.make (max 1 norigins) 0 in
  let origin_done_prev = Array.make (max 1 norigins) 0 in
  let origin_done_curr = Array.make (max 1 norigins) 0 in
  Array.iter
    (List.iter (fun g ->
         if g.Iter_group.id < norigins then
           origin_total.(g.Iter_group.id) <- origin_total.(g.Iter_group.id) + 1))
    assignment;
  let legal g =
    g.Iter_group.id >= norigins
    || List.for_all
         (fun p -> origin_done_prev.(p) >= origin_total.(p))
         (Dep_graph.preds dg g.Iter_group.id)
  in
  let score ~x ~y g =
    let h =
      match x with
      | Some gx -> alpha *. float_of_int (Iter_group.dot g gx)
      | None -> 0.
    in
    let v =
      match y with
      | Some gy -> beta *. float_of_int (Iter_group.dot g gy)
      | None -> 0.
    in
    h +. v
  in
  (* Pick the best legal pending group of [st] under scorer [f];
     remove and return it. *)
  let take st f =
    (* Ties prefer the earliest iterations (sequential order), which
       preserves spatial locality when affinity cannot discriminate. *)
    let m = Array.length st.groups in
    while st.first < m && not st.alive.(st.first) do
      st.first <- st.first + 1
    done;
    let best = ref None in
    for i = st.first to m - 1 do
      if st.alive.(i) then begin
        let g = st.groups.(i) in
        if legal g then begin
          let s = f g in
          let key = Ctam_poly.Iterset.min_key g.Iter_group.iters in
          match !best with
          | Some (_, _, s', k') when s' > s || (s' = s && k' <= key) -> ()
          | _ -> best := Some (i, g, s, key)
        end
      end
    done;
    match !best with
    | None -> None
    | Some (i, g, _, _) ->
        st.alive.(i) <- false;
        st.live <- st.live - 1;
        Some g
  in
  let least_ones st =
    take st (fun g -> -.float_of_int (Bitset.count g.Iter_group.tag))
  in
  let rounds = ref [] in
  let any_pending () =
    Array.exists (fun st -> st.live > 0) states
  in
  let round_index = ref 0 in
  let guard = ref 0 in
  while any_pending () && !guard < 1_000_000 do
    incr guard;
    let round = Array.make n [] in
    let sched c g =
      let st = states.(c) in
      st.last <- Some g;
      st.iters <- st.iters + Iter_group.size g;
      round.(c) <- g :: round.(c);
      if g.Iter_group.id < norigins then
        origin_done_curr.(g.Iter_group.id) <-
          origin_done_curr.(g.Iter_group.id) + 1
    in
    List.iter
      (fun dom ->
        let dom = Array.of_list dom in
        let m = Array.length dom in
        Array.iteri
          (fun di c ->
            let st = states.(c) in
            if st.live > 0 then begin
              let prev_last () =
                if di = 0 then None else states.(dom.(di - 1)).last
              in
              ignore m;
              (* Each core schedules legal groups in affinity order up
                 to one work quantum per round (Figure 8's one-group
                 rounds, generalized to balanced work quanta). *)
              let round_start = st.iters in
              let first_pick =
                if !round_index = 0 && di = 0 && st.last = None then
                  least_ones st
                else
                  take st (fun g ->
                      score ~x:(prev_last ()) ~y:st.last g)
              in
              (match first_pick with Some g -> sched c g | None -> ());
              let continue = ref (first_pick <> None) in
              while
                !continue && st.live > 0
                && st.iters - round_start < quantum
              do
                match take st (fun g -> score ~x:(prev_last ()) ~y:st.last g) with
                | Some g -> sched c g
                | None -> continue := false
              done
            end)
          dom)
      domains;
    (* Barrier: everything scheduled this round becomes visible. *)
    Array.iteri
      (fun o c ->
        origin_done_prev.(o) <- origin_done_prev.(o) + c;
        origin_done_curr.(o) <- 0)
      (Array.copy origin_done_curr);
    let round = Array.map List.rev round in
    if Array.exists (fun l -> l <> []) round then
      rounds := round :: !rounds;
    incr round_index
  done;
  if any_pending () then
    (* Should be impossible (the DG is acyclic over origins); fail loud
       rather than drop iterations. *)
    invalid_arg "Schedule.run: could not schedule all groups";
  { rounds = List.rev !rounds; num_cores = n }

let per_core t =
  let acc = Array.make t.num_cores [] in
  List.iter
    (fun round ->
      Array.iteri (fun c gs -> acc.(c) <- List.rev_append (List.rev gs) acc.(c)) round)
    (List.rev t.rounds);
  acc

let num_rounds t = List.length t.rounds

let respects_deps t dg =
  let norigins = Dep_graph.num_nodes dg in
  let total = Array.make (max 1 norigins) 0 in
  List.iter
    (fun round ->
      Array.iter
        (List.iter (fun g ->
             if g.Iter_group.id < norigins then
               total.(g.Iter_group.id) <- total.(g.Iter_group.id) + 1))
        round)
    t.rounds;
  let done_prev = Array.make (max 1 norigins) 0 in
  let ok = ref true in
  List.iter
    (fun round ->
      let this_round = Array.make (max 1 norigins) 0 in
      Array.iter
        (List.iter (fun g ->
             let o = g.Iter_group.id in
             if o < norigins then begin
               List.iter
                 (fun p -> if done_prev.(p) < total.(p) then ok := false)
                 (Dep_graph.preds dg o);
               this_round.(o) <- this_round.(o) + 1
             end))
        round;
      Array.iteri (fun o c -> done_prev.(o) <- done_prev.(o) + c) this_round)
    t.rounds;
  !ok
