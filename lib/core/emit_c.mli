(** C code generation: materialize a compiled mapping as a complete,
    compilable OpenMP C program.

    This is the back end the paper feeds from the Omega library's
    [codegen]: each core's iteration groups become explicit loop nests
    (box decompositions of their iteration sets), cores are OpenMP
    threads selected by [omp_get_thread_num()], and scheduling rounds
    are separated by [#pragma omp barrier].

    The emitted program is self-contained: array definitions,
    initialization, the mapped parallel nests, and a checksum print so
    two mappings of the same program can be diffed for semantic
    equivalence (the bodies are sums, so any iteration order agrees). *)

(** [program c] renders the whole compiled mapping. *)
val program : Mapping.compiled -> string

(** [nest_for_core c ~plan ~core] renders one core's share of one
    nest's plan as a bare statement list (used by the CLI's [codegen]
    command and the tests). *)
val nest_for_core : plan:Mapping.nest_plan -> core:int -> string
