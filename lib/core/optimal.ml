open Ctam_poly
open Ctam_arch
open Ctam_ir
open Ctam_blocks
open Ctam_cachesim

type result = { stats : Stats.t; evaluations : int; exact : bool }

let search ?(params = Mapping.default_params) ?config ?(budget = 200)
    ?(exhaustive_limit = 20_000) ~machine program =
  let nest =
    match Program.parallel_nests program with
    | [ nest ] -> nest
    | nest :: _ ->
        Ctam_telemetry.Log.warn ~src:"optimal" (fun () ->
            Printf.sprintf "multiple parallel nests; optimizing %s"
              nest.Nest.name);
        nest
    | [] -> invalid_arg "Optimal.search: no parallel nest"
  in
  let _grouping, groups, dag =
    Mapping.grouping_for ~params ~machine program nest
  in
  let n = machine.Topology.num_cores in
  (* Pre-split very large groups so whole-group assignment is not
     structurally unbalanced (parts keep their origin id, so the
     dependence graph still applies at origin granularity). *)
  let groups =
    let total =
      Array.fold_left (fun a g -> a + Iter_group.size g) 0 groups
    in
    let cap = max 1 (total / (4 * n)) in
    let rec split g =
      if Iter_group.size g <= cap then [ g ]
      else
        let a, b = Iter_group.split g in
        split a @ split b
    in
    Array.of_list (List.concat_map split (Array.to_list groups))
  in
  let k = Array.length groups in
  let _, layout =
    Block_map.for_program
      ~block_size:params.Mapping.block_size
      ~line:
        (match Topology.caches machine with
        | p :: _ -> p.Topology.line
        | [] -> 64)
      program
  in
  let evaluations = ref 0 in
  let h = Hierarchy.create machine in
  let evaluate assignment =
    incr evaluations;
    let per_core = Array.make n [] in
    (* Keep group-id order within a core for determinism. *)
    for g = k - 1 downto 0 do
      per_core.(assignment.(g)) <- groups.(g) :: per_core.(assignment.(g))
    done;
    let sched =
      Schedule.run ~alpha:params.Mapping.alpha ~beta:params.Mapping.beta
        machine per_core dag
    in
    let phases =
      List.map
        (fun round -> Array.map (fun gs -> Trace.of_groups layout nest gs) round)
        sched.Schedule.rounds
    in
    Engine.run ?config h phases
  in
  (* Seed: the Topology-Aware distribution, reduced to whole parts by
     attributing each distributed fragment (largest first) to the part
     whose key range contains its first iteration. *)
  let seed () =
    let dist =
      Distribute.run ~balance_threshold:params.Mapping.balance_threshold
        machine groups
    in
    (* Part boundaries in iteration-key order. *)
    let bounds =
      Array.mapi (fun i g -> (Iterset.min_key g.Iter_group.iters, i)) groups
    in
    Array.sort compare bounds;
    let part_of_key key =
      (* Largest boundary <= key. *)
      let lo = ref 0 and hi = ref (Array.length bounds - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if fst bounds.(mid) <= key then lo := mid else hi := mid - 1
      done;
      snd bounds.(!lo)
    in
    let assignment = Array.make k 0 in
    let best_count = Array.make k (-1) in
    Array.iteri
      (fun core gs ->
        List.iter
          (fun g ->
            let part = part_of_key (Iterset.min_key g.Iter_group.iters) in
            let c = Iter_group.size g in
            if c > best_count.(part) then begin
              best_count.(part) <- c;
              assignment.(part) <- core
            end)
          gs)
      dist;
    assignment
  in
  let total_assignments =
    let rec pow acc i = if i = 0 then acc else
      if acc > exhaustive_limit then acc else pow (acc * n) (i - 1)
    in
    pow 1 k
  in
  if total_assignments <= exhaustive_limit then begin
    (* Exhaustive enumeration. *)
    let assignment = Array.make k 0 in
    let best_cycles = ref max_int in
    let best_stats = ref None in
    let rec go g =
      if g = k then begin
        let stats = evaluate assignment in
        if stats.Stats.cycles < !best_cycles then begin
          best_cycles := stats.Stats.cycles;
          best_stats := Some stats
        end
      end
      else
        for c = 0 to n - 1 do
          assignment.(g) <- c;
          go (g + 1)
        done
    in
    go 0;
    match !best_stats with
    | Some stats -> { stats; evaluations = !evaluations; exact = true }
    | None -> assert false
  end
  else begin
    (* First-improvement local search over relocations, seeded with the
       Topology-Aware assignment; the result can only improve on it. *)
    let assignment = seed () in
    let current = ref (evaluate assignment) in
    let rng = Random.State.make [| 0x5eed; k; n |] in
    let continue = ref true in
    while !continue && !evaluations < budget do
      continue := false;
      (* Random order over (group, core) relocations. *)
      let moves =
        Array.init (k * n) (fun i -> (i / n, i mod n))
      in
      for i = Array.length moves - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let t = moves.(i) in
        moves.(i) <- moves.(j);
        moves.(j) <- t
      done;
      let mi = ref 0 in
      while !mi < Array.length moves && !evaluations < budget do
        let g, c = moves.(!mi) in
        incr mi;
        if assignment.(g) <> c then begin
          let old = assignment.(g) in
          assignment.(g) <- c;
          let stats = evaluate assignment in
          if stats.Stats.cycles < !current.Stats.cycles then begin
            current := stats;
            continue := true
          end
          else assignment.(g) <- old
        end
      done
    done;
    { stats = !current; evaluations = !evaluations; exact = false }
  end
