(** Loop permutation: the linear-transformation half of Base+.

    Chooses the loop order that maximizes spatial locality: the index
    that advances addresses by the smallest stride across all
    references should iterate innermost (unit-stride heuristic, the
    classic locality-driven permutation of the literature the paper
    cites for its Base+ configuration). *)

open Ctam_ir

(** [best_order layout nest] returns a permutation [p] of the nest's
    dimensions, outermost first: dimension [p.(depth-1)] has the
    smallest average address stride and runs innermost. *)
val best_order : Layout.t -> Nest.t -> int array

(** [stride layout nest j] is the mean absolute byte-stride that
    incrementing index [j] by one causes over the nest's references. *)
val stride : Layout.t -> Nest.t -> int -> float

(** [sort_iters perm iters] orders iterations lexicographically under
    the permuted index order. *)
val sort_iters : int array -> int array list -> int array list

(** Validity: a permutation must be a bijection on [0..d-1].
    @raise Invalid_argument otherwise (used by {!sort_iters}). *)
val check_perm : int -> int array -> unit
