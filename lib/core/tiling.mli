(** Iteration-space tiling (blocking): the second half of Base+.

    Reorders a core's iterations so that all iterations of one tile run
    before the next tile starts, improving temporal reuse in outer
    dimensions.  The tile size is chosen so a tile's data footprint
    fits in half the L1 cache (the paper selects the best-performing
    size by search; the half-L1 rule is the standard model it
    approximates — see {!choose_tile} and the bench sweep). *)

open Ctam_ir

(** [footprint_per_iter layout nest] estimates bytes of distinct data
    touched per iteration (counts each reference once). *)
val footprint_per_iter : Layout.t -> Nest.t -> int

(** [choose_tile ~l1_bytes layout nest] returns a uniform tile edge
    for all dimensions: the largest [e] in [1, 256] whose tile
    footprint [e^depth * footprint_per_iter] stays within half the L1
    capacity (or a single iteration when even one exceeds it).  Nests
    of any depth — including degenerate one-point nests — yield an
    edge of at least 1. *)
val choose_tile : l1_bytes:int -> Layout.t -> Nest.t -> int

(** [apply ~tile ~perm iters] sorts iterations by (permuted tile
    coordinates, then permuted intra-tile coordinates).  [tile.(j)] is
    the tile edge of dimension [j].
    @raise Invalid_argument on bad [perm] or non-positive tile. *)
val apply : tile:int array -> perm:int array -> int array list -> int array list

(** Uniform tile vector helper. *)
val uniform : int -> int -> int array
