open Ctam_ir

let footprint_per_iter layout nest =
  List.fold_left
    (fun acc r ->
      let decl = Layout.decl layout r.Reference.array_name in
      acc + decl.Array_decl.elem_size)
    0 (Nest.refs nest)

let choose_tile ~l1_bytes layout nest =
  let d = max 1 (Nest.depth nest) in
  let per_iter = max 1 (footprint_per_iter layout nest) in
  let budget_iters = max 1 (l1_bytes / 2 / per_iter) in
  (* Largest edge whose d-dimensional tile stays within the iteration
     budget (the old rounded float root could overshoot it, e.g.
     round(sqrt 8) = 3 puts 9 iterations in an 8-iteration budget).
     The growth loop is bounded by the 256 clamp. *)
  let edge = ref 1 in
  let fits e =
    (* e^d <= budget_iters, computed without overflow: divide down. *)
    let rec go k acc = k = 0 || (acc >= e && go (k - 1) (acc / e)) in
    go d budget_iters
  in
  while !edge < 256 && fits (!edge + 1) do
    incr edge
  done;
  !edge

let uniform d t = Array.make d t

let apply ~tile ~perm iters =
  (match iters with
  | [] -> ()
  | iv :: _ ->
      Permute.check_perm (Array.length iv) perm;
      if Array.length tile <> Array.length iv then
        invalid_arg "Tiling.apply: tile length";
      Array.iter (fun t -> if t <= 0 then invalid_arg "Tiling.apply: tile") tile);
  let compare_tiled a b =
    let d = Array.length perm in
    (* Tile coordinates first (in permuted order), then the intra-tile
       coordinates (also permuted). *)
    let rec tiles k =
      if k >= d then intra 0
      else
        let j = perm.(k) in
        let c = compare (a.(j) / tile.(j)) (b.(j) / tile.(j)) in
        if c <> 0 then c else tiles (k + 1)
    and intra k =
      if k >= d then 0
      else
        let j = perm.(k) in
        let c = compare a.(j) b.(j) in
        if c <> 0 then c else intra (k + 1)
    in
    tiles 0
  in
  List.stable_sort compare_tiled iters
