open Ctam_ir

let footprint_per_iter layout nest =
  List.fold_left
    (fun acc r ->
      let decl = Layout.decl layout r.Reference.array_name in
      acc + decl.Array_decl.elem_size)
    0 (Nest.refs nest)

let choose_tile ~l1_bytes layout nest =
  let d = Nest.depth nest in
  let per_iter = max 1 (footprint_per_iter layout nest) in
  let budget_iters = max 1 (l1_bytes / 2 / per_iter) in
  let edge =
    int_of_float (Float.round (float_of_int budget_iters ** (1. /. float_of_int d)))
  in
  max 4 (min 256 edge)

let uniform d t = Array.make d t

let apply ~tile ~perm iters =
  (match iters with
  | [] -> ()
  | iv :: _ ->
      Permute.check_perm (Array.length iv) perm;
      if Array.length tile <> Array.length iv then
        invalid_arg "Tiling.apply: tile length";
      Array.iter (fun t -> if t <= 0 then invalid_arg "Tiling.apply: tile") tile);
  let compare_tiled a b =
    let d = Array.length perm in
    (* Tile coordinates first (in permuted order), then the intra-tile
       coordinates (also permuted). *)
    let rec tiles k =
      if k >= d then intra 0
      else
        let j = perm.(k) in
        let c = compare (a.(j) / tile.(j)) (b.(j) / tile.(j)) in
        if c <> 0 then c else tiles (k + 1)
    and intra k =
      if k >= d then 0
      else
        let j = perm.(k) in
        let c = compare a.(j) b.(j) in
        if c <> 0 then c else intra (k + 1)
    in
    tiles 0
  in
  List.stable_sort compare_tiled iters
