(** End-to-end mapping pipeline: program -> per-core access phases.

    Compiles a program for a target cache topology under one of the
    paper's schemes, producing the phases the simulation engine
    executes.  The topology used by the *mapper* can differ from the
    machine the code runs on ({!port}), which is how the cross-machine
    experiments (Figures 2 and 14) are built. *)

open Ctam_arch
open Ctam_ir
open Ctam_blocks
open Ctam_deps
open Ctam_cachesim

type scheme =
  | Base            (** original parallel code: contiguous chunks *)
  | Base_plus       (** Base + per-core permutation and tiling *)
  | Local           (** Base distribution + Figure 7 scheduling *)
  | Topology_aware  (** Figure 6 distribution, dependence-only order *)
  | Combined        (** Figure 6 distribution + Figure 7 scheduling *)

val scheme_name : scheme -> string
val all_schemes : scheme list

type params = {
  block_size : int;           (** data block size in bytes (paper: 2 KB) *)
  auto_block : bool;          (** derive block size by the §4.1 rule *)
  balance_threshold : float;
  alpha : float;
  beta : float;
  max_groups : int;           (** compile-time cap; coarser units above *)
  dependence_mode : Distribute.dependence_mode;
      (** §3.5.2: synchronize (default) or cluster dependent groups *)
  tile_edge : int option;
      (** force this Base+ tile edge instead of searching candidates
          around {!Tiling.choose_tile} (the autotuner's knob) *)
}

val default_params : params

(** [validate_params p] is [Ok ()] iff the parameters are usable:
    positive [block_size] / [max_groups] / [balance_threshold] /
    [tile_edge] (when given) and non-negative finite [alpha] / [beta].
    {!compile} calls this and raises [Invalid_argument] with the same
    message, so a degenerate schedule can never be produced silently;
    CLI layers call it directly for a clean error instead of an
    exception. *)
val validate_params : params -> (unit, string) result

type nest_info = {
  nest_name : string;
  num_groups : int;           (** after cycle merging *)
  num_rounds : int;           (** scheduling rounds (1 = no barriers) *)
  dep_edges : int;            (** edges in the group dependence graph *)
  used_block_size : int;
}

(** Structural form of one nest's mapping: per-round, per-core group
    lists (one round when no barriers are needed).  Baselines express
    their chunks as pseudo-groups.  Drives code emission
    ({!Emit_c}) and inspection; the [phases] field is the flattened
    simulator form of the same plan. *)
type nest_plan = {
  plan_nest : Nest.t;
  plan_rounds : Iter_group.t list array list;
  plan_barriers : bool;
}

type compiled = {
  scheme : scheme;
  params : params;            (** the parameters the mapping was built with *)
  map_topo : Topology.t;      (** topology the mapping was built for *)
  machine : Topology.t;       (** machine the phases are shaped for *)
  program : Program.t;
  layout : Layout.t;
  phases : Engine.stream_phase list;
      (** dense arrays under the default compile; generator-backed
          cursors under [~stream:true] (see {!forced_phases}) *)
  infos : nest_info list;
  plans : nest_plan list;
  timings : (string * float) list;
      (** seconds spent per compile phase, in {!timing_keys} order *)
}

(** The compile-phase names reported in [compiled.timings]:
    ["group"; "distribute"; "schedule"; "trace"]. *)
val timing_keys : string list

(** [compile ?params ?clock ?map_topo ?stream scheme ~machine program]
    maps every nest of [program] (parallel nests under [scheme];
    serial nests run on core 0).  [map_topo] defaults to [machine].
    [clock] (default [Sys.time]) supplies the timestamps for the
    per-phase [timings]; pass a higher-resolution wall clock when
    profiling.

    With [~stream:true] the produced [phases] are generator-backed
    cursors (serial nests and schedule groups regenerate their
    iterations on demand; explicit-order baseline chunks keep only the
    iteration lists) instead of materialized access arrays — same
    access sequence, a fraction of the memory. *)
val compile :
  ?params:params ->
  ?clock:(unit -> float) ->
  ?map_topo:Topology.t ->
  ?stream:bool ->
  scheme ->
  machine:Topology.t ->
  Program.t ->
  compiled

(** [segments c] reconstructs, for every phase of [c.phases], the
    per-core [(start_access_index, segment_id)] boundaries of the
    iteration groups concatenated into that core's stream — the shape
    [Probe_sinks.Counters.create ~segments] consumes.  Segment ids are
    unique across the whole run; the returned legend maps each back to
    its [(nest_name, group_id)] (baseline chunks appear as their
    pseudo-groups). *)
val segments :
  compiled -> (int * int) array array list * (int * (string * int)) list

(** Re-target a compiled mapping to a different machine: thread [t] of
    the mapping runs on core [t mod cores(machine)] (threads beyond the
    core count are oversubscribed round-robin, extra cores idle).  This
    reproduces the paper's porting methodology (e.g. the Dunnington
    version running with fewer threads elsewhere). *)
val port : compiled -> machine:Topology.t -> compiled

(** [forced_phases c] materializes every stream of [c.phases] — the
    dense form consumers like the race replayer index directly. *)
val forced_phases : compiled -> Engine.phase list

(** [simulate ?config ?coherence ?probe ?max_cycles ?sample_sets ?memo
    c] builds the machine's hierarchy (with [probe] attached, default
    null) and runs the phases.  [max_cycles] is the engine's
    early-termination budget (see {!Engine.run_streams}); the
    autotuner uses it to cut clearly-losing configurations short.
    [sample_sets] enables constant-bit set sampling (see
    {!Hierarchy.create}); [memo] shares a per-phase memo table across
    runs (see {!Engine.run_streams}). *)
val simulate :
  ?config:Engine.config ->
  ?coherence:bool ->
  ?probe:Probe.t ->
  ?max_cycles:int ->
  ?sample_sets:int ->
  ?memo:Memo.t ->
  compiled ->
  Stats.t

(** One-call convenience: compile then simulate.  [stream],
    [sample_sets] and [memo] forward to {!compile} and {!simulate}. *)
val run :
  ?params:params ->
  ?map_topo:Topology.t ->
  ?config:Engine.config ->
  ?probe:Probe.t ->
  ?stream:bool ->
  ?sample_sets:int ->
  ?memo:Memo.t ->
  scheme ->
  machine:Topology.t ->
  Program.t ->
  Stats.t

(** Sequential execution of the whole program on one core of the
    machine (the paper's Table 2 baseline). *)
val simulate_serial :
  ?config:Engine.config -> machine:Topology.t -> Program.t -> Stats.t

(** The grouping + acyclic dependence DAG used for a nest under
    [params] (exposed for {!Optimal} and the examples). *)
val grouping_for :
  params:params ->
  machine:Topology.t ->
  Program.t ->
  Nest.t ->
  Tags.grouping * Iter_group.t array * Dep_graph.t

(** L1 capacity (bytes) of the machine's first core — the budget the
    block-size rule and Base+ tiling use. *)
val l1_capacity : Topology.t -> int
