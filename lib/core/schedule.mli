(** Dependence-aware local iteration-group scheduling (paper Figure 7).

    Given the per-core assignment produced by {!Distribute} (or any
    other distribution) and the group dependence graph, orders each
    core's groups into rounds.  Within a round, each core picks the
    legal group maximizing

    [alpha * dot(tag, last group of the previous core this round)  +
     beta  * dot(tag, last group scheduled on this core)]

    — the horizontal term targets shared-cache reuse across cores of
    the same sharing domain, the vertical term targets L1 reuse.  A
    barrier separates rounds, which both enforces dependences and keeps
    sharing cores temporally aligned.  Cores keep scheduling in a round
    until their iteration count catches up with their predecessor,
    which balances per-round work (important under barriers). *)

open Ctam_arch
open Ctam_blocks
open Ctam_deps

type t = {
  rounds : Iter_group.t list array list;
      (** each round maps core -> groups scheduled in that round *)
  num_cores : int;
}

(** Paper default: equal weights. *)
val default_alpha : float

val default_beta : float

(** [run ?alpha ?beta topo assignment dg] schedules every group of
    [assignment].  [dg] is indexed by group [id]s (split parts share
    their origin's id; their dependences are enforced at origin
    granularity).  Scheduling never loses iterations. *)
val run :
  ?alpha:float ->
  ?beta:float ->
  ?quantum:int ->
  Topology.t ->
  Iter_group.t list array ->
  Dep_graph.t ->
  t

(** Per-core flat group order (rounds concatenated). *)
val per_core : t -> Iter_group.t list array

(** Number of rounds (= barriers + 1 when more than one). *)
val num_rounds : t -> int

(** True iff every group's origin-predecessors are fully scheduled in
    strictly earlier rounds (the correctness invariant). *)
val respects_deps : t -> Dep_graph.t -> bool
