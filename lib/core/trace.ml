open Ctam_poly
open Ctam_ir
open Ctam_blocks
open Ctam_cachesim

let refs_of nest =
  Nest.refs nest
  |> List.map (fun r -> (r, Reference.is_write r))
  |> Array.of_list

let of_iters layout nest iters =
  let refs = refs_of nest in
  let nrefs = Array.length refs in
  let out = Array.make (List.length iters * nrefs) 0 in
  let k = ref 0 in
  List.iter
    (fun iv ->
      Array.iter
        (fun (r, write) ->
          out.(!k) <-
            Engine.encode_access ~addr:(Layout.ref_addr layout r iv) ~write;
          incr k)
        refs)
    iters;
  out

let of_iterset layout nest s =
  let refs = refs_of nest in
  let nrefs = Array.length refs in
  let out = Array.make (Iterset.cardinal s * nrefs) 0 in
  let k = ref 0 in
  Iterset.iter
    (fun iv ->
      Array.iter
        (fun (r, write) ->
          out.(!k) <-
            Engine.encode_access ~addr:(Layout.ref_addr layout r iv) ~write;
          incr k)
        refs)
    s;
  out

let of_group layout nest g = of_iterset layout nest g.Iter_group.iters

let of_groups layout nest gs =
  Array.concat (List.map (of_group layout nest) gs)

let serial layout nest =
  let refs = refs_of nest in
  let nrefs = Array.length refs in
  let out = Array.make (Nest.trip_count nest * nrefs) 0 in
  let k = ref 0 in
  Domain.iter
    (fun iv ->
      Array.iter
        (fun (r, write) ->
          out.(!k) <-
            Engine.encode_access ~addr:(Layout.ref_addr layout r iv) ~write;
          incr k)
        refs)
    nest.Nest.domain;
  out
