open Ctam_poly
open Ctam_ir
open Ctam_blocks
open Ctam_cachesim

let refs_of nest =
  Nest.refs nest
  |> List.map (fun r -> (r, Reference.is_write r))
  |> Array.of_list

let of_iters layout nest iters =
  let refs = refs_of nest in
  let nrefs = Array.length refs in
  let out = Array.make (List.length iters * nrefs) 0 in
  let k = ref 0 in
  List.iter
    (fun iv ->
      Array.iter
        (fun (r, write) ->
          out.(!k) <-
            Engine.encode_access ~addr:(Layout.ref_addr layout r iv) ~write;
          incr k)
        refs)
    iters;
  out

let of_iterset layout nest s =
  let refs = refs_of nest in
  let nrefs = Array.length refs in
  let out = Array.make (Iterset.cardinal s * nrefs) 0 in
  let k = ref 0 in
  Iterset.iter
    (fun iv ->
      Array.iter
        (fun (r, write) ->
          out.(!k) <-
            Engine.encode_access ~addr:(Layout.ref_addr layout r iv) ~write;
          incr k)
        refs)
    s;
  out

let of_group layout nest g = of_iterset layout nest g.Iter_group.iters

let of_groups layout nest gs =
  Array.concat (List.map (of_group layout nest) gs)

(* Lazy variants (PR 7): wrap a restartable point generator as an
   {!Engine.cursor}, expanding each iteration into one encoded access
   per reference on demand.  The access sequence is identical to the
   eager builders' arrays (asserted by the differential tests), so the
   engine's event order is bit-identical; only materialization
   disappears. *)

let cursor_of_gen layout refs ~count ~next ~restart =
  let nrefs = Array.length refs in
  (* Chunked refill: encoding whole points into a ~256-access buffer
     amortizes the generator's odometer and closure cost, so a pull is
     normally one bounds check and an array read.  The buffer holds
     whole points only (capacity a multiple of [nrefs]), keeping the
     emitted order exactly point-major. *)
  let points_per_chunk = max 1 (256 / max 1 nrefs) in
  let buf = Array.make (max 1 (points_per_chunk * nrefs)) 0 in
  (* Address functions precompiled per reference (no table lookup or
     allocation per point — see {!Layout.ref_addr_fn}). *)
  let addr_fns = Array.map (fun (r, _) -> Layout.ref_addr_fn layout r) refs in
  let writes = Array.map snd refs in
  let len = ref 0 in
  let at = ref 0 in
  let fill () =
    len := 0;
    at := 0;
    let cap = Array.length buf in
    let continue = ref true in
    while !continue && !len + nrefs <= cap do
      match next () with
      | None -> continue := false
      | Some iv ->
          for i = 0 to nrefs - 1 do
            buf.(!len + i) <-
              Engine.encode_access ~addr:(addr_fns.(i) iv) ~write:writes.(i)
          done;
          len := !len + nrefs
    done
  in
  let pull () =
    if !at >= !len then begin
      fill ();
      if !len = 0 then invalid_arg "Trace: cursor pulled past end"
    end;
    let v = buf.(!at) in
    incr at;
    v
  in
  let reset () =
    restart ();
    len := 0;
    at := 0
  in
  (* Sampled fast path: scan the chunk buffer in place for the next
     access whose line survives the sampling filter.  A skipped access
     costs an array read and a mask test — the same as the engine's
     dense batched path — instead of a [pull] closure call; only the
     refills still pay the generation cost (the filter needs every
     address, so generation cannot be skipped). *)
  let skip_to_sample ~shift ~mask ~skipped =
    let found = ref (-1) in
    let finished = ref false in
    while !found < 0 && not !finished do
      if !at >= !len then begin
        fill ();
        if !len = 0 then finished := true
      end;
      if not !finished then begin
        let l = !len in
        let b = buf in
        let i = ref !at in
        while !found < 0 && !i < l do
          let e = b.(!i) in
          incr i;
          if e lsr shift land mask = 0 then found := e else incr skipped
        done;
        at := !i
      end
    done;
    !found
  in
  {
    Engine.length = count * nrefs;
    pull;
    reset;
    skip_to_sample = Some skip_to_sample;
  }

let stream_of_iters layout nest iters =
  (* The iterations are already materialized (explicit-order chunks);
     the cursor only avoids expanding them into the larger access
     array. *)
  let refs = refs_of nest in
  let pts = Array.of_list iters in
  let idx = ref 0 in
  let next () =
    if !idx >= Array.length pts then None
    else begin
      let p = pts.(!idx) in
      incr idx;
      Some p
    end
  in
  let restart () = idx := 0 in
  Engine.Gen
    (cursor_of_gen layout refs ~count:(Array.length pts) ~next ~restart)

let stream_of_group layout nest g =
  (* Box decomposition gives a compact closed form of the group's
     iteration set; [Codegen.to_gen] walks it in global lexicographic
     order — the order [Iterset.iter] (hence {!of_group}) uses. *)
  let refs = refs_of nest in
  let s = g.Iter_group.iters in
  let cg = Codegen.decompose s in
  let gen = Codegen.to_gen cg in
  Engine.Gen
    (cursor_of_gen layout refs ~count:(Iterset.cardinal s)
       ~next:gen.Codegen.next ~restart:gen.Codegen.restart)

let stream_of_groups layout nest gs =
  Engine.stream_concat (List.map (stream_of_group layout nest) gs)

let stream_serial layout nest =
  (* No materialization at all: the domain odometer regenerates the
     nest's program order on every run. *)
  let refs = refs_of nest in
  let gen = Domain.to_gen nest.Nest.domain in
  Engine.Gen
    (cursor_of_gen layout refs ~count:(Nest.trip_count nest)
       ~next:gen.Domain.next ~restart:gen.Domain.restart)

let serial layout nest =
  let refs = refs_of nest in
  let nrefs = Array.length refs in
  let out = Array.make (Nest.trip_count nest * nrefs) 0 in
  let k = ref 0 in
  Domain.iter
    (fun iv ->
      Array.iter
        (fun (r, write) ->
          out.(!k) <-
            Engine.encode_access ~addr:(Layout.ref_addr layout r iv) ~write;
          incr k)
        refs)
    nest.Nest.domain;
  out
