(** The iteration-group affinity graph (the paper's BuildGraph step).

    Nodes are iteration groups; the weight of edge [(a, b)] is the
    number of common 1s between the two tags — the degree of data-block
    sharing between the groups.  The clustering of {!Distribute} uses
    these weights through cluster-tag dot products; this module gives
    the graph a first-class representation for inspection and tests. *)

open Ctam_blocks

type t

val build : Iter_group.t array -> t
val num_nodes : t -> int

(** [weight t a b] is the tag dot-product between groups [a] and [b]. *)
val weight : t -> int -> int -> int

(** Edges with nonzero weight, [(a, b, w)] with [a < b]. *)
val edges : t -> (int * int * int) list

(** Sum of all edge weights (a sharing-intensity diagnostic). *)
val total_weight : t -> int

val pp : t Fmt.t
