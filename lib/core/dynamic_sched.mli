(** Dynamic (runtime) iteration-group scheduling — the comparison the
    paper mentions in §5: processor-affinity dynamic schemes "did not
    generate good results on the Harpertown and Dunnington machines,
    mostly due to the cost of dynamic iteration distribution".

    Cores pull iteration groups from a central queue as they go idle;
    every pull pays a dispatch cost, and placement ignores the cache
    topology entirely.  This gives perfect load balance but no
    affinity, making it the natural foil for the static topology-aware
    mapping. *)

open Ctam_arch
open Ctam_ir
open Ctam_cachesim

(** Cycles charged per queue pull (lock + dispatch). *)
val default_steal_cost : int

(** [run ?params ?config ?steal_cost ~machine program] executes every
    parallel nest with central-queue dynamic scheduling (groups in
    lexicographic order; dependence-carrying nests fall back to
    dependence-level phases with the same per-pull cost), serial nests
    on core 0. *)
val run :
  ?params:Mapping.params ->
  ?config:Engine.config ->
  ?steal_cost:int ->
  machine:Topology.t ->
  Program.t ->
  Stats.t
