open Ctam_arch
open Ctam_ir
open Ctam_blocks
open Ctam_deps
open Ctam_cachesim

type scheme = Base | Base_plus | Local | Topology_aware | Combined

let scheme_name = function
  | Base -> "Base"
  | Base_plus -> "Base+"
  | Local -> "Local"
  | Topology_aware -> "TopologyAware"
  | Combined -> "Combined"

let all_schemes = [ Base; Base_plus; Local; Topology_aware; Combined ]

type params = {
  block_size : int;
  auto_block : bool;
  balance_threshold : float;
  alpha : float;
  beta : float;
  max_groups : int;
  dependence_mode : Distribute.dependence_mode;
  tile_edge : int option;
}

let default_params =
  {
    block_size = 2048;
    auto_block = false;
    balance_threshold = Distribute.default_balance_threshold;
    alpha = Schedule.default_alpha;
    beta = Schedule.default_beta;
    max_groups = 3000;
    dependence_mode = Distribute.Synchronize;
    tile_edge = None;
  }

(* A schedule built with negative affinity weights or a non-positive
   balance threshold silently degenerates (the balancing loop can no
   longer terminate meaningfully, scores invert); reject such
   parameters up front with a message naming the offender. *)
let validate_params p =
  let bad fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if p.block_size <= 0 then bad "block_size must be positive (got %d)" p.block_size
  else if Float.is_nan p.alpha || p.alpha < 0. then
    bad "alpha must be a non-negative number (got %g)" p.alpha
  else if Float.is_nan p.beta || p.beta < 0. then
    bad "beta must be a non-negative number (got %g)" p.beta
  else if Float.is_nan p.balance_threshold || p.balance_threshold <= 0. then
    bad "balance_threshold must be positive (got %g)" p.balance_threshold
  else if p.max_groups <= 0 then
    bad "max_groups must be positive (got %d)" p.max_groups
  else
    match p.tile_edge with
    | Some e when e <= 0 -> bad "tile_edge must be positive (got %d)" e
    | _ -> Ok ()

type nest_info = {
  nest_name : string;
  num_groups : int;
  num_rounds : int;
  dep_edges : int;
  used_block_size : int;
}

type nest_plan = {
  plan_nest : Nest.t;
  plan_rounds : Iter_group.t list array list;
  plan_barriers : bool;
}

type compiled = {
  scheme : scheme;
  params : params;
  map_topo : Topology.t;
  machine : Topology.t;
  program : Program.t;
  layout : Layout.t;
  phases : Engine.stream_phase list;
  infos : nest_info list;
  plans : nest_plan list;
  timings : (string * float) list;
}

let l1_capacity topo =
  match Topology.path_of_core topo 0 with
  | p :: _ -> p.Topology.size_bytes
  | [] -> invalid_arg "Mapping.l1_capacity: no caches"

let line_size topo =
  match Topology.caches topo with
  | p :: _ -> p.Topology.line
  | [] -> invalid_arg "Mapping.line_size: no caches"

(* Block size selection: fixed, or the §4.1 L1-fitting rule driven by
   the first parallel nest. *)
let pick_block_size ~params ~machine program =
  if not params.auto_block then params.block_size
  else
    match Program.parallel_nests program with
    | [] -> params.block_size
    | nest :: _ ->
        let bs, _ =
          Block_size.choose ~l1_capacity:(l1_capacity machine)
            ~line:(line_size machine) nest program
        in
        bs

let grouping_with ~block_size ~line ~max_groups program nest =
  let bm, _layout = Block_map.for_program ~block_size ~line program in
  let grouping = Tags.group_capped ~max_groups nest bm in
  let dg0 = Group_deps.compute grouping in
  let groups, dag =
    if Dep_graph.is_empty dg0 then (grouping.Tags.groups, dg0)
    else Group_deps.merge_cycles grouping dg0
  in
  (grouping, groups, dag)

let grouping_for ~params ~machine program nest =
  let block_size = pick_block_size ~params ~machine program in
  grouping_with ~block_size ~line:(line_size machine)
    ~max_groups:params.max_groups program nest

(* A chunk of explicitly ordered iterations as a pseudo-group (empty
   tag): baselines are represented in the same structural form as the
   topology-aware plans.  Iteration order within a pseudo-group is
   lexicographic, so callers split order-sensitive sequences (tiles)
   into one pseudo-group per contiguous run. *)
let pseudo_group ~encoder ~id iters =
  {
    Iter_group.id;
    tag = Bitset.create 0;
    iters = Ctam_poly.Iterset.of_list encoder iters;
  }

(* One pseudo-group per tile, in tiled execution order. *)
let tile_pseudo_groups ~encoder ~tile ~perm iters =
  let ordered = Tiling.apply ~tile ~perm iters in
  let runs = ref [] and current = ref [] and cur_tc = ref None in
  let tc iv = Array.to_list (Array.mapi (fun k t -> iv.(k) / t) tile) in
  List.iter
    (fun iv ->
      let c = tc iv in
      (match !cur_tc with
      | Some c' when c' = c -> ()
      | None -> cur_tc := Some c
      | Some _ ->
          runs := List.rev !current :: !runs;
          current := [];
          cur_tc := Some c);
      current := iv :: !current)
    ordered;
  if !current <> [] then runs := List.rev !current :: !runs;
  List.rev !runs |> List.mapi (fun i run -> pseudo_group ~encoder ~id:i run)

(* Streams for a schedule.  Barriers exist to enforce dependences; for
   a dependence-free nest the rounds collapse into one phase (keeping
   the round-robin interleaving order per core), exactly like the
   paper, whose Figure 7 inserts synchronization for dependences. *)
let phases_of_schedule ~stream ~with_barriers layout nest (sched : Schedule.t)
    =
  let trace gs =
    if stream then Trace.stream_of_groups layout nest gs
    else Engine.dense (Trace.of_groups layout nest gs)
  in
  if with_barriers then
    List.map (fun round -> Array.map trace round) sched.Schedule.rounds
  else [ Array.map trace (Schedule.per_core sched) ]

(* Compile-phase names reported in [compiled.timings], in pipeline
   order. *)
let timing_keys = [ "group"; "distribute"; "schedule"; "trace" ]

let compile ?(params = default_params) ?(clock = Sys.time) ?map_topo
    ?(stream = false) scheme ~machine program =
  (match validate_params params with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Mapping.compile: " ^ msg));
  let map_topo = Option.value map_topo ~default:machine in
  let n = map_topo.Topology.num_cores in
  let times = Hashtbl.create 8 in
  let timed key f =
    let t0 = clock () in
    let r = f () in
    let acc = try Hashtbl.find times key with Not_found -> 0. in
    Hashtbl.replace times key (acc +. (clock () -. t0));
    r
  in
  let block_size = pick_block_size ~params ~machine:map_topo program in
  let line = line_size map_topo in
  let bm, layout = Block_map.for_program ~block_size ~line program in
  ignore bm;
  let infos = ref [] in
  let plans = ref [] in
  let push_plan nest rounds barriers =
    plans := { plan_nest = nest; plan_rounds = rounds; plan_barriers = barriers } :: !plans
  in
  let phases =
    List.concat_map
      (fun nest ->
        if not nest.Nest.parallel then begin
          (* Serial nest: core 0 executes it as its own phase. *)
          let phase = Array.make n (Engine.dense [||]) in
          phase.(0) <-
            timed "trace" (fun () ->
                if stream then Trace.stream_serial layout nest
                else Engine.dense (Trace.serial layout nest));
          infos :=
            {
              nest_name = nest.Nest.name;
              num_groups = 1;
              num_rounds = 1;
              dep_edges = 0;
              used_block_size = block_size;
            }
            :: !infos;
          let encoder = Ctam_poly.Iterset.encoder_of_domain nest.Nest.domain in
          let round = Array.make n [] in
          round.(0) <-
            [ pseudo_group ~encoder ~id:0 (Ctam_poly.Domain.to_list nest.Nest.domain) ];
          push_plan nest [ round ] false;
          [ phase ]
        end
        else
          match scheme with
          | Base when Dep_test.nest_may_carry_deps nest ->
              (* The original parallel code must synchronize a loop
                 with carried dependences too: Base becomes the default
                 chunk distribution with dependence-only scheduling and
                 barrier rounds. *)
              let _grouping, groups, dag =
                timed "group" (fun () ->
                    grouping_with ~block_size ~line
                      ~max_groups:params.max_groups program nest)
              in
              let assignment =
                timed "distribute" (fun () ->
                    Baselines.default_assignment ~topo:map_topo groups)
              in
              let sched =
                timed "schedule" (fun () ->
                    Schedule.run ~alpha:0. ~beta:0. map_topo assignment dag)
              in
              infos :=
                {
                  nest_name = nest.Nest.name;
                  num_groups = Array.length groups;
                  num_rounds = Schedule.num_rounds sched;
                  dep_edges = Dep_graph.num_edges dag;
                  used_block_size = block_size;
                }
                :: !infos;
              push_plan nest sched.Schedule.rounds true;
              timed "trace" (fun () ->
                  phases_of_schedule ~stream ~with_barriers:true layout nest
                    sched)
          | Base ->
              let chunks =
                timed "distribute" (fun () -> Baselines.block_partition ~n nest)
              in
              infos :=
                {
                  nest_name = nest.Nest.name;
                  num_groups = n;
                  num_rounds = 1;
                  dep_edges = 0;
                  used_block_size = block_size;
                }
                :: !infos;
              let encoder =
                Ctam_poly.Iterset.encoder_of_domain nest.Nest.domain
              in
              push_plan nest
                [
                  Array.mapi
                    (fun c iters ->
                      if iters = [] then []
                      else [ pseudo_group ~encoder ~id:c iters ])
                    chunks;
                ]
                false;
              [
                timed "trace" (fun () ->
                    Array.map
                      (fun iters ->
                        if stream then Trace.stream_of_iters layout nest iters
                        else Engine.dense (Trace.of_iters layout nest iters))
                      chunks);
              ]
          | Base_plus when Dep_test.nest_may_carry_deps nest ->
              (* Intra-core reordering is dependence-constrained; treat
                 Base+ as synchronized Base on such nests (the paper's
                 Base+ transformations must preserve dependences). *)
              let _grouping, groups, dag =
                timed "group" (fun () ->
                    grouping_with ~block_size ~line
                      ~max_groups:params.max_groups program nest)
              in
              let assignment =
                timed "distribute" (fun () ->
                    Baselines.default_assignment ~topo:map_topo groups)
              in
              let sched =
                timed "schedule" (fun () ->
                    Schedule.run ~alpha:0. ~beta:0. map_topo assignment dag)
              in
              infos :=
                {
                  nest_name = nest.Nest.name;
                  num_groups = Array.length groups;
                  num_rounds = Schedule.num_rounds sched;
                  dep_edges = Dep_graph.num_edges dag;
                  used_block_size = block_size;
                }
                :: !infos;
              push_plan nest sched.Schedule.rounds true;
              timed "trace" (fun () ->
                  phases_of_schedule ~stream ~with_barriers:true layout nest
                    sched)
          | Base_plus ->
              let chunks =
                timed "distribute" (fun () -> Baselines.block_partition ~n nest)
              in
              let perm =
                timed "schedule" (fun () -> Permute.best_order layout nest)
              in
              (* The paper selects the best-performing tile size by
                 search; candidates include "untiled but permuted" so
                 Base+ never loses to a plain permutation.  A
                 [params.tile_edge] override (the autotuner's knob)
                 replaces the search with that single forced edge. *)
              let candidates =
                match params.tile_edge with
                | Some e -> [ Some e ]
                | None ->
                    let t0 =
                      timed "schedule" (fun () ->
                          Tiling.choose_tile ~l1_bytes:(l1_capacity map_topo)
                            layout nest)
                    in
                    [ None; Some t0; Some (max 4 (t0 / 2)) ]
              in
              let phase_for tile_opt =
                Array.map
                  (fun iters ->
                    let ordered =
                      match tile_opt with
                      | None -> Permute.sort_iters perm iters
                      | Some edge ->
                          let tile = Tiling.uniform (Nest.depth nest) edge in
                          Tiling.apply ~tile ~perm iters
                    in
                    if stream then Trace.stream_of_iters layout nest ordered
                    else Engine.dense (Trace.of_iters layout nest ordered))
                  chunks
              in
              let best_tile, best_phase =
                timed "trace" (fun () ->
                    let h = Hierarchy.create map_topo in
                    List.map
                      (fun t ->
                        let phase = phase_for t in
                        let stats = Engine.run_streams h [ phase ] in
                        (stats.Stats.cycles, (t, phase)))
                      candidates
                    |> List.sort (fun (a, _) (b, _) -> compare a b)
                    |> List.hd |> snd)
              in
              infos :=
                {
                  nest_name = nest.Nest.name;
                  num_groups = n;
                  num_rounds = 1;
                  dep_edges = 0;
                  used_block_size = block_size;
                }
                :: !infos;
              let encoder =
                Ctam_poly.Iterset.encoder_of_domain nest.Nest.domain
              in
              push_plan nest
                [
                  Array.map
                    (fun iters ->
                      if iters = [] then []
                      else
                        match best_tile with
                        | None ->
                            [
                              pseudo_group ~encoder ~id:0
                                (Permute.sort_iters perm iters);
                            ]
                        | Some edge ->
                            tile_pseudo_groups ~encoder
                              ~tile:(Tiling.uniform (Nest.depth nest) edge)
                              ~perm iters)
                    chunks;
                ]
                false;
              [ best_phase ]
          | Local | Topology_aware | Combined ->
              let _grouping, groups, dag =
                timed "group" (fun () ->
                    grouping_with ~block_size ~line
                      ~max_groups:params.max_groups program nest)
              in
              let cluster_mode =
                params.dependence_mode = Distribute.Cluster
                && not (Dep_graph.is_empty dag)
              in
              let assignment =
                timed "distribute" (fun () ->
                    match scheme with
                    | Local ->
                        Baselines.default_assignment ~topo:map_topo groups
                    | Topology_aware | Combined ->
                        Distribute.run
                          ~balance_threshold:params.balance_threshold
                          ~dependence_mode:params.dependence_mode
                          ~dep_graph:dag map_topo groups
                    | Base | Base_plus -> assert false)
              in
              (* Under the clustering option every dependent set sits on
                 one core and runs in sequential order, so no barriers
                 (and no dependence constraints) remain. *)
              let dag =
                if cluster_mode && scheme <> Local then Dep_graph.create 0
                else dag
              in
              let alpha, beta =
                match scheme with
                | Topology_aware -> (0., 0.)  (* dependence-only order *)
                | _ -> (params.alpha, params.beta)
              in
              let sched =
                timed "schedule" (fun () ->
                    Schedule.run ~alpha ~beta map_topo assignment dag)
              in
              (* Figure 7's barriers enforce dependences; on a
                 dependence-free nest the rounds collapse into one
                 phase whose per-core order keeps the round-robin
                 alignment (real barriers would only add noise: each
                 round then waits for its slowest core). *)
              let with_barriers = not (Dep_graph.is_empty dag) in
              infos :=
                {
                  nest_name = nest.Nest.name;
                  num_groups = Array.length groups;
                  num_rounds =
                    (if with_barriers then Schedule.num_rounds sched else 1);
                  dep_edges = Dep_graph.num_edges dag;
                  used_block_size = block_size;
                }
                :: !infos;
              (if with_barriers then push_plan nest sched.Schedule.rounds true
               else
                 push_plan nest
                   [ Schedule.per_core sched ]
                   false);
              timed "trace" (fun () ->
                  phases_of_schedule ~stream ~with_barriers layout nest sched))
      program.Program.nests
  in
  let timings =
    List.map
      (fun k -> (k, try Hashtbl.find times k with Not_found -> 0.))
      timing_keys
  in
  (* Feed the per-pass wall-clocks (the PR-1 ?clock hook, generalized)
     into the self-telemetry registry so every compile — including the
     hundreds a tune sweep performs — lands in
     ctam_phase_seconds{phase="mapping.*"}. *)
  if Ctam_telemetry.Metrics.enabled () then
    List.iter
      (fun (k, v) -> Ctam_telemetry.Profile.record_phase ("mapping." ^ k) v)
      timings;
  {
    scheme;
    params;
    map_topo;
    machine;
    program;
    layout;
    phases;
    infos = List.rev !infos;
    plans = List.rev !plans;
    timings;
  }

(* The plans mirror the phase list exactly (one plan round per phase,
   in nest order), so group boundaries inside each core's stream can be
   reconstructed without re-tracing: a group contributes
   [|iters| * #refs] accesses. *)
let segments c =
  let uid = ref 0 in
  let legend = ref [] in
  let phase_tables =
    List.concat_map
      (fun plan ->
        let nrefs = List.length (Nest.refs plan.plan_nest) in
        List.map
          (fun round ->
            Array.map
              (fun groups ->
                let pos = ref 0 in
                List.map
                  (fun (g : Iter_group.t) ->
                    let id = !uid in
                    incr uid;
                    legend := (id, (plan.plan_nest.Nest.name, g.Iter_group.id)) :: !legend;
                    let start = !pos in
                    pos :=
                      !pos + (Ctam_poly.Iterset.cardinal g.Iter_group.iters * nrefs);
                    (start, id))
                  groups
                |> Array.of_list)
              round)
          plan.plan_rounds)
      c.plans
  in
  (phase_tables, List.rev !legend)

let port c ~machine =
  let n_from = c.map_topo.Topology.num_cores in
  let n_to = machine.Topology.num_cores in
  let phases =
    List.map
      (fun phase ->
        let streams = Array.make n_to [] in
        Array.iteri
          (fun t s -> streams.(t mod n_to) <- s :: streams.(t mod n_to))
          phase;
        Array.map
          (fun parts -> Engine.stream_concat (List.rev parts))
          streams)
      c.phases
  in
  ignore n_from;
  { c with machine; phases }

let forced_phases c = List.map Engine.force_phase c.phases

let simulate ?config ?coherence ?probe ?max_cycles ?sample_sets ?memo c =
  let h = Hierarchy.create ?coherence ?probe ?sample_sets c.machine in
  Engine.run_streams ?config ?max_cycles ?memo h c.phases

let run ?params ?map_topo ?config ?probe ?stream ?sample_sets ?memo scheme
    ~machine program =
  simulate ?config ?probe ?sample_sets ?memo
    (compile ?params ?map_topo ?stream scheme ~machine program)

let simulate_serial ?config ~machine program =
  (* One core executes all nests back to back, original order. *)
  let layout =
    Layout.of_program ~align:(line_size machine) program
  in
  let stream =
    Array.concat
      (List.map (fun nest -> Trace.serial layout nest) program.Program.nests)
  in
  let h = Hierarchy.create machine in
  Engine.run_serial ?config h stream
