open Ctam_poly
open Ctam_arch
open Ctam_ir
open Ctam_blocks

let block_partition ~n nest =
  if n <= 0 then invalid_arg "Baselines.block_partition";
  let iters = Domain.to_list nest.Nest.domain in
  let total = List.length iters in
  let result = Array.make n [] in
  (* Chunk c gets iterations [c*total/n, (c+1)*total/n). *)
  List.iteri
    (fun i iv ->
      let c = min (n - 1) (i * n / total) in
      result.(c) <- iv :: result.(c))
    iters;
  Array.map List.rev result

let block_partition_sets ~n groups =
  match Array.length groups with
  | 0 -> invalid_arg "Baselines.block_partition_sets: no groups"
  | _ ->
      let enc = Iterset.encoder groups.(0).Iter_group.iters in
      let all =
        Array.fold_left
          (fun acc g -> Iterset.union acc g.Iter_group.iters)
          (Iterset.empty enc) groups
      in
      let keys = Iterset.keys all in
      let total = Array.length keys in
      Array.init n (fun c ->
          let lo = c * total / n and hi = (c + 1) * total / n in
          Iterset.of_keys enc (Array.sub keys lo (hi - lo)))

let default_assignment ~topo groups =
  let n = topo.Topology.num_cores in
  match Array.length groups with
  | 0 -> Array.make n []
  | _ ->
      let enc = Iterset.encoder groups.(0).Iter_group.iters in
      (* Chunk boundaries are key ranks over the full iteration set; a
         group's members fall into a chunk iff their key lies between
         two boundary key values, so each group splits by binary
         search instead of set intersection. *)
      let all_keys =
        let parts = Array.map (fun g -> Iterset.keys g.Iter_group.iters) groups in
        let merged = Array.concat (Array.to_list parts) in
        Array.sort compare merged;
        merged
      in
      let total = Array.length all_keys in
      let boundary c =
        (* First key value belonging to chunk [c]. *)
        let r = c * total / n in
        if r >= total then max_int else all_keys.(r)
      in
      let result = Array.make n [] in
      Array.iter
        (fun g ->
          let keys = Iterset.keys g.Iter_group.iters in
          let m = Array.length keys in
          let start = ref 0 in
          for c = 0 to n - 1 do
            let upper = boundary (c + 1) in
            let fin = ref !start in
            while !fin < m && keys.(!fin) < upper do
              incr fin
            done;
            if !fin > !start then begin
              let part = Array.sub keys !start (!fin - !start) in
              result.(c) <-
                { g with Iter_group.iters = Iterset.of_keys enc part }
                :: result.(c)
            end;
            start := !fin
          done)
        groups;
      Array.map List.rev result
