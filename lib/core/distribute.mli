(** Cache-topology-aware loop-iteration distribution (paper Figure 6).

    Clusters iteration groups hierarchically along the cache-hierarchy
    tree: at each tree node, groups are agglomeratively merged by
    maximal tag dot-product until the number of clusters equals the
    node's number of children (splitting the largest cluster when there
    are too few), then cluster sizes are balanced to within a tolerable
    threshold, and each cluster recurses into one child.  Leaves of the
    recursion are cores; the result is the per-core iteration-group
    assignment.

    Off-chip memory acts as the root when the topology has several
    last-level caches, exactly as in the paper. *)

open Ctam_arch
open Ctam_blocks

(** Maximum tolerable imbalance as a fraction of the average cluster
    size; the paper's experiments use 0.10. *)
val default_balance_threshold : float

(** How loop-carried dependences are handled (paper §3.5.2):
    [Synchronize] (the default, the paper's second option) distributes
    dependent groups freely and leaves correctness to the barrier
    rounds of {!Schedule}; [Cluster] (the first option) forces every
    weakly-connected set of dependent groups onto one core — no
    synchronization needed, at the cost of parallelism. *)
type dependence_mode = Synchronize | Cluster

(** [run ?balance_threshold topo groups] assigns every group (possibly
    split for balance; split parts keep their original [id]) to a core.
    [result.(c)] lists core [c]'s groups in assignment order.  The
    union of all assigned iterations equals the input's. *)
val run :
  ?balance_threshold:float ->
  ?dependence_mode:dependence_mode ->
  ?dep_graph:Ctam_deps.Dep_graph.t ->
  Topology.t ->
  Iter_group.t array ->
  Iter_group.t list array

(** One clustering step: agglomerate [groups] into exactly [k] clusters
    by maximal tag dot-product (splitting when fewer than [k]), without
    balancing.  Exposed for unit tests and the worked example. *)
val cluster_into :
  ?allow_splits:bool -> int -> Iter_group.t list -> Iter_group.t list list

(** Balance clusters to targets proportional to [weights] within the
    threshold.  [allow_splits] (default true) permits splitting a group
    when no whole-group move fits; [Cluster]-mode distributions disable
    it.  Exposed for unit tests. *)
val balance :
  ?allow_splits:bool ->
  threshold:float ->
  weights:int array ->
  Iter_group.t list array ->
  Iter_group.t list array
