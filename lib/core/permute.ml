open Ctam_poly
open Ctam_ir

(* Mean |byte stride| of bumping index [j]: for each reference, the
   address delta is sum over array dims of coeff * row-major dim
   stride * elem size. *)
let stride layout nest j =
  let refs = Nest.refs nest in
  let total =
    List.fold_left
      (fun acc r ->
        let decl = Layout.decl layout r.Reference.array_name in
        let dims = decl.Array_decl.dims in
        let rank = Array.length dims in
        let dim_stride = Array.make rank decl.Array_decl.elem_size in
        for k = rank - 2 downto 0 do
          dim_stride.(k) <- dim_stride.(k + 1) * dims.(k + 1)
        done;
        let delta = ref 0 in
        Array.iteri
          (fun k s -> delta := !delta + (Affine.coeff s j * dim_stride.(k)))
          r.Reference.subs;
        acc + abs !delta)
      0 refs
  in
  float_of_int total /. float_of_int (max 1 (List.length refs))

let best_order layout nest =
  let d = Nest.depth nest in
  let order = Array.init d Fun.id in
  let key j =
    let s = stride layout nest j in
    (* Indices that do not move any address (stride 0) stay outermost;
       otherwise larger strides go outer, smallest stride innermost. *)
    if s = 0. then infinity else s
  in
  let keys = Array.init d key in
  Array.sort (fun a b -> compare keys.(b) keys.(a)) order;
  order

let check_perm d perm =
  if Array.length perm <> d then invalid_arg "Permute: wrong length";
  let seen = Array.make d false in
  Array.iter
    (fun j ->
      if j < 0 || j >= d || seen.(j) then
        invalid_arg "Permute: not a permutation";
      seen.(j) <- true)
    perm

let sort_iters perm iters =
  (match iters with
  | [] -> ()
  | iv :: _ -> check_perm (Array.length iv) perm);
  let compare_perm a b =
    let rec go k =
      if k >= Array.length perm then 0
      else
        let c = compare a.(perm.(k)) b.(perm.(k)) in
        if c <> 0 then c else go (k + 1)
    in
    go 0
  in
  List.stable_sort compare_perm iters
