(** Reference "Optimal" mapping (paper §4.2, Figure 20).

    The paper obtains the optimal iteration-group-to-core mapping with
    an ILP solver (taking up to 23 hours).  Here the same objective —
    minimal simulated execution cycles — is optimized exactly by
    exhaustive enumeration when the instance is small, and otherwise by
    steepest-descent local search over single-group relocations and
    swaps, seeded with the Topology-Aware assignment.  Local search
    can only improve on Topology-Aware, so the result is a valid
    "at least this much headroom" bound, which is how the paper uses
    the optimal column. *)

open Ctam_arch
open Ctam_ir
open Ctam_cachesim

type result = {
  stats : Stats.t;
  evaluations : int;   (** simulator runs spent *)
  exact : bool;        (** true when exhaustively enumerated *)
}

(** [search ?params ?config ?budget ?exhaustive_limit ~machine program]
    optimizes the mapping of the first parallel nest (the program must
    have exactly one parallel nest).  [budget] caps simulator
    evaluations for local search (default 200); instances with at most
    [exhaustive_limit] assignments (default 20_000) are enumerated
    exactly.
    @raise Invalid_argument if the program has no parallel nest. *)
val search :
  ?params:Mapping.params ->
  ?config:Engine.config ->
  ?budget:int ->
  ?exhaustive_limit:int ->
  machine:Topology.t ->
  Program.t ->
  result
