open Ctam_arch
open Ctam_blocks

let default_balance_threshold = 0.10

(* --- clusters ------------------------------------------------------ *)

type cluster = {
  mutable tag : Bitset.t;      (* bitwise sum of member tags *)
  mutable members : Iter_group.t list;  (* reverse assignment order *)
  mutable size : int;          (* total iterations *)
  mutable alive : bool;
  mutable version : int;       (* bumped on every merge, for the heap *)
  mutable first_key : int;     (* earliest iteration, for proximity ties *)
}

let cluster_of_group g =
  {
    tag = g.Iter_group.tag;
    members = [ g ];
    size = Iter_group.size g;
    alive = true;
    version = 0;
    first_key = Ctam_poly.Iterset.min_key g.Iter_group.iters;
  }

let cluster_groups c = List.rev c.members

(* --- a max-heap of candidate merges with lazy invalidation --------- *)

module Heap = struct
  type entry = { w : int; d : int; a : int; b : int; va : int; vb : int }

  (* Max-heap ordered by weight; iteration-space proximity (smaller
     [d]) breaks ties, which keeps merged clusters contiguous when
     affinity alone cannot discriminate (e.g. regular stencils). *)
  let gt e1 e2 = e1.w > e2.w || (e1.w = e2.w && e1.d < e2.d)

  type t = { mutable data : entry array; mutable len : int }

  let create () =
    { data = Array.make 64 { w = 0; d = 0; a = 0; b = 0; va = 0; vb = 0 };
      len = 0 }

  let swap h i j =
    let t = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- t

  let push h e =
    if h.len = Array.length h.data then begin
      let bigger = Array.make (2 * h.len) e in
      Array.blit h.data 0 bigger 0 h.len;
      h.data <- bigger
    end;
    h.data.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && gt h.data.(!i) h.data.((!i - 1) / 2) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.data.(0) in
      h.len <- h.len - 1;
      h.data.(0) <- h.data.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let largest = ref !i in
        if l < h.len && gt h.data.(l) h.data.(!largest) then largest := l;
        if r < h.len && gt h.data.(r) h.data.(!largest) then largest := r;
        if !largest <> !i then begin
          swap h !i !largest;
          i := !largest
        end
        else continue := false
      done;
      Some top
    end
end

(* Agglomerate the clusters in [arr] down to [k] alive clusters by
   repeatedly merging the pair with maximal tag dot-product; pairs with
   zero affinity are merged smallest-first at the end. *)
let agglomerate arr k =
  let n = Array.length arr in
  let alive = ref n in
  let heap = Heap.create () in
  (* Only clusters sharing at least one data block can have a positive
     dot product: enumerate candidate pairs through a block -> clusters
     inverted index instead of all n^2 pairs. *)
  let block_index : (int, int list ref) Hashtbl.t = Hashtbl.create 1024 in
  Array.iteri
    (fun a cl ->
      Bitset.iter
        (fun blk ->
          match Hashtbl.find_opt block_index blk with
          | Some l -> l := a :: !l
          | None -> Hashtbl.add block_index blk (ref [ a ]))
        cl.tag)
    arr;
  (* Blocks touched by very many clusters (globally shared data, like
     a broadcast vector) do not discriminate between clusters; skip
     them when enumerating pairs to keep the candidate set near-linear.
     Pair quality is unaffected: any pair also sharing a selective
     block is still generated, and purely-global affinity ties are
     broken by the zero-affinity smallest-first fallback below. *)
  let fanout_cap = 64 in
  let seen_pairs = Hashtbl.create 4096 in
  let push_pair a b =
    let a, b = (min a b, max a b) in
    if a <> b && arr.(a).alive && arr.(b).alive then begin
      let w = Bitset.dot arr.(a).tag arr.(b).tag in
      if w > 0 then
        Heap.push heap
          {
            Heap.w;
            d = abs (arr.(a).first_key - arr.(b).first_key);
            a;
            b;
            va = arr.(a).version;
            vb = arr.(b).version;
          }
    end
  in
  Hashtbl.iter
    (fun _blk members ->
      let ms = !members in
      if List.length ms <= fanout_cap then
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                if a < b && not (Hashtbl.mem seen_pairs (a, b)) then begin
                  Hashtbl.add seen_pairs (a, b) ();
                  push_pair a b
                end)
              ms)
          ms)
    block_index;
  let merge a b =
    (* Merge b into a. *)
    arr.(a).tag <- Bitset.union arr.(a).tag arr.(b).tag;
    arr.(a).members <- arr.(b).members @ arr.(a).members;
    arr.(a).size <- arr.(a).size + arr.(b).size;
    arr.(a).first_key <- min arr.(a).first_key arr.(b).first_key;
    arr.(a).version <- arr.(a).version + 1;
    arr.(b).alive <- false;
    decr alive;
    (* Refresh candidate merges against clusters sharing a block with
       the merged cluster (the only ones with a positive dot). *)
    let neighbours = Hashtbl.create 64 in
    Bitset.iter
      (fun blk ->
        match Hashtbl.find_opt block_index blk with
        | None -> ()
        | Some l ->
            let live = List.filter (fun c -> arr.(c).alive && c <> a) !l in
            if List.length live <= fanout_cap then
              List.iter (fun c -> Hashtbl.replace neighbours c ()) live;
            (* Compact the index and record the merged cluster. *)
            l := a :: live)
      arr.(a).tag;
    Hashtbl.iter (fun c () -> push_pair a c) neighbours
  in
  let rec drain () =
    if !alive > k then
      match Heap.pop heap with
      | Some e ->
          if
            arr.(e.Heap.a).alive && arr.(e.Heap.b).alive
            && arr.(e.Heap.a).version = e.Heap.va
            && arr.(e.Heap.b).version = e.Heap.vb
          then merge e.Heap.a e.Heap.b;
          drain ()
      | None ->
          (* No data sharing left: merge the two smallest clusters so
             that sizes stay mergeable-balanced. *)
          let smallest_two () =
            let s1 = ref (-1) and s2 = ref (-1) in
            for c = 0 to n - 1 do
              if arr.(c).alive then
                if !s1 < 0 || arr.(c).size < arr.(!s1).size then begin
                  s2 := !s1;
                  s1 := c
                end
                else if !s2 < 0 || arr.(c).size < arr.(!s2).size then s2 := c
            done;
            (!s1, !s2)
          in
          let a, b = smallest_two () in
          merge (min a b) (max a b);
          drain ()
  in
  drain ()

(* Split the largest cluster (by iterations) in two; returns false when
   nothing can be split further. *)
let split_largest ~allow_splits clusters =
  let largest = ref None in
  List.iter
    (fun c ->
      if c.size > 1 then
        match !largest with
        | Some l when l.size >= c.size -> ()
        | _ -> largest := Some c)
    !clusters;
  match !largest with
  | None -> false
  | Some c -> (
      (* Prefer splitting off a whole member group; split a group in
         half only when the cluster is a single group. *)
      match cluster_groups c with
      | [] -> false
      | [ g ] ->
          if (not allow_splits) || Iter_group.size g < 2 then false
          else begin
            let g1, g2 = Iter_group.split g in
            c.members <- [ g1 ];
            c.size <- Iter_group.size g1;
            clusters := cluster_of_group g2 :: !clusters;
            true
          end
      | g :: rest ->
          c.members <- List.rev rest;
          c.size <- c.size - Iter_group.size g;
          clusters := cluster_of_group g :: !clusters;
          true)

let cluster_into ?(allow_splits = true) k groups =
  if k <= 0 then invalid_arg "Distribute.cluster_into: k";
  let arr = Array.of_list (List.map cluster_of_group groups) in
  if Array.length arr > k then agglomerate arr k;
  let clusters =
    ref (Array.to_list arr |> List.filter (fun c -> c.alive))
  in
  let progress = ref true in
  while List.length !clusters < k && !progress do
    progress := split_largest ~allow_splits clusters
  done;
  (* Pad with empty clusters when there are not enough iterations. *)
  let width =
    match groups with
    | g :: _ -> Bitset.width g.Iter_group.tag
    | [] -> 0
  in
  let rec pad cs n =
    if n <= 0 then cs
    else
      pad
        ({
           tag = Bitset.create width;
           members = [];
           size = 0;
           alive = true;
           version = 0;
           first_key = max_int;
         }
        :: cs)
        (n - 1)
  in
  let cs = pad !clusters (k - List.length !clusters) in
  List.map cluster_groups cs

(* --- load balancing ------------------------------------------------ *)

let balance ?(allow_splits = true) ~threshold ~weights clusters =
  let k = Array.length clusters in
  if Array.length weights <> k then invalid_arg "Distribute.balance: weights";
  let cl =
    Array.map
      (fun groups ->
        let width =
          match groups with
          | g :: _ -> Bitset.width g.Iter_group.tag
          | [] -> 0
        in
        let tag =
          List.fold_left
            (fun acc g -> Bitset.union acc g.Iter_group.tag)
            (Bitset.create width) groups
        in
        {
          tag;
          members = List.rev groups;
          size = List.fold_left (fun s g -> s + Iter_group.size g) 0 groups;
          alive = true;
          version = 0;
          first_key =
            List.fold_left
              (fun acc g ->
                min acc (Ctam_poly.Iterset.min_key g.Iter_group.iters))
              max_int groups;
        })
      clusters
  in
  (* Clusters with a zero-width tag (empty input) adopt the width of a
     non-empty sibling so unions below stay well-typed. *)
  let width =
    Array.fold_left
      (fun acc c -> max acc (Bitset.width c.tag))
      0 cl
  in
  Array.iter
    (fun c -> if Bitset.width c.tag <> width then c.tag <- Bitset.create width)
    cl;
  let total = Array.fold_left (fun acc c -> acc + c.size) 0 cl in
  let wsum = Array.fold_left ( + ) 0 weights in
  let avg i = float_of_int (total * weights.(i)) /. float_of_int wsum in
  let up i = int_of_float (ceil (avg i *. (1. +. threshold))) in
  let low i = int_of_float (floor (avg i *. (1. -. threshold))) in
  let find_donor () =
    let best = ref (-1) in
    for i = 0 to k - 1 do
      if cl.(i).size > up i && (!best < 0 || cl.(i).size - up i > cl.(!best).size - up !best)
      then best := i
    done;
    !best
  in
  let find_recipient donor =
    let best = ref (-1) in
    let deficit i = avg i -. float_of_int cl.(i).size in
    for i = 0 to k - 1 do
      if i <> donor && (!best < 0 || deficit i > deficit !best) then best := i
    done;
    !best
  in
  let total_members =
    Array.fold_left (fun acc c -> acc + List.length c.members) 0 cl
  in
  (* Every move strictly shrinks some donor's excess; group moves are
     bounded by a small multiple of the group count in practice. *)
  let guard = ref ((20 * total_members) + 200) in
  let rec loop () =
    decr guard;
    if !guard <= 0 then ()
    else begin
      let d = find_donor () in
      if d < 0 then ()
      else begin
        let r = find_recipient d in
        if r < 0 then ()
        else begin
          (* Whole-group move maximizing affinity with the recipient,
             keeping both clusters inside their windows. *)
          let eligible g =
            let s = Iter_group.size g in
            cl.(d).size - s >= low d && cl.(r).size + s <= up r
          in
          let best = ref None in
          List.iter
            (fun g ->
              if eligible g then begin
                let w = Bitset.dot g.Iter_group.tag cl.(r).tag in
                let dist =
                  abs (Ctam_poly.Iterset.min_key g.Iter_group.iters
                       - cl.(r).first_key)
                in
                match !best with
                | Some (_, w', dist') when w' > w || (w' = w && dist' <= dist)
                  -> ()
                | _ -> best := Some (g, w, dist)
              end)
            cl.(d).members;
          (match !best with
          | Some (g, _, _) ->
              cl.(d).members <- List.filter (fun x -> x != g) cl.(d).members;
              cl.(d).size <- cl.(d).size - Iter_group.size g;
              cl.(r).members <- g :: cl.(r).members;
              cl.(r).size <- cl.(r).size + Iter_group.size g;
              cl.(r).tag <- Bitset.union cl.(r).tag g.Iter_group.tag;
              cl.(r).first_key <-
                min cl.(r).first_key
                  (Ctam_poly.Iterset.min_key g.Iter_group.iters)
          | None when not allow_splits -> guard := 0
          | None -> (
              (* No whole group fits: split the highest-affinity group
                 and move just enough iterations. *)
              let want =
                min
                  (cl.(d).size - int_of_float (avg d))
                  (int_of_float (avg r) - cl.(r).size)
                |> max 1
              in
              let pick = ref None in
              List.iter
                (fun g ->
                  let w = Bitset.dot g.Iter_group.tag cl.(r).tag in
                  let dist =
                    abs (Ctam_poly.Iterset.min_key g.Iter_group.iters
                         - cl.(r).first_key)
                  in
                  match !pick with
                  | Some (_, w', dist') when w' > w || (w' = w && dist' <= dist)
                    -> ()
                  | _ -> pick := Some (g, w, dist))
                cl.(d).members;
              match !pick with
              | None -> guard := 0 (* donor empty: give up *)
              | Some (g, _, _) ->
                  let n = min want (Iter_group.size g - 1) in
                  if n < 1 then begin
                    (* Move the whole (size-1) group as a last resort. *)
                    cl.(d).members <-
                      List.filter (fun x -> x != g) cl.(d).members;
                    cl.(d).size <- cl.(d).size - Iter_group.size g;
                    cl.(r).members <- g :: cl.(r).members;
                    cl.(r).size <- cl.(r).size + Iter_group.size g;
                    cl.(r).tag <- Bitset.union cl.(r).tag g.Iter_group.tag
                  end
                  else begin
                    let moved, kept = Iter_group.split_at n g in
                    cl.(d).members <-
                      kept :: List.filter (fun x -> x != g) cl.(d).members;
                    cl.(d).size <- cl.(d).size - n;
                    cl.(r).members <- moved :: cl.(r).members;
                    cl.(r).size <- cl.(r).size + n;
                    cl.(r).tag <- Bitset.union cl.(r).tag moved.Iter_group.tag
                  end));
          loop ()
        end
      end
    end
  in
  loop ();
  (* Polish: the threshold is the *tolerable* imbalance; keep making
     affinity-best moves from the fullest to the emptiest cluster while
     they strictly shrink the spread, so the typical result sits well
     inside the window (a contiguous-chunk baseline is perfectly
     balanced, and wall-clock time follows the slowest core). *)
  let polish_guard = ref ((4 * total_members) + 64) in
  let continue_polish = ref true in
  while !continue_polish && !polish_guard > 0 do
    decr polish_guard;
    continue_polish := false;
    let dmax = ref 0 and dmin = ref 0 in
    for i = 1 to k - 1 do
      let excess i = float_of_int cl.(i).size -. avg i in
      if excess i > excess !dmax then dmax := i;
      if excess i < excess !dmin then dmin := i
    done;
    let d = !dmax and r = !dmin in
    if d <> r then begin
      let excess_d = float_of_int cl.(d).size -. avg d in
      let deficit_r = avg r -. float_of_int cl.(r).size in
      let want = int_of_float (Float.min excess_d deficit_r) in
      (* Stop near-parity: chasing the last fraction of a percent only
         sprays tiny split fragments across clusters, destroying the
         locality the clustering built. *)
      let eps =
        max 1 (int_of_float (0.005 *. avg d))
      in
      if want >= eps then begin
        (* Prefer a whole group no larger than the need; else split. *)
        let best = ref None in
        List.iter
          (fun g ->
            if Iter_group.size g <= want then begin
              let w = Bitset.dot g.Iter_group.tag cl.(r).tag in
              let dist =
                abs (Ctam_poly.Iterset.min_key g.Iter_group.iters
                     - cl.(r).first_key)
              in
              match !best with
              | Some (_, w', dist') when w' > w || (w' = w && dist' <= dist) ->
                  ()
              | _ -> best := Some (g, w, dist)
            end)
          cl.(d).members;
        match !best with
        | Some (g, _, _) ->
            cl.(d).members <- List.filter (fun x -> x != g) cl.(d).members;
            cl.(d).size <- cl.(d).size - Iter_group.size g;
            cl.(r).members <- g :: cl.(r).members;
            cl.(r).size <- cl.(r).size + Iter_group.size g;
            cl.(r).tag <- Bitset.union cl.(r).tag g.Iter_group.tag;
            cl.(r).first_key <-
              min cl.(r).first_key
                (Ctam_poly.Iterset.min_key g.Iter_group.iters);
            continue_polish := true
        | None when not allow_splits -> ()
        | None -> (
            (* All groups too big: split the best one. *)
            let pick = ref None in
            List.iter
              (fun g ->
                if Iter_group.size g > want then begin
                  let w = Bitset.dot g.Iter_group.tag cl.(r).tag in
                  let dist =
                    abs (Ctam_poly.Iterset.min_key g.Iter_group.iters
                         - cl.(r).first_key)
                  in
                  match !pick with
                  | Some (_, w', dist') when w' > w || (w' = w && dist' <= dist)
                    -> ()
                  | _ -> pick := Some (g, w, dist)
                end)
              cl.(d).members;
            match !pick with
            | None -> ()
            | Some (g, _, _) ->
                let moved, kept = Iter_group.split_at want g in
                cl.(d).members <-
                  kept :: List.filter (fun x -> x != g) cl.(d).members;
                cl.(d).size <- cl.(d).size - want;
                cl.(r).members <- moved :: cl.(r).members;
                cl.(r).size <- cl.(r).size + want;
                cl.(r).tag <- Bitset.union cl.(r).tag moved.Iter_group.tag;
                continue_polish := true)
      end
    end
  done;
  Array.map cluster_groups cl

(* --- hierarchical distribution ------------------------------------- *)

let subtree_cores tree = List.length (Topology.cores_under tree)

(* Number of clustering stages on the deepest root-to-core path (only
   nodes with more than one child force a clustering decision). *)
let clustering_depth topo =
  let rec depth = function
    | Topology.Core _ -> 0
    | Topology.Cache (_, [ only ]) -> depth only
    | Topology.Cache (_, children) ->
        1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children
  in
  let forest = topo.Topology.roots in
  let base = List.fold_left (fun acc r -> max acc (depth r)) 0 forest in
  if List.length forest > 1 then base + 1 else base

type dependence_mode = Synchronize | Cluster

(* Paper section 3.5.2, first option: make every weakly-connected set of
   dependent groups a single indivisible unit ("associating an infinite
   edge weight"), so no inter-core synchronization is ever needed. *)
let fuse_dependent ~dep_graph groups =
  let n = Array.length groups in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else begin
      parent.(i) <- find parent.(i);
      parent.(i)
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  List.iter
    (fun (a, b) -> if a < n && b < n then union a b)
    (Ctam_deps.Dep_graph.edges dep_graph);
  let members = Hashtbl.create 16 in
  Array.iteri
    (fun i g ->
      let r = find i in
      Hashtbl.replace members r
        (g :: (try Hashtbl.find members r with Not_found -> [])))
    groups;
  let fused =
    Hashtbl.fold
      (fun _root gs acc ->
        match gs with
        | [ g ] -> g :: acc
        | g0 :: rest ->
            List.fold_left
              (fun acc g ->
                {
                  acc with
                  Iter_group.tag = Bitset.union acc.Iter_group.tag g.Iter_group.tag;
                  iters =
                    Ctam_poly.Iterset.union acc.Iter_group.iters
                      g.Iter_group.iters;
                })
              g0 rest
            :: acc
        | [] -> acc)
      members []
  in
  (* Keep deterministic order and dense ids. *)
  let fused =
    List.sort
      (fun a b ->
        compare
          (Ctam_poly.Iterset.min_key a.Iter_group.iters)
          (Ctam_poly.Iterset.min_key b.Iter_group.iters))
      fused
  in
  Array.of_list (List.mapi (fun i g -> { g with Iter_group.id = i }) fused)

let run ?(balance_threshold = default_balance_threshold)
    ?(dependence_mode = Synchronize) ?dep_graph topo groups =
  let groups, allow_splits =
    match (dependence_mode, dep_graph) with
    | Cluster, Some dg when not (Ctam_deps.Dep_graph.is_empty dg) ->
        (* Fused dependence clusters are indivisible: splitting them
           would reintroduce a cross-core dependence without any
           synchronization to protect it. *)
        (fuse_dependent ~dep_graph:dg groups, false)
    | (Cluster | Synchronize), _ -> (groups, true)
  in
  let result = Array.make topo.Topology.num_cores [] in
  (* Imbalance compounds multiplicatively across clustering levels;
     dividing the tolerance by the level count keeps the *global*
     per-core imbalance within the requested threshold. *)
  let levels = max 1 (clustering_depth topo) in
  let level_threshold = balance_threshold /. float_of_int levels in
  let rec assign tree groups =
    match tree with
    | Topology.Core c -> result.(c) <- groups
    | Topology.Cache (_, [ only ]) -> assign only groups
    | Topology.Cache (_, children) -> distribute_children children groups
  and distribute_children children groups =
    let k = List.length children in
    let clusters = Array.of_list (cluster_into ~allow_splits k groups) in
    let weights = Array.of_list (List.map subtree_cores children) in
    let balanced =
      balance ~allow_splits ~threshold:level_threshold ~weights clusters
    in
    List.iteri (fun i child -> assign child balanced.(i)) children
  in
  (match topo.Topology.roots with
  | [ root ] -> assign root (Array.to_list groups)
  | roots ->
      (* Memory is the conceptual root over multiple last-level caches. *)
      distribute_children roots (Array.to_list groups));
  result
