open Ctam_blocks

type t = { tags : Bitset.t array }

let build groups =
  { tags = Array.map (fun g -> g.Iter_group.tag) groups }

let num_nodes t = Array.length t.tags

let weight t a b =
  if a < 0 || a >= num_nodes t || b < 0 || b >= num_nodes t then
    invalid_arg "Affinity_graph.weight";
  Bitset.dot t.tags.(a) t.tags.(b)

let edges t =
  let n = num_nodes t in
  let acc = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let w = Bitset.dot t.tags.(a) t.tags.(b) in
      if w > 0 then acc := (a, b, w) :: !acc
    done
  done;
  List.rev !acc

let total_weight t =
  List.fold_left (fun acc (_, _, w) -> acc + w) 0 (edges t)

let pp ppf t =
  Fmt.pf ppf "affinity_graph(%d nodes, %d weighted edges)" (num_nodes t)
    (List.length (edges t))
