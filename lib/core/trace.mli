(** Building simulator access streams from iteration orders. *)

open Ctam_poly
open Ctam_ir
open Ctam_blocks

(** [of_iters layout nest iters] emits, for each iteration in order,
    one encoded access per reference of the nest body (program order:
    reads of each statement, then its write). *)
val of_iters : Layout.t -> Nest.t -> int array list -> int array

(** [of_group layout nest g] enumerates the group's iterations in
    lexicographic order. *)
val of_group : Layout.t -> Nest.t -> Iter_group.t -> int array

(** [of_groups layout nest gs] concatenates the groups in list order. *)
val of_groups : Layout.t -> Nest.t -> Iter_group.t list -> int array

(** Whole-nest sequential stream in original program order. *)
val serial : Layout.t -> Nest.t -> int array

(** [of_iterset layout nest s] lexicographic stream of a set. *)
val of_iterset : Layout.t -> Nest.t -> Iterset.t -> int array

(** {2 Lazy streams}

    Generator-backed {!Ctam_cachesim.Engine.stream}s yielding exactly
    the access sequences of the eager builders above, without
    materializing the access array. *)

(** Lazy {!of_iters}: the iteration list stays the backing store; only
    the (per-reference larger) access expansion is on demand. *)
val stream_of_iters :
  Layout.t -> Nest.t -> int array list -> Ctam_cachesim.Engine.stream

(** Lazy {!of_group}: walks a {!Ctam_poly.Codegen} box decomposition
    of the group's iteration set in global lexicographic order. *)
val stream_of_group :
  Layout.t -> Nest.t -> Iter_group.t -> Ctam_cachesim.Engine.stream

(** Lazy {!of_groups}: chains the groups in list order. *)
val stream_of_groups :
  Layout.t -> Nest.t -> Iter_group.t list -> Ctam_cachesim.Engine.stream

(** Lazy {!serial}: a domain odometer regenerates program order on
    every run; nothing is materialized. *)
val stream_serial : Layout.t -> Nest.t -> Ctam_cachesim.Engine.stream
