open Ctam_arch
open Ctam_ir
open Ctam_blocks
open Ctam_deps
open Ctam_cachesim

let default_steal_cost = 200

(* Longest-path dependence level of every group (0 = no predecessors). *)
let dependence_levels dag =
  let n = Dep_graph.num_nodes dag in
  let level = Array.make n 0 in
  List.iter
    (fun v ->
      List.iter
        (fun p -> level.(v) <- max level.(v) (level.(p) + 1))
        (Dep_graph.preds dag v))
    (Dep_graph.topo_order dag);
  level

let run ?(params = Mapping.default_params) ?(config = Engine.default_config)
    ?(steal_cost = default_steal_cost) ~machine program =
  let n = machine.Topology.num_cores in
  let line =
    match Topology.caches machine with
    | p :: _ -> p.Topology.line
    | [] -> 64
  in
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let align = params.Mapping.block_size * line / gcd params.Mapping.block_size line in
  let layout = Layout.of_program ~align program in
  let h = Hierarchy.create machine in
  let clock = Array.make n 0 in
  let busy = Array.make n 0 in
  let total_accesses = ref 0 in
  let barriers = ref 0 in
  let barrier () =
    let tmax = Array.fold_left max 0 clock in
    Array.fill clock 0 n (tmax + config.Engine.barrier_cost);
    incr barriers
  in
  (* Execute a batch of streams through a central queue. *)
  let run_queue streams =
    let queue = Queue.create () in
    List.iter (fun s -> Queue.add s queue) streams;
    let current = Array.make n [||] in
    let pos = Array.make n 0 in
    let active c = pos.(c) < Array.length current.(c) in
    let refill c =
      if (not (active c)) && not (Queue.is_empty queue) then begin
        current.(c) <- Queue.pop queue;
        pos.(c) <- 0;
        (* The pull itself costs a dispatch. *)
        clock.(c) <- clock.(c) + steal_cost;
        busy.(c) <- busy.(c) + steal_cost
      end
    in
    for c = 0 to n - 1 do
      refill c
    done;
    let rec loop () =
      (* The core with the smallest clock among those with work issues
         the next access. *)
      let best = ref (-1) in
      for c = 0 to n - 1 do
        if active c && (!best < 0 || clock.(c) < clock.(!best)) then best := c
      done;
      if !best >= 0 then begin
        let c = !best in
        let addr, write = Engine.decode_access current.(c).(pos.(c)) in
        pos.(c) <- pos.(c) + 1;
        incr total_accesses;
        let lat = Hierarchy.access h ~core:c ~addr ~write in
        let cost = config.Engine.issue_cost + lat in
        clock.(c) <- clock.(c) + cost;
        busy.(c) <- busy.(c) + cost;
        refill c;
        loop ()
      end
    in
    loop ()
  in
  List.iter
    (fun nest ->
      if not nest.Nest.parallel then begin
        let stream = Trace.serial layout nest in
        Array.iter
          (fun e ->
            let addr, write = Engine.decode_access e in
            incr total_accesses;
            let lat = Hierarchy.access h ~core:0 ~addr ~write in
            clock.(0) <- clock.(0) + config.Engine.issue_cost + lat;
            busy.(0) <- busy.(0) + config.Engine.issue_cost + lat)
          stream
      end
      else begin
        let bm, _ =
          Block_map.for_program ~block_size:params.Mapping.block_size ~line
            program
        in
        let grouping =
          Tags.group_capped ~max_groups:params.Mapping.max_groups nest bm
        in
        let dg0 = Group_deps.compute grouping in
        let groups, dag =
          if Dep_graph.is_empty dg0 then (grouping.Tags.groups, dg0)
          else Group_deps.merge_cycles grouping dg0
        in
        if Dep_graph.is_empty dag then
          run_queue
            (Array.to_list groups
            |> List.map (fun g -> Trace.of_group layout nest g))
        else begin
          (* Dependence levels become barrier-separated batches. *)
          let levels = dependence_levels dag in
          let max_level = Array.fold_left max 0 levels in
          for l = 0 to max_level do
            let batch =
              Array.to_list groups
              |> List.filter (fun g -> levels.(g.Iter_group.id) = l)
              |> List.map (fun g -> Trace.of_group layout nest g)
            in
            run_queue batch;
            if l < max_level then barrier ()
          done
        end
      end)
    program.Program.nests;
  {
    Stats.per_level = Hierarchy.level_stats h;
    mem_accesses = Hierarchy.mem_accesses h;
    total_accesses = !total_accesses;
    cycles = Array.fold_left max 0 clock;
    core_cycles = busy;
    barriers = !barriers;
  }
