open Ctam_poly
open Ctam_ir

let dsl_type arr =
  match arr.Array_decl.elem_size with
  | 8 -> "double"
  | 4 -> "float"
  | 1 -> "char"
  | n ->
      invalid_arg
        (Printf.sprintf "Unparse: no DSL type for %d-byte elements" n)

let render_decl buf arr =
  Buffer.add_string buf (dsl_type arr);
  Buffer.add_char buf ' ';
  Buffer.add_string buf arr.Array_decl.name;
  Array.iter
    (fun d -> Buffer.add_string buf (Printf.sprintf "[%d]" d))
    arr.Array_decl.dims;
  Buffer.add_string buf ";\n"

let affine ~names e = Affine.to_string ~names e

let render_ref ~names buf r =
  Buffer.add_string buf r.Reference.array_name;
  Array.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "[%s]" (affine ~names s)))
    r.Reference.subs

let rec render_expr ~names buf = function
  | Expr.Const c ->
      (* Keep a decimal point so the token stays a FLOAT. *)
      if Float.is_integer c then
        Buffer.add_string buf (Printf.sprintf "%.1f" c)
      else Buffer.add_string buf (Printf.sprintf "%g" c)
  | Expr.Index j ->
      Buffer.add_string buf
        (if j < Array.length names then names.(j) else Printf.sprintf "i%d" j)
  | Expr.Load r -> render_ref ~names buf r
  | Expr.Binop (op, a, b) ->
      Buffer.add_char buf '(';
      render_expr ~names buf a;
      Buffer.add_string buf
        (match op with
        | Expr.Add -> " + "
        | Expr.Sub -> " - "
        | Expr.Mul -> " * "
        | Expr.Div -> " / ");
      render_expr ~names buf b;
      Buffer.add_char buf ')'

let render_nest buf nest =
  let names = nest.Nest.index_names in
  let d = Nest.depth nest in
  if nest.Nest.parallel then Buffer.add_string buf "parallel ";
  Array.iteri
    (fun j (lo, hi) ->
      if j > 0 then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * j) ' ')
      end;
      Buffer.add_string buf
        (Printf.sprintf "for (%s = %s; %s <= %s; %s++)" names.(j)
           (affine ~names lo) names.(j) (affine ~names hi) names.(j)))
    (Domain.bounds nest.Nest.domain);
  Buffer.add_string buf " {\n";
  List.iter
    (fun s ->
      Buffer.add_string buf (String.make (2 * d) ' ');
      render_ref ~names buf s.Stmt.lhs;
      Buffer.add_string buf " = ";
      render_expr ~names buf s.Stmt.rhs;
      Buffer.add_string buf ";\n")
    nest.Nest.body;
  Buffer.add_string buf (String.make (2 * (d - 1)) ' ');
  Buffer.add_string buf "}\n"

let program (p : Program.t) =
  List.iter
    (fun nest ->
      if Domain.guards nest.Nest.domain <> [] then
        invalid_arg "Unparse: guarded domains have no DSL form")
    p.Program.nests;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "program %s;\n\n" p.Program.name);
  List.iter (render_decl buf) p.Program.arrays;
  List.iter
    (fun nest ->
      Buffer.add_char buf '\n';
      render_nest buf nest)
    p.Program.nests;
  Buffer.contents buf
