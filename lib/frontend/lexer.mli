(** Hand-written lexer for the loop-nest DSL.

    Supports line comments [// ...], block comments [/* ... */] and
    the token set of {!Token}. *)

(** Tokenize a whole source string, ending with [EOF].
    @raise Parse_error.Error on illegal characters or malformed
    numbers/comments. *)
val tokenize : string -> Token.spanned list
