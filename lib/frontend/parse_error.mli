(** Frontend diagnostics. *)

exception Error of Token.pos * string

(** [fail pos fmt ...] raises {!Error} with a formatted message. *)
val fail : Token.pos -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Render an error against the source text, with a caret line. *)
val render : source:string -> Token.pos -> string -> string
