(** Unparsing: render an IR program back into DSL source text.

    Round-trips with {!Lower.compile}: recompiling the rendered text
    yields a structurally equivalent program (same domains, references
    and parallel flags).  Useful for dumping synthesized workloads as
    editable `.ctam` files. *)

(** [program p] renders the whole program.
    @raise Invalid_argument for element sizes with no DSL type
    (supported: 8 = double, 4 = float, 1 = char). *)
val program : Ctam_ir.Program.t -> string
