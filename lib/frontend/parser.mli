(** Recursive-descent parser for the loop-nest DSL.

    Grammar (LL(1)):
    {v
    program  ::= "program" IDENT ";" decl* nest+
    decl     ::= type IDENT ("[" INT "]")+ ";"
    nest     ::= ["parallel"] loop
    loop     ::= "for" "(" IDENT "=" aexpr ";"
                          IDENT ("<" | "<=") aexpr ";"
                          IDENT "++" ")" body
    body     ::= loop | "{" stmt+ "}" | stmt
    stmt     ::= IDENT ("[" aexpr "]")+ "=" expr ";"
    v} *)

(** Parse a full program.  @raise Parse_error.Error on syntax errors. *)
val parse : string -> Ast.program

(** Parse from a token list (exposed for tests). *)
val parse_tokens : Token.spanned list -> Ast.program
