type pos = { line : int; col : int }

type t =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_PROGRAM
  | KW_PARALLEL
  | KW_FOR
  | KW_DOUBLE
  | KW_FLOAT
  | KW_INT
  | KW_CHAR
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | SEMI
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PLUSPLUS
  | LT
  | LE
  | GT
  | GE
  | EOF

type spanned = { tok : t; pos : pos }

let describe = function
  | INT n -> Printf.sprintf "integer %d" n
  | FLOAT f -> Printf.sprintf "float %g" f
  | IDENT s -> Printf.sprintf "identifier '%s'" s
  | KW_PROGRAM -> "'program'"
  | KW_PARALLEL -> "'parallel'"
  | KW_FOR -> "'for'"
  | KW_DOUBLE -> "'double'"
  | KW_FLOAT -> "'float'"
  | KW_INT -> "'int'"
  | KW_CHAR -> "'char'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | SEMI -> "';'"
  | ASSIGN -> "'='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PLUSPLUS -> "'++'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EOF -> "end of input"

let pp_pos ppf p = Fmt.pf ppf "line %d, column %d" p.line p.col
