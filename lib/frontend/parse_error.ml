exception Error of Token.pos * string

let fail pos fmt = Format.kasprintf (fun msg -> raise (Error (pos, msg))) fmt

let render ~source pos msg =
  let lines = String.split_on_char '\n' source in
  let line_text =
    match List.nth_opt lines (pos.Token.line - 1) with
    | Some l -> l
    | None -> ""
  in
  let caret = String.make (max 0 (pos.Token.col - 1)) ' ' ^ "^" in
  Fmt.str "%a: %s@.  %s@.  %s" Token.pp_pos pos msg line_text caret
