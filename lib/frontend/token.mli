(** Tokens of the loop-nest DSL (the paper's C-like pseudo-language). *)

type pos = { line : int; col : int }

type t =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_PROGRAM
  | KW_PARALLEL
  | KW_FOR
  | KW_DOUBLE
  | KW_FLOAT
  | KW_INT
  | KW_CHAR
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | SEMI
  | ASSIGN      (** [=] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PLUSPLUS    (** [++] *)
  | LT
  | LE
  | GT
  | GE
  | EOF

type spanned = { tok : t; pos : pos }

val describe : t -> string
val pp_pos : pos Fmt.t
