open Token
open Ast

type state = { mutable toks : Token.spanned list }

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> { tok = EOF; pos = { line = 0; col = 0 } }

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st tok =
  let t = peek st in
  if t.tok = tok then advance st
  else
    Parse_error.fail t.pos "expected %s but found %s" (Token.describe tok)
      (Token.describe t.tok)

let expect_ident st =
  let t = peek st in
  match t.tok with
  | IDENT s ->
      advance st;
      (s, t.pos)
  | other ->
      Parse_error.fail t.pos "expected identifier but found %s"
        (Token.describe other)

let expect_int st =
  let t = peek st in
  match t.tok with
  | INT n ->
      advance st;
      n
  | other ->
      Parse_error.fail t.pos "expected integer but found %s"
        (Token.describe other)

(* --- subscript / bound expressions (affine-candidate syntax) --- *)

let rec parse_aexpr st =
  let lhs = parse_aterm st in
  parse_aexpr_rest st lhs

and parse_aexpr_rest st lhs =
  match (peek st).tok with
  | PLUS ->
      advance st;
      let rhs = parse_aterm st in
      parse_aexpr_rest st (A_add (lhs, rhs))
  | MINUS ->
      advance st;
      let rhs = parse_aterm st in
      parse_aexpr_rest st (A_sub (lhs, rhs))
  | _ -> lhs

and parse_aterm st =
  let lhs = parse_afactor st in
  parse_aterm_rest st lhs

and parse_aterm_rest st lhs =
  match (peek st).tok with
  | STAR ->
      let pos = (peek st).pos in
      advance st;
      let rhs = parse_afactor st in
      parse_aterm_rest st (A_mul (lhs, rhs, pos))
  | _ -> lhs

and parse_afactor st =
  let t = peek st in
  match t.tok with
  | INT n ->
      advance st;
      A_int n
  | IDENT s ->
      advance st;
      A_var (s, t.pos)
  | MINUS ->
      advance st;
      A_neg (parse_afactor st)
  | LPAREN ->
      advance st;
      let e = parse_aexpr st in
      expect st RPAREN;
      e
  | other ->
      Parse_error.fail t.pos "expected subscript expression but found %s"
        (Token.describe other)

(* --- body (floating-point) expressions --- *)

let parse_subs st =
  let rec go acc =
    match (peek st).tok with
    | LBRACKET ->
        advance st;
        let s = parse_aexpr st in
        expect st RBRACKET;
        go (s :: acc)
    | _ -> List.rev acc
  in
  go []

let rec parse_expr st =
  let lhs = parse_term st in
  parse_expr_rest st lhs

and parse_expr_rest st lhs =
  match (peek st).tok with
  | PLUS ->
      advance st;
      let rhs = parse_term st in
      parse_expr_rest st (E_add (lhs, rhs))
  | MINUS ->
      advance st;
      let rhs = parse_term st in
      parse_expr_rest st (E_sub (lhs, rhs))
  | _ -> lhs

and parse_term st =
  let lhs = parse_factor st in
  parse_term_rest st lhs

and parse_term_rest st lhs =
  match (peek st).tok with
  | STAR ->
      advance st;
      let rhs = parse_factor st in
      parse_term_rest st (E_mul (lhs, rhs))
  | SLASH ->
      advance st;
      let rhs = parse_factor st in
      parse_term_rest st (E_div (lhs, rhs))
  | _ -> lhs

and parse_factor st =
  let t = peek st in
  match t.tok with
  | FLOAT f ->
      advance st;
      E_num f
  | INT n ->
      advance st;
      E_num (float_of_int n)
  | MINUS ->
      advance st;
      E_sub (E_num 0., parse_factor st)
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN;
      e
  | IDENT s -> (
      advance st;
      match (peek st).tok with
      | LBRACKET ->
          let subs = parse_subs st in
          E_ref (s, subs, t.pos)
      | _ -> E_index (s, t.pos))
  | other ->
      Parse_error.fail t.pos "expected expression but found %s"
        (Token.describe other)

(* --- statements, loops, declarations --- *)

let parse_stmt st =
  let name, pos = expect_ident st in
  let subs = parse_subs st in
  if subs = [] then Parse_error.fail pos "assignment target must be an array";
  expect st ASSIGN;
  let rhs = parse_expr st in
  expect st SEMI;
  { lhs_array = name; lhs_subs = subs; lhs_pos = pos; rhs }

let rec parse_loop st =
  expect st KW_FOR;
  expect st LPAREN;
  let var, var_pos = expect_ident st in
  expect st ASSIGN;
  let lo = parse_aexpr st in
  expect st SEMI;
  let var2, var2_pos = expect_ident st in
  if var2 <> var then
    Parse_error.fail var2_pos "loop condition tests '%s', expected '%s'" var2
      var;
  let strict =
    match (peek st).tok with
    | LT ->
        advance st;
        true
    | LE ->
        advance st;
        false
    | other ->
        Parse_error.fail (peek st).pos "expected '<' or '<=' but found %s"
          (Token.describe other)
  in
  let hi = parse_aexpr st in
  expect st SEMI;
  let var3, var3_pos = expect_ident st in
  if var3 <> var then
    Parse_error.fail var3_pos "loop increments '%s', expected '%s'" var3 var;
  expect st PLUSPLUS;
  expect st RPAREN;
  let body = parse_body st in
  { var; var_pos; lo; hi; strict; body }

and parse_body st =
  match (peek st).tok with
  | KW_FOR -> B_loop (parse_loop st)
  | LBRACE ->
      advance st;
      let rec go acc =
        match (peek st).tok with
        | RBRACE ->
            advance st;
            List.rev acc
        | _ -> go (parse_stmt st :: acc)
      in
      let stmts = go [] in
      if stmts = [] then
        Parse_error.fail (peek st).pos "empty loop body";
      B_stmts stmts
  | _ -> B_stmts [ parse_stmt st ]

let parse_type st =
  let t = peek st in
  match t.tok with
  | KW_DOUBLE ->
      advance st;
      Some T_double
  | KW_FLOAT ->
      advance st;
      Some T_float
  | KW_INT ->
      advance st;
      Some T_int
  | KW_CHAR ->
      advance st;
      Some T_char
  | _ -> None

let parse_decl st ty =
  let name, pos = expect_ident st in
  let rec dims acc =
    match (peek st).tok with
    | LBRACKET ->
        advance st;
        let n = expect_int st in
        expect st RBRACKET;
        dims (n :: acc)
    | _ -> List.rev acc
  in
  let ds = dims [] in
  if ds = [] then Parse_error.fail pos "array '%s' needs dimensions" name;
  expect st SEMI;
  { arr_name = name; arr_ty = ty; arr_dims = ds; arr_pos = pos }

let parse_nest st =
  let t = peek st in
  let parallel =
    if t.tok = KW_PARALLEL then begin
      advance st;
      true
    end
    else false
  in
  let loop = parse_loop st in
  { nest_parallel = parallel; nest_loop = loop; nest_pos = t.pos }

let parse_tokens toks =
  let st = { toks } in
  expect st KW_PROGRAM;
  let name, _ = expect_ident st in
  expect st SEMI;
  let rec decls acc =
    match parse_type st with
    | Some ty -> decls (parse_decl st ty :: acc)
    | None -> List.rev acc
  in
  let decls = decls [] in
  let rec nests acc =
    match (peek st).tok with
    | KW_FOR | KW_PARALLEL -> nests (parse_nest st :: acc)
    | EOF -> List.rev acc
    | other ->
        Parse_error.fail (peek st).pos
          "expected 'for', 'parallel' or end of input but found %s"
          (Token.describe other)
  in
  let nests = nests [] in
  if nests = [] then
    Parse_error.fail (peek st).pos "program has no loop nests";
  { prog_name = name; decls; nests }

let parse src = parse_tokens (Lexer.tokenize src)
