open Ctam_poly
open Ctam_ir
open Ast

(* Lower a subscript/bound expression to an affine form over a nest of
   depth [d], with [env] mapping loop-variable names to dimensions. *)
let rec lower_aexpr ~d ~env = function
  | A_int n -> Affine.const d n
  | A_var (v, pos) -> (
      match List.assoc_opt v env with
      | Some j -> Affine.var d j
      | None -> Parse_error.fail pos "'%s' is not a loop variable in scope" v)
  | A_add (a, b) -> Affine.add (lower_aexpr ~d ~env a) (lower_aexpr ~d ~env b)
  | A_sub (a, b) -> Affine.sub (lower_aexpr ~d ~env a) (lower_aexpr ~d ~env b)
  | A_neg a -> Affine.neg (lower_aexpr ~d ~env a)
  | A_mul (a, b, pos) -> (
      let la = lower_aexpr ~d ~env a and lb = lower_aexpr ~d ~env b in
      match (Affine.is_const la, Affine.is_const lb) with
      | true, _ -> Affine.scale (Affine.eval la (Array.make d 0)) lb
      | _, true -> Affine.scale (Affine.eval lb (Array.make d 0)) la
      | false, false ->
          Parse_error.fail pos "non-affine subscript: product of two indices")

let lower_ref ~d ~env ~kind name subs pos =
  if subs = [] then Parse_error.fail pos "'%s' used without subscripts" name;
  let subs = Array.of_list (List.map (lower_aexpr ~d ~env) subs) in
  Reference.make ~array_name:name ~subs ~kind

let rec lower_expr ~d ~env = function
  | E_num f -> Expr.const f
  | E_index (v, pos) -> (
      match List.assoc_opt v env with
      | Some j -> Expr.index j
      | None ->
          Parse_error.fail pos
            "'%s' is not a loop variable (scalars are not supported)" v)
  | E_ref (name, subs, pos) ->
      Expr.load (lower_ref ~d ~env ~kind:Reference.Read name subs pos)
  | E_add (a, b) -> Expr.add (lower_expr ~d ~env a) (lower_expr ~d ~env b)
  | E_sub (a, b) -> Expr.sub (lower_expr ~d ~env a) (lower_expr ~d ~env b)
  | E_mul (a, b) -> Expr.mul (lower_expr ~d ~env a) (lower_expr ~d ~env b)
  | E_div (a, b) -> Expr.div (lower_expr ~d ~env a) (lower_expr ~d ~env b)

let lower_stmt ~d ~env s =
  let lhs =
    lower_ref ~d ~env ~kind:Reference.Write s.lhs_array s.lhs_subs s.lhs_pos
  in
  Stmt.assign lhs (lower_expr ~d ~env s.rhs)

(* Flatten the loop chain of a nest into (var, lo, hi, strict) levels
   and the innermost statement list. *)
let rec collect_levels acc loop =
  let level = (loop.var, loop.var_pos, loop.lo, loop.hi, loop.strict) in
  match loop.body with
  | B_loop inner -> collect_levels (level :: acc) inner
  | B_stmts stmts -> (List.rev (level :: acc), stmts)

let lower_nest ~name (nest : Ast.nest) =
  let levels, stmts = collect_levels [] nest.nest_loop in
  let d = List.length levels in
  let env =
    List.mapi (fun j (v, pos, _, _, _) -> (v, pos, j)) levels
    |> List.map (fun (v, _, j) -> (v, j))
  in
  (* Reject duplicate loop variables. *)
  List.iteri
    (fun j (v, pos, _, _, _) ->
      List.iteri
        (fun j' (v', _, _, _, _) ->
          if j' < j && v = v' then
            Parse_error.fail pos "duplicate loop variable '%s'" v)
        levels)
    levels;
  let bounds =
    Array.of_list
      (List.map
         (fun (_, pos, lo, hi, strict) ->
           let lo = lower_aexpr ~d ~env lo in
           let hi = lower_aexpr ~d ~env hi in
           let hi = if strict then Affine.add_const (-1) hi else hi in
           (pos, lo, hi))
         levels)
  in
  let domain =
    try
      Domain.make ~bounds:(Array.map (fun (_, lo, hi) -> (lo, hi)) bounds)
        ~guards:[]
    with Invalid_argument _ ->
      let pos, _, _ = bounds.(0) in
      Parse_error.fail pos "loop bounds may only reference outer loop indices"
  in
  let body = List.map (lower_stmt ~d ~env) stmts in
  Nest.make ~name
    ~index_names:(Array.of_list (List.map (fun (v, _, _, _, _) -> v) levels))
    ~domain ~body ~parallel:nest.nest_parallel

let lower_program (p : Ast.program) =
  let arrays =
    List.map
      (fun dcl ->
        Array_decl.make ~name:dcl.arr_name
          ~dims:(Array.of_list dcl.arr_dims)
          ~elem_size:(elem_size dcl.arr_ty))
      p.decls
  in
  let nests =
    List.mapi
      (fun i n -> lower_nest ~name:(Printf.sprintf "%s_nest%d" p.prog_name i) n)
      p.nests
  in
  try Program.make ~name:p.prog_name ~arrays ~nests
  with Invalid_argument msg ->
    Parse_error.fail { Token.line = 1; col = 1 } "%s" msg

let compile src = lower_program (Parser.parse src)
