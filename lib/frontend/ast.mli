(** Abstract syntax of the loop-nest DSL, before affine checking. *)

type pos = Token.pos

(** Index/bound/subscript expressions (checked affine during lowering). *)
type aexpr =
  | A_int of int
  | A_var of string * pos
  | A_add of aexpr * aexpr
  | A_sub of aexpr * aexpr
  | A_mul of aexpr * aexpr * pos  (** position kept for non-affine errors *)
  | A_neg of aexpr

(** Body (floating-point) expressions. *)
type expr =
  | E_num of float
  | E_index of string * pos       (** a loop index used as a value *)
  | E_ref of string * aexpr list * pos
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_mul of expr * expr
  | E_div of expr * expr

type stmt = {
  lhs_array : string;
  lhs_subs : aexpr list;
  lhs_pos : pos;
  rhs : expr;
}

type loop = {
  var : string;
  var_pos : pos;
  lo : aexpr;
  hi : aexpr;
  strict : bool;  (** [true] for [<], [false] for [<=] *)
  body : body;
}

and body = B_loop of loop | B_stmts of stmt list

type elem_type = T_double | T_float | T_int | T_char

type decl = { arr_name : string; arr_ty : elem_type; arr_dims : int list; arr_pos : pos }

type nest = { nest_parallel : bool; nest_loop : loop; nest_pos : pos }

type program = { prog_name : string; decls : decl list; nests : nest list }

val elem_size : elem_type -> int
