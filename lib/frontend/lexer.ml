open Token

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let pos st = { line = st.line; col = st.col }
let at_end st = st.off >= String.length st.src
let peek st = if at_end st then '\000' else st.src.[st.off]

let peek2 st =
  if st.off + 1 >= String.length st.src then '\000' else st.src.[st.off + 1]

let advance st =
  if not (at_end st) then begin
    if st.src.[st.off] = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 1
    end
    else st.col <- st.col + 1;
    st.off <- st.off + 1
  end

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_ws st =
  match peek st with
  | ' ' | '\t' | '\r' | '\n' ->
      advance st;
      skip_ws st
  | '/' when peek2 st = '/' ->
      while (not (at_end st)) && peek st <> '\n' do
        advance st
      done;
      skip_ws st
  | '/' when peek2 st = '*' ->
      let start = pos st in
      advance st;
      advance st;
      let rec go () =
        if at_end st then Parse_error.fail start "unterminated comment"
        else if peek st = '*' && peek2 st = '/' then begin
          advance st;
          advance st
        end
        else begin
          advance st;
          go ()
        end
      in
      go ();
      skip_ws st
  | _ -> ()

let lex_number st =
  let p = pos st in
  let start = st.off in
  while is_digit (peek st) do
    advance st
  done;
  let is_float =
    if peek st = '.' && is_digit (peek2 st) then begin
      advance st;
      while is_digit (peek st) do
        advance st
      done;
      true
    end
    else false
  in
  let text = String.sub st.src start (st.off - start) in
  (* [123abc] must not lex as [INT 123; IDENT abc]: a number followed
     immediately by an identifier character is a malformed literal. *)
  if is_alpha (peek st) then
    Parse_error.fail p "malformed number: '%c' directly after '%s'" (peek st)
      text;
  if is_float then { tok = FLOAT (float_of_string text); pos = p }
  else
    match int_of_string_opt text with
    | Some n -> { tok = INT n; pos = p }
    | None -> Parse_error.fail p "integer literal out of range: %s" text

let keyword = function
  | "program" -> Some KW_PROGRAM
  | "parallel" -> Some KW_PARALLEL
  | "for" -> Some KW_FOR
  | "double" -> Some KW_DOUBLE
  | "float" -> Some KW_FLOAT
  | "int" -> Some KW_INT
  | "char" -> Some KW_CHAR
  | _ -> None

let lex_ident st =
  let p = pos st in
  let start = st.off in
  while is_alnum (peek st) do
    advance st
  done;
  let text = String.sub st.src start (st.off - start) in
  match keyword text with
  | Some kw -> { tok = kw; pos = p }
  | None -> { tok = IDENT text; pos = p }

let next st =
  skip_ws st;
  let p = pos st in
  if at_end st then { tok = EOF; pos = p }
  else
    let c = peek st in
    if is_digit c then lex_number st
    else if is_alpha c then lex_ident st
    else begin
      let simple tok =
        advance st;
        { tok; pos = p }
      in
      let two tok =
        advance st;
        advance st;
        { tok; pos = p }
      in
      match c with
      | '(' -> simple LPAREN
      | ')' -> simple RPAREN
      | '[' -> simple LBRACKET
      | ']' -> simple RBRACKET
      | '{' -> simple LBRACE
      | '}' -> simple RBRACE
      | ';' -> simple SEMI
      | '+' -> if peek2 st = '+' then two PLUSPLUS else simple PLUS
      | '-' -> simple MINUS
      | '*' -> simple STAR
      | '/' -> simple SLASH
      | '<' -> if peek2 st = '=' then two LE else simple LT
      | '>' -> if peek2 st = '=' then two GE else simple GT
      | '=' -> simple ASSIGN
      | c -> Parse_error.fail p "illegal character '%c'" c
    end

let tokenize src =
  let st = { src; off = 0; line = 1; col = 1 } in
  let rec go acc =
    let t = next st in
    if t.tok = EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
