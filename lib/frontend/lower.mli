(** Lowering: DSL abstract syntax to the affine loop IR.

    Performs the affine checks the grammar cannot express: subscripts
    and loop bounds must be affine in the loop indices, bounds may only
    reference outer indices, and every identifier in index position
    must be a loop variable of the enclosing nest.

    @raise Parse_error.Error on any violation, with a source position. *)

val lower_program : Ast.program -> Ctam_ir.Program.t

(** Convenience: parse then lower. *)
val compile : string -> Ctam_ir.Program.t
