open Ctam_blocks
open Ctam_core
module Iterset = Ctam_poly.Iterset

type corruption = Bad_coverage | Bad_order

let of_string = function
  | "bad-coverage" -> Ok Bad_coverage
  | "bad-order" -> Ok Bad_order
  | s -> Error (Fmt.str "unknown corruption %S (expected bad-coverage or bad-order)" s)

let to_string = function
  | Bad_coverage -> "bad-coverage"
  | Bad_order -> "bad-order"

let all = [ Bad_coverage; Bad_order ]

(* Rewrite the first group (round-major, core-major order) for which
   [f] returns [Some g'] — everything else is untouched. *)
let map_first_group f plans =
  let hit = ref None in
  let plans =
    List.map
      (fun (plan : Mapping.nest_plan) ->
        let rounds =
          List.map
            (fun round ->
              Array.map
                (List.map (fun (g : Iter_group.t) ->
                     if !hit <> None then g
                     else
                       match f plan g with
                       | None -> g
                       | Some g' ->
                           hit := Some (plan.Mapping.plan_nest.Ctam_ir.Nest.name, g);
                           g'))
                round)
            plan.Mapping.plan_rounds
        in
        { plan with Mapping.plan_rounds = rounds })
      plans
  in
  (plans, !hit)

let bad_coverage (c : Mapping.compiled) =
  let plans, hit =
    map_first_group
      (fun _plan g ->
        if Iterset.cardinal g.Iter_group.iters < 1 then None
        else
          let _dropped, rest = Iterset.split_at 1 g.Iter_group.iters in
          Some { g with Iter_group.iters = rest })
      c.Mapping.plans
  in
  match hit with
  | None -> invalid_arg "Inject.apply: program has no iterations to drop"
  | Some (nest, g) ->
      ( { c with Mapping.plans },
        Fmt.str
          "dropped the lexicographically first iteration of group %d in nest \
           %s (coverage hole of 1 point)"
          g.Iter_group.id nest )

(* Reversing the rounds of a barriered plan runs at least one
   dependence backwards (the schedule only emits several rounds when
   the dependence graph forces them).  Dependence-free programs have
   single-round plans, so there is nothing to reverse — instead plant
   a write-write conflict between two cores inside the first phase,
   which the race detector must flag. *)
let bad_order (c : Mapping.compiled) =
  let reversed = ref None in
  let plans =
    List.map
      (fun (plan : Mapping.nest_plan) ->
        if !reversed = None && List.length plan.Mapping.plan_rounds > 1 then begin
          reversed := Some plan.Mapping.plan_nest.Ctam_ir.Nest.name;
          { plan with Mapping.plan_rounds = List.rev plan.Mapping.plan_rounds }
        end
        else plan)
      c.Mapping.plans
  in
  match !reversed with
  | Some nest ->
      ( { c with Mapping.plans },
        Fmt.str "reversed the scheduling rounds of nest %s" nest )
  | None -> (
      match c.Mapping.phases with
      | phase :: rest when Array.length phase >= 2 ->
          let clash = Ctam_cachesim.Engine.encode_access ~addr:0 ~write:true in
          let phase =
            Array.mapi
              (fun core stream ->
                if core < 2 then
                  Ctam_cachesim.Engine.dense
                    (Array.append
                       (Ctam_cachesim.Engine.force_stream stream)
                       [| clash |])
                else stream)
              phase
          in
          ( { c with Mapping.phases = phase :: rest },
            "no multi-round plan to reverse; planted a same-address write on \
             cores 0 and 1 of phase 0 (cross-core race)" )
      | _ ->
          invalid_arg
            "Inject.apply: mapping has neither a multi-round plan nor a \
             multi-core phase")

let apply corruption c =
  match corruption with
  | Bad_coverage -> bad_coverage c
  | Bad_order -> bad_order c
