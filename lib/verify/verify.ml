open Ctam_arch
open Ctam_ir
open Ctam_blocks
open Ctam_deps
open Ctam_core
module J = Ctam_util.Json
module Iterset = Ctam_poly.Iterset
module Domain = Ctam_poly.Domain
module Codegen = Ctam_poly.Codegen

module Tel = Ctam_telemetry

let tel_checks =
  Tel.Metrics.Counter.v ~help:"Mapping verifications performed"
    "ctam_verify_checks_total"

let tel_violations =
  Tel.Metrics.Counter.v ~labels:[ "invariant" ]
    ~help:"Invariant violations found, by invariant"
    "ctam_verify_violations_total"

type issue = { invariant : string; detail : string }

type report = {
  issues : issue list;
  nests_checked : int;
  groups_checked : int;
  points_checked : int;
  edges_checked : int;
  phases_checked : int;
}

let ok r = r.issues = []

let issue invariant fmt = Fmt.kstr (fun detail -> { invariant; detail }) fmt

let pp_iv ppf iv =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ",") int) iv

(* Mutable accumulator threaded through the per-plan checks. *)
type acc = {
  mutable acc_issues : issue list;  (* newest first *)
  mutable nests : int;
  mutable groups : int;
  mutable points : int;
  mutable edges : int;
  mutable phases : int;
}

let add acc i = acc.acc_issues <- i :: acc.acc_issues

(* --- invariant 4: topology well-formedness --------------------------- *)

let check_topology topo =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let n = topo.Topology.num_cores in
  let leaf_cores = List.concat_map Topology.cores_under topo.Topology.roots in
  if List.sort compare leaf_cores <> List.init n Fun.id then
    add
      (issue "topology" "cores are not numbered 0..%d exactly once (leaves: %a)"
         (n - 1)
         Fmt.(list ~sep:comma int)
         leaf_cores);
  let path_levels c =
    List.map (fun p -> p.Topology.level) (Topology.path_of_core topo c)
  in
  for c = 0 to n - 1 do
    let levels = path_levels c in
    let rec strictly_ascending = function
      | a :: (b :: _ as rest) -> a < b && strictly_ascending rest
      | _ -> true
    in
    if not (strictly_ascending levels) then
      add
        (issue "topology"
           "core %d does not reach exactly one cache per level (path levels: \
            %a)"
           c
           Fmt.(list ~sep:comma int)
           levels)
  done;
  (* Sharing domains at each level partition the cores that have a
     cache of that level on their path. *)
  List.iter
    (fun level ->
      let domains = Topology.sharing_domains topo level in
      let members = List.concat domains in
      let sorted = List.sort compare members in
      let rec has_dup = function
        | a :: (b :: _ as rest) -> a = b || has_dup rest
        | _ -> false
      in
      if has_dup sorted then
        add
          (issue "topology"
             "level %d: some core belongs to several sharing domains (%a)"
             level
             Fmt.(list ~sep:semi (list ~sep:comma int))
             domains);
      let with_level =
        List.filter
          (fun c -> List.mem level (path_levels c))
          (List.init n Fun.id)
      in
      if List.sort_uniq compare members <> with_level then
        add
          (issue "topology"
             "level %d: sharing domains cover cores %a but the cores reaching \
              a level-%d cache are %a"
             level
             Fmt.(list ~sep:comma int)
             (List.sort_uniq compare members) level
             Fmt.(list ~sep:comma int)
             with_level))
    (Topology.levels topo);
  (* The sharing relation must be symmetric. *)
  for c1 = 0 to n - 1 do
    for c2 = c1 + 1 to n - 1 do
      let a = Topology.affinity_level topo c1 c2
      and b = Topology.affinity_level topo c2 c1 in
      if a <> b then
        add
          (issue "topology"
             "asymmetric sharing: affinity(%d,%d) = %a but affinity(%d,%d) = \
              %a"
             c1 c2
             Fmt.(option ~none:(any "none") int)
             a c2 c1
             Fmt.(option ~none:(any "none") int)
             b)
    done
  done;
  List.rev !issues

(* --- invariants 1 + 2: coverage/disjointness and codegen ------------- *)

(* Re-encode a group's points into [enc] (the checker's own encoder over
   the nest domain), reporting points that do not even fit the domain's
   bounding box.  Using a fresh encoder makes the set algebra
   independent of whichever encoder the pipeline built the group with. *)
let reencode acc enc ~nest_name ~group_id iters =
  let keys = ref [] in
  Iterset.iter
    (fun iv ->
      match Iterset.encode enc iv with
      | k -> keys := k :: !keys
      | exception Invalid_argument _ ->
          add acc
            (issue "coverage"
               "nest %s: group %d contains point %a outside the domain \
                bounding box"
               nest_name group_id pp_iv iv))
    iters;
  Iterset.of_keys enc (Array.of_list !keys)

let check_plan acc (plan : Mapping.nest_plan) =
  let nest = plan.Mapping.plan_nest in
  let nest_name = nest.Nest.name in
  let dom = nest.Nest.domain in
  let enc = Iterset.encoder_of_domain dom in
  let domain_set = Iterset.of_domain enc dom in
  let seen = ref (Iterset.empty enc) in
  acc.nests <- acc.nests + 1;
  List.iter
    (fun round ->
      Array.iter
        (List.iter (fun (g : Iter_group.t) ->
             acc.groups <- acc.groups + 1;
             acc.points <- acc.points + Iterset.cardinal g.Iter_group.iters;
             let gs =
               reencode acc enc ~nest_name ~group_id:g.Iter_group.id
                 g.Iter_group.iters
             in
             let overlap = Iterset.inter !seen gs in
             if not (Iterset.is_empty overlap) then
               add acc
                 (issue "disjointness"
                    "nest %s: group %d repeats %d iteration(s) already \
                     assigned elsewhere, e.g. %a"
                    nest_name g.Iter_group.id (Iterset.cardinal overlap) pp_iv
                    (Iterset.decode enc (Iterset.min_key overlap)));
             seen := Iterset.union !seen gs;
             (* Codegen faithfulness: the decomposed boxes must
                re-enumerate exactly the group's points. *)
             let cg = Codegen.decompose g.Iter_group.iters in
             let pts = List.sort compare (Codegen.enumerate cg) in
             let expect = Iterset.to_list g.Iter_group.iters in
             if pts <> expect then
               add acc
                 (issue "codegen"
                    "nest %s: group %d decomposes into boxes enumerating %d \
                     point(s) where the group has %d"
                    nest_name g.Iter_group.id (List.length pts)
                    (List.length expect))))
        round)
    plan.Mapping.plan_rounds;
  let missing = Iterset.diff domain_set !seen in
  if not (Iterset.is_empty missing) then
    add acc
      (issue "coverage"
         "nest %s: %d of %d iteration(s) are never assigned to any group, \
          e.g. %a"
         nest_name (Iterset.cardinal missing) (Iterset.cardinal domain_set)
         pp_iv
         (Iterset.decode enc (Iterset.min_key missing)))

(* --- invariant 3a: dependence legality ------------------------------- *)

(* Schedule position of one group occurrence.  [pos_a] precedes
   [pos_b] iff a phase boundary separates them, or they run
   sequentially on the same core. *)
let precedes (r1, c1, p1) (r2, c2, p2) =
  r1 < r2 || (r1 = r2 && c1 = c2 && p1 < p2)

(* Under [Distribute.Cluster], Topology_aware / Combined mappings fuse
   every weakly-connected set of dependent groups into one indivisible
   plan group with a fresh id (see [Distribute.fuse_dependent]), then
   drop the dependence graph: the whole cluster runs sequentially on
   one core in ascending iteration order — the original source order —
   so no cross-core ordering remains to enforce.  The plan's ids
   therefore no longer name the origin groups; instead of matching ids
   we check the clustering contract itself: each endpoint of every
   dependence edge must sit wholly inside a single scheduled plan
   group, and both endpoints of an edge must share that group. *)
let check_deps_clustered acc ~nest_name ~enc ~groups ~dag
    (plan : Mapping.nest_plan) =
  let occs = ref [] in
  List.iteri
    (fun r round ->
      Array.iteri
        (fun core gs ->
          List.iteri
            (fun pos (g : Iter_group.t) ->
              let iters =
                reencode acc enc ~nest_name ~group_id:g.Iter_group.id
                  g.Iter_group.iters
              in
              occs := ((r, core, pos), iters) :: !occs)
            gs)
        round)
    plan.Mapping.plan_rounds;
  let container id =
    let iters =
      reencode acc enc ~nest_name ~group_id:id groups.(id).Iter_group.iters
    in
    List.filter (fun (_, o) -> Iterset.subset iters o) !occs
  in
  let containers = Hashtbl.create 64 in
  let container_of id =
    match Hashtbl.find_opt containers id with
    | Some c -> c
    | None ->
        let c =
          match container id with
          | [ (occ, _) ] -> Some occ
          | [] ->
              add acc
                (issue "dependence"
                   "nest %s: dependent group %d is split across plan groups \
                    — its cluster is not indivisible"
                   nest_name id);
              None
          | _ :: _ :: _ ->
              (* Two scheduled groups each containing the same origin
                 group would duplicate its points; coverage flags the
                 duplication, here it breaks the ordering argument. *)
              add acc
                (issue "dependence"
                   "nest %s: dependent group %d appears in more than one \
                    plan group"
                   nest_name id);
              None
        in
        Hashtbl.replace containers id c;
        c
  in
  List.iter
    (fun (a, b) ->
      acc.edges <- acc.edges + 1;
      if a < Array.length groups && b < Array.length groups then
        match (container_of a, container_of b) with
        | Some ((_, ca, _) as oa), Some ((_, cb, _) as ob) ->
            if oa <> ob then
              add acc
                (issue "dependence"
                   "nest %s: dependence %d -> %d crosses clusters (cores %d \
                    and %d) with no synchronization"
                   nest_name a b ca cb)
        | _ -> ())
    (Dep_graph.edges dag)

let check_deps acc (c : Mapping.compiled) (plan : Mapping.nest_plan) =
  let nest = plan.Mapping.plan_nest in
  if nest.Nest.parallel then begin
    let _grouping, groups, dag =
      Mapping.grouping_for ~params:c.Mapping.params ~machine:c.Mapping.map_topo
        c.Mapping.program nest
    in
    if not (Dep_graph.is_empty dag) then begin
      let nest_name = nest.Nest.name in
      let clustered =
        c.Mapping.params.Mapping.dependence_mode = Distribute.Cluster
        && (match c.Mapping.scheme with
           | Mapping.Topology_aware | Mapping.Combined -> true
           | Mapping.Base | Mapping.Base_plus | Mapping.Local -> false)
      in
      if clustered then
        let enc = Iterset.encoder_of_domain nest.Nest.domain in
        check_deps_clustered acc ~nest_name ~enc ~groups ~dag plan
      else begin
      (* Occurrences of each origin group id: split parts share their
         origin's id and are all constrained at origin granularity. *)
      let occs : (int, int * int * int) Hashtbl.t = Hashtbl.create 64 in
      let parts : (int, Iterset.t list) Hashtbl.t = Hashtbl.create 64 in
      List.iteri
        (fun r round ->
          Array.iteri
            (fun core gs ->
              List.iteri
                (fun pos (g : Iter_group.t) ->
                  Hashtbl.add occs g.Iter_group.id (r, core, pos);
                  let prev =
                    Option.value ~default:[]
                      (Hashtbl.find_opt parts g.Iter_group.id)
                  in
                  Hashtbl.replace parts g.Iter_group.id
                    (g.Iter_group.iters :: prev))
                gs)
            round)
        plan.Mapping.plan_rounds;
      (* The plan's per-id content must match the recomputed grouping —
         otherwise the dependence graph below talks about different
         sets than the ones scheduled. *)
      let enc = Iterset.encoder_of_domain nest.Nest.domain in
      Array.iteri
        (fun id (g : Iter_group.t) ->
          let planned =
            List.fold_left
              (fun u s ->
                Iterset.union u
                  (reencode acc enc ~nest_name ~group_id:id s))
              (Iterset.empty enc)
              (Option.value ~default:[] (Hashtbl.find_opt parts id))
          in
          let expect = reencode acc enc ~nest_name ~group_id:id g.Iter_group.iters in
          if not (Iterset.equal planned expect) then
            add acc
              (issue "dependence"
                 "nest %s: scheduled parts of group %d hold %d iteration(s) \
                  but the grouping defines %d — dependence conclusions are \
                  unsound"
                 nest_name id (Iterset.cardinal planned)
                 (Iterset.cardinal expect)))
        groups;
      List.iter
        (fun (a, b) ->
          acc.edges <- acc.edges + 1;
          let oa = Hashtbl.find_all occs a and ob = Hashtbl.find_all occs b in
          if oa = [] || ob = [] then
            add acc
              (issue "dependence"
                 "nest %s: dependence %d -> %d involves a group that is never \
                  scheduled"
                 nest_name a b)
          else
            List.iter
              (fun pa ->
                List.iter
                  (fun pb ->
                    if not (precedes pa pb) then
                      let ra, ca, _ = pa and rb, cb, _ = pb in
                      add acc
                        (issue "dependence"
                           "nest %s: dependence %d -> %d runs backwards: %d \
                            is in phase %d on core %d, not ordered before %d \
                            in phase %d on core %d"
                           nest_name a b a ra ca b rb cb))
                  ob)
              oa)
        (Dep_graph.edges dag)
      end
    end
  end

(* --- invariant 3b: race freedom -------------------------------------- *)

let check_races acc (c : Mapping.compiled) =
  let det = Race.create () in
  Race.replay det (Mapping.forced_phases c);
  acc.phases <- acc.phases + List.length c.Mapping.phases;
  if Race.num_conflicts det > 0 then begin
    List.iter
      (fun conflict ->
        add acc (issue "race" "%a" Race.pp_conflict conflict))
      (Race.conflicts det);
    let shown = List.length (Race.conflicts det) in
    let total = Race.num_conflicts det in
    if total > shown then
      add acc
        (issue "race" "... and %d further conflicting access(es)"
           (total - shown))
  end

(* --- entry points ----------------------------------------------------- *)

let check (c : Mapping.compiled) =
  let acc =
    { acc_issues = []; nests = 0; groups = 0; points = 0; edges = 0; phases = 0 }
  in
  List.iter (add acc) (check_topology c.Mapping.map_topo);
  if c.Mapping.machine != c.Mapping.map_topo then
    List.iter (add acc) (check_topology c.Mapping.machine);
  List.iter
    (fun plan ->
      check_plan acc plan;
      check_deps acc c plan)
    c.Mapping.plans;
  check_races acc c;
  let issues = List.rev acc.acc_issues in
  Tel.Metrics.Counter.inc0 tel_checks;
  List.iter
    (fun i ->
      Tel.Metrics.Counter.inc
        (Tel.Metrics.Counter.series tel_violations [ i.invariant ]))
    issues;
  {
    issues;
    nests_checked = acc.nests;
    groups_checked = acc.groups;
    points_checked = acc.points;
    edges_checked = acc.edges;
    phases_checked = acc.phases;
  }

let to_json r =
  J.Obj
    [
      ("ok", J.Bool (ok r));
      ( "issues",
        J.List
          (List.map
             (fun i ->
               J.Obj
                 [
                   ("invariant", J.String i.invariant);
                   ("detail", J.String i.detail);
                 ])
             r.issues) );
      ("nests_checked", J.Int r.nests_checked);
      ("groups_checked", J.Int r.groups_checked);
      ("points_checked", J.Int r.points_checked);
      ("edges_checked", J.Int r.edges_checked);
      ("phases_checked", J.Int r.phases_checked);
    ]

let pp_report ppf r =
  if ok r then
    Fmt.pf ppf
      "mapping verified: %d nest(s), %d group(s), %d point(s), %d dependence \
       edge(s), %d phase(s) — all invariants hold"
      r.nests_checked r.groups_checked r.points_checked r.edges_checked
      r.phases_checked
  else begin
    Fmt.pf ppf "mapping INVALID: %d violation(s)@," (List.length r.issues);
    List.iter
      (fun i -> Fmt.pf ppf "  [%s] %s@," i.invariant i.detail)
      r.issues;
    Fmt.pf ppf
      "(checked %d nest(s), %d group(s), %d point(s), %d edge(s), %d \
       phase(s))"
      r.nests_checked r.groups_checked r.points_checked r.edges_checked
      r.phases_checked
  end
