(** Mapping legality checker: end-to-end validation of a compiled
    mapping (the [ctamap check] backend).

    The paper's scheme is only correct if distribution assigns every
    iteration of a nest to exactly one group/core and scheduling never
    orders a dependence backwards across phases (§3–4).  This module
    verifies four invariants, each implemented independently of the
    code it checks:

    {ol
    {- {b coverage / disjointness} — per nest, the union of the plan's
       group iteration sets equals the nest's {!Ctam_poly.Domain} and
       groups are pairwise disjoint ({!Ctam_poly.Iterset} algebra);}
    {- {b codegen faithfulness} — {!Ctam_poly.Codegen.decompose} boxes
       re-enumerate exactly each group's points (differential against
       the set's own enumeration);}
    {- {b dependence legality and race freedom} — every edge of the
       recomputed {!Ctam_deps.Group_deps} graph is ordered by a phase
       boundary (or by sequential order on a single core), and the
       trace-level {!Race} detector finds no same-address write
       conflict between cores inside one phase;}
    {- {b topology well-formedness} — every core reaches at most one
       cache per level, sharing domains partition the cores at each
       level, and the sharing relation is symmetric.}} *)

open Ctam_arch
open Ctam_core

(** One violated invariant occurrence. *)
type issue = {
  invariant : string;  (** "coverage" | "disjointness" | "codegen"
                           | "dependence" | "race" | "topology" *)
  detail : string;     (** human-readable diagnostic *)
}

(** Result of a {!check} run: the issues found plus how much work the
    checker actually did (so a silently-degenerate check is visible). *)
type report = {
  issues : issue list;
  nests_checked : int;
  groups_checked : int;
  points_checked : int;   (** iteration points re-enumerated *)
  edges_checked : int;    (** dependence edges validated *)
  phases_checked : int;   (** phases scanned for races *)
}

val ok : report -> bool

(** Topology well-formedness alone (also usable on parsed machine
    description files before any compilation). *)
val check_topology : Topology.t -> issue list

(** [check compiled] runs all four invariant checks on a compiled
    mapping, using [compiled.params] to recompute the reference
    grouping and dependence graph. *)
val check : Mapping.compiled -> report

(** JSON image: [{ok, issues: [{invariant, detail}], ...counters}]. *)
val to_json : report -> Ctam_util.Json.t

val pp_report : report Fmt.t
