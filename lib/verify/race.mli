(** Trace-level data-race detection on per-core access streams.

    Within one engine phase, cores run concurrently with no ordering
    between their streams; two accesses of the same byte address from
    different cores with at least one write are therefore a race (the
    mapping relied on an ordering the machine does not provide).  The
    detector is a {!Ctam_cachesim.Probe} sink, so it can observe a live
    simulation ([Mapping.simulate ~probe]) or replay a compiled
    mapping's phase streams directly without touching the cache model
    ({!replay} — races do not depend on the interleaving, only on
    phase co-residence). *)

open Ctam_cachesim

type conflict = {
  c_phase : int;          (** phase index the conflict occurred in *)
  c_addr : int;           (** conflicting byte address *)
  c_core : int;           (** core issuing the racing access *)
  c_other : int;          (** a core that touched the address earlier *)
  c_write : bool;         (** the racing access is a write *)
}

type t

val create : unit -> t

(** The probe view: [on_access] records, [on_phase_start] resets the
    per-phase address table.  All other callbacks are no-ops. *)
val probe : t -> Probe.t

(** [replay t phases] feeds every stream of every phase through the
    detector (cores in index order — the order is irrelevant to the
    verdict). *)
val replay : t -> Engine.phase list -> unit

(** Conflicts found, in detection order (capped detail list). *)
val conflicts : t -> conflict list

(** Total conflicts counted (may exceed [List.length (conflicts t)]). *)
val num_conflicts : t -> int

val pp_conflict : conflict Fmt.t
