open Ctam_cachesim

type conflict = {
  c_phase : int;
  c_addr : int;
  c_core : int;
  c_other : int;
  c_write : bool;
}

(* Per-address state within the current phase: [owner] is the first
   core seen, [mixed] records whether any *other* core also touched the
   address, and [writer] the first writing core.  That is enough to
   decide every conflict: a write races with any earlier access from a
   different core; a read races with any earlier write from a different
   core. *)
type cell = {
  owner : int;
  mutable second : int;  (* first core <> owner to touch it, or -1 *)
  mutable writer : int option;
}

let detail_cap = 32

type t = {
  mutable phase : int;
  table : (int, cell) Hashtbl.t;
  mutable found : conflict list;  (* newest first, capped *)
  mutable count : int;
}

let create () =
  { phase = 0; table = Hashtbl.create 4096; found = []; count = 0 }

let record t conflict =
  t.count <- t.count + 1;
  if t.count <= detail_cap then t.found <- conflict :: t.found

let access t ~core ~addr ~write =
  match Hashtbl.find_opt t.table addr with
  | None ->
      Hashtbl.add t.table addr
        { owner = core; second = -1; writer = (if write then Some core else None) }
  | Some cell ->
      let other_seen = cell.second >= 0 || cell.owner <> core in
      let conflict_with other =
        record t
          { c_phase = t.phase; c_addr = addr; c_core = core; c_other = other;
            c_write = write }
      in
      (if write && other_seen then
         (* Some earlier access came from another core. *)
         conflict_with (if cell.owner <> core then cell.owner else cell.second)
       else
         match cell.writer with
         | Some w when w <> core -> conflict_with w
         | _ -> ());
      if cell.owner <> core && cell.second < 0 then cell.second <- core;
      if write && cell.writer = None then cell.writer <- Some core

let phase_start t phase =
  Hashtbl.reset t.table;
  t.phase <- phase

let probe t =
  {
    Probe.null with
    Probe.on_access = (fun ~core ~addr ~line:_ ~write -> access t ~core ~addr ~write);
    on_phase_start = (fun ~phase -> phase_start t phase);
  }

let replay t phases =
  List.iteri
    (fun i phase ->
      phase_start t i;
      Array.iteri
        (fun core stream ->
          Array.iter
            (fun enc ->
              let addr, write = Engine.decode_access enc in
              access t ~core ~addr ~write)
            stream)
        phase)
    phases

let conflicts t = List.rev t.found
let num_conflicts t = t.count

let pp_conflict ppf c =
  Fmt.pf ppf "phase %d: %s of address %d by core %d races with core %d"
    c.c_phase
    (if c.c_write then "write" else "read")
    c.c_addr c.c_core c.c_other
