(** Deliberate corruption of a compiled mapping — the negative-test
    half of the checker.  Each mode produces a mapping that a correct
    {!Verify.check} must reject; [ctamap check --inject] uses it to
    prove the checker is alive (a checker that passes everything also
    passes garbage). *)

open Ctam_core

type corruption =
  | Bad_coverage  (** drop one iteration from a group: coverage hole *)
  | Bad_order     (** reverse scheduling rounds (violating a
                      dependence) or, for dependence-free programs,
                      plant a cross-core write race in the phases *)

val of_string : string -> (corruption, string) result
val to_string : corruption -> string
val all : corruption list

(** [apply c corruption] returns the corrupted mapping and a
    human-readable description of what was broken. *)
val apply : corruption -> Mapping.compiled -> Mapping.compiled * string
