(** The mapping-parameter search space of the autotuner.

    A {!point} bundles every knob the paper reports sensitivity to:
    the scheme itself, the horizontal/vertical reuse weights α/β
    (§4.2), the distribution balance threshold (Figure 6), and the
    Base+ tile-edge override.  Points are {e canonicalized} before
    search — coordinates a scheme ignores (e.g. α/β under Base, the
    tile edge under anything but Base+) are pinned to their defaults —
    so the grid never pays for two simulations that would compile to
    the same mapping. *)

open Ctam_core

type point = {
  scheme : Mapping.scheme;
  alpha : float;
  beta : float;
  balance : float;         (** {!Mapping.params.balance_threshold} *)
  tile_edge : int option;  (** {!Mapping.params.tile_edge} *)
}

(** The point {!Mapping.default_params} encodes for [scheme]
    (default [Combined]) — the baseline every tuning run compares
    against. *)
val default_point : ?scheme:Mapping.scheme -> unit -> point

(** [params_of ?base p] is [base] (default {!Mapping.default_params};
    carries the knobs outside the search space: block size, dependence
    mode, ...) with the point's coordinates substituted. *)
val params_of : ?base:Mapping.params -> point -> Mapping.params

(** Pin the coordinates [p.scheme] ignores to their defaults:
    α/β are kept only by [Local] and [Combined], the balance threshold
    only by [Topology_aware] and [Combined], the tile edge only by
    [Base_plus].  Canonical points compare equal iff they compile to
    the same mapping (given equal base params). *)
val canonical : point -> point

val equal : point -> point -> bool
val pp : point Fmt.t

(** Stable lowercase scheme identifiers ("base", "base+", "local",
    "topology-aware", "combined") shared by reports, params files and
    cache keys. *)
val scheme_id : Mapping.scheme -> string

val scheme_of_id : string -> (Mapping.scheme, string) result

(** Deterministic single-line rendering used as the point's fragment
    of the persistent cache key. *)
val key_fragment : point -> string

(** JSON image [{scheme, alpha, beta, balance_threshold, tile_edge}] —
    also the schema of the winning-params file [ctamap tune
    --save-params] writes and [ctamap run/compare --params] read. *)
val to_json : point -> Ctam_util.Json.t

(** Inverse of {!to_json}; missing numeric members default to the
    corresponding {!Mapping.default_params} value. *)
val of_json : Ctam_util.Json.t -> (point, string) result

(** One value list per coordinate; the cartesian product (after
    canonicalization and dedup) is the grid. *)
type axes = {
  schemes : Mapping.scheme list;
  alphas : float list;
  betas : float list;
  balances : float list;
  tile_edges : int option list;  (** [None] = the built-in heuristic *)
}

(** All five schemes; α, β ∈ {0.25, 0.5, 1.0}; balance ∈ {0.05, 0.10,
    0.20}; tile ∈ {heuristic, 8, 16}.  Canonicalization collapses the
    405-point product to 43 distinct mappings, and every
    {!default_point} is included. *)
val default_axes : axes

(** The canonical, deduplicated cartesian product, in deterministic
    enumeration order (schemes outermost).  @raise Invalid_argument on
    an empty axis. *)
val grid : axes -> point list

(** Refine-around-incumbent generator: canonical points whose
    coordinates are one step (halving/doubling for α, β and balance;
    neighbouring powers of two for the tile edge) away from [around],
    the incumbent first.  Used to polish a winner after a coarse
    search. *)
val refine : around:point -> point list

(** [axis_candidates axes p] lists, per coordinate in a fixed order,
    the canonical variants of [p] along that coordinate (always
    including [p] itself) — the move sets of coordinate descent. *)
val axis_candidates : axes -> point -> point list list
