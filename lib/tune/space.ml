open Ctam_core
module J = Ctam_util.Json

type point = {
  scheme : Mapping.scheme;
  alpha : float;
  beta : float;
  balance : float;
  tile_edge : int option;
}

let default_point ?(scheme = Mapping.Combined) () =
  let d = Mapping.default_params in
  {
    scheme;
    alpha = d.Mapping.alpha;
    beta = d.Mapping.beta;
    balance = d.Mapping.balance_threshold;
    tile_edge = d.Mapping.tile_edge;
  }

let params_of ?(base = Mapping.default_params) p =
  {
    base with
    Mapping.alpha = p.alpha;
    beta = p.beta;
    balance_threshold = p.balance;
    tile_edge = p.tile_edge;
  }

(* Which coordinates the compile pipeline actually reads per scheme
   (see Mapping.compile): α/β reach Schedule.run only under Local and
   Combined (Base forces 0/0, Topology_aware is dependence-only), the
   balance threshold reaches Distribute.run only under Topology_aware
   and Combined, and the tile edge exists only in Base+. *)
let canonical p =
  let d = Mapping.default_params in
  let uses_weights =
    match p.scheme with
    | Mapping.Local | Mapping.Combined -> true
    | Mapping.Base | Mapping.Base_plus | Mapping.Topology_aware -> false
  in
  let uses_balance =
    match p.scheme with
    | Mapping.Topology_aware | Mapping.Combined -> true
    | Mapping.Base | Mapping.Base_plus | Mapping.Local -> false
  in
  let uses_tile = p.scheme = Mapping.Base_plus in
  {
    p with
    alpha = (if uses_weights then p.alpha else d.Mapping.alpha);
    beta = (if uses_weights then p.beta else d.Mapping.beta);
    balance = (if uses_balance then p.balance else d.Mapping.balance_threshold);
    tile_edge = (if uses_tile then p.tile_edge else None);
  }

let equal a b =
  a.scheme = b.scheme && a.alpha = b.alpha && a.beta = b.beta
  && a.balance = b.balance && a.tile_edge = b.tile_edge

let scheme_id = function
  | Mapping.Base -> "base"
  | Mapping.Base_plus -> "base+"
  | Mapping.Local -> "local"
  | Mapping.Topology_aware -> "topology-aware"
  | Mapping.Combined -> "combined"

let scheme_of_id = function
  | "base" -> Ok Mapping.Base
  | "base+" | "baseplus" -> Ok Mapping.Base_plus
  | "local" -> Ok Mapping.Local
  | "topology" | "topology-aware" | "ta" -> Ok Mapping.Topology_aware
  | "combined" -> Ok Mapping.Combined
  | s -> Error (Printf.sprintf "unknown scheme '%s'" s)

let tile_str = function None -> "auto" | Some e -> string_of_int e

let key_fragment p =
  Printf.sprintf "scheme=%s alpha=%h beta=%h balance=%h tile=%s" (scheme_id p.scheme)
    p.alpha p.beta p.balance (tile_str p.tile_edge)

let pp ppf p =
  Fmt.pf ppf "%s a=%g b=%g bal=%g tile=%s" (scheme_id p.scheme) p.alpha p.beta
    p.balance (tile_str p.tile_edge)

let to_json p =
  J.Obj
    [
      ("scheme", J.String (scheme_id p.scheme));
      ("alpha", J.Float p.alpha);
      ("beta", J.Float p.beta);
      ("balance_threshold", J.Float p.balance);
      ( "tile_edge",
        match p.tile_edge with None -> J.Null | Some e -> J.Int e );
    ]

let of_json j =
  match j with
  | J.Obj _ -> (
      let num name dflt =
        match J.member name j with
        | Some (J.Int i) -> Ok (float_of_int i)
        | Some (J.Float f) -> Ok f
        | None -> Ok dflt
        | Some v ->
            Error (Printf.sprintf "member '%s' is not a number (%s)" name
                     (J.to_string ~minify:true v))
      in
      let ( let* ) r f = Result.bind r f in
      let d = default_point () in
      let* scheme =
        match J.member "scheme" j with
        | Some (J.String s) -> scheme_of_id s
        | None -> Ok d.scheme
        | Some _ -> Error "member 'scheme' is not a string"
      in
      let* alpha = num "alpha" d.alpha in
      let* beta = num "beta" d.beta in
      let* balance = num "balance_threshold" d.balance in
      let* tile_edge =
        match J.member "tile_edge" j with
        | None | Some J.Null -> Ok None
        | Some (J.Int e) -> Ok (Some e)
        | Some _ -> Error "member 'tile_edge' is not an integer or null"
      in
      Ok { scheme; alpha; beta; balance; tile_edge })
  | _ -> Error "params file is not a JSON object"

type axes = {
  schemes : Mapping.scheme list;
  alphas : float list;
  betas : float list;
  balances : float list;
  tile_edges : int option list;
}

let default_axes =
  {
    schemes = Mapping.all_schemes;
    alphas = [ 0.25; 0.5; 1.0 ];
    betas = [ 0.25; 0.5; 1.0 ];
    balances = [ 0.05; 0.10; 0.20 ];
    tile_edges = [ None; Some 8; Some 16 ];
  }

let dedup points =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun p ->
      let k = key_fragment p in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    points

let grid axes =
  if
    axes.schemes = [] || axes.alphas = [] || axes.betas = []
    || axes.balances = [] || axes.tile_edges = []
  then invalid_arg "Space.grid: empty axis";
  List.concat_map
    (fun scheme ->
      List.concat_map
        (fun alpha ->
          List.concat_map
            (fun beta ->
              List.concat_map
                (fun balance ->
                  List.map
                    (fun tile_edge ->
                      canonical { scheme; alpha; beta; balance; tile_edge })
                    axes.tile_edges)
                axes.balances)
            axes.betas)
        axes.alphas)
    axes.schemes
  |> dedup

let refine ~around =
  let p = canonical around in
  let scale v = [ v; v /. 2.; v *. 2. ] in
  let tiles =
    match p.tile_edge with
    | None -> [ None; Some 8; Some 16 ]
    | Some e -> [ Some e; Some (max 1 (e / 2)); Some (e * 2); None ]
  in
  List.concat_map
    (fun alpha ->
      List.concat_map
        (fun beta ->
          List.concat_map
            (fun balance ->
              List.map
                (fun tile_edge ->
                  canonical { p with alpha; beta; balance; tile_edge })
                tiles)
            (scale p.balance))
        (scale p.beta))
    (scale p.alpha)
  |> dedup

let axis_candidates axes p =
  let p = canonical p in
  let keep_first first rest = dedup (first :: rest) in
  [
    keep_first p
      (List.map (fun scheme -> canonical { p with scheme }) axes.schemes);
    keep_first p (List.map (fun alpha -> canonical { p with alpha }) axes.alphas);
    keep_first p (List.map (fun beta -> canonical { p with beta }) axes.betas);
    keep_first p
      (List.map (fun balance -> canonical { p with balance }) axes.balances);
    keep_first p
      (List.map
         (fun tile_edge -> canonical { p with tile_edge })
         axes.tile_edges);
  ]
