(** Search strategies over {!Space} with {!Eval} as the cost oracle.

    All three strategies evaluate batches of points through
    {!Ctam_util.Parallel.map}; because every evaluation is pure and
    batches keep their input order, a run's trial list, winner and
    report are byte-identical at any job count.  The persistent
    {!Cache} (when enabled) is consulted and updated serially around
    each parallel batch, so it too cannot perturb the result — only
    the [simulations] / [cache_hits] counters reflect its state.

    Every strategy evaluates the scheme's baseline point
    ({!Space.default_point}) first and uncapped, and the reported best
    is the minimum over baseline and all uncapped trials — tuning can
    therefore never return a configuration worse than the default. *)

open Ctam_arch
open Ctam_ir
open Ctam_cachesim
open Ctam_core

type strategy =
  | Grid  (** exhaustive over {!Space.grid} *)
  | Descent
      (** coordinate descent from the baseline along
          {!Space.axis_candidates}, then one {!Space.refine} polish *)
  | Halving
      (** successive halving: the full grid under geometrically
          growing cycle caps, survivors re-run uncapped *)

val strategy_id : strategy -> string
val strategy_of_id : string -> (strategy, string) result

type settings = {
  strategy : strategy;
  axes : Space.axes;
  budget : int option;
      (** max points evaluated beyond the baseline; [None] =
          unlimited.  The baseline is always evaluated even if this
          is 0.  A persistent-cache hit costs no simulation but still
          consumes budget, so a budgeted search examines the same
          points — and returns the same result — on a cold and on a
          warm cache. *)
  cache_dir : string option;  (** [None] disables the persistent cache *)
  jobs : int option;          (** [Parallel.map ?domains] *)
  base_params : Mapping.params;
  config : Engine.config option;
  verify : bool;  (** legality-check the winning mapping *)
  stream : bool;  (** compile generator-backed phases *)
  sample_sets : int;
      (** simulate 1/N of the cache sets (1 = exact).  Approximate:
          the factor becomes part of the persistent-cache key, so
          sampled and exact results never mix. *)
  memo : bool;
      (** share an engine phase-memo table across the run's
          evaluations.  Exact (replays are byte-identical), so the
          result and report are unchanged — only faster. *)
}

val default_settings : settings

(** One evaluated point.  [rung] is the halving cap the evaluation ran
    under ([None] = uncapped); capped trials never become the best. *)
type trial = {
  point : Space.point;
  outcome : Eval.outcome;
  rung : int option;
  from_cache : bool;
}

type result = {
  program_name : string;
  machine_name : string;
  strategy_used : strategy;
  baseline : trial;
  best : trial;
  trials : trial list;  (** evaluation order, baseline first *)
  simulations : int;    (** evaluations actually simulated *)
  cache_hits : int;
  verify_ok : bool option;  (** [Some] iff [settings.verify] *)
}

(** [run settings ~machine ~program_name program] tunes [program] on
    [machine].  Deterministic for fixed settings, program and machine:
    independent of job count, cache temperature and wall clock. *)
val run :
  settings ->
  machine:Topology.t ->
  program_name:string ->
  Program.t ->
  result

(** Speedup of best over baseline in cycles ([baseline / best];
    1.0 = no improvement found). *)
val improvement : result -> float

(** The deterministic tune report ([ctam_tune_version = 1]): settings
    echo, per-trial records, baseline/best outcomes and the
    tuned-vs-default ratio.  Contains no timestamps or host state, so
    reports from identical runs compare byte-equal and
    {!Ctam_exp.Report_diff} can diff them across commits. *)
val to_json : result -> Ctam_util.Json.t

(** The winning point in the [--params] file schema
    ({!Space.to_json}). *)
val best_params_json : result -> Ctam_util.Json.t

(** Human-readable summary table of the run. *)
val render : result -> string
