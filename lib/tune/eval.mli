(** The autotuner's cost oracle: compile a space point, simulate it on
    the machine's cache hierarchy, score by total cycles with a
    memory-access tiebreak.

    Evaluations are pure (every call builds its own hierarchy), so the
    search strategies fan them out through {!Ctam_util.Parallel.map}
    and the results are independent of the job count. *)

open Ctam_arch
open Ctam_ir
open Ctam_cachesim
open Ctam_core

type outcome = {
  cycles : int;
  mem_accesses : int;
  total_accesses : int;
  capped : bool;
      (** the run hit its [max_cycles] budget; [cycles] is a lower
          bound on the true cost and the point is a proven loser at
          that budget *)
}

(** Lexicographic score, smaller is better: cycles first, off-chip
    memory accesses as the tiebreak. *)
val score : outcome -> int * int

val compare_outcome : outcome -> outcome -> int

(** [evaluate ?base_params ?config ?max_cycles ?stream ?sample_sets
    ?memo ~machine program point] compiles [program] under
    [Space.params_of ?base:base_params point] and simulates it.
    [max_cycles] is the successive-halving budget: the engine stops
    once every core's clock passed it and the outcome comes back
    [capped].  [stream] compiles generator-backed phases,
    [sample_sets] runs a set-sampled hierarchy, and [memo] shares a
    phase-memo table across evaluations (see {!Mapping.simulate}); the
    memo is exact, so memoized outcomes stay byte-identical, while
    sampling is approximate and must be reflected in the result-cache
    key ({!Cache.key}). *)
val evaluate :
  ?base_params:Mapping.params ->
  ?config:Engine.config ->
  ?max_cycles:int ->
  ?stream:bool ->
  ?sample_sets:int ->
  ?memo:Memo.t ->
  machine:Topology.t ->
  Program.t ->
  Space.point ->
  outcome

val outcome_to_json : outcome -> Ctam_util.Json.t
val outcome_of_json : Ctam_util.Json.t -> (outcome, string) result
