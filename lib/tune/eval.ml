open Ctam_core
module J = Ctam_util.Json

type outcome = {
  cycles : int;
  mem_accesses : int;
  total_accesses : int;
  capped : bool;
}

let score o = (o.cycles, o.mem_accesses)
let compare_outcome a b = compare (score a) (score b)

let evaluate ?base_params ?config ?max_cycles ?stream ?sample_sets ?memo
    ~machine program point =
  let params = Space.params_of ?base:base_params point in
  let compiled =
    Mapping.compile ~params ?stream point.Space.scheme ~machine program
  in
  let stats = Mapping.simulate ?config ?max_cycles ?sample_sets ?memo compiled in
  {
    cycles = stats.Ctam_cachesim.Stats.cycles;
    mem_accesses = stats.Ctam_cachesim.Stats.mem_accesses;
    total_accesses = stats.Ctam_cachesim.Stats.total_accesses;
    capped =
      (match max_cycles with
      | Some cap -> stats.Ctam_cachesim.Stats.cycles >= cap
      | None -> false);
  }

let outcome_to_json o =
  J.Obj
    [
      ("cycles", J.Int o.cycles);
      ("mem_accesses", J.Int o.mem_accesses);
      ("total_accesses", J.Int o.total_accesses);
      ("capped", J.Bool o.capped);
    ]

let outcome_of_json j =
  match j with
  | J.Obj _ -> (
      let int name =
        match J.member name j with
        | Some (J.Int i) -> Ok i
        | _ -> Error (Printf.sprintf "member '%s' missing or not an int" name)
      in
      let ( let* ) r f = Result.bind r f in
      let* cycles = int "cycles" in
      let* mem_accesses = int "mem_accesses" in
      let* total_accesses = int "total_accesses" in
      let capped =
        match J.member "capped" j with Some (J.Bool b) -> b | _ -> false
      in
      Ok { cycles; mem_accesses; total_accesses; capped })
  | _ -> Error "outcome is not a JSON object"
