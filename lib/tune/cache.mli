(** Persistent on-disk store of tuning evaluations.

    One evaluation = one small JSON file under the cache directory,
    named by a 64-bit FNV-1a hash of the full {!key}.  The key is a
    content hash input covering everything the outcome depends on:

    - the program's canonical DSL source ({!Ctam_frontend.Unparse}),
    - the machine topology down to each core's cache path (so two
      machines with equal cache lists but different sharing trees
      never collide),
    - the base mapping parameters outside the search space (block
      size, dependence mode, ...),
    - the space point itself and the evaluation's cycle budget,
    - the tool version ({!Ctam_exp.Build_info.version}).

    Re-tuning after an unrelated edit is therefore a pure cache hit,
    while any change to the program, machine, parameters or simulator
    version misses.  The on-disk tier is {!Ctam_util.Diskstore}: the
    stored file carries the full key, a hash collision is detected on
    load and treated as a miss, and writes are atomic with
    error-checked close and temp-file cleanup.  Lookups and stores
    never raise: an unreadable/corrupt entry (including valid JSON
    that is not an object) is a counted miss, and a failed write is
    counted and logged but ignored (the cache is an optimisation
    only). *)

open Ctam_arch
open Ctam_ir
open Ctam_core

(** [key ~version ~base_params ~machine ~max_cycles program point] is
    the canonical key string (stable across processes and job
    counts). *)
val key :
  version:string ->
  base_params:Mapping.params ->
  machine:Topology.t ->
  max_cycles:int option ->
  ?sample_sets:int ->
  Program.t ->
  Space.point ->
  string
(** [sample_sets] (default 1) marks outcomes from set-sampled runs;
    keys with the default factor are byte-identical to pre-sampling
    keys, so existing caches stay warm. *)

(** [context_fragments ~version ~base_params ~machine program] is the
    environment part of a content-hash key — tool version, base
    mapping parameters, per-core topology paths, canonical program
    source — as deterministic text lines.  {!key} is built from these
    plus the space point; the serving plan cache
    ([Ctam_serve.Plan_cache]) reuses them to key compiled plans and
    run reports by the same discipline. *)
val context_fragments :
  version:string ->
  base_params:Mapping.params ->
  machine:Topology.t ->
  Program.t ->
  string list

(** The per-core topology-path fragment of {!context_fragments}
    (machine name, clock, memory latency, and each core's path of
    cache geometries with any non-LRU replacement policies) — reused
    by the daemon's [trace]-op keys, which have no program or mapping
    parameters. *)
val topology_fragment : Topology.t -> string

(** 16-hex-digit FNV-1a 64 of a key (the entry's file stem). *)
val hash : string -> string

(** File-name prefix of tune entries in a shared cache directory
    (["ctam-tune-"]) — the maintenance tooling ([ctamap cache])
    selects entry families by it. *)
val file_prefix : string

(** [lookup ~dir key] returns the stored outcome, or [None] when the
    entry is absent, unreadable, malformed, or keyed by a colliding
    string. *)
val lookup : dir:string -> string -> Eval.outcome option

(** [store ~dir key outcome] writes the entry (creating [dir] if
    needed) atomically via a temp file + rename, so concurrent tuners
    sharing a cache directory never observe a partial entry. *)
val store : dir:string -> string -> Eval.outcome -> unit
