open Ctam_arch
open Ctam_core
module J = Ctam_util.Json
module Tel = Ctam_telemetry

(* Lookups labelled by outcome: "hit", "miss" (no entry on disk),
   "corrupt" (entry exists but fails to parse — also logged, since a
   corrupt entry costs a re-evaluation every run until removed), and
   "collision" (parses but stores a different key: FNV-1a hash
   collision or a stale file from an incompatible key schema). *)
let tel_lookups =
  Tel.Metrics.Counter.v ~labels:[ "result" ]
    ~help:"Tune cache lookups by outcome" "ctam_tune_cache_lookups_total"

let tel_stores =
  Tel.Metrics.Counter.v ~help:"Tune cache entries written"
    "ctam_tune_cache_stores_total"

let tel_bytes_written =
  Tel.Metrics.Counter.v ~help:"Bytes written to the tune cache"
    "ctam_tune_cache_bytes_written_total"

let count_lookup result =
  Tel.Metrics.Counter.inc (Tel.Metrics.Counter.series tel_lookups [ result ])

let warn_corrupt path what =
  Tel.Log.warn ~src:"tune.cache"
    ~fields:[ ("path", J.String path) ]
    (fun () -> "corrupt cache entry (" ^ what ^ "); will re-evaluate")

(* The key is a canonical multi-line string; the file name is its
   FNV-1a 64 hash.  Floats are rendered with %h (exact hex) so two
   processes can never disagree on a key by formatting. *)

let cache_fragment (c : Topology.cache_params) =
  Printf.sprintf "%s:L%d:%db:%dw:%dl:%dc" c.Topology.cache_name c.Topology.level
    c.Topology.size_bytes c.Topology.assoc c.Topology.line c.Topology.latency

(* Topology.caches loses the sharing structure (two machines with the
   same cache list can group cores differently), so hash each core's
   path to its last-level cache instead. *)
let topology_fragment (m : Topology.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "machine=%s clock=%h mem=%d cores=%d" m.Topology.name
       m.Topology.clock_ghz m.Topology.mem_latency m.Topology.num_cores);
  for c = 0 to m.Topology.num_cores - 1 do
    Buffer.add_string b (Printf.sprintf "\ncore%d=" c);
    List.iter
      (fun cp ->
        Buffer.add_char b '/';
        Buffer.add_string b (cache_fragment cp))
      (Topology.path_of_core m c)
  done;
  Buffer.contents b

let base_params_fragment (p : Mapping.params) =
  Printf.sprintf "block=%d auto=%b groups=%d dep=%s"
    p.Mapping.block_size p.Mapping.auto_block p.Mapping.max_groups
    (match p.Mapping.dependence_mode with
    | Distribute.Synchronize -> "sync"
    | Distribute.Cluster -> "cluster")

let program_fragment program =
  match Ctam_frontend.Unparse.program program with
  | src -> src
  | exception _ -> Digest.to_hex (Digest.string (Marshal.to_string program []))

let key ~version ~base_params ~machine ~max_cycles ?(sample_sets = 1) program
    point =
  String.concat "\n"
    ([
       "ctam-tune-key v1";
       "version=" ^ version;
       base_params_fragment base_params;
       topology_fragment machine;
       ("cap=" ^ match max_cycles with None -> "none" | Some c -> string_of_int c);
     ]
    (* Sampled outcomes are approximations; keep them apart from exact
       ones.  The fragment appears only when sampling so every exact
       key — the only kind produced before sampling existed — is
       unchanged and a warm cache stays valid. *)
    @ (if sample_sets > 1 then
         [ Printf.sprintf "sample=%d" sample_sets ]
       else [])
    @ [
        Space.key_fragment point;
        "program:";
        program_fragment program;
      ])

let hash key =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    key;
  Printf.sprintf "%016Lx" !h

let entry_path ~dir key = Filename.concat dir ("ctam-tune-" ^ hash key ^ ".json")

let lookup ~dir key =
  let path = entry_path ~dir key in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception _ ->
      count_lookup "miss";
      None
  | contents -> (
      match J.parse contents with
      | Error e ->
          count_lookup "corrupt";
          warn_corrupt path ("parse error: " ^ e);
          None
      | Ok j -> (
          match (J.member "key" j, J.member "outcome" j) with
          | Some (J.String stored), Some oj when String.equal stored key -> (
              match Eval.outcome_of_json oj with
              | Ok o ->
                  count_lookup "hit";
                  Some o
              | Error e ->
                  count_lookup "corrupt";
                  warn_corrupt path ("bad outcome: " ^ e);
                  None)
          | Some (J.String _), Some _ ->
              (* Same hash, different key: treat as a miss but count it
                 separately — repeated collisions mean the key schema
                 changed without a version bump. *)
              count_lookup "collision";
              None
          | _ ->
              count_lookup "corrupt";
              warn_corrupt path "missing key/outcome members";
              None))

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let store ~dir key outcome =
  try
    mkdir_p dir;
    let path = entry_path ~dir key in
    let tmp =
      Filename.temp_file ~temp_dir:dir "ctam-tune-" ".tmp"
    in
    let oc = open_out_bin tmp in
    let payload =
      J.to_string
        (J.Obj
           [ ("key", J.String key); ("outcome", Eval.outcome_to_json outcome) ])
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc payload;
        output_char oc '\n');
    Sys.rename tmp path;
    Tel.Metrics.Counter.inc0 tel_stores;
    Tel.Metrics.Counter.inc0 ~by:(String.length payload + 1) tel_bytes_written
  with _ -> ()
