open Ctam_arch
open Ctam_core
module J = Ctam_util.Json
module Store = Ctam_util.Diskstore
module Tel = Ctam_telemetry

(* Lookups labelled by outcome: "hit", "miss" (no entry on disk),
   "corrupt" (entry exists but fails to parse — also logged, since a
   corrupt entry costs a re-evaluation every run until removed), and
   "collision" (parses but stores a different key: FNV-1a hash
   collision or a stale file from an incompatible key schema). *)
let tel_lookups =
  Tel.Metrics.Counter.v ~labels:[ "result" ]
    ~help:"Tune cache lookups by outcome" "ctam_tune_cache_lookups_total"

let tel_stores =
  Tel.Metrics.Counter.v ~help:"Tune cache entries written"
    "ctam_tune_cache_stores_total"

let tel_store_failures =
  Tel.Metrics.Counter.v
    ~help:"Tune cache entry writes that failed (disk full, permissions)"
    "ctam_tune_cache_store_failures_total"

let tel_bytes_written =
  Tel.Metrics.Counter.v ~help:"Bytes written to the tune cache"
    "ctam_tune_cache_bytes_written_total"

let count_lookup result =
  Tel.Metrics.Counter.inc (Tel.Metrics.Counter.series tel_lookups [ result ])

let warn_corrupt path what =
  Tel.Log.warn ~src:"tune.cache"
    ~fields:[ ("path", J.String path) ]
    (fun () -> "corrupt cache entry (" ^ what ^ "); will re-evaluate")

(* The key is a canonical multi-line string; the file name is its
   FNV-1a 64 hash (see Ctam_util.Diskstore, the shared on-disk tier).
   Floats are rendered with %h (exact hex) so two processes can never
   disagree on a key by formatting. *)

(* The policy suffix appears only when a cache deviates from the LRU
   default, so every pre-policy key — and thus every warm cache — stays
   byte-identical (the same idiom as the sampling fragment). *)
let cache_fragment (c : Topology.cache_params) =
  Printf.sprintf "%s:L%d:%db:%dw:%dl:%dc%s" c.Topology.cache_name
    c.Topology.level c.Topology.size_bytes c.Topology.assoc c.Topology.line
    c.Topology.latency
    (if Policy.equal c.Topology.policy Policy.Lru then ""
     else ":" ^ Policy.to_string c.Topology.policy)

(* Topology.caches loses the sharing structure (two machines with the
   same cache list can group cores differently), so hash each core's
   path to its last-level cache instead. *)
let topology_fragment (m : Topology.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "machine=%s clock=%h mem=%d cores=%d" m.Topology.name
       m.Topology.clock_ghz m.Topology.mem_latency m.Topology.num_cores);
  for c = 0 to m.Topology.num_cores - 1 do
    Buffer.add_string b (Printf.sprintf "\ncore%d=" c);
    List.iter
      (fun cp ->
        Buffer.add_char b '/';
        Buffer.add_string b (cache_fragment cp))
      (Topology.path_of_core m c)
  done;
  Buffer.contents b

let base_params_fragment (p : Mapping.params) =
  Printf.sprintf "block=%d auto=%b groups=%d dep=%s"
    p.Mapping.block_size p.Mapping.auto_block p.Mapping.max_groups
    (match p.Mapping.dependence_mode with
    | Distribute.Synchronize -> "sync"
    | Distribute.Cluster -> "cluster")

let program_fragment program =
  match Ctam_frontend.Unparse.program program with
  | src -> src
  | exception _ -> Digest.to_hex (Digest.string (Marshal.to_string program []))

(* Everything an outcome's environment consists of, minus the thing
   evaluated (the space point here; the request shape for the serving
   plan cache, which reuses these fragments for its own keys). *)
let context_fragments ~version ~base_params ~machine program =
  [
    "version=" ^ version;
    base_params_fragment base_params;
    topology_fragment machine;
    "program:";
    program_fragment program;
  ]

let key ~version ~base_params ~machine ~max_cycles ?(sample_sets = 1) program
    point =
  String.concat "\n"
    ([
       "ctam-tune-key v1";
       "version=" ^ version;
       base_params_fragment base_params;
       topology_fragment machine;
       ("cap=" ^ match max_cycles with None -> "none" | Some c -> string_of_int c);
     ]
    (* Sampled outcomes are approximations; keep them apart from exact
       ones.  The fragment appears only when sampling so every exact
       key — the only kind produced before sampling existed — is
       unchanged and a warm cache stays valid. *)
    @ (if sample_sets > 1 then
         [ Printf.sprintf "sample=%d" sample_sets ]
       else [])
    @ [
        Space.key_fragment point;
        "program:";
        program_fragment program;
      ])

let hash = Store.hash

let file_prefix = "ctam-tune-"

let entry_path ~dir key = Store.entry_path ~dir ~prefix:file_prefix key

let lookup ~dir key =
  let path = entry_path ~dir key in
  match Store.read ~dir ~prefix:file_prefix ~value_member:"outcome" key with
  | Store.Miss ->
      count_lookup "miss";
      None
  | Store.Corrupt what ->
      count_lookup "corrupt";
      warn_corrupt path what;
      None
  | Store.Collision ->
      (* Same hash, different key: treat as a miss but count it
         separately — repeated collisions mean the key schema changed
         without a version bump. *)
      count_lookup "collision";
      None
  | Store.Hit oj -> (
      match Eval.outcome_of_json oj with
      | Ok o ->
          count_lookup "hit";
          Some o
      | Error e ->
          count_lookup "corrupt";
          warn_corrupt path ("bad outcome: " ^ e);
          None)

let store ~dir key outcome =
  match
    Store.write ~dir ~prefix:file_prefix ~value_member:"outcome" key
      (Eval.outcome_to_json outcome)
  with
  | Ok bytes ->
      Tel.Metrics.Counter.inc0 tel_stores;
      Tel.Metrics.Counter.inc0 ~by:bytes tel_bytes_written
  | Error what ->
      Tel.Metrics.Counter.inc0 tel_store_failures;
      Tel.Log.warn ~src:"tune.cache"
        ~fields:[ ("dir", J.String dir) ]
        (fun () -> "cache store failed (" ^ what ^ "); result not persisted")
