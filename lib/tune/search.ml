open Ctam_arch
open Ctam_ir
open Ctam_cachesim
open Ctam_core
module J = Ctam_util.Json

type strategy = Grid | Descent | Halving

let strategy_id = function
  | Grid -> "grid"
  | Descent -> "descent"
  | Halving -> "halving"

let strategy_of_id = function
  | "grid" -> Ok Grid
  | "descent" -> Ok Descent
  | "halving" -> Ok Halving
  | s -> Error (Printf.sprintf "unknown strategy '%s' (grid|descent|halving)" s)

type settings = {
  strategy : strategy;
  axes : Space.axes;
  budget : int option;
  cache_dir : string option;
  jobs : int option;
  base_params : Mapping.params;
  config : Engine.config option;
  verify : bool;
  stream : bool;
  sample_sets : int;
  memo : bool;
}

let default_settings =
  {
    strategy = Grid;
    axes = Space.default_axes;
    budget = None;
    cache_dir = None;
    jobs = None;
    base_params = Mapping.default_params;
    config = None;
    verify = false;
    stream = false;
    sample_sets = 1;
    memo = false;
  }

type trial = {
  point : Space.point;
  outcome : Eval.outcome;
  rung : int option;
  from_cache : bool;
}

type result = {
  program_name : string;
  machine_name : string;
  strategy_used : strategy;
  baseline : trial;
  best : trial;
  trials : trial list;
  simulations : int;
  cache_hits : int;
  verify_ok : bool option;
}

(* Mutable per-run state threaded through the strategies.  The memo
   keeps one entry per (point, cap) key so revisited points (descent
   circles back constantly) cost nothing and appear once in the trial
   list; counters and the trial log are only touched serially, before
   and after each parallel batch. *)
type ctx = {
  s : settings;
  machine : Topology.t;
  program : Program.t;
  memo : (string, Eval.outcome * bool) Hashtbl.t;
  (* Engine-level phase memo shared by every evaluation of the run
     (including across domains — the table locks internally); distinct
     from [memo] above, which caches whole outcomes by point key. *)
  sim_memo : Memo.t option;
  mutable sims : int;
  mutable budgeted : int;  (* evaluations charged against the budget:
                              everything but the baseline and memo
                              re-requests *)
  mutable hits : int;
  mutable trials_rev : trial list;
}

let key_of ctx ~max_cycles point =
  Cache.key ~version:Ctam_exp.Build_info.version ~base_params:ctx.s.base_params
    ~machine:ctx.machine ~max_cycles ~sample_sets:ctx.s.sample_sets ctx.program
    point

(* Evaluate a batch of points under one cycle cap.  Returns the batch's
   (point, outcome) pairs in input order, minus points dropped by the
   simulation budget.  Persistent-cache traffic and all bookkeeping are
   serial; only the cache-miss simulations fan out, and [Parallel.map]
   preserves order, so the result is independent of the job count. *)
let eval_batch ctx ?max_cycles ?(ignore_budget = false) points =
  let points =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun p ->
        let p = Space.canonical p in
        let k = key_of ctx ~max_cycles p in
        if Hashtbl.mem seen k then None
        else begin
          Hashtbl.add seen k ();
          Some (p, k)
        end)
      points
  in
  (* The budget caps points evaluated beyond the baseline.  A
     persistent-cache hit costs nothing but still consumes budget, so
     the set of points a budgeted search looks at — and therefore its
     result — is identical whether the cache is cold or warm; only the
     simulations/cache_hits counters differ.  Memo re-requests of
     already-evaluated points are always free. *)
  let remaining =
    ref
      (match ctx.s.budget with
      | Some b when not ignore_budget -> max 0 (b - ctx.budgeted)
      | _ -> max_int)
  in
  let resolved =
    List.map
      (fun (p, k) ->
        match Hashtbl.find_opt ctx.memo k with
        | Some (o, _) -> (p, k, `Memo o)
        | None ->
            if !remaining <= 0 then (p, k, `Dropped)
            else begin
              decr remaining;
              if not ignore_budget then ctx.budgeted <- ctx.budgeted + 1;
              match ctx.s.cache_dir with
              | Some dir -> (
                  match Cache.lookup ~dir k with
                  | Some o ->
                      ctx.hits <- ctx.hits + 1;
                      Hashtbl.add ctx.memo k (o, true);
                      (p, k, `Hit o)
                  | None -> (p, k, `Miss))
              | None -> (p, k, `Miss)
            end)
      points
  in
  let misses =
    List.filter_map
      (fun (p, k, st) -> match st with `Miss -> Some (p, k) | _ -> None)
      resolved
  in
  let outcomes =
    Ctam_util.Parallel.map ?domains:ctx.s.jobs
      (fun (p, _) ->
        Eval.evaluate ~base_params:ctx.s.base_params ?config:ctx.s.config
          ?max_cycles ~stream:ctx.s.stream
          ?sample_sets:
            (if ctx.s.sample_sets > 1 then Some ctx.s.sample_sets else None)
          ?memo:ctx.sim_memo ~machine:ctx.machine ctx.program p)
      misses
  in
  List.iter2
    (fun (_, k) o ->
      ctx.sims <- ctx.sims + 1;
      Hashtbl.add ctx.memo k (o, false);
      match ctx.s.cache_dir with
      | Some dir -> Cache.store ~dir k o
      | None -> ())
    misses outcomes;
  List.filter_map
    (fun (p, k, st) ->
      let record o from_cache =
        ctx.trials_rev <-
          { point = p; outcome = o; rung = max_cycles; from_cache }
          :: ctx.trials_rev;
        Some (p, o)
      in
      match st with
      | `Memo o -> Some (p, o)
      | `Hit o -> record o true
      | `Dropped -> None (* over the evaluation budget *)
      | `Miss -> (
          match Hashtbl.find_opt ctx.memo k with
          | Some (o, from_cache) -> record o from_cache
          | None -> None))
    resolved

(* Strictly-better-only comparison: ties keep the earlier point, so the
   baseline wins all draws and enumeration order is the final
   tiebreak. *)
let pick_best candidates =
  List.fold_left
    (fun best (p, o) ->
      match best with
      | None -> Some (p, o)
      | Some (_, bo) ->
          if Eval.compare_outcome o bo < 0 then Some (p, o) else best)
    None candidates

let run_grid ctx baseline =
  let evals = eval_batch ctx (Space.grid ctx.s.axes) in
  pick_best (baseline :: evals)

let run_descent ctx baseline =
  let incumbent = ref baseline in
  let improved = ref true in
  let sweeps = ref 0 in
  while !improved && !sweeps < 10 do
    improved := false;
    incr sweeps;
    List.iter
      (fun candidates ->
        let evals = eval_batch ctx candidates in
        match pick_best (!incumbent :: evals) with
        | Some (p, o) when not (Space.equal p (fst !incumbent)) ->
            incumbent := (p, o);
            improved := true
        | _ -> ())
      (Space.axis_candidates ctx.s.axes (fst !incumbent))
  done;
  let polish = eval_batch ctx (Space.refine ~around:(fst !incumbent)) in
  pick_best (!incumbent :: polish)

let run_halving ctx baseline =
  let _, base_outcome = baseline in
  let full_cycles = base_outcome.Eval.cycles in
  let pts = ref (Space.grid ctx.s.axes) in
  let cap = ref (max 1 (full_cycles / 4)) in
  while List.length !pts > 4 && !cap < full_cycles do
    let capped = eval_batch ctx ~max_cycles:!cap !pts in
    (* rank by capped score, grid position as the deterministic
       tiebreak; a loser's rung run costs at most [cap] simulated
       cycles instead of its full length *)
    let ranked =
      List.mapi (fun i (p, o) -> (Eval.score o, i, p)) capped
      |> List.sort compare
    in
    let keep = (List.length ranked + 1) / 2 in
    pts :=
      List.filteri (fun i _ -> i < keep) ranked
      |> List.map (fun (_, _, p) -> p);
    cap := !cap * 2
  done;
  (* survivors get their true, uncapped cost; capped trials never
     become the best directly *)
  let final = eval_batch ctx !pts in
  pick_best (baseline :: final)

let improvement r =
  if r.best.outcome.Eval.cycles <= 0 then 1.0
  else
    float_of_int r.baseline.outcome.Eval.cycles
    /. float_of_int r.best.outcome.Eval.cycles

let run s ~machine ~program_name program =
  let ctx =
    {
      s;
      machine;
      program;
      memo = Hashtbl.create 128;
      sim_memo = (if s.memo then Some (Memo.create ()) else None);
      sims = 0;
      budgeted = 0;
      hits = 0;
      trials_rev = [];
    }
  in
  let baseline_pt = Space.canonical (Space.default_point ()) in
  let baseline =
    (* evaluated outside the budget: the default cost must always be
       known for the tuned-vs-default comparison *)
    match eval_batch ctx ~ignore_budget:true [ baseline_pt ] with
    | [ (p, o) ] -> (p, o)
    | _ -> assert false
  in
  let best =
    match
      match s.strategy with
      | Grid -> run_grid ctx baseline
      | Descent -> run_descent ctx baseline
      | Halving -> run_halving ctx baseline
    with
    | Some b -> b
    | None -> baseline
  in
  let to_trial rung (point, outcome) =
    { point; outcome; rung; from_cache = false }
  in
  let trials = List.rev ctx.trials_rev in
  let find_trial (p, o) =
    match
      List.find_opt
        (fun t ->
          t.rung = None && Space.equal t.point p
          && Eval.compare_outcome t.outcome o = 0)
        trials
    with
    | Some t -> t
    | None -> to_trial None (p, o)
  in
  let verify_ok =
    if s.verify then
      let params = Space.params_of ~base:s.base_params (fst best) in
      let compiled =
        Mapping.compile ~params (fst best).Space.scheme ~machine program
      in
      Some (Ctam_verify.Verify.ok (Ctam_verify.Verify.check compiled))
    else None
  in
  {
    program_name;
    machine_name = machine.Topology.name;
    strategy_used = s.strategy;
    baseline = find_trial baseline;
    best = find_trial best;
    trials;
    simulations = ctx.sims;
    cache_hits = ctx.hits;
    verify_ok;
  }

let trial_to_json t =
  J.Obj
    [
      ("point", Space.to_json t.point);
      ("outcome", Eval.outcome_to_json t.outcome);
      ("rung", match t.rung with None -> J.Null | Some c -> J.Int c);
      ("from_cache", J.Bool t.from_cache);
    ]

let to_json r =
  J.Obj
    [
      ("ctam_tune_version", J.Int 1);
      ("version", J.String Ctam_exp.Build_info.version);
      ("program", J.String r.program_name);
      ("machine", J.String r.machine_name);
      ("strategy", J.String (strategy_id r.strategy_used));
      ("baseline", trial_to_json r.baseline);
      ("best", trial_to_json r.best);
      (* best/default cycle ratio, <= 1.0, higher is worse — same
         orientation as the bench tables' "vs Base" column *)
      ( "tuned_vs_default",
        J.Float
          (if r.baseline.outcome.Eval.cycles <= 0 then 1.0
           else
             float_of_int r.best.outcome.Eval.cycles
             /. float_of_int r.baseline.outcome.Eval.cycles) );
      ("simulations", J.Int r.simulations);
      ("cache_hits", J.Int r.cache_hits);
      ( "verify_ok",
        match r.verify_ok with None -> J.Null | Some b -> J.Bool b );
      ("trials", J.List (List.map trial_to_json r.trials));
    ]

let best_params_json r = Space.to_json r.best.point

let render r =
  let b = Buffer.create 512 in
  let pt p = Fmt.str "%a" Space.pp p in
  Buffer.add_string b
    (Printf.sprintf "tune %s on %s (%s): %d trial(s), %d simulated, %d cached\n"
       r.program_name r.machine_name
       (strategy_id r.strategy_used)
       (List.length r.trials) r.simulations r.cache_hits);
  Buffer.add_string b
    (Printf.sprintf "  default: %-48s %10d cycles %8d mem\n"
       (pt r.baseline.point) r.baseline.outcome.Eval.cycles
       r.baseline.outcome.Eval.mem_accesses);
  Buffer.add_string b
    (Printf.sprintf "  best:    %-48s %10d cycles %8d mem\n" (pt r.best.point)
       r.best.outcome.Eval.cycles r.best.outcome.Eval.mem_accesses);
  Buffer.add_string b
    (Printf.sprintf "  speedup over default: %.3fx%s\n" (improvement r)
       (match r.verify_ok with
       | Some true -> "  (mapping verified)"
       | Some false -> "  (VERIFY FAILED)"
       | None -> ""));
  Buffer.contents b
