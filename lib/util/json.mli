(** A minimal self-contained JSON value type, printer and parser.

    The container this project builds in has no JSON library, so the
    observability layer (run reports, bench trajectories) carries its
    own: a strict RFC 8259 subset that round-trips everything we emit.
    Integers are kept distinct from floats so counters survive a
    round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** member order is preserved *)

(** {1 Printing} *)

(** [to_string ?minify v] renders [v]; by default pretty-printed with
    two-space indentation, or single-line when [minify] is true. *)
val to_string : ?minify:bool -> t -> string

val pp : Format.formatter -> t -> unit

(** {1 Parsing} *)

(** [parse s] parses one JSON value (surrounded by optional
    whitespace).  Returns [Error msg] with a position on malformed
    input. *)
val parse : string -> (t, string) result

(** @raise Invalid_argument on malformed input. *)
val parse_exn : string -> t

(** {1 Accessors}

    Total accessors for digging into parsed values; all raise
    [Invalid_argument] with the offending shape on mismatch. *)

(** [member name v] looks up an object member; [None] if absent.
    @raise Invalid_argument when [v] is not an object. *)
val member : string -> t -> t option

(** [member_exn name v] like {!member} but the member must exist. *)
val member_exn : string -> t -> t

val to_int : t -> int

(** Accepts both [Int] and [Float] payloads. *)
val to_float : t -> float

val to_bool : t -> bool
val to_string_value : t -> string
val to_list : t -> t list
