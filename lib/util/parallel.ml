(* A dependency-free domain pool for embarrassingly parallel maps.

   Tasks are pulled from a shared atomic counter (work stealing by
   index), results land in a slot array indexed by input position, so
   the output order is the input order no matter which domain ran
   what.  Exceptions raised by [f] are caught per task and re-raised
   in the parent after every domain has joined; when several tasks
   fail, the one at the lowest input index wins, which keeps failure
   behaviour deterministic too. *)

let env_var = "CTAM_JOBS"

let default_domains () =
  match Sys.getenv_opt env_var with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* [Raised] keeps the worker's raw backtrace alongside the exception:
   re-raising with a bare [raise] in the parent would overwrite the
   trace with the collection site in this file, destroying the only
   pointer to where [f] actually failed. *)
type 'b slot = Empty | Value of 'b | Raised of exn * Printexc.raw_backtrace

(* Observability hook: when a monitor is installed (see
   Ctam_telemetry.Runtime), the parallel path times each task with the
   monitor's own clock and reports per-domain busy seconds and task
   counts after the join.  The clock is injected so this module stays
   dependency-free; with no monitor installed the only cost is one
   branch per task. *)
type monitor = {
  now : unit -> float;
  record :
    domains:int ->
    tasks:int ->
    wall_seconds:float ->
    busy_per_domain:float array ->
    tasks_per_domain:int array ->
    unit;
}

let monitor_ref = ref None
let set_monitor m = monitor_ref := m
let monitor () = !monitor_ref

let map ?domains f xs =
  let domains =
    match domains with
    | Some d -> if d < 1 then invalid_arg "Parallel.map: domains" else d
    | None -> default_domains ()
  in
  let items = Array.of_list xs in
  let n = Array.length items in
  if domains = 1 || n <= 1 then List.map f xs
  else begin
    let mon = !monitor_ref in
    let workers = min domains n in
    let busy = Array.make workers 0. in
    let counts = Array.make workers 0 in
    let t_start = match mon with Some m -> m.now () | None -> 0. in
    let slots = Array.make n Empty in
    let next = Atomic.make 0 in
    let rec worker w =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let run x =
          try Value (f x)
          with e -> Raised (e, Printexc.get_raw_backtrace ())
        in
        (match mon with
        | None -> slots.(i) <- run items.(i)
        | Some m ->
            let t0 = m.now () in
            (slots.(i) <- run items.(i));
            busy.(w) <- busy.(w) +. (m.now () -. t0);
            counts.(w) <- counts.(w) + 1);
        worker w
      end
    in
    (* The calling domain works too: n tasks need at most n domains. *)
    let helpers =
      Array.init (workers - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    worker 0;
    Array.iter Domain.join helpers;
    (match mon with
    | Some m ->
        m.record ~domains:workers ~tasks:n
          ~wall_seconds:(m.now () -. t_start)
          ~busy_per_domain:busy ~tasks_per_domain:counts
    | None -> ());
    Array.to_list
      (Array.map
         (function
           | Value v -> v
           | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
           | Empty -> assert false)
         slots)
  end

let iter ?domains f xs = ignore (map ?domains (fun x -> f x) xs)
