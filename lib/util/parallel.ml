(* A dependency-free domain pool for embarrassingly parallel maps.

   Tasks are pulled from a shared atomic counter (work stealing by
   index), results land in a slot array indexed by input position, so
   the output order is the input order no matter which domain ran
   what.  Exceptions raised by [f] are caught per task and re-raised
   in the parent after every domain has joined; when several tasks
   fail, the one at the lowest input index wins, which keeps failure
   behaviour deterministic too. *)

let env_var = "CTAM_JOBS"

let default_domains () =
  match Sys.getenv_opt env_var with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

type 'b slot = Empty | Value of 'b | Raised of exn

let map ?domains f xs =
  let domains =
    match domains with
    | Some d -> if d < 1 then invalid_arg "Parallel.map: domains" else d
    | None -> default_domains ()
  in
  let items = Array.of_list xs in
  let n = Array.length items in
  if domains = 1 || n <= 1 then List.map f xs
  else begin
    let slots = Array.make n Empty in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (slots.(i) <- (try Value (f items.(i)) with e -> Raised e));
        worker ()
      end
    in
    (* The calling domain works too: n tasks need at most n domains. *)
    let helpers =
      Array.init (min domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join helpers;
    Array.to_list
      (Array.map
         (function
           | Value v -> v
           | Raised e -> raise e
           | Empty -> assert false)
         slots)
  end

let iter ?domains f xs = ignore (map ?domains (fun x -> f x) xs)
