(* A generic content-addressed single-file JSON store: the persistence
   tier shared by the tune-result cache (Tune.Cache) and the serving
   plan cache (Ctam_serve.Plan_cache).

   One entry = one JSON file named by the FNV-1a 64 hash of its full
   key string; the file carries the key so hash collisions are
   detected on read.  Writes are atomic (temp file + rename) so
   concurrent writers sharing a directory never expose a partial
   entry; failed writes clean their temp file up instead of leaking
   it, and the close is error-checked before the rename so a short
   write (ENOSPC, quota) can never be renamed into place as a
   truncated entry.

   This module stays dependency-free (no telemetry, no unix): outcomes
   are ordinary return values, and the callers own the counting and
   logging policy. *)

module J = Json

type read_result =
  | Hit of J.t
  | Miss  (** no entry on disk (or the file vanished mid-read) *)
  | Corrupt of string
      (** an entry exists but is unusable: unparseable JSON, a
          non-object payload, or missing members *)
  | Collision
      (** parses, but stores a different key: an FNV-1a hash collision
          or a stale file from an incompatible key schema *)

(* FNV-1a 64, rendered as 16 lowercase hex digits.  The 64-bit state
   is kept as two 32-bit limbs in native ints: boxed Int64 arithmetic
   allocates twice per byte, which made hashing a multi-kilobyte key
   (they embed canonical program source) cost milliseconds — this is
   on the per-request serving path via the plan cache and the audit
   journal.  The prime is 2^40 + 0x1b3, so
   h * prime mod 2^64 = (h mod 2^24) * 2^40 + h * 0x1b3. *)
let hash key =
  let lo = ref 0x84222325 (* low 32 bits of 0xcbf29ce484222325 *)
  and hi = ref 0xcbf29ce4 in
  for i = 0 to String.length key - 1 do
    let l = !lo lxor Char.code (String.unsafe_get key i) in
    let t = l * 0x1b3 in
    lo := t land 0xFFFFFFFF;
    hi :=
      ((!hi * 0x1b3) + (t lsr 32) + ((l land 0xFFFFFF) lsl 8)) land 0xFFFFFFFF
  done;
  Printf.sprintf "%08x%08x" !hi !lo

let entry_path ~dir ~prefix key =
  Filename.concat dir (prefix ^ hash key ^ ".json")

let read ~dir ~prefix ~value_member key =
  let path = entry_path ~dir ~prefix key in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception _ -> Miss
  | contents -> (
      match J.parse contents with
      | Error e -> Corrupt ("parse error: " ^ e)
      | Ok (J.Obj _ as j) -> (
          match (J.member "key" j, J.member value_member j) with
          | Some (J.String stored), Some v when String.equal stored key -> Hit v
          | Some (J.String _), Some _ -> Collision
          | _ -> Corrupt (Printf.sprintf "missing key/%s members" value_member))
      | Ok j ->
          (* Valid JSON but not an object (e.g. [] or "x"): an entry we
             can never interpret, not a crash. *)
          Corrupt ("entry is not an object: " ^ J.to_string ~minify:true j))

(* Enumeration stays as dependency-free as the rest of the module:
   paths only, sorted for deterministic output; the caller stats for
   sizes/ages (Ctam_serve.Cachetool owns the maintenance policy). *)
let scan ~dir ~prefix =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n ->
             String.starts_with ~prefix n
             && Filename.check_suffix n ".json"
             && String.length n > String.length prefix + 5)
      |> List.sort compare
      |> List.map (Filename.concat dir)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write ~dir ~prefix ~value_member key value =
  let payload =
    J.to_string (J.Obj [ ("key", J.String key); (value_member, value) ])
  in
  let cleanup tmp = try Sys.remove tmp with Sys_error _ -> () in
  match
    mkdir_p dir;
    Filename.temp_file ~temp_dir:dir prefix ".tmp"
  with
  | exception _ -> Error "cannot create temp file"
  | tmp -> (
      match
        let oc = open_out_bin tmp in
        try
          output_string oc payload;
          output_char oc '\n';
          (* close_out (not _noerr): flush failures — short writes on a
             full disk — must fail the store, or the rename below would
             install a truncated entry. *)
          close_out oc
        with e ->
          close_out_noerr oc;
          raise e
      with
      | exception _ ->
          cleanup tmp;
          Error "write failed"
      | () -> (
          match Sys.rename tmp (entry_path ~dir ~prefix key) with
          | () -> Ok (String.length payload + 1)
          | exception _ ->
              cleanup tmp;
              Error "rename failed"))
