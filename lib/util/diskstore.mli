(** Content-addressed single-file JSON entries: the shared on-disk
    tier of the tune-result cache ({!Ctam_tune.Cache}) and the serving
    plan cache ([Ctam_serve.Plan_cache]).

    An entry is one JSON object [{"key": K, VALUE_MEMBER: V}] stored
    at [DIR/PREFIX<fnv1a64(K)>.json].  The full key travels in the
    file, so a hash collision (or a stale file from an incompatible
    key schema) is detected on read and reported as {!Collision}
    rather than served.  Reads and writes never raise: every failure
    mode is an ordinary constructor / [Error], because a cache must
    stay an optimisation even on a hostile disk.

    Writes are atomic: payload to a fresh temp file in the same
    directory, error-checked close (a short write must not be
    installed), then rename.  On any failure the temp file is
    removed. *)

type read_result =
  | Hit of Json.t  (** the entry's value member *)
  | Miss  (** no entry on disk *)
  | Corrupt of string
      (** unreadable entry: parse error, non-object payload, or
          missing members; the string says which *)
  | Collision  (** a different key hashed to the same file *)

(** 16-hex-digit FNV-1a 64 of a key (the entry's file stem). *)
val hash : string -> string

(** [entry_path ~dir ~prefix key] = [DIR/PREFIX<hash key>.json]. *)
val entry_path : dir:string -> prefix:string -> string -> string

(** [scan ~dir ~prefix] lists the paths of the entries under [dir]
    whose file names start with [prefix] (sorted; [] when the
    directory is missing or unreadable).  Sizes and ages are the
    caller's business — this module carries no clock. *)
val scan : dir:string -> prefix:string -> string list

(** [read ~dir ~prefix ~value_member key] classifies the entry for
    [key]; never raises. *)
val read :
  dir:string -> prefix:string -> value_member:string -> string -> read_result

(** [write ~dir ~prefix ~value_member key value] stores the entry
    atomically (creating [dir] first if needed) and returns the bytes
    written; never raises.  On [Error] no temp file is left behind. *)
val write :
  dir:string ->
  prefix:string ->
  value_member:string ->
  string ->
  Json.t ->
  (int, string) result
