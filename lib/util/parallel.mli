(** A minimal domain pool (OCaml 5 [Domain]s, no dependencies).

    Built for the experiment drivers: every task constructs its own
    simulator state, so tasks share nothing mutable and a parallel run
    is observationally identical to the serial one. *)

(** Name of the environment variable consulted by {!default_domains}
    ("CTAM_JOBS"). *)
val env_var : string

(** Domains used when [?domains] is omitted: [$CTAM_JOBS] if set to a
    positive integer, else [Domain.recommended_domain_count ()]. *)
val default_domains : unit -> int

(** Observability hook for the pool (see [Ctam_telemetry.Runtime],
    which installs one at program startup).  After every multi-domain
    {!map}, [record] receives the worker count, the task count, the
    wall-clock of the whole map and per-worker busy-seconds / task
    counts — enough to derive pool utilization and queue wait.  [now]
    is the clock used for all of those, injected so this module keeps
    zero dependencies.  With no monitor installed the parallel path
    pays one branch per task and nothing else; the serial path
    ([~domains:1] or [<= 1] tasks) is never monitored. *)
type monitor = {
  now : unit -> float;
  record :
    domains:int ->
    tasks:int ->
    wall_seconds:float ->
    busy_per_domain:float array ->
    tasks_per_domain:int array ->
    unit;
}

val set_monitor : monitor option -> unit
val monitor : unit -> monitor option

(** [map ?domains f xs] is [List.map f xs], computed by up to
    [domains] domains (including the caller).  Results are returned in
    input order regardless of completion order.  If [f] raises on some
    element, the exception for the lowest-index failing element is
    re-raised after all domains have joined, with the worker's original
    backtrace preserved ([Printexc.raise_with_backtrace], so the trace
    points at the failure inside [f], not at this module).  [~domains:1]
    runs
    serially in the calling domain (no spawns).
    @raise Invalid_argument if [domains < 1]. *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [iter ?domains f xs] is {!map} with the results discarded. *)
val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit
