type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(minify = false) v =
  let b = Buffer.create 256 in
  let nl indent =
    if not minify then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string b "null"
    | Bool bo -> Buffer.add_string b (if bo then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if Float.is_nan f || Float.is_integer (f /. 0.) then
          (* JSON has no NaN/inf; null is the conventional stand-in. *)
          Buffer.add_string b "null"
        else Buffer.add_string b (float_repr f)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List vs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            nl (indent + 2);
            go (indent + 2) v)
          vs;
        nl indent;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj ms ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            nl (indent + 2);
            escape_string b k;
            Buffer.add_string b (if minify then ":" else ": ");
            go (indent + 2) v)
          ms;
        nl indent;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* --- parsing ---------------------------------------------------------- *)

exception Parse of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_hex4 () =
    (* Exactly four [0-9a-fA-F] digits.  Going through
       [int_of_string_opt ("0x" ^ h)] here would admit OCaml integer
       syntax that JSON forbids (underscores as in "\u12_3", a second
       "0x" prefix, signs). *)
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape (want four hex digits)"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 b cp =
    (* Encode a Unicode scalar value as UTF-8. *)
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 'r' -> Buffer.add_char b '\r'
           | 't' -> Buffer.add_char b '\t'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'u' ->
               (* Surrogate handling: a high+low pair combines into one
                  scalar; an unpaired surrogate (either half) becomes
                  U+FFFD, so the output is always valid UTF-8 — raw
                  surrogate code points must never be UTF-8-encoded. *)
               let rec emit cp =
                 if cp >= 0xD800 && cp <= 0xDBFF then
                   if !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = parse_hex4 () in
                     if lo >= 0xDC00 && lo <= 0xDFFF then
                       add_utf8 b (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                     else begin
                       (* Unpaired high; the second escape stands alone. *)
                       add_utf8 b 0xFFFD;
                       emit lo
                     end
                   end
                   else add_utf8 b 0xFFFD
                 else if cp >= 0xDC00 && cp <= 0xDFFF then add_utf8 b 0xFFFD
                 else add_utf8 b cp
               in
               emit (parse_hex4 ())
           | _ -> fail "bad escape");
          go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse (p, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)
  | exception Failure msg -> Error (Printf.sprintf "JSON parse error: %s" msg)

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> invalid_arg msg

(* --- accessors -------------------------------------------------------- *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "list"
  | Obj _ -> "object"

let member name = function
  | Obj ms -> List.assoc_opt name ms
  | v -> invalid_arg (Printf.sprintf "Json.member %s: not an object (%s)" name (type_name v))

let member_exn name v =
  match member name v with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Json.member_exn: missing member %s" name)

let to_int = function
  | Int i -> i
  | v -> invalid_arg (Printf.sprintf "Json.to_int: %s" (type_name v))

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> invalid_arg (Printf.sprintf "Json.to_float: %s" (type_name v))

let to_bool = function
  | Bool b -> b
  | v -> invalid_arg (Printf.sprintf "Json.to_bool: %s" (type_name v))

let to_string_value = function
  | String s -> s
  | v -> invalid_arg (Printf.sprintf "Json.to_string_value: %s" (type_name v))

let to_list = function
  | List l -> l
  | v -> invalid_arg (Printf.sprintf "Json.to_list: %s" (type_name v))
