open Ctam_poly

type t = {
  name : string;
  index_names : string array;
  domain : Domain.t;
  body : Stmt.t list;
  parallel : bool;
}

let make ~name ~index_names ~domain ~body ~parallel =
  let d = Domain.depth domain in
  if Array.length index_names <> d then
    invalid_arg "Nest.make: index_names length";
  if body = [] then invalid_arg "Nest.make: empty body";
  List.iter
    (fun s -> if Stmt.depth s <> d then invalid_arg "Nest.make: stmt depth")
    body;
  { name; index_names = Array.copy index_names; domain; body; parallel }

let depth t = Domain.depth t.domain
let refs t = List.concat_map Stmt.refs t.body

let arrays_used t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun r ->
      let n = r.Reference.array_name in
      if Hashtbl.mem seen n then None
      else begin
        Hashtbl.add seen n ();
        Some n
      end)
    (refs t)

let trip_count t = Domain.cardinal t.domain

let pp ppf t =
  Fmt.pf ppf "@[<v>%s%s: %a@,%a@]" t.name
    (if t.parallel then " (parallel)" else "")
    (Domain.pp ~names:t.index_names)
    t.domain
    Fmt.(list ~sep:cut (Stmt.pp ~names:t.index_names))
    t.body
