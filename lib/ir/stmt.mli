(** Loop-body statements: assignments [A[f(I)] = expr]. *)

type t = { lhs : Reference.t; rhs : Expr.t }

(** [assign lhs rhs] builds a statement.
    @raise Invalid_argument if [lhs] is not a write or depths differ. *)
val assign : Reference.t -> Expr.t -> t

(** All references of the statement: reads of [rhs] then the write. *)
val refs : t -> Reference.t list

val reads : t -> Reference.t list
val writes : t -> Reference.t list
val depth : t -> int
val pp : ?names:string array -> t Fmt.t
