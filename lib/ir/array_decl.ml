type t = { name : string; dims : int array; elem_size : int }

let make ~name ~dims ~elem_size =
  if elem_size <= 0 then invalid_arg "Array_decl.make: elem_size";
  if Array.length dims = 0 then invalid_arg "Array_decl.make: rank 0";
  Array.iter (fun d -> if d <= 0 then invalid_arg "Array_decl.make: extent") dims;
  { name; dims = Array.copy dims; elem_size }

let cardinal a = Array.fold_left ( * ) 1 a.dims
let byte_size a = cardinal a * a.elem_size
let rank a = Array.length a.dims

let linearize a idx =
  let r = rank a in
  if Array.length idx <> r then invalid_arg "Array_decl.linearize: rank";
  let off = ref 0 in
  for k = 0 to r - 1 do
    if idx.(k) < 0 || idx.(k) >= a.dims.(k) then
      invalid_arg
        (Printf.sprintf "Array_decl.linearize: %s index %d out of [0,%d)"
           a.name idx.(k) a.dims.(k));
    off := (!off * a.dims.(k)) + idx.(k)
  done;
  !off

let equal a b = a.name = b.name && a.dims = b.dims && a.elem_size = b.elem_size

let pp ppf a =
  Fmt.pf ppf "%s%a (%d B/elem)" a.name
    Fmt.(array ~sep:nop (brackets int))
    a.dims a.elem_size
