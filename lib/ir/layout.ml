type entry = { decl : Array_decl.t; base : int }

type t = {
  align : int;
  by_name : (string, entry) Hashtbl.t;
  order : Array_decl.t list;
  total : int;
}

let round_up x align = (x + align - 1) / align * align

let make ~align arrays =
  if align <= 0 then invalid_arg "Layout.make: align";
  let by_name = Hashtbl.create 16 in
  let cursor = ref 0 in
  List.iter
    (fun decl ->
      let base = round_up !cursor align in
      Hashtbl.replace by_name decl.Array_decl.name { decl; base };
      cursor := base + Array_decl.byte_size decl)
    arrays;
  { align; by_name; order = arrays; total = !cursor }

let of_program ~align p = make ~align p.Program.arrays
let align t = t.align

let entry t name =
  match Hashtbl.find_opt t.by_name name with
  | Some e -> e
  | None -> raise Not_found

let base t name = (entry t name).base
let decl t name = (entry t name).decl
let total_bytes t = t.total

let elem_addr t name idx =
  let e = entry t name in
  e.base + (Array_decl.linearize e.decl idx * e.decl.Array_decl.elem_size)

let ref_addr t r iv = elem_addr t r.Reference.array_name (Reference.target r iv)

(* Same function, partially applied: the table lookup happens once and
   the subscript values feed the row-major offset directly, so the
   per-iteration call does no hashing and allocates nothing.  Hot on
   the generator-stream path, where addresses are recomputed on every
   simulation run instead of being materialized once. *)
let ref_addr_fn t r =
  let e = entry t r.Reference.array_name in
  let dims = e.decl.Array_decl.dims in
  let subs = r.Reference.subs in
  let n = Array.length subs in
  let base = e.base in
  let esz = e.decl.Array_decl.elem_size in
  fun iv ->
    let off = ref 0 in
    for k = 0 to n - 1 do
      let v = Ctam_poly.Affine.eval subs.(k) iv in
      if v < 0 || v >= dims.(k) then
        invalid_arg
          (Printf.sprintf "Layout.ref_addr_fn: %s index %d out of [0,%d)"
             e.decl.Array_decl.name v dims.(k));
      off := (!off * dims.(k)) + v
    done;
    base + (!off * esz)
let arrays t = t.order

let pp ppf t =
  Fmt.pf ppf "@[<v>layout (align %d, %d B total):@,%a@]" t.align t.total
    Fmt.(
      list ~sep:cut (fun ppf d ->
          pf ppf "  %s @@ %d" d.Array_decl.name (base t d.Array_decl.name)))
    t.order
