type entry = { decl : Array_decl.t; base : int }

type t = {
  align : int;
  by_name : (string, entry) Hashtbl.t;
  order : Array_decl.t list;
  total : int;
}

let round_up x align = (x + align - 1) / align * align

let make ~align arrays =
  if align <= 0 then invalid_arg "Layout.make: align";
  let by_name = Hashtbl.create 16 in
  let cursor = ref 0 in
  List.iter
    (fun decl ->
      let base = round_up !cursor align in
      Hashtbl.replace by_name decl.Array_decl.name { decl; base };
      cursor := base + Array_decl.byte_size decl)
    arrays;
  { align; by_name; order = arrays; total = !cursor }

let of_program ~align p = make ~align p.Program.arrays
let align t = t.align

let entry t name =
  match Hashtbl.find_opt t.by_name name with
  | Some e -> e
  | None -> raise Not_found

let base t name = (entry t name).base
let decl t name = (entry t name).decl
let total_bytes t = t.total

let elem_addr t name idx =
  let e = entry t name in
  e.base + (Array_decl.linearize e.decl idx * e.decl.Array_decl.elem_size)

let ref_addr t r iv = elem_addr t r.Reference.array_name (Reference.target r iv)
let arrays t = t.order

let pp ppf t =
  Fmt.pf ppf "@[<v>layout (align %d, %d B total):@,%a@]" t.align t.total
    Fmt.(
      list ~sep:cut (fun ppf d ->
          pf ppf "  %s @@ %d" d.Array_decl.name (base t d.Array_decl.name)))
    t.order
