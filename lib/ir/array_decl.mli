(** Array declarations: the data spaces of the paper's framework. *)

type t = {
  name : string;
  dims : int array;      (** extent of each dimension; row-major layout *)
  elem_size : int;       (** bytes per element, e.g. 8 for double *)
}

(** [make ~name ~dims ~elem_size] declares an array.
    @raise Invalid_argument on non-positive extents or element size. *)
val make : name:string -> dims:int array -> elem_size:int -> t

(** Number of elements. *)
val cardinal : t -> int

(** Footprint in bytes. *)
val byte_size : t -> int

val rank : t -> int

(** [linearize a idx] is the row-major element offset of [idx] in [a].
    @raise Invalid_argument if any index is out of bounds. *)
val linearize : t -> int array -> int

val equal : t -> t -> bool
val pp : t Fmt.t
