(** Whole programs: array declarations plus a sequence of loop nests. *)

type t = { name : string; arrays : Array_decl.t list; nests : Nest.t list }

(** [make ~name ~arrays ~nests] checks that every reference targets a
    declared array with matching rank.
    @raise Invalid_argument otherwise. *)
val make : name:string -> arrays:Array_decl.t list -> nests:Nest.t list -> t

(** [find_array p name] looks up a declaration.
    @raise Not_found when absent. *)
val find_array : t -> string -> Array_decl.t

(** Nests marked parallel, in program order. *)
val parallel_nests : t -> Nest.t list

(** Total data footprint in bytes. *)
val data_bytes : t -> int

val pp : t Fmt.t
