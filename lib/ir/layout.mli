(** Memory layout: assign each array a base byte address.

    Arrays are placed sequentially, each base rounded up to a multiple
    of [align].  Choosing [align] as the lcm of the cache-line size and
    the data-block size guarantees the paper's requirement that blocks
    never cross array boundaries (each array starts a new block). *)

type t

(** [make ~align arrays].
    @raise Invalid_argument if [align <= 0]. *)
val make : align:int -> Array_decl.t list -> t

(** [of_program ~align p] lays out all arrays of [p]. *)
val of_program : align:int -> Program.t -> t

val align : t -> int

(** Base byte address of an array.  @raise Not_found when absent. *)
val base : t -> string -> int

(** Declaration of an array.  @raise Not_found when absent. *)
val decl : t -> string -> Array_decl.t

(** Total bytes spanned (end of last array). *)
val total_bytes : t -> int

(** [elem_addr t name idx] is the byte address of element [idx]. *)
val elem_addr : t -> string -> int array -> int

(** [ref_addr_fn t r] is [ref_addr t r] with the layout entry resolved
    once: the returned function hashes nothing and allocates nothing
    per call.  Use it when one reference's address is evaluated for
    many iteration points (the generator-stream path). *)
val ref_addr_fn : t -> Reference.t -> int array -> int

(** [ref_addr t r iv] is the byte address touched by reference [r] at
    iteration [iv]. *)
val ref_addr : t -> Reference.t -> int array -> int

val arrays : t -> Array_decl.t list
val pp : t Fmt.t
