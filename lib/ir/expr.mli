(** Right-hand-side expressions of loop-body statements.

    The mapping algorithms only need the set of references an
    expression contains, but keeping a real expression tree lets the
    frontend round-trip programs and the pretty-printer emit readable
    code. *)

type binop = Add | Sub | Mul | Div

type t =
  | Const of float
  | Index of int           (** value of loop index [i_j] *)
  | Load of Reference.t    (** array read *)
  | Binop of binop * t * t

val const : float -> t
val index : int -> t
val load : Reference.t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

(** All array references in the expression, left to right. *)
val refs : t -> Reference.t list

(** Evaluate with an environment for loads (used by tests to check
    semantic preservation of reordered schedules over commutative
    bodies). *)
val eval : load:(Reference.t -> float) -> index:(int -> float) -> t -> float

val pp : ?names:string array -> t Fmt.t
