type t = { lhs : Reference.t; rhs : Expr.t }

let assign lhs rhs =
  if not (Reference.is_write lhs) then invalid_arg "Stmt.assign: lhs not write";
  List.iter
    (fun r ->
      if Reference.depth r <> Reference.depth lhs then
        invalid_arg "Stmt.assign: depth mismatch")
    (Expr.refs rhs);
  { lhs; rhs }

let refs s = Expr.refs s.rhs @ [ s.lhs ]
let reads s = Expr.refs s.rhs
let writes s = [ s.lhs ]
let depth s = Reference.depth s.lhs

let pp ?names ppf s =
  Fmt.pf ppf "%a = %a;" (Reference.pp ?names) s.lhs (Expr.pp ?names) s.rhs
