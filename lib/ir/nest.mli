(** Loop nests: an iteration domain plus a body of statements.

    A nest is the unit the paper optimizes: the iterations of a nest
    marked [parallel] are distributed across cores. *)

open Ctam_poly

type t = {
  name : string;
  index_names : string array;  (** one per nest dimension *)
  domain : Domain.t;
  body : Stmt.t list;
  parallel : bool;
}

(** [make ~name ~index_names ~domain ~body ~parallel].
    @raise Invalid_argument on depth mismatches or empty body. *)
val make :
  name:string ->
  index_names:string array ->
  domain:Domain.t ->
  body:Stmt.t list ->
  parallel:bool ->
  t

val depth : t -> int

(** All array references of the body, in program order. *)
val refs : t -> Reference.t list

(** Names of all arrays the nest touches, deduplicated, first-use order. *)
val arrays_used : t -> string list

(** Number of iterations. *)
val trip_count : t -> int

val pp : t Fmt.t
