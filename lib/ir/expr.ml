type binop = Add | Sub | Mul | Div

type t =
  | Const of float
  | Index of int
  | Load of Reference.t
  | Binop of binop * t * t

let const c = Const c
let index j = Index j
let load r = Load r
let add a b = Binop (Add, a, b)
let sub a b = Binop (Sub, a, b)
let mul a b = Binop (Mul, a, b)
let div a b = Binop (Div, a, b)

let refs e =
  let rec go acc = function
    | Const _ | Index _ -> acc
    | Load r -> r :: acc
    | Binop (_, a, b) -> go (go acc a) b
  in
  List.rev (go [] e)

let rec eval ~load ~index = function
  | Const c -> c
  | Index j -> index j
  | Load r -> load r
  | Binop (op, a, b) -> (
      let va = eval ~load ~index a and vb = eval ~load ~index b in
      match op with
      | Add -> va +. vb
      | Sub -> va -. vb
      | Mul -> va *. vb
      | Div -> va /. vb)

let op_str = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec pp ?names ppf = function
  | Const c ->
      if Float.is_integer c then Fmt.pf ppf "%.0f" c else Fmt.pf ppf "%g" c
  | Index j -> (
      match names with
      | Some ns when j < Array.length ns -> Fmt.string ppf ns.(j)
      | _ -> Fmt.pf ppf "i%d" j)
  | Load r -> Reference.pp ?names ppf r
  | Binop (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" (pp ?names) a (op_str op) (pp ?names) b
