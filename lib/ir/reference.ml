open Ctam_poly

type kind = Read | Write
type t = { array_name : string; subs : Affine.t array; kind : kind }

let make ~array_name ~subs ~kind =
  if Array.length subs = 0 then invalid_arg "Reference.make: no subscripts";
  let d = Affine.depth subs.(0) in
  Array.iter
    (fun s -> if Affine.depth s <> d then invalid_arg "Reference.make: depth")
    subs;
  { array_name; subs = Array.copy subs; kind }

let depth r = Affine.depth r.subs.(0)
let rank r = Array.length r.subs
let target r iv = Array.map (fun s -> Affine.eval s iv) r.subs

let in_bounds r arr iv =
  if arr.Array_decl.name <> r.array_name then
    invalid_arg "Reference.in_bounds: wrong array";
  let idx = target r iv in
  Array.length idx = Array_decl.rank arr
  && (let ok = ref true in
      Array.iteri
        (fun k v -> if v < 0 || v >= arr.Array_decl.dims.(k) then ok := false)
        idx;
      !ok)

let is_write r = r.kind = Write

let equal a b =
  a.array_name = b.array_name && a.kind = b.kind
  && Array.length a.subs = Array.length b.subs
  && Array.for_all2 Affine.equal a.subs b.subs

let pp ?names ppf r =
  Fmt.pf ppf "%s%a%s" r.array_name
    Fmt.(array ~sep:nop (brackets (Affine.pp ?names)))
    r.subs
    (match r.kind with Read -> "" | Write -> " (w)")
