(** Array references: affine maps from iteration space to data space.

    A reference [R] is an array name plus one affine subscript per
    array dimension; [R(I)] (paper §3.2) is computed by [target]. *)

open Ctam_poly

type kind = Read | Write

type t = {
  array_name : string;
  subs : Affine.t array;  (** one affine subscript per array dimension *)
  kind : kind;
}

(** [make ~array_name ~subs ~kind] builds a reference; all subscripts
    must share the same nest depth.
    @raise Invalid_argument otherwise. *)
val make : array_name:string -> subs:Affine.t array -> kind:kind -> t

val depth : t -> int
val rank : t -> int

(** [target r iv] is the data-space index accessed by iteration [iv]. *)
val target : t -> int array -> int array

(** [in_bounds r arr iv] tests whether [target r iv] lies inside [arr].
    @raise Invalid_argument if [arr] is not the referenced array. *)
val in_bounds : t -> Array_decl.t -> int array -> bool

val is_write : t -> bool
val equal : t -> t -> bool
val pp : ?names:string array -> t Fmt.t
