type t = { name : string; arrays : Array_decl.t list; nests : Nest.t list }

let find_array_opt arrays name =
  List.find_opt (fun a -> a.Array_decl.name = name) arrays

let make ~name ~arrays ~nests =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let n = a.Array_decl.name in
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Program.make: duplicate array %s" n);
      Hashtbl.add seen n ())
    arrays;
  List.iter
    (fun nest ->
      List.iter
        (fun r ->
          match find_array_opt arrays r.Reference.array_name with
          | None ->
              invalid_arg
                (Printf.sprintf "Program.make: undeclared array %s"
                   r.Reference.array_name)
          | Some a ->
              if Array_decl.rank a <> Reference.rank r then
                invalid_arg
                  (Printf.sprintf "Program.make: rank mismatch on %s"
                     r.Reference.array_name))
        (Nest.refs nest))
    nests;
  { name; arrays; nests }

let find_array p name =
  match find_array_opt p.arrays name with
  | Some a -> a
  | None -> raise Not_found

let parallel_nests p = List.filter (fun n -> n.Nest.parallel) p.nests
let data_bytes p = List.fold_left (fun acc a -> acc + Array_decl.byte_size a) 0 p.arrays

let pp ppf p =
  Fmt.pf ppf "@[<v>program %s@,%a@,%a@]" p.name
    Fmt.(list ~sep:cut Array_decl.pp)
    p.arrays
    Fmt.(list ~sep:cut Nest.pp)
    p.nests
