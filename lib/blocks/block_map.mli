(** Logical data blocks (§3.3).

    Data is partitioned into equal-sized blocks numbered sequentially;
    blocks never cross array boundaries.  The latter holds because the
    memory layout aligns each array base to a multiple of the block
    size, so the simple [addr / block_size] rule respects boundaries. *)

open Ctam_ir

type t

(** [make ~block_size layout].
    @raise Invalid_argument if [block_size <= 0] or the layout's
    alignment is not a multiple of [block_size] (a block would cross an
    array boundary). *)
val make : block_size:int -> Layout.t -> t

(** [for_program ~block_size ~line p] builds the canonical layout
    (aligned to [lcm line block_size]) and its block map. *)
val for_program : block_size:int -> line:int -> Program.t -> t * Layout.t

val block_size : t -> int
val num_blocks : t -> int

(** [block_of_addr t addr] is the block containing a byte address.
    @raise Invalid_argument if [addr] is outside the laid-out data. *)
val block_of_addr : t -> int -> int

(** Blocks spanned by an array, as an inclusive range. *)
val blocks_of_array : t -> string -> int * int

val layout : t -> Layout.t
val pp : t Fmt.t
