open Ctam_ir

type t = { block_size : int; layout : Layout.t; num_blocks : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let make ~block_size layout =
  if block_size <= 0 then invalid_arg "Block_map.make: block_size";
  if Layout.align layout mod block_size <> 0 then
    invalid_arg "Block_map.make: layout alignment must be a block multiple";
  let total = Layout.total_bytes layout in
  { block_size; layout; num_blocks = (total + block_size - 1) / block_size }

let for_program ~block_size ~line p =
  let layout = Layout.of_program ~align:(lcm line block_size) p in
  (make ~block_size layout, layout)

let block_size t = t.block_size
let num_blocks t = t.num_blocks

let block_of_addr t addr =
  if addr < 0 || addr >= Layout.total_bytes t.layout then
    invalid_arg "Block_map.block_of_addr: address out of range";
  addr / t.block_size

let blocks_of_array t name =
  let base = Layout.base t.layout name in
  let decl = Layout.decl t.layout name in
  let last = base + Array_decl.byte_size decl - 1 in
  (base / t.block_size, last / t.block_size)

let layout t = t.layout

let pp ppf t =
  Fmt.pf ppf "block_map(%d B blocks, %d blocks over %d B)" t.block_size
    t.num_blocks
    (Layout.total_bytes t.layout)
