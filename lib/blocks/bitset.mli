(** Fixed-width bitsets: the tags of the paper (§3.3).

    A tag is a bit per data block; bit [j] is set iff the iteration
    group accesses block [j].  Dot products of tags (popcount of the
    intersection) are the affinity measure of the clustering and
    scheduling algorithms, so they are hot: the representation is a
    packed [int array]. *)

type t

(** [create n] is the empty set over [n] bits.
    @raise Invalid_argument if [n < 0]. *)
val create : int -> t

(** [singleton n j] has only bit [j] set. *)
val singleton : int -> int -> t

(** [of_list n js] sets each bit of [js]. *)
val of_list : int -> int list -> t

val width : t -> int

(** [set t j] / [clear t j] return a new set; inputs are immutable. *)
val set : t -> int -> t

val clear : t -> int -> t
val get : t -> int -> bool

(** Number of set bits. *)
val count : t -> int

(** Bitwise or: the paper's "bitwise sum" used as a cluster's tag. *)
val union : t -> t -> t

val inter : t -> t -> t
val diff : t -> t -> t

(** [dot a b] = |a ∩ b|: the paper's tag dot-product affinity. *)
val dot : t -> t -> int

(** Bits set in exactly one of the two: the Hamming distance. *)
val hamming : t -> t -> int

val is_empty : t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Indices of set bits, ascending. *)
val to_list : t -> int list

(** Apply [f] to every set bit, ascending. *)
val iter : (int -> unit) -> t -> unit

(** Render as a 0/1 string, bit 0 leftmost (like the paper's figures). *)
val to_string : t -> string

val pp : t Fmt.t
