(** Iteration groups (§3.3): maximal sets of iterations with the same
    tag (identical data-block access signatures). *)

open Ctam_poly

type t = {
  id : int;           (** dense id within one grouping *)
  tag : Bitset.t;     (** the data-block signature *)
  iters : Iterset.t;  (** the member iterations *)
}

(** Number of iterations — the paper's S(Θ). *)
val size : t -> int

(** [dot a b] is the tag dot-product: the affinity between groups. *)
val dot : t -> t -> int

(** [split g] halves a group (lexicographically) into two groups with
    the same tag — used by load balancing when no whole group fits.
    @raise Invalid_argument on a singleton or empty group. *)
val split : t -> t * t

(** [split_at n g] puts the first [n] iterations in the left part. *)
val split_at : int -> t -> t * t

val pp : t Fmt.t
