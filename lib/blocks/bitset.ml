(* 62 payload bits per word keeps everything in OCaml's unboxed int
   range on 64-bit platforms. *)
let bits_per_word = 62

type t = { width : int; words : int array }

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { width = n; words = Array.make (words_for n) 0 }

let check t j =
  if j < 0 || j >= t.width then invalid_arg "Bitset: bit index out of range"

let set t j =
  check t j;
  let words = Array.copy t.words in
  words.(j / bits_per_word) <-
    words.(j / bits_per_word) lor (1 lsl (j mod bits_per_word));
  { t with words }

let clear t j =
  check t j;
  let words = Array.copy t.words in
  words.(j / bits_per_word) <-
    words.(j / bits_per_word) land lnot (1 lsl (j mod bits_per_word));
  { t with words }

let get t j =
  check t j;
  t.words.(j / bits_per_word) land (1 lsl (j mod bits_per_word)) <> 0

(* Builders write one freshly allocated word array in place instead of
   copying it once per element (Tags.group builds tags through these). *)
let of_list n js =
  if n < 0 then invalid_arg "Bitset.create";
  let words = Array.make (words_for n) 0 in
  List.iter
    (fun j ->
      if j < 0 || j >= n then
        invalid_arg "Bitset: bit index out of range";
      words.(j / bits_per_word) <-
        words.(j / bits_per_word) lor (1 lsl (j mod bits_per_word)))
    js;
  { width = n; words }

let singleton n j = of_list n [ j ]

let width t = t.width

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let map2 f a b =
  if a.width <> b.width then invalid_arg "Bitset: width mismatch";
  { a with words = Array.map2 f a.words b.words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let fold2 f init a b =
  if a.width <> b.width then invalid_arg "Bitset: width mismatch";
  let acc = ref init in
  for i = 0 to Array.length a.words - 1 do
    acc := f !acc a.words.(i) b.words.(i)
  done;
  !acc

let dot a b = fold2 (fun acc x y -> acc + popcount (x land y)) 0 a b
let hamming a b = fold2 (fun acc x y -> acc + popcount (x lxor y)) 0 a b
let is_empty t = Array.for_all (fun w -> w = 0) t.words
let equal a b = a.width = b.width && a.words = b.words
let subset a b = fold2 (fun acc x y -> acc && x land lnot y = 0) true a b
let compare a b = Stdlib.compare (a.width, a.words) (b.width, b.words)
let hash t = Hashtbl.hash (t.width, t.words)

(* Number of trailing zeros of a one-bit word (x = 1 lsl k returns k). *)
let ntz x =
  let n = ref 0 and x = ref x in
  if !x land 0xFFFFFFFF = 0 then begin n := !n + 32; x := !x lsr 32 end;
  if !x land 0xFFFF = 0 then begin n := !n + 16; x := !x lsr 16 end;
  if !x land 0xFF = 0 then begin n := !n + 8; x := !x lsr 8 end;
  if !x land 0xF = 0 then begin n := !n + 4; x := !x lsr 4 end;
  if !x land 0x3 = 0 then begin n := !n + 2; x := !x lsr 2 end;
  if !x land 0x1 = 0 then incr n;
  !n

let iter f t =
  (* Walk set bits word by word: [w land (-w)] isolates the lowest set
     bit, [w land (w - 1)] clears it — zero words and the zero tail of
     each word cost nothing, instead of testing all [width] positions. *)
  for i = 0 to Array.length t.words - 1 do
    let w = ref t.words.(i) in
    if !w <> 0 then begin
      let base = i * bits_per_word in
      while !w <> 0 do
        f (base + ntz (!w land - !w));
        w := !w land (!w - 1)
      done
    end
  done

let to_list t =
  let acc = ref [] in
  iter (fun j -> acc := j :: !acc) t;
  List.rev !acc

let to_string t = String.init t.width (fun j -> if get t j then '1' else '0')
let pp ppf t = Fmt.string ppf (to_string t)
