(** Tagging iterations and building iteration groups (§3.3).

    The tag of an iteration is the set of data blocks its references
    touch; iterations with equal tags form an iteration group. *)

open Ctam_poly
open Ctam_ir

type grouping = {
  nest : Nest.t;
  block_map : Block_map.t;
  encoder : Iterset.encoder;        (** over the nest's bounding box *)
  groups : Iter_group.t array;      (** ids are indices: groups.(i).id = i *)
}

(** Sorted, deduplicated blocks touched by one iteration. *)
val blocks_of_iteration : Block_map.t -> Nest.t -> int array -> int list

(** Tag of one iteration as a bitset over all data blocks. *)
val tag_of_iteration : Block_map.t -> Nest.t -> int array -> Bitset.t

(** [group ?unit nest block_map] enumerates the nest's domain and
    partitions it into iteration groups.  Groups are ordered by their
    first iteration (lexicographic).

    [unit] (default 1) strip-mines the sequential iteration order into
    units of that many consecutive iterations before tagging: a unit's
    tag is the union of its members' tags and units are grouped by tag
    equality.  This bounds the group count for access patterns whose
    per-iteration tags are all distinct (e.g. transposed sweeps).

    [tile] (exclusive with [unit]) coalesces by iteration-space tiles
    instead: iterations with equal [iv.(k) / tile.(k)] form one unit.
    Tiles preserve tag selectivity in *every* dimension, which
    strip-mining cannot (a transposed reference makes any 1D unit
    unselective in one direction). *)
val group : ?unit:int -> ?tile:int array -> Nest.t -> Block_map.t -> grouping

(** [group_capped ~max_groups nest bm] grows a uniform coalescing tile
    until at most [max_groups] groups result (compile-time safeguard;
    tags stay exact, just coarser).  Tag-equality grouping still runs
    afterwards, so patterns with naturally large groups are returned
    unchanged. *)
val group_capped : max_groups:int -> Nest.t -> Block_map.t -> grouping

(** Sum of group sizes — equals the nest trip count (the groups
    partition the iteration space). *)
val total_iterations : grouping -> int

val pp : grouping Fmt.t
