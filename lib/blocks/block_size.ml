let default_candidates = [ 8192; 4096; 2048; 1024; 512; 256 ]

let max_group_footprint nest bm =
  let grouping = Tags.group nest bm in
  Array.fold_left
    (fun acc g -> max acc (Bitset.count g.Iter_group.tag))
    0 grouping.Tags.groups
  * Block_map.block_size bm

let choose ?(candidates = default_candidates) ~l1_capacity ~line nest p =
  let candidates = List.sort (fun a b -> compare b a) candidates in
  let rec go = function
    | [] -> invalid_arg "Block_size.choose: no candidates"
    | [ last ] ->
        let bm, _ = Block_map.for_program ~block_size:last ~line p in
        (last, bm)
    | b :: rest ->
        let bm, _ = Block_map.for_program ~block_size:b ~line p in
        if max_group_footprint nest bm <= l1_capacity then (b, bm)
        else go rest
  in
  go candidates
