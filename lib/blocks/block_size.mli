(** Data-block-size selection (§4.1).

    The paper profiles the application and picks the largest block size
    such that the data touched by the most aggressive iteration group
    (the one whose tag has the most 1s) still fits in the L1 cache;
    smaller sizes are always admissible (they trade compile time for
    finer clustering, Figure 16). *)

open Ctam_ir

(** Power-of-two candidates from 256 B to 8 KB, descending. *)
val default_candidates : int list

(** Bytes touched by the most aggressive group under this blocking. *)
val max_group_footprint : Nest.t -> Block_map.t -> int

(** [choose ?candidates ~l1_capacity ~line nest p] profiles the nest
    for each candidate (largest first) and returns the first block size
    whose most-aggressive-group footprint fits in L1, together with its
    block map; falls back to the smallest candidate if none fits. *)
val choose :
  ?candidates:int list ->
  l1_capacity:int ->
  line:int ->
  Nest.t ->
  Program.t ->
  int * Block_map.t
