open Ctam_poly
open Ctam_ir

type grouping = {
  nest : Nest.t;
  block_map : Block_map.t;
  encoder : Iterset.encoder;
  groups : Iter_group.t array;
}

let blocks_of_iteration bm nest iv =
  let layout = Block_map.layout bm in
  let blocks =
    List.map
      (fun r -> Block_map.block_of_addr bm (Layout.ref_addr layout r iv))
      (Nest.refs nest)
  in
  List.sort_uniq compare blocks

let tag_of_iteration bm nest iv =
  Bitset.of_list (Block_map.num_blocks bm) (blocks_of_iteration bm nest iv)

let group ?(unit = 1) ?tile nest bm =
  if unit < 1 then invalid_arg "Tags.group: unit";
  let d = Nest.depth nest in
  (match tile with
  | Some t ->
      if Array.length t <> d then invalid_arg "Tags.group: tile length";
      Array.iter (fun e -> if e < 1 then invalid_arg "Tags.group: tile") t
  | None -> ());
  let refs = Array.of_list (Nest.refs nest) in
  let layout = Block_map.layout bm in
  let encoder = Iterset.encoder_of_domain nest.Nest.domain in
  let scratch = Array.make (Array.length refs) 0 in
  let blocks_of iv =
    Array.iteri
      (fun k r ->
        scratch.(k) <- Block_map.block_of_addr bm (Layout.ref_addr layout r iv))
      refs
  in
  (* Phase 1: coalesce iterations into units (1 iteration, [unit]
     consecutive ones, or an iteration-space tile), accumulating each
     unit's touched blocks and member keys. *)
  let units : (int list * int list) list =
    match tile with
    | Some t ->
        let by_tile : (int list, int list ref * int list ref) Hashtbl.t =
          Hashtbl.create 1024
        in
        let order = ref [] in
        Domain.iter
          (fun iv ->
            blocks_of iv;
            let tcoord = List.init d (fun k -> iv.(k) / t.(k)) in
            let bl, kl =
              match Hashtbl.find_opt by_tile tcoord with
              | Some cell -> cell
              | None ->
                  let cell = (ref [], ref []) in
                  Hashtbl.add by_tile tcoord cell;
                  order := tcoord :: !order;
                  cell
            in
            Array.iter (fun b -> bl := b :: !bl) scratch;
            kl := Iterset.encode encoder iv :: !kl)
          nest.Nest.domain;
        List.rev !order
        |> List.map (fun tc ->
               let bl, kl = Hashtbl.find by_tile tc in
               (List.sort_uniq compare !bl, !kl))
    | None ->
        let acc = ref [] in
        let unit_blocks = ref [] and unit_keys = ref [] and unit_n = ref 0 in
        let flush () =
          if !unit_n > 0 then begin
            acc := (List.sort_uniq compare !unit_blocks, !unit_keys) :: !acc;
            unit_blocks := [];
            unit_keys := [];
            unit_n := 0
          end
        in
        Domain.iter
          (fun iv ->
            blocks_of iv;
            Array.iter (fun b -> unit_blocks := b :: !unit_blocks) scratch;
            unit_keys := Iterset.encode encoder iv :: !unit_keys;
            incr unit_n;
            if !unit_n >= unit then flush ())
          nest.Nest.domain;
        flush ();
        List.rev !acc
  in
  (* Phase 2: group units by tag equality. *)
  let by_blocks : (int list, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let order : int list list ref = ref [] in
  List.iter
    (fun (blocks, keys) ->
      match Hashtbl.find_opt by_blocks blocks with
      | Some cell -> cell := keys @ !cell
      | None ->
          Hashtbl.add by_blocks blocks (ref keys);
          order := blocks :: !order)
    units;
  let n = Block_map.num_blocks bm in
  let groups =
    List.rev !order
    |> List.mapi (fun id blocks ->
           let keys = Array.of_list !(Hashtbl.find by_blocks blocks) in
           {
             Iter_group.id;
             tag = Bitset.of_list n blocks;
             iters = Iterset.of_keys encoder keys;
           })
    |> Array.of_list
  in
  { nest; block_map = bm; encoder; groups }

let group_capped ~max_groups nest bm =
  if max_groups < 1 then invalid_arg "Tags.group_capped";
  let d = Nest.depth nest in
  let trip = Nest.trip_count nest in
  let rec go edge =
    let g =
      if edge = 1 then group nest bm
      else group ~tile:(Array.make d edge) nest bm
    in
    if Array.length g.groups <= max_groups || edge > trip then g
    else go (edge * 2)
  in
  go 1

let total_iterations g =
  Array.fold_left (fun acc grp -> acc + Iter_group.size grp) 0 g.groups

let pp ppf g =
  Fmt.pf ppf "@[<v>grouping of %s: %d groups, %d iterations@,%a@]"
    g.nest.Nest.name (Array.length g.groups) (total_iterations g)
    Fmt.(array ~sep:cut Iter_group.pp)
    (Array.sub g.groups 0 (min 8 (Array.length g.groups)))
