open Ctam_poly

type t = { id : int; tag : Bitset.t; iters : Iterset.t }

let size g = Iterset.cardinal g.iters
let dot a b = Bitset.dot a.tag b.tag

let split_at n g =
  let left, right = Iterset.split_at n g.iters in
  ({ g with iters = left }, { g with iters = right })

let split g =
  let n = size g in
  if n < 2 then invalid_arg "Iter_group.split: too small";
  split_at (n / 2) g

let pp ppf g =
  Fmt.pf ppf "group#%d tag=%a |iters|=%d" g.id Bitset.pp g.tag (size g)
