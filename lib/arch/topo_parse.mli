(** Parsing cache topologies from a textual description.

    The format is an S-expression tree, one node per cache, cores as
    leaves (numbered automatically left-to-right, or explicitly):

    {v
    (machine "MyMachine" (clock 2.4) (mem 120)
      (cache "L3#0" (level 3) (size 12M) (assoc 16) (line 64) (latency 36)
        (cache "L2#0" (level 2) (size 3M) (assoc 12) (line 64) (latency 10)
          (core) (core))
        (cache "L2#1" (level 2) (size 3M) (assoc 12) (line 64) (latency 10)
          (cores 2))))
    v}

    Sizes accept [K]/[M]/[G] suffixes.  [(cores n)] expands to [n]
    automatically numbered cores.  Comments run from [;] to end of
    line. *)

exception Error of string

(** [parse text] builds a validated topology.
    @raise Error with a descriptive message on syntax or structure
    problems (including the validation errors of {!Topology.make}). *)
val parse : string -> Topology.t

(** [to_text t] renders a topology back into parsable form
    (round-trips through {!parse}). *)
val to_text : Topology.t -> string
