open Topology

let kb n = n * 1024
let mb n = n * 1024 * 1024

(* Divide a capacity by [scale], keeping at least one full set and
   set-multiple granularity. *)
let scaled ~scale ~assoc ~line size =
  let set = assoc * line in
  max set (size / scale / set * set)

let cache ~scale ~name ~level ~size ~assoc ~line ~latency children =
  Cache
    ( {
        cache_name = name;
        level;
        size_bytes = scaled ~scale ~assoc ~line size;
        assoc;
        line;
        latency;
        policy = Policy.Lru;
      },
      children )

(* A private-L1 core: the leaf pattern every machine shares. *)
let l1_core ~scale ~id ~latency =
  cache ~scale
    ~name:(Printf.sprintf "L1#%d" id)
    ~level:1 ~size:(kb 32) ~assoc:8 ~line:64 ~latency
    [ Core id ]

let harpertown ?(scale = 1) () =
  (* 2 sockets x 4 cores; each L2 (6MB) shared by a pair of cores. *)
  let pair i =
    cache ~scale
      ~name:(Printf.sprintf "L2#%d" i)
      ~level:2 ~size:(mb 6) ~assoc:24 ~line:64 ~latency:15
      [
        l1_core ~scale ~id:(2 * i) ~latency:3;
        l1_core ~scale ~id:((2 * i) + 1) ~latency:3;
      ]
  in
  (* No socket-level cache: each L2 is a root (4 last-level caches). *)
  make ~name:"Harpertown" ~clock_ghz:3.2 ~mem_latency:320
    (List.init 4 pair)

let nehalem ?(scale = 1) () =
  (* 2 sockets x 4 cores; private L2 (256KB); L3 (8MB) per socket. *)
  let core i =
    cache ~scale
      ~name:(Printf.sprintf "L2#%d" i)
      ~level:2 ~size:(kb 256) ~assoc:8 ~line:64 ~latency:10
      [ l1_core ~scale ~id:i ~latency:4 ]
  in
  let socket s =
    cache ~scale
      ~name:(Printf.sprintf "L3#%d" s)
      ~level:3 ~size:(mb 8) ~assoc:16 ~line:64 ~latency:35
      (List.init 4 (fun i -> core ((4 * s) + i)))
  in
  make ~name:"Nehalem" ~clock_ghz:2.9 ~mem_latency:174 [ socket 0; socket 1 ]

let dunnington_sockets ~scale ~num_sockets =
  let pair p =
    cache ~scale
      ~name:(Printf.sprintf "L2#%d" p)
      ~level:2 ~size:(mb 3) ~assoc:12 ~line:64 ~latency:10
      [
        l1_core ~scale ~id:(2 * p) ~latency:4;
        l1_core ~scale ~id:((2 * p) + 1) ~latency:4;
      ]
  in
  let socket s =
    cache ~scale
      ~name:(Printf.sprintf "L3#%d" s)
      ~level:3 ~size:(mb 12) ~assoc:16 ~line:64 ~latency:36
      (List.init 3 (fun p -> pair ((3 * s) + p)))
  in
  List.init num_sockets socket

let dunnington ?(scale = 1) () =
  make ~name:"Dunnington" ~clock_ghz:2.4 ~mem_latency:120
    (dunnington_sockets ~scale ~num_sockets:2)

let dunnington_scaled_cores ?(scale = 1) ~num_cores () =
  if num_cores <= 0 || num_cores mod 6 <> 0 then
    invalid_arg "Machines.dunnington_scaled_cores: need a multiple of 6";
  make
    ~name:(Printf.sprintf "Dunnington-%dc" num_cores)
    ~clock_ghz:2.4 ~mem_latency:120
    (dunnington_sockets ~scale ~num_sockets:(num_cores / 6))

let arch_i ?(scale = 1) () =
  (* Figure 12(a): 16 cores, 2 sockets; L2 per pair, L3 per quad,
     L4 per socket. *)
  let pair p =
    cache ~scale
      ~name:(Printf.sprintf "L2#%d" p)
      ~level:2 ~size:(kb 512) ~assoc:8 ~line:64 ~latency:10
      [
        l1_core ~scale ~id:(2 * p) ~latency:4;
        l1_core ~scale ~id:((2 * p) + 1) ~latency:4;
      ]
  in
  let quad q =
    cache ~scale
      ~name:(Printf.sprintf "L3#%d" q)
      ~level:3 ~size:(mb 4) ~assoc:16 ~line:64 ~latency:24
      [ pair (2 * q); pair ((2 * q) + 1) ]
  in
  let socket s =
    cache ~scale
      ~name:(Printf.sprintf "L4#%d" s)
      ~level:4 ~size:(mb 16) ~assoc:16 ~line:64 ~latency:40
      [ quad (2 * s); quad ((2 * s) + 1) ]
  in
  make ~name:"Arch-I" ~clock_ghz:2.4 ~mem_latency:150 [ socket 0; socket 1 ]

let arch_ii ?(scale = 1) () =
  (* Figure 12(b): 32 cores, 2 sockets; five on-chip levels. *)
  let pair p =
    cache ~scale
      ~name:(Printf.sprintf "L2#%d" p)
      ~level:2 ~size:(kb 256) ~assoc:8 ~line:64 ~latency:8
      [
        l1_core ~scale ~id:(2 * p) ~latency:4;
        l1_core ~scale ~id:((2 * p) + 1) ~latency:4;
      ]
  in
  let quad q =
    cache ~scale
      ~name:(Printf.sprintf "L3#%d" q)
      ~level:3 ~size:(mb 2) ~assoc:16 ~line:64 ~latency:20
      [ pair (2 * q); pair ((2 * q) + 1) ]
  in
  let oct o =
    cache ~scale
      ~name:(Printf.sprintf "L4#%d" o)
      ~level:4 ~size:(mb 8) ~assoc:16 ~line:64 ~latency:32
      [ quad (2 * o); quad ((2 * o) + 1) ]
  in
  let socket s =
    cache ~scale
      ~name:(Printf.sprintf "L5#%d" s)
      ~level:5 ~size:(mb 32) ~assoc:16 ~line:64 ~latency:48
      [ oct (2 * s); oct ((2 * s) + 1) ]
  in
  make ~name:"Arch-II" ~clock_ghz:2.4 ~mem_latency:160 [ socket 0; socket 1 ]

let halve_caches t =
  map_caches
    (fun p ->
      let set = p.assoc * p.line in
      { p with size_bytes = max set (p.size_bytes / 2 / set * set) })
    t

let commercial ?(scale = 1) () =
  [ harpertown ~scale (); nehalem ~scale (); dunnington ~scale () ]

let by_name ?(scale = 1) name =
  match String.lowercase_ascii name with
  | "harpertown" -> harpertown ~scale ()
  | "nehalem" -> nehalem ~scale ()
  | "dunnington" -> dunnington ~scale ()
  | "arch-i" | "archi" | "arch_i" -> arch_i ~scale ()
  | "arch-ii" | "archii" | "arch_ii" -> arch_ii ~scale ()
  | _ -> raise Not_found
