(** Replacement-policy identifiers.

    Part of the machine description ({!Topology.cache_params}), not of
    the simulator: this module only names, parses, renders and hashes
    policies.  The behavior (victim selection, state updates) is
    interpreted by [Cachesim.Setassoc]. *)

type t =
  | Lru          (** true LRU — the seed engine's policy, the default *)
  | Fifo         (** round-robin fill order; hits do not refresh *)
  | Plru         (** Tree-PLRU: one direction bit per tree node *)
  | Qlru         (** quad-age LRU: 2-bit ages, hit→0, fill→1, evict 3 *)
  | Mru          (** used-bit NRU: evict first way with its bit clear *)
  | Random of int  (** seeded xorshift victim (deterministic) *)

val default_random_seed : int

val to_string : t -> string

(** Inverse of {!to_string}; also accepts ["tree-plru"], ["rand"] and
    ["random:SEED"]. *)
val of_string : string -> (t, string) result

(** [(name, description)] pairs for every recognized policy — what
    [ctamap --help] and the daemon's [version] op list so clients can
    feature-detect. *)
val all : (string * string) list

(** Stable fingerprint for memo/cache keys; distinct policies (and
    distinct Random seeds) never alias. *)
val hash : t -> int

val equal : t -> t -> bool

(** Parse a per-level spec: ["plru"] (every level) or
    ["L1=plru,L2=qlru"] (bare level numbers also accepted).  Returns
    [(level, policy)] bindings in spec order; [None] means all
    levels.  Later bindings override earlier ones. *)
val parse_spec : string -> ((int option * t) list, string) result

val pp : t Fmt.t
