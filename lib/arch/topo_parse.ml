exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* --- minimal s-expression reader ------------------------------------- *)

type sexp = Atom of string | List of sexp list

let tokenize text =
  let toks = ref [] in
  let n = String.length text in
  let i = ref 0 in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := `Atom (Buffer.contents buf) :: !toks;
      Buffer.clear buf
    end
  in
  while !i < n do
    (match text.[!i] with
    | '(' ->
        flush ();
        toks := `L :: !toks
    | ')' ->
        flush ();
        toks := `R :: !toks
    | ';' ->
        flush ();
        while !i < n && text.[!i] <> '\n' do
          incr i
        done
    | '"' ->
        flush ();
        incr i;
        while !i < n && text.[!i] <> '"' do
          Buffer.add_char buf text.[!i];
          incr i
        done;
        if !i >= n then fail "unterminated string";
        (* A closed quote always yields an atom — [flush] alone would
           silently drop the empty string [""]. *)
        toks := `Atom (Buffer.contents buf) :: !toks;
        Buffer.clear buf
    | ' ' | '\t' | '\n' | '\r' -> flush ()
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !toks

let read_sexp text =
  let rec parse_one = function
    | `Atom a :: rest -> (Atom a, rest)
    | `L :: rest ->
        let items, rest = parse_list rest in
        (List items, rest)
    | `R :: _ -> fail "unexpected ')'"
    | [] -> fail "unexpected end of input"
  and parse_list toks =
    match toks with
    | `R :: rest -> ([], rest)
    | [] -> fail "missing ')'"
    | _ ->
        let item, rest = parse_one toks in
        let items, rest = parse_list rest in
        (item :: items, rest)
  in
  match parse_one (tokenize text) with
  | sexp, [] -> sexp
  | _, _ :: _ -> fail "trailing input after the machine form"

(* --- interpretation --------------------------------------------------- *)

let parse_size s =
  let n = String.length s in
  if n = 0 then fail "empty size";
  let mult, digits =
    match s.[n - 1] with
    | 'K' | 'k' -> (1024, String.sub s 0 (n - 1))
    | 'M' | 'm' -> (1024 * 1024, String.sub s 0 (n - 1))
    | 'G' | 'g' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
    | _ -> (1, s)
  in
  match int_of_string_opt digits with
  | Some v when v > 0 -> v * mult
  | _ -> fail "bad size '%s'" s

let as_int what = function
  | Atom a -> (
      match int_of_string_opt a with
      | Some v -> v
      | None -> fail "%s: expected an integer, got '%s'" what a)
  | List _ -> fail "%s: expected an integer" what

let as_float what = function
  | Atom a -> (
      match float_of_string_opt a with
      | Some v -> v
      | None -> fail "%s: expected a number, got '%s'" what a)
  | List _ -> fail "%s: expected a number" what

let field name items =
  List.find_map
    (function
      | List (Atom key :: value) when key = name -> Some value
      | _ -> None)
    items

let field1 name items =
  match field name items with
  | Some [ v ] -> Some v
  | Some _ -> fail "(%s ...) takes exactly one value" name
  | None -> None

let require1 name items =
  match field1 name items with
  | Some v -> v
  | None -> fail "missing (%s ...)" name

let parse text =
  let next_core = ref 0 in
  let fresh_core () =
    let c = !next_core in
    incr next_core;
    Topology.Core c
  in
  let rec parse_node = function
    | List (Atom "core" :: rest) -> (
        match rest with
        | [] -> [ fresh_core () ]
        | [ Atom id ] -> (
            match int_of_string_opt id with
            | Some c ->
                next_core := max !next_core (c + 1);
                [ Topology.Core c ]
            | None -> fail "(core ...): bad id '%s'" id)
        | _ -> fail "(core) or (core ID)")
    | List (Atom "cores" :: rest) -> (
        match rest with
        | [ Atom n ] -> (
            match int_of_string_opt n with
            | Some n when n > 0 -> List.init n (fun _ -> fresh_core ())
            | _ -> fail "(cores N): bad count '%s'" n)
        | _ -> fail "(cores N)")
    | List (Atom "cache" :: Atom name :: rest) ->
        let level = as_int "level" (require1 "level" rest) in
        let size_bytes =
          match require1 "size" rest with
          | Atom s -> parse_size s
          | List _ -> fail "(size ...) expects an atom"
        in
        let assoc = as_int "assoc" (require1 "assoc" rest) in
        let line = as_int "line" (require1 "line" rest) in
        let latency = as_int "latency" (require1 "latency" rest) in
        let policy =
          match field1 "policy" rest with
          | None -> Policy.Lru
          | Some (Atom s) -> (
              match Policy.of_string s with
              | Ok p -> p
              | Error e -> fail "cache %s: %s" name e)
          | Some (List _) -> fail "(policy ...) expects an atom"
        in
        let children =
          List.concat_map parse_node
            (List.filter
               (function
                 | List
                     (Atom
                        ("level" | "size" | "assoc" | "line" | "latency"
                        | "policy")
                     :: _) ->
                     false
                 | _ -> true)
               rest)
        in
        if children = [] then fail "cache %s has no children" name;
        [
          Topology.Cache
            ( {
                Topology.cache_name = name;
                level;
                size_bytes;
                assoc;
                line;
                latency;
                policy;
              },
              children );
        ]
    | List (Atom kw :: _) -> fail "unknown form '%s'" kw
    | Atom a -> fail "unexpected atom '%s'" a
    | List (List _ :: _) | List [] -> fail "malformed form"
  in
  match read_sexp text with
  | List (Atom "machine" :: Atom name :: rest) -> (
      let clock = as_float "clock" (require1 "clock" rest) in
      let mem = as_int "mem" (require1 "mem" rest) in
      let roots =
        List.concat_map parse_node
          (List.filter
             (function
               | List (Atom ("clock" | "mem") :: _) -> false
               | _ -> true)
             rest)
      in
      if roots = [] then fail "machine has no caches";
      try Topology.make ~name ~clock_ghz:clock ~mem_latency:mem roots
      with Invalid_argument msg -> fail "%s" msg)
  | _ -> fail "expected (machine \"name\" (clock ...) (mem ...) <caches>)"

let to_text t =
  let buf = Buffer.create 512 in
  let rec node indent = function
    | Topology.Core c ->
        Buffer.add_string buf
          (Printf.sprintf "%s(core %d)\n" (String.make indent ' ') c)
    | Topology.Cache (p, children) ->
        (* (policy ...) is emitted only when it deviates from the LRU
           default, so pre-policy files round-trip byte-identically. *)
        Buffer.add_string buf
          (Printf.sprintf
             "%s(cache \"%s\" (level %d) (size %d) (assoc %d) (line %d) (latency %d)%s\n"
             (String.make indent ' ')
             p.Topology.cache_name p.Topology.level p.Topology.size_bytes
             p.Topology.assoc p.Topology.line p.Topology.latency
             (if Policy.equal p.Topology.policy Policy.Lru then ""
              else
                Printf.sprintf " (policy %s)"
                  (Policy.to_string p.Topology.policy)));
        List.iter (node (indent + 2)) children;
        Buffer.add_string buf (Printf.sprintf "%s)\n" (String.make indent ' '))
  in
  Buffer.add_string buf
    (Printf.sprintf "(machine \"%s\" (clock %g) (mem %d)\n" t.Topology.name
       t.Topology.clock_ghz t.Topology.mem_latency);
  List.iter (node 2) t.Topology.roots;
  Buffer.add_string buf ")\n";
  Buffer.contents buf
