(** Machine presets: the three Intel machines of Table 1 / Figure 1 and
    the deeper simulated hierarchies Arch-I / Arch-II of Figure 12.

    Every preset takes [?scale] (default 1): cache capacities are
    divided by [scale] (floored at one set).  The experiments run at
    [scale = 16] with proportionally smaller working sets so that a
    software simulator can execute the full suite; the ratio
    data-size : cache-size, which drives all the paper's effects, is
    preserved.  [scale] never changes topology, associativity, line
    size or latencies. *)

val harpertown : ?scale:int -> unit -> Topology.t
val nehalem : ?scale:int -> unit -> Topology.t
val dunnington : ?scale:int -> unit -> Topology.t

(** Figure 12(a): 16 cores, four on-chip levels (L1/L2/L3/L4). *)
val arch_i : ?scale:int -> unit -> Topology.t

(** Figure 12(b): 32 cores, five on-chip levels. *)
val arch_ii : ?scale:int -> unit -> Topology.t

(** [dunnington_scaled_cores ?scale ~num_cores ()] extends Dunnington
    with extra 6-core sockets, as in the Figure 17 core-scaling study
    (12, 18, 24 cores).
    @raise Invalid_argument unless [num_cores] is a positive multiple
    of 6. *)
val dunnington_scaled_cores : ?scale:int -> num_cores:int -> unit -> Topology.t

(** [halve_caches t] cuts every cache capacity in half (Figure 19). *)
val halve_caches : Topology.t -> Topology.t

(** The three commercial machines, in paper order. *)
val commercial : ?scale:int -> unit -> Topology.t list

(** Find a preset by name ("harpertown", "nehalem", "dunnington",
    "arch-i", "arch-ii"), case-insensitive.
    @raise Not_found for unknown names. *)
val by_name : ?scale:int -> string -> Topology.t
