(** On-chip cache topologies: the trees of Figure 1 / Figure 12.

    A topology is a forest of cache trees (one root per last-level
    cache, i.e. per socket); the paper treats off-chip memory as the
    conceptual root when there is more than one last-level cache.
    Leaves are cores, numbered left-to-right from 0. *)

type cache_params = {
  cache_name : string;   (** e.g. "L2#1" — unique within a topology *)
  level : int;           (** 1 = closest to the core *)
  size_bytes : int;
  assoc : int;
  line : int;            (** line size in bytes *)
  latency : int;         (** access latency in cycles *)
  policy : Policy.t;     (** replacement policy ({!Policy.Lru} default) *)
}

type tree =
  | Cache of cache_params * tree list
  | Core of int

type t = private {
  name : string;
  clock_ghz : float;
  mem_latency : int;     (** off-chip access latency in cycles *)
  roots : tree list;     (** one per socket / last-level cache *)
  num_cores : int;
}

(** [make ~name ~clock_ghz ~mem_latency roots] validates that cores are
    numbered [0..n-1] left-to-right with no gaps, that cache names are
    unique, levels decrease toward the leaves, and every cache can hold
    at least one set ([size >= assoc * line]).
    @raise Invalid_argument otherwise. *)
val make : name:string -> clock_ghz:float -> mem_latency:int -> tree list -> t

(** All cache parameter records, pre-order, roots left to right. *)
val caches : t -> cache_params list

(** Distinct cache levels present, ascending (e.g. [[1;2;3]]). *)
val levels : t -> int list

(** [path_of_core t c] is the chain of caches from the core's L1 up to
    its last-level cache (ascending level).
    @raise Invalid_argument if [c] is out of range. *)
val path_of_core : t -> int -> cache_params list

(** [cores_under tree] lists the core ids below a tree node. *)
val cores_under : tree -> int list

(** [affinity_level t c1 c2] is the smallest cache level at which the
    two cores share a cache, or [None] if they only share memory
    (different sockets).  Two cores "have affinity" (paper §2) iff this
    is [Some _]. *)
val affinity_level : t -> int -> int -> int option

(** First (closest-to-core) level that is shared by more than one core
    anywhere in the topology; [None] if all caches are private. *)
val first_shared_level : t -> int option

(** Groups of cores under each cache of level [l], left to right. *)
val sharing_domains : t -> int -> int list list

(** Total capacity in bytes of all caches at level [l]. *)
val level_capacity : t -> int -> int

(** Transform every cache's parameters (used to scale capacities). *)
val map_caches : (cache_params -> cache_params) -> t -> t

(** Apply parsed [--policy] bindings ({!Policy.parse_spec}): [None]
    covers every level, [Some l] one level; the last covering binding
    wins. *)
val with_policy_spec : (int option * Policy.t) list -> t -> t

(** Drop all cache levels above [l] (keep levels [<= l]), re-rooting the
    forest.  Used for the "L1+L2" / "L1+L2+L3" versions of Figure 20. *)
val truncate_levels : int -> t -> t

val pp : t Fmt.t
