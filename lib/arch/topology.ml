type cache_params = {
  cache_name : string;
  level : int;
  size_bytes : int;
  assoc : int;
  line : int;
  latency : int;
  policy : Policy.t;
}

type tree = Cache of cache_params * tree list | Core of int

type t = {
  name : string;
  clock_ghz : float;
  mem_latency : int;
  roots : tree list;
  num_cores : int;
}

let rec cores_under = function
  | Core c -> [ c ]
  | Cache (_, children) -> List.concat_map cores_under children

let rec caches_of_tree = function
  | Core _ -> []
  | Cache (p, children) -> p :: List.concat_map caches_of_tree children

let make ~name ~clock_ghz ~mem_latency roots =
  if roots = [] then invalid_arg "Topology.make: no roots";
  let cores = List.concat_map cores_under roots in
  let n = List.length cores in
  if List.sort compare cores <> List.init n Fun.id then
    invalid_arg "Topology.make: cores must be 0..n-1";
  if cores <> List.sort compare cores then
    invalid_arg "Topology.make: cores must appear left-to-right";
  let all_caches = List.concat_map caches_of_tree roots in
  let names = List.map (fun p -> p.cache_name) all_caches in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Topology.make: duplicate cache names";
  List.iter
    (fun p ->
      if p.size_bytes < p.assoc * p.line then
        invalid_arg
          (Printf.sprintf "Topology.make: cache %s smaller than one set"
             p.cache_name);
      if p.size_bytes mod (p.assoc * p.line) <> 0 then
        invalid_arg
          (Printf.sprintf "Topology.make: cache %s size not a multiple of set"
             p.cache_name);
      if p.latency <= 0 || p.level <= 0 then
        invalid_arg "Topology.make: bad latency/level")
    all_caches;
  (* Levels must strictly decrease from parent to child. *)
  let rec check_levels parent_level = function
    | Core _ -> ()
    | Cache (p, children) ->
        (match parent_level with
        | Some pl when p.level >= pl ->
            invalid_arg "Topology.make: child level must be below parent"
        | _ -> ());
        List.iter (check_levels (Some p.level)) children
  in
  List.iter (check_levels None) roots;
  (* Every core must sit under a level-1 cache. *)
  let rec check_leaf_under_l1 = function
    | Core _ -> invalid_arg "Topology.make: core without an L1 cache"
    | Cache (p, children) ->
        List.iter
          (function
            | Core _ when p.level <> 1 ->
                invalid_arg "Topology.make: core not under a level-1 cache"
            | Core _ -> ()
            | Cache _ as sub -> check_leaf_under_l1 sub)
          children
  in
  List.iter check_leaf_under_l1 roots;
  { name; clock_ghz; mem_latency; roots; num_cores = n }

let caches t = List.concat_map caches_of_tree t.roots

let levels t =
  List.sort_uniq compare (List.map (fun p -> p.level) (caches t))

let path_of_core t c =
  if c < 0 || c >= t.num_cores then invalid_arg "Topology.path_of_core";
  let rec find path = function
    | Core c' -> if c' = c then Some path else None
    | Cache (p, children) ->
        List.fold_left
          (fun acc child ->
            match acc with Some _ -> acc | None -> find (p :: path) child)
          None children
  in
  match
    List.fold_left
      (fun acc root -> match acc with Some _ -> acc | None -> find [] root)
      None t.roots
  with
  | Some path -> path (* innermost first: level ascending *)
  | None -> invalid_arg "Topology.path_of_core: core not found"

let affinity_level t c1 c2 =
  if c1 = c2 then
    match path_of_core t c1 with p :: _ -> Some p.level | [] -> None
  else begin
    let p1 = path_of_core t c1 and p2 = path_of_core t c2 in
    let shared =
      List.filter
        (fun a -> List.exists (fun b -> b.cache_name = a.cache_name) p2)
        p1
    in
    match shared with [] -> None | p :: _ -> Some p.level
  end

let first_shared_level t =
  let rec collect acc = function
    | Core _ -> acc
    | Cache (p, children) ->
        let acc =
          if List.length (List.concat_map cores_under children) > 1 then
            p.level :: acc
          else acc
        in
        List.fold_left collect acc children
  in
  match List.sort compare (List.fold_left collect [] t.roots) with
  | [] -> None
  | l :: _ -> Some l

let sharing_domains t l =
  let rec collect acc = function
    | Core _ -> acc
    | Cache (p, children) ->
        let acc =
          if p.level = l then cores_under (Cache (p, children)) :: acc
          else acc
        in
        List.fold_left collect acc children
  in
  List.rev (List.fold_left collect [] t.roots)

let level_capacity t l =
  List.fold_left
    (fun acc p -> if p.level = l then acc + p.size_bytes else acc)
    0 (caches t)

let map_caches f t =
  let rec go = function
    | Core c -> Core c
    | Cache (p, children) -> Cache (f p, List.map go children)
  in
  make ~name:t.name ~clock_ghz:t.clock_ghz ~mem_latency:t.mem_latency
    (List.map go t.roots)

(* Apply parsed --policy bindings (see Policy.parse_spec): [None]
   covers every level, [Some l] one level; the last covering binding
   wins, so "plru,L2=qlru" means PLRU everywhere except L2. *)
let with_policy_spec bindings t =
  map_caches
    (fun p ->
      let policy =
        List.fold_left
          (fun acc (level, pol) ->
            match level with
            | None -> pol
            | Some l when l = p.level -> pol
            | Some _ -> acc)
          p.policy bindings
      in
      { p with policy })
    t

let truncate_levels l t =
  let rec prune = function
    | Core c -> [ Core c ]
    | Cache (p, children) ->
        let children' = List.concat_map prune children in
        if p.level <= l then [ Cache (p, children') ] else children'
  in
  make ~name:(Printf.sprintf "%s(L<=%d)" t.name l) ~clock_ghz:t.clock_ghz
    ~mem_latency:t.mem_latency
    (List.concat_map prune t.roots)

let pp ppf t =
  let rec pp_tree indent ppf = function
    | Core c -> Fmt.pf ppf "%score %d@," (String.make indent ' ') c
    | Cache (p, children) ->
        Fmt.pf ppf "%s%s: L%d %dKB %d-way %dB-line %dcy%s@,"
          (String.make indent ' ') p.cache_name p.level (p.size_bytes / 1024)
          p.assoc p.line p.latency
          (if Policy.equal p.policy Policy.Lru then ""
           else " " ^ Policy.to_string p.policy);
        List.iter (pp_tree (indent + 2) ppf) children
  in
  Fmt.pf ppf "@[<v>%s (%d cores, %.1f GHz, mem %d cy)@," t.name t.num_cores
    t.clock_ghz t.mem_latency;
  List.iter (pp_tree 2 ppf) t.roots;
  Fmt.pf ppf "@]"
