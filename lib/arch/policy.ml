(* Replacement-policy identifiers: pure machine-description data, so
   topology files and CLI flags can name a policy without depending on
   the simulator.  The behavioral implementations live in
   Cachesim.Setassoc; this module only names, parses, renders and
   hashes them. *)

type t =
  | Lru
  | Fifo
  | Plru
  | Qlru
  | Mru
  | Random of int  (* seed *)

let default_random_seed = 1

let to_string = function
  | Lru -> "lru"
  | Fifo -> "fifo"
  | Plru -> "plru"
  | Qlru -> "qlru"
  | Mru -> "mru"
  | Random s -> Printf.sprintf "random:%d" s

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "lru" -> Ok Lru
  | "fifo" -> Ok Fifo
  | "plru" | "tree-plru" | "treeplru" -> Ok Plru
  | "qlru" -> Ok Qlru
  | "mru" -> Ok Mru
  | "random" | "rand" -> Ok (Random default_random_seed)
  | low -> (
      match String.index_opt low ':' with
      | Some i
        when String.sub low 0 i = "random" || String.sub low 0 i = "rand" -> (
          let seed = String.sub low (i + 1) (String.length low - i - 1) in
          match int_of_string_opt seed with
          | Some n -> Ok (Random n)
          | None ->
              Error (Printf.sprintf "bad random seed '%s' (want random:N)" seed))
      | _ ->
          Error
            (Printf.sprintf
               "unknown replacement policy '%s' (known: %s)" s
               "lru, fifo, plru, qlru, mru, random[:SEED]"))

(* Names clients can feature-detect against (ctamap --help, the
   daemon's version op). *)
let all =
  [
    ("lru", "true least-recently-used (the seed engine's policy)");
    ("fifo", "round-robin fill order; hits do not refresh");
    ("plru", "Tree-PLRU: one direction bit per tree node");
    ("qlru", "quad-age LRU: 2-bit ages, hit->0, fill->1, evict age 3");
    ("mru", "used-bit NRU: evict the first way without its bit set");
    ("random[:SEED]", "seeded xorshift victim (deterministic)");
  ]

(* A small stable fingerprint for memo/cache keys.  Distinct
   constructors map to distinct odd tags; the Random seed perturbs the
   tag so two seeds never alias. *)
let hash = function
  | Lru -> 0x11
  | Fifo -> 0x23
  | Plru -> 0x35
  | Qlru -> 0x47
  | Mru -> 0x59
  | Random s -> (0x6b + (s * 0x9e3779b1)) land max_int

let equal (a : t) (b : t) = a = b

(* "--policy plru" (every level) or "--policy L1=plru,L2=qlru" (also
   accepts bare level numbers, "1=plru").  Later bindings override
   earlier ones when they cover the same level. *)
let parse_spec spec =
  let parse_level s =
    let s = String.trim s in
    let digits =
      if String.length s >= 2 && (s.[0] = 'l' || s.[0] = 'L') then
        String.sub s 1 (String.length s - 1)
      else s
    in
    match int_of_string_opt digits with
    | Some l when l >= 1 -> Ok l
    | _ -> Error (Printf.sprintf "bad cache level '%s' (want L1, L2, ...)" s)
  in
  let parse_binding part =
    match String.index_opt part '=' with
    | None -> (
        match of_string part with
        | Ok p -> Ok (None, p)
        | Error e -> Error e)
    | Some i -> (
        let lhs = String.sub part 0 i in
        let rhs = String.sub part (i + 1) (String.length part - i - 1) in
        match parse_level lhs with
        | Error e -> Error e
        | Ok l -> (
            match of_string rhs with
            | Ok p -> Ok (Some l, p)
            | Error e -> Error e))
  in
  let parts =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "empty policy spec"
  else
    List.fold_left
      (fun acc part ->
        match acc with
        | Error _ as e -> e
        | Ok bindings -> (
            match parse_binding part with
            | Ok b -> Ok (bindings @ [ b ])
            | Error e -> Error e))
      (Ok []) parts

let pp ppf p = Fmt.string ppf (to_string p)
