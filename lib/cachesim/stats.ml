type level_stats = { level : int; hits : int; misses : int }

type t = {
  per_level : level_stats list;
  mem_accesses : int;
  total_accesses : int;
  cycles : int;
  core_cycles : int array;
  barriers : int;
}

let miss_rate ls =
  let total = ls.hits + ls.misses in
  if total = 0 then 0. else float_of_int ls.misses /. float_of_int total

let level t l = List.find (fun ls -> ls.level = l) t.per_level

let misses_at t l =
  match List.find_opt (fun ls -> ls.level = l) t.per_level with
  | Some ls -> ls.misses
  | None -> 0

let pp ppf t =
  Fmt.pf ppf "@[<v>cycles: %d  accesses: %d  mem: %d  barriers: %d@,"
    t.cycles t.total_accesses t.mem_accesses t.barriers;
  List.iter
    (fun ls ->
      Fmt.pf ppf "L%d: %d hits, %d misses (%.2f%% miss)@," ls.level ls.hits
        ls.misses
        (100. *. miss_rate ls))
    t.per_level;
  Fmt.pf ppf "@]"
