type level_stats = { level : int; hits : int; misses : int }

type t = {
  per_level : level_stats list;
  mem_accesses : int;
  total_accesses : int;
  cycles : int;
  core_cycles : int array;
  barriers : int;
}

let miss_rate ls =
  let total = ls.hits + ls.misses in
  if total = 0 then 0. else float_of_int ls.misses /. float_of_int total

let level t l = List.find (fun ls -> ls.level = l) t.per_level

let misses_at t l =
  match List.find_opt (fun ls -> ls.level = l) t.per_level with
  | Some ls -> ls.misses
  | None -> 0

let mem_rate t =
  if t.total_accesses = 0 then 0.
  else float_of_int t.mem_accesses /. float_of_int t.total_accesses

(* Relative-error comparison for the set-sampling gates: [a] is the
   exact run, [b] the approximation.  Structural counters (barriers,
   total accesses, level list) must match exactly — sampling
   extrapolation may perturb magnitudes but never the run's shape. *)
let rel_errors ~exact:a ~approx:b =
  let err name va vb =
    let d = abs (vb - va) in
    (name, float_of_int d /. float_of_int (max 1 (abs va)))
  in
  let per_level =
    if
      List.length a.per_level = List.length b.per_level
      && List.for_all2 (fun x y -> x.level = y.level) a.per_level b.per_level
    then
      List.concat_map
        (fun (x, y) ->
          [
            err (Printf.sprintf "L%d_hits" x.level) x.hits y.hits;
            err (Printf.sprintf "L%d_misses" x.level) x.misses y.misses;
          ])
        (List.combine a.per_level b.per_level)
    else [ ("levels", infinity) ]
  in
  let structural name va vb =
    (name, if va = vb then 0. else infinity)
  in
  [
    err "cycles" a.cycles b.cycles;
    err "mem_accesses" a.mem_accesses b.mem_accesses;
    structural "total_accesses" a.total_accesses b.total_accesses;
    structural "barriers" a.barriers b.barriers;
  ]
  @ per_level

let approx_equal ?(rel_tol = 0.05) a b =
  List.for_all
    (fun (_, e) -> e <= rel_tol)
    (rel_errors ~exact:a ~approx:b)

let pp ppf t =
  Fmt.pf ppf
    "@[<v>cycles: %d  accesses: %d  mem: %d (%.2f%% of accesses)  barriers: \
     %d@,"
    t.cycles t.total_accesses t.mem_accesses
    (100. *. mem_rate t)
    t.barriers;
  List.iter
    (fun ls ->
      Fmt.pf ppf "L%d: %d hits, %d misses (%.2f%% miss rate)@," ls.level
        ls.hits ls.misses
        (100. *. miss_rate ls))
    t.per_level;
  Fmt.pf ppf "@]"

let level_to_json ls =
  Ctam_util.Json.Obj
    [
      ("level", Ctam_util.Json.Int ls.level);
      ("hits", Ctam_util.Json.Int ls.hits);
      ("misses", Ctam_util.Json.Int ls.misses);
      ("miss_rate", Ctam_util.Json.Float (miss_rate ls));
    ]

let to_json t =
  Ctam_util.Json.Obj
    [
      ("cycles", Ctam_util.Json.Int t.cycles);
      ("total_accesses", Ctam_util.Json.Int t.total_accesses);
      ("mem_accesses", Ctam_util.Json.Int t.mem_accesses);
      ("barriers", Ctam_util.Json.Int t.barriers);
      ( "core_cycles",
        Ctam_util.Json.List
          (Array.to_list (Array.map (fun c -> Ctam_util.Json.Int c) t.core_cycles))
      );
      ("per_level", Ctam_util.Json.List (List.map level_to_json t.per_level));
    ]

let of_json j =
  let open Ctam_util.Json in
  let int name = to_int (member_exn name j) in
  let level_of_json lj =
    {
      level = to_int (member_exn "level" lj);
      hits = to_int (member_exn "hits" lj);
      misses = to_int (member_exn "misses" lj);
    }
  in
  {
    cycles = int "cycles";
    total_accesses = int "total_accesses";
    mem_accesses = int "mem_accesses";
    barriers = int "barriers";
    core_cycles =
      Array.of_list (List.map to_int (to_list (member_exn "core_cycles" j)));
    per_level = List.map level_of_json (to_list (member_exn "per_level" j));
  }
