open Ctam_arch

type instance = {
  params : Topology.cache_params;
  cache : Setassoc.t;
}

type t = {
  topo : Topology.t;
  instances : instance array;
  (* paths.(core) = indices into [instances], L1 first (ascending). *)
  paths : int array array;
  coherence : bool;
  line : int;
  mutable mem_accesses : int;
  mutable probe : Probe.t;
  mutable observed : bool;  (* probe != Probe.null, cached for the hot path *)
}

let create ?(coherence = true) ?(probe = Probe.null) topo =
  let params = Topology.caches topo in
  let line =
    match params with
    | [] -> invalid_arg "Hierarchy.create: no caches"
    | p :: rest ->
        List.iter
          (fun q ->
            if q.Topology.line <> p.Topology.line then
              invalid_arg "Hierarchy.create: mixed line sizes")
          rest;
        p.Topology.line
  in
  let instances =
    Array.of_list
      (List.map
         (fun (p : Topology.cache_params) ->
           let sets = p.size_bytes / (p.assoc * p.line) in
           { params = p; cache = Setassoc.create ~sets ~assoc:p.assoc })
         params)
  in
  let index_of name =
    let rec go i =
      if i >= Array.length instances then
        invalid_arg "Hierarchy.create: cache not found"
      else if instances.(i).params.cache_name = name then i
      else go (i + 1)
    in
    go 0
  in
  let paths =
    Array.init topo.Topology.num_cores (fun c ->
        Topology.path_of_core topo c
        |> List.map (fun (p : Topology.cache_params) -> index_of p.cache_name)
        |> Array.of_list)
  in
  {
    topo;
    instances;
    paths;
    coherence;
    line;
    mem_accesses = 0;
    probe;
    observed = not (Probe.is_null probe);
  }

let topology t = t.topo
let probe t = t.probe

let set_probe t p =
  t.probe <- p;
  t.observed <- not (Probe.is_null p)

let access t ~core ~addr ~write =
  if core < 0 || core >= Array.length t.paths then
    invalid_arg "Hierarchy.access: core out of range";
  let line = addr / t.line in
  let path = t.paths.(core) in
  let n = Array.length path in
  let observed = t.observed in
  (* Probe upward until a hit; accumulate probe latencies. *)
  let latency = ref 0 in
  let hit_at = ref (-1) in
  let k = ref 0 in
  while !hit_at < 0 && !k < n do
    let inst = t.instances.(path.(!k)) in
    latency := !latency + inst.params.latency;
    let hit = Setassoc.access inst.cache line in
    if observed then
      t.probe.Probe.on_level ~core ~level:inst.params.level
        ~set:(Setassoc.set_of_line inst.cache line)
        ~line ~hit;
    if hit then hit_at := !k else incr k
  done;
  if !hit_at < 0 then begin
    t.mem_accesses <- t.mem_accesses + 1;
    latency := !latency + t.topo.Topology.mem_latency;
    if observed then t.probe.Probe.on_mem ~core ~line
  end;
  (* Inclusive fill: bring the line into every cache on the path below
     the hit point (all of them on a memory miss). *)
  let fill_upto = if !hit_at < 0 then n - 1 else !hit_at - 1 in
  for j = 0 to fill_upto do
    let inst = t.instances.(path.(j)) in
    match Setassoc.insert inst.cache line with
    | None -> ()
    | Some victim ->
        if observed then
          t.probe.Probe.on_evict ~core ~level:inst.params.level ~line:victim
  done;
  (* Write-invalidate: peers not on this core's path lose the line. *)
  if write && t.coherence then begin
    let on_path i = Array.exists (fun j -> j = i) path in
    Array.iteri
      (fun i inst ->
        if not (on_path i) then
          if Setassoc.invalidate inst.cache line && observed then
            t.probe.Probe.on_invalidate ~core ~level:inst.params.level ~line)
      t.instances
  end;
  !latency

let hit_latency t ~core ~level =
  let path = t.paths.(core) in
  let latency = ref 0 in
  let found = ref false in
  Array.iter
    (fun i ->
      let inst = t.instances.(i) in
      if not !found then begin
        latency := !latency + inst.params.latency;
        if inst.params.level = level then found := true
      end)
    path;
  if !found then Some !latency else None

let miss_latency t ~core =
  let path = t.paths.(core) in
  Array.fold_left
    (fun acc i -> acc + t.instances.(i).params.latency)
    t.topo.Topology.mem_latency path

let level_stats t =
  let by_level = Hashtbl.create 8 in
  Array.iter
    (fun inst ->
      let l = inst.params.level in
      let h, m =
        match Hashtbl.find_opt by_level l with Some x -> x | None -> (0, 0)
      in
      Hashtbl.replace by_level l
        (h + Setassoc.hits inst.cache, m + Setassoc.misses inst.cache))
    t.instances;
  Hashtbl.fold
    (fun level (hits, misses) acc -> { Stats.level; hits; misses } :: acc)
    by_level []
  |> List.sort (fun a b -> compare a.Stats.level b.Stats.level)

let mem_accesses t = t.mem_accesses

let sets_at t ~level =
  Array.fold_left
    (fun acc inst ->
      if inst.params.level = level then max acc (Setassoc.sets inst.cache)
      else acc)
    0 t.instances

let clear t =
  Array.iter (fun inst -> Setassoc.clear inst.cache) t.instances;
  t.mem_accesses <- 0

let line_size t = t.line
