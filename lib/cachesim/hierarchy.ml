open Ctam_arch

type instance = {
  params : Topology.cache_params;
  cache : Setassoc.t;
}

type t = {
  topo : Topology.t;
  instances : instance array;
  (* paths.(core) = indices into [instances], L1 first (ascending). *)
  paths : int array array;
  (* Flattened per-core path data, parallel to [paths.(core)]: the hot
     access loop reads these int/cache arrays instead of chasing
     [instance] records. *)
  path_caches : Setassoc.t array array;
  path_latencies : int array array;
  path_levels : int array array;
  (* Per-core instances NOT on the core's path, ascending instance
     index (the order the seed's whole-array sweep visited them):
     write-invalidate touches exactly these. *)
  peer_caches : Setassoc.t array array;
  peer_levels : int array array;
  coherence : bool;
  line : int;
  line_shift : int;  (* log2 line when line is a power of two, -1 otherwise *)
  levels : int array;  (* distinct cache levels, ascending *)
  level_index : int array;  (* instance index -> index into [levels] *)
  (* Set sampling (PR 7): simulate only lines with
     [line mod sample_factor = 0] and extrapolate.  The factor is a
     power of two dividing every cache's set count, so the sampled
     sets receive exactly the line population they would in an exact
     run (set = line mod sets maps sampled lines onto the sets
     congruent to 0 mod factor, and onto nothing else). *)
  sample_factor : int;
  config_hash : int;  (* topology+options fingerprint for the phase memo *)
  mutable mem_accesses : int;
  mutable probe : Probe.t;
  mutable observed : bool;  (* probe != Probe.null, cached for the hot path *)
}

let log2_exact n =
  let rec go s = if 1 lsl s = n then s else go (s + 1) in
  if n > 0 && n land (n - 1) = 0 then go 0 else -1

let create ?(coherence = true) ?(probe = Probe.null) ?(sample_sets = 1) topo =
  let params = Topology.caches topo in
  let line =
    match params with
    | [] -> invalid_arg "Hierarchy.create: no caches"
    | p :: rest ->
        List.iter
          (fun q ->
            if q.Topology.line <> p.Topology.line then
              invalid_arg "Hierarchy.create: mixed line sizes")
          rest;
        p.Topology.line
  in
  let instances =
    Array.of_list
      (List.map
         (fun (p : Topology.cache_params) ->
           let sets = p.size_bytes / (p.assoc * p.line) in
           {
             params = p;
             cache = Setassoc.create ~policy:p.policy ~sets ~assoc:p.assoc ();
           })
         params)
  in
  let index_of name =
    let rec go i =
      if i >= Array.length instances then
        invalid_arg "Hierarchy.create: cache not found"
      else if instances.(i).params.cache_name = name then i
      else go (i + 1)
    in
    go 0
  in
  let paths =
    Array.init topo.Topology.num_cores (fun c ->
        Topology.path_of_core topo c
        |> List.map (fun (p : Topology.cache_params) -> index_of p.cache_name)
        |> Array.of_list)
  in
  let path_caches =
    Array.map (Array.map (fun i -> instances.(i).cache)) paths
  in
  let path_latencies =
    Array.map (Array.map (fun i -> instances.(i).params.latency)) paths
  in
  let path_levels =
    Array.map (Array.map (fun i -> instances.(i).params.level)) paths
  in
  let peers_of path =
    Array.init (Array.length instances) Fun.id
    |> Array.to_list
    |> List.filter (fun i -> not (Array.exists (fun j -> j = i) path))
    |> Array.of_list
  in
  let peer_caches =
    Array.map (fun p -> Array.map (fun i -> instances.(i).cache) (peers_of p)) paths
  in
  let peer_levels =
    Array.map
      (fun p -> Array.map (fun i -> instances.(i).params.level) (peers_of p))
      paths
  in
  let levels =
    Array.of_list (List.sort_uniq compare (List.map (fun p -> p.Topology.level) params))
  in
  let level_index =
    Array.map
      (fun inst ->
        let rec find i =
          if levels.(i) = inst.params.level then i else find (i + 1)
        in
        find 0)
      instances
  in
  if sample_sets < 1 || sample_sets land (sample_sets - 1) <> 0 then
    invalid_arg "Hierarchy.create: sample_sets must be a positive power of two";
  if sample_sets > 1 then
    Array.iter
      (fun inst ->
        let sets = Setassoc.sets inst.cache in
        if sets mod sample_sets <> 0 then
          invalid_arg
            (Printf.sprintf
               "Hierarchy.create: sample_sets %d does not divide the %d sets \
                of %s (pick a power of two dividing every cache's set count)"
               sample_sets sets inst.params.cache_name))
      instances;
  let config_hash =
    let h =
      Array.fold_left
        (fun h inst ->
          let p = inst.params in
          let h = Memo.mix h p.Topology.level in
          let h = Memo.mix h (Setassoc.sets inst.cache) in
          let h = Memo.mix h p.Topology.assoc in
          let h = Memo.mix h (Policy.hash p.Topology.policy) in
          Memo.mix h p.Topology.latency)
        (Memo.mix Memo.seed topo.Topology.num_cores)
        instances
    in
    let h = Array.fold_left (fun h p -> Memo.mix_array h p) h paths in
    let h = Memo.mix h topo.Topology.mem_latency in
    let h = Memo.mix h line in
    let h = Memo.mix h (if coherence then 1 else 0) in
    fst (Memo.mix h sample_sets)
  in
  {
    topo;
    instances;
    paths;
    path_caches;
    path_latencies;
    path_levels;
    peer_caches;
    peer_levels;
    coherence;
    line;
    line_shift = log2_exact line;
    levels;
    level_index;
    sample_factor = sample_sets;
    config_hash;
    mem_accesses = 0;
    probe;
    observed = not (Probe.is_null probe);
  }

let topology t = t.topo
let probe t = t.probe

let set_probe t p =
  t.probe <- p;
  t.observed <- not (Probe.is_null p)

let access t ~core ~addr ~write =
  if core < 0 || core >= Array.length t.paths then
    invalid_arg "Hierarchy.access: core out of range";
  (* Addresses are non-negative, so the shift matches the division. *)
  let line =
    if t.line_shift >= 0 then addr lsr t.line_shift else addr / t.line
  in
  let caches = t.path_caches.(core) in
  let latencies = t.path_latencies.(core) in
  let levels = t.path_levels.(core) in
  let n = Array.length caches in
  let observed = t.observed in
  (* Probe upward until a hit; accumulate probe latencies. *)
  let latency = ref 0 in
  let hit_at = ref (-1) in
  let k = ref 0 in
  while !hit_at < 0 && !k < n do
    let cache = caches.(!k) in
    latency := !latency + latencies.(!k);
    let hit = Setassoc.access cache line in
    if observed then
      t.probe.Probe.on_level ~core ~level:levels.(!k)
        ~set:(Setassoc.set_of_line cache line)
        ~line ~hit;
    if hit then hit_at := !k else incr k
  done;
  if !hit_at < 0 then begin
    t.mem_accesses <- t.mem_accesses + 1;
    latency := !latency + t.topo.Topology.mem_latency;
    if observed then t.probe.Probe.on_mem ~core ~line
  end;
  (* Inclusive fill: bring the line into every cache on the path below
     the hit point (all of them on a memory miss). *)
  let fill_upto = if !hit_at < 0 then n - 1 else !hit_at - 1 in
  for j = 0 to fill_upto do
    match Setassoc.insert caches.(j) line with
    | None -> ()
    | Some victim ->
        if observed then
          t.probe.Probe.on_evict ~core ~level:levels.(j) ~line:victim
  done;
  (* Write-invalidate: peers not on this core's path lose the line. *)
  if write && t.coherence then begin
    let pc = t.peer_caches.(core) in
    let pl = t.peer_levels.(core) in
    for i = 0 to Array.length pc - 1 do
      if Setassoc.invalidate pc.(i) line && observed then
        t.probe.Probe.on_invalidate ~core ~level:pl.(i) ~line
    done
  end;
  !latency

let hit_latency t ~core ~level =
  let path = t.paths.(core) in
  let latency = ref 0 in
  let found = ref false in
  Array.iter
    (fun i ->
      let inst = t.instances.(i) in
      if not !found then begin
        latency := !latency + inst.params.latency;
        if inst.params.level = level then found := true
      end)
    path;
  if !found then Some !latency else None

let miss_latency t ~core =
  let path = t.paths.(core) in
  Array.fold_left
    (fun acc i -> acc + t.instances.(i).params.latency)
    t.topo.Topology.mem_latency path

let level_stats t =
  (* The level list is fixed at [create] time; one pass over the
     instances accumulates into per-level slots (no per-call table). *)
  let n = Array.length t.levels in
  let hits = Array.make n 0 in
  let misses = Array.make n 0 in
  Array.iteri
    (fun i inst ->
      let li = t.level_index.(i) in
      hits.(li) <- hits.(li) + Setassoc.hits inst.cache;
      misses.(li) <- misses.(li) + Setassoc.misses inst.cache)
    t.instances;
  List.init n (fun i ->
      { Stats.level = t.levels.(i); hits = hits.(i); misses = misses.(i) })

let mem_accesses t = t.mem_accesses

let sets_at t ~level =
  Array.fold_left
    (fun acc inst ->
      if inst.params.level = level then max acc (Setassoc.sets inst.cache)
      else acc)
    0 t.instances

let clear t =
  Array.iter (fun inst -> Setassoc.clear inst.cache) t.instances;
  t.mem_accesses <- 0

let line_size t = t.line

let line_of t addr =
  if t.line_shift >= 0 then addr lsr t.line_shift else addr / t.line

let sample_factor t = t.sample_factor
let config_hash t = t.config_hash
let num_instances t = Array.length t.instances

let snapshot t =
  Array.map (fun inst -> Setassoc.snapshot_lines inst.cache) t.instances

let restore t image =
  if Array.length image <> Array.length t.instances then
    invalid_arg "Hierarchy.restore: instance count mismatch";
  Array.iteri
    (fun i lines -> Setassoc.restore_lines t.instances.(i).cache lines)
    image

let instance_counts t =
  ( Array.map (fun inst -> Setassoc.hits inst.cache) t.instances,
    Array.map (fun inst -> Setassoc.misses inst.cache) t.instances )

let bump_counts t ~hits ~misses ~mem =
  if
    Array.length hits <> Array.length t.instances
    || Array.length misses <> Array.length t.instances
  then invalid_arg "Hierarchy.bump_counts: instance count mismatch";
  Array.iteri
    (fun i inst ->
      Setassoc.add_counts inst.cache ~hits:hits.(i) ~misses:misses.(i))
    t.instances;
  t.mem_accesses <- t.mem_accesses + mem

let state_hash t =
  Array.fold_left
    (fun h inst -> Setassoc.fold_lines Memo.mix h inst.cache)
    Memo.seed t.instances
