(** Parallel execution engine.

    Executes per-core access streams on a {!Hierarchy}, interleaving
    cores in simulated-time order (the core with the smallest local
    clock issues next), which models concurrent execution over shared
    caches.  Streams are grouped into phases separated by barriers:
    within a phase cores run freely; at a barrier every core waits for
    the slowest.

    An access is encoded as [addr * 2 + (if write then 1 else 0)] so a
    stream is a flat [int array] (see {!encode_access}). *)

type phase = int array array
(** [phase.(core)] is the encoded access stream of [core] in this
    phase.  All phases of a run must have the same number of cores as
    the hierarchy's topology. *)

val encode_access : addr:int -> write:bool -> int
val decode_access : int -> int * bool

type config = {
  issue_cost : int;    (** cycles to issue each access, beyond latency *)
  barrier_cost : int;  (** cycles added to every core at each barrier *)
}

val default_config : config

(** [run ?config h phases] clears [h], executes the phases and returns
    statistics.  The number of barriers reported is
    [max 0 (List.length phases - 1)].

    If a {!Probe} is attached to [h] the engine fires
    [on_phase_start]/[on_phase_end] around each phase,
    [on_barrier_enter]/[on_barrier_exit] around each barrier,
    [on_access] before every resolved access (the hierarchy then fires
    the per-level events), and [on_retire] with the issuing core's
    updated clock once the access has been charged; with the default
    null probe no callback is invoked and the run is identical to an
    unobserved one.

    [max_cycles] is an early-termination budget for search drivers
    (the autotuner's successive halving): once the smallest per-core
    clock reaches the cap, the rest of the run — including any
    remaining phases — is cut.  The returned statistics then describe
    only the executed prefix ([total_accesses] counts issued accesses;
    [cycles] is at least the cap), which is enough to classify the
    configuration as a loser.  Unobserved capped runs are the intended
    use; probes see a truncated event sequence with no closing
    phase/barrier events.
    @raise Invalid_argument on core-count mismatch. *)
val run : ?config:config -> ?max_cycles:int -> Hierarchy.t -> phase list -> Stats.t

(** The seed engine: a linear scan over all cores before every access
    instead of {!run}'s index min-heap.  Identical semantics and event
    order (ties on equal clocks go to the lowest core id in both);
    kept as the reference path for differential tests and the
    heap-vs-scan micro-benchmark. *)
val run_reference : ?config:config -> Hierarchy.t -> phase list -> Stats.t

(** [run_serial ?config h stream] executes a single stream on core 0 —
    the paper's single-core baseline (Table 2). *)
val run_serial : ?config:config -> Hierarchy.t -> int array -> Stats.t
