(** Parallel execution engine.

    Executes per-core access streams on a {!Hierarchy}, interleaving
    cores in simulated-time order (the core with the smallest local
    clock issues next), which models concurrent execution over shared
    caches.  Streams are grouped into phases separated by barriers:
    within a phase cores run freely; at a barrier every core waits for
    the slowest.

    An access is encoded as [addr * 2 + (if write then 1 else 0)] so a
    stream is a flat [int array] (see {!encode_access}).  A stream may
    alternatively be a {!cursor} that generates the same encoded words
    on demand — the engine pulls lazily, so generator-backed traces
    never materialize. *)

type phase = int array array
(** [phase.(core)] is the encoded access stream of [core] in this
    phase.  All phases of a run must have the same number of cores as
    the hierarchy's topology. *)

val encode_access : addr:int -> write:bool -> int
val decode_access : int -> int * bool

type config = {
  issue_cost : int;    (** cycles to issue each access, beyond latency *)
  barrier_cost : int;  (** cycles added to every core at each barrier *)
}

val default_config : config

(** {2 Lazy streams} *)

type cursor = {
  length : int;            (** total accesses the cursor yields *)
  pull : unit -> int;      (** next encoded access; effectful *)
  reset : unit -> unit;    (** rewind to the first access *)
  skip_to_sample : (shift:int -> mask:int -> skipped:int ref -> int) option;
      (** optional sampled fast path: consume accesses while
          [(e lsr shift) land mask <> 0], counting each into [skipped],
          and return the first passing access (consumed) or -1 at end
          of stream.  Must consume exactly as [pull] would; [None]
          falls back to the engine's pull loop. *)
}
(** A restartable generator of encoded accesses.  Consumers call
    [reset] before the first [pull]; the engine resets every cursor at
    the start of each phase, so a compiled stream can be run many
    times.  Pulling more than [length] times after a reset is a
    programming error.  [skip_to_sample] lets set-sampled runs skip
    filtered-out accesses at chunk-buffer speed instead of one closure
    call each (see {!Hierarchy.create}'s [sample_sets]). *)

type stream = Dense of int array | Gen of cursor
type stream_phase = stream array

val dense : int array -> stream
val stream_length : stream -> int

(** Materialize a stream.  A [Gen] is reset, then pulled in index
    order. *)
val force_stream : stream -> int array

(** Wrap every per-core array of a dense phase. *)
val of_phase : phase -> stream_phase

(** Materialize every stream of a phase. *)
val force_phase : stream_phase -> phase

(** Concatenate streams in order.  All-dense inputs concatenate
    eagerly into a [Dense]; otherwise the result is a [Gen] chaining
    the parts lazily (resetting it resets every part). *)
val stream_concat : stream list -> stream

(** {2 Running} *)

(** [run_streams ?config ?max_cycles ?memo h phases] clears [h],
    executes the phases and returns statistics.  The number of
    barriers reported is [max 0 (List.length phases - 1)].  Dense and
    generator-backed streams produce bit-identical event order and
    statistics (asserted by the differential tests).

    If a {!Probe} is attached to [h] the engine fires
    [on_phase_start]/[on_phase_end] around each phase,
    [on_barrier_enter]/[on_barrier_exit] around each barrier,
    [on_access] before every resolved access (the hierarchy then fires
    the per-level events), and [on_retire] with the issuing core's
    updated clock once the access has been charged; with the default
    null probe no callback is invoked and the run is identical to an
    unobserved one.

    [max_cycles] is an early-termination budget for search drivers
    (the autotuner's successive halving): once the smallest per-core
    clock reaches the cap, the rest of the run — including any
    remaining phases — is cut without pulling further accesses from
    any generator.  The returned statistics then describe only the
    executed prefix ([total_accesses] counts issued accesses; [cycles]
    is at least the cap), which is enough to classify the
    configuration as a loser.  Unobserved capped runs are the intended
    use; probes see a truncated event sequence with no closing
    phase/barrier events.

    When [h] was created with [~sample_sets] > 1, only accesses whose
    line satisfies [line mod sample_sets = 0] are simulated; skipped
    accesses are charged the issuing core's running-mean observed
    latency (the core's miss latency until a sample is seen, reset per
    phase), and per-level hit/miss and memory counters are
    extrapolated by the factor.  [total_accesses] stays unscaled.

    When [memo] is given, the run is unobserved, and no [max_cycles]
    cap is set, each phase's (entry cache state × stream contents ×
    hierarchy/engine configuration) is hashed; a table hit replays the
    recorded per-core clock/busy deltas, per-cache counter deltas and
    exit cache state instead of simulating — byte-identical
    statistics.  With a probe or a cap the memo is silently inert.
    @raise Invalid_argument on core-count mismatch. *)
val run_streams :
  ?config:config ->
  ?max_cycles:int ->
  ?memo:Memo.t ->
  Hierarchy.t ->
  stream_phase list ->
  Stats.t

(** [run ?config ?max_cycles h phases] = {!run_streams} over dense
    phases. *)
val run :
  ?config:config -> ?max_cycles:int -> Hierarchy.t -> phase list -> Stats.t

(** The seed engine over lazy streams: a linear scan over all cores
    before every access instead of {!run_streams}'s index min-heap.
    Identical semantics and event order (ties on equal clocks go to
    the lowest core id in both); kept as the reference path for
    differential tests and the heap-vs-scan micro-benchmark.  No
    sampling (@raise Invalid_argument on a sampled hierarchy), no cap,
    no memo. *)
val run_reference_streams :
  ?config:config -> Hierarchy.t -> stream_phase list -> Stats.t

(** {!run_reference_streams} over dense phases. *)
val run_reference : ?config:config -> Hierarchy.t -> phase list -> Stats.t

(** [run_serial ?config h stream] executes a single stream on core 0 —
    the paper's single-core baseline (Table 2). *)
val run_serial : ?config:config -> Hierarchy.t -> int array -> Stats.t
