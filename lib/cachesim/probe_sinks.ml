open Ctam_arch

(* Map sparse level numbers (1..4) to dense indices. *)
let level_index levels =
  let maxl = List.fold_left max 0 levels in
  let idx = Array.make (maxl + 1) (-1) in
  List.iteri (fun i l -> idx.(l) <- i) levels;
  idx

module Counters = struct
  type group_stat = {
    g_accesses : int;
    g_misses : int array;
    g_mem : int;
  }

  type gacc = {
    mutable a : int;
    am : int array;
    mutable amem : int;
  }

  type t = {
    levels : int list;
    lvl_idx : int array;
    nlevels : int;
    ncores : int;
    hits : int array array;
    misses : int array array;
    evicts : int array array;
    accesses : int array;
    writes : int array;
    mem : int array;
    mutable invalidations : int;
    mutable barriers : int;
    mutable nphases : int;
    segments : (int * int) array array array;
    (* Group-attribution cursor: per-core position in the current
       phase's stream, and the segment it falls in. *)
    pos : int array;
    segptr : int array;
    cur_group : int array;
    mutable phase_segs : (int * int) array array;
    groups : (int, gacc) Hashtbl.t;
  }

  let create ?(segments = []) topo =
    let levels = Topology.levels topo in
    let nlevels = List.length levels in
    let ncores = topo.Topology.num_cores in
    let mat () = Array.init ncores (fun _ -> Array.make nlevels 0) in
    {
      levels;
      lvl_idx = level_index levels;
      nlevels;
      ncores;
      hits = mat ();
      misses = mat ();
      evicts = mat ();
      accesses = Array.make ncores 0;
      writes = Array.make ncores 0;
      mem = Array.make ncores 0;
      invalidations = 0;
      barriers = 0;
      nphases = 0;
      segments = Array.of_list (List.map Array.copy segments);
      pos = Array.make ncores 0;
      segptr = Array.make ncores 0;
      cur_group = Array.make ncores (-1);
      phase_segs = Array.make ncores [||];
      groups = Hashtbl.create 64;
    }

  let gacc t id =
    match Hashtbl.find_opt t.groups id with
    | Some g -> g
    | None ->
        let g = { a = 0; am = Array.make t.nlevels 0; amem = 0 } in
        Hashtbl.add t.groups id g;
        g

  let li t level =
    if level < Array.length t.lvl_idx then t.lvl_idx.(level) else -1

  let probe t =
    {
      Probe.null with
      on_phase_start =
        (fun ~phase ->
          t.nphases <- max t.nphases (phase + 1);
          t.phase_segs <-
            (if phase < Array.length t.segments then t.segments.(phase)
             else Array.make t.ncores [||]);
          Array.fill t.pos 0 t.ncores 0;
          Array.fill t.segptr 0 t.ncores 0;
          Array.fill t.cur_group 0 t.ncores (-1));
      on_access =
        (fun ~core ~addr:_ ~line:_ ~write ->
          let segs =
            if core < Array.length t.phase_segs then t.phase_segs.(core)
            else [||]
          in
          let p = t.pos.(core) in
          while
            t.segptr.(core) < Array.length segs
            && fst segs.(t.segptr.(core)) <= p
          do
            t.cur_group.(core) <- snd segs.(t.segptr.(core));
            t.segptr.(core) <- t.segptr.(core) + 1
          done;
          t.pos.(core) <- p + 1;
          t.accesses.(core) <- t.accesses.(core) + 1;
          if write then t.writes.(core) <- t.writes.(core) + 1;
          if t.cur_group.(core) >= 0 then
            let g = gacc t t.cur_group.(core) in
            g.a <- g.a + 1);
      on_level =
        (fun ~core ~level ~set:_ ~line:_ ~hit ->
          let i = li t level in
          if i >= 0 then
            if hit then t.hits.(core).(i) <- t.hits.(core).(i) + 1
            else begin
              t.misses.(core).(i) <- t.misses.(core).(i) + 1;
              if t.cur_group.(core) >= 0 then
                let g = gacc t t.cur_group.(core) in
                g.am.(i) <- g.am.(i) + 1
            end);
      on_mem =
        (fun ~core ~line:_ ->
          t.mem.(core) <- t.mem.(core) + 1;
          if t.cur_group.(core) >= 0 then
            let g = gacc t t.cur_group.(core) in
            g.amem <- g.amem + 1);
      on_evict =
        (fun ~core ~level ~line:_ ->
          let i = li t level in
          if i >= 0 then t.evicts.(core).(i) <- t.evicts.(core).(i) + 1);
      on_invalidate =
        (fun ~core:_ ~level:_ ~line:_ ->
          t.invalidations <- t.invalidations + 1);
      on_barrier_enter =
        (fun ~phase:_ ~cycles:_ -> t.barriers <- t.barriers + 1);
    }

  let levels t = t.levels

  let cell m t ~core ~level =
    if core < 0 || core >= t.ncores then
      invalid_arg "Probe_sinks.Counters: core out of range";
    let i = li t level in
    if i < 0 then 0 else m.(core).(i)

  let hits t ~core ~level = cell t.hits t ~core ~level
  let misses t ~core ~level = cell t.misses t ~core ~level
  let evictions t ~core ~level = cell t.evicts t ~core ~level
  let accesses t ~core = t.accesses.(core)
  let writes t ~core = t.writes.(core)
  let mem t ~core = t.mem.(core)

  let per_level_totals t =
    List.mapi
      (fun i level ->
        let h = ref 0 and m = ref 0 in
        for c = 0 to t.ncores - 1 do
          h := !h + t.hits.(c).(i);
          m := !m + t.misses.(c).(i)
        done;
        { Stats.level; hits = !h; misses = !m })
      t.levels

  let total_accesses t = Array.fold_left ( + ) 0 t.accesses
  let mem_total t = Array.fold_left ( + ) 0 t.mem
  let invalidations_total t = t.invalidations
  let barriers t = t.barriers
  let phases t = t.nphases

  let group_stats t =
    Hashtbl.fold
      (fun id g acc ->
        (id, { g_accesses = g.a; g_misses = Array.copy g.am; g_mem = g.amem })
        :: acc)
      t.groups []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end

module Reuse_split = struct
  type t = {
    online : Reuse.Online.t;
    last_core : (int, int) Hashtbl.t;
    shares_cache : bool array array;
    vertical : int array;
    horizontal : int array;
    cross : int array;
    mutable nvert : int;
    mutable nhoriz : int;
    mutable ncross : int;
    mutable cold : int;
    conflict_levels : int list;
    lvl_idx : int array;
    conflicts : int array array;
  }

  let create topo =
    let n = topo.Topology.num_cores in
    let shares_cache =
      Array.init n (fun a ->
          Array.init n (fun b ->
              a = b || Topology.affinity_level topo a b <> None))
    in
    let levels = Topology.levels topo in
    let sets_at l =
      List.fold_left
        (fun acc (p : Topology.cache_params) ->
          if p.level = l then max acc (p.size_bytes / (p.assoc * p.line))
          else acc)
        0 (Topology.caches topo)
    in
    {
      online = Reuse.Online.create ();
      last_core = Hashtbl.create 1024;
      shares_cache;
      vertical = Array.make Reuse.nbuckets 0;
      horizontal = Array.make Reuse.nbuckets 0;
      cross = Array.make Reuse.nbuckets 0;
      nvert = 0;
      nhoriz = 0;
      ncross = 0;
      cold = 0;
      conflict_levels = levels;
      lvl_idx = level_index levels;
      conflicts = Array.of_list (List.map (fun l -> Array.make (sets_at l) 0) levels);
    }

  let probe t =
    {
      Probe.null with
      on_access =
        (fun ~core ~addr:_ ~line ~write:_ ->
          let prev = Hashtbl.find_opt t.last_core line in
          (match Reuse.Online.touch t.online line with
          | None -> t.cold <- t.cold + 1
          | Some d -> (
              let b = Reuse.bucket_of d in
              match prev with
              | Some c0 when c0 = core ->
                  t.vertical.(b) <- t.vertical.(b) + 1;
                  t.nvert <- t.nvert + 1
              | Some c0 when t.shares_cache.(c0).(core) ->
                  t.horizontal.(b) <- t.horizontal.(b) + 1;
                  t.nhoriz <- t.nhoriz + 1
              | Some _ ->
                  t.cross.(b) <- t.cross.(b) + 1;
                  t.ncross <- t.ncross + 1
              | None ->
                  (* A line can be cold in [last_core] only if it is
                     cold in the stack too; keep the counters honest. *)
                  t.vertical.(b) <- t.vertical.(b) + 1;
                  t.nvert <- t.nvert + 1));
          Hashtbl.replace t.last_core line core);
      on_level =
        (fun ~core:_ ~level ~set ~line:_ ~hit ->
          if not hit then
            let i =
              if level < Array.length t.lvl_idx then t.lvl_idx.(level) else -1
            in
            if i >= 0 && set < Array.length t.conflicts.(i) then
              t.conflicts.(i).(set) <- t.conflicts.(i).(set) + 1);
    }

  let hist buckets count = { Reuse.buckets = Array.copy buckets; cold = 0; total = count }

  let vertical t = hist t.vertical t.nvert
  let horizontal t = hist t.horizontal t.nhoriz
  let cross t = hist t.cross t.ncross
  let cold t = t.cold
  let total t = Reuse.Online.touched t.online

  let conflicts t =
    List.mapi (fun i l -> (l, Array.copy t.conflicts.(i))) t.conflict_levels
end
