(* Each set is a segment of [lines]: ways ordered MRU-first; -1 = empty.
   LRU on a small array segment is a shift, which beats pointer chasing
   at the associativities we model (<= 24). *)
type t = {
  sets : int;
  assoc : int;
  set_mask : int;  (* sets - 1 when sets is a power of two, -1 otherwise *)
  lines : int array;
  mutable hits : int;
  mutable misses : int;
}

let create ~sets ~assoc =
  if sets <= 0 || assoc <= 0 then invalid_arg "Setassoc.create";
  {
    sets;
    assoc;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
    lines = Array.make (sets * assoc) (-1);
    hits = 0;
    misses = 0;
  }

let sets t = t.sets
let assoc t = t.assoc
let capacity_lines t = t.sets * t.assoc

let set_of_line t line =
  (* Lines are non-negative, so masking matches mod exactly. *)
  if t.set_mask >= 0 then line land t.set_mask else line mod t.sets

let set_base t line = set_of_line t line * t.assoc

let find_way t base line =
  let rec go w =
    if w >= t.assoc then -1
    else if t.lines.(base + w) = line then w
    else go (w + 1)
  in
  go 0

let promote t base w =
  (* Move way [w] to MRU position, shifting the younger ways down. *)
  let line = t.lines.(base + w) in
  for k = w downto 1 do
    t.lines.(base + k) <- t.lines.(base + k - 1)
  done;
  t.lines.(base) <- line

let access t line =
  let base = set_base t line in
  let w = find_way t base line in
  if w >= 0 then begin
    t.hits <- t.hits + 1;
    promote t base w;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let insert t line =
  let base = set_base t line in
  let w = find_way t base line in
  if w >= 0 then begin
    promote t base w;
    None
  end
  else begin
    let victim = t.lines.(base + t.assoc - 1) in
    for k = t.assoc - 1 downto 1 do
      t.lines.(base + k) <- t.lines.(base + k - 1)
    done;
    t.lines.(base) <- line;
    if victim = -1 then None else Some victim
  end

let contains t line = find_way t (set_base t line) line >= 0

let invalidate t line =
  let base = set_base t line in
  let w = find_way t base line in
  if w < 0 then false
  else begin
    (* Compact: shift older ways up, free the last slot. *)
    for k = w to t.assoc - 2 do
      t.lines.(base + k) <- t.lines.(base + k + 1)
    done;
    t.lines.(base + t.assoc - 1) <- -1;
    true
  end

let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let clear t =
  Array.fill t.lines 0 (Array.length t.lines) (-1);
  t.hits <- 0;
  t.misses <- 0

let snapshot_lines t = Array.copy t.lines

let restore_lines t lines =
  if Array.length lines <> Array.length t.lines then
    invalid_arg "Setassoc.restore_lines: geometry mismatch";
  Array.blit lines 0 t.lines 0 (Array.length lines)

let add_counts t ~hits ~misses =
  t.hits <- t.hits + hits;
  t.misses <- t.misses + misses

let fold_lines f acc t = Array.fold_left f acc t.lines

let resident t =
  Array.to_list t.lines |> List.filter (fun l -> l >= 0)

let pp ppf t =
  Fmt.pf ppf "cache(%d sets x %d ways, %d hits / %d misses)" t.sets t.assoc
    t.hits t.misses
