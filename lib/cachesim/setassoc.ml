(* Each set is a segment of [lines].

   LRU (the default and the seed engine's policy) keeps the ways
   ordered MRU-first with -1 = empty: promotion is a shift, which
   beats pointer chasing at the associativities we model (<= 24), and
   the recency order needs no state beyond the array itself.  That
   code path is kept verbatim — the LRU-as-policy bit-identity
   differential in the test suite holds by construction.

   Every other policy keeps [lines] in PHYSICAL way order and packs
   its per-set replacement state into one int of [state] (tree bits,
   2-bit ages, used bits, a fill pointer, or an RNG word), mediated by
   the POLICY signature below: [init] seeds a set's state, [on_hit]
   and [on_fill] update it, [victim] picks the way to evict when the
   set is full.  Empty ways are filled lowest-index-first before
   [victim] is consulted, so a policy never sees a non-full set. *)

module Policy = Ctam_arch.Policy

module type POLICY = sig
  val name : string

  (** Packed state of one freshly-cleared set. *)
  val init : assoc:int -> set:int -> int

  (** State update on a hit at [way]. *)
  val on_hit : assoc:int -> state:int -> way:int -> int

  (** State update after filling [way] (an empty way or the victim). *)
  val on_fill : assoc:int -> state:int -> way:int -> int

  (** Way to evict from a full set, plus the updated state (the RNG
      policy advances its generator here).  [on_fill] still runs for
      the chosen way afterwards. *)
  val victim : assoc:int -> state:int -> int * int
end

(* --- policy implementations ------------------------------------------ *)

(* Round-robin fill order; hits do not refresh.  State = next victim
   way.  [on_fill] rather than [victim] advances the pointer so that
   refills after an invalidation (which are served from the empty-way
   scan) keep the pointer moving too. *)
module Fifo : POLICY = struct
  let name = "fifo"
  let init ~assoc:_ ~set:_ = 0
  let on_hit ~assoc:_ ~state ~way:_ = state
  let on_fill ~assoc ~state:_ ~way = (way + 1) mod assoc
  let victim ~assoc:_ ~state = (state, state)
end

(* Tree-PLRU.  The state packs the direction bits of a binary tree
   over ceil-pow2(assoc) leaves, heap-indexed from 1 (bit i-1 of the
   state is node i): bit 0 = the LRU side is the left subtree, 1 = the
   right.  A touch points every node on the way's path AWAY from it;
   the victim walk follows the bits, detouring left whenever the
   indicated right subtree holds no valid way (non-power-of-two
   associativity).  assoc <= 32 keeps the tree within one int. *)
module Plru : POLICY = struct
  let name = "plru"

  let ceil_pow2 n =
    let rec go p = if p >= n then p else go (p * 2) in
    go 1

  let init ~assoc:_ ~set:_ = 0

  let touch ~assoc state way =
    let state = ref state in
    let i = ref 1 and lo = ref 0 and span = ref (ceil_pow2 assoc) in
    while !span > 1 do
      let half = !span / 2 in
      if way < !lo + half then begin
        state := !state lor (1 lsl (!i - 1));
        i := 2 * !i
      end
      else begin
        state := !state land lnot (1 lsl (!i - 1));
        i := (2 * !i) + 1;
        lo := !lo + half
      end;
      span := half
    done;
    !state

  let on_hit ~assoc ~state ~way = touch ~assoc state way
  let on_fill ~assoc ~state ~way = touch ~assoc state way

  let victim ~assoc ~state =
    let i = ref 1 and lo = ref 0 and span = ref (ceil_pow2 assoc) in
    while !span > 1 do
      let half = !span / 2 in
      let bit = (state lsr (!i - 1)) land 1 in
      (* Go right only when the right subtree contains a valid way. *)
      if bit = 1 && !lo + half < assoc then begin
        i := (2 * !i) + 1;
        lo := !lo + half
      end
      else i := 2 * !i;
      span := half
    done;
    (!lo, state)
end

(* Quad-age LRU (the QLRU family modelled after recent Intel L3s): a
   2-bit age per way, hit resets to 0, fill inserts at 1, eviction
   takes the lowest-index way of age 3, normalizing all ages up first
   so one always exists.  assoc <= 31 keeps the ages within one int. *)
module Qlru : POLICY = struct
  let name = "qlru"
  let age state way = (state lsr (2 * way)) land 3

  let set_age state way a =
    state land lnot (3 lsl (2 * way)) lor (a lsl (2 * way))

  let init ~assoc ~set:_ =
    (* All ways at age 3: anything is evictable until filled. *)
    let rec go st w = if w < 0 then st else go (set_age st w 3) (w - 1) in
    go 0 (assoc - 1)

  let on_hit ~assoc:_ ~state ~way = set_age state way 0
  let on_fill ~assoc:_ ~state ~way = set_age state way 1

  let victim ~assoc ~state =
    let m = ref 0 in
    for w = 0 to assoc - 1 do
      if age state w > !m then m := age state w
    done;
    let state = ref state in
    if !m < 3 then begin
      let d = 3 - !m in
      for w = 0 to assoc - 1 do
        state := set_age !state w (age !state w + d)
      done
    end;
    let v = ref 0 in
    while age !state !v <> 3 do
      incr v
    done;
    (!v, !state)
end

(* Used-bit NRU ("MRU" in the cachetrace taxonomy): one bit per way,
   set on every touch; when setting the last clear bit, every OTHER
   bit is cleared, so a victim (first way with a clear bit) always
   exists for assoc >= 2. *)
module Mru : POLICY = struct
  let name = "mru"
  let init ~assoc:_ ~set:_ = 0

  let touch ~assoc state way =
    let full = (1 lsl assoc) - 1 in
    let st = state lor (1 lsl way) in
    if st = full then 1 lsl way else st

  let on_hit ~assoc ~state ~way = touch ~assoc state way
  let on_fill ~assoc ~state ~way = touch ~assoc state way

  let victim ~assoc ~state =
    let v = ref 0 in
    while !v < assoc - 1 && (state lsr !v) land 1 = 1 do
      incr v
    done;
    (!v, state)
end

(* Seeded xorshift victim selection.  The per-set state is the RNG
   word, derived from the seed and the set index, so runs are
   deterministic for a given seed and two seeds give decorrelated
   victim sequences. *)
module type SEED = sig
  val seed : int
end

module Random_pol (S : SEED) : POLICY = struct
  let name = Printf.sprintf "random:%d" S.seed
  let mask = (1 lsl 62) - 1

  let init ~assoc:_ ~set =
    let s = ((S.seed * 0x9e3779b1) lxor (set * 0x85ebca6b)) land mask in
    if s = 0 then 0x2545f491 else s

  let on_hit ~assoc:_ ~state ~way:_ = state
  let on_fill ~assoc:_ ~state ~way:_ = state

  let victim ~assoc ~state =
    let s = state lxor (state lsl 13) land mask in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) land mask in
    let s = if s = 0 then 0x2545f491 else s in
    (s mod assoc, s)
end

let random_policy ~seed : (module POLICY) =
  (module Random_pol (struct
    let seed = seed
  end))

(* Closure record over a POLICY module: one dynamic dispatch per state
   update instead of a functor instantiation per cache. *)
type ops = {
  o_init : assoc:int -> set:int -> int;
  o_hit : assoc:int -> state:int -> way:int -> int;
  o_fill : assoc:int -> state:int -> way:int -> int;
  o_victim : assoc:int -> state:int -> int * int;
}

let ops_of (module P : POLICY) =
  { o_init = P.init; o_hit = P.on_hit; o_fill = P.on_fill; o_victim = P.victim }

let policy_module : Policy.t -> (module POLICY) option = function
  | Policy.Lru -> None
  | Policy.Fifo -> Some (module Fifo)
  | Policy.Plru -> Some (module Plru)
  | Policy.Qlru -> Some (module Qlru)
  | Policy.Mru -> Some (module Mru)
  | Policy.Random seed -> Some (random_policy ~seed)

(* --- the cache ------------------------------------------------------- *)

type t = {
  sets : int;
  assoc : int;
  set_mask : int;  (* sets - 1 when sets is a power of two, -1 otherwise *)
  lines : int array;
  policy : Policy.t;
  ops : ops option;  (* None = the LRU fast path below *)
  state : int array;  (* per-set packed policy state; [||] for LRU *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(policy = Policy.Lru) ~sets ~assoc () =
  if sets <= 0 || assoc <= 0 then invalid_arg "Setassoc.create";
  (match policy with
  | Policy.Plru when assoc > 32 ->
      invalid_arg "Setassoc.create: plru supports at most 32 ways"
  | Policy.Qlru when assoc > 31 ->
      invalid_arg "Setassoc.create: qlru supports at most 31 ways"
  | (Policy.Mru | Policy.Fifo) when assoc > 62 ->
      invalid_arg "Setassoc.create: policy state needs assoc <= 62"
  | _ -> ());
  let ops = Option.map ops_of (policy_module policy) in
  let state =
    match ops with
    | None -> [||]
    | Some o -> Array.init sets (fun set -> o.o_init ~assoc ~set)
  in
  {
    sets;
    assoc;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
    lines = Array.make (sets * assoc) (-1);
    policy;
    ops;
    state;
    hits = 0;
    misses = 0;
  }

let sets t = t.sets
let assoc t = t.assoc
let policy t = t.policy
let capacity_lines t = t.sets * t.assoc

let set_of_line t line =
  (* Lines are non-negative, so masking matches mod exactly. *)
  if t.set_mask >= 0 then line land t.set_mask else line mod t.sets

let set_base t line = set_of_line t line * t.assoc

let find_way t base line =
  let rec go w =
    if w >= t.assoc then -1
    else if t.lines.(base + w) = line then w
    else go (w + 1)
  in
  go 0

let promote t base w =
  (* LRU: move way [w] to MRU position, shifting the younger ways down. *)
  let line = t.lines.(base + w) in
  for k = w downto 1 do
    t.lines.(base + k) <- t.lines.(base + k - 1)
  done;
  t.lines.(base) <- line

let access t line =
  match t.ops with
  | None ->
      let base = set_base t line in
      let w = find_way t base line in
      if w >= 0 then begin
        t.hits <- t.hits + 1;
        promote t base w;
        true
      end
      else begin
        t.misses <- t.misses + 1;
        false
      end
  | Some ops ->
      let set = set_of_line t line in
      let base = set * t.assoc in
      let w = find_way t base line in
      if w >= 0 then begin
        t.hits <- t.hits + 1;
        t.state.(set) <- ops.o_hit ~assoc:t.assoc ~state:t.state.(set) ~way:w;
        true
      end
      else begin
        t.misses <- t.misses + 1;
        false
      end

let first_empty t base =
  let rec go w =
    if w >= t.assoc then -1 else if t.lines.(base + w) = -1 then w else go (w + 1)
  in
  go 0

let insert t line =
  match t.ops with
  | None ->
      let base = set_base t line in
      let w = find_way t base line in
      if w >= 0 then begin
        promote t base w;
        None
      end
      else begin
        let victim = t.lines.(base + t.assoc - 1) in
        for k = t.assoc - 1 downto 1 do
          t.lines.(base + k) <- t.lines.(base + k - 1)
        done;
        t.lines.(base) <- line;
        if victim = -1 then None else Some victim
      end
  | Some ops ->
      let set = set_of_line t line in
      let base = set * t.assoc in
      let w = find_way t base line in
      if w >= 0 then begin
        t.state.(set) <- ops.o_hit ~assoc:t.assoc ~state:t.state.(set) ~way:w;
        None
      end
      else begin
        let e = first_empty t base in
        if e >= 0 then begin
          t.lines.(base + e) <- line;
          t.state.(set) <-
            ops.o_fill ~assoc:t.assoc ~state:t.state.(set) ~way:e;
          None
        end
        else begin
          let vw, st = ops.o_victim ~assoc:t.assoc ~state:t.state.(set) in
          let victim = t.lines.(base + vw) in
          t.lines.(base + vw) <- line;
          t.state.(set) <- ops.o_fill ~assoc:t.assoc ~state:st ~way:vw;
          Some victim
        end
      end

let contains t line = find_way t (set_base t line) line >= 0

let invalidate t line =
  let base = set_base t line in
  let w = find_way t base line in
  if w < 0 then false
  else begin
    (match t.ops with
    | None ->
        (* LRU compacts: shift older ways up, free the last slot. *)
        for k = w to t.assoc - 2 do
          t.lines.(base + k) <- t.lines.(base + k + 1)
        done;
        t.lines.(base + t.assoc - 1) <- -1
    | Some _ ->
        (* Physical-order policies just punch a hole; the policy state
           is left alone and the empty-way scan refills it. *)
        t.lines.(base + w) <- -1);
    true
  end

let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let clear t =
  Array.fill t.lines 0 (Array.length t.lines) (-1);
  (match t.ops with
  | None -> ()
  | Some ops ->
      for set = 0 to t.sets - 1 do
        t.state.(set) <- ops.o_init ~assoc:t.assoc ~set
      done);
  t.hits <- 0;
  t.misses <- 0

(* Snapshots must capture the policy state too (the phase memo
   restores both), so non-LRU images append the per-set state words
   after the way array; LRU images stay the bare way array the seed
   produced. *)
let snapshot_lines t =
  if t.state = [||] then Array.copy t.lines
  else Array.append t.lines t.state

let restore_lines t lines =
  let nl = Array.length t.lines and ns = Array.length t.state in
  if Array.length lines <> nl + ns then
    invalid_arg "Setassoc.restore_lines: geometry mismatch";
  Array.blit lines 0 t.lines 0 nl;
  if ns > 0 then Array.blit lines nl t.state 0 ns

let add_counts t ~hits ~misses =
  t.hits <- t.hits + hits;
  t.misses <- t.misses + misses

let fold_lines f acc t =
  let acc = Array.fold_left f acc t.lines in
  Array.fold_left f acc t.state

let resident t =
  Array.to_list t.lines |> List.filter (fun l -> l >= 0)

let pp ppf t =
  Fmt.pf ppf "cache(%d sets x %d ways%s, %d hits / %d misses)" t.sets t.assoc
    (if Policy.equal t.policy Policy.Lru then ""
     else ", " ^ Policy.to_string t.policy)
    t.hits t.misses
