(** Timeline probe sink: per-core execution spans, windowed time-series
    metrics and cache-set heatmaps.

    The sink mirrors the engine's per-core clocks through
    {!Probe.t.on_retire} (a core's mirrored clock is its time when the
    next access issues) and attributes every event to

    - a {e span}: a maximal run of consecutive accesses by one core
      executing one iteration-group segment within one phase (see
      [Mapping.segments]); spans carry access/miss/memory counts and
      become Chrome-trace duration events in [Trace_export];
    - a {e window}: cycle interval [[k*window, (k+1)*window)]; windowed
      series cover per-core accesses and busy cycles, per-core×level
      hits/misses, the machine-wide reuse split (vertical / horizontal /
      cross-socket / cold, as in [Probe_sinks.Reuse_split]) and
      per-level set-index × window access/conflict-miss heatmaps.

    Approximation: all events of one access (level probes, memory,
    invalidations) are charged to the window of the issuing core's
    clock {e before} the access retires; an access whose latency spans
    a window boundary is not split.

    Like every sink the timeline only observes: attaching it never
    changes simulated cycle counts (differential-tested). *)

type t

val default_window : int

(** [create ?window ?max_invalidations ?segments topo] builds a sink
    for machines shaped like [topo].  [window] is the series bucket
    width in cycles (default {!default_window}).  [segments] aligns
    with the engine's phase list as in [Probe_sinks.Counters.create];
    without it all spans carry segment [-1].  At most
    [max_invalidations] invalidation events are retained individually
    (default 10000); the total count is always exact.
    @raise Invalid_argument if [window <= 0]. *)
val create :
  ?window:int ->
  ?max_invalidations:int ->
  ?segments:(int * int) array array list ->
  Ctam_arch.Topology.t ->
  t

(** The probe to attach (or [Probe.seq] with others). *)
val probe : t -> Probe.t

val window : t -> int
val levels : t -> int list
val num_cores : t -> int

(** Largest mirrored clock seen (= [Stats.cycles] of the run). *)
val max_cycles : t -> int

(** Number of windows covering [0 .. max_cycles): 0 for an empty run. *)
val num_windows : t -> int

type span = {
  sp_core : int;
  sp_segment : int;  (** segment id from [segments], [-1] untagged *)
  sp_phase : int;
  sp_start : int;    (** cycles *)
  mutable sp_end : int;
  mutable sp_accesses : int;
  mutable sp_misses : int;  (** summed over all levels *)
  mutable sp_mem : int;
}

type barrier = {
  b_phase : int;
  b_enter : int;  (** synchronised clock when the phase drained *)
  b_exit : int;   (** enter + barrier cost *)
}

type invalidation = {
  i_cycles : int;
  i_core : int;  (** the writing core *)
  i_level : int;
  i_line : int;
}

type phase_mark = { ph_index : int; ph_start : int; ph_end : int }

(** Closed spans, sorted by (start cycles, core). *)
val spans : t -> span list

val barriers : t -> barrier list
val phases : t -> phase_mark list

(** Retained invalidation events, chronological. *)
val invalidations : t -> invalidation list

val total_invalidations : t -> int

(** [total_invalidations - retained]; positive when the cap was hit. *)
val dropped_invalidations : t -> int

(** Per-window series, each of length [num_windows]. *)

val accesses_series : t -> core:int -> int array
val busy_series : t -> core:int -> int array
val hits_series : t -> core:int -> level:int -> int array
val misses_series : t -> core:int -> level:int -> int array

(** Machine-wide (vertical, horizontal, cross-socket, cold) per window. *)
val reuse_series : t -> int array * int array * int array * int array

(** [heatmap t ~level] is [Some (sets, accesses, misses)] with
    [accesses.(w).(s)] / [misses.(w).(s)] the counts for set [s] in
    window [w] ([sets] = the largest set count among level-[level]
    caches); [None] if the level is absent. *)
val heatmap : t -> level:int -> (int * int array array * int array array) option

(** ASCII rendering of the heatmap (misses by default, accesses with
    [~misses:false]), downsampled to at most [width] columns ×
    [height] rows by summing buckets; [None] if the level is absent or
    the run was empty. *)
val render_heatmap :
  ?width:int -> ?height:int -> ?misses:bool -> t -> level:int -> string option
