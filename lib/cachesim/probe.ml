type t = {
  on_access : core:int -> addr:int -> line:int -> write:bool -> unit;
  on_level : core:int -> level:int -> set:int -> line:int -> hit:bool -> unit;
  on_mem : core:int -> line:int -> unit;
  on_evict : core:int -> level:int -> line:int -> unit;
  on_invalidate : core:int -> level:int -> line:int -> unit;
  on_retire : core:int -> cycles:int -> unit;
  on_phase_start : phase:int -> unit;
  on_phase_end : phase:int -> cycles:int -> unit;
  on_barrier_enter : phase:int -> cycles:int -> unit;
  on_barrier_exit : phase:int -> cycles:int -> unit;
}

let null =
  {
    on_access = (fun ~core:_ ~addr:_ ~line:_ ~write:_ -> ());
    on_level = (fun ~core:_ ~level:_ ~set:_ ~line:_ ~hit:_ -> ());
    on_mem = (fun ~core:_ ~line:_ -> ());
    on_evict = (fun ~core:_ ~level:_ ~line:_ -> ());
    on_invalidate = (fun ~core:_ ~level:_ ~line:_ -> ());
    on_retire = (fun ~core:_ ~cycles:_ -> ());
    on_phase_start = (fun ~phase:_ -> ());
    on_phase_end = (fun ~phase:_ ~cycles:_ -> ());
    on_barrier_enter = (fun ~phase:_ ~cycles:_ -> ());
    on_barrier_exit = (fun ~phase:_ ~cycles:_ -> ());
  }

let is_null p = p == null

let seq = function
  | [] -> null
  | [ p ] -> p
  | ps ->
      let ps = List.filter (fun p -> not (is_null p)) ps in
      (match ps with
      | [] -> null
      | [ p ] -> p
      | ps ->
          {
            on_access =
              (fun ~core ~addr ~line ~write ->
                List.iter (fun p -> p.on_access ~core ~addr ~line ~write) ps);
            on_level =
              (fun ~core ~level ~set ~line ~hit ->
                List.iter (fun p -> p.on_level ~core ~level ~set ~line ~hit) ps);
            on_mem = (fun ~core ~line -> List.iter (fun p -> p.on_mem ~core ~line) ps);
            on_evict =
              (fun ~core ~level ~line ->
                List.iter (fun p -> p.on_evict ~core ~level ~line) ps);
            on_invalidate =
              (fun ~core ~level ~line ->
                List.iter (fun p -> p.on_invalidate ~core ~level ~line) ps);
            on_retire =
              (fun ~core ~cycles ->
                List.iter (fun p -> p.on_retire ~core ~cycles) ps);
            on_phase_start =
              (fun ~phase -> List.iter (fun p -> p.on_phase_start ~phase) ps);
            on_phase_end =
              (fun ~phase ~cycles ->
                List.iter (fun p -> p.on_phase_end ~phase ~cycles) ps);
            on_barrier_enter =
              (fun ~phase ~cycles ->
                List.iter (fun p -> p.on_barrier_enter ~phase ~cycles) ps);
            on_barrier_exit =
              (fun ~phase ~cycles ->
                List.iter (fun p -> p.on_barrier_exit ~phase ~cycles) ps);
          })
