type histogram = { buckets : int array; cold : int; total : int }

let nbuckets = 44 (* distances up to 2^43 lines *)

let bucket_of d =
  if d <= 0 then 0
  else begin
    (* smallest i with d < 2^i *)
    let rec go i = if d < 1 lsl i then i else go (i + 1) in
    min (nbuckets - 1) (go 1)
  end

(* Fenwick tree over access times: 1 marks the *latest* access time of
   some line; the reuse distance of an access is the number of marks
   strictly between the line's previous access and now. *)
module Fenwick = struct
  type t = { data : int array }

  let create n = { data = Array.make (n + 1) 0 }

  let add t i delta =
    let i = ref (i + 1) in
    while !i < Array.length t.data do
      t.data.(!i) <- t.data.(!i) + delta;
      i := !i + (!i land - !i)
    done

  (* Sum of [0..i]. *)
  let prefix t i =
    let i = ref (i + 1) in
    let acc = ref 0 in
    while !i > 0 do
      acc := !acc + t.data.(!i);
      i := !i - (!i land - !i)
    done;
    !acc

  let range t lo hi = if hi < lo then 0 else prefix t hi - prefix t (lo - 1)
end

module Online = struct
  type t = {
    mutable fw : Fenwick.t;
    mutable cap : int;
    last : (int, int) Hashtbl.t;
    mutable time : int;
  }

  let create () =
    { fw = Fenwick.create 1024; cap = 1024; last = Hashtbl.create 1024; time = 0 }

  (* The Fenwick tree holds one mark at the latest access time of every
     live line, so growing it is a rebuild from [last] — O(k log n),
     amortised over the doublings. *)
  let grow t =
    let cap = t.cap * 2 in
    let fw = Fenwick.create cap in
    Hashtbl.iter (fun _line t0 -> Fenwick.add fw t0 1) t.last;
    t.fw <- fw;
    t.cap <- cap

  let touch t line =
    if t.time + 1 >= t.cap then grow t;
    let d =
      match Hashtbl.find_opt t.last line with
      | None -> None
      | Some t0 ->
          let d = Fenwick.range t.fw (t0 + 1) (t.time - 1) in
          Fenwick.add t.fw t0 (-1);
          Some d
    in
    Hashtbl.replace t.last line t.time;
    Fenwick.add t.fw t.time 1;
    t.time <- t.time + 1;
    d

  let touched t = t.time
end

let of_lines lines =
  let n = Array.length lines in
  let fw = Fenwick.create (n + 1) in
  let last : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let buckets = Array.make nbuckets 0 in
  let cold = ref 0 in
  Array.iteri
    (fun t line ->
      (match Hashtbl.find_opt last line with
      | None -> incr cold
      | Some t0 ->
          let d = Fenwick.range fw (t0 + 1) (t - 1) in
          buckets.(bucket_of d) <- buckets.(bucket_of d) + 1;
          Fenwick.add fw t0 (-1));
      Hashtbl.replace last line t;
      Fenwick.add fw t 1)
    lines;
  { buckets; cold = !cold; total = n }

let of_stream stream ~line =
  if line <= 0 then invalid_arg "Reuse.of_stream: line";
  of_lines
    (Array.map
       (fun e ->
         let addr, _ = Engine.decode_access e in
         addr / line)
       stream)

let hit_ratio_at h ~lines =
  if lines <= 0 then invalid_arg "Reuse.hit_ratio_at";
  let finite = h.total - h.cold in
  if finite <= 0 then 0.
  else begin
    (* Count buckets entirely below [lines]; the straddling bucket is
       included pro-rata at its midpoint. *)
    let hits = ref 0. in
    Array.iteri
      (fun i count ->
        let lo = if i = 0 then 0 else 1 lsl (i - 1) in
        let hi = if i = 0 then 0 else (1 lsl i) - 1 in
        if hi < lines then hits := !hits +. float_of_int count
        else if lo < lines then
          hits :=
            !hits
            +. float_of_int count
               *. (float_of_int (lines - lo) /. float_of_int (hi - lo + 1)))
      h.buckets;
    !hits /. float_of_int finite
  end

let mean_distance h =
  let finite = h.total - h.cold in
  if finite <= 0 then 0.
  else begin
    let acc = ref 0. in
    Array.iteri
      (fun i count ->
        let mid =
          if i = 0 then 0.
          else float_of_int ((1 lsl (i - 1)) + ((1 lsl i) - 1)) /. 2.
        in
        acc := !acc +. (mid *. float_of_int count))
      h.buckets;
    !acc /. float_of_int finite
  end

let merge hs =
  let buckets = Array.make nbuckets 0 in
  let cold = ref 0 and total = ref 0 in
  List.iter
    (fun h ->
      Array.iteri (fun i c -> buckets.(i) <- buckets.(i) + c) h.buckets;
      cold := !cold + h.cold;
      total := !total + h.total)
    hs;
  { buckets; cold = !cold; total = !total }

let pp ppf h =
  Fmt.pf ppf "@[<v>reuse histogram (%d accesses, %d cold):@," h.total h.cold;
  Array.iteri
    (fun i c ->
      if c > 0 then
        if i = 0 then Fmt.pf ppf "  d = 0: %d@," c
        else Fmt.pf ppf "  d in [%d, %d): %d@," (1 lsl (i - 1)) (1 lsl i) c)
    h.buckets;
  Fmt.pf ppf "@]"
