open Ctam_arch

(* Growable int array: windowed series are indexed by window number,
   whose count is unknown until the run ends. *)
module Dyn = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 16 0; n = 0 }

  let ensure t i =
    if i >= Array.length t.a then begin
      let m = ref (Array.length t.a) in
      while i >= !m do
        m := !m * 2
      done;
      let a' = Array.make !m 0 in
      Array.blit t.a 0 a' 0 t.n;
      t.a <- a'
    end;
    if i >= t.n then t.n <- i + 1

  let bump t i v =
    ensure t i;
    t.a.(i) <- t.a.(i) + v

  (* Snapshot padded/truncated to [n] windows. *)
  let snapshot t n =
    Array.init n (fun i -> if i < t.n then t.a.(i) else 0)
end

type span = {
  sp_core : int;
  sp_segment : int;  (* Mapping.segments id; -1 when untagged *)
  sp_phase : int;
  sp_start : int;
  mutable sp_end : int;
  mutable sp_accesses : int;
  mutable sp_misses : int;
  mutable sp_mem : int;
}

type barrier = { b_phase : int; b_enter : int; b_exit : int }

type invalidation = {
  i_cycles : int;
  i_core : int;  (* the writing core *)
  i_level : int;
  i_line : int;
}

type phase_mark = { ph_index : int; ph_start : int; ph_end : int }

type core_series = {
  cs_accesses : Dyn.t;
  cs_busy : Dyn.t;
  cs_hits : Dyn.t array;    (* per dense level *)
  cs_misses : Dyn.t array;
}

type heat = {
  hm_sets : int;
  (* window -> (accesses per set, misses per set); allocated lazily so
     idle windows cost nothing. *)
  hm_cells : (int, int array * int array) Hashtbl.t;
}

type t = {
  topo : Topology.t;
  window : int;
  levels : int list;
  lvl_idx : int array;  (* sparse level -> dense index, -1 absent *)
  ncores : int;
  (* Mirror of the engine's per-core clocks, advanced by on_retire and
     barrier exits; [clock.(c)] is core [c]'s time when its next access
     issues, i.e. the start time of in-flight events. *)
  clock : int array;
  mutable max_cycles : int;
  (* group-attribution cursor, as in Probe_sinks.Counters *)
  segments : (int * int) array array array;
  pos : int array;
  segptr : int array;
  cur_group : int array;
  mutable phase_segs : (int * int) array array;
  mutable cur_phase : int;
  mutable cur_phase_start : int;
  (* open span per core, newest-first closed spans *)
  open_span : span option array;
  mutable spans_rev : span list;
  mutable barriers_rev : barrier list;
  mutable phases_rev : phase_mark list;
  mutable invals_rev : invalidation list;
  mutable invals_n : int;
  invals_cap : int;
  series : core_series array;
  reuse_online : Reuse.Online.t;
  last_core : (int, int) Hashtbl.t;
  shares_cache : bool array array;
  rs_vertical : Dyn.t;
  rs_horizontal : Dyn.t;
  rs_cross : Dyn.t;
  rs_cold : Dyn.t;
  heat : heat array;  (* per dense level *)
}

let level_index levels =
  let maxl = List.fold_left max 0 levels in
  let idx = Array.make (maxl + 1) (-1) in
  List.iteri (fun i l -> idx.(l) <- i) levels;
  idx

let default_window = 8192

let create ?(window = default_window) ?(max_invalidations = 10_000)
    ?(segments = []) topo =
  if window <= 0 then invalid_arg "Timeline.create: window must be positive";
  let levels = Topology.levels topo in
  let nlevels = List.length levels in
  let ncores = topo.Topology.num_cores in
  let sets_at l =
    List.fold_left
      (fun acc (p : Topology.cache_params) ->
        if p.level = l then max acc (p.size_bytes / (p.assoc * p.line))
        else acc)
      0 (Topology.caches topo)
  in
  {
    topo;
    window;
    levels;
    lvl_idx = level_index levels;
    ncores;
    clock = Array.make ncores 0;
    max_cycles = 0;
    segments = Array.of_list (List.map Array.copy segments);
    pos = Array.make ncores 0;
    segptr = Array.make ncores 0;
    cur_group = Array.make ncores (-1);
    phase_segs = Array.make ncores [||];
    cur_phase = -1;
    cur_phase_start = 0;
    open_span = Array.make ncores None;
    spans_rev = [];
    barriers_rev = [];
    phases_rev = [];
    invals_rev = [];
    invals_n = 0;
    invals_cap = max_invalidations;
    series =
      Array.init ncores (fun _ ->
          {
            cs_accesses = Dyn.create ();
            cs_busy = Dyn.create ();
            cs_hits = Array.init nlevels (fun _ -> Dyn.create ());
            cs_misses = Array.init nlevels (fun _ -> Dyn.create ());
          });
    reuse_online = Reuse.Online.create ();
    last_core = Hashtbl.create 1024;
    shares_cache =
      Array.init ncores (fun a ->
          Array.init ncores (fun b ->
              a = b || Topology.affinity_level topo a b <> None));
    rs_vertical = Dyn.create ();
    rs_horizontal = Dyn.create ();
    rs_cross = Dyn.create ();
    rs_cold = Dyn.create ();
    heat =
      Array.of_list
        (List.map
           (fun l -> { hm_sets = sets_at l; hm_cells = Hashtbl.create 32 })
           levels);
  }

let li t level =
  if level >= 0 && level < Array.length t.lvl_idx then t.lvl_idx.(level)
  else -1

let win t cycles = cycles / t.window

let close_span t core =
  match t.open_span.(core) with
  | None -> ()
  | Some sp ->
      t.spans_rev <- sp :: t.spans_rev;
      t.open_span.(core) <- None

let heat_cells t i w =
  let h = t.heat.(i) in
  match Hashtbl.find_opt h.hm_cells w with
  | Some cell -> cell
  | None ->
      let cell = (Array.make h.hm_sets 0, Array.make h.hm_sets 0) in
      Hashtbl.add h.hm_cells w cell;
      cell

let probe t =
  {
    Probe.null with
    on_phase_start =
      (fun ~phase ->
        t.cur_phase <- phase;
        (* Every core resumes at the same clock after a barrier; core
           0's mirror is as good as any (phase 0 starts at 0). *)
        t.cur_phase_start <- (if t.ncores > 0 then t.clock.(0) else 0);
        t.phase_segs <-
          (if phase < Array.length t.segments then t.segments.(phase)
           else Array.make t.ncores [||]);
        Array.fill t.pos 0 t.ncores 0;
        Array.fill t.segptr 0 t.ncores 0;
        Array.fill t.cur_group 0 t.ncores (-1));
    on_access =
      (fun ~core ~addr:_ ~line ~write:_ ->
        let segs =
          if core < Array.length t.phase_segs then t.phase_segs.(core)
          else [||]
        in
        let p = t.pos.(core) in
        while
          t.segptr.(core) < Array.length segs
          && fst segs.(t.segptr.(core)) <= p
        do
          t.cur_group.(core) <- snd segs.(t.segptr.(core));
          t.segptr.(core) <- t.segptr.(core) + 1
        done;
        t.pos.(core) <- p + 1;
        let now = t.clock.(core) in
        (* span bookkeeping: a new span when the group (or phase)
           changed since this core's previous access *)
        let seg = t.cur_group.(core) in
        (match t.open_span.(core) with
        | Some sp when sp.sp_segment = seg && sp.sp_phase = t.cur_phase -> ()
        | _ ->
            close_span t core;
            t.open_span.(core) <-
              Some
                {
                  sp_core = core;
                  sp_segment = seg;
                  sp_phase = t.cur_phase;
                  sp_start = now;
                  sp_end = now;
                  sp_accesses = 0;
                  sp_misses = 0;
                  sp_mem = 0;
                });
        (match t.open_span.(core) with
        | Some sp -> sp.sp_accesses <- sp.sp_accesses + 1
        | None -> ());
        let w = win t now in
        Dyn.bump t.series.(core).cs_accesses w 1;
        (* windowed reuse split *)
        let prev = Hashtbl.find_opt t.last_core line in
        (match Reuse.Online.touch t.reuse_online line with
        | None -> Dyn.bump t.rs_cold w 1
        | Some _ -> (
            match prev with
            | Some c0 when c0 = core -> Dyn.bump t.rs_vertical w 1
            | Some c0 when t.shares_cache.(c0).(core) ->
                Dyn.bump t.rs_horizontal w 1
            | Some _ -> Dyn.bump t.rs_cross w 1
            | None -> Dyn.bump t.rs_vertical w 1));
        Hashtbl.replace t.last_core line core);
    on_level =
      (fun ~core ~level ~set ~line:_ ~hit ->
        let i = li t level in
        if i >= 0 then begin
          let w = win t t.clock.(core) in
          let s = t.series.(core) in
          if hit then Dyn.bump s.cs_hits.(i) w 1
          else begin
            Dyn.bump s.cs_misses.(i) w 1;
            (match t.open_span.(core) with
            | Some sp -> sp.sp_misses <- sp.sp_misses + 1
            | None -> ())
          end;
          if set >= 0 && set < t.heat.(i).hm_sets then begin
            let acc, miss = heat_cells t i w in
            acc.(set) <- acc.(set) + 1;
            if not hit then miss.(set) <- miss.(set) + 1
          end
        end);
    on_mem =
      (fun ~core ~line:_ ->
        match t.open_span.(core) with
        | Some sp -> sp.sp_mem <- sp.sp_mem + 1
        | None -> ());
    on_invalidate =
      (fun ~core ~level ~line ->
        t.invals_n <- t.invals_n + 1;
        if t.invals_n <= t.invals_cap then
          t.invals_rev <-
            { i_cycles = t.clock.(core); i_core = core; i_level = level; i_line = line }
            :: t.invals_rev);
    on_retire =
      (fun ~core ~cycles ->
        let before = t.clock.(core) in
        Dyn.bump t.series.(core).cs_busy (win t before) (cycles - before);
        t.clock.(core) <- cycles;
        if cycles > t.max_cycles then t.max_cycles <- cycles;
        match t.open_span.(core) with
        | Some sp -> sp.sp_end <- cycles
        | None -> ());
    on_phase_end =
      (fun ~phase ~cycles ->
        for c = 0 to t.ncores - 1 do
          close_span t c
        done;
        t.phases_rev <-
          { ph_index = phase; ph_start = t.cur_phase_start; ph_end = cycles }
          :: t.phases_rev;
        if cycles > t.max_cycles then t.max_cycles <- cycles);
    on_barrier_enter = (fun ~phase:_ ~cycles:_ -> ());
    on_barrier_exit =
      (fun ~phase ~cycles ->
        (* enter time = the phase's drain time, already recorded *)
        let enter =
          match t.phases_rev with
          | m :: _ when m.ph_index = phase -> m.ph_end
          | _ -> cycles
        in
        t.barriers_rev <- { b_phase = phase; b_enter = enter; b_exit = cycles } :: t.barriers_rev;
        Array.fill t.clock 0 t.ncores cycles;
        if cycles > t.max_cycles then t.max_cycles <- cycles);
  }

(* --- accessors -------------------------------------------------------- *)

let window t = t.window
let levels t = t.levels
let num_cores t = t.ncores
let max_cycles t = t.max_cycles
let num_windows t = if t.max_cycles = 0 then 0 else win t (t.max_cycles - 1) + 1

let spans t =
  (* chronological per core; stable global order by (start, core) *)
  List.stable_sort
    (fun a b ->
      if a.sp_start <> b.sp_start then compare a.sp_start b.sp_start
      else compare a.sp_core b.sp_core)
    (List.rev t.spans_rev)

let barriers t = List.rev t.barriers_rev
let phases t = List.rev t.phases_rev
let invalidations t = List.rev t.invals_rev
let total_invalidations t = t.invals_n
let dropped_invalidations t = max 0 (t.invals_n - t.invals_cap)

let accesses_series t ~core = Dyn.snapshot t.series.(core).cs_accesses (num_windows t)
let busy_series t ~core = Dyn.snapshot t.series.(core).cs_busy (num_windows t)

let hits_series t ~core ~level =
  let i = li t level in
  if i < 0 then Array.make (num_windows t) 0
  else Dyn.snapshot t.series.(core).cs_hits.(i) (num_windows t)

let misses_series t ~core ~level =
  let i = li t level in
  if i < 0 then Array.make (num_windows t) 0
  else Dyn.snapshot t.series.(core).cs_misses.(i) (num_windows t)

let reuse_series t =
  let n = num_windows t in
  ( Dyn.snapshot t.rs_vertical n,
    Dyn.snapshot t.rs_horizontal n,
    Dyn.snapshot t.rs_cross n,
    Dyn.snapshot t.rs_cold n )

let heatmap t ~level =
  let i = li t level in
  if i < 0 then None
  else begin
    let h = t.heat.(i) in
    let n = num_windows t in
    let acc = Array.init n (fun _ -> Array.make h.hm_sets 0) in
    let miss = Array.init n (fun _ -> Array.make h.hm_sets 0) in
    Hashtbl.iter
      (fun w (a, m) ->
        if w < n then begin
          acc.(w) <- Array.copy a;
          miss.(w) <- Array.copy m
        end)
      h.hm_cells;
    Some (h.hm_sets, acc, miss)
  end

(* --- ASCII heatmap renderer ------------------------------------------ *)

let ramp = " .:-=+*#%@"

let render_heatmap ?(width = 64) ?(height = 24) ?(misses = true) t ~level =
  match heatmap t ~level with
  | None -> None
  | Some (sets, acc, miss) ->
      let n = Array.length acc in
      if n = 0 || sets = 0 then None
      else begin
        let cells = if misses then miss else acc in
        let cols = min width n in
        let rows = min height sets in
        (* Downsample by summing rectangular buckets so totals are
           preserved within a bucket. *)
        let grid = Array.make_matrix rows cols 0 in
        for w = 0 to n - 1 do
          let c = w * cols / n in
          let col = cells.(w) in
          for s = 0 to sets - 1 do
            let r = s * rows / sets in
            grid.(r).(c) <- grid.(r).(c) + col.(s)
          done
        done;
        let maxv = Array.fold_left (Array.fold_left max) 0 grid in
        let b = Buffer.create ((rows + 3) * (cols + 12)) in
        Buffer.add_string b
          (Printf.sprintf
             "L%d %s heatmap: %d sets (rows, %d/row) x %d windows (cols, %d \
              cycles each), max cell %d\n"
             level
             (if misses then "conflict-miss" else "access")
             sets
             ((sets + rows - 1) / rows)
             n
             (t.window * ((n + cols - 1) / cols))
             maxv);
        for r = 0 to rows - 1 do
          Buffer.add_string b (Printf.sprintf "%5d |" (r * sets / rows));
          for c = 0 to cols - 1 do
            let v = grid.(r).(c) in
            let k =
              if maxv = 0 || v = 0 then 0
              else
                min
                  (1 + ((v * (String.length ramp - 2)) + maxv - 1) / maxv)
                  (String.length ramp - 1)
            in
            Buffer.add_char b ramp.[k]
          done;
          Buffer.add_string b "|\n"
        done;
        Buffer.add_string b
          (Printf.sprintf "%5s +%s+ scale \"%s\" (0..max)\n" ""
             (String.make cols '-') ramp);
        Some (Buffer.contents b)
      end
