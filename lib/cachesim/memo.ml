(* Per-phase memoization table for the engine (PR 7).

   A phase's outcome is a pure function of (entry cache contents,
   per-core access streams, hierarchy configuration, engine config):
   the engine only ever starts a phase with uniform per-core clocks
   (zero at the start of a run, [tmax + barrier_cost] for every core
   after each barrier), so the event interleaving inside the phase —
   and therefore every statistic delta and the exit cache state — is
   translation-invariant in the absolute clock.  The engine hashes that
   tuple, and on a match replays the recorded per-core clock/busy
   deltas, per-instance hit/miss deltas, memory-access delta and exit
   cache contents instead of re-simulating.  Replay restores the exact
   exit state, so a memoized run is byte-identical to an unmemoized
   one; tuning sweeps, which re-evaluate near-identical mappings
   constantly (every mapping shares the serial nests, many share whole
   schedules), are the intended consumer.

   Keys are word-at-a-time FNV-1a hashes over the tuple above.  Like
   [Tune.Cache], a primary hash indexes the table and an independent
   secondary hash guards against collisions: a primary match with a
   different check hash is treated as a miss (never a wrong replay).
   The table is in-process only and shared across domains behind a
   mutex — [Parallel.map]-driven searches hit entries recorded by
   sibling domains. *)

module Tel = Ctam_telemetry

(* FNV-1a folded a word at a time over OCaml's native 63-bit integers
   (the multiply wraps mod 2^63).  The two seeds start from different
   bases and the second stream rotates before mixing, so the pair
   behaves as independent hashes. *)
let prime = 0x100000001b3
let seed : int * int = (0xcbf29ce4, 0x84222325)

let mix (h1, h2) v =
  let r2 = (h2 lsl 7) lor (h2 lsr 55) in
  ((h1 lxor v) * prime, (r2 lxor (v + 0x9e3779b9)) * prime)

let mix_array h a = Array.fold_left mix h a

type entry = {
  clock_delta : int array;       (* per-core clock advance over the phase *)
  busy_delta : int array;
  exit_lines : int array array;  (* Hierarchy.snapshot at phase exit *)
  hits_delta : int array;        (* per cache instance *)
  misses_delta : int array;
  mem_delta : int;
  accesses : int;                (* accesses issued by the phase *)
  check : int;                   (* secondary hash of the key tuple *)
}

type t = {
  table : (int, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let tel_hits =
  Tel.Metrics.Counter.v ~help:"Phase-memo lookups that replayed a cached phase"
    "ctam_memo_hits_total"

let tel_misses =
  Tel.Metrics.Counter.v ~help:"Phase-memo lookups that fell through to simulation"
    "ctam_memo_misses_total"

let tel_stores =
  Tel.Metrics.Counter.v ~help:"Phase outcomes recorded in the memo table"
    "ctam_memo_stores_total"

let tel_replayed =
  Tel.Metrics.Counter.v
    ~help:"Accesses accounted by memo replay instead of simulation"
    "ctam_memo_replayed_accesses_total"

let create () =
  { table = Hashtbl.create 64; lock = Mutex.create (); hits = 0; misses = 0 }

let find t ~key ~check =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some e when e.check = check ->
        t.hits <- t.hits + 1;
        Some e
    | _ ->
        t.misses <- t.misses + 1;
        None
  in
  Mutex.unlock t.lock;
  if Tel.Metrics.enabled () then begin
    match r with
    | Some e ->
        Tel.Metrics.Counter.inc (Tel.Metrics.Counter.series tel_hits []);
        Tel.Metrics.Counter.inc ~by:e.accesses
          (Tel.Metrics.Counter.series tel_replayed [])
    | None -> Tel.Metrics.Counter.inc (Tel.Metrics.Counter.series tel_misses [])
  end;
  r

let store t ~key entry =
  Mutex.lock t.lock;
  (* First writer wins: a racing domain recorded the same phase. *)
  if not (Hashtbl.mem t.table key) then Hashtbl.replace t.table key entry;
  Mutex.unlock t.lock;
  if Tel.Metrics.enabled () then
    Tel.Metrics.Counter.inc (Tel.Metrics.Counter.series tel_stores [])

let hits t =
  Mutex.lock t.lock;
  let h = t.hits in
  Mutex.unlock t.lock;
  h

let misses t =
  Mutex.lock t.lock;
  let m = t.misses in
  Mutex.unlock t.lock;
  m

let size t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n
