(** Concrete probe sinks: counter matrices with per-group attribution,
    and reuse/set-conflict histograms split by sharing direction.

    Each sink is a mutable accumulator plus a {!Probe.t} view; attach
    with [Hierarchy.create ~probe:(Probe_sinks.Counters.probe c)] (or
    [Probe.seq] to attach several) and read the accumulators after
    {!Engine.run}. *)

(** {1 Per-core × per-level counters, per-group attribution} *)

module Counters : sig
  type t

  (** Per-group totals, charged to the group whose iterations issued
      the access (see [segments] below). *)
  type group_stat = {
    g_accesses : int;        (** accesses issued while the group ran *)
    g_misses : int array;    (** per level, aligned with {!levels} *)
    g_mem : int;             (** accesses that reached memory *)
  }

  (** [create ?segments topo] builds a sink for machines shaped like
      [topo].  [segments], when given, must align with the engine's
      phase list: for each phase, for each core, the sorted
      [(start_access_index, group_id)] boundaries of the iteration
      groups concatenated into that core's stream (see
      [Mapping.segments]); misses are then charged to the group that
      issued them. *)
  val create :
    ?segments:(int * int) array array list -> Ctam_arch.Topology.t -> t

  val probe : t -> Probe.t

  (** Cache levels observed, ascending (the topology's levels). *)
  val levels : t -> int list

  val hits : t -> core:int -> level:int -> int
  val misses : t -> core:int -> level:int -> int

  (** Accesses issued by the core (engine [on_access] events). *)
  val accesses : t -> core:int -> int

  val writes : t -> core:int -> int

  (** Accesses by this core that were served by memory. *)
  val mem : t -> core:int -> int

  (** Summed over cores — equals [Stats.per_level] of the same run. *)
  val per_level_totals : t -> Stats.level_stats list

  val total_accesses : t -> int
  val mem_total : t -> int
  val evictions : t -> core:int -> level:int -> int
  val invalidations_total : t -> int
  val barriers : t -> int
  val phases : t -> int

  (** Groups seen (id as given in [segments]), ascending. *)
  val group_stats : t -> (int * group_stat) list
end

(** {1 Reuse-distance and set-conflict histograms}

    Classifies every non-cold access by who touched the line last:
    the same core ({e vertical} reuse, served by private caches), a
    different core sharing an on-chip cache ({e horizontal} reuse, the
    paper's α direction), or a core of another socket (reachable only
    through memory). *)

module Reuse_split : sig
  type t

  val create : Ctam_arch.Topology.t -> t
  val probe : t -> Probe.t

  (** Reuse by the same core — the β (vertical) direction. *)
  val vertical : t -> Reuse.histogram

  (** Reuse across cores that share an on-chip cache — α (horizontal). *)
  val horizontal : t -> Reuse.histogram

  (** Reuse across sockets (no shared cache). *)
  val cross : t -> Reuse.histogram

  (** First-touch accesses (in no histogram). *)
  val cold : t -> int

  val total : t -> int

  (** [(level, per_set_misses)] ascending by level: how misses at each
      level distribute over cache sets (summed across same-level
      instances), exposing set conflicts. *)
  val conflicts : t -> (int * int array) list
end
