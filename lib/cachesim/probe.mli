(** Pluggable observability probes for the cache simulator.

    A probe is a record of callbacks the {!Hierarchy} and {!Engine}
    invoke as simulation events happen: access issue, per-level
    hit/miss, fills' evictions, coherence invalidations, memory
    accesses, phase boundaries and barriers.  The default {!null} probe
    does nothing and is recognised physically ([is_null]) so the hot
    paths skip event construction entirely — simulated cycle counts are
    identical with or without an attached probe, since probes only
    observe.

    Callbacks use labelled immediate arguments rather than an event
    variant so that firing an event allocates nothing. *)

type t = {
  on_access : core:int -> addr:int -> line:int -> write:bool -> unit;
      (** the engine issued an access (before the hierarchy resolves it) *)
  on_level : core:int -> level:int -> set:int -> line:int -> hit:bool -> unit;
      (** one cache probe on the core's path; [set] is the set index the
          line maps to in that cache *)
  on_mem : core:int -> line:int -> unit;
      (** the access missed every level and went to memory *)
  on_evict : core:int -> level:int -> line:int -> unit;
      (** a fill on [core]'s path evicted [line] from its level-[level]
          cache *)
  on_invalidate : core:int -> level:int -> line:int -> unit;
      (** coherence: a write by [core] invalidated [line] in a cache not
          on its path *)
  on_retire : core:int -> cycles:int -> unit;
      (** the engine finished charging the access: [cycles] is [core]'s
          updated local clock (issue cost + resolved latency included).
          Fired after the hierarchy events of the same access, so a
          timeline sink can place every event of the access between the
          core's previous clock and [cycles]. *)
  on_phase_start : phase:int -> unit;
  on_phase_end : phase:int -> cycles:int -> unit;
      (** [cycles] is the max core clock when the phase drained *)
  on_barrier_enter : phase:int -> cycles:int -> unit;
      (** all cores reached the barrier after [phase]; [cycles] is the
          synchronised clock before the barrier cost is charged *)
  on_barrier_exit : phase:int -> cycles:int -> unit;
      (** cores resume at [cycles] (enter time + barrier cost) *)
}

(** The no-op probe; the default everywhere a probe is accepted. *)
val null : t

(** [is_null p] is physical equality with {!null} — lets hot loops skip
    callback dispatch altogether for the default probe. *)
val is_null : t -> bool

(** [seq ps] fans every event out to each probe in [ps], in order.
    [seq []] is {!null}; [seq [p]] is [p]. *)
val seq : t list -> t
