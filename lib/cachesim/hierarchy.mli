(** A simulated instance of a cache topology.

    Instantiates one {!Setassoc} per cache in a {!Ctam_arch.Topology},
    maintains inclusive fills along each core's path, and optionally a
    write-invalidate coherence action across same-level peers. *)

type t

(** [create ?coherence ?probe ?sample_sets topo].  When [coherence] is
    true (default), a write invalidates the line in every cache that is
    not on the writing core's path, modelling an invalidation-based
    protocol.  [probe] (default {!Probe.null}) observes per-level
    hits/misses, evictions, invalidations and memory accesses; the
    engine fires its issue/phase/barrier events through the same
    probe.

    [sample_sets] (default 1 = exact) enables constant-bit set
    sampling: the engine simulates only lines with
    [line mod sample_sets = 0] and {!Engine} extrapolates the
    statistics by the factor.  The factor must be a power of two that
    divides every cache's set count — then the sampled sets receive
    exactly the line population an exact run would give them (the
    sampled lines land on the sets congruent to 0 mod the factor and
    on nothing else), so sampling error comes only from the estimated
    latencies of skipped accesses and cross-set interleaving shifts.
    @raise Invalid_argument otherwise. *)
val create :
  ?coherence:bool ->
  ?probe:Probe.t ->
  ?sample_sets:int ->
  Ctam_arch.Topology.t ->
  t

val topology : t -> Ctam_arch.Topology.t

(** The attached probe ({!Probe.null} when none). *)
val probe : t -> Probe.t

(** Replace the attached probe (e.g. to observe one run of a shared
    hierarchy). *)
val set_probe : t -> Probe.t -> unit

(** [access t ~core ~addr ~write] simulates one byte-address access and
    returns its latency in cycles: the sum of the latencies of every
    cache probed, plus memory latency if all levels miss.  Fills the
    line into every cache on the core's path.
    @raise Invalid_argument if [core] is out of range. *)
val access : t -> core:int -> addr:int -> write:bool -> int

(** Latency of a hit in the given core's level-[l] cache, including the
    probe costs of the levels below; used by analytic cost models.
    [None] if the core has no level-[l] cache. *)
val hit_latency : t -> core:int -> level:int -> int option

(** Latency of missing everywhere (probes on the path + memory). *)
val miss_latency : t -> core:int -> int

(** Snapshot of per-level hit/miss counters (cycles fields are zero;
    the engine fills them in). *)
val level_stats : t -> Stats.level_stats list

(** Number of accesses that reached memory. *)
val mem_accesses : t -> int

(** Largest number of sets of any cache at [level] (0 when the level
    does not exist) — sizes the set-conflict histograms. *)
val sets_at : t -> level:int -> int

(** Reset contents and counters. *)
val clear : t -> unit

(** Line size used for address-to-line mapping (caches of one machine
    share it). *)
val line_size : t -> int

(** [line_of t addr] is the line number of a byte address — the
    quantity set sampling filters on. *)
val line_of : t -> int -> int

(** Sampling factor passed to {!create} (1 = exact). *)
val sample_factor : t -> int

(** Fingerprint of (topology geometry, latencies, replacement
    policies, core paths, coherence, sampling factor) — a component of
    the phase-memo key. *)
val config_hash : t -> int

(** Number of cache instances (the length of the arrays below). *)
val num_instances : t -> int

(** {2 Phase-memo state capture}

    The engine's per-phase memoization snapshots and restores raw
    cache contents and replays counter deltas; see {!Memo}. *)

(** Per-instance copies of the raw way arrays. *)
val snapshot : t -> int array array

(** Overwrite every instance's way array with a {!snapshot} image.
    Counters are untouched.
    @raise Invalid_argument on an image from a different hierarchy. *)
val restore : t -> int array array -> unit

(** Per-instance [(hits, misses)] counter snapshots. *)
val instance_counts : t -> int array * int array

(** Bump per-instance hit/miss counters and the memory-access counter
    by recorded deltas (memo replay).
    @raise Invalid_argument on length mismatch. *)
val bump_counts : t -> hits:int array -> misses:int array -> mem:int -> unit

(** Hash of all instances' current contents (the {!Memo} hash pair). *)
val state_hash : t -> int * int
