(** A set-associative cache with LRU replacement.

    Operates on line numbers (byte address / line size); the caller
    does the division.  Mutable, one instance per cache in the
    hierarchy.  Hit/miss counters are built in. *)

type t

(** [create ~sets ~assoc] builds an empty cache.
    @raise Invalid_argument on non-positive arguments. *)
val create : sets:int -> assoc:int -> t

val sets : t -> int
val assoc : t -> int

(** Number of lines the cache can hold. *)
val capacity_lines : t -> int

(** [set_of_line t line] is the set index [line] maps to — exposed so
    observability probes can attribute misses to sets (conflict
    histograms) without duplicating the mapping rule. *)
val set_of_line : t -> int -> int

(** [access t line] looks up [line]; on hit, promotes it to MRU and
    returns [true]; on miss returns [false] and does NOT insert (use
    {!insert} to model the fill). *)
val access : t -> int -> bool

(** [insert t line] fills [line] as MRU, evicting the LRU line of its
    set if full.  Returns the evicted line, if any. *)
val insert : t -> int -> int option

(** Pure lookup without LRU update or counter changes. *)
val contains : t -> int -> bool

(** [invalidate t line] drops [line] if present; returns whether it was
    present. *)
val invalidate : t -> int -> bool

val hits : t -> int
val misses : t -> int
val accesses : t -> int

(** Reset contents and counters. *)
val clear : t -> unit

(** Copy of the raw way array (ways MRU-first per set segment; -1 =
    empty) — the phase-memo state image. *)
val snapshot_lines : t -> int array

(** Overwrite the way array with a {!snapshot_lines} image.  Counters
    are untouched (memo replay bumps them separately via
    {!add_counts}).
    @raise Invalid_argument when the image has a different geometry. *)
val restore_lines : t -> int array -> unit

(** Bump the hit/miss counters by recorded deltas (memo replay). *)
val add_counts : t -> hits:int -> misses:int -> unit

(** Fold over the raw way array in storage order (state hashing). *)
val fold_lines : ('a -> int -> 'a) -> 'a -> t -> 'a

(** Lines currently resident (unordered). *)
val resident : t -> int list

val pp : t Fmt.t
