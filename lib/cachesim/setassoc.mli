(** A set-associative cache with a pluggable replacement policy.

    Operates on line numbers (byte address / line size); the caller
    does the division.  Mutable, one instance per cache in the
    hierarchy.  Hit/miss counters are built in.

    The default policy is true LRU — the seed engine's behavior, kept
    on its own code path (recency order IS the way order) so it is
    bit-identical to the pre-policy engine.  Every other policy keeps
    ways in physical order and packs its per-set replacement state
    into one int, mediated by {!POLICY}. *)

module Policy = Ctam_arch.Policy

(** The replacement-policy interface: per-set state packed in one int.
    Empty ways are filled lowest-index-first by {!insert}; [victim] is
    consulted only on a full set.  Exposed so the policy state
    machines can be property-tested directly. *)
module type POLICY = sig
  val name : string

  (** Packed state of one freshly-cleared set. *)
  val init : assoc:int -> set:int -> int

  (** State update on a hit at [way]. *)
  val on_hit : assoc:int -> state:int -> way:int -> int

  (** State update after filling [way] (an empty way or the victim). *)
  val on_fill : assoc:int -> state:int -> way:int -> int

  (** Way to evict from a full set, plus the updated state.
      [on_fill] still runs for the chosen way afterwards. *)
  val victim : assoc:int -> state:int -> int * int
end

module Fifo : POLICY
module Plru : POLICY
module Qlru : POLICY
module Mru : POLICY

(** The seeded-xorshift policy behind {!Policy.Random}. *)
val random_policy : seed:int -> (module POLICY)

type t

(** [create ?policy ~sets ~assoc ()] builds an empty cache
    ([policy] defaults to {!Policy.Lru}).
    @raise Invalid_argument on non-positive arguments, or when the
    policy's packed state cannot hold [assoc] ways (plru > 32,
    qlru > 31, mru/fifo > 62). *)
val create : ?policy:Policy.t -> sets:int -> assoc:int -> unit -> t

val sets : t -> int
val assoc : t -> int

(** The replacement policy this instance runs. *)
val policy : t -> Policy.t

(** Number of lines the cache can hold. *)
val capacity_lines : t -> int

(** [set_of_line t line] is the set index [line] maps to — exposed so
    observability probes can attribute misses to sets (conflict
    histograms) without duplicating the mapping rule. *)
val set_of_line : t -> int -> int

(** [access t line] looks up [line]; on hit, applies the policy's hit
    update (LRU: promote to MRU) and returns [true]; on miss returns
    [false] and does NOT insert (use {!insert} to model the fill). *)
val access : t -> int -> bool

(** [insert t line] fills [line] (LRU: as MRU), evicting the policy's
    victim if the set is full.  Returns the evicted line, if any. *)
val insert : t -> int -> int option

(** Pure lookup without policy-state update or counter changes. *)
val contains : t -> int -> bool

(** [invalidate t line] drops [line] if present; returns whether it was
    present. *)
val invalidate : t -> int -> bool

val hits : t -> int
val misses : t -> int
val accesses : t -> int

(** Reset contents, policy state and counters. *)
val clear : t -> unit

(** Copy of the raw state image — the phase-memo snapshot.  For LRU
    this is exactly the way array (ways MRU-first per set segment;
    -1 = empty), unchanged from the seed; for other policies the
    per-set packed policy state words are appended after the way
    array. *)
val snapshot_lines : t -> int array

(** Overwrite the way array (and policy state) with a
    {!snapshot_lines} image.  Counters are untouched (memo replay
    bumps them separately via {!add_counts}).
    @raise Invalid_argument when the image has a different geometry. *)
val restore_lines : t -> int array -> unit

(** Bump the hit/miss counters by recorded deltas (memo replay). *)
val add_counts : t -> hits:int -> misses:int -> unit

(** Fold over the raw state image in storage order (state hashing):
    the way array, then any policy state words. *)
val fold_lines : ('a -> int -> 'a) -> 'a -> t -> 'a

(** Lines currently resident (unordered). *)
val resident : t -> int list

val pp : t Fmt.t
