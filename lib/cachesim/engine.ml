type phase = int array array

let encode_access ~addr ~write = (addr * 2) + if write then 1 else 0
let decode_access e = (e / 2, e land 1 = 1)

type config = { issue_cost : int; barrier_cost : int }

let default_config = { issue_cost = 1; barrier_cost = 64 }

(* Self-telemetry: aggregates recorded once per run (never inside the
   per-access loop), so the null-probe fast path stays untouched and
   the simulated statistics are byte-identical with telemetry on, off,
   or absent — asserted by test_telemetry and the heap-vs-scan
   differential.  Retire throughput is derivable on scrape:
   accesses_total / run_seconds sum. *)
module Tel = Ctam_telemetry

let tel_runs =
  Tel.Metrics.Counter.v ~labels:[ "engine" ]
    ~help:"Simulator runs completed" "ctam_engine_runs_total"

let tel_accesses =
  Tel.Metrics.Counter.v ~labels:[ "engine" ]
    ~help:"Accesses simulated (issued to the hierarchy)"
    "ctam_engine_accesses_total"

let tel_cycles =
  Tel.Metrics.Counter.v ~labels:[ "engine" ]
    ~help:"Simulated cycles accumulated across runs"
    "ctam_engine_cycles_total"

let tel_seconds =
  Tel.Metrics.Histogram.v ~labels:[ "engine" ]
    ~help:"Wall-clock seconds of one engine run" "ctam_engine_run_seconds"

type tel_series = {
  ts_runs : Tel.Metrics.Counter.series;
  ts_accesses : Tel.Metrics.Counter.series;
  ts_cycles : Tel.Metrics.Counter.series;
  ts_seconds : Tel.Metrics.Histogram.series;
}

let tel_series engine =
  {
    ts_runs = Tel.Metrics.Counter.series tel_runs [ engine ];
    ts_accesses = Tel.Metrics.Counter.series tel_accesses [ engine ];
    ts_cycles = Tel.Metrics.Counter.series tel_cycles [ engine ];
    ts_seconds = Tel.Metrics.Histogram.series tel_seconds [ engine ];
  }

let tel_heap = tel_series "heap"
let tel_scan = tel_series "scan"

let tel_record ts ~t_start ~accesses (stats : Stats.t) =
  Tel.Metrics.Counter.inc ts.ts_runs;
  Tel.Metrics.Counter.inc ~by:accesses ts.ts_accesses;
  Tel.Metrics.Counter.inc ~by:(max 0 stats.Stats.cycles) ts.ts_cycles;
  Tel.Metrics.Histogram.observe ts.ts_seconds (Tel.Profile.now () -. t_start)

(* Shared prologue/epilogue of both engine variants. *)

let check_phases n phases =
  List.iter
    (fun (p : phase) ->
      if Array.length p <> n then
        invalid_arg "Engine.run: phase core-count mismatch")
    phases

let finish h clock busy total_accesses nphases =
  {
    Stats.per_level = Hierarchy.level_stats h;
    mem_accesses = Hierarchy.mem_accesses h;
    total_accesses;
    cycles = Array.fold_left max 0 clock;
    core_cycles = busy;
    barriers = max 0 (nphases - 1);
  }

let run ?(config = default_config) ?max_cycles h phases =
  let tel = Tel.Metrics.enabled () in
  let t_start = if tel then Tel.Profile.now () else 0. in
  let topo = Hierarchy.topology h in
  let n = topo.Ctam_arch.Topology.num_cores in
  check_phases n phases;
  Hierarchy.clear h;
  let probe = Hierarchy.probe h in
  let observed = not (Probe.is_null probe) in
  let line_size = Hierarchy.line_size h in
  (* [max_int] sentinel keeps the cap a single integer compare on the
     unobserved fast path; a core clock can never reach it. *)
  let cap = match max_cycles with Some c -> c | None -> max_int in
  let capped = ref false in
  let clock = Array.make n 0 in
  let busy = Array.make n 0 in
  let total_accesses = ref 0 in
  let nphases = List.length phases in
  (* Index min-heap over the cores that still have work, keyed by
     (clock, core id) lexicographically.  The reference scan picks the
     smallest clock and breaks ties toward the lowest core id; the
     lexicographic key makes the heap minimum that exact core, so the
     event order — and every derived statistic — is bit-identical
     (proved by the differential tests in test_cachesim). *)
  let heap = Array.make (max 1 n) 0 in
  let size = ref 0 in
  let less a b = clock.(a) < clock.(b) || (clock.(a) = clock.(b) && a < b) in
  let sift_down i0 =
    let i = ref i0 in
    let stop = ref false in
    while not !stop do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < !size && less heap.(l) heap.(!s) then s := l;
      if r < !size && less heap.(r) heap.(!s) then s := r;
      if !s = !i then stop := true
      else begin
        let tmp = heap.(!i) in
        heap.(!i) <- heap.(!s);
        heap.(!s) <- tmp;
        i := !s
      end
    done
  in
  List.iteri
    (fun pi streams ->
      if !capped then ()
      else begin
      if observed then probe.Probe.on_phase_start ~phase:pi;
      let pos = Array.make n 0 in
      (* Event-driven interleaving: the core with the smallest local
         clock (among cores with work left) issues the next access. *)
      size := 0;
      for c = 0 to n - 1 do
        if Array.length streams.(c) > 0 then begin
          heap.(!size) <- c;
          incr size
        end
      done;
      for i = (!size / 2) - 1 downto 0 do
        sift_down i
      done;
      while !size > 0 do
        let c = heap.(0) in
        (* The heap minimum is the globally smallest clock, so once it
           reaches the cap every remaining access lies past the cap and
           the rest of the run can be cut. *)
        if clock.(c) >= cap then begin
          capped := true;
          size := 0
        end
        else begin
          let s = streams.(c) in
          let addr, write = decode_access s.(pos.(c)) in
          pos.(c) <- pos.(c) + 1;
          incr total_accesses;
          if observed then
            probe.Probe.on_access ~core:c ~addr ~line:(addr / line_size) ~write;
          let lat = Hierarchy.access h ~core:c ~addr ~write in
          let cost = config.issue_cost + lat in
          clock.(c) <- clock.(c) + cost;
          busy.(c) <- busy.(c) + cost;
          if observed then probe.Probe.on_retire ~core:c ~cycles:clock.(c);
          if pos.(c) >= Array.length s then begin
            decr size;
            heap.(0) <- heap.(!size)
          end;
          (* The root's key only grew (or was replaced): restore the
             heap by sifting down. *)
          sift_down 0
        end
      done;
      if !capped then ()
      else begin
        if observed then
          probe.Probe.on_phase_end ~phase:pi
            ~cycles:(Array.fold_left max 0 clock);
        (* Barrier after every phase but the last. *)
        if pi < nphases - 1 then begin
          let tmax = Array.fold_left max 0 clock in
          if observed then probe.Probe.on_barrier_enter ~phase:pi ~cycles:tmax;
          for c = 0 to n - 1 do
            clock.(c) <- tmax + config.barrier_cost
          done;
          if observed then
            probe.Probe.on_barrier_exit ~phase:pi
              ~cycles:(tmax + config.barrier_cost)
        end
      end
      end)
    phases;
  let stats = finish h clock busy !total_accesses nphases in
  if tel then tel_record tel_heap ~t_start ~accesses:!total_accesses stats;
  stats

(* The seed implementation: an O(num_cores) linear scan for the
   minimum-clock core before every access.  Kept as the reference path
   for the differential tests and the heap-vs-scan micro-benchmark;
   not used by any driver. *)
let run_reference ?(config = default_config) h phases =
  let tel = Tel.Metrics.enabled () in
  let t_start = if tel then Tel.Profile.now () else 0. in
  let topo = Hierarchy.topology h in
  let n = topo.Ctam_arch.Topology.num_cores in
  check_phases n phases;
  Hierarchy.clear h;
  let probe = Hierarchy.probe h in
  let observed = not (Probe.is_null probe) in
  let line_size = Hierarchy.line_size h in
  let clock = Array.make n 0 in
  let busy = Array.make n 0 in
  let total_accesses = ref 0 in
  let nphases = List.length phases in
  List.iteri
    (fun pi streams ->
      if observed then probe.Probe.on_phase_start ~phase:pi;
      let pos = Array.make n 0 in
      let remaining = ref 0 in
      Array.iter (fun s -> remaining := !remaining + Array.length s) streams;
      total_accesses := !total_accesses + !remaining;
      while !remaining > 0 do
        let best = ref (-1) in
        for c = 0 to n - 1 do
          if
            pos.(c) < Array.length streams.(c)
            && (!best < 0 || clock.(c) < clock.(!best))
          then best := c
        done;
        let c = !best in
        let addr, write = decode_access streams.(c).(pos.(c)) in
        pos.(c) <- pos.(c) + 1;
        if observed then
          probe.Probe.on_access ~core:c ~addr ~line:(addr / line_size) ~write;
        let lat = Hierarchy.access h ~core:c ~addr ~write in
        let cost = config.issue_cost + lat in
        clock.(c) <- clock.(c) + cost;
        busy.(c) <- busy.(c) + cost;
        if observed then probe.Probe.on_retire ~core:c ~cycles:clock.(c);
        decr remaining
      done;
      if observed then
        probe.Probe.on_phase_end ~phase:pi
          ~cycles:(Array.fold_left max 0 clock);
      if pi < nphases - 1 then begin
        let tmax = Array.fold_left max 0 clock in
        if observed then probe.Probe.on_barrier_enter ~phase:pi ~cycles:tmax;
        for c = 0 to n - 1 do
          clock.(c) <- tmax + config.barrier_cost
        done;
        if observed then
          probe.Probe.on_barrier_exit ~phase:pi
            ~cycles:(tmax + config.barrier_cost)
      end)
    phases;
  let stats = finish h clock busy !total_accesses nphases in
  if tel then tel_record tel_scan ~t_start ~accesses:!total_accesses stats;
  stats

let run_serial ?config h stream =
  let topo = Hierarchy.topology h in
  let n = topo.Ctam_arch.Topology.num_cores in
  let phase = Array.make n [||] in
  phase.(0) <- stream;
  run ?config h [ phase ]
