type phase = int array array

let encode_access ~addr ~write = (addr * 2) + if write then 1 else 0
let decode_access e = (e / 2, e land 1 = 1)

type config = { issue_cost : int; barrier_cost : int }

let default_config = { issue_cost = 1; barrier_cost = 64 }

let run ?(config = default_config) h phases =
  let topo = Hierarchy.topology h in
  let n = topo.Ctam_arch.Topology.num_cores in
  List.iter
    (fun (p : phase) ->
      if Array.length p <> n then
        invalid_arg "Engine.run: phase core-count mismatch")
    phases;
  Hierarchy.clear h;
  let probe = Hierarchy.probe h in
  let observed = not (Probe.is_null probe) in
  let line_size = Hierarchy.line_size h in
  let clock = Array.make n 0 in
  let busy = Array.make n 0 in
  let total_accesses = ref 0 in
  let nphases = List.length phases in
  List.iteri
    (fun pi streams ->
      if observed then probe.Probe.on_phase_start ~phase:pi;
      let pos = Array.make n 0 in
      (* Event-driven interleaving: the core with the smallest local
         clock (among cores with work left) issues the next access. *)
      let remaining = ref 0 in
      Array.iter (fun s -> remaining := !remaining + Array.length s) streams;
      total_accesses := !total_accesses + !remaining;
      while !remaining > 0 do
        let best = ref (-1) in
        for c = 0 to n - 1 do
          if
            pos.(c) < Array.length streams.(c)
            && (!best < 0 || clock.(c) < clock.(!best))
          then best := c
        done;
        let c = !best in
        let addr, write = decode_access streams.(c).(pos.(c)) in
        pos.(c) <- pos.(c) + 1;
        if observed then
          probe.Probe.on_access ~core:c ~addr ~line:(addr / line_size) ~write;
        let lat = Hierarchy.access h ~core:c ~addr ~write in
        let cost = config.issue_cost + lat in
        clock.(c) <- clock.(c) + cost;
        busy.(c) <- busy.(c) + cost;
        decr remaining
      done;
      if observed then
        probe.Probe.on_phase_end ~phase:pi
          ~cycles:(Array.fold_left max 0 clock);
      (* Barrier after every phase but the last. *)
      if pi < nphases - 1 then begin
        let tmax = Array.fold_left max 0 clock in
        if observed then probe.Probe.on_barrier_enter ~phase:pi ~cycles:tmax;
        for c = 0 to n - 1 do
          clock.(c) <- tmax + config.barrier_cost
        done;
        if observed then
          probe.Probe.on_barrier_exit ~phase:pi
            ~cycles:(tmax + config.barrier_cost)
      end)
    phases;
  {
    Stats.per_level = Hierarchy.level_stats h;
    mem_accesses = Hierarchy.mem_accesses h;
    total_accesses = !total_accesses;
    cycles = Array.fold_left max 0 clock;
    core_cycles = busy;
    barriers = max 0 (nphases - 1);
  }

let run_serial ?config h stream =
  let topo = Hierarchy.topology h in
  let n = topo.Ctam_arch.Topology.num_cores in
  let phase = Array.make n [||] in
  phase.(0) <- stream;
  run ?config h [ phase ]
