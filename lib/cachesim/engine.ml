type phase = int array array

let encode_access ~addr ~write = (addr * 2) + if write then 1 else 0
let decode_access e = (e / 2, e land 1 = 1)

type config = { issue_cost : int; barrier_cost : int }

let default_config = { issue_cost = 1; barrier_cost = 64 }

(* Lazy access streams (PR 7): a cursor yields encoded accesses on
   demand, so generator-backed traces never materialize.  [length] is
   known up front (iteration domains have closed-form cardinalities),
   which keeps the heap scheduling identical to the array path.
   Convention: a consumer calls [reset] before its first [pull]; the
   engine resets every cursor at the start of each phase, so one
   compiled stream can be run many times (tuning sweeps). *)
type cursor = {
  length : int;
  pull : unit -> int;
  reset : unit -> unit;
  skip_to_sample : (shift:int -> mask:int -> skipped:int ref -> int) option;
}
(* [skip_to_sample] is the sampled fast path: consume accesses while
   [(e lsr shift) land mask <> 0], counting each into [skipped], and
   return the first access that passes the filter (consumed) or -1 at
   end of stream.  Semantically it is exactly the pull loop the engine
   would otherwise run, but implemented where the generator's chunk
   buffer is local, so a skipped access costs an array read and a mask
   test instead of a closure call.  [None] falls back to [pull]. *)

type stream = Dense of int array | Gen of cursor
type stream_phase = stream array

let dense a = Dense a
let stream_length = function Dense a -> Array.length a | Gen c -> c.length

let force_stream = function
  | Dense a -> a
  | Gen c ->
      c.reset ();
      let n = c.length in
      let out = Array.make n 0 in
      (* Explicit loop: pulls are effectful and must run in index
         order ([Array.init] evaluation order is unspecified). *)
      for i = 0 to n - 1 do
        out.(i) <- c.pull ()
      done;
      out

let of_phase (p : phase) : stream_phase = Array.map dense p
let force_phase (sp : stream_phase) : phase = Array.map force_stream sp

let stream_concat streams =
  match streams with
  | [ s ] -> s
  | _ ->
  let all_dense =
    List.for_all (function Dense _ -> true | Gen _ -> false) streams
  in
  if all_dense then
    Dense
      (Array.concat
         (List.map (function Dense a -> a | Gen _ -> assert false) streams))
  else begin
    let parts = Array.of_list streams in
    let total = Array.fold_left (fun acc s -> acc + stream_length s) 0 parts in
    let idx = ref 0 in
    let pos = ref 0 in
    let reset () =
      idx := 0;
      pos := 0;
      Array.iter (function Gen c -> c.reset () | Dense _ -> ()) parts
    in
    let pull () =
      let rec go () =
        if !idx >= Array.length parts then
          invalid_arg "Engine.stream_concat: pull past end"
        else
          let s = parts.(!idx) in
          if !pos >= stream_length s then begin
            incr idx;
            pos := 0;
            go ()
          end
          else begin
            let v =
              match s with Dense a -> a.(!pos) | Gen c -> c.pull ()
            in
            incr pos;
            v
          end
      in
      go ()
    in
    (* The sampled fast path must survive concatenation (mapped streams
       are per-group cursors chained per core), so delegate part by
       part: dense parts scan in place, generator parts use their own
       fast path when they have one and fall back to pulls when not. *)
    let skip_to_sample ~shift ~mask ~skipped =
      let found = ref (-1) in
      let finished = ref false in
      while !found < 0 && not !finished do
        if !idx >= Array.length parts then finished := true
        else begin
          let s = parts.(!idx) in
          let slen = stream_length s in
          if !pos >= slen then begin
            incr idx;
            pos := 0
          end
          else
            match s with
            | Dense a ->
                let i = ref !pos in
                while !found < 0 && !i < slen do
                  let e = a.(!i) in
                  incr i;
                  if e lsr shift land mask = 0 then found := e
                  else incr skipped
                done;
                pos := !i
            | Gen c -> (
                match c.skip_to_sample with
                | Some sk ->
                    let n0 = !skipped in
                    let f = sk ~shift ~mask ~skipped in
                    pos :=
                      !pos + (!skipped - n0) + (if f >= 0 then 1 else 0);
                    if f >= 0 then found := f
                | None ->
                    let i = ref !pos in
                    while !found < 0 && !i < slen do
                      let e = c.pull () in
                      incr i;
                      if e lsr shift land mask = 0 then found := e
                      else incr skipped
                    done;
                    pos := !i)
        end
      done;
      !found
    in
    Gen { length = total; pull; reset; skip_to_sample = Some skip_to_sample }
  end

(* Self-telemetry: aggregates recorded once per run (never inside the
   per-access loop), so the null-probe fast path stays untouched and
   the simulated statistics are byte-identical with telemetry on, off,
   or absent — asserted by test_telemetry and the heap-vs-scan
   differential.  Retire throughput is derivable on scrape:
   accesses_total / run_seconds sum. *)
module Tel = Ctam_telemetry

let tel_runs =
  Tel.Metrics.Counter.v ~labels:[ "engine" ]
    ~help:"Simulator runs completed" "ctam_engine_runs_total"

let tel_accesses =
  Tel.Metrics.Counter.v ~labels:[ "engine" ]
    ~help:"Accesses simulated (issued to the hierarchy)"
    "ctam_engine_accesses_total"

let tel_cycles =
  Tel.Metrics.Counter.v ~labels:[ "engine" ]
    ~help:"Simulated cycles accumulated across runs"
    "ctam_engine_cycles_total"

let tel_seconds =
  Tel.Metrics.Histogram.v ~labels:[ "engine" ]
    ~help:"Wall-clock seconds of one engine run" "ctam_engine_run_seconds"

let tel_sampled_runs =
  Tel.Metrics.Counter.v ~labels:[ "factor" ]
    ~help:"Set-sampled simulator runs completed"
    "ctam_engine_sampled_runs_total"

let tel_sampled_accesses =
  Tel.Metrics.Counter.v ~labels:[ "factor" ]
    ~help:"Accesses simulated through sampled sets"
    "ctam_engine_sampled_accesses_total"

let tel_skipped_accesses =
  Tel.Metrics.Counter.v ~labels:[ "factor" ]
    ~help:"Accesses skipped by set sampling (latency estimated)"
    "ctam_engine_skipped_accesses_total"

type tel_series = {
  ts_runs : Tel.Metrics.Counter.series;
  ts_accesses : Tel.Metrics.Counter.series;
  ts_cycles : Tel.Metrics.Counter.series;
  ts_seconds : Tel.Metrics.Histogram.series;
}

let tel_series engine =
  {
    ts_runs = Tel.Metrics.Counter.series tel_runs [ engine ];
    ts_accesses = Tel.Metrics.Counter.series tel_accesses [ engine ];
    ts_cycles = Tel.Metrics.Counter.series tel_cycles [ engine ];
    ts_seconds = Tel.Metrics.Histogram.series tel_seconds [ engine ];
  }

let tel_heap = tel_series "heap"
let tel_scan = tel_series "scan"

let tel_record ts ~t_start ~accesses (stats : Stats.t) =
  Tel.Metrics.Counter.inc ts.ts_runs;
  Tel.Metrics.Counter.inc ~by:accesses ts.ts_accesses;
  Tel.Metrics.Counter.inc ~by:(max 0 stats.Stats.cycles) ts.ts_cycles;
  Tel.Metrics.Histogram.observe ts.ts_seconds (Tel.Profile.now () -. t_start)

let tel_record_sampled ~factor ~sampled ~skipped =
  let f = [ string_of_int factor ] in
  Tel.Metrics.Counter.inc (Tel.Metrics.Counter.series tel_sampled_runs f);
  Tel.Metrics.Counter.inc ~by:sampled
    (Tel.Metrics.Counter.series tel_sampled_accesses f);
  Tel.Metrics.Counter.inc ~by:skipped
    (Tel.Metrics.Counter.series tel_skipped_accesses f)

(* Shared prologue/epilogue of the engine variants. *)

let check_stream_phases n phases =
  List.iter
    (fun (p : stream_phase) ->
      if Array.length p <> n then
        invalid_arg "Engine.run: phase core-count mismatch")
    phases

(* When the hierarchy samples sets, only lines with
   [line mod factor = 0] touched the caches: the per-level hit/miss
   counters and the memory-access count describe 1/factor of the line
   population, so they extrapolate by the factor.  Cycle counters need
   no scaling — skipped accesses were charged an estimated latency as
   they were issued. *)
let finish h clock busy total_accesses nphases =
  let factor = Hierarchy.sample_factor h in
  let per_level = Hierarchy.level_stats h in
  let per_level =
    if factor = 1 then per_level
    else
      List.map
        (fun ls ->
          {
            ls with
            Stats.hits = ls.Stats.hits * factor;
            misses = ls.Stats.misses * factor;
          })
        per_level
  in
  {
    Stats.per_level;
    mem_accesses = Hierarchy.mem_accesses h * factor;
    total_accesses;
    cycles = Array.fold_left max 0 clock;
    core_cycles = busy;
    barriers = max 0 (nphases - 1);
  }

(* The engine proper: event-driven interleaving over lazy or dense
   per-core streams, with optional set sampling (driven by the
   hierarchy's [sample_factor]) and optional per-phase memoization. *)
let run_streams ?(config = default_config) ?max_cycles ?memo h
    (phases : stream_phase list) =
  let tel = Tel.Metrics.enabled () in
  let t_start = if tel then Tel.Profile.now () else 0. in
  let topo = Hierarchy.topology h in
  let n = topo.Ctam_arch.Topology.num_cores in
  check_stream_phases n phases;
  Hierarchy.clear h;
  let probe = Hierarchy.probe h in
  let observed = not (Probe.is_null probe) in
  let line_size = Hierarchy.line_size h in
  (* Power-of-two line size as a shift (the common case); -1 disables
     the shift-based skip batching below. *)
  let line_shift =
    let rec go s =
      if 1 lsl s = line_size then s
      else if 1 lsl s > line_size || s > 60 then -1
      else go (s + 1)
    in
    go 0
  in
  let factor = Hierarchy.sample_factor h in
  let sampling = factor > 1 in
  let sample_mask = factor - 1 in
  (* [max_int] sentinel keeps the cap a single integer compare on the
     unobserved fast path; a core clock can never reach it. *)
  let cap = match max_cycles with Some c -> c | None -> max_int in
  let capped = ref false in
  (* Memoization requires phase purity: no probe (its event stream is a
     side effect replay cannot reproduce) and no cap (a capped phase's
     deltas describe a prefix).  Phase-entry clocks are always uniform
     (zero initially, [tmax + barrier_cost] after each barrier), so
     deltas are translation-invariant. *)
  let memo_active =
    (match memo with Some _ -> true | None -> false)
    && (not observed) && cap = max_int
  in
  let clock = Array.make n 0 in
  let busy = Array.make n 0 in
  let total_accesses = ref 0 in
  let nphases = List.length phases in
  let sampled_count = ref 0 in
  let skipped_count = ref 0 in
  (* Per-core running mean of observed latency estimates the cost of
     skipped accesses; fresh per phase (keeps phases pure for the
     memo), defaulting to the core's miss latency until a sampled
     access is seen. *)
  let lat_sum = Array.make n 0 in
  let lat_cnt = Array.make n 0 in
  let miss_lat =
    if sampling then Array.init n (fun c -> Hierarchy.miss_latency h ~core:c)
    else [||]
  in
  (* Index min-heap over the cores that still have work, keyed by
     (clock, core id) lexicographically.  The reference scan picks the
     smallest clock and breaks ties toward the lowest core id; the
     lexicographic key makes the heap minimum that exact core, so the
     event order — and every derived statistic — is bit-identical
     (proved by the differential tests in test_cachesim). *)
  let heap = Array.make (max 1 n) 0 in
  let size = ref 0 in
  let less a b = clock.(a) < clock.(b) || (clock.(a) = clock.(b) && a < b) in
  let sift_down i0 =
    let i = ref i0 in
    let stop = ref false in
    while not !stop do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < !size && less heap.(l) heap.(!s) then s := l;
      if r < !size && less heap.(r) heap.(!s) then s := r;
      if !s = !i then stop := true
      else begin
        let tmp = heap.(!i) in
        heap.(!i) <- heap.(!s);
        heap.(!s) <- tmp;
        i := !s
      end
    done
  in
  List.iteri
    (fun pi streams ->
      if !capped then ()
      else begin
        (* Phase key: hierarchy configuration, engine costs, entry
           cache state, and every stream's length and contents.  A
           dense stream and the cursor that would generate it mix the
           same word sequence, so representation does not split the
           memo. *)
        let entry_key =
          if memo_active then begin
            let hp = ref (Memo.mix Memo.seed (Hierarchy.config_hash h)) in
            hp := Memo.mix !hp config.issue_cost;
            hp := Memo.mix !hp config.barrier_cost;
            let sh1, sh2 = Hierarchy.state_hash h in
            hp := Memo.mix (Memo.mix !hp sh1) sh2;
            Array.iter
              (fun s ->
                hp := Memo.mix !hp (stream_length s);
                match s with
                | Dense a -> hp := Memo.mix_array !hp a
                | Gen c ->
                    c.reset ();
                    for _ = 1 to c.length do
                      hp := Memo.mix !hp (c.pull ())
                    done)
              streams;
            Some !hp
          end
          else None
        in
        let replayed =
          match (entry_key, memo) with
          | Some (k1, k2), Some m -> (
              match Memo.find m ~key:k1 ~check:k2 with
              | Some e ->
                  for c = 0 to n - 1 do
                    clock.(c) <- clock.(c) + e.Memo.clock_delta.(c);
                    busy.(c) <- busy.(c) + e.Memo.busy_delta.(c)
                  done;
                  Hierarchy.restore h e.Memo.exit_lines;
                  Hierarchy.bump_counts h ~hits:e.Memo.hits_delta
                    ~misses:e.Memo.misses_delta ~mem:e.Memo.mem_delta;
                  total_accesses := !total_accesses + e.Memo.accesses;
                  true
              | None -> false)
          | _ -> false
        in
        if not replayed then begin
          let base_clock = if memo_active then Array.copy clock else [||] in
          let base_busy = if memo_active then Array.copy busy else [||] in
          let hits0, misses0 =
            if memo_active then Hierarchy.instance_counts h else ([||], [||])
          in
          let mem0 = Hierarchy.mem_accesses h in
          let acc0 = !total_accesses in
          if sampling then begin
            Array.fill lat_sum 0 n 0;
            Array.fill lat_cnt 0 n 0
          end;
          if observed then probe.Probe.on_phase_start ~phase:pi;
          (* Skip batching (unobserved, uncapped sampled runs): a run
             of consecutive skipped accesses on one core touches no
             shared state — no cache, no probe — so it can be charged
             as a single heap event.  The next *sampled* access is
             buffered in [pending] and issued as its own event at the
             correct clock, which keeps the cross-core order of
             [Hierarchy.access] calls — and therefore every LRU
             decision and statistic — identical to the per-access
             path.  With a probe attached the per-access path runs
             instead, so [on_access] still fires per access in global
             clock order; with a cap, per-access keeps the cutoff
             point exact. *)
          let batch_skip =
            sampling && (not observed) && cap = max_int && line_shift >= 0
          in
          let pending = Array.make n (-1) in
          let pos = Array.make n 0 in
          let lens = Array.map stream_length streams in
          Array.iter
            (function Gen c -> c.reset () | Dense _ -> ())
            streams;
          (* Event-driven interleaving: the core with the smallest
             local clock (among cores with work left) issues the next
             access. *)
          size := 0;
          for c = 0 to n - 1 do
            if lens.(c) > 0 then begin
              heap.(!size) <- c;
              incr size
            end
          done;
          for i = (!size / 2) - 1 downto 0 do
            sift_down i
          done;
          while !size > 0 do
            let c = heap.(0) in
            (* The heap minimum is the globally smallest clock, so once
               it reaches the cap every remaining access lies past the
               cap and the rest of the run can be cut — without pulling
               another access from any generator. *)
            if clock.(c) >= cap then begin
              capped := true;
              size := 0
            end
            else if batch_skip then begin
              let cost =
                if pending.(c) >= 0 then begin
                  (* The sampled access buffered by the previous skip
                     batch, issued at its true clock. *)
                  let addr, write = decode_access pending.(c) in
                  pending.(c) <- -1;
                  incr sampled_count;
                  let lat = Hierarchy.access h ~core:c ~addr ~write in
                  lat_sum.(c) <- lat_sum.(c) + lat;
                  lat_cnt.(c) <- lat_cnt.(c) + 1;
                  config.issue_cost + lat
                end
                else begin
                  (* Pull the run of skipped accesses up to the next
                     sampled one.  The running-mean estimate cannot
                     change mid-run (only this core's sampled accesses
                     update it), so one batched charge equals the
                     per-access charges exactly. *)
                  let skipped = ref 0 in
                  let found = ref (-1) in
                  (* [e lsr (1 + shift)] is the line index of the
                     encoded access (strip the write bit, then the
                     offset bits) — no tuple, no call, per access. *)
                  (match streams.(c) with
                  | Dense a ->
                      let len = lens.(c) in
                      let i = ref pos.(c) in
                      while !found < 0 && !i < len do
                        let e = a.(!i) in
                        incr i;
                        if e lsr (1 + line_shift) land sample_mask = 0 then
                          found := e
                        else incr skipped
                      done;
                      total_accesses := !total_accesses + (!i - pos.(c));
                      pos.(c) <- !i
                  | Gen cur -> (
                      match cur.skip_to_sample with
                      | Some sk ->
                          (* The cursor scans its own chunk buffer —
                             identical consumption, no closure call per
                             skipped access. *)
                          let f =
                            sk ~shift:(1 + line_shift) ~mask:sample_mask
                              ~skipped
                          in
                          found := f;
                          let consumed =
                            !skipped + if f >= 0 then 1 else 0
                          in
                          total_accesses := !total_accesses + consumed;
                          pos.(c) <- pos.(c) + consumed
                      | None ->
                          let len = lens.(c) in
                          let pull = cur.pull in
                          let i = ref pos.(c) in
                          while !found < 0 && !i < len do
                            let e = pull () in
                            incr i;
                            if e lsr (1 + line_shift) land sample_mask = 0
                            then found := e
                            else incr skipped
                          done;
                          total_accesses := !total_accesses + (!i - pos.(c));
                          pos.(c) <- !i));
                  skipped_count := !skipped_count + !skipped;
                  if !skipped = 0 then begin
                    (* First access of the run is sampled: issue it
                       now (its clock is unchanged). *)
                    let addr, write = decode_access !found in
                    incr sampled_count;
                    let lat = Hierarchy.access h ~core:c ~addr ~write in
                    lat_sum.(c) <- lat_sum.(c) + lat;
                    lat_cnt.(c) <- lat_cnt.(c) + 1;
                    config.issue_cost + lat
                  end
                  else begin
                    pending.(c) <- !found;
                    let est =
                      if lat_cnt.(c) = 0 then miss_lat.(c)
                      else lat_sum.(c) / lat_cnt.(c)
                    in
                    !skipped * (config.issue_cost + est)
                  end
                end
              in
              clock.(c) <- clock.(c) + cost;
              busy.(c) <- busy.(c) + cost;
              if pos.(c) >= lens.(c) && pending.(c) < 0 then begin
                decr size;
                heap.(0) <- heap.(!size)
              end;
              sift_down 0
            end
            else begin
              let e =
                match streams.(c) with
                | Dense a -> a.(pos.(c))
                | Gen cur -> cur.pull ()
              in
              pos.(c) <- pos.(c) + 1;
              incr total_accesses;
              let addr, write = decode_access e in
              if observed then
                probe.Probe.on_access ~core:c ~addr ~line:(addr / line_size)
                  ~write;
              let cost =
                if sampling then begin
                  if Hierarchy.line_of h addr land sample_mask = 0 then begin
                    incr sampled_count;
                    let lat = Hierarchy.access h ~core:c ~addr ~write in
                    lat_sum.(c) <- lat_sum.(c) + lat;
                    lat_cnt.(c) <- lat_cnt.(c) + 1;
                    config.issue_cost + lat
                  end
                  else begin
                    incr skipped_count;
                    let est =
                      if lat_cnt.(c) = 0 then miss_lat.(c)
                      else lat_sum.(c) / lat_cnt.(c)
                    in
                    config.issue_cost + est
                  end
                end
                else begin
                  let lat = Hierarchy.access h ~core:c ~addr ~write in
                  config.issue_cost + lat
                end
              in
              clock.(c) <- clock.(c) + cost;
              busy.(c) <- busy.(c) + cost;
              if observed then probe.Probe.on_retire ~core:c ~cycles:clock.(c);
              if pos.(c) >= lens.(c) then begin
                decr size;
                heap.(0) <- heap.(!size)
              end;
              (* The root's key only grew (or was replaced): restore
                 the heap by sifting down. *)
              sift_down 0
            end
          done;
          if (not !capped) && memo_active then begin
            match (entry_key, memo) with
            | Some (k1, k2), Some m ->
                let hits1, misses1 = Hierarchy.instance_counts h in
                Memo.store m ~key:k1
                  {
                    Memo.clock_delta =
                      Array.init n (fun c -> clock.(c) - base_clock.(c));
                    busy_delta =
                      Array.init n (fun c -> busy.(c) - base_busy.(c));
                    exit_lines = Hierarchy.snapshot h;
                    hits_delta =
                      Array.init (Array.length hits1) (fun i ->
                          hits1.(i) - hits0.(i));
                    misses_delta =
                      Array.init (Array.length misses1) (fun i ->
                          misses1.(i) - misses0.(i));
                    mem_delta = Hierarchy.mem_accesses h - mem0;
                    accesses = !total_accesses - acc0;
                    check = k2;
                  }
            | _ -> ()
          end
        end;
        if !capped then ()
        else begin
          if observed then
            probe.Probe.on_phase_end ~phase:pi
              ~cycles:(Array.fold_left max 0 clock);
          (* Barrier after every phase but the last. *)
          if pi < nphases - 1 then begin
            let tmax = Array.fold_left max 0 clock in
            if observed then
              probe.Probe.on_barrier_enter ~phase:pi ~cycles:tmax;
            for c = 0 to n - 1 do
              clock.(c) <- tmax + config.barrier_cost
            done;
            if observed then
              probe.Probe.on_barrier_exit ~phase:pi
                ~cycles:(tmax + config.barrier_cost)
          end
        end
      end)
    phases;
  let stats = finish h clock busy !total_accesses nphases in
  if tel then begin
    tel_record tel_heap ~t_start ~accesses:!total_accesses stats;
    if sampling then
      tel_record_sampled ~factor ~sampled:!sampled_count
        ~skipped:!skipped_count
  end;
  stats

let run ?config ?max_cycles h phases =
  run_streams ?config ?max_cycles h (List.map of_phase phases)

(* The seed implementation: an O(num_cores) linear scan for the
   minimum-clock core before every access.  Kept as the reference path
   for the differential tests and the heap-vs-scan micro-benchmark;
   not used by any driver. *)
let run_reference_streams ?(config = default_config) h
    (phases : stream_phase list) =
  if Hierarchy.sample_factor h > 1 then
    invalid_arg "Engine.run_reference_streams: sampled hierarchy unsupported";
  let tel = Tel.Metrics.enabled () in
  let t_start = if tel then Tel.Profile.now () else 0. in
  let topo = Hierarchy.topology h in
  let n = topo.Ctam_arch.Topology.num_cores in
  check_stream_phases n phases;
  Hierarchy.clear h;
  let probe = Hierarchy.probe h in
  let observed = not (Probe.is_null probe) in
  let line_size = Hierarchy.line_size h in
  let clock = Array.make n 0 in
  let busy = Array.make n 0 in
  let total_accesses = ref 0 in
  let nphases = List.length phases in
  List.iteri
    (fun pi streams ->
      if observed then probe.Probe.on_phase_start ~phase:pi;
      let pos = Array.make n 0 in
      let lens = Array.map stream_length streams in
      Array.iter (function Gen c -> c.reset () | Dense _ -> ()) streams;
      let remaining = ref 0 in
      Array.iter (fun l -> remaining := !remaining + l) lens;
      total_accesses := !total_accesses + !remaining;
      while !remaining > 0 do
        let best = ref (-1) in
        for c = 0 to n - 1 do
          if pos.(c) < lens.(c) && (!best < 0 || clock.(c) < clock.(!best))
          then best := c
        done;
        let c = !best in
        let e =
          match streams.(c) with
          | Dense a -> a.(pos.(c))
          | Gen cur -> cur.pull ()
        in
        pos.(c) <- pos.(c) + 1;
        let addr, write = decode_access e in
        if observed then
          probe.Probe.on_access ~core:c ~addr ~line:(addr / line_size) ~write;
        let lat = Hierarchy.access h ~core:c ~addr ~write in
        let cost = config.issue_cost + lat in
        clock.(c) <- clock.(c) + cost;
        busy.(c) <- busy.(c) + cost;
        if observed then probe.Probe.on_retire ~core:c ~cycles:clock.(c);
        decr remaining
      done;
      if observed then
        probe.Probe.on_phase_end ~phase:pi
          ~cycles:(Array.fold_left max 0 clock);
      if pi < nphases - 1 then begin
        let tmax = Array.fold_left max 0 clock in
        if observed then probe.Probe.on_barrier_enter ~phase:pi ~cycles:tmax;
        for c = 0 to n - 1 do
          clock.(c) <- tmax + config.barrier_cost
        done;
        if observed then
          probe.Probe.on_barrier_exit ~phase:pi
            ~cycles:(tmax + config.barrier_cost)
      end)
    phases;
  let stats = finish h clock busy !total_accesses nphases in
  if tel then tel_record tel_scan ~t_start ~accesses:!total_accesses stats;
  stats

let run_reference ?config h phases =
  run_reference_streams ?config h (List.map of_phase phases)

let run_serial ?config h stream =
  let topo = Hierarchy.topology h in
  let n = topo.Ctam_arch.Topology.num_cores in
  let phase = Array.make n [||] in
  phase.(0) <- stream;
  run ?config h [ phase ]
