(** Reuse-distance (LRU stack distance) analysis.

    The classic locality metric behind the paper's reasoning: an access
    hits in a fully-associative LRU cache of capacity C iff its reuse
    distance (number of *distinct* lines touched since the previous
    access to the same line) is below C.  Profiling a schedule's
    per-core streams explains where a mapping's hits come from, without
    simulating a particular hierarchy. *)

type histogram = {
  buckets : int array;
      (** [buckets.(i)] counts accesses with distance in
          [2^(i-1), 2^i) (bucket 0: distance 0, i.e. consecutive
          re-access) *)
  cold : int;      (** first-touch accesses (infinite distance) *)
  total : int;
}

(** Number of histogram buckets ([buckets] arrays have this length). *)
val nbuckets : int

(** [bucket_of d] is the histogram bucket of finite distance [d]. *)
val bucket_of : int -> int

(** An incremental LRU-stack recorder, for observers that see one
    access at a time (the probe sinks) rather than a whole stream. *)
module Online : sig
  type t

  val create : unit -> t

  (** [touch t line] records an access to [line] and returns its reuse
      distance — [None] on a cold (first) touch. *)
  val touch : t -> int -> int option

  (** Accesses recorded so far. *)
  val touched : t -> int
end

(** [of_lines lines] profiles a single stream of line numbers with an
    exact (balanced-tree) LRU stack. *)
val of_lines : int array -> histogram

(** [of_stream stream ~line] decodes engine-encoded accesses (see
    {!Engine.encode_access}) and maps byte addresses to lines. *)
val of_stream : int array -> line:int -> histogram

(** Fraction of (non-cold) accesses with distance < [lines] — the hit
    ratio of a fully-associative LRU cache with that many lines. *)
val hit_ratio_at : histogram -> lines:int -> float

(** Mean finite reuse distance (geometric bucket midpoints). *)
val mean_distance : histogram -> float

(** Merge per-core histograms into a machine-wide one. *)
val merge : histogram list -> histogram

val pp : histogram Fmt.t
