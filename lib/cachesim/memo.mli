(** In-process per-phase memoization for the simulation engine.

    The engine starts every phase with uniform per-core clocks (zero
    initially, [tmax + barrier_cost] after each barrier), so a phase's
    statistic deltas and exit cache state are a pure function of
    (entry cache contents, access streams, hierarchy configuration,
    engine config).  {!Engine.run_streams} hashes that tuple and, on a
    table hit, replays the recorded deltas and restores the recorded
    exit state instead of re-simulating — byte-identical results, no
    per-access work.  Tuning sweeps are the intended consumer: every
    candidate mapping shares the serial nests and many share whole
    schedules.

    One table may be shared across domains (all operations lock); a
    search fanned out through [Parallel.map] hits entries recorded by
    sibling domains.  Lookups and replays are reported through the
    telemetry registry as [ctam_memo_hits_total] /
    [ctam_memo_misses_total] / [ctam_memo_stores_total] /
    [ctam_memo_replayed_accesses_total]. *)

type t

type entry = {
  clock_delta : int array;       (** per-core clock advance *)
  busy_delta : int array;
  exit_lines : int array array;  (** {!Hierarchy.snapshot} at phase exit *)
  hits_delta : int array;        (** per cache instance *)
  misses_delta : int array;
  mem_delta : int;
  accesses : int;                (** accesses the phase issued *)
  check : int;                   (** secondary hash of the key tuple *)
}

val create : unit -> t

(** [find t ~key ~check] returns the entry stored under the primary
    hash [key] when its secondary hash matches [check]; a primary-hash
    collision with a different [check] is a miss (never a wrong
    replay). *)
val find : t -> key:int -> check:int -> entry option

(** [store t ~key entry] records a phase outcome.  First writer wins
    when domains race on the same key. *)
val store : t -> key:int -> entry -> unit

val hits : t -> int
val misses : t -> int

(** Number of distinct phases recorded. *)
val size : t -> int

(** {2 Hashing}

    Word-at-a-time FNV-1a over native 63-bit ints, as a pair of
    independently seeded streams (primary indexes the table, secondary
    is the collision check — the {!Ctam_tune.Cache} key discipline). *)

val seed : int * int
val mix : int * int -> int -> int * int
val mix_array : int * int -> int array -> int * int
