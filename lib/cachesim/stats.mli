(** Aggregated simulation statistics. *)

type level_stats = {
  level : int;
  hits : int;
  misses : int;
}

type t = {
  per_level : level_stats list;  (** ascending level *)
  mem_accesses : int;            (** accesses served by off-chip memory *)
  total_accesses : int;
  cycles : int;                  (** parallel completion time *)
  core_cycles : int array;       (** per-core busy time *)
  barriers : int;
}

val miss_rate : level_stats -> float

(** [level t l] finds the stats of level [l].  @raise Not_found. *)
val level : t -> int -> level_stats

(** [misses_at t l] is 0 when the level does not exist (convenience for
    cross-machine comparisons). *)
val misses_at : t -> int -> int

(** Fraction of all accesses served by off-chip memory. *)
val mem_rate : t -> float

(** [rel_errors ~exact ~approx] labels each counter with its relative
    error [|approx - exact| / max 1 |exact|]: ["cycles"],
    ["mem_accesses"], and per level ["L<l>_hits"] / ["L<l>_misses"].
    Structural members — ["total_accesses"], ["barriers"], and the
    level list itself — must match exactly and report [0.] or
    [infinity].  Used by the set-sampling error-bound gates. *)
val rel_errors : exact:t -> approx:t -> (string * float) list

(** [approx_equal ?rel_tol exact approx] holds when every
    {!rel_errors} entry is within [rel_tol] (default [0.05]). *)
val approx_equal : ?rel_tol:float -> t -> t -> bool

(** Prints the headline counters plus, per level, raw hits/misses and
    the level's miss rate. *)
val pp : t Fmt.t

(** JSON image of the statistics (per-level entries carry a derived
    [miss_rate] member for report consumers). *)
val to_json : t -> Ctam_util.Json.t

(** Inverse of {!to_json} (derived members are ignored).
    @raise Invalid_argument on a malformed value. *)
val of_json : Ctam_util.Json.t -> t
