(* Tests for the loop-nest IR: arrays, references, statements, nests,
   programs and memory layout. *)

open Ctam_poly
open Ctam_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let arr_a = Array_decl.make ~name:"A" ~dims:[| 4; 6 |] ~elem_size:8
let arr_b = Array_decl.make ~name:"B" ~dims:[| 100 |] ~elem_size:8

let test_array_decl () =
  check_int "cardinal" 24 (Array_decl.cardinal arr_a);
  check_int "bytes" 192 (Array_decl.byte_size arr_a);
  check_int "rank" 2 (Array_decl.rank arr_a);
  check_int "linearize" 13 (Array_decl.linearize arr_a [| 2; 1 |]);
  Alcotest.check_raises "oob"
    (Invalid_argument "Array_decl.linearize: A index 6 out of [0,6)")
    (fun () -> ignore (Array_decl.linearize arr_a [| 2; 6 |]));
  Alcotest.check_raises "bad extent"
    (Invalid_argument "Array_decl.make: extent") (fun () ->
      ignore (Array_decl.make ~name:"X" ~dims:[| 0 |] ~elem_size:8))

let ref_a =
  (* A[i+1][j-1] — the reference of the paper's Figure 4 example. *)
  Reference.make ~array_name:"A"
    ~subs:[| Affine.make [| 1; 0 |] 1; Affine.make [| 0; 1 |] (-1) |]
    ~kind:Reference.Read

let test_reference () =
  Alcotest.(check (array int)) "target" [| 3; 1 |] (Reference.target ref_a [| 2; 2 |]);
  check_bool "in bounds" true (Reference.in_bounds ref_a arr_a [| 2; 2 |]);
  check_bool "out of bounds" false (Reference.in_bounds ref_a arr_a [| 3; 2 |]);
  check_int "depth" 2 (Reference.depth ref_a);
  check_int "rank" 2 (Reference.rank ref_a)

let wr_a =
  Reference.make ~array_name:"A"
    ~subs:[| Affine.var 2 0; Affine.var 2 1 |]
    ~kind:Reference.Write

let test_stmt () =
  let s = Stmt.assign wr_a (Expr.add (Expr.load ref_a) (Expr.const 1.)) in
  check_int "refs" 2 (List.length (Stmt.refs s));
  check_int "reads" 1 (List.length (Stmt.reads s));
  check_bool "write last" true
    (Reference.is_write (List.nth (Stmt.refs s) 1));
  Alcotest.check_raises "lhs must be write"
    (Invalid_argument "Stmt.assign: lhs not write") (fun () ->
      ignore (Stmt.assign ref_a (Expr.const 0.)))

let test_expr_eval () =
  let e =
    Expr.mul (Expr.add (Expr.const 2.) (Expr.index 0)) (Expr.load ref_a)
  in
  let v =
    Expr.eval ~load:(fun _ -> 10.) ~index:(fun _ -> 3.) e
  in
  Alcotest.(check (float 1e-9)) "eval" 50. v;
  check_int "refs" 1 (List.length (Expr.refs e))

let nest0 =
  Nest.make ~name:"n0" ~index_names:[| "i"; "j" |]
    ~domain:(Domain.box [| (0, 2); (1, 4) |])
    ~body:[ Stmt.assign wr_a (Expr.load ref_a) ]
    ~parallel:true

let test_nest () =
  check_int "depth" 2 (Nest.depth nest0);
  check_int "trip" 12 (Nest.trip_count nest0);
  check_int "refs" 2 (List.length (Nest.refs nest0));
  Alcotest.(check (list string)) "arrays" [ "A" ] (Nest.arrays_used nest0)

let prog = Program.make ~name:"p" ~arrays:[ arr_a; arr_b ] ~nests:[ nest0 ]

let test_program () =
  check_int "data bytes" (192 + 800) (Program.data_bytes prog);
  check_int "parallel nests" 1 (List.length (Program.parallel_nests prog));
  check_bool "find" true (Array_decl.equal (Program.find_array prog "B") arr_b);
  Alcotest.check_raises "undeclared array"
    (Invalid_argument "Program.make: undeclared array C") (fun () ->
      let bad =
        Reference.make ~array_name:"C" ~subs:[| Affine.var 1 0 |]
          ~kind:Reference.Write
      in
      let nest =
        Nest.make ~name:"bad" ~index_names:[| "i" |]
          ~domain:(Domain.box [| (0, 1) |])
          ~body:[ Stmt.assign bad (Expr.const 0.) ]
          ~parallel:true
      in
      ignore (Program.make ~name:"p2" ~arrays:[ arr_a ] ~nests:[ nest ]))

let test_layout () =
  let l = Layout.make ~align:256 [ arr_a; arr_b ] in
  check_int "base A" 0 (Layout.base l "A");
  (* A is 192 bytes; B starts at the next 256 boundary. *)
  check_int "base B" 256 (Layout.base l "B");
  check_int "total" (256 + 800) (Layout.total_bytes l);
  check_int "elem addr" (256 + (8 * 3)) (Layout.elem_addr l "B" [| 3 |]);
  check_int "ref addr"
    (8 * Array_decl.linearize arr_a [| 3; 1 |])
    (Layout.ref_addr l ref_a [| 2; 2 |]);
  Alcotest.check_raises "not found" Not_found (fun () ->
      ignore (Layout.base l "Z"))

let test_layout_alignment_blocks () =
  (* Arrays never share an aligned block: base mod align = 0. *)
  let l = Layout.of_program ~align:2048 prog in
  List.iter
    (fun a ->
      check_int
        ("aligned " ^ a.Array_decl.name)
        0
        (Layout.base l a.Array_decl.name mod 2048))
    (Layout.arrays l)

let () =
  Alcotest.run "ir"
    [
      ( "array_decl",
        [ Alcotest.test_case "basics" `Quick test_array_decl ] );
      ("reference", [ Alcotest.test_case "basics" `Quick test_reference ]);
      ("stmt", [ Alcotest.test_case "basics" `Quick test_stmt ]);
      ("expr", [ Alcotest.test_case "eval" `Quick test_expr_eval ]);
      ("nest", [ Alcotest.test_case "basics" `Quick test_nest ]);
      ("program", [ Alcotest.test_case "basics" `Quick test_program ]);
      ( "layout",
        [
          Alcotest.test_case "placement" `Quick test_layout;
          Alcotest.test_case "block alignment" `Quick test_layout_alignment_blocks;
        ] );
    ]
