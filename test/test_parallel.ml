(* Tests for the dependency-free domain pool behind the parallel
   experiment drivers.  The contract under test: Parallel.map is
   observationally List.map — same results, same order, deterministic
   exception choice — at any domain count. *)

open Ctam_util

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

exception Boom of int

let test_matches_list_map () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 7 in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "domains=%d" domains)
        (List.map f xs)
        (Parallel.map ~domains f xs))
    [ 1; 2; 3; 4; 8 ];
  Alcotest.(check (list int))
    "default domains" (List.map f xs) (Parallel.map f xs)

let test_order_under_uneven_work () =
  (* Make early elements slow so later ones finish first; the result
     must still come back in input order. *)
  let xs = List.init 16 (fun i -> i) in
  let f x =
    if x < 4 then begin
      let acc = ref 0 in
      for i = 0 to 200_000 do
        acc := !acc + (i mod 7)
      done;
      ignore !acc
    end;
    x * 10
  in
  Alcotest.(check (list int))
    "input order preserved" (List.map f xs)
    (Parallel.map ~domains:4 f xs)

let test_edge_shapes () =
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~domains:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Parallel.map ~domains:4 succ [ 1 ]);
  (* more domains than tasks *)
  Alcotest.(check (list int))
    "domains > tasks" [ 2; 3 ]
    (Parallel.map ~domains:8 succ [ 1; 2 ])

let test_serial_degenerate () =
  (* ~domains:1 must not spawn: it runs in the calling domain, so
     side effects happen in list order. *)
  let seen = ref [] in
  let r =
    Parallel.map ~domains:1
      (fun x ->
        seen := x :: !seen;
        -x)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "results" [ -1; -2; -3 ] r;
  Alcotest.(check (list int)) "evaluation order" [ 3; 2; 1 ] !seen

let test_exception_propagation () =
  List.iter
    (fun domains ->
      match
        Parallel.map ~domains
          (fun x -> if x mod 3 = 2 then raise (Boom x) else x)
          (List.init 20 (fun i -> i))
      with
      | _ -> Alcotest.failf "domains=%d: expected Boom" domains
      | exception Boom n ->
          (* lowest failing index wins, deterministically *)
          check_int (Printf.sprintf "domains=%d lowest index" domains) 2 n)
    [ 1; 2; 4 ]

(* Regression: the pool used to re-raise a worker's exception with a
   bare [raise], which overwrites the backtrace with the re-raise
   site in parallel.ml — useless for debugging a crashing experiment
   driver.  It must re-raise with [Printexc.raise_with_backtrace] so
   the original raise site (this file) survives the hop between
   domains. *)
let[@inline never] raise_deep x = raise (Boom x)

let test_backtrace_crosses_domains () =
  let prev = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect ~finally:(fun () -> Printexc.record_backtrace prev) @@ fun () ->
  match
    Parallel.map ~domains:2
      (fun x ->
        (* Recording is per-domain state: enable it in whichever
           domain runs the raising task, not just the caller. *)
        Printexc.record_backtrace true;
        if x = 1 then raise_deep x else x)
      [ 0; 1; 2; 3 ]
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom _ ->
      (* The call site ("Called from ...test_parallel...") appears
         even under a bare re-raise; what only survives with
         [raise_with_backtrace] is the worker-side raise frame. *)
      let bt = Printexc.get_backtrace () in
      check_bool
        ("backtrace names the raise site, got: " ^ bt)
        true
        (Astring.String.is_infix ~affix:"raise_deep" bt)

let test_invalid_domains () =
  check_bool "domains=0 rejected" true
    (try
       ignore (Parallel.map ~domains:0 succ [ 1 ]);
       false
     with Invalid_argument _ -> true)

let test_iter () =
  let sum = Atomic.make 0 in
  Parallel.iter ~domains:4
    (fun x -> ignore (Atomic.fetch_and_add sum x))
    (List.init 50 (fun i -> i));
  check_int "iter visits everything" (50 * 49 / 2) (Atomic.get sum)

let test_default_domains () =
  check_bool "default_domains >= 1" true (Parallel.default_domains () >= 1);
  check_bool "env var name" true (Parallel.env_var = "CTAM_JOBS")

let () =
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "equals List.map" `Quick test_matches_list_map;
          Alcotest.test_case "order under uneven work" `Quick
            test_order_under_uneven_work;
          Alcotest.test_case "edge shapes" `Quick test_edge_shapes;
          Alcotest.test_case "domains=1 is serial" `Quick test_serial_degenerate;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "backtrace crosses domains" `Quick
            test_backtrace_crosses_domains;
          Alcotest.test_case "invalid domains" `Quick test_invalid_domains;
        ] );
      ( "misc",
        [
          Alcotest.test_case "iter" `Quick test_iter;
          Alcotest.test_case "default_domains" `Quick test_default_domains;
        ] );
    ]
