(* Tests for the serving layer's library pieces — the compiled-plan
   cache's LRU accounting, byte bound and concurrency contract, and
   the length-prefixed frame protocol.  The live daemon end (real
   socket, real requests, hostile input) is covered by
   tools/check_serve.sh + tools/serve_probe.ml. *)

open Ctam_serve
module J = Ctam_util.Json
module Parallel = Ctam_util.Parallel

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_keys = Alcotest.(check (list string))

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ctam-serve-test-%d-%d" (Unix.getpid ()) !counter)

let v s = J.Obj [ ("payload", J.String s) ]
let size j = String.length (J.to_string ~minify:true j)

(* --- Plan_cache ------------------------------------------------------- *)

let test_lru_eviction_order () =
  let c = Plan_cache.create ~max_entries:3 () in
  Plan_cache.add c "k1" (v "1");
  Plan_cache.add c "k2" (v "2");
  Plan_cache.add c "k3" (v "3");
  check_keys "insertion order" [ "k3"; "k2"; "k1" ]
    (Plan_cache.keys_hot_to_cold c);
  (* A hit promotes. *)
  check_bool "hit" true (Plan_cache.find c "k1" = Some (v "1"));
  check_keys "promoted" [ "k1"; "k3"; "k2" ] (Plan_cache.keys_hot_to_cold c);
  (* A fourth insert evicts the coldest — k2, not the oldest k1. *)
  Plan_cache.add c "k4" (v "4");
  check_keys "evicted the coldest" [ "k4"; "k1"; "k3" ]
    (Plan_cache.keys_hot_to_cold c);
  check_bool "evicted key misses" true (Plan_cache.find c "k2" = None);
  check_bool "survivor hits" true (Plan_cache.find c "k3" = Some (v "3"));
  (* Re-adding an existing key refreshes in place, no growth. *)
  Plan_cache.add c "k4" (v "4'");
  check_int "refresh does not grow" 3 (Plan_cache.resident_entries c);
  check_bool "refresh replaces the value" true
    (Plan_cache.find c "k4" = Some (v "4'"))

let test_byte_bound () =
  let unit_bytes = size (v "x") in
  let c = Plan_cache.create ~max_entries:1000 ~max_bytes:(3 * unit_bytes) () in
  List.iter (fun k -> Plan_cache.add c k (v "x")) [ "a"; "b"; "c" ];
  check_int "at the bound" (3 * unit_bytes) (Plan_cache.resident_bytes c);
  Plan_cache.add c "d" (v "x");
  check_int "bytes stay bounded" (3 * unit_bytes) (Plan_cache.resident_bytes c);
  check_keys "coldest entry paid for it" [ "d"; "c"; "b" ]
    (Plan_cache.keys_hot_to_cold c);
  (* A value bigger than the whole bound is still admitted — a cache
     that cannot hold its largest value would re-miss it forever — and
     evicts everything else. *)
  let huge = v (String.make (4 * unit_bytes) 'y') in
  Plan_cache.add c "huge" huge;
  check_keys "oversized value admitted alone" [ "huge" ]
    (Plan_cache.keys_hot_to_cold c);
  check_int "its bytes are accounted" (size huge) (Plan_cache.resident_bytes c);
  check_bool "and it hits" true (Plan_cache.find c "huge" = Some huge)

(* Two domains hammer overlapping keys through a memory tier bounded
   well below the key-set size, forcing constant eviction and disk
   reloads.  The contract: every find returns either a miss or exactly
   the value stored under that key — never a torn or foreign one. *)
let test_concurrent_hit_or_miss () =
  let dir = fresh_dir () in
  let c = Plan_cache.create ~dir ~max_entries:3 () in
  let nkeys = 8 in
  let key i = Printf.sprintf "key-%d" (i mod nkeys) in
  let value i =
    J.Obj [ ("k", J.String (key i)); ("n", J.Int (i mod nkeys)) ]
  in
  let wrong = Atomic.make 0 in
  Parallel.iter ~domains:2
    (fun seed ->
      for i = 0 to 499 do
        let k = (i * (seed + 3)) + seed in
        if (i + seed) mod 3 = 0 then Plan_cache.add c (key k) (value k)
        else
          match Plan_cache.find c (key k) with
          | None -> ()
          | Some got ->
              if got <> value k then Atomic.incr wrong
      done)
    [ 0; 1 ];
  check_int "only ever a miss or the stored value" 0 (Atomic.get wrong);
  (* The persistent tier holds every key; a fresh cache over the same
     directory must serve them all from disk. *)
  let c2 = Plan_cache.create ~dir ~max_entries:nkeys () in
  for i = 0 to nkeys - 1 do
    check_bool
      (Printf.sprintf "fresh cache reloads %s" (key i))
      true
      (Plan_cache.find c2 (key i) = Some (value i))
  done

(* --- Protocol --------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair @@ fun a b ->
  (* A frame larger than any socket buffer: the writer runs in its own
     domain so write/read can overlap without deadlocking the test. *)
  let j =
    J.Obj
      [
        ("op", J.String "ping");
        ("blob", J.String (String.make 300_000 'x'));
        ("n", J.Int 42);
      ]
  in
  let w = Domain.spawn (fun () -> Protocol.write_json a j) in
  (match Protocol.read_frame b with
  | Ok payload -> check_bool "round-trip" true (J.parse payload = Ok j)
  | Error _ -> Alcotest.fail "read_frame failed on a valid frame");
  Domain.join w;
  (* Back-to-back frames stay framed. *)
  List.iter (fun i -> Protocol.write_json a (J.Int i)) [ 1; 2; 3 ];
  List.iter
    (fun i ->
      match Protocol.read_frame b with
      | Ok p -> check_bool "in order" true (p = string_of_int i)
      | Error _ -> Alcotest.fail "read_frame failed mid-stream")
    [ 1; 2; 3 ]

let test_read_error_classification () =
  (* Honest oversized frame: declared length over the limit but under
     the drain ceiling — refused, drained, connection still framed. *)
  with_socketpair (fun a b ->
      let w = Domain.spawn (fun () -> Protocol.write_frame a (String.make 64 'y')) in
      (match Protocol.read_frame ~max_bytes:16 b with
      | Error (Protocol.Oversized { length = 64; in_sync = true }) -> ()
      | _ -> Alcotest.fail "expected a drained Oversized");
      Domain.join w;
      Protocol.write_frame a "ok";
      match Protocol.read_frame ~max_bytes:16 b with
      | Ok "ok" -> ()
      | _ -> Alcotest.fail "stream lost sync after a drained frame");
  (* Garbage prefix: the length bytes of a client that never spoke the
     protocol decode past the drain ceiling — unrecoverable. *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "GET / HTTP/1.0\r\n" 0 16);
      match Protocol.read_frame b with
      | Error (Protocol.Oversized { in_sync = false; _ }) -> ()
      | _ -> Alcotest.fail "expected an out-of-sync Oversized");
  (* Peer gone before any frame, and gone mid-frame: both are Closed. *)
  with_socketpair (fun a b ->
      Unix.close a;
      match Protocol.read_frame b with
      | Error Protocol.Closed -> ()
      | _ -> Alcotest.fail "expected Closed on EOF");
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "\x00\x00\x00\x64truncated!" 0 14);
      Unix.close a;
      match Protocol.read_frame b with
      | Error Protocol.Closed -> ()
      | _ -> Alcotest.fail "expected Closed on a truncated frame");
  (* An idle receive timeout consults on_idle; `Stop abandons the
     wait as Stopped (how workers notice shutdown). *)
  with_socketpair (fun _ b ->
      Unix.setsockopt_float b Unix.SO_RCVTIMEO 0.05;
      match Protocol.read_frame ~on_idle:(fun () -> `Stop) b with
      | Error Protocol.Stopped -> ()
      | _ -> Alcotest.fail "expected Stopped from on_idle")

let test_response_shapes () =
  let ok = Protocol.ok_response ~id:(J.Int 7) ~cached:true (v "r") in
  check_bool "ok" true (Protocol.response_ok ok);
  check_bool "cached" true (Protocol.response_cached ok);
  check_bool "result" true (Protocol.response_result ok = Some (v "r"));
  check_bool "no error member" true (Protocol.response_error ok = None);
  let err = Protocol.error_response ~code:"bad_request" "nope" in
  check_bool "not ok" true (not (Protocol.response_ok err));
  check_bool "error carried" true
    (Protocol.response_error err = Some ("bad_request", "nope"));
  (* Accessors are total on non-objects. *)
  check_bool "non-object is not ok" true (not (Protocol.response_ok J.Null));
  check_bool "non-object has no error" true
    (Protocol.response_error (J.List []) = None)

let () =
  Alcotest.run "serve"
    [
      ( "plan-cache",
        [
          Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "byte bound" `Quick test_byte_bound;
          Alcotest.test_case "concurrent hit-or-miss" `Quick
            test_concurrent_hit_or_miss;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "read-error classification" `Quick
            test_read_error_classification;
          Alcotest.test_case "response shapes" `Quick test_response_shapes;
        ] );
    ]
