(* Tests for the serving layer's library pieces — the compiled-plan
   cache's LRU accounting, byte bound and concurrency contract, and
   the length-prefixed frame protocol.  The live daemon end (real
   socket, real requests, hostile input) is covered by
   tools/check_serve.sh + tools/serve_probe.ml. *)

open Ctam_serve
module J = Ctam_util.Json
module Parallel = Ctam_util.Parallel

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_keys = Alcotest.(check (list string))

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ctam-serve-test-%d-%d" (Unix.getpid ()) !counter)

let v s = J.Obj [ ("payload", J.String s) ]
let size j = String.length (J.to_string ~minify:true j)

(* --- Plan_cache ------------------------------------------------------- *)

let test_lru_eviction_order () =
  let c = Plan_cache.create ~max_entries:3 () in
  Plan_cache.add c "k1" (v "1");
  Plan_cache.add c "k2" (v "2");
  Plan_cache.add c "k3" (v "3");
  check_keys "insertion order" [ "k3"; "k2"; "k1" ]
    (Plan_cache.keys_hot_to_cold c);
  (* A hit promotes. *)
  check_bool "hit" true (Plan_cache.find c "k1" = Some (v "1"));
  check_keys "promoted" [ "k1"; "k3"; "k2" ] (Plan_cache.keys_hot_to_cold c);
  (* A fourth insert evicts the coldest — k2, not the oldest k1. *)
  Plan_cache.add c "k4" (v "4");
  check_keys "evicted the coldest" [ "k4"; "k1"; "k3" ]
    (Plan_cache.keys_hot_to_cold c);
  check_bool "evicted key misses" true (Plan_cache.find c "k2" = None);
  check_bool "survivor hits" true (Plan_cache.find c "k3" = Some (v "3"));
  (* Re-adding an existing key refreshes in place, no growth. *)
  Plan_cache.add c "k4" (v "4'");
  check_int "refresh does not grow" 3 (Plan_cache.resident_entries c);
  check_bool "refresh replaces the value" true
    (Plan_cache.find c "k4" = Some (v "4'"))

let test_byte_bound () =
  let unit_bytes = size (v "x") in
  let c = Plan_cache.create ~max_entries:1000 ~max_bytes:(3 * unit_bytes) () in
  List.iter (fun k -> Plan_cache.add c k (v "x")) [ "a"; "b"; "c" ];
  check_int "at the bound" (3 * unit_bytes) (Plan_cache.resident_bytes c);
  Plan_cache.add c "d" (v "x");
  check_int "bytes stay bounded" (3 * unit_bytes) (Plan_cache.resident_bytes c);
  check_keys "coldest entry paid for it" [ "d"; "c"; "b" ]
    (Plan_cache.keys_hot_to_cold c);
  (* A value bigger than the whole bound is still admitted — a cache
     that cannot hold its largest value would re-miss it forever — and
     evicts everything else. *)
  let huge = v (String.make (4 * unit_bytes) 'y') in
  Plan_cache.add c "huge" huge;
  check_keys "oversized value admitted alone" [ "huge" ]
    (Plan_cache.keys_hot_to_cold c);
  check_int "its bytes are accounted" (size huge) (Plan_cache.resident_bytes c);
  check_bool "and it hits" true (Plan_cache.find c "huge" = Some huge)

(* Two domains hammer overlapping keys through a memory tier bounded
   well below the key-set size, forcing constant eviction and disk
   reloads.  The contract: every find returns either a miss or exactly
   the value stored under that key — never a torn or foreign one. *)
let test_concurrent_hit_or_miss () =
  let dir = fresh_dir () in
  let c = Plan_cache.create ~dir ~max_entries:3 () in
  let nkeys = 8 in
  let key i = Printf.sprintf "key-%d" (i mod nkeys) in
  let value i =
    J.Obj [ ("k", J.String (key i)); ("n", J.Int (i mod nkeys)) ]
  in
  let wrong = Atomic.make 0 in
  Parallel.iter ~domains:2
    (fun seed ->
      for i = 0 to 499 do
        let k = (i * (seed + 3)) + seed in
        if (i + seed) mod 3 = 0 then Plan_cache.add c (key k) (value k)
        else
          match Plan_cache.find c (key k) with
          | None -> ()
          | Some got ->
              if got <> value k then Atomic.incr wrong
      done)
    [ 0; 1 ];
  check_int "only ever a miss or the stored value" 0 (Atomic.get wrong);
  (* The persistent tier holds every key; a fresh cache over the same
     directory must serve them all from disk. *)
  let c2 = Plan_cache.create ~dir ~max_entries:nkeys () in
  for i = 0 to nkeys - 1 do
    check_bool
      (Printf.sprintf "fresh cache reloads %s" (key i))
      true
      (Plan_cache.find c2 (key i) = Some (value i))
  done

(* --- Protocol --------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair @@ fun a b ->
  (* A frame larger than any socket buffer: the writer runs in its own
     domain so write/read can overlap without deadlocking the test. *)
  let j =
    J.Obj
      [
        ("op", J.String "ping");
        ("blob", J.String (String.make 300_000 'x'));
        ("n", J.Int 42);
      ]
  in
  let w = Domain.spawn (fun () -> Protocol.write_json a j) in
  (match Protocol.read_frame b with
  | Ok payload -> check_bool "round-trip" true (J.parse payload = Ok j)
  | Error _ -> Alcotest.fail "read_frame failed on a valid frame");
  Domain.join w;
  (* Back-to-back frames stay framed. *)
  List.iter (fun i -> Protocol.write_json a (J.Int i)) [ 1; 2; 3 ];
  List.iter
    (fun i ->
      match Protocol.read_frame b with
      | Ok p -> check_bool "in order" true (p = string_of_int i)
      | Error _ -> Alcotest.fail "read_frame failed mid-stream")
    [ 1; 2; 3 ]

let test_read_error_classification () =
  (* Honest oversized frame: declared length over the limit but under
     the drain ceiling — refused, drained, connection still framed. *)
  with_socketpair (fun a b ->
      let w = Domain.spawn (fun () -> Protocol.write_frame a (String.make 64 'y')) in
      (match Protocol.read_frame ~max_bytes:16 b with
      | Error (Protocol.Oversized { length = 64; in_sync = true }) -> ()
      | _ -> Alcotest.fail "expected a drained Oversized");
      Domain.join w;
      Protocol.write_frame a "ok";
      match Protocol.read_frame ~max_bytes:16 b with
      | Ok "ok" -> ()
      | _ -> Alcotest.fail "stream lost sync after a drained frame");
  (* Garbage prefix: the length bytes of a client that never spoke the
     protocol decode past the drain ceiling — unrecoverable. *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "GET / HTTP/1.0\r\n" 0 16);
      match Protocol.read_frame b with
      | Error (Protocol.Oversized { in_sync = false; _ }) -> ()
      | _ -> Alcotest.fail "expected an out-of-sync Oversized");
  (* Peer gone before any frame, and gone mid-frame: both are Closed. *)
  with_socketpair (fun a b ->
      Unix.close a;
      match Protocol.read_frame b with
      | Error Protocol.Closed -> ()
      | _ -> Alcotest.fail "expected Closed on EOF");
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "\x00\x00\x00\x64truncated!" 0 14);
      Unix.close a;
      match Protocol.read_frame b with
      | Error Protocol.Closed -> ()
      | _ -> Alcotest.fail "expected Closed on a truncated frame");
  (* An idle receive timeout consults on_idle; `Stop abandons the
     wait as Stopped (how workers notice shutdown). *)
  with_socketpair (fun _ b ->
      Unix.setsockopt_float b Unix.SO_RCVTIMEO 0.05;
      match Protocol.read_frame ~on_idle:(fun () -> `Stop) b with
      | Error Protocol.Stopped -> ()
      | _ -> Alcotest.fail "expected Stopped from on_idle")

let test_response_shapes () =
  let ok = Protocol.ok_response ~id:(J.Int 7) ~cached:true (v "r") in
  check_bool "ok" true (Protocol.response_ok ok);
  check_bool "cached" true (Protocol.response_cached ok);
  check_bool "result" true (Protocol.response_result ok = Some (v "r"));
  check_bool "no error member" true (Protocol.response_error ok = None);
  let err = Protocol.error_response ~code:"bad_request" "nope" in
  check_bool "not ok" true (not (Protocol.response_ok err));
  check_bool "error carried" true
    (Protocol.response_error err = Some ("bad_request", "nope"));
  (* Accessors are total on non-objects. *)
  check_bool "non-object is not ok" true (not (Protocol.response_ok J.Null));
  check_bool "non-object has no error" true
    (Protocol.response_error (J.List []) = None);
  (* The daemon-minted request id rides on both reply shapes. *)
  let ok = Protocol.ok_response ~request_id:41 (v "r") in
  check_bool "request id on ok" true (Protocol.response_request_id ok = Some 41);
  let err = Protocol.error_response ~request_id:42 ~code:"timeout" "late" in
  check_bool "request id on error" true
    (Protocol.response_request_id err = Some 42);
  check_bool "request id absent by default" true
    (Protocol.response_request_id (Protocol.ok_response (v "r")) = None)

(* The resync contract under pipelining: an oversized frame with valid
   frames already queued behind it.  The drain must consume exactly
   the declared length, answering every queued frame afterwards. *)
let test_resync_pipelined () =
  with_socketpair @@ fun a b ->
  let w =
    Domain.spawn (fun () ->
        Protocol.write_frame a (String.make 4096 'z');
        List.iter (fun i -> Protocol.write_json a (J.Int i)) [ 1; 2; 3 ])
  in
  (match Protocol.read_frame ~max_bytes:64 b with
  | Error (Protocol.Oversized { length = 4096; in_sync = true }) -> ()
  | _ -> Alcotest.fail "expected a drained Oversized");
  List.iter
    (fun i ->
      match Protocol.read_frame ~max_bytes:64 b with
      | Ok p -> check_bool "pipelined frame answered in order" true (p = string_of_int i)
      | Error _ -> Alcotest.fail "lost a pipelined frame after resync")
    [ 1; 2; 3 ];
  Domain.join w

(* --- Reqctx ----------------------------------------------------------- *)

let test_reqctx () =
  let conn = Reqctx.mint_conn () in
  let c1 = Reqctx.create ~conn () in
  let c2 = Reqctx.create ~conn () in
  check_bool "ids monotone" true (c2.Reqctx.id > c1.Reqctx.id);
  check_bool "fresh status" true (c1.Reqctx.status = "ok");
  (* Spans are timed, kept in completion order, exception-safe. *)
  let r = Reqctx.span c1 "decode" (fun () -> 21 * 2) in
  check_int "span returns" 42 r;
  (match Reqctx.span c1 "boom" (fun () -> failwith "x") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "span swallowed the exception");
  Reqctx.add_span c1 "encode" 0.25;
  check_keys "span order" [ "decode"; "boom"; "encode" ]
    (List.map fst (Reqctx.spans c1));
  (match Reqctx.spans_us_json c1 with
  | J.Obj [ _; _; ("encode", J.Int us) ] -> check_int "span micros" 250_000 us
  | j -> Alcotest.fail ("bad spans_us: " ^ J.to_string ~minify:true j));
  (* Error classification: "timeout" is its own status. *)
  Reqctx.error c1 "internal";
  check_bool "error status" true (c1.Reqctx.status = "error");
  Reqctx.error c2 "timeout";
  check_bool "timeout status" true (c2.Reqctx.status = "timeout");
  check_bool "code kept" true (c2.Reqctx.error_code = Some "timeout");
  (* Cache outcomes have stable journal ids. *)
  check_bool "cache ids" true
    (List.map Reqctx.cache_id
       [ Reqctx.Memory; Reqctx.Disk; Reqctx.Miss; Reqctx.Bypass; Reqctx.None_ ]
    = [ "memory"; "disk"; "miss"; "bypass"; "none" ]);
  check_bool "finish returns elapsed" true (Reqctx.finish c1 >= 0.)

(* Request identity lands on every log line emitted inside the scope,
   through arbitrarily deep calls, without threading an argument. *)
let test_reqctx_logging () =
  let module Log = Ctam_telemetry.Log in
  let seen = ref [] in
  let saved_level = Log.current_level () in
  Log.set_level (Some Log.Info);
  Log.set_format `Json;
  Log.set_sink (fun line -> seen := line :: !seen);
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink prerr_endline;
      Log.set_format `Human;
      Log.set_level saved_level)
    (fun () ->
      let ctx = Reqctx.create ~conn:0 () in
      Reqctx.with_logging ctx (fun () ->
          Log.info ~src:"test" (fun () -> "inside"));
      Log.info ~src:"test" (fun () -> "outside");
      match !seen with
      | [ outside; inside ] ->
          let needle = Printf.sprintf "\"request_id\":%d" ctx.Reqctx.id in
          let contains line =
            let nl = String.length needle and ll = String.length line in
            let rec go i =
              i + nl <= ll && (String.sub line i nl = needle || go (i + 1))
            in
            go 0
          in
          check_bool "request_id inside the scope" true (contains inside);
          check_bool "request_id gone outside" true (not (contains outside))
      | _ -> Alcotest.fail "expected exactly two log lines")

(* --- Journal ---------------------------------------------------------- *)

let test_journal_record_and_rotation () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "journal.jsonl" in
  let ctx = Reqctx.create ~conn:7 () in
  ctx.Reqctx.op <- "run";
  Reqctx.add_span ctx "compile" 0.001;
  let record_json =
    Journal.request_json ~ctx ~key:(Some "some-cache-key") ~bytes_in:10
      ~bytes_out:20 ~total_seconds:0.005
      ~request:(J.Obj [ ("op", J.String "run") ])
      ~response:(Protocol.ok_response ~request_id:ctx.Reqctx.id (v "r"))
  in
  (* Bound the file at three record lines so the eleventh write has
     rotated at least once. *)
  let line_bytes = String.length (J.to_string ~minify:true record_json) + 1 in
  let max_bytes = 3 * line_bytes in
  let jn = Journal.create ~max_bytes path in
  let record () = Journal.record jn record_json in
  record ();
  check_int "one record" 1 (Journal.records jn);
  (* Each line is one parseable object carrying the versioned schema. *)
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  (match J.parse line with
  | Ok (J.Obj _ as r) ->
      let m name = match J.member name r with Some x -> x | None -> J.Null in
      check_bool "schema version" true (m "ctam_journal_version" = J.Int 1);
      check_bool "request id" true
        (m "request_id" = J.Int ctx.Reqctx.id);
      check_bool "op" true (m "op" = J.String "run");
      check_bool "key is hashed" true
        (m "key" = J.String (Ctam_util.Diskstore.hash "some-cache-key"));
      check_bool "status" true (m "status" = J.String "ok");
      check_bool "total micros" true (m "total_us" = J.Int 5000);
      check_bool "bytes accounted" true
        (m "bytes_in" = J.Int 10 && m "bytes_out" = J.Int 20);
      check_bool "request embedded" true (m "request" <> J.Null);
      check_bool "response embedded" true (m "response" <> J.Null)
  | _ -> Alcotest.fail "journal line is not a JSON object");
  (* Size rotation: pushing past max_bytes renames to .1 and restarts. *)
  for _ = 1 to 10 do record () done;
  Journal.close jn;
  check_bool "rotated file exists" true (Sys.file_exists (path ^ ".1"));
  let stat = Unix.stat path in
  check_bool "live file restarted under the bound" true
    (stat.Unix.st_size <= max_bytes);
  (match Journal.stats_json jn with
  | J.Obj _ as s ->
      (match J.member "rotations" s with
      | Some (J.Int r) -> check_bool "rotations counted" true (r >= 1)
      | _ -> Alcotest.fail "stats carry no rotations")
  | _ -> Alcotest.fail "stats not an object")

(* --- Slowlog ---------------------------------------------------------- *)

let test_slowlog () =
  let sl = Slowlog.create ~threshold_ms:10. ~capacity:3 () in
  let note ?(op = "run") ms =
    let ctx = Reqctx.create ~conn:0 () in
    ctx.Reqctx.op <- op;
    Slowlog.note sl ctx ~total_seconds:(ms /. 1000.)
  in
  note 5.;
  check_int "below threshold not recorded" 0 (Slowlog.length sl);
  note 10.;
  note ~op:"tune" 50.;
  check_int "recorded" 2 (Slowlog.length sl);
  note 20.;
  note 30.;
  (* Capacity 3: the 10 ms entry fell off; newest first. *)
  check_int "ring bounded" 3 (Slowlog.length sl);
  check_int "total ever recorded" 4 (Slowlog.recorded sl);
  let ms_of e =
    match J.member "ms" e with Some (J.Float f) -> f | _ -> -1.
  in
  check_bool "newest first" true
    (List.map ms_of (Slowlog.entries sl) = [ 30.; 20.; 50. ]);
  check_bool "limit honoured" true
    (List.map ms_of (Slowlog.entries ~limit:1 sl) = [ 30. ]);
  match Slowlog.to_json ~limit:2 sl with
  | J.Obj _ as j -> (
      match (J.member "recorded" j, J.member "entries" j) with
      | Some (J.Int 4), Some (J.List [ _; _ ]) -> ()
      | _ -> Alcotest.fail "bad slowlog json shape")
  | _ -> Alcotest.fail "slowlog json not an object"

(* --- Plan_cache lookup tiers ------------------------------------------ *)

let test_lookup_tiers () =
  let dir = fresh_dir () in
  let c = Plan_cache.create ~dir ~max_entries:1 () in
  check_bool "absent" true (Plan_cache.lookup c "a" = Plan_cache.Absent);
  Plan_cache.add c "a" (v "1");
  check_bool "memory tier" true
    (Plan_cache.lookup c "a" = Plan_cache.Memory (v "1"));
  (* Evict from memory (entry bound 1); the disk tier answers and the
     entry is promoted back. *)
  Plan_cache.add c "b" (v "2");
  check_bool "disk tier" true (Plan_cache.lookup c "a" = Plan_cache.Disk (v "1"));
  check_bool "promoted back to memory" true
    (Plan_cache.lookup c "a" = Plan_cache.Memory (v "1"))

(* --- trace requests ---------------------------------------------------- *)

let trace_req ?policy text =
  J.Obj
    ([
       ("op", J.String "trace");
       ("machine", J.String "dunnington");
       ("scale", J.Int 16);
       ("cores", J.Int 2);
       ("trace_text", J.String text);
     ]
    @ match policy with None -> [] | Some p -> [ ("policy", J.String p) ])

let test_trace_request_parse () =
  let good = " L 0x1000,8\n S 0x1040,8\n M 0x1080,4\n" in
  let parsed ?policy text =
    match Request.parse_trace (trace_req ?policy text) with
    | Ok tr -> tr
    | Error e -> Alcotest.fail e
  in
  (* Policy reaches the machine, and the content-hash key sees it —
     while an explicit lru spec keeps the pre-policy key (warm caches
     survive the upgrade). *)
  let k_default = Request.trace_key (parsed good) in
  let k_lru = Request.trace_key (parsed ~policy:"lru" good) in
  let k_plru = Request.trace_key (parsed ~policy:"L1=plru" good) in
  Alcotest.(check string) "explicit lru keeps the key" k_default k_lru;
  check_bool "policy in the key" true (k_plru <> k_default);
  check_bool "trace text in the key" true
    (Request.trace_key (parsed (good ^ " L 0x2000,4\n")) <> k_default);
  (* Executing the parsed request yields the simtrace report. *)
  let report, _spans = Request.execute_trace (parsed ~policy:"L1=plru" good) in
  (match J.member "schema" report with
  | Some (J.String "ctam-simtrace-v1") -> ()
  | _ -> Alcotest.fail "trace response is not a simtrace report");
  (* Strict-mode errors surface at PARSE time, with the position. *)
  (match Request.parse_trace (trace_req " L 0x10,4\n X bad\n") with
  | Error msg ->
      check_bool "position in the error" true
        (Astring.String.is_infix ~affix:"line 2" msg)
  | Ok _ -> Alcotest.fail "malformed trace accepted");
  (* ... unless the request opted into lossy mode. *)
  match
    Request.parse_trace
      (match trace_req " L 0x10,4\n X bad\n" with
      | J.Obj ms -> J.Obj (ms @ [ ("lossy", J.Bool true) ])
      | j -> j)
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("lossy trace rejected: " ^ e)

(* --- cache maintenance ------------------------------------------------- *)

let test_purge_then_recompute () =
  let dir = fresh_dir () in
  let c = Plan_cache.create ~dir ~max_entries:1 () in
  Plan_cache.add c "a" (v "1");
  Plan_cache.add c "b" (v "2");
  let plan_entries () =
    (List.find
       (fun f -> f.Cachetool.prefix = Plan_cache.file_prefix)
       (Cachetool.stats ~dir ()))
      .Cachetool.entries
  in
  check_int "both entries on disk" 2 (plan_entries ());
  (* An age bound keeps entries younger than the cutoff. *)
  let aged = Cachetool.purge ~older_than:3600. ~dir () in
  check_bool "age bound keeps fresh entries" true
    (List.for_all (fun r -> r.Cachetool.removed = 0) aged);
  check_int "nothing removed" 2 (plan_entries ());
  (* A full purge while the cache object is live: the disk tier
     empties, in-memory entries keep answering, evicted ones are
     recomputed (Absent) and can be stored again. *)
  let res = Cachetool.purge ~prefix:Plan_cache.file_prefix ~dir () in
  check_bool "purge removed both" true
    (List.exists
       (fun r ->
         r.Cachetool.p_prefix = Plan_cache.file_prefix
         && r.Cachetool.removed = 2)
       res);
  check_int "store empty" 0 (plan_entries ());
  check_bool "memory tier still answers" true
    (Plan_cache.lookup c "b" = Plan_cache.Memory (v "2"));
  check_bool "evicted entry must be recomputed" true
    (Plan_cache.lookup c "a" = Plan_cache.Absent);
  Plan_cache.add c "a" (v "1");
  check_bool "store accepts the recomputed entry" true
    (Plan_cache.lookup c "a" = Plan_cache.Memory (v "1"));
  check_int "recomputed entry persisted" 1 (plan_entries ())

let () =
  Alcotest.run "serve"
    [
      ( "plan-cache",
        [
          Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "byte bound" `Quick test_byte_bound;
          Alcotest.test_case "concurrent hit-or-miss" `Quick
            test_concurrent_hit_or_miss;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "read-error classification" `Quick
            test_read_error_classification;
          Alcotest.test_case "response shapes" `Quick test_response_shapes;
          Alcotest.test_case "resync under pipelining" `Quick
            test_resync_pipelined;
        ] );
      ( "observability",
        [
          Alcotest.test_case "request context" `Quick test_reqctx;
          Alcotest.test_case "ambient log context" `Quick test_reqctx_logging;
          Alcotest.test_case "journal record and rotation" `Quick
            test_journal_record_and_rotation;
          Alcotest.test_case "slowlog ring" `Quick test_slowlog;
          Alcotest.test_case "plan-cache lookup tiers" `Quick
            test_lookup_tiers;
        ] );
      ( "trace op",
        [
          Alcotest.test_case "parse, key, strict errors" `Quick
            test_trace_request_parse;
        ] );
      ( "cache maintenance",
        [
          Alcotest.test_case "purge then recompute" `Quick
            test_purge_then_recompute;
        ] );
    ]
