(* Tests for the experiment-support library. *)

open Ctam_exp

let check_bool = Alcotest.(check bool)

let test_table () =
  let t =
    Report.table ~header:[ "app"; "Base"; "Topo" ]
      [ [ "galgel"; "1.00"; "0.72" ]; [ "cg"; "1.00"; "0.69" ] ]
  in
  check_bool "has header" true (Astring.String.is_infix ~affix:"app" t);
  check_bool "has row" true (Astring.String.is_infix ~affix:"galgel" t);
  check_bool "has separator" true (Astring.String.is_infix ~affix:"---" t)

let test_table_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Report.table: ragged row")
    (fun () -> ignore (Report.table ~header:[ "a"; "b" ] [ [ "x" ] ]))

let test_table_geomean () =
  let t =
    Report.table ~geomean:"geomean" ~header:[ "app"; "Base"; "Topo" ]
      [ [ "galgel"; "1.00"; "0.72" ]; [ "cg"; "4.00"; "0.50" ] ]
  in
  check_bool "has geomean label" true
    (Astring.String.is_infix ~affix:"geomean" t);
  (* geomean(1,4)=2, geomean(0.72,0.50)=0.6 *)
  check_bool "col 1 geomean" true (Astring.String.is_infix ~affix:"2.000" t);
  check_bool "col 2 geomean" true (Astring.String.is_infix ~affix:"0.600" t);
  check_bool "no footnote without skips" false
    (Astring.String.is_infix ~affix:"*" t);
  (* non-numeric / non-positive cells are skipped, not fatal *)
  let t2 =
    Report.table ~geomean:"geomean" ~header:[ "app"; "val" ]
      [ [ "a"; "n/a" ]; [ "b"; "1.0" ] ]
  in
  check_bool "dash for non-numeric" true
    (Astring.String.is_infix ~affix:"geomean" t2);
  let t3 =
    Report.table ~geomean:"geomean" ~header:[ "app"; "val" ]
      [ [ "a"; "0" ] ]
  in
  check_bool "zero column still renders" true
    (Astring.String.is_infix ~affix:"geomean" t3)

let test_table_geomean_skips_zero_cells () =
  (* A column mixing zero/absent and positive cells: the geomean covers
     the positive cells only, the column is starred, and a footnote
     explains the star.  Never a nan. *)
  let t =
    Report.table ~geomean:"geomean" ~header:[ "app"; "cycles" ]
      [ [ "a"; "0" ]; [ "b"; "2.0" ]; [ "c"; "8.0" ] ]
  in
  check_bool "no nan" false (Astring.String.is_infix ~affix:"nan" t);
  (* geomean(2,8) = 4, the zero cell skipped *)
  check_bool "geomean over positive cells" true
    (Astring.String.is_infix ~affix:"4.000*" t);
  check_bool "footnote" true
    (Astring.String.is_infix ~affix:"* geomean skips zero/absent cells" t);
  (* mixed absent ("-") cells behave the same *)
  let t2 =
    Report.table ~geomean:"geomean" ~header:[ "app"; "v" ]
      [ [ "a"; "-" ]; [ "b"; "3.0" ] ]
  in
  check_bool "absent cell skipped" true
    (Astring.String.is_infix ~affix:"3.000*" t2);
  (* an all-zero column still renders a dash, and since no column
     produced a geomean there is no footnote *)
  let t3 =
    Report.table ~geomean:"geomean" ~header:[ "app"; "v" ]
      [ [ "a"; "0" ]; [ "b"; "0" ] ]
  in
  check_bool "all-zero column dashes" true
    (Astring.String.is_infix ~affix:"-" t3);
  check_bool "no nan in all-zero" false
    (Astring.String.is_infix ~affix:"nan" t3)

let test_table_geomean_empty () =
  (* the edge case of the issue: no rows -> no geomean row, no crash *)
  let t = Report.table ~geomean:"geomean" ~header:[ "a"; "b" ] [] in
  check_bool "no geomean row on empty table" false
    (Astring.String.is_infix ~affix:"geomean" t);
  check_bool "header still present" true
    (Astring.String.is_infix ~affix:"a" t)

let test_normalized () =
  Alcotest.(check (list (float 1e-9)))
    "normalize" [ 1.0; 0.5; 2.0 ]
    (Report.normalized ~base:4. [ 4.; 2.; 8. ]);
  Alcotest.check_raises "zero base"
    (Invalid_argument "Report.normalized: base") (fun () ->
      ignore (Report.normalized ~base:0. [ 1. ]))

let test_means () =
  Alcotest.(check (float 1e-9)) "geomean" 2. (Report.geomean [ 1.; 4. ]);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Report.mean [ 1.; 4. ]);
  Alcotest.(check (float 1e-9)) "improvement" 25.
    (Report.improvement_pct ~base:4. ~opt:3.);
  Alcotest.check_raises "geomean empty"
    (Invalid_argument "Report.geomean: empty") (fun () ->
      ignore (Report.geomean []))

let prop_geomean_between =
  QCheck.Test.make ~name:"geomean within min/max" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 10) (float_range 0.1 10.))
    (fun vs ->
      let g = Report.geomean vs in
      let mn = List.fold_left min infinity vs in
      let mx = List.fold_left max 0. vs in
      g >= mn -. 1e-9 && g <= mx +. 1e-9)

(* --- timeline trace export ------------------------------------------ *)

module J = Ctam_util.Json

let check_int = Alcotest.(check int)

let small_profile =
  lazy
    (let machine = Ctam_arch.Machines.harpertown ~scale:64 () in
     let prog =
       Ctam_workloads.Kernel.small_program (Ctam_workloads.Suite.by_name "cg")
     in
     Run_report.profile ~timeline_window:1024 Ctam_core.Mapping.Topology_aware
       ~machine prog)

let test_trace_json_structure () =
  let p = Lazy.force small_profile in
  let tl =
    match p.Run_report.timeline with
    | Some tl -> tl
    | None -> Alcotest.fail "profile ?timeline_window did not attach a sink"
  in
  let j =
    Trace_export.trace_json
      ~compile_timings:p.Run_report.compiled.Ctam_core.Mapping.timings
      ~program:"cg" ~machine:"Harpertown" ~scheme:"topology-aware"
      ~legend:p.Run_report.legend tl
  in
  check_bool "version stamped" true
    (J.member "version" j = Some (J.String Build_info.version));
  let events =
    match J.member "traceEvents" j with
    | Some (J.List es) -> es
    | _ -> Alcotest.fail "no traceEvents list"
  in
  check_bool "events non-empty" true (events <> []);
  let last = Hashtbl.create 16 in
  let phs = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let istr name =
        match J.member name ev with
        | Some (J.Int v) -> v
        | _ -> Alcotest.failf "event missing int %S" name
      in
      let ph =
        match J.member "ph" ev with
        | Some (J.String p) -> p
        | _ -> Alcotest.fail "event missing ph"
      in
      check_bool "has name" true
        (match J.member "name" ev with Some (J.String _) -> true | _ -> false);
      Hashtbl.replace phs ph ();
      let ts = istr "ts" and pid = istr "pid" and tid = istr "tid" in
      if ph = "X" then check_bool "dur >= 0" true (istr "dur" >= 0);
      if ph <> "M" then begin
        (match Hashtbl.find_opt last (pid, tid) with
        | Some prev -> check_bool "monotone ts per track" true (ts >= prev)
        | None -> ());
        Hashtbl.replace last (pid, tid) ts
      end)
    events;
  check_bool "has spans" true (Hashtbl.mem phs "X");
  check_bool "has counters" true (Hashtbl.mem phs "C");
  check_bool "has metadata" true (Hashtbl.mem phs "M");
  (* the embedded run-report series is present and sized consistently *)
  let series =
    match J.member "timeline" p.Run_report.report with
    | Some s -> s
    | None -> Alcotest.fail "report missing timeline member"
  in
  let nw =
    match J.member "num_windows" series with
    | Some (J.Int n) -> n
    | _ -> Alcotest.fail "series missing num_windows"
  in
  check_bool "some windows" true (nw > 0);
  (match J.member "cores" series with
  | Some (J.List cores) ->
      check_int "one entry per core"
        (Ctam_cachesim.Timeline.num_cores tl)
        (List.length cores);
      List.iter
        (fun c ->
          match J.member "accesses" c with
          | Some (J.List xs) -> check_int "series length" nw (List.length xs)
          | _ -> Alcotest.fail "core missing accesses series")
        cores
  | _ -> Alcotest.fail "series missing cores");
  (* the report's version member matches the build *)
  check_bool "report version" true
    (J.member "version" p.Run_report.report
    = Some (J.String Build_info.version))

(* --- streamed / sampled simulation ----------------------------------- *)

let test_profile_streamed_matches_dense () =
  (* Generator-backed profiling runs with the full probe stack
     attached, so every counter matrix — not just the aggregate stats
     — must be bit-identical to the dense run's. *)
  let machine = Ctam_arch.Machines.harpertown ~scale:64 () in
  let prog =
    Ctam_workloads.Kernel.small_program (Ctam_workloads.Suite.by_name "cg")
  in
  let dense =
    Run_report.profile Ctam_core.Mapping.Topology_aware ~machine prog
  in
  let streamed =
    Run_report.profile ~stream:true Ctam_core.Mapping.Topology_aware ~machine
      prog
  in
  check_bool "stats bit-identical" true
    (dense.Run_report.stats = streamed.Run_report.stats);
  check_bool "per-core counters identical" true
    (J.member "per_core" dense.Run_report.report
    = J.member "per_core" streamed.Run_report.report);
  check_bool "reuse split identical" true
    (J.member "reuse" dense.Run_report.report
    = J.member "reuse" streamed.Run_report.report)

let test_profile_simulation_member () =
  (* The report documents how the simulation ran.  harpertown at
     scale 16 keeps 4 L1 sets, so factor 2 divides every cache. *)
  let machine = Ctam_arch.Machines.harpertown ~scale:16 () in
  let prog =
    Ctam_workloads.Kernel.small_program (Ctam_workloads.Suite.by_name "cg")
  in
  let p =
    Run_report.profile ~stream:true ~sample_sets:2 ~memo:true
      Ctam_core.Mapping.Combined ~machine prog
  in
  let sim =
    match J.member "simulation" p.Run_report.report with
    | Some s -> s
    | None -> Alcotest.fail "report missing simulation member"
  in
  check_bool "stream" true (J.member "stream" sim = Some (J.Bool true));
  check_bool "sample_sets" true (J.member "sample_sets" sim = Some (J.Int 2));
  check_bool "memo" true (J.member "memo" sim = Some (J.Bool true));
  (* Profiling attaches probes, which makes the memo inert: the table
     is recorded in the report with zero hits. *)
  check_bool "memo inert under probes" true
    (J.member "memo_hits" sim = Some (J.Int 0));
  (* A default profile documents the defaults. *)
  let d = Run_report.profile Ctam_core.Mapping.Combined ~machine prog in
  (match J.member "simulation" d.Run_report.report with
  | Some s ->
      check_bool "defaults" true
        (J.member "stream" s = Some (J.Bool false)
        && J.member "sample_sets" s = Some (J.Int 1)
        && J.member "memo_hits" s = Some J.Null)
  | None -> Alcotest.fail "default report missing simulation member")

let test_sampling_error_bounds_suite () =
  (* Measured envelope of constant-bit set sampling at factor 2 across
     the whole kernel suite × three machines (machine scale 4 keeps
     16 L1 sets).  Structural counters must be exact; the cycles
     estimate was measured at <= 0.34 relative error worst-case
     (mesa/dunnington) and ~0.07 on average — asserted here with
     headroom so the gate flags regressions, not noise. *)
  let machines =
    [
      Ctam_arch.Machines.dunnington ~scale:4 ();
      Ctam_arch.Machines.harpertown ~scale:4 ();
      Ctam_arch.Machines.nehalem ~scale:4 ();
    ]
  in
  let errs = ref [] in
  List.iteri
    (fun i kernel ->
      let prog = Ctam_workloads.Kernel.small_program kernel in
      (* Rotate kernels over the machines (every kernel sampled, every
         machine exercised) — the full matrix at real problem sizes is
         the bench-harness gate's job (tools/check_scale.sh). *)
      let machine = List.nth machines (i mod List.length machines) in
      (* One compile, two simulations: streamed-vs-dense identity is
         covered elsewhere, this gate is about sampling. *)
      let c =
        Ctam_core.Mapping.compile Ctam_core.Mapping.Combined ~machine prog
      in
      let exact = Ctam_core.Mapping.simulate c in
      let approx = Ctam_core.Mapping.simulate ~sample_sets:2 c in
      let e = Ctam_cachesim.Stats.rel_errors ~exact ~approx in
      check_bool "structural counters exact" true
        (List.assoc "total_accesses" e = 0. && List.assoc "barriers" e = 0.);
      let c = List.assoc "cycles" e in
      check_bool
        (Printf.sprintf "%s cycles error %.3f <= 0.45"
           kernel.Ctam_workloads.Kernel.name c)
        true (c <= 0.45);
      errs := c :: !errs)
    Ctam_workloads.Suite.all;
  let mean =
    List.fold_left ( +. ) 0. !errs /. float_of_int (List.length !errs)
  in
  check_bool (Printf.sprintf "mean cycles error %.3f <= 0.15" mean) true
    (mean <= 0.15)

(* --- report diff ----------------------------------------------------- *)

let mk_report ?(cycles = 1000) ?(mem = 100) ?(miss_rate = 0.5) name =
  J.Obj
    [
      ("ctam_report_version", J.Int 1);
      ("version", J.String Build_info.version);
      ("program", J.String name);
      ("scheme", J.String "topology-aware");
      ("machine", J.Obj [ ("name", J.String "Dunnington") ]);
      ( "stats",
        J.Obj
          [
            ("cycles", J.Int cycles);
            ("mem_accesses", J.Int mem);
            ("barriers", J.Int 4);
            ( "per_level",
              J.List
                [
                  J.Obj
                    [ ("level", J.Int 1); ("miss_rate", J.Float miss_rate) ];
                ] );
          ] );
    ]

let test_report_diff () =
  let a = [ mk_report "sp" ] in
  (* identical inputs: nothing changed, nothing regressed *)
  let text, n = Report_diff.render ~path_a:"a" ~path_b:"b" a a in
  check_int "no regressions when identical" 0 n;
  check_bool "says identical" true
    (Astring.String.is_infix ~affix:"all identical" text);
  (* 10% more cycles: flagged at the default 2% threshold *)
  let b = [ mk_report ~cycles:1100 "sp" ] in
  let text, n = Report_diff.render ~path_a:"a" ~path_b:"b" a b in
  check_int "one regression" 1 n;
  check_bool "regression marked" true
    (Astring.String.is_infix ~affix:"!" text);
  check_bool "delta shown" true
    (Astring.String.is_infix ~affix:"+10.00%" text);
  (* a looser threshold lets the same delta pass *)
  let _, n = Report_diff.render ~threshold:20. ~path_a:"a" ~path_b:"b" a b in
  check_int "threshold respected" 0 n;
  (* improvements are shown but never flagged *)
  let c = [ mk_report ~cycles:900 "sp" ] in
  let text, n = Report_diff.render ~path_a:"a" ~path_b:"b" a c in
  check_int "improvement is not a regression" 0 n;
  check_bool "improvement shown" true
    (Astring.String.is_infix ~affix:"-10.00%" text);
  (* keys that only exist on one side are reported, not compared *)
  let d = [ mk_report "unrelated" ] in
  let text, n = Report_diff.render ~path_a:"a" ~path_b:"b" a d in
  check_int "no phantom regressions" 0 n;
  check_bool "unmatched key listed" true
    (Astring.String.is_infix ~affix:"only in B" text)

let test_report_diff_sweep_objects () =
  let sweep geo =
    J.Obj
      [
        ("version", J.String Build_info.version);
        ("machine", J.String "Nehalem");
        ("scheme", J.String "combined");
        ("quick", J.Bool true);
        ( "workloads",
          J.List
            [
              J.Obj
                [
                  ("name", J.String "cg");
                  ("cycles", J.Int 500);
                  ("mem_accesses", J.Int 50);
                  ("barriers", J.Int 3);
                  ("vs_base", J.Float 0.8);
                ];
            ] );
        ("geomean_vs_base", J.Float geo);
      ]
  in
  let text, n =
    Report_diff.render ~path_a:"a" ~path_b:"b" [ sweep 0.8 ] [ sweep 0.9 ]
  in
  check_int "geomean regression flagged" 1 n;
  check_bool "geomean key present" true
    (Astring.String.is_infix ~affix:"geomean" text);
  let _, n =
    Report_diff.render ~path_a:"a" ~path_b:"b" [ sweep 0.9 ] [ sweep 0.8 ]
  in
  check_int "geomean improvement passes" 0 n

(* --- parallel bench sweep ------------------------------------------- *)

(* The acceptance bar of the parallel driver: --jobs must not change a
   single byte of the JSONL trajectories.  Run the full sweep serially
   and on 4 domains and compare the minified rendering line for line.
   (scale 64 keeps the caches tiny so the quick sweep stays cheap.) *)
let test_bench_sweep_parallel_deterministic () =
  let machine = Ctam_arch.Machines.harpertown ~scale:64 () in
  let render objs =
    List.map (Ctam_util.Json.to_string ~minify:true) objs
  in
  let serial = render (Run_report.bench_sweep ~jobs:1 ~quick:true ~machine ()) in
  let parallel =
    render (Run_report.bench_sweep ~jobs:4 ~quick:true ~machine ())
  in
  Alcotest.(check (list string)) "byte-identical JSONL" serial parallel;
  check_bool "one object per scheme" true
    (List.length serial = List.length Ctam_core.Mapping.all_schemes)

let test_experiments_all_parallel_deterministic () =
  (* Same property for the experiment registry, on a cheap subset:
     table1 is pure topology rendering, dep_stats is analysis only.
     Experiments.all runs everything, so compare by_name runs under the
     hood instead: registry order and report text must not depend on
     domains. *)
  let t1_serial = Experiments.by_name "table1" ~quick:true () in
  let results =
    Ctam_util.Parallel.map ~domains:3
      (fun name -> (name, Experiments.by_name name ~quick:true ()))
      [ "table1"; "depstats" ]
  in
  check_bool "parallel table1 identical" true
    (List.assoc "table1" results = t1_serial);
  check_bool "dep_stats nonempty" true
    (String.length (List.assoc "depstats" results) > 0)

let () =
  Alcotest.run "exp"
    [
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_table;
          Alcotest.test_case "ragged" `Quick test_table_ragged;
          Alcotest.test_case "geomean row" `Quick test_table_geomean;
          Alcotest.test_case "geomean skips zero cells" `Quick
            test_table_geomean_skips_zero_cells;
          Alcotest.test_case "geomean row empty" `Quick
            test_table_geomean_empty;
          Alcotest.test_case "normalized" `Quick test_normalized;
          Alcotest.test_case "means" `Quick test_means;
          QCheck_alcotest.to_alcotest prop_geomean_between;
        ] );
      ( "trace",
        [
          Alcotest.test_case "trace JSON structure" `Quick
            test_trace_json_structure;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "streamed profile == dense" `Quick
            test_profile_streamed_matches_dense;
          Alcotest.test_case "simulation member" `Quick
            test_profile_simulation_member;
          Alcotest.test_case "sampling error envelope" `Quick
            test_sampling_error_bounds_suite;
        ] );
      ( "diff",
        [
          Alcotest.test_case "report diff" `Quick test_report_diff;
          Alcotest.test_case "sweep objects" `Quick
            test_report_diff_sweep_objects;
        ] );
      ( "parallel drivers",
        [
          Alcotest.test_case "bench_sweep byte-identical at any --jobs"
            `Slow test_bench_sweep_parallel_deterministic;
          Alcotest.test_case "experiments deterministic under domains" `Quick
            test_experiments_all_parallel_deterministic;
        ] );
    ]
