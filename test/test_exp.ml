(* Tests for the experiment-support library. *)

open Ctam_exp

let check_bool = Alcotest.(check bool)

let test_table () =
  let t =
    Report.table ~header:[ "app"; "Base"; "Topo" ]
      [ [ "galgel"; "1.00"; "0.72" ]; [ "cg"; "1.00"; "0.69" ] ]
  in
  check_bool "has header" true (Astring.String.is_infix ~affix:"app" t);
  check_bool "has row" true (Astring.String.is_infix ~affix:"galgel" t);
  check_bool "has separator" true (Astring.String.is_infix ~affix:"---" t)

let test_table_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Report.table: ragged row")
    (fun () -> ignore (Report.table ~header:[ "a"; "b" ] [ [ "x" ] ]))

let test_table_geomean () =
  let t =
    Report.table ~geomean:"geomean" ~header:[ "app"; "Base"; "Topo" ]
      [ [ "galgel"; "1.00"; "0.72" ]; [ "cg"; "4.00"; "0.50" ] ]
  in
  check_bool "has geomean label" true
    (Astring.String.is_infix ~affix:"geomean" t);
  (* geomean(1,4)=2, geomean(0.72,0.50)=0.6 *)
  check_bool "col 1 geomean" true (Astring.String.is_infix ~affix:"2.000" t);
  check_bool "col 2 geomean" true (Astring.String.is_infix ~affix:"0.600" t);
  (* non-numeric / non-positive columns get a dash, not an exception *)
  let t2 =
    Report.table ~geomean:"geomean" ~header:[ "app"; "val" ]
      [ [ "a"; "n/a" ]; [ "b"; "1.0" ] ]
  in
  check_bool "dash for non-numeric" true
    (Astring.String.is_infix ~affix:"geomean" t2);
  let t3 =
    Report.table ~geomean:"geomean" ~header:[ "app"; "val" ]
      [ [ "a"; "0" ] ]
  in
  check_bool "zero column still renders" true
    (Astring.String.is_infix ~affix:"geomean" t3)

let test_table_geomean_empty () =
  (* the edge case of the issue: no rows -> no geomean row, no crash *)
  let t = Report.table ~geomean:"geomean" ~header:[ "a"; "b" ] [] in
  check_bool "no geomean row on empty table" false
    (Astring.String.is_infix ~affix:"geomean" t);
  check_bool "header still present" true
    (Astring.String.is_infix ~affix:"a" t)

let test_normalized () =
  Alcotest.(check (list (float 1e-9)))
    "normalize" [ 1.0; 0.5; 2.0 ]
    (Report.normalized ~base:4. [ 4.; 2.; 8. ]);
  Alcotest.check_raises "zero base"
    (Invalid_argument "Report.normalized: base") (fun () ->
      ignore (Report.normalized ~base:0. [ 1. ]))

let test_means () =
  Alcotest.(check (float 1e-9)) "geomean" 2. (Report.geomean [ 1.; 4. ]);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Report.mean [ 1.; 4. ]);
  Alcotest.(check (float 1e-9)) "improvement" 25.
    (Report.improvement_pct ~base:4. ~opt:3.);
  Alcotest.check_raises "geomean empty"
    (Invalid_argument "Report.geomean: empty") (fun () ->
      ignore (Report.geomean []))

let prop_geomean_between =
  QCheck.Test.make ~name:"geomean within min/max" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 10) (float_range 0.1 10.))
    (fun vs ->
      let g = Report.geomean vs in
      let mn = List.fold_left min infinity vs in
      let mx = List.fold_left max 0. vs in
      g >= mn -. 1e-9 && g <= mx +. 1e-9)

(* --- parallel bench sweep ------------------------------------------- *)

(* The acceptance bar of the parallel driver: --jobs must not change a
   single byte of the JSONL trajectories.  Run the full sweep serially
   and on 4 domains and compare the minified rendering line for line.
   (scale 64 keeps the caches tiny so the quick sweep stays cheap.) *)
let test_bench_sweep_parallel_deterministic () =
  let machine = Ctam_arch.Machines.harpertown ~scale:64 () in
  let render objs =
    List.map (Ctam_util.Json.to_string ~minify:true) objs
  in
  let serial = render (Run_report.bench_sweep ~jobs:1 ~quick:true ~machine ()) in
  let parallel =
    render (Run_report.bench_sweep ~jobs:4 ~quick:true ~machine ())
  in
  Alcotest.(check (list string)) "byte-identical JSONL" serial parallel;
  check_bool "one object per scheme" true
    (List.length serial = List.length Ctam_core.Mapping.all_schemes)

let test_experiments_all_parallel_deterministic () =
  (* Same property for the experiment registry, on a cheap subset:
     table1 is pure topology rendering, dep_stats is analysis only.
     Experiments.all runs everything, so compare by_name runs under the
     hood instead: registry order and report text must not depend on
     domains. *)
  let t1_serial = Experiments.by_name "table1" ~quick:true () in
  let results =
    Ctam_util.Parallel.map ~domains:3
      (fun name -> (name, Experiments.by_name name ~quick:true ()))
      [ "table1"; "depstats" ]
  in
  check_bool "parallel table1 identical" true
    (List.assoc "table1" results = t1_serial);
  check_bool "dep_stats nonempty" true
    (String.length (List.assoc "depstats" results) > 0)

let () =
  Alcotest.run "exp"
    [
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_table;
          Alcotest.test_case "ragged" `Quick test_table_ragged;
          Alcotest.test_case "geomean row" `Quick test_table_geomean;
          Alcotest.test_case "geomean row empty" `Quick
            test_table_geomean_empty;
          Alcotest.test_case "normalized" `Quick test_normalized;
          Alcotest.test_case "means" `Quick test_means;
          QCheck_alcotest.to_alcotest prop_geomean_between;
        ] );
      ( "parallel drivers",
        [
          Alcotest.test_case "bench_sweep byte-identical at any --jobs"
            `Slow test_bench_sweep_parallel_deterministic;
          Alcotest.test_case "experiments deterministic under domains" `Quick
            test_experiments_all_parallel_deterministic;
        ] );
    ]
