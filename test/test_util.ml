(* Tests for the small JSON library backing run reports. *)

open Ctam_util

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let roundtrip v =
  let s = Json.to_string v in
  let v' = parse_ok s in
  Alcotest.(check bool) ("round-trip " ^ s) true (v = v');
  let m = Json.to_string ~minify:true v in
  Alcotest.(check bool) ("minified round-trip " ^ m) true (parse_ok m = v)

let test_print () =
  check_str "minified object" {|{"a":1,"b":[true,null]}|}
    (Json.to_string ~minify:true
       (Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null ]) ]));
  check_str "string escaping" {|"a\"b\\c\n"|}
    (Json.to_string ~minify:true (Json.String "a\"b\\c\n"));
  check_str "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  check_str "float repr" "1.5" (Json.to_string (Json.Float 1.5))

let test_parse () =
  check_bool "int" true (parse_ok "42" = Json.Int 42);
  check_bool "negative float" true (parse_ok "-2.5e1" = Json.Float (-25.0));
  check_bool "escapes" true
    (parse_ok {|"A\t"|} = Json.String "A\t");
  check_bool "surrogate pair" true
    (parse_ok {|"😀"|} = Json.String "\xf0\x9f\x98\x80");
  check_bool "nested" true
    (parse_ok {| { "xs" : [1, 2, {"y": false}] } |}
    = Json.Obj
        [ ("xs", Json.List [ Json.Int 1; Json.Int 2; Json.Obj [ ("y", Json.Bool false) ] ]) ]);
  check_bool "trailing garbage rejected" true
    (Result.is_error (Json.parse "1 2"));
  check_bool "unterminated rejected" true
    (Result.is_error (Json.parse {|{"a": 1|}));
  check_bool "bare word rejected" true (Result.is_error (Json.parse "nope"))

(* RFC 8259 §7: every control character below 0x20 must be escaped in
   output.  Regression test for the report/trace pipeline, which embeds
   program names and DSL snippets in JSON: raw control bytes in a
   string must never reach the output unescaped, and every one must
   survive a round-trip. *)
let test_control_char_escaping () =
  let all_controls = String.init 0x20 Char.chr in
  let s = Json.to_string ~minify:true (Json.String all_controls) in
  String.iter
    (fun c ->
      check_bool
        (Printf.sprintf "no raw control byte 0x%02x in output" (Char.code c))
        false
        (Char.code c < 0x20))
    s;
  check_bool "named escapes used" true
    (Astring.String.is_infix ~affix:{|\n|} s
    && Astring.String.is_infix ~affix:{|\t|} s
    && Astring.String.is_infix ~affix:{|\r|} s
    && Astring.String.is_infix ~affix:{|\b|} s
    && Astring.String.is_infix ~affix:{|\f|} s);
  check_bool "u-escapes for the rest" true
    (Astring.String.is_infix ~affix:{|\u0000|} s
    && Astring.String.is_infix ~affix:{|\u001f|} s);
  check_bool "control chars round-trip" true
    (parse_ok s = Json.String all_controls);
  (* embedded in structure, pretty-printed *)
  roundtrip (Json.Obj [ ("k\x01", Json.String "v\x02\x7f\n") ]);
  (* the parser accepts the escaped forms too *)
  check_bool "parse \\u000b" true
    (parse_ok {|"\u000b"|} = Json.String "\x0b")

(* Regression tests for the \u escape parser.  Two historical bugs:
   the four "hex digits" were once parsed with OCaml integer syntax,
   so forms JSON forbids ("\u12_3") slipped through; and unpaired
   UTF-16 surrogates were UTF-8-encoded as raw surrogate code points,
   producing invalid UTF-8.  Now: exactly four [0-9a-fA-F] digits,
   and any unpaired half decodes to U+FFFD. *)
let test_unicode_escapes () =
  let rejected s =
    check_bool ("rejected " ^ s) true (Result.is_error (Json.parse s))
  in
  rejected {|"\u12_3"|};
  rejected {|"\u0x41"|};
  rejected {|"\u-041"|};
  rejected {|"\u12"|};
  check_bool "uppercase hex" true
    (parse_ok "\"\\u00E9\"" = Json.String "\xc3\xa9");
  let fffd = "\xef\xbf\xbd" (* U+FFFD replacement character *) in
  check_bool "lone high surrogate" true
    (parse_ok {|"\ud800"|} = Json.String fffd);
  check_bool "lone low surrogate" true
    (parse_ok {|"\udc00"|} = Json.String fffd);
  check_bool "high surrogate then text" true
    (parse_ok {|"\ud800x"|} = Json.String (fffd ^ "x"));
  check_bool "high surrogate then non-surrogate escape" true
    (parse_ok "\"\\ud800\\u0041\"" = Json.String (fffd ^ "A"));
  check_bool "high, high, low: the tail still pairs" true
    (parse_ok "\"\\ud83d\\ud83d\\ude00\""
    = Json.String (fffd ^ "\xf0\x9f\x98\x80"));
  check_bool "valid pair still decodes" true
    (parse_ok "\"\\ud83d\\ude00\"" = Json.String "\xf0\x9f\x98\x80");
  check_bool "last valid pair" true
    (parse_ok "\"\\udbff\\udfff\"" = Json.String "\xf4\x8f\xbf\xbf");
  (* The output being valid UTF-8 means it survives a print/parse
     round-trip (the printer would otherwise emit broken escapes). *)
  roundtrip (parse_ok "\"\\ud800 \\udfff \\ud83d\\ude00\"")

let test_roundtrip () =
  roundtrip Json.Null;
  roundtrip (Json.Int (-7));
  roundtrip (Json.Float 0.125);
  roundtrip (Json.String "caché θ\n\"quoted\"");
  roundtrip
    (Json.Obj
       [
         ("empty_list", Json.List []);
         ("empty_obj", Json.Obj []);
         ("mix", Json.List [ Json.Bool false; Json.Null; Json.Float 3.5 ]);
       ])

let test_accessors () =
  let v = parse_ok {|{"a": {"b": [10, 20]}, "f": 2.0}|} in
  check_int "member chain" 20
    (Json.member_exn "a" v |> Json.member_exn "b" |> Json.to_list
    |> fun l -> Json.to_int (List.nth l 1));
  check_bool "missing member" true (Json.member "zzz" v = None);
  Alcotest.(check (float 0.0)) "to_float on int" 10.0
    (Json.member_exn "a" v |> Json.member_exn "b" |> Json.to_list |> List.hd
   |> Json.to_float);
  Alcotest.(check (float 0.0)) "to_float on float" 2.0
    (Json.to_float (Json.member_exn "f" v))

(* Stats.to_json / of_json round-trip (satellite of the Stats work;
   lives here because it exercises the JSON layer end to end). *)
let test_stats_roundtrip () =
  let open Ctam_cachesim in
  let stats =
    {
      Stats.per_level =
        [
          { Stats.level = 1; hits = 100; misses = 10 };
          { Stats.level = 2; hits = 7; misses = 3 };
        ];
      mem_accesses = 3;
      total_accesses = 110;
      cycles = 4242;
      core_cycles = [| 4242; 17; 0 |];
      barriers = 2;
    }
  in
  let stats' = Stats.of_json (Stats.to_json stats) in
  check_bool "round-trip" true (stats = stats');
  (* and through the printer/parser *)
  let reparsed = parse_ok (Json.to_string (Stats.to_json stats)) in
  check_bool "textual round-trip" true (stats = Stats.of_json reparsed);
  check_bool "malformed rejected" true
    (try
       ignore (Stats.of_json (Json.String "nope"));
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "util"
    [
      ( "json",
        [
          Alcotest.test_case "printing" `Quick test_print;
          Alcotest.test_case "parsing" `Quick test_parse;
          Alcotest.test_case "control-char escaping (RFC 8259)" `Quick
            test_control_char_escaping;
          Alcotest.test_case "unicode escapes and surrogates" `Quick
            test_unicode_escapes;
          Alcotest.test_case "round-trips" `Quick test_roundtrip;
          Alcotest.test_case "accessors" `Quick test_accessors;
        ] );
      ( "stats",
        [ Alcotest.test_case "to_json/of_json" `Quick test_stats_roundtrip ] );
    ]
