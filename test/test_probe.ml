(* Probe/event-sink tests.

   The central claim of the observability layer is that probes only
   observe: summed probe events must exactly reproduce the Stats.t of
   the same run, and attaching (or not attaching) a sink must not
   change simulated time.  We check both against the paper's Figure 5
   example program, for the parallel engine and the serial one. *)

open Ctam_cachesim
module Mapping = Ctam_core.Mapping

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fig5 =
  lazy
    (let ic = open_in "../examples/programs/fig5.ctam" in
     let n = in_channel_length ic in
     let text = really_input_string ic n in
     close_in ic;
     Ctam_frontend.Lower.lower_program (Ctam_frontend.Parser.parse text))

let machine () = Ctam_arch.Machines.dunnington ~scale:16 ()

let compiled () =
  Mapping.compile Mapping.Topology_aware ~machine:(machine ())
    (Lazy.force fig5)

(* --- a raw recording sink (independent of Probe_sinks) -------------- *)

type record = {
  mutable r_accesses : int;
  mutable r_mem : int;
  mutable r_hits : (int, int) Hashtbl.t;    (* level -> hits *)
  mutable r_misses : (int, int) Hashtbl.t;  (* level -> misses *)
  mutable r_barriers : int;
  mutable r_phases : int;
}

let recorder () =
  let r =
    {
      r_accesses = 0;
      r_mem = 0;
      r_hits = Hashtbl.create 7;
      r_misses = Hashtbl.create 7;
      r_barriers = 0;
      r_phases = 0;
    }
  in
  let bump tbl level =
    Hashtbl.replace tbl level (1 + Option.value ~default:0 (Hashtbl.find_opt tbl level))
  in
  let probe =
    {
      Probe.null with
      on_access = (fun ~core:_ ~addr:_ ~line:_ ~write:_ -> r.r_accesses <- r.r_accesses + 1);
      on_mem = (fun ~core:_ ~line:_ -> r.r_mem <- r.r_mem + 1);
      on_level =
        (fun ~core:_ ~level ~set:_ ~line:_ ~hit ->
          bump (if hit then r.r_hits else r.r_misses) level);
      on_barrier_enter = (fun ~phase:_ ~cycles:_ -> r.r_barriers <- r.r_barriers + 1);
      on_phase_start = (fun ~phase:_ -> r.r_phases <- r.r_phases + 1);
    }
  in
  (r, probe)

let level_of tbl level = Option.value ~default:0 (Hashtbl.find_opt tbl level)

(* Summed raw events = Stats.t, for the parallel engine. *)
let test_recorder_matches_stats_run () =
  let c = compiled () in
  let r, probe = recorder () in
  let stats = Mapping.simulate ~probe c in
  check_int "accesses" stats.Stats.total_accesses r.r_accesses;
  check_int "mem" stats.Stats.mem_accesses r.r_mem;
  check_int "barriers" stats.Stats.barriers r.r_barriers;
  check_int "phases" (List.length c.Mapping.phases) r.r_phases;
  List.iter
    (fun l ->
      check_int
        (Printf.sprintf "L%d hits" l.Stats.level)
        l.Stats.hits
        (level_of r.r_hits l.Stats.level);
      check_int
        (Printf.sprintf "L%d misses" l.Stats.level)
        l.Stats.misses
        (level_of r.r_misses l.Stats.level))
    stats.Stats.per_level

(* Same property for the serial engine (run_serial). *)
let test_recorder_matches_stats_serial () =
  let prog = Lazy.force fig5 in
  let machine = machine () in
  let nest = List.hd (Ctam_ir.Program.parallel_nests prog) in
  let _, layout =
    Ctam_blocks.Block_map.for_program ~block_size:2048 ~line:64 prog
  in
  let stream = Ctam_core.Trace.serial layout nest in
  let r, probe = recorder () in
  let h = Hierarchy.create ~probe machine in
  let stats = Engine.run_serial h stream in
  check_int "accesses" stats.Stats.total_accesses r.r_accesses;
  check_int "mem" stats.Stats.mem_accesses r.r_mem;
  check_int "barriers" stats.Stats.barriers r.r_barriers;
  List.iter
    (fun l ->
      check_int
        (Printf.sprintf "L%d hits" l.Stats.level)
        l.Stats.hits
        (level_of r.r_hits l.Stats.level);
      check_int
        (Printf.sprintf "L%d misses" l.Stats.level)
        l.Stats.misses
        (level_of r.r_misses l.Stats.level))
    stats.Stats.per_level

(* The Counters sink's matrices sum to the same aggregates. *)
let test_counters_match_stats () =
  let c = compiled () in
  let segments, _legend = Mapping.segments c in
  let cnt = Probe_sinks.Counters.create ~segments c.Mapping.machine in
  let stats = Mapping.simulate ~probe:(Probe_sinks.Counters.probe cnt) c in
  check_int "total accesses" stats.Stats.total_accesses
    (Probe_sinks.Counters.total_accesses cnt);
  check_int "mem" stats.Stats.mem_accesses
    (Probe_sinks.Counters.mem_total cnt);
  check_int "barriers" stats.Stats.barriers
    (Probe_sinks.Counters.barriers cnt);
  check_int "phases" (List.length c.Mapping.phases)
    (Probe_sinks.Counters.phases cnt);
  let totals = Probe_sinks.Counters.per_level_totals cnt in
  check_int "level count" (List.length stats.Stats.per_level)
    (List.length totals);
  List.iter2
    (fun (a : Stats.level_stats) (b : Stats.level_stats) ->
      check_int "level" a.Stats.level b.Stats.level;
      check_int (Printf.sprintf "L%d hits" a.Stats.level) a.Stats.hits b.Stats.hits;
      check_int (Printf.sprintf "L%d misses" a.Stats.level) a.Stats.misses b.Stats.misses)
    stats.Stats.per_level totals;
  (* per-core matrices sum to the aggregates too *)
  let cores = c.Mapping.machine.Ctam_arch.Topology.num_cores in
  let sum f = List.fold_left (fun a core -> a + f ~core) 0 (List.init cores Fun.id) in
  check_int "per-core accesses sum" stats.Stats.total_accesses
    (sum (fun ~core -> Probe_sinks.Counters.accesses cnt ~core));
  check_int "per-core mem sum" stats.Stats.mem_accesses
    (sum (fun ~core -> Probe_sinks.Counters.mem cnt ~core))

(* Group attribution: every access and miss is charged to exactly one
   group, so group totals sum back to the aggregates. *)
let test_group_attribution_sums () =
  let c = compiled () in
  let segments, legend = Mapping.segments c in
  let cnt = Probe_sinks.Counters.create ~segments c.Mapping.machine in
  let stats = Mapping.simulate ~probe:(Probe_sinks.Counters.probe cnt) c in
  let groups = Probe_sinks.Counters.group_stats cnt in
  check_bool "some groups" true (groups <> []);
  let sum f = List.fold_left (fun a (_, g) -> a + f g) 0 groups in
  check_int "group accesses sum" stats.Stats.total_accesses
    (sum (fun g -> g.Probe_sinks.Counters.g_accesses));
  check_int "group mem sum" stats.Stats.mem_accesses
    (sum (fun g -> g.Probe_sinks.Counters.g_mem));
  let levels = Probe_sinks.Counters.levels cnt in
  List.iteri
    (fun i level ->
      check_int
        (Printf.sprintf "group L%d misses sum" level)
        (Stats.misses_at stats level)
        (sum (fun g -> g.Probe_sinks.Counters.g_misses.(i))))
    levels;
  (* every segment id used by a group appears in the legend *)
  List.iter
    (fun (id, _) ->
      check_bool
        (Printf.sprintf "segment %d in legend" id)
        true (List.mem_assoc id legend))
    groups

(* Reuse split partitions all accesses. *)
let test_reuse_split_partitions () =
  let c = compiled () in
  let rs = Probe_sinks.Reuse_split.create c.Mapping.machine in
  let stats = Mapping.simulate ~probe:(Probe_sinks.Reuse_split.probe rs) c in
  let count (h : Reuse.histogram) =
    Array.fold_left ( + ) 0 h.Reuse.buckets
  in
  check_int "total" stats.Stats.total_accesses
    (Probe_sinks.Reuse_split.total rs);
  check_int "partition" stats.Stats.total_accesses
    (Probe_sinks.Reuse_split.cold rs
    + count (Probe_sinks.Reuse_split.vertical rs)
    + count (Probe_sinks.Reuse_split.horizontal rs)
    + count (Probe_sinks.Reuse_split.cross rs));
  (* conflicts: per-level per-set miss counts sum to the level's misses *)
  List.iter
    (fun (level, sets) ->
      check_int
        (Printf.sprintf "L%d conflict sum" level)
        (Stats.misses_at stats level)
        (Array.fold_left ( + ) 0 sets))
    (Probe_sinks.Reuse_split.conflicts rs)

(* Probes only observe: cycles identical with and without sinks. *)
let test_null_sink_identical () =
  let c = compiled () in
  let plain = Mapping.simulate c in
  let observed =
    let cnt = Probe_sinks.Counters.create c.Mapping.machine in
    let rs = Probe_sinks.Reuse_split.create c.Mapping.machine in
    Mapping.simulate
      ~probe:
        (Probe.seq
           [ Probe_sinks.Counters.probe cnt; Probe_sinks.Reuse_split.probe rs ])
      c
  in
  check_int "cycles" plain.Stats.cycles observed.Stats.cycles;
  check_int "mem" plain.Stats.mem_accesses observed.Stats.mem_accesses;
  Array.iteri
    (fun i t -> check_int (Printf.sprintf "core %d cycles" i) t
        observed.Stats.core_cycles.(i))
    plain.Stats.core_cycles

(* Retire events: exactly one per access, with per-core non-decreasing
   clocks, and stats.cycles = the largest clock any event reported. *)
let test_retire_events () =
  let c = compiled () in
  let n = c.Mapping.machine.Ctam_arch.Topology.num_cores in
  let count = ref 0 in
  let last = Array.make n 0 in
  let maxc = ref 0 in
  let probe =
    {
      Probe.null with
      on_retire =
        (fun ~core ~cycles ->
          incr count;
          check_bool "retire clocks non-decreasing per core" true
            (cycles >= last.(core));
          last.(core) <- cycles;
          if cycles > !maxc then maxc := cycles);
      on_barrier_exit =
        (fun ~phase:_ ~cycles ->
          Array.fill last 0 n cycles;
          if cycles > !maxc then maxc := cycles);
    }
  in
  let stats = Mapping.simulate ~probe c in
  check_int "one retire per access" stats.Stats.total_accesses !count;
  check_int "max event clock = stats.cycles" stats.Stats.cycles !maxc

(* The Timeline sink's spans, windowed series and heatmaps are
   internally consistent and reproduce the run's aggregates. *)
let timeline_run window =
  let c = compiled () in
  let segments, _legend = Mapping.segments c in
  let tl = Timeline.create ~window ~segments c.Mapping.machine in
  let stats = Mapping.simulate ~probe:(Timeline.probe tl) c in
  (c, tl, stats)

let test_timeline_consistency () =
  let c, tl, stats = timeline_run 512 in
  let n = c.Mapping.machine.Ctam_arch.Topology.num_cores in
  check_int "max_cycles = stats.cycles" stats.Stats.cycles
    (Timeline.max_cycles tl);
  check_int "barriers" stats.Stats.barriers
    (List.length (Timeline.barriers tl));
  check_int "phases" (List.length c.Mapping.phases)
    (List.length (Timeline.phases tl));
  let spans = Timeline.spans tl in
  check_bool "some spans" true (spans <> []);
  let sum f = List.fold_left (fun a sp -> a + f sp) 0 spans in
  check_int "span accesses sum" stats.Stats.total_accesses
    (sum (fun sp -> sp.Timeline.sp_accesses));
  check_int "span mem sum" stats.Stats.mem_accesses
    (sum (fun sp -> sp.Timeline.sp_mem));
  List.iter
    (fun sp ->
      check_bool "span is an interval" true
        (sp.Timeline.sp_start <= sp.Timeline.sp_end);
      check_bool "span within run" true
        (sp.Timeline.sp_end <= stats.Stats.cycles))
    spans;
  let nw = Timeline.num_windows tl in
  check_bool "several windows" true (nw > 1);
  let sum_series f =
    List.fold_left
      (fun a core -> a + Array.fold_left ( + ) 0 (f ~core))
      0
      (List.init n Fun.id)
  in
  check_int "access series sum" stats.Stats.total_accesses
    (sum_series (fun ~core -> Timeline.accesses_series tl ~core));
  Array.iteri
    (fun core busy ->
      check_int
        (Printf.sprintf "core %d busy series sum" core)
        busy
        (Array.fold_left ( + ) 0 (Timeline.busy_series tl ~core)))
    stats.Stats.core_cycles;
  List.iter
    (fun level ->
      let hits =
        sum_series (fun ~core -> Timeline.hits_series tl ~core ~level)
      in
      let misses =
        sum_series (fun ~core -> Timeline.misses_series tl ~core ~level)
      in
      let expect =
        List.find (fun l -> l.Stats.level = level) stats.Stats.per_level
      in
      check_int (Printf.sprintf "L%d hit series sum" level) expect.Stats.hits
        hits;
      check_int
        (Printf.sprintf "L%d miss series sum" level)
        expect.Stats.misses misses;
      (* heatmap cells partition the same accesses and misses *)
      match Timeline.heatmap tl ~level with
      | None -> Alcotest.failf "missing heatmap for L%d" level
      | Some (sets, acc, miss) ->
          check_bool "heatmap has sets" true (sets > 0);
          let cell_sum m =
            Array.fold_left
              (fun a row -> a + Array.fold_left ( + ) 0 row)
              0 m
          in
          check_int
            (Printf.sprintf "L%d heatmap accesses" level)
            (expect.Stats.hits + expect.Stats.misses)
            (cell_sum acc);
          check_int
            (Printf.sprintf "L%d heatmap misses" level)
            expect.Stats.misses (cell_sum miss))
    (Timeline.levels tl);
  let v, hz, x, cold = Timeline.reuse_series tl in
  let s a = Array.fold_left ( + ) 0 a in
  check_int "reuse series partition accesses" stats.Stats.total_accesses
    (s v + s hz + s x + s cold);
  (* the ASCII renderer produces something for every level *)
  List.iter
    (fun level ->
      match Timeline.render_heatmap tl ~level with
      | Some text -> check_bool "renders" true (String.length text > 0)
      | None -> Alcotest.failf "no rendering for L%d" level)
    (Timeline.levels tl)

(* Attaching the timeline never changes simulated time. *)
let test_timeline_observe_only () =
  let c = compiled () in
  let plain = Mapping.simulate c in
  let segments, _ = Mapping.segments c in
  let tl = Timeline.create ~window:512 ~segments c.Mapping.machine in
  let observed = Mapping.simulate ~probe:(Timeline.probe tl) c in
  check_int "cycles" plain.Stats.cycles observed.Stats.cycles;
  check_int "mem" plain.Stats.mem_accesses observed.Stats.mem_accesses;
  Array.iteri
    (fun i t ->
      check_int (Printf.sprintf "core %d cycles" i) t
        observed.Stats.core_cycles.(i))
    plain.Stats.core_cycles

(* Two independent replays produce structurally identical timelines. *)
let test_timeline_deterministic () =
  let _, tl1, s1 = timeline_run 1024 in
  let _, tl2, s2 = timeline_run 1024 in
  check_bool "stats equal" true (s1 = s2);
  check_bool "spans equal" true (Timeline.spans tl1 = Timeline.spans tl2);
  check_bool "barriers equal" true
    (Timeline.barriers tl1 = Timeline.barriers tl2);
  check_bool "invalidations equal" true
    (Timeline.invalidations tl1 = Timeline.invalidations tl2);
  check_int "windows equal" (Timeline.num_windows tl1)
    (Timeline.num_windows tl2);
  let n = Timeline.num_cores tl1 in
  for core = 0 to n - 1 do
    check_bool "access series equal" true
      (Timeline.accesses_series tl1 ~core = Timeline.accesses_series tl2 ~core);
    check_bool "busy series equal" true
      (Timeline.busy_series tl1 ~core = Timeline.busy_series tl2 ~core)
  done;
  check_bool "reuse series equal" true
    (Timeline.reuse_series tl1 = Timeline.reuse_series tl2);
  List.iter
    (fun level ->
      check_bool "heatmaps equal" true
        (Timeline.heatmap tl1 ~level = Timeline.heatmap tl2 ~level))
    (Timeline.levels tl1)

(* Probe combinators. *)
let test_probe_combinators () =
  check_bool "null is null" true (Probe.is_null Probe.null);
  check_bool "seq [] is null" true (Probe.is_null (Probe.seq []));
  check_bool "seq [null; null] is null" true
    (Probe.is_null (Probe.seq [ Probe.null; Probe.null ]));
  let hits = ref 0 in
  let p =
    { Probe.null with on_mem = (fun ~core:_ ~line:_ -> incr hits) }
  in
  check_bool "non-null" false (Probe.is_null p);
  let s = Probe.seq [ Probe.null; p; p ] in
  s.Probe.on_mem ~core:0 ~line:0;
  check_int "fan-out" 2 !hits;
  (* sequencing a single non-null probe keeps it intact *)
  (Probe.seq [ p ]).Probe.on_mem ~core:0 ~line:1;
  check_int "single" 3 !hits

(* Online reuse recorder agrees with the offline one. *)
let test_online_reuse_matches_offline () =
  let lines = [| 1; 2; 3; 1; 2; 3; 7; 1; 7; 7 |] in
  let offline = Reuse.of_lines lines in
  let online = Reuse.Online.create () in
  let hist = Array.make (Array.length offline.Reuse.buckets) 0 in
  let cold = ref 0 in
  Array.iter
    (fun line ->
      match Reuse.Online.touch online line with
      | None -> incr cold
      | Some d -> hist.(Reuse.bucket_of d) <- hist.(Reuse.bucket_of d) + 1)
    lines;
  check_int "cold" offline.Reuse.cold !cold;
  Array.iteri
    (fun i c -> check_int (Printf.sprintf "bucket %d" i) c hist.(i))
    offline.Reuse.buckets

let () =
  Alcotest.run "probe"
    [
      ( "events",
        [
          Alcotest.test_case "recorder = stats (Engine.run)" `Quick
            test_recorder_matches_stats_run;
          Alcotest.test_case "recorder = stats (run_serial)" `Quick
            test_recorder_matches_stats_serial;
          Alcotest.test_case "Counters sink = stats" `Quick
            test_counters_match_stats;
          Alcotest.test_case "group attribution sums" `Quick
            test_group_attribution_sums;
          Alcotest.test_case "reuse split partitions accesses" `Quick
            test_reuse_split_partitions;
          Alcotest.test_case "retire events" `Quick test_retire_events;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "consistent with stats" `Quick
            test_timeline_consistency;
          Alcotest.test_case "replay deterministic" `Quick
            test_timeline_deterministic;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "null sink leaves cycles identical" `Quick
            test_null_sink_identical;
          Alcotest.test_case "timeline sink leaves cycles identical" `Quick
            test_timeline_observe_only;
        ] );
      ( "api",
        [
          Alcotest.test_case "combinators" `Quick test_probe_combinators;
          Alcotest.test_case "online reuse = offline" `Quick
            test_online_reuse_matches_offline;
        ] );
    ]
