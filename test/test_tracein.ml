(* Tests for the trace-driven frontend: Lackey-dialect line parsing,
   the counting pass, address transforms (rebase / fold / line
   splitting), round-robin vs tagged multi-core interleaving, strict
   vs lossy error handling with line positions, and the contract that
   the streaming cursors, the materialized arrays, and Ingest.run all
   describe the same access sequence (including under set sampling
   and gzip compression). *)

open Ctam_cachesim
open Ctam_tracein

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let tmp_trace text =
  let path = Filename.temp_file "ctam-trace" ".trace" in
  write_file path text;
  path

(* --- Lackey.parse_line ------------------------------------------------- *)

let rec_ok ?core ?time kind addr size =
  Ok (Some { Lackey.kind; addr; size; core; time })

let test_parse_forms () =
  let cases =
    [
      ("I  0x40001000,4", rec_ok Lackey.Instr 0x40001000 4);
      (" L 0x1000,8", rec_ok Lackey.Load 0x1000 8);
      (" S 0x1040,8", rec_ok Lackey.Store 0x1040 8);
      (" M 0x1080,4", rec_ok Lackey.Modify 0x1080 4);
      (* Lackey prints bare hex; size defaults to 1. *)
      ("L ff10,2", rec_ok Lackey.Load 0xff10 2);
      ("R 0x20", rec_ok Lackey.Load 0x20 1);
      ("W 0x1100", rec_ok Lackey.Store 0x1100 1);
      (* Multi-core extension: CORE: prefix and @TIME suffix. *)
      ("1: L 0x2000,8 @5", rec_ok ~core:1 ~time:5 Lackey.Load 0x2000 8);
      ("0: W 40 @0", rec_ok ~core:0 ~time:0 Lackey.Store 0x40 1);
      (* Noise, not malformed: blank, comments, Valgrind chatter. *)
      ("", Ok None);
      ("   ", Ok None);
      ("# a comment", Ok None);
      ("==1234== lackey trace", Ok None);
      ("--1234-- warning", Ok None);
    ]
  in
  List.iter
    (fun (line, expect) ->
      check_bool (Printf.sprintf "parse %S" line) true
        (Lackey.parse_line line = expect))
    cases;
  List.iter
    (fun line ->
      check_bool
        (Printf.sprintf "reject %S" line)
        true
        (match Lackey.parse_line line with Error _ -> true | Ok _ -> false))
    [ " X 0xnonsense"; "L"; "L 0xzz,4"; "L 0x10,q"; "9x: L 0x10" ]

(* --- the counting pass ------------------------------------------------- *)

let sample_trace =
  String.concat "\n"
    [
      "==1234== lackey"; "I 0x40000000,4"; "# warm-up"; " L 0x1000,8";
      " S 0x1040,8"; " M 0x1080,4"; "R 0x20"; "W 0x1100"; "";
    ]

let test_scan_counts () =
  let scan = Ingest.scan Ingest.default (Reader.Text sample_trace) in
  check_int "lines (noise included)" 8 scan.Ingest.scanned_lines;
  (* Every well-formed record counts, including the instruction fetch
     that --instr-off then drops; M expands to 2 accesses. *)
  check_int "records" 6 scan.Ingest.records;
  check_int "malformed" 0 scan.Ingest.malformed;
  check_int "accesses on core 0" 6 scan.Ingest.per_core.(0);
  check_int "min addr" 0x20 scan.Ingest.min_addr;
  check_int "max addr" 0x1100 scan.Ingest.max_addr;
  (* With instruction fetches kept the fetch streams too. *)
  let scan_i =
    Ingest.scan { Ingest.default with Ingest.instr = true }
      (Reader.Text sample_trace)
  in
  check_int "accesses with --instr" 7 scan_i.Ingest.per_core.(0);
  check_int "instr widens the range" 0x40000000 scan_i.Ingest.max_addr

let test_modify_is_load_then_store () =
  let loaded =
    Ingest.load Ingest.default (Reader.Text " M 0x80,4\n")
  in
  check_int "one core" 1 (Array.length loaded);
  check_int "two accesses" 2 (Array.length loaded.(0));
  let a0, w0 = Engine.decode_access loaded.(0).(0) in
  let a1, w1 = Engine.decode_access loaded.(0).(1) in
  check_bool "load first" true (a0 = 0x80 && not w0);
  check_bool "store second" true (a1 = 0x80 && w1)

let test_split_spans () =
  (* A 16-byte access starting 8 bytes before a 64-byte line boundary
     touches two lines; --split emits one access per line. *)
  let opts = { Ingest.default with Ingest.split = Some 64 } in
  let loaded = Ingest.load opts (Reader.Text " L 0x38,16\n S 0x40,8\n") in
  check_int "span split + aligned" 3 (Array.length loaded.(0));
  let addrs =
    Array.to_list (Array.map (fun e -> fst (Engine.decode_access e)) loaded.(0))
  in
  (* The first sub-access keeps the original address; the rest are the
     base addresses of the further lines the span touches. *)
  check_bool "split addresses" true (addrs = [ 0x38; 0x40; 0x40 ])

(* --- strict / lossy --------------------------------------------------- *)

let bad_trace = " L 0x1000,8\n S 0x1040,8\n X 0xnonsense\n L 0x1080,4\n"

let test_strict_positions () =
  check_bool "strict raises with the line number" true
    (match Ingest.scan Ingest.default (Reader.Text bad_trace) with
    | exception Ingest.Error msg ->
        Astring.String.is_infix ~affix:"line 3" msg
    | _ -> false)

let test_lossy_counts () =
  let scan =
    Ingest.scan { Ingest.default with Ingest.lossy = true }
      (Reader.Text bad_trace)
  in
  check_int "malformed counted" 1 scan.Ingest.malformed;
  check_int "good records survive" 3 scan.Ingest.records

(* --- interleaving ------------------------------------------------------ *)

let tagged_trace =
  "0: L 0x100,4 @1\n1: L 0x200,4 @1\n0: S 0x100,4 @2\n L 0x300,4\n"

let test_round_robin_deals () =
  let opts = { Ingest.default with Ingest.cores = 2 } in
  let scan = Ingest.scan opts (Reader.Text tagged_trace) in
  (* Round-robin ignores the tags and deals in arrival order. *)
  check_int "core 0" 2 scan.Ingest.per_core.(0);
  check_int "core 1" 2 scan.Ingest.per_core.(1)

let test_tagged_deals () =
  let opts =
    { Ingest.default with Ingest.cores = 2; Ingest.interleave = Ingest.Tagged }
  in
  let scan = Ingest.scan opts (Reader.Text tagged_trace) in
  (* Tags rule; the untagged record lands on core 0. *)
  check_int "core 0" 3 scan.Ingest.per_core.(0);
  check_int "core 1" 1 scan.Ingest.per_core.(1)

let test_tagged_strict_rejects () =
  let opts =
    { Ingest.default with Ingest.cores = 2; Ingest.interleave = Ingest.Tagged }
  in
  check_bool "out-of-range tag" true
    (match Ingest.scan opts (Reader.Text "5: L 0x10,4\n") with
    | exception Ingest.Error _ -> true
    | _ -> false);
  check_bool "backwards per-core time" true
    (match
       Ingest.scan opts (Reader.Text "0: L 0x10,4 @9\n0: L 0x20,4 @3\n")
     with
    | exception Ingest.Error _ -> true
    | _ -> false);
  (* Round-robin does not interpret tags, so the same lines pass. *)
  let rr = { opts with Ingest.interleave = Ingest.Round_robin } in
  check_int "round-robin ignores tags" 2
    (Ingest.scan rr (Reader.Text "5: L 0x10,4\n0: L 0x20,4 @3\n")).Ingest
      .records

(* --- streams == load == run ------------------------------------------- *)

let big_trace =
  let buf = Buffer.create 4096 in
  let seed = ref 123456789 in
  let rnd () =
    seed := (!seed * 1103515245) + 12345;
    (!seed lsr 7) land 0xffff
  in
  for i = 0 to 499 do
    let k = if i mod 3 = 0 then "S" else "L" in
    Buffer.add_string buf
      (Printf.sprintf " %s 0x%x,%d\n" k (0x10000 + rnd ()) (1 + (i mod 8)))
  done;
  Buffer.contents buf

let machine () = Ctam_arch.Machines.dunnington ~scale:16 ()

let test_streams_match_load () =
  let opts = { Ingest.default with Ingest.cores = 2 } in
  let src = Reader.Text big_trace in
  let loaded = Ingest.load opts src in
  let forced = Engine.force_phase (Ingest.streams opts src) in
  check_int "same core count" (Array.length loaded) (Array.length forced);
  Array.iteri
    (fun i dense ->
      check_bool
        (Printf.sprintf "core %d identical" i)
        true (dense = forced.(i)))
    loaded;
  (* And running the cursors through the engine equals running the
     dense arrays: the streaming path changes nothing observable. *)
  let m = machine () in
  let dense_phase =
    Array.init m.Ctam_arch.Topology.num_cores (fun i ->
        if i < Array.length loaded then loaded.(i) else [||])
  in
  let st_dense = Engine.run (Hierarchy.create m) [ dense_phase ] in
  let st_run, scan = Ingest.run ~machine:m opts src in
  check_int "scan agrees with load" (Array.length loaded.(0))
    scan.Ingest.per_core.(0);
  check_bool "stats identical" true (st_dense = st_run)

let test_sample_sets_compose () =
  (* The cursors' skip_to_sample fast path must agree with sampling a
     dense replay of the same trace. *)
  let opts = { Ingest.default with Ingest.cores = 2 } in
  let src = Reader.Text big_trace in
  (* Full-size caches: sample_sets must divide every cache's set
     count, and the scaled-down machines get too small. *)
  let m = Ctam_arch.Machines.dunnington ~scale:1 () in
  let loaded = Ingest.load opts src in
  let dense_phase =
    Array.init m.Ctam_arch.Topology.num_cores (fun i ->
        if i < Array.length loaded then loaded.(i) else [||])
  in
  let st_dense =
    Engine.run (Hierarchy.create ~sample_sets:8 m) [ dense_phase ]
  in
  let st_stream, _ = Ingest.run ~sample_sets:8 ~machine:m opts src in
  check_bool "sampled stats identical" true (st_dense = st_stream)

let test_fold_and_rebase () =
  let src = Reader.Text " L 0xdeadb000,8\n S 0xdeadb040,8\n L 0xdeadf000,4\n" in
  (* Rebase pulls the trace down to offset 0. *)
  let rebased =
    Ingest.load { Ingest.default with Ingest.rebase = true } src
  in
  let addrs c = Array.map (fun e -> fst (Engine.decode_access e)) c in
  check_bool "rebased to zero" true
    (addrs rebased.(0) = [| 0x0; 0x40; 0x4000 |]);
  (* Folding wraps into a 2^bits window (after rebasing). *)
  let folded =
    Ingest.load
      { Ingest.default with Ingest.rebase = true; Ingest.fold_bits = Some 12 }
      src
  in
  check_bool "folded into 4K" true
    (Array.for_all (fun a -> a < 4096) (addrs folded.(0)));
  check_bool "low bits preserved" true (addrs folded.(0) = [| 0x0; 0x40; 0x0 |])

let test_run_rejects_too_many_cores () =
  let m = machine () in
  let opts =
    { Ingest.default with Ingest.cores = m.Ctam_arch.Topology.num_cores + 1 }
  in
  check_bool "more trace cores than machine cores" true
    (match Ingest.run ~machine:m opts (Reader.Text " L 0x10,4\n") with
    | exception Ingest.Error _ -> true
    | _ -> false)

(* --- sources ----------------------------------------------------------- *)

let test_file_matches_text () =
  let path = tmp_trace big_trace in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let opts = { Ingest.default with Ingest.cores = 2 } in
      let from_file = Ingest.load opts (Reader.File path) in
      let from_text = Ingest.load opts (Reader.Text big_trace) in
      check_bool "File == Text" true (from_file = from_text))

let gzip_available () = Sys.command "gzip --version > /dev/null 2>&1" = 0

let test_gzip_roundtrip () =
  if not (gzip_available ()) then ()
  else
    let path = tmp_trace big_trace in
    Fun.protect
      ~finally:(fun () ->
        if Sys.file_exists path then Sys.remove path;
        if Sys.file_exists (path ^ ".gz") then Sys.remove (path ^ ".gz"))
      (fun () ->
        let plain = Ingest.load Ingest.default (Reader.File path) in
        check_int "gzip ok" 0
          (Sys.command (Printf.sprintf "gzip -f %s" (Filename.quote path)));
        (* Detection is by magic bytes, not extension. *)
        Sys.rename (path ^ ".gz") path;
        let gz = Ingest.load Ingest.default (Reader.File path) in
        check_bool "compressed == plain" true (gz = plain))

let test_missing_file () =
  check_bool "missing file raises Sys_error" true
    (match Ingest.scan Ingest.default (Reader.File "/nonexistent/t.trace") with
    | exception Sys_error _ -> true
    | _ -> false)

(* --- the report -------------------------------------------------------- *)

let test_report_json () =
  let m =
    Ctam_arch.Topology.with_policy_spec
      [ (Some 1, Ctam_arch.Policy.Plru) ]
      (machine ())
  in
  let opts = { Ingest.default with Ingest.cores = 2 } in
  let src = Reader.Text big_trace in
  let stats, scan = Ingest.run ~machine:m opts src in
  let text = Ctam_util.Json.to_string (Ingest.report_json ~machine:m opts scan stats) in
  List.iter
    (fun affix ->
      check_bool ("report carries " ^ affix) true
        (Astring.String.is_infix ~affix text))
    [
      {|"schema": "ctam-simtrace-v1"|}; {|"policy": "plru"|};
      {|"malformed": 0|}; {|"interleave": "round-robin"|};
    ];
  check_bool "trace_formats non-empty" true (Ingest.trace_formats <> [])

let () =
  Alcotest.run "tracein"
    [
      ( "lackey",
        [ Alcotest.test_case "parse forms" `Quick test_parse_forms ] );
      ( "scan",
        [
          Alcotest.test_case "counts" `Quick test_scan_counts;
          Alcotest.test_case "modify expands" `Quick
            test_modify_is_load_then_store;
          Alcotest.test_case "split spans" `Quick test_split_spans;
        ] );
      ( "errors",
        [
          Alcotest.test_case "strict positions" `Quick test_strict_positions;
          Alcotest.test_case "lossy counts" `Quick test_lossy_counts;
          Alcotest.test_case "missing file" `Quick test_missing_file;
        ] );
      ( "interleave",
        [
          Alcotest.test_case "round-robin" `Quick test_round_robin_deals;
          Alcotest.test_case "tagged" `Quick test_tagged_deals;
          Alcotest.test_case "tagged strict" `Quick test_tagged_strict_rejects;
        ] );
      ( "streams",
        [
          Alcotest.test_case "cursors == dense" `Quick
            test_streams_match_load;
          Alcotest.test_case "sample sets compose" `Quick
            test_sample_sets_compose;
          Alcotest.test_case "fold and rebase" `Quick test_fold_and_rebase;
          Alcotest.test_case "core bound" `Quick
            test_run_rejects_too_many_cores;
        ] );
      ( "sources",
        [
          Alcotest.test_case "file == text" `Quick test_file_matches_text;
          Alcotest.test_case "gzip" `Quick test_gzip_roundtrip;
        ] );
      ( "report",
        [ Alcotest.test_case "simtrace json" `Quick test_report_json ] );
    ]
