(* Tests for the pluggable replacement-policy layer: the policy data
   type and spec parsing, the packed-state policy machines themselves
   (property-tested through the POLICY signature Setassoc exposes),
   cache behavior under each policy, the LRU-as-policy bit-identity
   differential against the seed reference engine (statistics AND
   probe event order), and policy sensitivity of every content-hash
   key (hierarchy config, tune cache, plan cache, topology text). *)

open Ctam_arch
open Ctam_cachesim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- Policy: names, specs, hashes ------------------------------------ *)

let test_policy_strings () =
  List.iter
    (fun p ->
      check_bool
        (Policy.to_string p ^ " round-trips")
        true
        (Policy.of_string (Policy.to_string p) = Ok p))
    [
      Policy.Lru; Policy.Fifo; Policy.Plru; Policy.Qlru; Policy.Mru;
      Policy.Random 7; Policy.Random Policy.default_random_seed;
    ];
  check_bool "tree-plru alias" true (Policy.of_string "tree-plru" = Ok Policy.Plru);
  check_bool "bare random has the default seed" true
    (Policy.of_string "random" = Ok (Policy.Random Policy.default_random_seed));
  check_bool "unknown rejected" true
    (match Policy.of_string "bogus" with Error _ -> true | Ok _ -> false);
  check_bool "bad seed rejected" true
    (match Policy.of_string "random:x" with Error _ -> true | Ok _ -> false)

let test_policy_spec () =
  check_bool "bare name covers all levels" true
    (Policy.parse_spec "plru" = Ok [ (None, Policy.Plru) ]);
  check_bool "per-level bindings" true
    (Policy.parse_spec "L1=plru,L2=qlru"
    = Ok [ (Some 1, Policy.Plru); (Some 2, Policy.Qlru) ]);
  check_bool "bare level numbers accepted" true
    (Policy.parse_spec "2=mru" = Ok [ (Some 2, Policy.Mru) ]);
  check_bool "empty spec rejected" true
    (match Policy.parse_spec "" with Error _ -> true | Ok _ -> false);
  check_bool "junk binding rejected" true
    (match Policy.parse_spec "L1=" with Error _ -> true | Ok _ -> false);
  (* Later bindings win when applied to a topology. *)
  let m = Machines.dunnington ~scale:16 () in
  let bindings =
    match Policy.parse_spec "lru,L1=plru,L1=qlru" with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let m' = Topology.with_policy_spec bindings m in
  List.iter
    (fun (c : Topology.cache_params) ->
      let expect = if c.Topology.level = 1 then Policy.Qlru else Policy.Lru in
      check_bool
        (Printf.sprintf "L%d policy" c.Topology.level)
        true
        (Policy.equal c.Topology.policy expect))
    (Topology.caches m')

let test_policy_hash_distinct () =
  let ps =
    [
      Policy.Lru; Policy.Fifo; Policy.Plru; Policy.Qlru; Policy.Mru;
      Policy.Random 1; Policy.Random 2;
    ]
  in
  List.iteri
    (fun i p ->
      List.iteri
        (fun j q ->
          if i < j then
            check_bool
              (Printf.sprintf "hash %s <> %s" (Policy.to_string p)
                 (Policy.to_string q))
              true
              (Policy.hash p <> Policy.hash q))
        ps)
    ps

(* --- the policy state machines, through the POLICY signature --------- *)

(* Drive a policy module through a random touch/fill/victim trace and
   check its structural invariants at every step. *)
let drive (module P : Setassoc.POLICY) ~assoc ops =
  List.fold_left
    (fun state op ->
      match op with
      | `Hit w -> P.on_hit ~assoc ~state ~way:(w mod assoc)
      | `Fill w -> P.on_fill ~assoc ~state ~way:(w mod assoc)
      | `Victim ->
          let v, st = P.victim ~assoc ~state in
          Alcotest.(check bool) "victim in range" true (v >= 0 && v < assoc);
          P.on_fill ~assoc ~state:st ~way:v)
    (P.init ~assoc ~set:0) ops

let arb_ops =
  QCheck.(
    pair (int_range 2 16)
      (list_of_size (Gen.int_range 0 120)
         (oneof
            [
              map (fun w -> `Hit w) (int_range 0 15);
              map (fun w -> `Fill w) (int_range 0 15);
              always `Victim;
            ])))

let prop_plru_victim_avoids_touched =
  (* Tree-PLRU's defining guarantee: immediately after touching a way,
     that way is not the victim. *)
  QCheck.Test.make ~name:"plru victim never the just-touched way" ~count:500
    arb_ops (fun (assoc, ops) ->
      let state = drive (module Setassoc.Plru) ~assoc ops in
      List.for_all
        (fun w ->
          let st = Setassoc.Plru.on_hit ~assoc ~state ~way:w in
          fst (Setassoc.Plru.victim ~assoc ~state:st) <> w)
        (List.init assoc Fun.id))

let prop_qlru_ages_bounded =
  let age st w = (st lsr (2 * w)) land 3 in
  QCheck.Test.make ~name:"qlru ages stay in [0,3]; victim has age 3"
    ~count:500 arb_ops (fun (assoc, ops) ->
      let state = drive (module Setassoc.Qlru) ~assoc ops in
      List.for_all (fun w -> age state w <= 3) (List.init assoc Fun.id)
      &&
      let v, st = Setassoc.Qlru.victim ~assoc ~state in
      age st v = 3)

let prop_mru_victim_bit_clear =
  QCheck.Test.make ~name:"mru victim's used bit is clear" ~count:500 arb_ops
    (fun (assoc, ops) ->
      let state = drive (module Setassoc.Mru) ~assoc ops in
      (* The state never saturates: at least one clear bit remains. *)
      state land ((1 lsl assoc) - 1) <> (1 lsl assoc) - 1
      &&
      let v, st = Setassoc.Mru.victim ~assoc ~state in
      (st lsr v) land 1 = 0 || v = assoc - 1)

let prop_random_deterministic =
  QCheck.Test.make ~name:"random policy is a pure function of seed x set"
    ~count:200
    QCheck.(pair (int_range 0 1000) (pair (int_range 2 16) small_nat))
    (fun (seed, (assoc, steps)) ->
      let run () =
        let (module P) = Setassoc.random_policy ~seed in
        let state = ref (P.init ~assoc ~set:3) in
        let vs = ref [] in
        for _ = 0 to steps do
          let v, st = P.victim ~assoc ~state:!state in
          vs := v :: !vs;
          state := st
        done;
        !vs
      in
      run () = run ())

let test_fifo_insertion_order () =
  (* FIFO evicts in insertion order, and hits do not refresh. *)
  let c = Setassoc.create ~policy:Policy.Fifo ~sets:1 ~assoc:4 () in
  List.iter (fun l -> ignore (Setassoc.insert c l)) [ 10; 11; 12; 13 ];
  check_bool "hit does not refresh" true (Setassoc.access c 10);
  Alcotest.(check (option int)) "first in, first out" (Some 10)
    (Setassoc.insert c 14);
  Alcotest.(check (option int)) "then the second" (Some 11)
    (Setassoc.insert c 15);
  check_bool "later line still resident" true (Setassoc.contains c 13)

let test_policy_cache_behavior () =
  (* Generic per-policy contract at the Setassoc level: empty ways fill
     without eviction, a hole left by invalidate is reused, capacity
     is never exceeded, and snapshot/restore round-trips the packed
     policy state (same subsequent victim decisions). *)
  List.iter
    (fun policy ->
      let name = Policy.to_string policy in
      let c = Setassoc.create ~policy ~sets:2 ~assoc:4 () in
      check_bool (name ^ " reports its policy") true
        (Policy.equal (Setassoc.policy c) policy);
      for l = 0 to 7 do
        Alcotest.(check (option int))
          (Printf.sprintf "%s cold fill %d" name l)
          None (Setassoc.insert c l)
      done;
      check_bool (name ^ " full") true
        (List.length (Setassoc.resident c) = 8);
      ignore (Setassoc.invalidate c 4);
      Alcotest.(check (option int)) (name ^ " hole reused") None
        (Setassoc.insert c 8);
      (* Snapshot now; replay the same future twice. *)
      let image = Setassoc.snapshot_lines c in
      let future cache =
        let evs = ref [] in
        for l = 9 to 40 do
          match Setassoc.insert cache (l * 2) with
          | Some v -> evs := v :: !evs
          | None -> ()
        done;
        !evs
      in
      let first = future c in
      Setassoc.restore_lines c image;
      let second = future c in
      check_bool (name ^ " snapshot/restore replays evictions") true
        (first = second))
    [
      Policy.Lru; Policy.Fifo; Policy.Plru; Policy.Qlru; Policy.Mru;
      Policy.Random 5;
    ]

let test_assoc_caps () =
  Alcotest.check_raises "plru cap"
    (Invalid_argument "Setassoc.create: plru supports at most 32 ways")
    (fun () ->
      ignore (Setassoc.create ~policy:Policy.Plru ~sets:1 ~assoc:33 ()));
  Alcotest.check_raises "qlru cap"
    (Invalid_argument "Setassoc.create: qlru supports at most 31 ways")
    (fun () ->
      ignore (Setassoc.create ~policy:Policy.Qlru ~sets:1 ~assoc:32 ()))

(* --- LRU-as-policy bit-identity differential -------------------------- *)

(* Record every probe event as one string, so two runs can be compared
   for identical event ORDER, not just identical counts. *)
let recording_probe buf =
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  {
    Probe.on_access =
      (fun ~core ~addr ~line ~write -> p "A%d,%d,%d,%b;" core addr line write);
    on_level =
      (fun ~core ~level ~set ~line ~hit ->
        p "L%d,%d,%d,%d,%b;" core level set line hit);
    on_mem = (fun ~core ~line -> p "M%d,%d;" core line);
    on_evict = (fun ~core ~level ~line -> p "E%d,%d,%d;" core level line);
    on_invalidate =
      (fun ~core ~level ~line -> p "I%d,%d,%d;" core level line);
    on_retire = (fun ~core ~cycles -> p "R%d,%d;" core cycles);
    on_phase_start = (fun ~phase -> p "Ps%d;" phase);
    on_phase_end = (fun ~phase ~cycles -> p "Pe%d,%d;" phase cycles);
    on_barrier_enter = (fun ~phase ~cycles -> p "Be%d,%d;" phase cycles);
    on_barrier_exit = (fun ~phase ~cycles -> p "Bx%d,%d;" phase cycles);
  }

let test_lru_policy_identical_to_seed () =
  (* End to end over the real mapper: for each machine, a compiled
     workload simulated on (a) the machine as-is (seed LRU path),
     (b) the machine with Lru bound explicitly through the policy
     layer, and (c) the seed reference engine — statistics and the
     full probe event streams must be identical. *)
  let prog =
    Ctam_workloads.Kernel.small_program Ctam_workloads.Suite.galgel
  in
  List.iter
    (fun mname ->
      let machine = Machines.by_name ~scale:64 mname in
      let compiled =
        Ctam_core.Mapping.compile Ctam_core.Mapping.Topology_aware ~machine
          prog
      in
      let phases = Ctam_core.Mapping.forced_phases compiled in
      let run topo engine =
        let buf = Buffer.create 4096 in
        let h = Hierarchy.create ~probe:(recording_probe buf) topo in
        let stats = engine h phases in
        (stats, Buffer.contents buf)
      in
      let seed_stats, seed_events = run machine Engine.run in
      let policy_topo =
        Topology.with_policy_spec [ (None, Policy.Lru) ] machine
      in
      let pol_stats, pol_events = run policy_topo Engine.run in
      let ref_stats, ref_events = run policy_topo Engine.run_reference in
      check_bool (mname ^ ": stats identical (policy)") true
        (seed_stats = pol_stats);
      check_string (mname ^ ": event order identical (policy)") seed_events
        pol_events;
      check_bool (mname ^ ": stats identical (reference)") true
        (seed_stats = ref_stats);
      check_string (mname ^ ": event order identical (reference)") seed_events
        ref_events)
    [ "harpertown"; "nehalem"; "dunnington" ]

let prop_policies_same_cold_misses =
  (* Whatever the victims, replacement policy cannot change WHAT is
     cached on a single pass over distinct lines that fit: every
     policy produces identical stats when no set ever overflows. *)
  QCheck.Test.make ~name:"all policies agree below capacity" ~count:50
    QCheck.(list_of_size (Gen.int_range 0 60) (int_range 0 127))
    (fun lines ->
      let stats policy =
        let c = Setassoc.create ~policy ~sets:32 ~assoc:4 () in
        List.iter
          (fun l -> if not (Setassoc.access c l) then ignore (Setassoc.insert c l))
          lines;
        (Setassoc.hits c, Setassoc.misses c)
      in
      let reference = stats Policy.Lru in
      List.for_all
        (fun p -> stats p = reference)
        [ Policy.Fifo; Policy.Plru; Policy.Qlru; Policy.Mru; Policy.Random 3 ])

(* --- key sensitivity --------------------------------------------------- *)

let test_config_hash_policy_sensitive () =
  let m = Machines.dunnington ~scale:16 () in
  let h p =
    Hierarchy.config_hash
      (Hierarchy.create (Topology.with_policy_spec [ (None, p) ] m))
  in
  check_bool "explicit lru = default" true
    (h Policy.Lru = Hierarchy.config_hash (Hierarchy.create m));
  check_bool "plru differs" true (h Policy.Plru <> h Policy.Lru);
  check_bool "seeds differ" true (h (Policy.Random 1) <> h (Policy.Random 2))

let test_tune_key_policy_sensitive () =
  let m = Machines.dunnington ~scale:16 () in
  let frag p =
    Ctam_tune.Cache.topology_fragment
      (Topology.with_policy_spec [ (None, p) ] m)
  in
  (* Warm-cache preservation: binding the default policy explicitly
     must keep the pre-policy key text byte-identical. *)
  check_string "lru fragment unchanged"
    (Ctam_tune.Cache.topology_fragment m)
    (frag Policy.Lru);
  check_bool "qlru fragment differs" true (frag Policy.Qlru <> frag Policy.Lru)

let test_plan_key_policy_sensitive () =
  (* Satellite: the same serve request with two different policy specs
     must produce two different plan-cache keys (and storing both in
     one cache yields two distinct entries). *)
  let module J = Ctam_util.Json in
  let req policy =
    J.Obj
      ([
         ("op", J.String "run");
         ("program", J.String "cg");
         ("machine", J.String "dunnington");
         ("scale", J.Int 64);
       ]
      @ match policy with None -> [] | Some s -> [ ("policy", J.String s) ])
  in
  let key p =
    match Ctam_serve.Request.parse (req p) with
    | Ok r -> Ctam_serve.Request.key r
    | Error e -> Alcotest.fail e
  in
  let k_default = key None
  and k_lru = key (Some "lru")
  and k_plru = key (Some "plru") in
  check_string "explicit lru keeps the warm key" k_default k_lru;
  check_bool "plru gets its own key" true (k_plru <> k_default);
  let c = Ctam_serve.Plan_cache.create ~max_entries:8 () in
  Ctam_serve.Plan_cache.add c k_default (J.Obj [ ("v", J.Int 1) ]);
  Ctam_serve.Plan_cache.add c k_plru (J.Obj [ ("v", J.Int 2) ]);
  check_int "two policies, two entries" 2
    (List.length (Ctam_serve.Plan_cache.keys_hot_to_cold c))

let test_topo_text_roundtrip () =
  let m =
    Topology.with_policy_spec
      [ (Some 1, Policy.Plru); (Some 2, Policy.Random 9) ]
      (Machines.dunnington ~scale:16 ())
  in
  let text = Topo_parse.to_text m in
  check_bool "policy rendered" true
    (Astring.String.is_infix ~affix:"(policy plru)" text);
  check_bool "seed rendered" true
    (Astring.String.is_infix ~affix:"(policy random:9)" text);
  let m' = Topo_parse.parse text in
  List.iter2
    (fun (a : Topology.cache_params) (b : Topology.cache_params) ->
      check_bool
        (Printf.sprintf "L%d policy survives" a.Topology.level)
        true
        (Policy.equal a.Topology.policy b.Topology.policy))
    (Topology.caches m) (Topology.caches m');
  (* The default policy stays invisible, so pre-policy topology files
     render byte-identically. *)
  let plain = Topo_parse.to_text (Machines.dunnington ~scale:16 ()) in
  check_bool "lru not rendered" true
    (not (Astring.String.is_infix ~affix:"policy" plain))

let () =
  Alcotest.run "policies"
    [
      ( "policy type",
        [
          Alcotest.test_case "strings" `Quick test_policy_strings;
          Alcotest.test_case "spec" `Quick test_policy_spec;
          Alcotest.test_case "hash distinct" `Quick test_policy_hash_distinct;
        ] );
      ( "state machines",
        [
          QCheck_alcotest.to_alcotest prop_plru_victim_avoids_touched;
          QCheck_alcotest.to_alcotest prop_qlru_ages_bounded;
          QCheck_alcotest.to_alcotest prop_mru_victim_bit_clear;
          QCheck_alcotest.to_alcotest prop_random_deterministic;
          Alcotest.test_case "fifo order" `Quick test_fifo_insertion_order;
          Alcotest.test_case "cache behavior" `Quick test_policy_cache_behavior;
          Alcotest.test_case "assoc caps" `Quick test_assoc_caps;
        ] );
      ( "differential",
        [
          Alcotest.test_case "lru == seed engine (stats + event order)"
            `Quick test_lru_policy_identical_to_seed;
          QCheck_alcotest.to_alcotest prop_policies_same_cold_misses;
        ] );
      ( "key sensitivity",
        [
          Alcotest.test_case "config hash" `Quick
            test_config_hash_policy_sensitive;
          Alcotest.test_case "tune key" `Quick test_tune_key_policy_sensitive;
          Alcotest.test_case "plan key" `Quick test_plan_key_policy_sensitive;
          Alcotest.test_case "topology text" `Quick test_topo_text_roundtrip;
        ] );
    ]
