(* Tests for cache topologies and the machine presets of Table 1 /
   Figures 1 and 12. *)

open Ctam_arch

let check_int = Alcotest.(check int)
let _check_bool = Alcotest.(check bool)
let check_opt_int = Alcotest.(check (option int))

let test_harpertown_shape () =
  let t = Machines.harpertown () in
  check_int "cores" 8 t.Topology.num_cores;
  Alcotest.(check (list int)) "levels" [ 1; 2 ] (Topology.levels t);
  (* Four last-level caches: memory is the conceptual root. *)
  check_int "roots" 4 (List.length t.Topology.roots);
  (* Cores 0 and 1 share an L2; 0 and 2 share nothing on chip. *)
  check_opt_int "pair affinity" (Some 2) (Topology.affinity_level t 0 1);
  check_opt_int "no affinity" None (Topology.affinity_level t 0 2)

let test_nehalem_shape () =
  let t = Machines.nehalem () in
  check_int "cores" 8 t.Topology.num_cores;
  Alcotest.(check (list int)) "levels" [ 1; 2; 3 ] (Topology.levels t);
  check_int "roots" 2 (List.length t.Topology.roots);
  (* Private L2: two same-socket cores only share the L3. *)
  check_opt_int "socket affinity" (Some 3) (Topology.affinity_level t 0 1);
  check_opt_int "cross socket" None (Topology.affinity_level t 0 4);
  (* First shared level is the L3. *)
  check_opt_int "first shared" (Some 3) (Topology.first_shared_level t)

let test_dunnington_shape () =
  let t = Machines.dunnington () in
  check_int "cores" 12 t.Topology.num_cores;
  check_opt_int "pair shares L2" (Some 2) (Topology.affinity_level t 0 1);
  check_opt_int "socket shares L3" (Some 3) (Topology.affinity_level t 0 2);
  check_opt_int "cross socket" None (Topology.affinity_level t 0 6);
  check_opt_int "first shared" (Some 2) (Topology.first_shared_level t);
  (* Sharing domains at L2 are the six pairs. *)
  Alcotest.(check (list (list int)))
    "L2 domains"
    [ [ 0; 1 ]; [ 2; 3 ]; [ 4; 5 ]; [ 6; 7 ]; [ 8; 9 ]; [ 10; 11 ] ]
    (Topology.sharing_domains t 2)

let test_table1_parameters () =
  (* Spot-check Table 1 numbers at scale 1. *)
  let h = Machines.harpertown () in
  let l1 = List.hd (Topology.path_of_core h 0) in
  check_int "L1 32KB" (32 * 1024) l1.Topology.size_bytes;
  check_int "L1 8-way" 8 l1.Topology.assoc;
  check_int "L1 latency 3" 3 l1.Topology.latency;
  let l2 = List.nth (Topology.path_of_core h 0) 1 in
  check_int "L2 6MB" (6 * 1024 * 1024) l2.Topology.size_bytes;
  check_int "L2 24-way" 24 l2.Topology.assoc;
  let d = Machines.dunnington () in
  let l3 = List.nth (Topology.path_of_core d 0) 2 in
  check_int "L3 12MB" (12 * 1024 * 1024) l3.Topology.size_bytes;
  check_int "dunnington L1 latency 4" 4
    (List.hd (Topology.path_of_core d 0)).Topology.latency

let test_scaling () =
  let t = Machines.dunnington ~scale:16 () in
  let l1 = List.hd (Topology.path_of_core t 0) in
  check_int "L1 scaled" (2 * 1024) l1.Topology.size_bytes;
  (* Latency and associativity never scale. *)
  check_int "latency same" 4 l1.Topology.latency;
  check_int "assoc same" 8 l1.Topology.assoc;
  (* Capacity stays a multiple of one set. *)
  check_int "set multiple" 0
    (l1.Topology.size_bytes mod (l1.Topology.assoc * l1.Topology.line))

let test_halve_caches () =
  let t = Machines.dunnington () in
  let h = Machines.halve_caches t in
  check_int "L1 halved" (16 * 1024)
    (List.hd (Topology.path_of_core h 0)).Topology.size_bytes;
  check_int "same cores" 12 h.Topology.num_cores

let test_scale_cores () =
  let t18 = Machines.dunnington_scaled_cores ~num_cores:18 () in
  check_int "18 cores" 18 t18.Topology.num_cores;
  check_int "3 sockets" 3 (List.length t18.Topology.roots);
  let t24 = Machines.dunnington_scaled_cores ~num_cores:24 () in
  check_int "24 cores" 24 t24.Topology.num_cores;
  Alcotest.check_raises "not multiple of 6"
    (Invalid_argument "Machines.dunnington_scaled_cores: need a multiple of 6")
    (fun () -> ignore (Machines.dunnington_scaled_cores ~num_cores:10 ()))

let test_arch_i_ii () =
  let a1 = Machines.arch_i () in
  check_int "arch-i cores" 16 a1.Topology.num_cores;
  Alcotest.(check (list int)) "arch-i levels" [ 1; 2; 3; 4 ] (Topology.levels a1);
  let a2 = Machines.arch_ii () in
  check_int "arch-ii cores" 32 a2.Topology.num_cores;
  Alcotest.(check (list int)) "arch-ii levels" [ 1; 2; 3; 4; 5 ]
    (Topology.levels a2)

let test_truncate_levels () =
  let a1 = Machines.arch_i () in
  let t = Topology.truncate_levels 2 a1 in
  Alcotest.(check (list int)) "only L1+L2" [ 1; 2 ] (Topology.levels t);
  check_int "same cores" 16 t.Topology.num_cores;
  (* Truncating to L2 exposes the pairs as roots. *)
  check_int "roots = pairs" 8 (List.length t.Topology.roots)

let test_path_of_core () =
  let t = Machines.dunnington () in
  let path = Topology.path_of_core t 7 in
  Alcotest.(check (list int)) "levels ascending" [ 1; 2; 3 ]
    (List.map (fun p -> p.Topology.level) path);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Topology.path_of_core") (fun () ->
      ignore (Topology.path_of_core t 12))

let test_level_capacity () =
  let t = Machines.dunnington () in
  check_int "12 L1s" (12 * 32 * 1024) (Topology.level_capacity t 1);
  check_int "6 L2s" (6 * 3 * 1024 * 1024) (Topology.level_capacity t 2);
  check_int "2 L3s" (2 * 12 * 1024 * 1024) (Topology.level_capacity t 3)

let test_validation () =
  let bad_core_ids () =
    ignore
      (Topology.make ~name:"bad" ~clock_ghz:1. ~mem_latency:100
         [
           Topology.Cache
             ( {
                 Topology.cache_name = "L1#0";
                 level = 1;
                 size_bytes = 1024;
                 assoc = 2;
                 line = 64;
                 latency = 1;
                 policy = Policy.Lru;
               },
               [ Topology.Core 1 ] );
         ])
  in
  Alcotest.check_raises "cores must be 0..n-1"
    (Invalid_argument "Topology.make: cores must be 0..n-1") bad_core_ids;
  let dup_names () =
    let c id cores =
      Topology.Cache
        ( {
            Topology.cache_name = id;
            level = 1;
            size_bytes = 1024;
            assoc = 2;
            line = 64;
            latency = 1;
            policy = Policy.Lru;
          },
          cores )
    in
    ignore
      (Topology.make ~name:"bad" ~clock_ghz:1. ~mem_latency:100
         [ c "L1" [ Topology.Core 0 ]; c "L1" [ Topology.Core 1 ] ])
  in
  Alcotest.check_raises "duplicate cache names"
    (Invalid_argument "Topology.make: duplicate cache names") dup_names

let test_by_name () =
  check_int "dunnington" 12 (Machines.by_name "Dunnington").Topology.num_cores;
  check_int "arch-i" 16 (Machines.by_name "arch-i").Topology.num_cores;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Machines.by_name "pentium"))

(* --- Topo_parse -------------------------------------------------------- *)

let sample_text =
  {|
; a two-socket toy machine
(machine "Toy" (clock 2.0) (mem 150)
  (cache "L2#0" (level 2) (size 4M) (assoc 16) (line 64) (latency 12)
    (cache "L1#0" (level 1) (size 32K) (assoc 8) (line 64) (latency 3) (core))
    (cache "L1#1" (level 1) (size 32K) (assoc 8) (line 64) (latency 3) (core)))
  (cache "L2#1" (level 2) (size 4M) (assoc 16) (line 64) (latency 12)
    (cache "L1#2" (level 1) (size 32K) (assoc 8) (line 64) (latency 3)
      (cores 2))))
|}

let test_parse_machine () =
  let t = Topo_parse.parse sample_text in
  check_int "cores" 4 t.Topology.num_cores;
  Alcotest.(check string) "name" "Toy" t.Topology.name;
  check_int "mem" 150 t.Topology.mem_latency;
  check_int "roots" 2 (List.length t.Topology.roots);
  let l1 = List.hd (Topology.path_of_core t 0) in
  check_int "L1 size suffix" (32 * 1024) l1.Topology.size_bytes;
  (* (cores 2): both auto-numbered cores share L1#2. *)
  check_opt_int "shared L1" (Some 1) (Topology.affinity_level t 2 3)

let test_parse_errors () =
  let expect_err text =
    match Topo_parse.parse text with
    | exception Topo_parse.Error _ -> ()
    | _ -> Alcotest.fail "expected parse error"
  in
  expect_err "(machine \"X\" (clock 1.0) (mem 10))";
  expect_err "(machine \"X\" (clock 1.0) (mem 10) (cache \"c\" (level 1)))";
  expect_err "(nonsense)";
  expect_err "(machine \"X\" (clock 1.0) (mem 10) (cache \"c\" (level 1) (size 1K) (assoc 2) (line 64) (latency 1) (core)";
  (* duplicate cache names are caught by Topology.make *)
  expect_err
    "(machine \"X\" (clock 1.0) (mem 10)\n     (cache \"c\" (level 1) (size 1K) (assoc 2) (line 64) (latency 1) (core))\n     (cache \"c\" (level 1) (size 1K) (assoc 2) (line 64) (latency 1) (core)))"

let test_parse_empty_string () =
  (* Regression: the tokenizer used to drop empty quoted strings (the
     flush after the closing quote was a no-op on an empty buffer), so
     [(machine "" ...)] lost its name atom and failed with "expected
     (machine ...)". *)
  let t =
    Topo_parse.parse
      "(machine \"\" (clock 1.0) (mem 10)\n\
      \  (cache \"c\" (level 1) (size 1K) (assoc 2) (line 64) (latency 1) \
       (core)))"
  in
  Alcotest.(check string) "empty name survives" "" t.Topology.name;
  check_int "cores" 1 t.Topology.num_cores;
  (* An empty cache name must survive a round-trip too. *)
  let t' = Topo_parse.parse (Topo_parse.to_text t) in
  Alcotest.(check string) "round-trip" "" t'.Topology.name

let test_parse_roundtrip () =
  let t = Machines.dunnington () in
  let t' = Topo_parse.parse (Topo_parse.to_text t) in
  check_int "cores" t.Topology.num_cores t'.Topology.num_cores;
  Alcotest.(check (list int)) "levels" (Topology.levels t) (Topology.levels t');
  check_opt_int "affinity preserved"
    (Topology.affinity_level t 0 1)
    (Topology.affinity_level t' 0 1);
  check_int "capacity preserved"
    (Topology.level_capacity t 3)
    (Topology.level_capacity t' 3)

let () =
  Alcotest.run "arch"
    [
      ( "machines",
        [
          Alcotest.test_case "harpertown" `Quick test_harpertown_shape;
          Alcotest.test_case "nehalem" `Quick test_nehalem_shape;
          Alcotest.test_case "dunnington" `Quick test_dunnington_shape;
          Alcotest.test_case "table1 parameters" `Quick test_table1_parameters;
          Alcotest.test_case "arch-i/ii" `Quick test_arch_i_ii;
          Alcotest.test_case "by_name" `Quick test_by_name;
        ] );
      ( "transforms",
        [
          Alcotest.test_case "scaling" `Quick test_scaling;
          Alcotest.test_case "halve" `Quick test_halve_caches;
          Alcotest.test_case "scale cores" `Quick test_scale_cores;
          Alcotest.test_case "truncate" `Quick test_truncate_levels;
        ] );
      ( "topo_parse",
        [
          Alcotest.test_case "parse" `Quick test_parse_machine;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "empty string" `Quick test_parse_empty_string;
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
        ] );
      ( "queries",
        [
          Alcotest.test_case "paths" `Quick test_path_of_core;
          Alcotest.test_case "capacity" `Quick test_level_capacity;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
