(* Tests for the cache simulator: set-associative LRU caches, the
   hierarchy, and the parallel execution engine. *)

open Ctam_arch
open Ctam_cachesim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Setassoc ------------------------------------------------------- *)

let test_setassoc_basics () =
  let c = Setassoc.create ~sets:4 ~assoc:2 in
  check_int "capacity" 8 (Setassoc.capacity_lines c);
  check_bool "cold miss" false (Setassoc.access c 0);
  ignore (Setassoc.insert c 0);
  check_bool "hit after fill" true (Setassoc.access c 0);
  check_int "hits" 1 (Setassoc.hits c);
  check_int "misses" 1 (Setassoc.misses c)

let test_setassoc_lru () =
  let c = Setassoc.create ~sets:1 ~assoc:2 in
  ignore (Setassoc.insert c 10);
  ignore (Setassoc.insert c 20);
  (* Touch 10 so 20 becomes LRU; inserting 30 must evict 20. *)
  check_bool "10 hit" true (Setassoc.access c 10);
  Alcotest.(check (option int)) "evicts LRU" (Some 20) (Setassoc.insert c 30);
  check_bool "20 gone" false (Setassoc.contains c 20);
  check_bool "10 stays" true (Setassoc.contains c 10);
  check_bool "30 in" true (Setassoc.contains c 30)

let test_setassoc_sets_disjoint () =
  let c = Setassoc.create ~sets:2 ~assoc:1 in
  ignore (Setassoc.insert c 0);  (* set 0 *)
  ignore (Setassoc.insert c 1);  (* set 1 *)
  check_bool "both resident" true
    (Setassoc.contains c 0 && Setassoc.contains c 1);
  (* line 2 maps to set 0: evicts 0 but not 1. *)
  Alcotest.(check (option int)) "evict same set" (Some 0) (Setassoc.insert c 2);
  check_bool "1 survives" true (Setassoc.contains c 1)

let test_setassoc_invalidate () =
  let c = Setassoc.create ~sets:1 ~assoc:4 in
  ignore (Setassoc.insert c 1);
  ignore (Setassoc.insert c 2);
  check_bool "invalidate hit" true (Setassoc.invalidate c 1);
  check_bool "gone" false (Setassoc.contains c 1);
  check_bool "2 stays" true (Setassoc.contains c 2);
  check_bool "invalidate miss" false (Setassoc.invalidate c 9);
  (* Freed way is reusable without eviction. *)
  ignore (Setassoc.insert c 3);
  ignore (Setassoc.insert c 4);
  Alcotest.(check (option int)) "no eviction" None (Setassoc.insert c 5)

let test_setassoc_clear () =
  let c = Setassoc.create ~sets:2 ~assoc:2 in
  ignore (Setassoc.insert c 7);
  ignore (Setassoc.access c 7);
  Setassoc.clear c;
  check_int "hits reset" 0 (Setassoc.hits c);
  check_bool "empty" false (Setassoc.contains c 7);
  check_int "resident" 0 (List.length (Setassoc.resident c))

let prop_lru_never_exceeds_capacity =
  QCheck.Test.make ~name:"resident lines never exceed capacity" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 200) (int_range 0 63))
    (fun lines ->
      let c = Setassoc.create ~sets:4 ~assoc:2 in
      List.iter
        (fun l -> if not (Setassoc.access c l) then ignore (Setassoc.insert c l))
        lines;
      List.length (Setassoc.resident c) <= Setassoc.capacity_lines c)

let prop_access_after_insert_hits =
  QCheck.Test.make ~name:"immediate re-access hits" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 0 255))
    (fun lines ->
      let c = Setassoc.create ~sets:8 ~assoc:4 in
      List.for_all
        (fun l ->
          if not (Setassoc.access c l) then ignore (Setassoc.insert c l);
          Setassoc.access c l)
        lines)

(* --- Hierarchy ------------------------------------------------------ *)

let tiny_machine () =
  (* 2 cores, private L1 (2 sets x 2), shared L2 (8 sets x 2). *)
  let l1 id =
    Topology.Cache
      ( {
          Topology.cache_name = Printf.sprintf "L1#%d" id;
          level = 1;
          size_bytes = 2 * 2 * 64;
          assoc = 2;
          line = 64;
          latency = 2;
        },
        [ Topology.Core id ] )
  in
  Topology.make ~name:"tiny" ~clock_ghz:1. ~mem_latency:100
    [
      Topology.Cache
        ( {
            Topology.cache_name = "L2#0";
            level = 2;
            size_bytes = 8 * 2 * 64;
            assoc = 2;
            line = 64;
            latency = 10;
          },
          [ l1 0; l1 1 ] );
    ]

let test_hierarchy_latencies () =
  let h = Hierarchy.create (tiny_machine ()) in
  (* Cold: L1 probe (2) + L2 probe (10) + memory (100). *)
  check_int "cold miss" 112 (Hierarchy.access h ~core:0 ~addr:0 ~write:false);
  (* Now resident in both caches: L1 hit. *)
  check_int "L1 hit" 2 (Hierarchy.access h ~core:0 ~addr:0 ~write:false);
  (* Other core: misses its L1, hits shared L2. *)
  check_int "L2 hit via sharing" 12
    (Hierarchy.access h ~core:1 ~addr:0 ~write:false);
  check_int "hit_latency L2" 12
    (Option.get (Hierarchy.hit_latency h ~core:0 ~level:2));
  check_int "miss latency" 112 (Hierarchy.miss_latency h ~core:0)

let test_hierarchy_inclusive_fill () =
  let h = Hierarchy.create (tiny_machine ()) in
  ignore (Hierarchy.access h ~core:0 ~addr:0 ~write:false);
  (* After the fill the line is in both the L1 and the L2: evicting it
     from L1 (capacity) still leaves an L2 hit. *)
  ignore (Hierarchy.access h ~core:0 ~addr:(64 * 2) ~write:false);
  ignore (Hierarchy.access h ~core:0 ~addr:(64 * 4) ~write:false);
  (* set 0 of L1 now held 0,2,4 -> 0 was evicted. *)
  check_int "L2 hit after L1 eviction" 12
    (Hierarchy.access h ~core:0 ~addr:0 ~write:false)

let test_hierarchy_coherence () =
  let h = Hierarchy.create ~coherence:true (tiny_machine ()) in
  ignore (Hierarchy.access h ~core:1 ~addr:0 ~write:false);
  check_int "core1 hit" 2 (Hierarchy.access h ~core:1 ~addr:0 ~write:false);
  (* A write by core 0 invalidates core 1's L1 copy. *)
  ignore (Hierarchy.access h ~core:0 ~addr:0 ~write:true);
  check_int "core1 refetches from L2" 12
    (Hierarchy.access h ~core:1 ~addr:0 ~write:false)

let test_hierarchy_stats () =
  let h = Hierarchy.create (tiny_machine ()) in
  ignore (Hierarchy.access h ~core:0 ~addr:0 ~write:false);
  ignore (Hierarchy.access h ~core:0 ~addr:0 ~write:false);
  let stats = Hierarchy.level_stats h in
  let l1 = List.find (fun s -> s.Stats.level = 1) stats in
  check_int "l1 hits" 1 l1.Stats.hits;
  check_int "l1 misses" 1 l1.Stats.misses;
  check_int "mem accesses" 1 (Hierarchy.mem_accesses h);
  Hierarchy.clear h;
  check_int "cleared" 0 (Hierarchy.mem_accesses h)

(* --- Engine --------------------------------------------------------- *)

let test_engine_serial () =
  let h = Hierarchy.create (tiny_machine ()) in
  let stream =
    Array.of_list
      (List.map
         (fun (a, w) -> Engine.encode_access ~addr:a ~write:w)
         [ (0, false); (0, true); (64, false) ])
  in
  let stats = Engine.run_serial h stream in
  check_int "accesses" 3 stats.Stats.total_accesses;
  (* cold(112) + hit(2) + cold(112), plus 1 issue cycle each. *)
  check_int "cycles" (112 + 2 + 112 + 3) stats.Stats.cycles;
  check_int "no barriers" 0 stats.Stats.barriers

let test_engine_parallel_max () =
  let h = Hierarchy.create (tiny_machine ()) in
  (* Core 0 does 4 accesses to distinct lines, core 1 does 1. *)
  let enc a = Engine.encode_access ~addr:a ~write:false in
  let phase =
    [| Array.init 4 (fun i -> enc (i * 64 * 16)); [| enc (64 * 3) |] |]
  in
  let stats = Engine.run h [ phase ] in
  (* Completion is the slowest core, roughly 4 cold misses. *)
  check_bool "max over cores" true
    (stats.Stats.cycles >= 4 * 112 && stats.Stats.cycles < 5 * 113);
  check_int "busy cores" 2
    (Array.length (Array.of_list (List.filter (fun c -> c > 0) (Array.to_list stats.Stats.core_cycles))))

let test_engine_barrier () =
  let h = Hierarchy.create (tiny_machine ()) in
  let enc a = Engine.encode_access ~addr:a ~write:false in
  let p1 = [| [| enc 0 |]; [||] |] in
  let p2 = [| [||]; [| enc (64 * 17) |] |] in
  let stats = Engine.run h [ p1; p2 ] in
  check_int "one barrier" 1 stats.Stats.barriers;
  (* Phase 2 starts only after phase 1's max plus the barrier cost. *)
  check_bool "barrier serializes" true
    (stats.Stats.cycles >= (112 + 1) + Engine.default_config.barrier_cost + 112)

let test_engine_sharing_constructive () =
  (* Two cores reading the same lines: the second reader should hit in
     the shared L2 after the first brings lines in. *)
  let h = Hierarchy.create (tiny_machine ()) in
  let enc a = Engine.encode_access ~addr:a ~write:false in
  let same = Array.init 8 (fun i -> enc (i * 64)) in
  let stats = Engine.run h [ [| same; same |] |> Array.map Array.copy ] in
  check_bool "L2 sees hits" true
    (let l2 = List.find (fun s -> s.Stats.level = 2) stats.Stats.per_level in
     l2.Stats.hits > 0);
  check_int "mem only once per line" 8 stats.Stats.mem_accesses

let test_engine_core_count_mismatch () =
  let h = Hierarchy.create (tiny_machine ()) in
  Alcotest.check_raises "phase mismatch"
    (Invalid_argument "Engine.run: phase core-count mismatch") (fun () ->
      ignore (Engine.run h [ [| [||] |] ]))

let test_encode_roundtrip () =
  List.iter
    (fun (a, w) ->
      let a', w' = Engine.decode_access (Engine.encode_access ~addr:a ~write:w) in
      check_int "addr" a a';
      check_bool "write" w w')
    [ (0, false); (12345, true); (1 lsl 40, false) ]

(* --- Reuse ------------------------------------------------------------ *)

let test_reuse_simple () =
  (* Stream: a b a b -> distances: cold, cold, 1, 1. *)
  let h = Reuse.of_lines [| 1; 2; 1; 2 |] in
  check_int "cold" 2 h.Reuse.cold;
  check_int "total" 4 h.Reuse.total;
  (* distance 1 lands in bucket 1 ([1,2)). *)
  check_int "bucket1" 2 h.Reuse.buckets.(1);
  (* Consecutive re-access: distance 0. *)
  let h0 = Reuse.of_lines [| 7; 7; 7 |] in
  check_int "bucket0" 2 h0.Reuse.buckets.(0)

let test_reuse_distance_counts_distinct () =
  (* a x x b a: distance of the second a is 2 distinct lines (x, b). *)
  let h = Reuse.of_lines [| 1; 2; 2; 3; 1 |] in
  (* distance 2 -> bucket 2 ([2,4)). *)
  check_int "distinct lines" 1 h.Reuse.buckets.(2)

let test_reuse_hit_ratio () =
  (* Cyclic sweep over 8 lines, 4 times: every non-cold access has
     distance 7. *)
  let stream = Array.init 32 (fun i -> i mod 8) in
  let h = Reuse.of_lines stream in
  check_int "cold" 8 h.Reuse.cold;
  check_bool "hits with 8 lines" true (Reuse.hit_ratio_at h ~lines:8 >= 0.99);
  check_bool "misses with 4 lines" true (Reuse.hit_ratio_at h ~lines:4 <= 0.01);
  check_bool "mean distance in bucket [4,8)" true
    (let m = Reuse.mean_distance h in m >= 4. && m < 8.)

let test_reuse_merge () =
  let h1 = Reuse.of_lines [| 1; 1 |] and h2 = Reuse.of_lines [| 2; 2 |] in
  let m = Reuse.merge [ h1; h2 ] in
  check_int "total" 4 m.Reuse.total;
  check_int "cold" 2 m.Reuse.cold

let prop_reuse_agrees_with_fullassoc_lru =
  (* The reuse histogram's hit count below capacity C must equal the
     hits of a fully-associative LRU cache of capacity C (for C a
     bucket boundary power of two). *)
  QCheck.Test.make ~name:"reuse histogram matches full-assoc LRU" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 300) (int_range 0 15))
    (fun lines_list ->
      let lines = Array.of_list lines_list in
      let h = Reuse.of_lines lines in
      let capacity = 8 in
      let cache = Setassoc.create ~sets:1 ~assoc:capacity in
      Array.iter
        (fun l -> if not (Setassoc.access cache l) then ignore (Setassoc.insert cache l))
        lines;
      let expected_hits = Setassoc.hits cache in
      (* Buckets 0..3 cover distances 0..7 (< 8). *)
      let hist_hits =
        h.Reuse.buckets.(0) + h.Reuse.buckets.(1) + h.Reuse.buckets.(2)
        + h.Reuse.buckets.(3)
      in
      expected_hits = hist_hits)

let () =
  Alcotest.run "cachesim"
    [
      ( "setassoc",
        [
          Alcotest.test_case "basics" `Quick test_setassoc_basics;
          Alcotest.test_case "lru" `Quick test_setassoc_lru;
          Alcotest.test_case "sets disjoint" `Quick test_setassoc_sets_disjoint;
          Alcotest.test_case "invalidate" `Quick test_setassoc_invalidate;
          Alcotest.test_case "clear" `Quick test_setassoc_clear;
          QCheck_alcotest.to_alcotest prop_lru_never_exceeds_capacity;
          QCheck_alcotest.to_alcotest prop_access_after_insert_hits;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "latencies" `Quick test_hierarchy_latencies;
          Alcotest.test_case "inclusive fill" `Quick test_hierarchy_inclusive_fill;
          Alcotest.test_case "coherence" `Quick test_hierarchy_coherence;
          Alcotest.test_case "stats" `Quick test_hierarchy_stats;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "simple" `Quick test_reuse_simple;
          Alcotest.test_case "distinct" `Quick test_reuse_distance_counts_distinct;
          Alcotest.test_case "hit ratio" `Quick test_reuse_hit_ratio;
          Alcotest.test_case "merge" `Quick test_reuse_merge;
          QCheck_alcotest.to_alcotest prop_reuse_agrees_with_fullassoc_lru;
        ] );
      ( "engine",
        [
          Alcotest.test_case "serial" `Quick test_engine_serial;
          Alcotest.test_case "parallel max" `Quick test_engine_parallel_max;
          Alcotest.test_case "barrier" `Quick test_engine_barrier;
          Alcotest.test_case "constructive sharing" `Quick
            test_engine_sharing_constructive;
          Alcotest.test_case "core mismatch" `Quick test_engine_core_count_mismatch;
          Alcotest.test_case "encode roundtrip" `Quick test_encode_roundtrip;
        ] );
    ]
