(* Tests for the cache simulator: set-associative LRU caches, the
   hierarchy, and the parallel execution engine. *)

open Ctam_arch
open Ctam_cachesim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Setassoc ------------------------------------------------------- *)

let test_setassoc_basics () =
  let c = Setassoc.create ~sets:4 ~assoc:2 () in
  check_int "capacity" 8 (Setassoc.capacity_lines c);
  check_bool "cold miss" false (Setassoc.access c 0);
  ignore (Setassoc.insert c 0);
  check_bool "hit after fill" true (Setassoc.access c 0);
  check_int "hits" 1 (Setassoc.hits c);
  check_int "misses" 1 (Setassoc.misses c)

let test_setassoc_lru () =
  let c = Setassoc.create ~sets:1 ~assoc:2 () in
  ignore (Setassoc.insert c 10);
  ignore (Setassoc.insert c 20);
  (* Touch 10 so 20 becomes LRU; inserting 30 must evict 20. *)
  check_bool "10 hit" true (Setassoc.access c 10);
  Alcotest.(check (option int)) "evicts LRU" (Some 20) (Setassoc.insert c 30);
  check_bool "20 gone" false (Setassoc.contains c 20);
  check_bool "10 stays" true (Setassoc.contains c 10);
  check_bool "30 in" true (Setassoc.contains c 30)

let test_setassoc_sets_disjoint () =
  let c = Setassoc.create ~sets:2 ~assoc:1 () in
  ignore (Setassoc.insert c 0);  (* set 0 *)
  ignore (Setassoc.insert c 1);  (* set 1 *)
  check_bool "both resident" true
    (Setassoc.contains c 0 && Setassoc.contains c 1);
  (* line 2 maps to set 0: evicts 0 but not 1. *)
  Alcotest.(check (option int)) "evict same set" (Some 0) (Setassoc.insert c 2);
  check_bool "1 survives" true (Setassoc.contains c 1)

let test_setassoc_invalidate () =
  let c = Setassoc.create ~sets:1 ~assoc:4 () in
  ignore (Setassoc.insert c 1);
  ignore (Setassoc.insert c 2);
  check_bool "invalidate hit" true (Setassoc.invalidate c 1);
  check_bool "gone" false (Setassoc.contains c 1);
  check_bool "2 stays" true (Setassoc.contains c 2);
  check_bool "invalidate miss" false (Setassoc.invalidate c 9);
  (* Freed way is reusable without eviction. *)
  ignore (Setassoc.insert c 3);
  ignore (Setassoc.insert c 4);
  Alcotest.(check (option int)) "no eviction" None (Setassoc.insert c 5)

let test_setassoc_clear () =
  let c = Setassoc.create ~sets:2 ~assoc:2 () in
  ignore (Setassoc.insert c 7);
  ignore (Setassoc.access c 7);
  Setassoc.clear c;
  check_int "hits reset" 0 (Setassoc.hits c);
  check_bool "empty" false (Setassoc.contains c 7);
  check_int "resident" 0 (List.length (Setassoc.resident c))

let prop_lru_never_exceeds_capacity =
  QCheck.Test.make ~name:"resident lines never exceed capacity" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 200) (int_range 0 63))
    (fun lines ->
      let c = Setassoc.create ~sets:4 ~assoc:2 () in
      List.iter
        (fun l -> if not (Setassoc.access c l) then ignore (Setassoc.insert c l))
        lines;
      List.length (Setassoc.resident c) <= Setassoc.capacity_lines c)

let prop_access_after_insert_hits =
  QCheck.Test.make ~name:"immediate re-access hits" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 0 255))
    (fun lines ->
      let c = Setassoc.create ~sets:8 ~assoc:4 () in
      List.for_all
        (fun l ->
          if not (Setassoc.access c l) then ignore (Setassoc.insert c l);
          Setassoc.access c l)
        lines)

(* --- Hierarchy ------------------------------------------------------ *)

let tiny_machine () =
  (* 2 cores, private L1 (2 sets x 2), shared L2 (8 sets x 2). *)
  let l1 id =
    Topology.Cache
      ( {
          Topology.cache_name = Printf.sprintf "L1#%d" id;
          level = 1;
          size_bytes = 2 * 2 * 64;
          assoc = 2;
          line = 64;
          latency = 2;
          policy = Policy.Lru;
        },
        [ Topology.Core id ] )
  in
  Topology.make ~name:"tiny" ~clock_ghz:1. ~mem_latency:100
    [
      Topology.Cache
        ( {
            Topology.cache_name = "L2#0";
            level = 2;
            size_bytes = 8 * 2 * 64;
            assoc = 2;
            line = 64;
            latency = 10;
            policy = Policy.Lru;
          },
          [ l1 0; l1 1 ] );
    ]

let test_hierarchy_latencies () =
  let h = Hierarchy.create (tiny_machine ()) in
  (* Cold: L1 probe (2) + L2 probe (10) + memory (100). *)
  check_int "cold miss" 112 (Hierarchy.access h ~core:0 ~addr:0 ~write:false);
  (* Now resident in both caches: L1 hit. *)
  check_int "L1 hit" 2 (Hierarchy.access h ~core:0 ~addr:0 ~write:false);
  (* Other core: misses its L1, hits shared L2. *)
  check_int "L2 hit via sharing" 12
    (Hierarchy.access h ~core:1 ~addr:0 ~write:false);
  check_int "hit_latency L2" 12
    (Option.get (Hierarchy.hit_latency h ~core:0 ~level:2));
  check_int "miss latency" 112 (Hierarchy.miss_latency h ~core:0)

let test_hierarchy_inclusive_fill () =
  let h = Hierarchy.create (tiny_machine ()) in
  ignore (Hierarchy.access h ~core:0 ~addr:0 ~write:false);
  (* After the fill the line is in both the L1 and the L2: evicting it
     from L1 (capacity) still leaves an L2 hit. *)
  ignore (Hierarchy.access h ~core:0 ~addr:(64 * 2) ~write:false);
  ignore (Hierarchy.access h ~core:0 ~addr:(64 * 4) ~write:false);
  (* set 0 of L1 now held 0,2,4 -> 0 was evicted. *)
  check_int "L2 hit after L1 eviction" 12
    (Hierarchy.access h ~core:0 ~addr:0 ~write:false)

let test_hierarchy_coherence () =
  let h = Hierarchy.create ~coherence:true (tiny_machine ()) in
  ignore (Hierarchy.access h ~core:1 ~addr:0 ~write:false);
  check_int "core1 hit" 2 (Hierarchy.access h ~core:1 ~addr:0 ~write:false);
  (* A write by core 0 invalidates core 1's L1 copy. *)
  ignore (Hierarchy.access h ~core:0 ~addr:0 ~write:true);
  check_int "core1 refetches from L2" 12
    (Hierarchy.access h ~core:1 ~addr:0 ~write:false)

let test_hierarchy_stats () =
  let h = Hierarchy.create (tiny_machine ()) in
  ignore (Hierarchy.access h ~core:0 ~addr:0 ~write:false);
  ignore (Hierarchy.access h ~core:0 ~addr:0 ~write:false);
  let stats = Hierarchy.level_stats h in
  let l1 = List.find (fun s -> s.Stats.level = 1) stats in
  check_int "l1 hits" 1 l1.Stats.hits;
  check_int "l1 misses" 1 l1.Stats.misses;
  check_int "mem accesses" 1 (Hierarchy.mem_accesses h);
  Hierarchy.clear h;
  check_int "cleared" 0 (Hierarchy.mem_accesses h)

(* --- Engine --------------------------------------------------------- *)

let test_engine_serial () =
  let h = Hierarchy.create (tiny_machine ()) in
  let stream =
    Array.of_list
      (List.map
         (fun (a, w) -> Engine.encode_access ~addr:a ~write:w)
         [ (0, false); (0, true); (64, false) ])
  in
  let stats = Engine.run_serial h stream in
  check_int "accesses" 3 stats.Stats.total_accesses;
  (* cold(112) + hit(2) + cold(112), plus 1 issue cycle each. *)
  check_int "cycles" (112 + 2 + 112 + 3) stats.Stats.cycles;
  check_int "no barriers" 0 stats.Stats.barriers

let test_engine_parallel_max () =
  let h = Hierarchy.create (tiny_machine ()) in
  (* Core 0 does 4 accesses to distinct lines, core 1 does 1. *)
  let enc a = Engine.encode_access ~addr:a ~write:false in
  let phase =
    [| Array.init 4 (fun i -> enc (i * 64 * 16)); [| enc (64 * 3) |] |]
  in
  let stats = Engine.run h [ phase ] in
  (* Completion is the slowest core, roughly 4 cold misses. *)
  check_bool "max over cores" true
    (stats.Stats.cycles >= 4 * 112 && stats.Stats.cycles < 5 * 113);
  check_int "busy cores" 2
    (Array.length (Array.of_list (List.filter (fun c -> c > 0) (Array.to_list stats.Stats.core_cycles))))

let test_engine_barrier () =
  let h = Hierarchy.create (tiny_machine ()) in
  let enc a = Engine.encode_access ~addr:a ~write:false in
  let p1 = [| [| enc 0 |]; [||] |] in
  let p2 = [| [||]; [| enc (64 * 17) |] |] in
  let stats = Engine.run h [ p1; p2 ] in
  check_int "one barrier" 1 stats.Stats.barriers;
  (* Phase 2 starts only after phase 1's max plus the barrier cost. *)
  check_bool "barrier serializes" true
    (stats.Stats.cycles >= (112 + 1) + Engine.default_config.barrier_cost + 112)

let test_engine_sharing_constructive () =
  (* Two cores reading the same lines: the second reader should hit in
     the shared L2 after the first brings lines in. *)
  let h = Hierarchy.create (tiny_machine ()) in
  let enc a = Engine.encode_access ~addr:a ~write:false in
  let same = Array.init 8 (fun i -> enc (i * 64)) in
  let stats = Engine.run h [ [| same; same |] |> Array.map Array.copy ] in
  check_bool "L2 sees hits" true
    (let l2 = List.find (fun s -> s.Stats.level = 2) stats.Stats.per_level in
     l2.Stats.hits > 0);
  check_int "mem only once per line" 8 stats.Stats.mem_accesses

let test_engine_core_count_mismatch () =
  let h = Hierarchy.create (tiny_machine ()) in
  Alcotest.check_raises "phase mismatch"
    (Invalid_argument "Engine.run: phase core-count mismatch") (fun () ->
      ignore (Engine.run h [ [| [||] |] ]))

let test_encode_roundtrip () =
  List.iter
    (fun (a, w) ->
      let a', w' = Engine.decode_access (Engine.encode_access ~addr:a ~write:w) in
      check_int "addr" a a';
      check_bool "write" w w')
    [ (0, false); (12345, true); (1 lsl 40, false) ]

(* --- Differential tests of the optimized hot path ------------------- *)

(* A naive, self-contained model of the seed cache semantics:
   per-set MRU-first lists, plain div/mod indexing, no flattened
   arrays, no shift/mask fast paths.  The optimized Setassoc/Hierarchy
   must agree with it access for access — including on non-power-of-two
   line sizes and set counts, where the fast paths must fall back. *)
module Naive = struct
  type cache = {
    sets : int;
    assoc : int;
    latency : int;
    level : int;
    data : int list array;  (* per set, MRU first *)
    mutable hits : int;
    mutable misses : int;
  }

  let cache ~sets ~assoc ~latency ~level =
    { sets; assoc; latency; level; data = Array.make sets []; hits = 0; misses = 0 }

  let set_of c line = line mod c.sets

  let access c line =
    let s = set_of c line in
    if List.mem line c.data.(s) then begin
      c.hits <- c.hits + 1;
      c.data.(s) <- line :: List.filter (fun l -> l <> line) c.data.(s);
      true
    end
    else begin
      c.misses <- c.misses + 1;
      false
    end

  let insert c line =
    let s = set_of c line in
    if List.mem line c.data.(s) then
      c.data.(s) <- line :: List.filter (fun l -> l <> line) c.data.(s)
    else begin
      let d = line :: c.data.(s) in
      c.data.(s) <-
        (if List.length d > c.assoc then List.filteri (fun i _ -> i < c.assoc) d
         else d)
    end

  let invalidate c line =
    let s = set_of c line in
    if List.mem line c.data.(s) then begin
      c.data.(s) <- List.filter (fun l -> l <> line) c.data.(s);
      true
    end
    else false

  (* A 2-core machine: private L1s, shared L2, like [tiny_machine] but
     parametric in line size and set counts. *)
  type machine = {
    line : int;
    mem_latency : int;
    l1 : cache array;  (* per core *)
    l2 : cache;
    mutable mem_accesses : int;
  }

  let machine ~line ~l1_sets ~l2_sets ~assoc ~mem_latency =
    {
      line;
      mem_latency;
      l1 =
        Array.init 2 (fun _ -> cache ~sets:l1_sets ~assoc ~latency:2 ~level:1);
      l2 = cache ~sets:l2_sets ~assoc ~latency:10 ~level:2;
      mem_accesses = 0;
    }

  let maccess m ~core ~addr ~write =
    let line = addr / m.line in
    let path = [ m.l1.(core); m.l2 ] in
    let latency = ref 0 in
    let rec probe = function
      | [] ->
          m.mem_accesses <- m.mem_accesses + 1;
          latency := !latency + m.mem_latency;
          List.iter (fun c -> insert c line) path
      | c :: rest ->
          latency := !latency + c.latency;
          if access c line then
            (* fill everything below the hit point *)
            List.iter
              (fun c' -> if c'.level < c.level then insert c' line)
              path
          else probe rest
    in
    probe path;
    if write then ignore (invalidate m.l1.(1 - core) line);
    !latency

  let level_stats m =
    let l1h = m.l1.(0).hits + m.l1.(1).hits in
    let l1m = m.l1.(0).misses + m.l1.(1).misses in
    [
      { Stats.level = 1; hits = l1h; misses = l1m };
      { Stats.level = 2; hits = m.l2.hits; misses = m.l2.misses };
    ]
end

let param_machine ~line ~l1_sets ~l2_sets ~assoc =
  let l1 id =
    Topology.Cache
      ( {
          Topology.cache_name = Printf.sprintf "L1#%d" id;
          level = 1;
          size_bytes = l1_sets * assoc * line;
          assoc;
          line;
          latency = 2;
          policy = Policy.Lru;
        },
        [ Topology.Core id ] )
  in
  Topology.make ~name:"param" ~clock_ghz:1. ~mem_latency:100
    [
      Topology.Cache
        ( {
            Topology.cache_name = "L2#0";
            level = 2;
            size_bytes = l2_sets * assoc * line;
            assoc;
            line;
            latency = 10;
            policy = Policy.Lru;
          },
          [ l1 0; l1 1 ] );
    ]

(* (line, l1_sets, l2_sets, assoc): power-of-two and non-power-of-two
   line sizes and set counts, so both the shift/mask fast paths and the
   div/mod fallbacks are exercised. *)
let diff_configs =
  [ (64, 2, 8, 2); (48, 2, 8, 2); (64, 3, 5, 2); (48, 3, 7, 3); (32, 1, 6, 4) ]

let access_gen =
  QCheck.(
    list_of_size (Gen.int_range 1 300)
      (triple (int_range 0 1) (int_range 0 4095) bool))

let prop_hierarchy_matches_naive_model =
  QCheck.Test.make ~name:"Hierarchy.access matches naive seed model" ~count:60
    access_gen
    (fun accesses ->
      List.for_all
        (fun (line, l1_sets, l2_sets, assoc) ->
          let h =
            Hierarchy.create (param_machine ~line ~l1_sets ~l2_sets ~assoc)
          in
          let m =
            Naive.machine ~line ~l1_sets ~l2_sets ~assoc ~mem_latency:100
          in
          List.for_all
            (fun (core, addr, write) ->
              Hierarchy.access h ~core ~addr ~write
              = Naive.maccess m ~core ~addr ~write)
            accesses
          && Hierarchy.level_stats h = Naive.level_stats m
          && Hierarchy.mem_accesses h = m.Naive.mem_accesses)
        diff_configs)

(* Probe event log, for comparing full event sequences. *)
type event =
  | Access of int * int * int * bool
  | Level of int * int * int * int * bool
  | Mem of int * int
  | Evict of int * int * int
  | Invalidate of int * int * int
  | Retire of int * int
  | Phase_start of int
  | Phase_end of int * int
  | Barrier_enter of int * int
  | Barrier_exit of int * int

let recording_probe log =
  let push e = log := e :: !log in
  {
    Probe.on_access = (fun ~core ~addr ~line ~write -> push (Access (core, addr, line, write)));
    on_level =
      (fun ~core ~level ~set ~line ~hit -> push (Level (core, level, set, line, hit)));
    on_mem = (fun ~core ~line -> push (Mem (core, line)));
    on_evict = (fun ~core ~level ~line -> push (Evict (core, level, line)));
    on_invalidate =
      (fun ~core ~level ~line -> push (Invalidate (core, level, line)));
    on_retire = (fun ~core ~cycles -> push (Retire (core, cycles)));
    on_phase_start = (fun ~phase -> push (Phase_start phase));
    on_phase_end = (fun ~phase ~cycles -> push (Phase_end (phase, cycles)));
    on_barrier_enter =
      (fun ~phase ~cycles -> push (Barrier_enter (phase, cycles)));
    on_barrier_exit =
      (fun ~phase ~cycles -> push (Barrier_exit (phase, cycles)));
  }

(* Random phases for the 2-core parametric machines: each phase gives
   each core an independent stream (possibly empty — idle cores are the
   interesting heap edge case). *)
let phases_gen =
  QCheck.(
    list_of_size (Gen.int_range 1 4)
      (pair
         (list_of_size (Gen.int_range 0 60) (pair (int_range 0 4095) bool))
         (list_of_size (Gen.int_range 0 60) (pair (int_range 0 4095) bool))))

let phases_of_spec spec =
  List.map
    (fun (s0, s1) ->
      let enc s =
        Array.of_list
          (List.map (fun (a, w) -> Engine.encode_access ~addr:a ~write:w) s)
      in
      [| enc s0; enc s1 |])
    spec

let run_logged runner ~machine phases =
  let log = ref [] in
  let h = Hierarchy.create ~probe:(recording_probe log) machine in
  let stats = runner h phases in
  (stats, List.rev !log)

let prop_heap_engine_matches_scan =
  QCheck.Test.make
    ~name:"heap Engine.run == scan Engine.run_reference (stats + events)"
    ~count:60 phases_gen
    (fun spec ->
      let phases = phases_of_spec spec in
      List.for_all
        (fun (line, l1_sets, l2_sets, assoc) ->
          let machine = param_machine ~line ~l1_sets ~l2_sets ~assoc in
          let s_heap, e_heap = run_logged Engine.run ~machine phases in
          let s_scan, e_scan = run_logged Engine.run_reference ~machine phases in
          s_heap = s_scan && e_heap = e_scan)
        diff_configs)

let test_engine_heap_vs_scan_multicore () =
  (* Same differential on a real 16-core machine with a deeper
     hierarchy, deterministic streams. *)
  let machine = Ctam_arch.Machines.dunnington ~scale:64 () in
  let n = machine.Topology.num_cores in
  let mk_phase seed len =
    Array.init n (fun c ->
        if (c + seed) mod 3 = 2 then [||]
        else
          Array.init len (fun i ->
              Engine.encode_access
                ~addr:(((c * 977) + (i * 64) + (seed * 131)) mod 65536)
                ~write:((i + c) mod 5 = 0)))
  in
  let phases = [ mk_phase 0 40; mk_phase 1 25; mk_phase 2 33 ] in
  let s_heap, e_heap = run_logged Engine.run ~machine phases in
  let s_scan, e_scan = run_logged Engine.run_reference ~machine phases in
  check_bool "stats identical" true (s_heap = s_scan);
  check_int "event count" (List.length e_scan) (List.length e_heap);
  check_bool "event sequences identical" true (e_heap = e_scan)

let test_setassoc_non_pow2_sets () =
  (* sets = 3: the mask fast path must not engage; mapping is mod 3. *)
  let c = Setassoc.create ~sets:3 ~assoc:2 () in
  check_int "set of 7" 1 (Setassoc.set_of_line c 7);
  check_int "set of 9" 0 (Setassoc.set_of_line c 9);
  ignore (Setassoc.insert c 0);
  ignore (Setassoc.insert c 3);
  (* set 0 full; 6 evicts the LRU (0). *)
  Alcotest.(check (option int)) "evicts in mod-3 set" (Some 0)
    (Setassoc.insert c 6);
  check_bool "3 survives" true (Setassoc.contains c 3);
  (* 1 lives in set 1, untouched. *)
  ignore (Setassoc.insert c 1);
  check_bool "set 1 disjoint" true (Setassoc.contains c 1)

(* --- Reuse ------------------------------------------------------------ *)

let test_reuse_simple () =
  (* Stream: a b a b -> distances: cold, cold, 1, 1. *)
  let h = Reuse.of_lines [| 1; 2; 1; 2 |] in
  check_int "cold" 2 h.Reuse.cold;
  check_int "total" 4 h.Reuse.total;
  (* distance 1 lands in bucket 1 ([1,2)). *)
  check_int "bucket1" 2 h.Reuse.buckets.(1);
  (* Consecutive re-access: distance 0. *)
  let h0 = Reuse.of_lines [| 7; 7; 7 |] in
  check_int "bucket0" 2 h0.Reuse.buckets.(0)

let test_reuse_distance_counts_distinct () =
  (* a x x b a: distance of the second a is 2 distinct lines (x, b). *)
  let h = Reuse.of_lines [| 1; 2; 2; 3; 1 |] in
  (* distance 2 -> bucket 2 ([2,4)). *)
  check_int "distinct lines" 1 h.Reuse.buckets.(2)

let test_reuse_hit_ratio () =
  (* Cyclic sweep over 8 lines, 4 times: every non-cold access has
     distance 7. *)
  let stream = Array.init 32 (fun i -> i mod 8) in
  let h = Reuse.of_lines stream in
  check_int "cold" 8 h.Reuse.cold;
  check_bool "hits with 8 lines" true (Reuse.hit_ratio_at h ~lines:8 >= 0.99);
  check_bool "misses with 4 lines" true (Reuse.hit_ratio_at h ~lines:4 <= 0.01);
  check_bool "mean distance in bucket [4,8)" true
    (let m = Reuse.mean_distance h in m >= 4. && m < 8.)

let test_reuse_merge () =
  let h1 = Reuse.of_lines [| 1; 1 |] and h2 = Reuse.of_lines [| 2; 2 |] in
  let m = Reuse.merge [ h1; h2 ] in
  check_int "total" 4 m.Reuse.total;
  check_int "cold" 2 m.Reuse.cold

let prop_reuse_agrees_with_fullassoc_lru =
  (* The reuse histogram's hit count below capacity C must equal the
     hits of a fully-associative LRU cache of capacity C (for C a
     bucket boundary power of two). *)
  QCheck.Test.make ~name:"reuse histogram matches full-assoc LRU" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 300) (int_range 0 15))
    (fun lines_list ->
      let lines = Array.of_list lines_list in
      let h = Reuse.of_lines lines in
      let capacity = 8 in
      let cache = Setassoc.create ~sets:1 ~assoc:capacity () in
      Array.iter
        (fun l -> if not (Setassoc.access cache l) then ignore (Setassoc.insert cache l))
        lines;
      let expected_hits = Setassoc.hits cache in
      (* Buckets 0..3 cover distances 0..7 (< 8). *)
      let hist_hits =
        h.Reuse.buckets.(0) + h.Reuse.buckets.(1) + h.Reuse.buckets.(2)
        + h.Reuse.buckets.(3)
      in
      expected_hits = hist_hits)

(* --- Streams / sampling / memo --------------------------------------- *)

let gen_of_array a =
  let pos = ref 0 in
  {
    Engine.length = Array.length a;
    pull =
      (fun () ->
        if !pos >= Array.length a then
          invalid_arg "gen_of_array: pulled past end";
        let v = a.(!pos) in
        incr pos;
        v);
    reset = (fun () -> pos := 0);
    (* Reference implementation of the sampled fast path: a plain scan
       of the backing array, trivially equivalent to the pull loop —
       so the differential tests exercise the engine's skip plumbing
       too. *)
    skip_to_sample =
      Some
        (fun ~shift ~mask ~skipped ->
          let n = Array.length a in
          let found = ref (-1) in
          while !found < 0 && !pos < n do
            let e = a.(!pos) in
            incr pos;
            if e lsr shift land mask = 0 then found := e else incr skipped
          done;
          !found);
  }

let gen_phases phases =
  List.map (Array.map (fun a -> Engine.Gen (gen_of_array a))) phases

let prop_gen_cursor_matches_dense =
  (* A generator-backed stream must be indistinguishable from the
     dense array it encodes: same statistics AND the same probe event
     sequence, on both the heap engine and the reference scan. *)
  QCheck.Test.make ~name:"Gen cursors == Dense arrays (stats + events)"
    ~count:40 phases_gen
    (fun spec ->
      let phases = phases_of_spec spec in
      let dense = List.map Engine.of_phase phases in
      let gens = gen_phases phases in
      List.for_all
        (fun (line, l1_sets, l2_sets, assoc) ->
          let machine = param_machine ~line ~l1_sets ~l2_sets ~assoc in
          let run ph =
            run_logged (fun h p -> Engine.run_streams h p) ~machine ph
          in
          let scan ph =
            run_logged (fun h p -> Engine.run_reference_streams h p) ~machine ph
          in
          let s_d, e_d = run dense in
          let s_g, e_g = run gens in
          let s_r, e_r = scan gens in
          s_d = s_g && e_d = e_g && s_d = s_r && e_d = e_r)
        diff_configs)

let det_stream seed len =
  Array.init len (fun i ->
      Engine.encode_access
        ~addr:(((seed * 977) + (i * 28)) mod 8192)
        ~write:((i + seed) mod 5 = 0))

let test_engine_capped_cursor () =
  (* An early [max_cycles] cutoff must stop pulling from the
     generator: the cap check precedes every pull, so the cursor is
     drained exactly as far as the executed prefix — and the capped
     statistics are identical to the dense path's. *)
  let machine = param_machine ~line:64 ~l1_sets:4 ~l2_sets:16 ~assoc:2 in
  let phase = [| det_stream 0 400; det_stream 1 400 |] in
  let dense = [ Engine.of_phase phase ] in
  let pulls = ref 0 in
  let counting a =
    let g = gen_of_array a in
    Engine.Gen
      {
        g with
        Engine.pull =
          (fun () ->
            incr pulls;
            g.Engine.pull ());
        (* Counting pulls requires the pull path; the inherited skip
           would bypass the counter. *)
        skip_to_sample = None;
      }
  in
  let gens = [ Array.map counting phase ] in
  let full = Engine.run_streams (Hierarchy.create machine) dense in
  let cap = full.Stats.cycles / 3 in
  let s_dense =
    Engine.run_streams ~max_cycles:cap (Hierarchy.create machine) dense
  in
  let s_gen =
    Engine.run_streams ~max_cycles:cap (Hierarchy.create machine) gens
  in
  check_bool "capped stats identical" true (s_dense = s_gen);
  check_bool "cut early" true (s_dense.Stats.total_accesses < 800);
  check_bool "cycles reach cap" true (s_dense.Stats.cycles >= cap);
  check_int "pulls == issued accesses" s_gen.Stats.total_accesses !pulls

let test_engine_sampling_batched_matches_per_access () =
  (* Skip batching only engages on unobserved runs; attaching a probe
     forces the per-access sampled path.  Both must produce identical
     statistics (the batch charges one bulk estimate equal to the sum
     of the per-access estimates, and sampled accesses are issued at
     the same clocks), on dense and generator streams alike. *)
  let machine = param_machine ~line:64 ~l1_sets:4 ~l2_sets:16 ~assoc:2 in
  let phases =
    [
      [| det_stream 0 300; det_stream 1 251 |];
      [| det_stream 2 123; det_stream 3 77 |];
    ]
  in
  let dense = List.map Engine.of_phase phases in
  let run ~probed sample_sets ph =
    let log = ref [] in
    let h =
      if probed then
        Hierarchy.create ~probe:(recording_probe log) ~sample_sets machine
      else Hierarchy.create ~sample_sets machine
    in
    Engine.run_streams h ph
  in
  let batched = run ~probed:false 2 dense in
  let batched_gen = run ~probed:false 2 (gen_phases phases) in
  let per_access = run ~probed:true 2 dense in
  check_bool "batched == per-access (probed)" true (batched = per_access);
  check_bool "batched dense == batched gen" true (batched = batched_gen);
  let exact = run ~probed:false 1 dense in
  check_int "total_accesses stays unscaled" exact.Stats.total_accesses
    batched.Stats.total_accesses;
  check_int "barriers unchanged" exact.Stats.barriers batched.Stats.barriers

let test_engine_sampling_error_bounds () =
  (* Extrapolated counters of a sampled run must stay near the exact
     run on a cache-friendly sweep: constant-bit sampling keeps whole
     sets, so per-set behaviour is representative. *)
  let machine = param_machine ~line:64 ~l1_sets:8 ~l2_sets:64 ~assoc:4 in
  let phase =
    [|
      Array.init 4000 (fun i ->
          Engine.encode_access ~addr:(i * 64 mod 65536) ~write:(i mod 9 = 0));
      Array.init 4000 (fun i ->
          Engine.encode_access
            ~addr:(((i * 64) + 32768) mod 65536)
            ~write:(i mod 11 = 0));
    |]
  in
  let dense = [ Engine.of_phase phase ] in
  let exact = Engine.run_streams (Hierarchy.create machine) dense in
  List.iter
    (fun factor ->
      let approx =
        Engine.run_streams (Hierarchy.create ~sample_sets:factor machine) dense
      in
      check_bool
        (Printf.sprintf "within 10%% at factor %d" factor)
        true
        (Stats.approx_equal ~rel_tol:0.10 exact approx))
    [ 2; 4; 8 ]

let test_engine_memo_replay () =
  (* A memoized re-run replays recorded deltas: byte-identical
     statistics, nonzero hit count, and exit cache state equal to the
     simulated run's (checked through the state hash). *)
  let machine = param_machine ~line:64 ~l1_sets:4 ~l2_sets:16 ~assoc:2 in
  let phases =
    [
      [| det_stream 0 200; det_stream 1 150 |];
      [| det_stream 2 80; det_stream 3 90 |];
    ]
  in
  let dense = List.map Engine.of_phase phases in
  let plain = Engine.run_streams (Hierarchy.create machine) dense in
  let memo = Memo.create () in
  let h = Hierarchy.create machine in
  let cold = Engine.run_streams ~memo h dense in
  let hash_cold = Hierarchy.state_hash h in
  check_bool "memoized run == plain run" true (cold = plain);
  check_int "cold run misses every phase" 2 (Memo.misses memo);
  check_int "cold run stores every phase" 2 (Memo.size memo);
  let warm = Engine.run_streams ~memo h dense in
  check_bool "replayed run byte-identical" true (warm = plain);
  check_int "warm run hits every phase" 2 (Memo.hits memo);
  check_bool "exit cache state restored" true
    (Hierarchy.state_hash h = hash_cold);
  (* Generator streams hash to the same phase key as the dense arrays
     they encode: representation must not split the memo. *)
  let again = Engine.run_streams ~memo h (gen_phases phases) in
  check_bool "gen streams hit dense entries" true (again = plain);
  check_int "no new entries" 2 (Memo.size memo);
  (* A probe makes the memo inert — simulated, not replayed, and the
     event stream is the ordinary one. *)
  let hits_before = Memo.hits memo in
  let s_obs, e_obs =
    run_logged (fun h p -> Engine.run_streams ~memo h p) ~machine dense
  in
  let s_ref, e_ref =
    run_logged (fun h p -> Engine.run_streams h p) ~machine dense
  in
  check_bool "observed run unaffected by memo" true
    (s_obs = s_ref && e_obs = e_ref);
  check_int "memo inert under probes" hits_before (Memo.hits memo)

let test_stats_rel_errors_and_approx_equal () =
  let exact =
    {
      Stats.per_level =
        [
          { Stats.level = 1; hits = 100; misses = 20 };
          { Stats.level = 2; hits = 10; misses = 10 };
        ];
      mem_accesses = 10;
      total_accesses = 120;
      cycles = 1000;
      core_cycles = [| 1000; 900 |];
      barriers = 1;
    }
  in
  let approx =
    {
      exact with
      Stats.per_level =
        [
          { Stats.level = 1; hits = 104; misses = 19 };
          { Stats.level = 2; hits = 10; misses = 10 };
        ];
      cycles = 1030;
    }
  in
  let errs = Stats.rel_errors ~exact ~approx in
  let e name = List.assoc name errs in
  check_bool "cycles err" true (abs_float (e "cycles" -. 0.03) < 1e-9);
  check_bool "L1 hits err" true (abs_float (e "L1_hits" -. 0.04) < 1e-9);
  check_bool "L2 exact" true (e "L2_misses" = 0.);
  check_bool "within 5%" true (Stats.approx_equal exact approx);
  check_bool "not within 1%" false (Stats.approx_equal ~rel_tol:0.01 exact approx);
  (* Structural mismatches are infinite, never masked by tolerance. *)
  let broken = { approx with Stats.total_accesses = 121 } in
  check_bool "structural member must match" false
    (Stats.approx_equal ~rel_tol:10. exact broken);
  check_bool "reports infinity" true
    (List.assoc "total_accesses" (Stats.rel_errors ~exact ~approx:broken)
    = infinity)

let () =
  Alcotest.run "cachesim"
    [
      ( "setassoc",
        [
          Alcotest.test_case "basics" `Quick test_setassoc_basics;
          Alcotest.test_case "lru" `Quick test_setassoc_lru;
          Alcotest.test_case "sets disjoint" `Quick test_setassoc_sets_disjoint;
          Alcotest.test_case "invalidate" `Quick test_setassoc_invalidate;
          Alcotest.test_case "clear" `Quick test_setassoc_clear;
          Alcotest.test_case "non-power-of-two sets" `Quick
            test_setassoc_non_pow2_sets;
          QCheck_alcotest.to_alcotest prop_lru_never_exceeds_capacity;
          QCheck_alcotest.to_alcotest prop_access_after_insert_hits;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "latencies" `Quick test_hierarchy_latencies;
          Alcotest.test_case "inclusive fill" `Quick test_hierarchy_inclusive_fill;
          Alcotest.test_case "coherence" `Quick test_hierarchy_coherence;
          Alcotest.test_case "stats" `Quick test_hierarchy_stats;
          QCheck_alcotest.to_alcotest prop_hierarchy_matches_naive_model;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "simple" `Quick test_reuse_simple;
          Alcotest.test_case "distinct" `Quick test_reuse_distance_counts_distinct;
          Alcotest.test_case "hit ratio" `Quick test_reuse_hit_ratio;
          Alcotest.test_case "merge" `Quick test_reuse_merge;
          QCheck_alcotest.to_alcotest prop_reuse_agrees_with_fullassoc_lru;
        ] );
      ( "engine",
        [
          Alcotest.test_case "serial" `Quick test_engine_serial;
          Alcotest.test_case "parallel max" `Quick test_engine_parallel_max;
          Alcotest.test_case "barrier" `Quick test_engine_barrier;
          Alcotest.test_case "constructive sharing" `Quick
            test_engine_sharing_constructive;
          Alcotest.test_case "core mismatch" `Quick test_engine_core_count_mismatch;
          Alcotest.test_case "encode roundtrip" `Quick test_encode_roundtrip;
          Alcotest.test_case "heap vs scan, 16-core machine" `Quick
            test_engine_heap_vs_scan_multicore;
          QCheck_alcotest.to_alcotest prop_heap_engine_matches_scan;
        ] );
      ( "streams",
        [
          Alcotest.test_case "capped run stops pulling" `Quick
            test_engine_capped_cursor;
          Alcotest.test_case "sampling: batched == per-access" `Quick
            test_engine_sampling_batched_matches_per_access;
          Alcotest.test_case "sampling: error bounds" `Quick
            test_engine_sampling_error_bounds;
          Alcotest.test_case "memo replay" `Quick test_engine_memo_replay;
          Alcotest.test_case "rel_errors / approx_equal" `Quick
            test_stats_rel_errors_and_approx_equal;
          QCheck_alcotest.to_alcotest prop_gen_cursor_matches_dense;
        ] );
    ]
