(* Tests for C code emission: structure always; compilation and
   semantic equivalence with gcc when available. *)

open Ctam_core
open Ctam_workloads

let check_bool = Alcotest.(check bool)
let contains ~affix s = Astring.String.is_infix ~affix s
let machine = Ctam_arch.Machines.dunnington ~scale:64 ()

let sp_prog = Kernel.program ~size:512 Suite.sp
let galgel_prog = Kernel.program ~size:64 Suite.galgel

let test_structure () =
  let c = Mapping.compile Mapping.Combined ~machine sp_prog in
  let code = Emit_c.program c in
  check_bool "has omp parallel" true
    (contains ~affix:"#pragma omp parallel num_threads(12)" code);
  check_bool "has thread switch" true
    (contains ~affix:"switch (ctam_core)" code);
  check_bool "has for loops" true (contains ~affix:"for (j = " code);
  check_bool "has barriers (sp carries deps)" true
    (contains ~affix:"#pragma omp barrier" code);
  check_bool "has checksum" true (contains ~affix:"checksum" code);
  check_bool "declares arrays" true
    (contains ~affix:"static double B" code)

let test_base_structure () =
  let c = Mapping.compile Mapping.Base ~machine galgel_prog in
  let code = Emit_c.program c in
  (* Dependence-free Base: one round, no inter-round barriers beyond
     the nest separator. *)
  check_bool "single round" true (contains ~affix:"/* round 0 */" code);
  check_bool "no round 1" false (contains ~affix:"/* round 1 */" code);
  check_bool "2D loops" true (contains ~affix:"for (i = " code)

let test_plan_core_view () =
  let c = Mapping.compile Mapping.Combined ~machine sp_prog in
  let plan = List.hd c.Mapping.plans in
  let code = Emit_c.nest_for_core ~plan ~core:0 in
  check_bool "core has code" true (String.length code > 0);
  check_bool "core view has loops" true (contains ~affix:"for (" code)

let test_every_scheme_emits () =
  List.iter
    (fun scheme ->
      let c = Mapping.compile scheme ~machine galgel_prog in
      let code = Emit_c.program c in
      check_bool (Mapping.scheme_name scheme ^ " emits") true
        (String.length code > 500))
    Mapping.all_schemes

(* --- gcc-backed tests (skipped when gcc is unavailable) -------------- *)

let gcc_available =
  Sys.command "gcc --version > /dev/null 2>&1" = 0

let compile_and_run code name =
  let dir = Filename.get_temp_dir_name () in
  let src = Filename.concat dir (name ^ ".c") in
  let exe = Filename.concat dir name in
  let oc = open_out src in
  output_string oc code;
  close_out oc;
  let rc =
    Sys.command (Printf.sprintf "gcc -fopenmp -O1 -o %s %s 2>/dev/null" exe src)
  in
  Alcotest.(check int) (name ^ " compiles") 0 rc;
  let ic = Unix.open_process_in exe in
  let line = input_line ic in
  ignore (Unix.close_process_in ic);
  line

let test_gcc_semantic_equivalence () =
  if not gcc_available then ()
  else begin
    (* Two legal schedules of the dependence-carrying loop must compute
       the same values: the mapping is semantics-preserving. *)
    let base =
      compile_and_run
        (Emit_c.program (Mapping.compile Mapping.Base ~machine sp_prog))
        "ctam_test_base"
    in
    let combined =
      compile_and_run
        (Emit_c.program (Mapping.compile Mapping.Combined ~machine sp_prog))
        "ctam_test_combined"
    in
    Alcotest.(check string) "same checksum" base combined
  end

let test_gcc_dep_free_equivalence () =
  if not gcc_available then ()
  else begin
    let base =
      compile_and_run
        (Emit_c.program (Mapping.compile Mapping.Base ~machine galgel_prog))
        "ctam_test_gbase"
    in
    let topo =
      compile_and_run
        (Emit_c.program
           (Mapping.compile Mapping.Topology_aware ~machine galgel_prog))
        "ctam_test_gtopo"
    in
    Alcotest.(check string) "same checksum" base topo
  end

let () =
  Alcotest.run "emit_c"
    [
      ( "structure",
        [
          Alcotest.test_case "openmp shape" `Quick test_structure;
          Alcotest.test_case "base shape" `Quick test_base_structure;
          Alcotest.test_case "per-core view" `Quick test_plan_core_view;
          Alcotest.test_case "all schemes" `Quick test_every_scheme_emits;
        ] );
      ( "gcc",
        [
          Alcotest.test_case "dependence-carrying equivalence" `Slow
            test_gcc_semantic_equivalence;
          Alcotest.test_case "dependence-free equivalence" `Slow
            test_gcc_dep_free_equivalence;
        ] );
    ]
