(* Tests for the self-telemetry subsystem: metrics registry (per-domain
   shards, exact counter merges, histogram buckets/quantiles), the
   structured logger, the Prometheus renderer, the snapshot JSON, and
   the zero-overhead contract of the instrumented engine. *)

open Ctam_telemetry
module J = Ctam_util.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* Every test runs with recording on; individual cases toggle and must
   restore. *)
let with_enabled f =
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled was) f

(* --- histogram buckets and quantiles --------------------------------- *)

let test_default_buckets () =
  let b = Metrics.Histogram.default_buckets in
  check_int "19 finite bounds" 19 (Array.length b);
  check_float "first bound is 1 µs" 1e-6 b.(0);
  for i = 1 to Array.length b - 1 do
    let ratio = b.(i) /. b.(i - 1) in
    check_bool
      (Printf.sprintf "bound %d is 4x bound %d" i (i - 1))
      true
      (Float.abs (ratio -. 4.) < 1e-9)
  done;
  check_bool "strictly increasing" true
    (Array.for_all Fun.id (Array.mapi (fun i x -> i = 0 || x > b.(i - 1)) b))

let test_histogram_buckets () =
  with_enabled @@ fun () ->
  let reg = Metrics.create () in
  let h =
    Metrics.Histogram.v ~registry:reg ~buckets:[| 1.; 2.; 4. |] "h_buckets"
  in
  List.iter (Metrics.Histogram.observe0 h) [ 0.5; 1.5; 3.0; 8.0 ];
  match Metrics.find (Metrics.scrape reg) "h_buckets" [] with
  | Some (Metrics.Histogram { count; sum; buckets }) ->
      check_int "count" 4 count;
      check_float "sum" 13.0 sum;
      check_int "4 buckets incl +Inf" 4 (Array.length buckets);
      (* cumulative counts against the upper bounds *)
      let expect = [ (1., 1); (2., 2); (4., 3); (infinity, 4) ] in
      List.iteri
        (fun i (bound, cum) ->
          let b, c = buckets.(i) in
          check_bool (Printf.sprintf "bound %d" i) true (b = bound);
          check_int (Printf.sprintf "cum %d" i) cum c)
        expect;
      (* a value exactly on a bound lands in that bound's bucket *)
      Metrics.Histogram.observe0 h 2.0;
      (match Metrics.find (Metrics.scrape reg) "h_buckets" [] with
      | Some (Metrics.Histogram { buckets; _ }) ->
          check_int "le=2 holds the on-bound value" 3 (snd buckets.(1))
      | _ -> Alcotest.fail "histogram vanished")
  | _ -> Alcotest.fail "histogram not scraped"

let test_quantiles () =
  with_enabled @@ fun () ->
  let reg = Metrics.create () in
  let h = Metrics.Histogram.v ~registry:reg ~buckets:[| 1.; 2.; 4. |] "h_q" in
  List.iter (Metrics.Histogram.observe0 h) [ 0.5; 1.5; 3.0; 8.0 ];
  let v =
    match Metrics.find (Metrics.scrape reg) "h_q" [] with
    | Some v -> v
    | None -> Alcotest.fail "histogram not scraped"
  in
  let q p =
    match Metrics.quantile v p with
    | Some x -> x
    | None -> Alcotest.fail "quantile None on non-empty histogram"
  in
  check_float "q0 at bucket start" 0.0 (q 0.0);
  check_float "q0.25 interpolates to first bound" 1.0 (q 0.25);
  check_float "q0.5 interpolates to second bound" 2.0 (q 0.5);
  (* the estimate in the overflow bucket clamps to the last finite bound *)
  check_float "q1 clamps to last finite bound" 4.0 (q 1.0);
  check_bool "quantile of a counter is None" true
    (Metrics.quantile (Metrics.Counter 3) 0.5 = None);
  let empty =
    Metrics.Histogram.v ~registry:reg ~buckets:[| 1. |] "h_q_empty"
  in
  ignore (Metrics.Histogram.series empty []);
  match Metrics.find (Metrics.scrape reg) "h_q_empty" [] with
  | Some ev -> check_bool "quantile of empty is None" true
                 (Metrics.quantile ev 0.5 = None)
  | None -> Alcotest.fail "empty histogram not scraped"

(* A histogram family with no series yet (or labelled series never
   touched) must scrape, render and export without an exception and
   with deterministic output. *)
let test_empty_histogram_family () =
  with_enabled @@ fun () ->
  let reg = Metrics.create () in
  ignore
    (Metrics.Histogram.v ~registry:reg ~labels:[ "op" ] ~buckets:[| 1.; 2. |]
       ~help:"never observed" "h_empty_family");
  (match Metrics.scrape reg with
  | [ f ] ->
      check_bool "family scraped" true (f.Metrics.f_name = "h_empty_family");
      check_int "no series" 0 (List.length f.Metrics.f_series)
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 family, got %d" (List.length fs)));
  let rendered = Prometheus.render ~registry:reg () in
  check_bool "prometheus renders the empty family" true
    (String.length rendered > 0);
  let rendered2 = Prometheus.render ~registry:reg () in
  check_bool "deterministic" true (String.equal rendered rendered2);
  check_bool "json renders too" true (Metrics.to_json reg <> J.Null)

(* A scrape racing the very first observations on a fresh domain must
   never throw, and every snapshot must satisfy the exposition
   invariant: the +Inf cumulative bucket equals the count (the count
   is derived from the buckets, so a torn read cannot break it). *)
let test_scrape_races_first_record () =
  with_enabled @@ fun () ->
  let reg = Metrics.create () in
  let h =
    Metrics.Histogram.v ~registry:reg ~labels:[ "op" ] ~buckets:[| 1.; 4. |]
      "h_raced"
  in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        (* Fresh domain: the first observe creates this domain's shard
           cell while the main domain is mid-scrape. *)
        let s = Metrics.Histogram.series h [ "run" ] in
        for i = 1 to 5000 do
          Metrics.Histogram.observe s (float_of_int (i mod 8))
        done;
        Atomic.set stop true)
  in
  let scrapes = ref 0 in
  while not (Atomic.get stop) do
    incr scrapes;
    match Metrics.find (Metrics.scrape reg) "h_raced" [ ("op", "run") ] with
    | None -> () (* cell not created yet: a miss, not an exception *)
    | Some (Metrics.Histogram { count; buckets; _ }) ->
        let inf_cum = snd buckets.(Array.length buckets - 1) in
        if inf_cum <> count then
          Alcotest.fail
            (Printf.sprintf "scrape %d: +Inf cum %d <> count %d" !scrapes
               inf_cum count)
    | Some _ -> Alcotest.fail "histogram scraped as a non-histogram"
  done;
  Domain.join writer;
  match Metrics.find (Metrics.scrape reg) "h_raced" [ ("op", "run") ] with
  | Some (Metrics.Histogram { count; buckets; sum }) ->
      check_int "final count" 5000 count;
      check_int "final +Inf cum" 5000 (snd buckets.(Array.length buckets - 1));
      check_bool "final sum settled" true (sum > 0.)
  | _ -> Alcotest.fail "histogram not scraped after join"

(* The ambient log context: fields ride every line in scope, scopes
   nest, and the stack unwinds on exceptions. *)
let test_log_context () =
  let seen = ref [] in
  let saved_level = Log.current_level () in
  Log.set_level (Some Log.Info);
  Log.set_format `Json;
  Log.set_sink (fun line -> seen := line :: !seen);
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink prerr_endline;
      Log.set_format `Human;
      Log.set_level saved_level)
    (fun () ->
      check_bool "empty outside any scope" true (Log.context () = []);
      Log.with_context
        [ ("request_id", J.Int 9) ]
        (fun () ->
          Log.with_context
            [ ("conn", J.Int 3) ]
            (fun () ->
              check_bool "scopes nest" true
                (Log.context ()
                = [ ("request_id", J.Int 9); ("conn", J.Int 3) ]);
              Log.info ~src:"t" (fun () -> "hello"));
          check_bool "inner scope popped" true
            (Log.context () = [ ("request_id", J.Int 9) ]));
      (match
         Log.with_context [ ("x", J.Int 1) ] (fun () -> failwith "boom")
       with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exception swallowed");
      check_bool "unwound after exception" true (Log.context () = []);
      let contains line needle =
        let nl = String.length needle and ll = String.length line in
        let rec go i =
          i + nl <= ll && (String.sub line i nl = needle || go (i + 1))
        in
        go 0
      in
      match !seen with
      | [ line ] ->
          check_bool "context fields emitted" true
            (contains line "\"request_id\":9" && contains line "\"conn\":3")
      | _ -> Alcotest.fail "expected exactly one log line");
  (* --log-format parsing accepts the documented spellings only. *)
  check_bool "json parses" true (Log.format_of_string "json" = Ok `Json);
  check_bool "human parses" true (Log.format_of_string "human" = Ok `Human);
  check_bool "text parses" true (Log.format_of_string "text" = Ok `Human);
  check_bool "garbage rejected" true
    (match Log.format_of_string "yaml" with Error _ -> true | Ok _ -> false)

(* --- cross-domain counter merge --------------------------------------- *)

let test_parallel_counter_merge () =
  with_enabled @@ fun () ->
  let c =
    Metrics.Counter.v ~labels:[ "who" ] "test_parallel_counter_merge_total"
  in
  let s = Metrics.Counter.series c [ "workers" ] in
  let n = 64 in
  let items = List.init n Fun.id in
  let results =
    Ctam_util.Parallel.map ~domains:4
      (fun i ->
        Metrics.Counter.inc ~by:i s;
        Metrics.Counter.inc s;
        i)
      items
  in
  check_bool "map result order preserved" true (results = items);
  let expect = (n * (n - 1) / 2) + n in
  let scraped () =
    match
      Metrics.find (Metrics.scrape Metrics.default)
        "test_parallel_counter_merge_total"
        [ ("who", "workers") ]
    with
    | Some (Metrics.Counter total) -> total
    | _ -> Alcotest.fail "counter not scraped"
  in
  check_int "shard merge sums exactly" expect (scraped ());
  check_int "scrape is repeatable" expect (scraped ());
  (* a second map accumulates on top, still exactly *)
  ignore
    (Ctam_util.Parallel.map ~domains:4
       (fun i ->
         Metrics.Counter.inc s;
         i)
       items);
  check_int "second map adds n" (expect + n) (scraped ())

let test_parallel_histogram_merge () =
  with_enabled @@ fun () ->
  let h =
    Metrics.Histogram.v ~buckets:[| 10.; 100. |]
      "test_parallel_histogram_merge"
  in
  let s = Metrics.Histogram.series h [] in
  let n = 40 in
  ignore
    (Ctam_util.Parallel.map ~domains:4
       (fun i ->
         Metrics.Histogram.observe s (float_of_int i);
         i)
       (List.init n Fun.id));
  match
    Metrics.find (Metrics.scrape Metrics.default)
      "test_parallel_histogram_merge" []
  with
  | Some (Metrics.Histogram { count; sum; buckets }) ->
      check_int "all observations counted" n count;
      check_float "sum merged" (float_of_int (n * (n - 1) / 2)) sum;
      check_int "le=10 cumulative" 11 (snd buckets.(0));
      check_int "+Inf cumulative = count" n (snd buckets.(2))
  | _ -> Alcotest.fail "histogram not scraped"

(* --- enable switch and registration ----------------------------------- *)

let test_disabled_recording () =
  with_enabled @@ fun () ->
  let reg = Metrics.create () in
  let c = Metrics.Counter.v ~registry:reg "test_disabled_total" in
  Metrics.Counter.inc0 c;
  Metrics.set_enabled false;
  Metrics.Counter.inc0 ~by:100 c;
  Metrics.set_enabled true;
  match Metrics.find (Metrics.scrape reg) "test_disabled_total" [] with
  | Some (Metrics.Counter n) -> check_int "disabled incs dropped" 1 n
  | _ -> Alcotest.fail "counter not scraped"

let test_registration () =
  let reg = Metrics.create () in
  let c1 = Metrics.Counter.v ~registry:reg ~help:"h" "test_reg_total" in
  let c2 = Metrics.Counter.v ~registry:reg "test_reg_total" in
  check_bool "re-registration returns the same metric" true (c1 == c2);
  check_bool "kind mismatch rejected" true
    (match Metrics.Gauge.v ~registry:reg "test_reg_total" with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "label-count mismatch rejected" true
    (match Metrics.Counter.series c1 [ "x" ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "negative increment rejected" true
    (match Metrics.Counter.inc ~by:(-1) (Metrics.Counter.series c1 []) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- Prometheus exposition -------------------------------------------- *)

let test_prometheus_escaping () =
  with_enabled @@ fun () ->
  let reg = Metrics.create () in
  let c =
    Metrics.Counter.v ~registry:reg
      ~help:"back\\slash and\nnewline" ~labels:[ "path" ] "test_prom_total"
  in
  Metrics.Counter.inc ~by:3 (Metrics.Counter.series c [ "a\"b\\c\nd" ]);
  let out = Prometheus.render ~registry:reg () in
  let contains needle =
    Astring.String.find_sub ~sub:needle out <> None
  in
  check_bool "help escapes backslash and newline" true
    (contains "# HELP test_prom_total back\\\\slash and\\nnewline");
  check_bool "type line present" true
    (contains "# TYPE test_prom_total counter");
  check_bool "label value escapes quote, backslash, newline" true
    (contains "test_prom_total{path=\"a\\\"b\\\\c\\nd\"} 3")

let test_prometheus_histogram_lines () =
  with_enabled @@ fun () ->
  let reg = Metrics.create () in
  let h =
    Metrics.Histogram.v ~registry:reg ~buckets:[| 0.25; 0.5 |]
      ~labels:[ "op" ] "test_prom_h"
  in
  Metrics.Histogram.observe (Metrics.Histogram.series h [ "x" ]) 0.25;
  Metrics.Histogram.observe (Metrics.Histogram.series h [ "x" ]) 0.75;
  let out = Prometheus.render ~registry:reg () in
  let contains needle =
    Astring.String.find_sub ~sub:needle out <> None
  in
  check_bool "finite bucket" true
    (contains "test_prom_h_bucket{op=\"x\",le=\"0.25\"} 1");
  check_bool "+Inf bucket equals count" true
    (contains "test_prom_h_bucket{op=\"x\",le=\"+Inf\"} 2");
  check_bool "sum line" true (contains "test_prom_h_sum{op=\"x\"} 1");
  check_bool "count line" true (contains "test_prom_h_count{op=\"x\"} 2");
  (* one sample per (series, bound): no duplicate exposition lines *)
  let lines = String.split_on_char '\n' out in
  let sample_lines =
    List.filter
      (fun l ->
        String.length l > 0 && l.[0] <> '#'
        && Astring.String.is_prefix ~affix:"test_prom_h" l)
      lines
  in
  let sorted = List.sort_uniq compare sample_lines in
  check_int "no duplicate sample lines" (List.length sample_lines)
    (List.length sorted)

(* --- snapshot JSON ----------------------------------------------------- *)

let test_snapshot_roundtrip () =
  with_enabled @@ fun () ->
  let reg = Metrics.create () in
  let c = Metrics.Counter.v ~registry:reg ~labels:[ "k" ] "test_snap_total" in
  Metrics.Counter.inc ~by:7 (Metrics.Counter.series c [ "v" ]);
  let g = Metrics.Gauge.v ~registry:reg "test_snap_gauge" in
  Metrics.Gauge.set0 g 0.25;
  let h = Metrics.Histogram.v ~registry:reg ~buckets:[| 1.; 2. |] "test_snap_h" in
  Metrics.Histogram.observe0 h 1.5;
  let j =
    Profile.snapshot_json ~registry:reg ~version:"9.9.9" ~telemetry_version:1 ()
  in
  let s = J.to_string j in
  (match J.parse s with
  | Error e -> Alcotest.failf "snapshot does not re-parse: %s" e
  | Ok j' -> check_bool "snapshot JSON round-trips" true (j = j'));
  check_bool "schema version stamped" true
    (J.member "ctam_metrics_version" j = Some (J.Int 1));
  check_bool "tool version stamped" true
    (J.member "version" j = Some (J.String "9.9.9"));
  check_bool "gc member present" true (J.member "gc" j <> None);
  match J.member "metrics" j with
  | Some (J.List fams) ->
      check_int "three families" 3 (List.length fams);
      let names =
        List.filter_map
          (fun f ->
            match J.member "name" f with
            | Some (J.String n) -> Some n
            | _ -> None)
          fams
      in
      check_bool "families sorted by name" true
        (names = List.sort compare names)
  | _ -> Alcotest.fail "snapshot missing metrics list"

(* --- structured logger ------------------------------------------------- *)

let with_sink f =
  let captured = ref [] in
  Log.set_sink (fun line -> captured := line :: !captured);
  let old_level = Log.current_level () in
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink prerr_endline;
      Log.set_format `Human;
      Log.set_level old_level)
    (fun () -> f captured)

let test_log_levels () =
  with_sink @@ fun captured ->
  Log.set_level (Some Log.Warn);
  let formatted = ref false in
  Log.debug (fun () ->
      formatted := true;
      "dropped");
  check_bool "filtered message never formatted" false !formatted;
  check_int "filtered message not emitted" 0 (List.length !captured);
  Log.warn ~src:"t" (fun () -> "kept");
  check_int "warn emitted at warn level" 1 (List.length !captured);
  check_bool "human line carries src and message" true
    (match !captured with
    | [ line ] ->
        Astring.String.find_sub ~sub:"warn" line <> None
        && Astring.String.find_sub ~sub:"t:" line <> None
        && Astring.String.find_sub ~sub:"kept" line <> None
    | _ -> false);
  Log.set_level None;
  Log.err (fun () -> "also dropped");
  check_int "off drops errors too" 1 (List.length !captured)

let test_log_json_format () =
  with_sink @@ fun captured ->
  Log.set_level (Some Log.Info);
  Log.set_format `Json;
  Log.info ~src:"tj" ~fields:[ ("n", J.Int 3) ] (fun () -> "structured");
  match !captured with
  | [ line ] -> (
      match J.parse line with
      | Error e -> Alcotest.failf "log line is not JSON: %s" e
      | Ok j ->
          check_bool "level member" true
            (J.member "level" j = Some (J.String "info"));
          check_bool "src member" true (J.member "src" j = Some (J.String "tj"));
          check_bool "msg member" true
            (J.member "msg" j = Some (J.String "structured"));
          check_bool "structured field" true (J.member "n" j = Some (J.Int 3));
          check_bool "timestamp present" true (J.member "ts" j <> None))
  | l -> Alcotest.failf "expected 1 JSON line, got %d" (List.length l)

let test_log_level_of_string () =
  check_bool "warning alias" true
    (Log.level_of_string "Warning" = Ok (Some Log.Warn));
  check_bool "off" true (Log.level_of_string "off" = Ok None);
  check_bool "unknown rejected" true
    (Result.is_error (Log.level_of_string "chatty"))

(* --- span + phase profiling -------------------------------------------- *)

let test_span_records_phase () =
  with_enabled @@ fun () ->
  with_sink @@ fun _captured ->
  Log.set_level (Some Log.Debug);
  let before =
    match
      Metrics.find (Metrics.scrape Metrics.default) "ctam_phase_seconds"
        [ ("phase", "test.span") ]
    with
    | Some (Metrics.Histogram { count; _ }) -> count
    | _ -> 0
  in
  let r = Log.span "test.span" (fun () -> 41 + 1) in
  check_int "span returns the body's value" 42 r;
  match
    Metrics.find (Metrics.scrape Metrics.default) "ctam_phase_seconds"
      [ ("phase", "test.span") ]
  with
  | Some (Metrics.Histogram { count; _ }) ->
      check_int "span recorded one phase observation" (before + 1) count
  | _ -> Alcotest.fail "phase histogram not scraped"

(* --- engine: telemetry must not change simulated statistics ----------- *)

let test_engine_stats_unchanged () =
  let machine = Ctam_arch.Machines.harpertown ~scale:16 () in
  let prog = Ctam_workloads.Kernel.small_program Ctam_workloads.Suite.cg in
  let was = Metrics.enabled () in
  Metrics.set_enabled false;
  let off = Ctam_core.Mapping.run Ctam_core.Mapping.Topology_aware ~machine prog in
  Metrics.set_enabled true;
  let on = Ctam_core.Mapping.run Ctam_core.Mapping.Topology_aware ~machine prog in
  Metrics.set_enabled was;
  check_bool "stats identical with telemetry on vs off" true (off = on)

let test_engine_counters () =
  with_enabled @@ fun () ->
  let machine = Ctam_arch.Machines.harpertown ~scale:16 () in
  let prog = Ctam_workloads.Kernel.small_program Ctam_workloads.Suite.cg in
  let sample () =
    match
      Metrics.find (Metrics.scrape Metrics.default)
        "ctam_engine_accesses_total"
        [ ("engine", "heap") ]
    with
    | Some (Metrics.Counter n) -> n
    | _ -> 0
  in
  let before = sample () in
  let stats = Ctam_core.Mapping.run Ctam_core.Mapping.Combined ~machine prog in
  check_int "engine access counter advances by the run's accesses"
    (before + stats.Ctam_cachesim.Stats.total_accesses)
    (sample ())

(* --- parallel pool monitor --------------------------------------------- *)

let test_pool_utilization () =
  with_enabled @@ fun () ->
  Runtime.install ();
  Fun.protect ~finally:Runtime.uninstall @@ fun () ->
  let busy0, cap0 = Runtime.pool_totals () in
  ignore
    (Ctam_util.Parallel.map ~domains:2
       (fun i ->
         Unix.sleepf 0.005;
         i)
       (List.init 8 Fun.id));
  let busy1, cap1 = Runtime.pool_totals () in
  check_bool "capacity advanced" true (cap1 > cap0);
  check_bool "busy advanced" true (busy1 > busy0);
  let util = (busy1 -. busy0) /. (cap1 -. cap0) in
  check_bool "utilization in (0, 1]" true (util > 0. && util <= 1.0);
  match
    Metrics.find (Metrics.scrape Metrics.default) "ctam_parallel_tasks_total"
      []
  with
  | Some (Metrics.Counter n) -> check_bool "tasks counted" true (n >= 8)
  | _ -> Alcotest.fail "parallel task counter not scraped"

(* --- tune cache corruption accounting ---------------------------------- *)

let test_tune_cache_corruption_counter () =
  with_enabled @@ fun () ->
  with_sink @@ fun captured ->
  Log.set_level (Some Log.Warn);
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ctam_tel_test_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  let lookups result =
    match
      Metrics.find (Metrics.scrape Metrics.default)
        "ctam_tune_cache_lookups_total"
        [ ("result", result) ]
    with
    | Some (Metrics.Counter n) -> n
    | _ -> 0
  in
  let key = "ctam-test-key" in
  let miss0 = lookups "miss" and corrupt0 = lookups "corrupt" in
  check_bool "absent entry is a miss" true
    (Ctam_tune.Cache.lookup ~dir key = None);
  check_int "miss counted" (miss0 + 1) (lookups "miss");
  (* Plant garbage at the entry's path: a corrupt entry, not a miss. *)
  let path =
    Filename.concat dir ("ctam-tune-" ^ Ctam_tune.Cache.hash key ^ ".json")
  in
  let oc = open_out path in
  output_string oc "this is not json";
  close_out oc;
  check_bool "corrupt entry yields None" true
    (Ctam_tune.Cache.lookup ~dir key = None);
  check_int "corrupt counted" (corrupt0 + 1) (lookups "corrupt");
  check_bool "corruption warned through the structured logger" true
    (List.exists
       (fun l -> Astring.String.find_sub ~sub:"corrupt" l <> None)
       !captured)

(* --- report diff over the telemetry member ----------------------------- *)

let mk_report ~wall ~major name =
  J.Obj
    [
      ("ctam_report_version", J.Int 1);
      ("version", J.String "t");
      ("program", J.String name);
      ("scheme", J.String "combined");
      ("machine", J.Obj [ ("name", J.String "m") ]);
      ("stats", J.Obj [ ("cycles", J.Int 1000) ]);
      ( "telemetry",
        J.Obj
          [
            ("telemetry_version", J.Int 1);
            ("wall_seconds", J.Float wall);
            ("gc", J.Obj [ ("major_words", J.Float major) ]);
          ] );
    ]

let test_report_diff_telemetry () =
  let a = [ mk_report ~wall:1.0 ~major:1000. "sp" ] in
  let b = [ mk_report ~wall:2.0 ~major:1000. "sp" ] in
  let text, regressions =
    Ctam_exp.Report_diff.render ~threshold:10. ~path_a:"a" ~path_b:"b" a b
  in
  check_bool "wall_seconds regression flagged" true (regressions >= 1);
  check_bool "wall_seconds row rendered" true
    (Astring.String.find_sub ~sub:"wall_seconds" text <> None);
  (* identical telemetry does not regress *)
  let _, none =
    Ctam_exp.Report_diff.render ~threshold:10. ~path_a:"a" ~path_b:"b" a a
  in
  check_int "identical telemetry clean" 0 none;
  (* gc metrics compare too *)
  let c = [ mk_report ~wall:1.0 ~major:2000. "sp" ] in
  let text_gc, reg_gc =
    Ctam_exp.Report_diff.render ~threshold:10. ~path_a:"a" ~path_b:"c" a c
  in
  check_bool "gc_major_words regression flagged" true (reg_gc >= 1);
  check_bool "gc_major_words row rendered" true
    (Astring.String.find_sub ~sub:"gc_major_words" text_gc <> None)

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "default buckets" `Quick test_default_buckets;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "parallel counter merge" `Quick
            test_parallel_counter_merge;
          Alcotest.test_case "parallel histogram merge" `Quick
            test_parallel_histogram_merge;
          Alcotest.test_case "empty histogram family" `Quick
            test_empty_histogram_family;
          Alcotest.test_case "scrape races first record" `Quick
            test_scrape_races_first_record;
          Alcotest.test_case "disabled recording" `Quick
            test_disabled_recording;
          Alcotest.test_case "registration" `Quick test_registration;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "escaping" `Quick test_prometheus_escaping;
          Alcotest.test_case "histogram lines" `Quick
            test_prometheus_histogram_lines;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip ] );
      ( "log",
        [
          Alcotest.test_case "levels" `Quick test_log_levels;
          Alcotest.test_case "json format" `Quick test_log_json_format;
          Alcotest.test_case "level parsing" `Quick test_log_level_of_string;
          Alcotest.test_case "span" `Quick test_span_records_phase;
          Alcotest.test_case "ambient context" `Quick test_log_context;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "engine stats unchanged" `Quick
            test_engine_stats_unchanged;
          Alcotest.test_case "engine counters" `Quick test_engine_counters;
          Alcotest.test_case "pool utilization" `Quick test_pool_utilization;
          Alcotest.test_case "tune cache corruption" `Quick
            test_tune_cache_corruption_counter;
          Alcotest.test_case "report diff telemetry" `Quick
            test_report_diff_telemetry;
        ] );
    ]
