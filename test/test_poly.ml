(* Tests for the polyhedral-lite library: affine expressions,
   constraints, domains, explicit iteration sets and box codegen. *)

open Ctam_poly

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Affine --------------------------------------------------------- *)

let test_affine_eval () =
  let e = Affine.make [| 2; -1 |] 3 in
  check_int "2*4 - 7 + 3" 4 (Affine.eval e [| 4; 7 |]);
  check_int "const" 3 (Affine.eval (Affine.const 2 3) [| 9; 9 |]);
  check_int "var" 7 (Affine.eval (Affine.var 2 1) [| 9; 7 |])

let test_affine_ops () =
  let a = Affine.make [| 1; 2 |] 5 and b = Affine.make [| 3; -2 |] 1 in
  let iv = [| 10; 20 |] in
  check_int "add" (Affine.eval a iv + Affine.eval b iv)
    (Affine.eval (Affine.add a b) iv);
  check_int "sub" (Affine.eval a iv - Affine.eval b iv)
    (Affine.eval (Affine.sub a b) iv);
  check_int "neg" (-Affine.eval a iv) (Affine.eval (Affine.neg a) iv);
  check_int "scale" (3 * Affine.eval a iv) (Affine.eval (Affine.scale 3 a) iv);
  check_int "add_const" (Affine.eval a iv + 7)
    (Affine.eval (Affine.add_const 7 a) iv)

let test_affine_extend () =
  let a = Affine.make [| 1; 2 |] 5 in
  let a3 = Affine.extend 3 a in
  check_int "depth" 3 (Affine.depth a3);
  check_int "same value" (Affine.eval a [| 4; 5 |])
    (Affine.eval a3 [| 4; 5; 99 |]);
  Alcotest.check_raises "cannot shrink"
    (Invalid_argument "Affine.extend: cannot shrink") (fun () ->
      ignore (Affine.extend 1 a))

let test_affine_is_const () =
  check_bool "const" true (Affine.is_const (Affine.const 3 42));
  check_bool "var" false (Affine.is_const (Affine.var 3 0))

let test_affine_pp () =
  let s = Affine.to_string (Affine.make [| 2; 0; -1 |] 3) in
  Alcotest.(check string) "pretty" "2*i0 - i2 + 3" s;
  Alcotest.(check string) "zero" "0" (Affine.to_string (Affine.const 2 0));
  Alcotest.(check string)
    "named" "2*x - z + 3"
    (Affine.to_string ~names:[| "x"; "y"; "z" |] (Affine.make [| 2; 0; -1 |] 3))

let test_affine_eval_mismatch () =
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Affine.eval: dimension mismatch") (fun () ->
      ignore (Affine.eval (Affine.const 2 0) [| 1 |]))

(* --- Constrnt ------------------------------------------------------- *)

let test_constraints () =
  let d = 2 in
  let x = Affine.var d 0 and y = Affine.var d 1 in
  check_bool "x <= y sat" true (Constrnt.sat (Constrnt.le x y) [| 3; 4 |]);
  check_bool "x <= y unsat" false (Constrnt.sat (Constrnt.le x y) [| 5; 4 |]);
  check_bool "x < y boundary" false (Constrnt.sat (Constrnt.lt x y) [| 4; 4 |]);
  check_bool "eq" true (Constrnt.sat (Constrnt.eq (Affine.sub x y)) [| 4; 4 |]);
  check_bool "between" true
    (Constrnt.sat_all (Constrnt.between (Affine.const d 1) x (Affine.const d 5))
       [| 3; 0 |]);
  check_bool "between out" false
    (Constrnt.sat_all (Constrnt.between (Affine.const d 1) x (Affine.const d 5))
       [| 6; 0 |])

(* --- Domain --------------------------------------------------------- *)

let test_domain_box () =
  let d = Domain.box [| (0, 3); (1, 2) |] in
  check_int "cardinal" 8 (Domain.cardinal d);
  check_bool "mem" true (Domain.mem d [| 2; 1 |]);
  check_bool "not mem" false (Domain.mem d [| 4; 1 |]);
  check_bool "not mem dim" false (Domain.mem d [| 0; 0 |]);
  let pts = Domain.to_list d in
  check_int "to_list length" 8 (List.length pts);
  (* Lexicographic order. *)
  Alcotest.(check (list (array int)))
    "lex order"
    [ [| 0; 1 |]; [| 0; 2 |]; [| 1; 1 |]; [| 1; 2 |] ]
    (List.filteri (fun i _ -> i < 4) pts)

let test_domain_triangular () =
  (* { (i, j) | 0 <= i <= 3, 0 <= j <= i } *)
  let lo = Affine.const 2 0 in
  let hi_i = Affine.const 2 3 in
  let hi_j = Affine.var 2 0 in
  let d = Domain.make ~bounds:[| (lo, hi_i); (lo, hi_j) |] ~guards:[] in
  check_int "triangle 4+3+2+1" 10 (Domain.cardinal d);
  check_bool "diag" true (Domain.mem d [| 2; 2 |]);
  check_bool "above diag" false (Domain.mem d [| 2; 3 |])

let test_domain_guards () =
  let even =
    (* i - 2*(i/2) = 0 cannot be expressed affinely; use i + j <= 3. *)
    Constrnt.le
      (Affine.add (Affine.var 2 0) (Affine.var 2 1))
      (Affine.const 2 3)
  in
  let d = Domain.add_guards [ even ] (Domain.box [| (0, 3); (0, 3) |]) in
  check_int "guarded count" 10 (Domain.cardinal d);
  check_bool "guard holds" true (Domain.mem d [| 1; 2 |]);
  check_bool "guard fails" false (Domain.mem d [| 2; 2 |])

let test_domain_empty () =
  let d = Domain.box [| (0, 3) |] in
  let empty =
    Domain.add_guards
      [ Constrnt.le (Affine.const 1 5) (Affine.var 1 0) ]
      d
  in
  check_bool "is_empty" true (Domain.is_empty empty);
  check_int "cardinal 0" 0 (Domain.cardinal empty);
  check_bool "nonempty" false (Domain.is_empty d)

let test_domain_bad_bounds () =
  (* A lower bound referring to an inner dimension must be rejected. *)
  Alcotest.check_raises "inner ref"
    (Invalid_argument "Domain.make: bound refers to inner dimension")
    (fun () ->
      ignore
        (Domain.make
           ~bounds:[| (Affine.var 2 1, Affine.const 2 5); (Affine.const 2 0, Affine.const 2 5) |]
           ~guards:[]))

(* --- Iterset -------------------------------------------------------- *)

let enc2 () = Iterset.encoder_of_box [| 0; 0 |] [| 9; 9 |]

let test_iterset_encode_roundtrip () =
  let enc = enc2 () in
  List.iter
    (fun iv ->
      Alcotest.(check (array int))
        "roundtrip" iv
        (Iterset.decode enc (Iterset.encode enc iv)))
    [ [| 0; 0 |]; [| 9; 9 |]; [| 3; 7 |] ]

let test_iterset_encode_order () =
  (* Key order must match lexicographic order of vectors. *)
  let enc = enc2 () in
  check_bool "lex order" true
    (Iterset.encode enc [| 1; 9 |] < Iterset.encode enc [| 2; 0 |])

let test_iterset_ops () =
  let enc = enc2 () in
  let s1 = Iterset.of_list enc [ [| 1; 1 |]; [| 2; 2 |]; [| 3; 3 |] ] in
  let s2 = Iterset.of_list enc [ [| 2; 2 |]; [| 4; 4 |] ] in
  check_int "union" 4 (Iterset.cardinal (Iterset.union s1 s2));
  check_int "inter" 1 (Iterset.cardinal (Iterset.inter s1 s2));
  check_int "diff" 2 (Iterset.cardinal (Iterset.diff s1 s2));
  check_bool "mem" true (Iterset.mem s1 [| 2; 2 |]);
  check_bool "not mem" false (Iterset.mem s1 [| 4; 4 |]);
  check_bool "subset" true (Iterset.subset (Iterset.inter s1 s2) s1);
  check_bool "equal self" true (Iterset.equal s1 s1)

let test_iterset_dedup () =
  let enc = enc2 () in
  let s = Iterset.of_list enc [ [| 1; 1 |]; [| 1; 1 |]; [| 2; 0 |] ] in
  check_int "dedup" 2 (Iterset.cardinal s)

let test_iterset_split () =
  let enc = enc2 () in
  let s = Iterset.of_list enc (List.init 7 (fun i -> [| i; 0 |])) in
  let a, b = Iterset.split_at 3 s in
  check_int "left" 3 (Iterset.cardinal a);
  check_int "right" 4 (Iterset.cardinal b);
  check_bool "disjoint" true (Iterset.is_empty (Iterset.inter a b));
  check_bool "cover" true (Iterset.equal (Iterset.union a b) s)

let test_iterset_of_domain () =
  let d = Domain.box [| (2, 4); (1, 3) |] in
  let enc = Iterset.encoder_of_domain d in
  let s = Iterset.of_domain enc d in
  check_int "cardinal" 9 (Iterset.cardinal s);
  check_int "min_key is first" (Iterset.encode enc [| 2; 1 |]) (Iterset.min_key s)

(* --- Codegen -------------------------------------------------------- *)

let test_codegen_box () =
  let d = Domain.box [| (0, 3); (0, 3) |] in
  let enc = Iterset.encoder_of_domain d in
  let s = Iterset.of_domain enc d in
  let cg = Codegen.decompose s in
  check_int "single box" 1 (List.length cg.Codegen.boxes);
  check_int "cardinal" 16 (Codegen.cardinal cg)

let test_codegen_l_shape () =
  (* An L-shaped set cannot be one box; decomposition must cover it
     exactly with disjoint boxes. *)
  let enc = enc2 () in
  let pts =
    List.filter
      (fun (i, j) -> not (i >= 2 && j >= 2))
      (List.concat_map (fun i -> List.map (fun j -> (i, j)) [ 0; 1; 2; 3 ]) [ 0; 1; 2; 3 ])
  in
  let s = Iterset.of_list enc (List.map (fun (i, j) -> [| i; j |]) pts) in
  let cg = Codegen.decompose s in
  check_int "covers exactly" (Iterset.cardinal s) (Codegen.cardinal cg);
  let regen = Iterset.of_list enc (Codegen.enumerate cg) in
  check_bool "same set" true (Iterset.equal regen s);
  check_bool "more than one box" true (List.length cg.Codegen.boxes > 1)

let test_codegen_emit () =
  let enc = Iterset.encoder_of_box [| 0 |] [| 9 |] in
  let s = Iterset.of_list enc (List.init 5 (fun i -> [| i + 2 |])) in
  let cg = Codegen.decompose s in
  let code = Codegen.emit ~names:[| "i" |] ~body:"S(i);" cg in
  check_bool "has for loop" true
    (Astring.String.is_infix ~affix:"for (i = 2; i <= 6; i++)" code)

let collect_gen next =
  (* Drain a lazy point stream, copying each buffer (it is only valid
     until the following [next]). *)
  let out = ref [] in
  let rec go () =
    match next () with
    | None -> List.rev !out
    | Some iv ->
        out := Array.copy iv :: !out;
        go ()
  in
  go ()

let test_codegen_to_gen_lex_order () =
  (* [to_gen] must yield GLOBAL lexicographic order — the order
     [Iterset.iter] uses — even when the decomposition's boxes
     interleave, and restart from the top. *)
  let enc = enc2 () in
  let pts =
    List.filter
      (fun (i, j) -> not (i >= 2 && j >= 2))
      (List.concat_map
         (fun i -> List.map (fun j -> (i, j)) [ 0; 1; 2; 3 ])
         [ 0; 1; 2; 3 ])
  in
  let s = Iterset.of_list enc (List.map (fun (i, j) -> [| i; j |]) pts) in
  let cg = Codegen.decompose s in
  check_bool "needs a merge" true (List.length cg.Codegen.boxes > 1);
  let expected =
    let acc = ref [] in
    Iterset.iter (fun iv -> acc := Array.copy iv :: !acc) s;
    List.rev !acc
  in
  let gen = Codegen.to_gen cg in
  check_bool "global lex order" true (collect_gen gen.Codegen.next = expected);
  check_bool "eager variant agrees" true (Codegen.enumerate_lex cg = expected);
  gen.Codegen.restart ();
  check_bool "restart replays" true (collect_gen gen.Codegen.next = expected)

let prop_codegen_to_gen_matches_iterset =
  QCheck.Test.make ~name:"Codegen.to_gen == Iterset.iter order" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 60) (pair (int_range 0 9) (int_range 0 9)))
    (fun pts ->
      let enc = enc2 () in
      let s = Iterset.of_list enc (List.map (fun (i, j) -> [| i; j |]) pts) in
      let cg = Codegen.decompose s in
      let expected =
        let acc = ref [] in
        Iterset.iter (fun iv -> acc := Array.copy iv :: !acc) s;
        List.rev !acc
      in
      collect_gen (Codegen.to_gen cg).Codegen.next = expected)

let test_domain_to_gen () =
  (* Guard-filtered triangular domain: the odometer must agree with
     [iter] exactly and restart cleanly. *)
  let lo = Affine.const 2 0 and hi_i = Affine.const 2 3 in
  let hi_j = Affine.var 2 0 in
  let guard =
    Constrnt.le
      (Affine.add (Affine.var 2 0) (Affine.var 2 1))
      (Affine.const 2 3)
  in
  let d =
    Domain.add_guards [ guard ]
      (Domain.make ~bounds:[| (lo, hi_i); (lo, hi_j) |] ~guards:[])
  in
  let expected =
    let acc = ref [] in
    Domain.iter (fun iv -> acc := Array.copy iv :: !acc) d;
    List.rev !acc
  in
  check_bool "nonempty" true (expected <> []);
  let gen = Domain.to_gen d in
  check_bool "matches iter" true (collect_gen gen.Domain.next = expected);
  gen.Domain.restart ();
  check_bool "restart replays" true (collect_gen gen.Domain.next = expected);
  (* The empty domain yields nothing. *)
  let empty =
    Domain.add_guards
      [ Constrnt.le (Affine.const 1 1) (Affine.const 1 0) ]
      (Domain.box [| (0, 3) |])
  in
  check_bool "empty domain" true
    (collect_gen (Domain.to_gen empty).Domain.next = [])

(* --- Fm: Fourier-Motzkin ---------------------------------------------- *)

let test_fm_feasible_box () =
  (* 0 <= x <= 5, 0 <= y <= 5, x + y >= 3: feasible. *)
  let sys =
    Fm.make ~num_vars:2
    |> (fun s -> Fm.add_ge s [| 1; 0 |] 0)
    |> (fun s -> Fm.add_ge s [| -1; 0 |] 5)
    |> (fun s -> Fm.add_ge s [| 0; 1 |] 0)
    |> (fun s -> Fm.add_ge s [| 0; -1 |] 5)
    |> fun s -> Fm.add_ge s [| 1; 1 |] (-3)
  in
  check_bool "feasible" true (Fm.rational_feasible sys);
  check_bool "sat point" true (Fm.sat sys [| 2; 2 |]);
  check_bool "unsat point" false (Fm.sat sys [| 0; 0 |])

let test_fm_infeasible () =
  (* x >= 3 and x <= 1. *)
  let sys =
    Fm.make ~num_vars:1
    |> (fun s -> Fm.add_ge s [| 1 |] (-3))
    |> fun s -> Fm.add_le s [| 1 |] (-1)
  in
  check_bool "infeasible" false (Fm.rational_feasible sys);
  (* Equalities: x = 2 and x = 3 conflict. *)
  let sys2 =
    Fm.make ~num_vars:1
    |> (fun s -> Fm.add_eq s [| 1 |] (-2))
    |> fun s -> Fm.add_eq s [| 1 |] (-3)
  in
  check_bool "equality conflict" false (Fm.rational_feasible sys2)

let test_fm_feasibility_status () =
  let sat = Fm.add_ge (Fm.make ~num_vars:1) [| 1 |] 0 in
  check_bool "sat" true (Fm.feasibility sat = Fm.Sat);
  let unsat =
    Fm.make ~num_vars:1
    |> (fun s -> Fm.add_ge s [| 1 |] (-3))
    |> fun s -> Fm.add_le s [| 1 |] (-1)
  in
  check_bool "unsat" true (Fm.feasibility unsat = Fm.Unsat);
  check_bool "rational_feasible agrees" false (Fm.rational_feasible unsat)

let test_fm_cap_maybe_sat () =
  (* Regression: past the 5000-constraint elimination cap the solver
     used to answer a silent, unconditional "feasible".  [feasibility]
     now reports the truncation as [MaybeSat]; [rational_feasible]
     keeps the conservative [true] for its existing callers.  75
     positive and 75 negative x0 rows combine into 5625 constraints on
     the first elimination — enough to hide the plain x1 >= 1, x1 <= 0
     contradiction behind the cap. *)
  let sys = ref (Fm.make ~num_vars:2) in
  for i = 0 to 74 do
    sys := Fm.add_ge !sys [| 1; i + 1 |] 0;
    sys := Fm.add_ge !sys [| -1; i + 1 |] 0
  done;
  sys := Fm.add_ge !sys [| 0; 1 |] (-1);
  sys := Fm.add_ge !sys [| 0; -1 |] 0;
  check_bool "maybe-sat" true (Fm.feasibility !sys = Fm.MaybeSat);
  check_bool "rational_feasible stays conservative" true
    (Fm.rational_feasible !sys)

let test_fm_elimination_projects () =
  (* x = y, 0 <= y <= 4: eliminating x leaves a feasible system on y. *)
  let sys =
    Fm.make ~num_vars:2
    |> (fun s -> Fm.add_eq s [| 1; -1 |] 0)
    |> (fun s -> Fm.add_ge s [| 0; 1 |] 0)
    |> fun s -> Fm.add_ge s [| 0; -1 |] 4
  in
  let projected = Fm.eliminate sys 0 in
  check_bool "still feasible" true (Fm.rational_feasible projected);
  check_bool "x column zeroed" true
    (Fm.num_constraints projected >= 1)

let prop_fm_sound_on_boxes =
  (* For random 2D boxes and a random halfspace, FM feasibility agrees
     with brute-force enumeration over the integer box whenever the
     halfspace boundary is integral. *)
  QCheck.Test.make ~name:"fm agrees with enumeration on boxes" ~count:200
    QCheck.(
      quad (int_range 0 6) (int_range 0 6) (pair (int_range (-3) 3) (int_range (-3) 3))
        (int_range (-10) 10))
    (fun (xmax, ymax, (a, b), k) ->
      let sys =
        Fm.make ~num_vars:2
        |> (fun s -> Fm.add_ge s [| 1; 0 |] 0)
        |> (fun s -> Fm.add_ge s [| -1; 0 |] xmax)
        |> (fun s -> Fm.add_ge s [| 0; 1 |] 0)
        |> (fun s -> Fm.add_ge s [| 0; -1 |] ymax)
        |> fun s -> Fm.add_ge s [| a; b |] k
      in
      let brute = ref false in
      for x = 0 to xmax do
        for y = 0 to ymax do
          if (a * x) + (b * y) + k >= 0 then brute := true
        done
      done;
      (* FM may claim rational feasibility without an integer point,
         but never the reverse. *)
      if !brute then Fm.rational_feasible sys else true)

let prop_fm_infeasible_never_sat =
  QCheck.Test.make ~name:"fm infeasible => no point satisfies" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 6)
           (pair (pair (int_range (-4) 4) (int_range (-4) 4)) (int_range (-8) 8)))
        (pair (int_range (-5) 5) (int_range (-5) 5)))
    (fun (rows, (x, y)) ->
      let sys =
        List.fold_left
          (fun s ((a, b), k) -> Fm.add_ge s [| a; b |] k)
          (Fm.make ~num_vars:2) rows
      in
      if Fm.rational_feasible sys then true else not (Fm.sat sys [| x; y |]))

(* --- property tests ------------------------------------------------- *)

let arb_points =
  QCheck.(list_of_size (Gen.int_range 0 40) (pair (int_range 0 9) (int_range 0 9)))

let prop_codegen_exact =
  QCheck.Test.make ~name:"codegen covers exactly the input set" ~count:100
    arb_points (fun pts ->
      let enc = Iterset.encoder_of_box [| 0; 0 |] [| 9; 9 |] in
      let s = Iterset.of_list enc (List.map (fun (i, j) -> [| i; j |]) pts) in
      let cg = Codegen.decompose s in
      let regen = Iterset.of_list enc (Codegen.enumerate cg) in
      Iterset.equal regen s && Codegen.cardinal cg = Iterset.cardinal s)

let prop_decompose_guarded =
  (* For random guarded domains of depth 0-3 (full box, diagonal cut,
     or a band around the diagonal), the greedy decomposition's boxes
     are pairwise disjoint, cover the input set exactly, and enumerate
     the same keys as the set, order-insensitively. *)
  QCheck.Test.make ~name:"decompose partitions guarded domains" ~count:150
    QCheck.(pair (int_range 0 3) (pair (int_range 0 2) (int_range 2 5)))
    (fun (depth, (guard_kind, size)) ->
      let dom = Domain.box (Array.init depth (fun _ -> (0, size))) in
      let dom =
        if depth = 0 then dom
        else
          let sum = Affine.make (Array.make depth 1) 0 in
          match guard_kind with
          | 0 -> dom
          | 1 ->
              (* sum of indices >= size: a diagonal cut *)
              Domain.add_guards [ Constrnt.ge (Affine.add_const (-size) sum) ]
                dom
          | _ ->
              (* a band: size - 1 <= sum <= size + 1 *)
              Domain.add_guards
                [
                  Constrnt.ge (Affine.add_const (1 - size) sum);
                  Constrnt.ge (Affine.add_const (size + 1) (Affine.neg sum));
                ]
                dom
      in
      let enc = Iterset.encoder_of_domain dom in
      let s = Iterset.of_domain enc dom in
      let cg = Codegen.decompose s in
      let overlap b1 b2 =
        Array.for_all2
          (fun (l1, h1) (l2, h2) -> l1 <= h2 && l2 <= h1)
          b1 b2
      in
      let rec disjoint = function
        | [] -> true
        | b :: rest -> (not (List.exists (overlap b) rest)) && disjoint rest
      in
      let keys_of_boxes =
        List.sort compare
          (List.map (Iterset.encode enc) (Codegen.enumerate cg))
      in
      (* A depth-0 decomposition of the one-point set is a single box. *)
      (if depth = 0 then List.length cg.Codegen.boxes <= 1 else true)
      && disjoint cg.Codegen.boxes
      && Codegen.cardinal cg = Iterset.cardinal s
      && keys_of_boxes = Array.to_list (Iterset.keys s))

let prop_iterset_union_comm =
  QCheck.Test.make ~name:"iterset union commutative" ~count:100
    (QCheck.pair arb_points arb_points) (fun (p1, p2) ->
      let enc = Iterset.encoder_of_box [| 0; 0 |] [| 9; 9 |] in
      let s1 = Iterset.of_list enc (List.map (fun (i, j) -> [| i; j |]) p1) in
      let s2 = Iterset.of_list enc (List.map (fun (i, j) -> [| i; j |]) p2) in
      Iterset.equal (Iterset.union s1 s2) (Iterset.union s2 s1))

let prop_iterset_demorgan =
  QCheck.Test.make ~name:"iterset diff/inter coherence" ~count:100
    (QCheck.pair arb_points arb_points) (fun (p1, p2) ->
      let enc = Iterset.encoder_of_box [| 0; 0 |] [| 9; 9 |] in
      let s1 = Iterset.of_list enc (List.map (fun (i, j) -> [| i; j |]) p1) in
      let s2 = Iterset.of_list enc (List.map (fun (i, j) -> [| i; j |]) p2) in
      let lhs = Iterset.union (Iterset.diff s1 s2) (Iterset.inter s1 s2) in
      Iterset.equal lhs s1)

let prop_affine_linearity =
  QCheck.Test.make ~name:"affine add is pointwise" ~count:100
    QCheck.(
      pair
        (pair (array_of_size (Gen.return 3) (int_range (-5) 5)) (int_range (-10) 10))
        (pair (array_of_size (Gen.return 3) (int_range (-5) 5)) (int_range (-10) 10)))
    (fun ((c1, k1), (c2, k2)) ->
      let a = Affine.make c1 k1 and b = Affine.make c2 k2 in
      let iv = [| 3; -2; 5 |] in
      Affine.eval (Affine.add a b) iv = Affine.eval a iv + Affine.eval b iv)

let () =
  Alcotest.run "poly"
    [
      ( "affine",
        [
          Alcotest.test_case "eval" `Quick test_affine_eval;
          Alcotest.test_case "ops" `Quick test_affine_ops;
          Alcotest.test_case "extend" `Quick test_affine_extend;
          Alcotest.test_case "is_const" `Quick test_affine_is_const;
          Alcotest.test_case "pp" `Quick test_affine_pp;
          Alcotest.test_case "eval mismatch" `Quick test_affine_eval_mismatch;
          QCheck_alcotest.to_alcotest prop_affine_linearity;
        ] );
      ( "constraints",
        [ Alcotest.test_case "relations" `Quick test_constraints ] );
      ( "domain",
        [
          Alcotest.test_case "box" `Quick test_domain_box;
          Alcotest.test_case "triangular" `Quick test_domain_triangular;
          Alcotest.test_case "guards" `Quick test_domain_guards;
          Alcotest.test_case "empty" `Quick test_domain_empty;
          Alcotest.test_case "bad bounds" `Quick test_domain_bad_bounds;
        ] );
      ( "iterset",
        [
          Alcotest.test_case "roundtrip" `Quick test_iterset_encode_roundtrip;
          Alcotest.test_case "key order" `Quick test_iterset_encode_order;
          Alcotest.test_case "set ops" `Quick test_iterset_ops;
          Alcotest.test_case "dedup" `Quick test_iterset_dedup;
          Alcotest.test_case "split" `Quick test_iterset_split;
          Alcotest.test_case "of_domain" `Quick test_iterset_of_domain;
          QCheck_alcotest.to_alcotest prop_iterset_union_comm;
          QCheck_alcotest.to_alcotest prop_iterset_demorgan;
        ] );
      ( "fm",
        [
          Alcotest.test_case "feasible box" `Quick test_fm_feasible_box;
          Alcotest.test_case "infeasible" `Quick test_fm_infeasible;
          Alcotest.test_case "status" `Quick test_fm_feasibility_status;
          Alcotest.test_case "cap maybe-sat" `Quick test_fm_cap_maybe_sat;
          Alcotest.test_case "elimination" `Quick test_fm_elimination_projects;
          QCheck_alcotest.to_alcotest prop_fm_sound_on_boxes;
          QCheck_alcotest.to_alcotest prop_fm_infeasible_never_sat;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "full box" `Quick test_codegen_box;
          Alcotest.test_case "L shape" `Quick test_codegen_l_shape;
          Alcotest.test_case "emit" `Quick test_codegen_emit;
          Alcotest.test_case "to_gen lex order" `Quick
            test_codegen_to_gen_lex_order;
          Alcotest.test_case "Domain.to_gen" `Quick test_domain_to_gen;
          QCheck_alcotest.to_alcotest prop_codegen_exact;
          QCheck_alcotest.to_alcotest prop_decompose_guarded;
          QCheck_alcotest.to_alcotest prop_codegen_to_gen_matches_iterset;
        ] );
    ]
